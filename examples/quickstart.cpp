/// \file quickstart.cpp
/// \brief Smallest complete Beatnik program: run the multi-mode rocket
/// rig on 4 ranks with the low-order (FFT) solver, print the instability
/// growth, and dump a surface for visualization.
///
///   ./quickstart [--ranks N] [--mesh N] [--steps N]
#include <iomanip>
#include <sstream>

#include "example_utils.hpp"

namespace b = beatnik;
namespace ex = beatnik::examples;

int main(int argc, char** argv) {
    ex::Args args(argc, argv);
    const int nranks = args.get_int("ranks", 4);
    const int mesh = args.get_int("mesh", 64);
    const int steps = args.get_int("steps", 20);

    b::comm::Context::run(nranks, [&](b::comm::Communicator& comm) {
        // A rocket-rig style multi-mode problem: periodic boundaries,
        // low-order Z-Model (Fourier interface velocity).
        b::Params params = b::decks::multimode_loworder(mesh);
        params.surface_low = {-1.0, -1.0}; // laptop-sized domain
        params.surface_high = {1.0, 1.0};

        b::Solver solver(comm, params);
        ex::print0(comm, "quickstart: " + std::to_string(nranks) + " ranks, " +
                             std::to_string(mesh) + "^2 mesh, dt=" + std::to_string(solver.dt()));

        for (int s = 0; s < steps; ++s) {
            solver.step();
            if ((s + 1) % 5 == 0) {
                auto summary = b::summarize(solver.state());
                std::ostringstream os;
                os << "step " << std::setw(4) << solver.step_count() << "  t=" << std::fixed
                   << std::setprecision(4) << solver.time() << "  max|z3|=" << std::scientific
                   << std::setprecision(3) << summary.max_height
                   << "  |w|_2=" << summary.vorticity_l2;
                ex::print0(comm, os.str());
            }
        }

        b::SiloWriter writer("quickstart_surface");
        writer.write(solver.state(), solver.step_count());
        ex::print0(comm, "wrote quickstart_surface_" + std::to_string(solver.step_count()) +
                             ".vtk (open in ParaView/VisIt)");
    });
    return 0;
}
