/// \file fft_tuning.cpp
/// \brief Live (real-execution) version of the paper's heFFTe
/// configuration experiment (§5.5): run the low-order solver under all
/// eight (AllToAll, Pencils, Reorder) combinations on thread-ranks and
/// report wall-clock per configuration. The netsim-extrapolated version
/// for 4..1024 ranks is bench/fig09_table1_fft_configs.
///
///   ./fft_tuning [--ranks N] [--mesh N] [--steps N]
#include <iomanip>
#include <sstream>

#include "example_utils.hpp"

namespace b = beatnik;
namespace ex = beatnik::examples;

int main(int argc, char** argv) {
    ex::Args args(argc, argv);
    const int nranks = args.get_int("ranks", 4);
    const int mesh = args.get_int("mesh", 128);
    const int steps = args.get_int("steps", 5);

    std::cout << "fft_tuning: low-order solver, " << nranks << " ranks, " << mesh
              << "^2 mesh, " << steps << " steps per configuration\n";
    std::cout << "config  AllToAll  Pencils  Reorder   seconds\n";

    for (int idx = 0; idx < 8; ++idx) {
        double elapsed = 0.0;
        b::comm::Context::run(nranks, [&](b::comm::Communicator& comm) {
            b::Params params = b::decks::multimode_loworder(mesh);
            params.surface_low = {-1.0, -1.0};
            params.surface_high = {1.0, 1.0};
            params.fft = b::fft::FFTConfig::from_table1_index(idx);
            b::Solver solver(comm, params);
            comm.barrier();
            b::Stopwatch watch;
            solver.advance(steps);
            comm.barrier();
            if (comm.rank() == 0) elapsed = watch.seconds();
        });
        auto cfg = b::fft::FFTConfig::from_table1_index(idx);
        std::ostringstream os;
        os << "   " << idx << "      " << (cfg.use_alltoall ? "True " : "False") << "     "
           << (cfg.use_pencils ? "True " : "False") << "    " << (cfg.use_reorder ? "True " : "False")
           << "    " << std::fixed << std::setprecision(3) << elapsed;
        std::cout << os.str() << '\n';
    }
    std::cout << "(message structure differs per config; timings on shared-memory\n"
                 " thread-ranks mainly reflect copy/stride costs — see bench/fig09\n"
                 " for the modeled Lassen-scale contrast)\n";
    return 0;
}
