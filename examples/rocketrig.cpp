/// \file rocketrig.cpp
/// \brief The full rocket-rig driver (paper §4): configurable initial
/// conditions, boundary conditions, model order, BR solver and output —
/// the reproduction of Beatnik's ~700-line primary driver program.
///
/// Examples:
///   # Fig. 1 setup (multi-mode, low order, 4 ranks), writing VTK frames
///   ./rocketrig --ranks 4 --mesh 128 --steps 20 --order low --write-freq 10
///
///   # Fig. 2 setup (single-mode, cutoff solver, free boundary)
///   ./rocketrig --ranks 9 --mesh 96 --steps 60 --order high
///               --boundary free --ic singlemode --cutoff 0.5
///
///   # heFFTe-knob experiment on a real run
///   ./rocketrig --order low --fft-config 3
#include <iomanip>
#include <sstream>

#include "rocketrig_config.hpp"

namespace b = beatnik;
namespace ex = beatnik::examples;

namespace {

void usage() {
    std::cout <<
        R"(rocketrig - Beatnik reproduction driver (Rayleigh-Taylor rocket rig)

options (defaults in parentheses):
  --ranks N        logical ranks to run, threads-as-ranks (4)
  --deck S         start from a named input deck (none):
                   multimode-low | multimode-high | singlemode | rollup-ladder
                   (src/core/input_decks.hpp); explicit flags override it
  --mesh N         surface mesh nodes per axis (96)
  --steps N        timesteps to run (20)
  --order S        low | medium | high (low)
  --boundary S     periodic | free (periodic; free requires --order high)
  --ic S           multimode | singlemode (multimode)
  --magnitude X    initial perturbation amplitude (0.05)
  --modes N        multimode mode count per axis (4)
  --seed N         multimode random seed (42)
  --atwood X       Atwood number (0.5)
  --gravity X      acceleration (25.0)
  --mu X           artificial viscosity coefficient (1.0)
  --epsilon X      Krasny desingularization coefficient (0.25)
  --br S           exact | cutoff (cutoff)
  --cutoff X       cutoff distance (0.5)
  --fft-config N   heFFTe-style config index 0..7, Table 1 (7)
  --dt X           timestep (0 = automatic)
  --write-freq N   write VTK every N steps (0 = never)
  --output S       output file prefix (rocketrig)
  --census         print the spatial ownership census each output step
  --help           this text
)";
}

} // namespace

int main(int argc, char** argv) {
    ex::Args args(argc, argv);
    if (args.has("help")) {
        usage();
        return 0;
    }

    const int nranks = args.get_int("ranks", 4);
    const int steps = args.get_int("steps", 20);
    const int write_freq = args.get_int("write-freq", 0);
    const bool census = args.has("census");
    const std::string output = args.get_string("output", "rocketrig");

    // A named deck (src/core/input_decks.hpp) provides the baseline;
    // explicitly passed flags override individual fields on top of it —
    // regardless of their position relative to --deck (the assembly and
    // its precedence rules live in rocketrig_config.hpp, unit-tested by
    // tests/core/test_rocketrig_cli.cpp).
    const int mesh = args.get_int("mesh", 96);
    const std::string deck = args.get_string("deck", "none");
    b::Params params;
    try {
        params = ex::build_rocketrig_params(args);
    } catch (const b::InvalidArgument& e) {
        std::cerr << e.what() << "\n";
        return 2;
    }

    b::comm::Context::run(nranks, [&](b::comm::Communicator& comm) {
        b::Solver solver(comm, params);
        {
            std::ostringstream os;
            os << "rocketrig: " << nranks << " ranks, " << mesh << "^2 mesh, order="
               << ex::order_name(params.order) << ", dt=" << solver.dt();
            if (deck != "none") os << ", deck=" << deck;
            ex::print0(comm, os.str());
        }
        b::SiloWriter writer(output);
        if (write_freq > 0) writer.write(solver.state(), 0);

        b::Stopwatch watch;
        for (int s = 1; s <= steps; ++s) {
            solver.step();
            const bool output_step = write_freq > 0 && s % write_freq == 0;
            if (output_step || s == steps) {
                auto summary = b::summarize(solver.state());
                std::ostringstream os;
                os << "step " << std::setw(5) << s << "  t=" << std::fixed
                   << std::setprecision(4) << solver.time() << "  max|z3|=" << std::scientific
                   << std::setprecision(3) << summary.max_height
                   << "  |w|_2=" << summary.vorticity_l2;
                ex::print0(comm, os.str());
                if (census && solver.cutoff_solver() != nullptr) {
                    auto stats = b::imbalance_stats(b::ownership_census(comm, solver));
                    std::ostringstream cs;
                    cs << "       spatial ownership: min=" << std::fixed << std::setprecision(4)
                       << stats.min_share * 100.0 << "% max=" << stats.max_share * 100.0
                       << "% imbalance=" << stats.imbalance;
                    ex::print0(comm, cs.str());
                }
            }
            if (output_step) writer.write(solver.state(), s);
        }
        {
            std::ostringstream os;
            os << "done: " << steps << " steps in " << std::fixed << std::setprecision(2)
               << watch.seconds() << "s (" << watch.seconds() / steps << " s/step)";
            ex::print0(comm, os.str());
        }
    });
    return 0;
}
