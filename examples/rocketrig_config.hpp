/// \file rocketrig_config.hpp
/// \brief rocketrig's deck + flag-override parameter assembly, factored
/// out of the driver so the CLI precedence rules are unit-testable
/// (tests/core/test_rocketrig_cli.cpp).
///
/// Precedence contract: a named deck (--deck) provides the baseline and
/// *only explicitly passed* flags override individual fields on top of
/// it. Flag position relative to --deck must not matter — `--atwood 0.9
/// --deck rollup-ladder` and `--deck rollup-ladder --atwood 0.9` produce
/// the same Params. Without a deck, every flag falls back to its
/// documented default.
#pragma once

#include "example_utils.hpp"

namespace beatnik::examples {

/// Assemble the full Params from parsed flags. Throws InvalidArgument on
/// an unknown deck or enum value.
inline Params build_rocketrig_params(const Args& args) {
    const int mesh = args.get_int("mesh", 96);
    const std::string deck = args.get_string("deck", "none");
    Params params;
    bool from_deck = true;
    if (deck == "multimode-low") {
        params = decks::multimode_loworder(mesh);
    } else if (deck == "multimode-high") {
        params = decks::multimode_highorder(mesh);
    } else if (deck == "singlemode") {
        params = decks::singlemode_highorder(mesh);
    } else if (deck == "rollup-ladder") {
        params = decks::rollup_ladder(mesh);
    } else if (deck == "none") {
        from_deck = false;
        params.num_nodes = {mesh, mesh};
    } else {
        throw InvalidArgument(
            "unknown deck '" + deck +
            "' (expected none|multimode-low|multimode-high|singlemode|rollup-ladder)");
    }
    // Every deck-overridable field is gated on the flag actually being
    // present: args are an order-independent key/value map, so `--atwood
    // 0.9 --deck X` and `--deck X --atwood 0.9` behave identically, and a
    // deck's base values survive unless explicitly overridden.
    const bool boundary_set = args.has("boundary");
    if (!from_deck || args.has("order")) {
        params.order = parse_order(args.get_string("order", "low"));
    }
    if (!from_deck || boundary_set) {
        params.boundary = parse_boundary(args.get_string("boundary", "periodic"));
    }
    if (!from_deck || args.has("br")) {
        params.br_solver = parse_br(args.get_string("br", "cutoff"));
    }
    if (!from_deck || args.has("cutoff")) {
        params.cutoff_distance = args.get_double("cutoff", 0.5);
    }
    if (!from_deck || args.has("ic")) {
        params.initial.kind = args.get_string("ic", "multimode") == "singlemode"
                                  ? InitialCondition::Kind::singlemode
                                  : InitialCondition::Kind::multimode;
    }
    if (!from_deck || args.has("magnitude")) {
        params.initial.magnitude = args.get_double("magnitude", 0.05);
    }
    if (!from_deck || args.has("modes")) {
        params.initial.num_modes = args.get_int("modes", 4);
    }
    if (!from_deck || args.has("atwood")) {
        params.atwood = args.get_double("atwood", 0.5);
    }
    if (!from_deck || args.has("gravity")) {
        params.gravity = args.get_double("gravity", 25.0);
    }
    if (!from_deck || args.has("mu")) {
        params.mu = args.get_double("mu", 1.0);
    }
    if (!from_deck || args.has("epsilon")) {
        params.epsilon = args.get_double("epsilon", 0.25);
    }
    if (!from_deck || args.has("dt")) {
        params.dt = args.get_double("dt", 0.0);
    }
    if (!from_deck || args.has("fft-config")) {
        params.fft = fft::FFTConfig::from_table1_index(args.get_int("fft-config", 7));
    }
    if (!from_deck || args.has("seed")) {
        params.initial.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
    }
    if (!from_deck || boundary_set) {
        if (params.boundary == Boundary::free) {
            // Free-boundary problems live on the high-order deck's domain.
            params.surface_low = {-3.0, -3.0};
            params.surface_high = {3.0, 3.0};
        } else if (!from_deck) {
            params.surface_low = {-1.0, -1.0};
            params.surface_high = {1.0, 1.0};
        }
    }
    params.validate();
    return params;
}

} // namespace beatnik::examples
