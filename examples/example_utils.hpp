/// \file example_utils.hpp
/// \brief Tiny flag parser + printing helpers shared by the example
/// drivers (kept header-only and dependency-free on purpose).
#pragma once

#include <cstdlib>
#include <string_view>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "core/beatnik.hpp"

namespace beatnik::examples {

/// "--key value" and "--flag" style argument access with defaults.
class Args {
public:
    Args(int argc, char** argv) {
        for (int i = 1; i < argc; ++i) {
            std::string_view arg = argv[i];
            if (arg.size() < 3 || arg[0] != '-' || arg[1] != '-') continue;
            std::string key(arg.data() + 2, arg.size() - 2);
            if (i + 1 < argc && std::string_view(argv[i + 1]).rfind("--", 0) != 0) {
                values_[key] = argv[++i];
            } else {
                values_[key] = "1";
            }
        }
    }

    [[nodiscard]] int get_int(const std::string& key, int fallback) const {
        auto it = values_.find(key);
        return it == values_.end() ? fallback : std::stoi(it->second);
    }
    [[nodiscard]] double get_double(const std::string& key, double fallback) const {
        auto it = values_.find(key);
        return it == values_.end() ? fallback : std::stod(it->second);
    }
    [[nodiscard]] std::string get_string(const std::string& key, std::string fallback) const {
        auto it = values_.find(key);
        return it == values_.end() ? std::move(fallback) : it->second;
    }
    [[nodiscard]] bool has(const std::string& key) const { return values_.count(key) > 0; }

private:
    std::map<std::string, std::string> values_;
};

inline Order parse_order(const std::string& s) {
    if (s == "low") return Order::low;
    if (s == "medium") return Order::medium;
    if (s == "high") return Order::high;
    throw InvalidArgument("unknown order '" + s + "' (expected low|medium|high)");
}

inline Boundary parse_boundary(const std::string& s) {
    if (s == "periodic") return Boundary::periodic;
    if (s == "free") return Boundary::free;
    throw InvalidArgument("unknown boundary '" + s + "' (expected periodic|free)");
}

inline BRSolverKind parse_br(const std::string& s) {
    if (s == "exact") return BRSolverKind::exact;
    if (s == "cutoff") return BRSolverKind::cutoff;
    throw InvalidArgument("unknown BR solver '" + s + "' (expected exact|cutoff)");
}

inline const char* order_name(Order o) {
    switch (o) {
    case Order::low: return "low";
    case Order::medium: return "medium";
    case Order::high: return "high";
    }
    return "?";
}

/// Rank-0-only stream (avoids interleaved output from rank threads).
inline void print0(const comm::Communicator& comm, const std::string& line) {
    if (comm.rank() == 0) std::cout << line << '\n';
}

} // namespace beatnik::examples
