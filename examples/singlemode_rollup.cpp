/// \file singlemode_rollup.cpp
/// \brief The paper's Fig. 2 scenario at laptop scale: a single-mode
/// Rayleigh–Taylor interface with free boundaries solved by the
/// high-order cutoff solver. As the spike rolls up, the spatial
/// decomposition develops the load imbalance measured in Figs. 6-7;
/// this example prints the ownership census as it evolves and writes
/// VTK frames of the rolling surface.
///
///   ./singlemode_rollup [--ranks N] [--mesh N] [--steps N] [--cutoff X]
#include <iomanip>
#include <sstream>

#include "example_utils.hpp"

namespace b = beatnik;
namespace ex = beatnik::examples;

int main(int argc, char** argv) {
    ex::Args args(argc, argv);
    const int nranks = args.get_int("ranks", 4);
    const int mesh = args.get_int("mesh", 48);
    const int steps = args.get_int("steps", 40);
    const double cutoff = args.get_double("cutoff", 0.8);

    b::comm::Context::run(nranks, [&](b::comm::Communicator& comm) {
        b::Params params = b::decks::singlemode_highorder(mesh, cutoff);
        params.initial.magnitude = 0.3; // push hard so the rollup shows quickly
        params.gravity = 50.0;

        b::Solver solver(comm, params);
        ex::print0(comm, "singlemode_rollup: " + std::to_string(nranks) + " ranks, " +
                             std::to_string(mesh) + "^2 mesh, cutoff=" + std::to_string(cutoff));
        ex::print0(comm, "step    t        max|z3|    ownership min%  max%  imbalance");

        b::SiloWriter writer("rollup_surface");
        writer.write(solver.state(), 0);
        const int report_every = std::max(1, steps / 8);
        for (int s = 1; s <= steps; ++s) {
            solver.step();
            if (s % report_every == 0 || s == steps) {
                auto summary = b::summarize(solver.state());
                auto stats = b::imbalance_stats(b::ownership_census(comm, solver));
                std::ostringstream os;
                os << std::setw(4) << s << "  " << std::fixed << std::setprecision(4)
                   << solver.time() << "  " << std::scientific << std::setprecision(3)
                   << summary.max_height << "      " << std::fixed << std::setprecision(3)
                   << stats.min_share * 100.0 << "  " << stats.max_share * 100.0 << "  "
                   << std::setprecision(4) << stats.imbalance;
                ex::print0(comm, os.str());
                writer.write(solver.state(), s);
            }
        }
        ex::print0(comm, "wrote rollup_surface_*.vtk — color by vorticity_magnitude to "
                         "reproduce the paper's Fig. 2 view");
    });
    return 0;
}
