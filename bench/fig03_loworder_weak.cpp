/// \file fig03_loworder_weak.cpp
/// \brief Regenerates paper Fig. 3: low-order solver weak scaling,
/// 4 -> 1024 GPUs on the Lassen machine model.
///
/// Workload (paper §5.1): multi-mode periodic rocket rig, 4864^2 mesh
/// nodes per GPU, low-order (FFT) solver, default heFFTe-style config.
/// Each data point builds the real minifft reshape schedule for that rank
/// count and replays it through netsim.
///
/// Paper shape to match: runtime grows ~linearly from 4 to ~196 ranks and
/// keeps growing past 256 with a smaller slope (§5.2).
#include <cmath>
#include <cstdio>

#include "io/writers.hpp"
#include "model_helpers.hpp"

namespace bm = beatnik::benchmod;
namespace bn = beatnik::netsim;
namespace bf = beatnik::fft;

int main(int argc, char** argv) {
    // Modeling cost is independent of the mesh size, so the paper's full
    // 4864^2-per-GPU mesh is the default; --scale=small shrinks it.
    const bool small_scale = argc > 1 && std::string(argv[1]) == "--scale=small";
    const int per_gpu_side = small_scale ? 608 : 4864;

    std::printf("=== Fig. 3: low-order weak scaling (multi-mode, periodic) ===\n");
    std::printf("per-GPU mesh %dx%d, FFT config 7 (AllToAll+Pencils+Reorder)\n\n",
                per_gpu_side, per_gpu_side);
    std::printf("%-28s %6s  %12s  %9s  %s\n", "bench", "GPUs", "s/step", "vs 4GPU",
                "provenance");

    auto machine = bn::MachineModel::lassen();
    beatnik::io::CsvWriter csv("fig03_loworder_weak.csv", {"gpus", "seconds_per_step"});

    double t4 = 0.0;
    std::vector<double> times;
    std::vector<int> gpus_list;
    for (auto topo : bm::paper_rank_grids()) {
        const int gpus = topo[0] * topo[1];
        std::array<int, 2> global{per_gpu_side * topo[0], per_gpu_side * topo[1]};
        double t = bm::loworder_step_seconds(topo, global, bf::FFTConfig{}, machine);
        if (t4 == 0.0) t4 = t;
        bm::print_row("fig03_loworder_weak", gpus, t, "modeled", t4);
        std::vector<double> row{static_cast<double>(gpus), t};
        csv.row(row);
        times.push_back(t);
        gpus_list.push_back(gpus);
    }

    // Shape checks mirroring the paper's observations.
    bool monotonic = true;
    for (std::size_t i = 1; i < times.size(); ++i) monotonic &= times[i] > times[i - 1];
    std::printf("\nshape: runtime grows with rank count at fixed per-GPU mesh: %s\n",
                monotonic ? "YES (matches paper Fig. 3)" : "NO (mismatch!)");
    if (times.size() >= 3) {
        double early_slope = (times[2] - times[0]) / (gpus_list[2] - gpus_list[0]);
        double late_slope =
            (times.back() - times[times.size() - 2]) /
            (gpus_list.back() - gpus_list[gpus_list.size() - 2]);
        std::printf("shape: early per-GPU slope %.3e s/GPU vs late %.3e s/GPU "
                    "(paper: smaller slope past 256 ranks: %s)\n",
                    early_slope, late_slope,
                    late_slope < early_slope ? "YES" : "NO");
    }
    std::printf("wrote fig03_loworder_weak.csv\n");
    return 0;
}
