/// \file patterns.cpp
/// \brief CommBench-style pattern benchmark over the pluggable transport
/// layer: measure any plan schedule (halo, ring, pairwise/Bruck
/// all-to-all rounds, FFT reshape) on any transport (inproc, shm,
/// loopback) and emit per-iteration statistics as JSON.
///
/// Unlike the amortized-mean micro benches, every iteration is timed
/// individually (barrier-synchronized, pattern-wide max via allreduce),
/// the warmup block is discarded, iterations are sorted, and
/// min/median/avg/max plus aggregate GB/s are reported — the CommBench
/// methodology, which keeps the distribution visible instead of letting
/// one descheduled iteration poison a mean. A cache-defeating write
/// sweep runs between timed iterations so repeated patterns measure
/// memory traffic, not L2 residency of a hot payload.
///
/// `--calibrate` fits a per-transport machine profile instead: one-way
/// latency from a tiny-message ring, stream bandwidth from a large one,
/// local-copy bandwidth from a memcpy sweep. The JSON it writes is
/// loadable by netsim (netsim/profile.hpp: machine_from_profile), which
/// grounds simulator predictions in measured parameters of the machine
/// at hand.
///
/// Usage:
///   bench_patterns [--schedule halo|ring|pairwise|bruck|reshape|all]
///                  [--transport inproc|shm|loopback]
///                  [--ranks N] [--bytes N] [--iters N]
///                  [--quick] [--out <file.json>]
///   bench_patterns --calibrate [--transport <t>] [--out <profile.json>]
///
/// JSON results use the compare_benchmarks.py schema (`algo` holds the
/// transport name; extra min/avg/max/GB/s fields are ignored by the
/// matcher).
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "comm/communicator.hpp"
#include "comm/plan.hpp"
#include "grid/halo.hpp"
#include "fft/partition.hpp"
#include "fft/reshape.hpp"
#include "measure.hpp"

namespace bb = beatnik::bench;
namespace bc = beatnik::comm;
namespace bf = beatnik::fft;
namespace bg = beatnik::grid;

namespace {

struct PatternResult {
    bb::Result base;          ///< ns_per_op = median iteration
    bb::IterStats stats;      ///< seconds
    double gbps = 0.0;        ///< aggregate pattern bytes / median seconds
    std::size_t total_bytes = 0;
};

/// Time \p iters barrier-synchronized iterations of the pattern returned
/// by \p setup(comm); each sample is the pattern-wide slowest rank
/// (allreduce-max), so the statistics describe the whole exchange, not
/// rank 0's corner of it. The warmup block is discarded.
template <class Setup>
std::vector<double> time_pattern_iters(int ranks, int iters, bc::ContextConfig cfg,
                                       Setup&& setup) {
    std::vector<double> out;
    std::mutex m;
    bc::Context::run(
        ranks,
        [&](bc::Communicator& comm) {
            auto op = setup(comm);
            bb::CacheDefeater defeat(4u << 20);
            const int warmup = iters >= 10 ? iters / 10 : 1;
            for (int i = 0; i < warmup; ++i) op();
            std::vector<double> samples(static_cast<std::size_t>(iters));
            for (int i = 0; i < iters; ++i) {
                defeat.touch();
                comm.barrier();
                auto t0 = std::chrono::steady_clock::now();
                op();
                auto t1 = std::chrono::steady_clock::now();
                samples[static_cast<std::size_t>(i)] =
                    std::chrono::duration<double>(t1 - t0).count();
            }
            comm.allreduce(std::span<double>(samples), bc::op::Max{});
            if (comm.rank() == 0) {
                std::lock_guard lock(m);
                out = std::move(samples);
            }
        },
        cfg);
    return out;
}

PatternResult summarize(const char* op, const std::string& transport, int ranks,
                        std::size_t msg_bytes, std::size_t total_bytes,
                        std::vector<double> samples) {
    PatternResult r;
    r.stats = bb::iter_stats(samples);
    r.base = {op, transport, ranks, msg_bytes, r.stats.iters, r.stats.med * 1e9};
    r.gbps = bb::gbps(total_bytes, r.stats.med);
    r.total_bytes = total_bytes;
    return r;
}

// ---------------------------------------------------------------- schedules

/// Ring: every rank sends one message of \p bytes to (rank+1) % p.
PatternResult bench_ring(int ranks, std::size_t bytes, int iters, bc::ContextConfig cfg,
                         const std::string& transport) {
    auto samples = time_pattern_iters(ranks, iters, cfg, [=](bc::Communicator& comm) {
        const int next = (comm.rank() + 1) % comm.size();
        const int prev = (comm.rank() + comm.size() - 1) % comm.size();
        const int tag = comm.new_plan_tag();
        auto builder = bc::Plan::builder(comm);
        int s = builder.add_send(next, tag, bytes);
        int r = builder.add_recv(prev, tag, bytes);
        auto plan = std::make_shared<bc::Plan>(builder.build());
        return std::function<void()>([plan, s, r, bytes, rank = comm.rank()] {
            plan->start();
            auto buf = plan->send_buffer(s, bytes);
            std::memset(buf.data(), rank + 1, buf.size());
            plan->publish(s);
            plan->wait();
            plan->release_recv(r);
        });
    });
    return summarize("ring", transport, ranks, bytes,
                     static_cast<std::size_t>(ranks) * bytes, std::move(samples));
}

/// Structured 8-direction halo on a periodic torus: one plan, one
/// channel per (neighbor, direction), uniform message size.
PatternResult bench_halo(int ranks, std::size_t bytes, int iters, bc::ContextConfig cfg,
                         const std::string& transport) {
    auto samples = time_pattern_iters(ranks, iters, cfg, [=](bc::Communicator& comm) {
        auto dims = bg::dims_create_2d(comm.size());
        auto topo = std::make_shared<bg::CartTopology2D>(comm.size(), dims,
                                                         std::array<bool, 2>{true, true});
        // One plan tag per direction, allocated collectively so every
        // rank derives the same tag for the same direction; the channel
        // pairing mirrors grid::HaloPlan (direction k pairs with its
        // mirror 7-k on the receiving side).
        std::array<int, 8> tag{};
        for (auto& t : tag) t = comm.new_plan_tag();
        auto builder = bc::Plan::builder(comm);
        auto sends = std::make_shared<std::vector<int>>();
        auto recvs = std::make_shared<std::vector<int>>();
        for (int k = 0; k < 8; ++k) {
            auto [di, dj] = bg::kNeighborDirs2D[static_cast<std::size_t>(k)];
            int nbr = topo->neighbor(comm.rank(), di, dj);
            if (nbr < 0) continue;
            sends->push_back(builder.add_send(nbr, tag[static_cast<std::size_t>(k)], bytes));
            recvs->push_back(builder.add_recv(nbr, tag[static_cast<std::size_t>(7 - k)], bytes));
        }
        auto plan = std::make_shared<bc::Plan>(builder.build());
        return std::function<void()>([plan, sends, recvs, bytes, rank = comm.rank()] {
            plan->start();
            for (int s : *sends) {
                auto buf = plan->send_buffer(s, bytes);
                std::memset(buf.data(), rank + 1, buf.size());
                plan->publish(s);
            }
            plan->wait();
            for (int r : *recvs) plan->release_recv(r);
        });
    });
    // Periodic torus: every rank has all 8 neighbors.
    return summarize("halo", transport, ranks, bytes,
                     static_cast<std::size_t>(ranks) * 8u * bytes, std::move(samples));
}

/// Pairwise all-to-all: one flat plan with p-1 sends and p-1 recvs per
/// rank (the phased pairwise schedule's channel set), published in
/// round order.
PatternResult bench_pairwise(int ranks, std::size_t bytes, int iters, bc::ContextConfig cfg,
                             const std::string& transport) {
    auto samples = time_pattern_iters(ranks, iters, cfg, [=](bc::Communicator& comm) {
        const int p = comm.size();
        const int tag = comm.new_plan_tag();
        auto builder = bc::Plan::builder(comm);
        auto sends = std::make_shared<std::vector<int>>();
        auto recvs = std::make_shared<std::vector<int>>();
        for (int round = 1; round < p; ++round) {
            int dst = (comm.rank() + round) % p;
            int src = (comm.rank() - round + p) % p;
            sends->push_back(builder.add_send(dst, tag, bytes));
            recvs->push_back(builder.add_recv(src, tag, bytes));
        }
        auto plan = std::make_shared<bc::Plan>(builder.build());
        return std::function<void()>([plan, sends, recvs, bytes, rank = comm.rank()] {
            plan->start();
            for (int s : *sends) {
                auto buf = plan->send_buffer(s, bytes);
                std::memset(buf.data(), rank + 1, buf.size());
                plan->publish(s);
            }
            plan->wait();
            for (int r : *recvs) plan->release_recv(r);
        });
    });
    return summarize("pairwise", transport, ranks, bytes,
                     static_cast<std::size_t>(ranks) * static_cast<std::size_t>(ranks - 1) *
                         bytes,
                     std::move(samples));
}

/// Bruck all-to-all rounds: ceil(log2 p) store-and-forward rounds, each
/// its own plan; round k ships ceil(p/2) aggregated blocks to rank
/// (r + 2^k) % p.
PatternResult bench_bruck(int ranks, std::size_t bytes, int iters, bc::ContextConfig cfg,
                          const std::string& transport) {
    const std::size_t round_bytes =
        bytes * ((static_cast<std::size_t>(ranks) + 1) / 2);
    int rounds = 0;
    for (int step = 1; step < ranks; step <<= 1) ++rounds;
    auto samples = time_pattern_iters(ranks, iters, cfg, [=](bc::Communicator& comm) {
        const int p = comm.size();
        auto plans = std::make_shared<std::vector<bc::Plan>>();
        auto sends = std::make_shared<std::vector<int>>();
        auto recvs = std::make_shared<std::vector<int>>();
        for (int step = 1; step < p; step <<= 1) {
            const int tag = comm.new_plan_tag();
            auto builder = bc::Plan::builder(comm);
            sends->push_back(builder.add_send((comm.rank() + step) % p, tag, round_bytes));
            recvs->push_back(builder.add_recv((comm.rank() - step + p) % p, tag, round_bytes));
            plans->push_back(builder.build());
        }
        return std::function<void()>([plans, sends, recvs, round_bytes, rank = comm.rank()] {
            for (std::size_t k = 0; k < plans->size(); ++k) {
                auto& plan = (*plans)[k];
                plan.start();
                auto buf = plan.send_buffer((*sends)[k], round_bytes);
                std::memset(buf.data(), rank + 1, buf.size());
                plan.publish((*sends)[k]);
                plan.wait();
                plan.release_recv((*recvs)[k]);
            }
        });
    });
    return summarize("bruck", transport, ranks, bytes,
                     static_cast<std::size_t>(ranks) * static_cast<std::size_t>(rounds) *
                         round_bytes,
                     std::move(samples));
}

/// FFT brick->pencil reshape through the plan-backed p2p path. The grid
/// edge is derived from --bytes so one brick/pencil intersection is
/// about that size; total bytes counts the whole redistributed grid
/// (self-overlap included), so treat GB/s as indicative.
PatternResult bench_reshape(int ranks, std::size_t bytes, int iters, bc::ContextConfig cfg,
                            const std::string& transport) {
    auto dims = bg::dims_create_2d(ranks);
    int n = static_cast<int>(std::lround(std::sqrt(
        static_cast<double>(bytes) / sizeof(bf::cplx) * ranks * dims[1])));
    if (n < ranks) n = ranks;
    auto samples = time_pattern_iters(ranks, iters, cfg, [=](bc::Communicator& comm) {
        std::array<int, 2> global{n, n};
        auto bricks = std::make_shared<std::vector<bf::Box2D>>(bf::brick_boxes(global, dims));
        auto pencils = std::make_shared<std::vector<bf::Box2D>>(
            bf::pencil_boxes(global, comm.size(), /*long_axis=*/1));
        auto plan = std::make_shared<bf::ReshapePlan>(comm.rank(), *bricks, *pencils);
        auto src = std::make_shared<bf::Layout2D>(
            bf::Layout2D{(*bricks)[static_cast<std::size_t>(comm.rank())], 1});
        auto dst = std::make_shared<bf::Layout2D>(
            bf::Layout2D{(*pencils)[static_cast<std::size_t>(comm.rank())], 1});
        auto in = std::make_shared<std::vector<bf::cplx>>(src->size());
        for (std::size_t i = 0; i < in->size(); ++i) {
            (*in)[i] = {static_cast<double>(i % 97), static_cast<double>(comm.rank())};
        }
        auto out = std::make_shared<std::vector<bf::cplx>>();
        return std::function<void()>([&comm, plan, src, dst, in, out, bricks, pencils] {
            plan->execute(comm, *src, std::span<const bf::cplx>(*in), *dst, *out,
                          /*use_alltoall=*/false);
        });
    });
    const std::size_t total = static_cast<std::size_t>(n) * static_cast<std::size_t>(n) *
                              sizeof(bf::cplx);
    const std::size_t isect = (static_cast<std::size_t>(n) / static_cast<std::size_t>(ranks)) *
                              (static_cast<std::size_t>(n) / static_cast<std::size_t>(dims[1])) *
                              sizeof(bf::cplx);
    return summarize("reshape", transport, ranks, isect, total, std::move(samples));
}

// ---------------------------------------------------------------- calibrate

/// Fit (latency, bandwidth, local-copy) for one transport and write the
/// machine profile netsim/profile.hpp loads.
int calibrate(const std::string& transport, bc::ContextConfig cfg, bool quick,
              const std::string& out_path) {
    const int ranks = 2;
    const int iters = bb::scaled_iters(quick, 200);

    auto ring_median = [&](std::size_t bytes) {
        return bb::median_of(3, [&] {
            auto samples = time_pattern_iters(ranks, iters, cfg, [=](bc::Communicator& comm) {
                const int next = (comm.rank() + 1) % comm.size();
                const int prev = (comm.rank() + comm.size() - 1) % comm.size();
                const int tag = comm.new_plan_tag();
                auto builder = bc::Plan::builder(comm);
                int s = builder.add_send(next, tag, bytes);
                int r = builder.add_recv(prev, tag, bytes);
                auto plan = std::make_shared<bc::Plan>(builder.build());
                return std::function<void()>([plan, s, r, bytes] {
                    plan->start();
                    auto buf = plan->send_buffer(s, bytes);
                    std::memset(buf.data(), 1, buf.size());
                    plan->publish(s);
                    plan->wait();
                    plan->release_recv(r);
                });
            });
            return bb::iter_stats(samples).med;
        });
    };

    const std::size_t small_bytes = 8;
    const std::size_t large_bytes = 4u << 20;
    const double latency = ring_median(small_bytes);
    const double large = ring_median(large_bytes);
    const double serialization = large > latency ? large - latency : large;
    const double bandwidth = static_cast<double>(large_bytes) / serialization;

    // Local-copy bandwidth: a plain memcpy sweep between two buffers
    // larger than cache, medianed like everything else.
    const std::size_t copy_bytes = 16u << 20;
    std::vector<std::byte> a(copy_bytes, std::byte{1});
    std::vector<std::byte> b(copy_bytes);
    const int copy_reps = quick ? 3 : 20;
    double copy_seconds = bb::median_of(copy_reps, [&] {
        auto t0 = std::chrono::steady_clock::now();
        std::memcpy(b.data(), a.data(), copy_bytes);
        auto t1 = std::chrono::steady_clock::now();
        // Alternate direction so neither buffer stays exclusively cached.
        std::swap(a, b);
        return std::chrono::duration<double>(t1 - t0).count();
    });
    const double local_copy = static_cast<double>(copy_bytes) / copy_seconds;

    std::printf("calibrated %s: latency %.2f us, bandwidth %.2f GB/s, local copy %.2f GB/s\n",
                transport.c_str(), latency * 1e6, bandwidth / 1e9, local_copy / 1e9);

    const std::string path = out_path.empty() ? "machine_profile.json" : out_path;
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "error: cannot open %s for writing\n", path.c_str());
        return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"transport\": \"%s\",\n"
                 "  \"latency_seconds\": %.9e,\n"
                 "  \"bandwidth_bytes_per_second\": %.9e,\n"
                 "  \"local_copy_bandwidth_bytes_per_second\": %.9e\n"
                 "}\n",
                 transport.c_str(), latency, bandwidth, local_copy);
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
    return 0;
}

void write_results_json(const std::vector<PatternResult>& results, const std::string& path) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "error: cannot open %s for writing\n", path.c_str());
        std::exit(1);
    }
    std::fprintf(f, "{\n  \"bench\": \"patterns\",\n  \"results\": [\n");
    for (std::size_t i = 0; i < results.size(); ++i) {
        const PatternResult& r = results[i];
        std::fprintf(f,
                     "    {\"op\": \"%s\", \"algo\": \"%s\", \"ranks\": %d, \"bytes\": %zu, "
                     "\"iters\": %d, \"ns_per_op\": %.1f, \"min_ns\": %.1f, \"avg_ns\": %.1f, "
                     "\"max_ns\": %.1f, \"total_bytes\": %zu, \"gbps\": %.4f}%s\n",
                     r.base.op.c_str(), r.base.algo.c_str(), r.base.ranks, r.base.bytes,
                     r.base.iters, r.base.ns_per_op, r.stats.min * 1e9, r.stats.avg * 1e9,
                     r.stats.max * 1e9, r.total_bytes, r.gbps,
                     i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
}

} // namespace

int main(int argc, char** argv) {
    std::string schedule = "all";
    std::string transport;
    std::string out_path;
    int ranks = 8;
    long long bytes_arg = -1;
    int iters_arg = -1;
    bool quick = false;
    bool do_calibrate = false;
    bool do_trace = false;
    auto usage = [&] {
        std::fprintf(stderr,
                     "usage: %s [--schedule halo|ring|pairwise|bruck|reshape|all]\n"
                     "          [--transport inproc|shm|loopback] [--ranks N] [--bytes N]\n"
                     "          [--iters N] [--quick] [--out <file.json>] [--calibrate]\n"
                     "          [--trace]   (arm telemetry; writes beatnik-<pid>.trace.json\n"
                     "                       or $BEATNIK_TRACE_FILE at exit)\n",
                     argv[0]);
        return 2;
    };
    for (int i = 1; i < argc; ++i) {
        auto next = [&](const char* flag) -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "error: %s needs a value\n", flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (std::strcmp(argv[i], "--schedule") == 0) {
            schedule = next("--schedule");
        } else if (std::strcmp(argv[i], "--transport") == 0) {
            transport = next("--transport");
        } else if (std::strcmp(argv[i], "--ranks") == 0) {
            ranks = std::atoi(next("--ranks"));
        } else if (std::strcmp(argv[i], "--bytes") == 0) {
            bytes_arg = std::atoll(next("--bytes"));
        } else if (std::strcmp(argv[i], "--iters") == 0) {
            iters_arg = std::atoi(next("--iters"));
        } else if (std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
        } else if (std::strcmp(argv[i], "--out") == 0) {
            out_path = next("--out");
        } else if (std::strcmp(argv[i], "--calibrate") == 0) {
            do_calibrate = true;
        } else if (std::strcmp(argv[i], "--trace") == 0) {
            do_trace = true;
        } else {
            return usage();
        }
    }
    if (ranks < 2) {
        std::fprintf(stderr, "error: --ranks must be >= 2\n");
        return 2;
    }

    bc::ContextConfig cfg;
    if (!transport.empty()) cfg.transport = transport;
    cfg.telemetry = do_trace;
    // Label records with the *effective* transport when none was given.
    std::string label = transport;
    if (label.empty()) {
        const char* env = std::getenv("BEATNIK_TRANSPORT");
        label = (env != nullptr && *env != '\0') ? env : "inproc";
    }

    if (do_calibrate) return calibrate(label, cfg, quick, out_path);

    struct Sched {
        const char* name;
        PatternResult (*fn)(int, std::size_t, int, bc::ContextConfig, const std::string&);
        int full_iters;
        std::size_t default_bytes;
    };
    const std::vector<Sched> all{
        {"ring", bench_ring, 200, 64 * 1024},
        {"halo", bench_halo, 100, 64 * 1024},
        {"pairwise", bench_pairwise, 50, 64 * 1024},
        {"bruck", bench_bruck, 50, 16 * 1024},
        {"reshape", bench_reshape, 50, 64 * 1024},
    };

    std::vector<PatternResult> results;
    bool matched = false;
    for (const Sched& s : all) {
        if (schedule != "all" && schedule != s.name) continue;
        matched = true;
        const std::size_t bytes =
            bytes_arg >= 0 ? static_cast<std::size_t>(bytes_arg) : s.default_bytes;
        const int iters =
            iters_arg > 0 ? iters_arg : bb::scaled_iters(quick, s.full_iters);
        results.push_back(s.fn(ranks, bytes, iters, cfg, label));
    }
    if (!matched) return usage();

    std::printf("%-10s %-9s %6s %10s %6s %12s %12s %12s %12s %8s\n", "schedule", "transport",
                "ranks", "bytes", "iters", "min us", "med us", "avg us", "max us", "GB/s");
    for (const PatternResult& r : results) {
        std::printf("%-10s %-9s %6d %10zu %6d %12.2f %12.2f %12.2f %12.2f %8.3f\n",
                    r.base.op.c_str(), r.base.algo.c_str(), r.base.ranks, r.base.bytes,
                    r.base.iters, r.stats.min * 1e6, r.stats.med * 1e6, r.stats.avg * 1e6,
                    r.stats.max * 1e6, r.gbps);
    }
    if (!out_path.empty()) {
        write_results_json(results, out_path);
        std::printf("wrote %s\n", out_path.c_str());
    }
    return 0;
}
