/// \file model_helpers.hpp
/// \brief Shared machinery for the paper-figure benchmarks.
///
/// The scaling figures (3, 4, 5, 8, 9) ran on 4–1024 Lassen GPUs. Here
/// each data point is produced by building the *real* communication
/// schedule the library would execute at that rank count (FFT reshape
/// plans, migration/ghost exchanges) and replaying it through the netsim
/// machine model (DESIGN.md §1, substitution table). Points are labeled
/// `modeled`; small-rank real executions on the host machine are labeled
/// `measured` where a bench includes them. Only curve *shapes* are
/// claimed, never absolute seconds.
#pragma once

#include <array>
#include <cstdio>
#include <string>
#include <vector>

#include "core/beatnik.hpp"
#include "netsim/fft_bridge.hpp"

namespace beatnik::benchmod {

/// Rank grids used by every scaling sweep (square process grids like the
/// paper's GPU counts).
inline std::vector<std::array<int, 2>> paper_rank_grids(int max_ranks = 1024) {
    std::vector<std::array<int, 2>> grids;
    for (int side = 2; side * side <= max_ranks; side *= 2) {
        grids.push_back({side, side}); // 4, 16, 64, 256, 1024 ranks
    }
    return grids;
}

/// Per-step time of the low-order solver at scale:
///   3 RK stages x (6 distributed FFTs + stencil work + 2 state halos).
/// The FFT schedule is the real plan from minifft; halo and stencil terms
/// use the machine model directly.
inline double loworder_step_seconds(std::array<int, 2> topo, std::array<int, 2> global,
                                    const fft::FFTConfig& config,
                                    const netsim::MachineModel& machine) {
    const int p = topo[0] * topo[1];
    auto planned = fft::DistributedFFT2D::plan_schedule(global, topo, config);
    netsim::NetworkSimulator sim(machine, p);
    double t_fft = sim.simulate(netsim::fft_phases(planned, machine, p, /*transforms=*/1))
                       .makespan;

    // Width-2 halo of the 5-component state: 8 messages per rank per
    // exchange; edge length = block side.
    const double block_i = static_cast<double>(global[0]) / topo[0];
    const double block_j = static_cast<double>(global[1]) / topo[1];
    const double halo_bytes = 2.0 * (block_i + block_j) * 5.0 * sizeof(double);
    double t_halo = machine.wire_time(0, machine.ranks_per_node, // inter-node neighbor
                                      static_cast<std::size_t>(halo_bytes)) +
                    8.0 * machine.per_message_overhead;

    // Local stencil + multiplier work: ~150 flops per point per stage.
    const double points_per_rank = block_i * block_j;
    double t_stencil = 150.0 * points_per_rank / machine.flops_rate;

    const double per_stage = 6.0 * t_fft + 2.0 * t_halo + t_stencil;
    return 3.0 * per_stage;
}

/// Per-derivative-evaluation time of the cutoff solver at scale, from a
/// per-rank spatial ownership distribution (measured or synthetic):
/// migrate -> ghost halo -> neighbor search + pair kernel -> migrate back.
struct CutoffModelInput {
    std::vector<double> owned_share;  ///< per-rank fraction of all points
    double total_points = 0.0;        ///< global surface node count
    double avg_neighbors = 0.0;       ///< mean neighbor-list length
    double ghost_fraction = 0.1;      ///< ghost copies received per owned point
    double migrate_fraction = 0.05;   ///< points changing owner per eval
    /// Fixed per-rank cost of one derivative evaluation regardless of
    /// point count: GPU kernel launches (dozens per evaluation),
    /// neighbor-structure construction, and migration setup. This floor
    /// is what limits the paper's strong scaling to ~21% efficiency.
    double per_eval_overhead = 5.0e-3;

    /// Ghost copies per owned point when blocks of width `block` receive
    /// everything within `cutoff` of their boundary: the number of extra
    /// blocks whose expanded footprint covers a point, averaged over the
    /// block (exceeds 1 once cutoff > block width, the paper's 256-rank
    /// regime).
    static double ghost_copies(double cutoff, double block) {
        double span = 1.0 + 2.0 * cutoff / block;
        return span * span - 1.0;
    }
};

inline double cutoff_eval_seconds(int p, const CutoffModelInput& in,
                                  const netsim::MachineModel& machine) {
    constexpr double kParticleBytes = 56.0;   // pos + gamma + ids
    constexpr double kResultBytes = 32.0;     // velocity + ids
    std::vector<netsim::Phase> phases;

    // Count exchange preceding an alltoallv (the latency floor of the
    // migration machinery — every rank talks to every rank even when
    // payloads are empty). The pipeline runs one per payload exchange.
    auto counts_phase = [&](const std::string& label) {
        netsim::Phase counts;
        counts.label = label;
        counts.kind = netsim::PhaseKind::builtin_alltoall;
        for (int s = 0; s < p; ++s) {
            for (int d = 0; d < p; ++d) {
                if (s != d) counts.messages.push_back({s, d, sizeof(std::size_t)});
            }
        }
        return counts;
    };

    // Payload migration: migrate_fraction of each rank's points move to a
    // (geometrically neighboring) different rank.
    auto ring_payload = [&](const std::string& label, double bytes_per_rank_factor,
                            double per_point_bytes) {
        netsim::Phase ph;
        ph.label = label;
        for (int r = 0; r < p; ++r) {
            double points_r = in.owned_share[static_cast<std::size_t>(r)] * in.total_points;
            auto bytes = static_cast<std::size_t>(points_r * bytes_per_rank_factor *
                                                  per_point_bytes);
            if (bytes == 0) continue;
            // Geometric neighbors approximated by ring offsets +-1, +-dims.
            int side = 1;
            while (side * side < p) ++side;
            for (int off : {1, p - 1, side, p - side}) {
                ph.messages.push_back({r, (r + off) % p, bytes / 4});
            }
        }
        return ph;
    };
    phases.push_back(counts_phase("migrate-counts"));
    phases.push_back(ring_payload("migrate-out", in.migrate_fraction, kParticleBytes));
    phases.push_back(counts_phase("ghost-counts"));
    phases.push_back(ring_payload("ghost-halo", in.ghost_fraction, kParticleBytes));

    // Neighbor search + pair kernel: the dominant compute. Pair count per
    // rank scales with its owned points times the neighbor density.
    netsim::Phase compute;
    compute.label = "pairs";
    compute.compute_seconds.resize(static_cast<std::size_t>(p), 0.0);
    for (int r = 0; r < p; ++r) {
        double points_r = in.owned_share[static_cast<std::size_t>(r)] * in.total_points;
        double pairs_r = points_r * in.avg_neighbors;
        double bin_cost = 40.0 * points_r * (1.0 + in.ghost_fraction) / machine.flops_rate;
        compute.compute_seconds[static_cast<std::size_t>(r)] =
            pairs_r / machine.pair_rate + bin_cost + in.per_eval_overhead;
    }
    phases.push_back(compute);

    phases.push_back(counts_phase("return-counts"));
    phases.push_back(ring_payload("migrate-back", in.migrate_fraction, kResultBytes));

    netsim::NetworkSimulator sim(machine, p);
    return sim.simulate(phases).makespan;
}

/// Printed row of a scaling table.
/// Measured seconds/derivative-eval of a real device-backend cutoff run,
/// once with the three-queue overlapped schedule and once fully fenced.
/// The cutoff benches report the delta: overlap must never change the
/// results (equivalence-tested in core.cutoff_device), only the time.
struct OverlapDelta {
    double fenced_s = 0.0;
    double overlapped_s = 0.0;
    [[nodiscard]] double gain() const {
        return fenced_s > 0.0 ? (fenced_s - overlapped_s) / fenced_s : 0.0;
    }
};

inline OverlapDelta measure_overlap_delta(int ranks, int mesh, double cutoff, int steps = 2) {
    const bool saved_overlap = CutoffBRSolver::overlap();
    const par::Backend saved_backend = par::default_backend().load();
    par::set_default_backend(par::Backend::device);
    auto timed = [&](bool overlap) {
        CutoffBRSolver::set_overlap(overlap);
        double seconds = 0.0;
        comm::Context::run(ranks, [&](comm::Communicator& c) {
            auto params = decks::multimode_highorder(mesh, cutoff);
            Solver solver(c, params);
            solver.step(); // warm-up: plans, staging, device mirrors
            c.barrier();
            Stopwatch watch;
            solver.advance(steps);
            c.barrier();
            if (c.rank() == 0) seconds = watch.seconds() / (steps * 3.0);
        });
        return seconds;
    };
    OverlapDelta d;
    d.fenced_s = timed(false);
    d.overlapped_s = timed(true);
    CutoffBRSolver::set_overlap(saved_overlap);
    par::set_default_backend(saved_backend);
    return d;
}

inline void print_overlap_delta(const OverlapDelta& d, int ranks, int mesh) {
    std::printf("overlap-vs-fence (device backend, %d ranks, %d^2 mesh): fenced %.4f "
                "s/eval, overlapped %.4f s/eval, gain %.1f%% (measured-host)\n",
                ranks, mesh, d.fenced_s, d.overlapped_s, 100.0 * d.gain());
}

inline void print_row(const char* bench, int gpus, double seconds, const char* provenance,
                      double reference = 0.0) {
    if (reference > 0.0) {
        std::printf("%-28s %6d  %12.4f  %9.2fx  %s\n", bench, gpus, seconds,
                    reference / seconds, provenance);
    } else {
        std::printf("%-28s %6d  %12.4f  %9s  %s\n", bench, gpus, seconds, "-", provenance);
    }
}

} // namespace beatnik::benchmod
