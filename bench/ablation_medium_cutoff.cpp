/// \file ablation_medium_cutoff.cpp
/// \brief Ablation study from the paper's future-work list (§6): "examine
/// both the performance and accuracy of the medium-order model when used
/// with the cutoff solver", plus the cutoff-distance accuracy/performance
/// tradeoff the CutoffBRSolver description calls out (§3.2).
///
/// Real executions on 4 thread-ranks, periodic tile, fixed dt. The
/// reference trajectory is the high-order model with the exact O(N^2)
/// solver; every variant reports wall-clock per step and deviation from
/// the reference after a fixed number of steps.
#include <cstdio>
#include <string>
#include <vector>

#include "core/beatnik.hpp"
#include "io/writers.hpp"

namespace b = beatnik;
namespace bc = beatnik::comm;

namespace {

struct RunResult {
    double seconds_per_step = 0.0;
    double max_height = 0.0;
    double vorticity_l2 = 0.0;
};

RunResult run_variant(b::Order order, b::BRSolverKind kind, double cutoff, int mesh,
                      int steps) {
    RunResult out;
    bc::ContextConfig cfg;
    cfg.recv_timeout_seconds = 300.0;
    bc::Context::run(
        4,
        [&](bc::Communicator& comm) {
            b::Params p;
            p.num_nodes = {mesh, mesh};
            p.boundary = b::Boundary::periodic;
            p.order = order;
            p.br_solver = kind;
            p.cutoff_distance = cutoff;
            p.surface_low = {-1.0, -1.0};
            p.surface_high = {1.0, 1.0};
            p.box_low = {-1.0, -1.0, -2.0};
            p.box_high = {1.0, 1.0, 2.0};
            p.initial.kind = b::InitialCondition::Kind::multimode;
            p.initial.magnitude = 0.05;
            p.dt = 0.002; // shared trajectory timestep
            b::Solver solver(comm, p);
            comm.barrier();
            b::Stopwatch watch;
            solver.advance(steps);
            comm.barrier();
            auto s = b::summarize(solver.state());
            if (comm.rank() == 0) {
                out.seconds_per_step = watch.seconds() / steps;
                out.max_height = s.max_height;
                out.vorticity_l2 = s.vorticity_l2;
            }
        },
        cfg);
    return out;
}

} // namespace

int main(int argc, char** argv) {
    const bool paper_scale = argc > 1 && std::string(argv[1]) == "--scale=paper";
    const int mesh = paper_scale ? 96 : 48;
    const int steps = paper_scale ? 20 : 10;

    std::printf("=== Ablation: medium-order + cutoff solver (paper §6 future work) ===\n");
    std::printf("4 ranks, %d^2 periodic mesh, %d steps, dt=0.002 — reference is "
                "high-order + exact solver\n\n", mesh, steps);

    auto reference = run_variant(b::Order::high, b::BRSolverKind::exact, 0.5, mesh, steps);
    std::printf("%-26s %10s  %12s  %12s\n", "variant", "s/step", "d(max|z3|)", "d(|w|_2)");
    std::printf("%-26s %10.4f  %12s  %12s\n", "high+exact (reference)",
                reference.seconds_per_step, "-", "-");

    b::io::CsvWriter csv("ablation_medium_cutoff.csv",
                         {"order", "cutoff", "seconds_per_step", "height_err", "vort_err"});

    struct Variant {
        const char* name;
        b::Order order;
        b::BRSolverKind kind;
        double cutoff;
    };
    std::vector<Variant> variants{
        {"high+cutoff(1.0)", b::Order::high, b::BRSolverKind::cutoff, 1.0},
        {"high+cutoff(0.6)", b::Order::high, b::BRSolverKind::cutoff, 0.6},
        {"high+cutoff(0.3)", b::Order::high, b::BRSolverKind::cutoff, 0.3},
        {"medium+cutoff(1.0)", b::Order::medium, b::BRSolverKind::cutoff, 1.0},
        {"medium+cutoff(0.6)", b::Order::medium, b::BRSolverKind::cutoff, 0.6},
        {"medium+cutoff(0.3)", b::Order::medium, b::BRSolverKind::cutoff, 0.3},
        {"medium+exact", b::Order::medium, b::BRSolverKind::exact, 0.5},
        {"low (FFT only)", b::Order::low, b::BRSolverKind::cutoff, 0.5},
    };

    std::vector<double> high_errs, medium_errs;
    for (const auto& v : variants) {
        auto r = run_variant(v.order, v.kind, v.cutoff, mesh, steps);
        double height_err = std::abs(r.max_height - reference.max_height) /
                            std::max(reference.max_height, 1e-12);
        double vort_err = std::abs(r.vorticity_l2 - reference.vorticity_l2) /
                          std::max(reference.vorticity_l2, 1e-12);
        std::printf("%-26s %10.4f  %11.2f%%  %11.2f%%\n", v.name, r.seconds_per_step,
                    height_err * 100.0, vort_err * 100.0);
        std::vector<double> row{static_cast<double>(static_cast<int>(v.order)), v.cutoff,
                                r.seconds_per_step, height_err, vort_err};
        csv.row(row);
        if (v.kind == b::BRSolverKind::cutoff && v.order == b::Order::high) {
            high_errs.push_back(height_err);
        }
        if (v.kind == b::BRSolverKind::cutoff && v.order == b::Order::medium) {
            medium_errs.push_back(height_err);
        }
    }

    // Findings the paper anticipated: cutoff distance trades accuracy for
    // speed in both models; the medium model inherits the tradeoff.
    bool monotone_high = high_errs.size() == 3 && high_errs[0] <= high_errs[2];
    bool monotone_medium = medium_errs.size() == 3 && medium_errs[0] <= medium_errs[2];
    std::printf("\nfinding: error grows as the cutoff shrinks — high-order: %s, "
                "medium-order: %s\n",
                monotone_high ? "YES" : "NO", monotone_medium ? "YES" : "NO");
    std::printf("wrote ablation_medium_cutoff.csv\n");
    return 0;
}
