/// \file micro_halo.cpp
/// \brief Persistent-plan vs legacy per-call microbenchmarks for the two
/// p2p-heavy patterns the paper leans on: structured halo exchange and
/// the FFT reshape's custom point-to-point path.
///
/// `algo` selects the implementation:
///   * "plan"   — a comm::Plan-backed path built once and reused
///     (grid::HaloPlan / fft::ReshapePlan p2p), zero allocation and no
///     mailbox matching per iteration;
///   * "legacy" — the pre-plan per-call path, replicated here verbatim:
///     user-tag buffered sends through the mailbox, pack/unpack staging
///     vectors, and (for reshape) the zero-fill output pass;
///   * "device" — (halo only) the GPU-shaped backend: the field lives in
///     a device mirror and device kernels pack/unpack straight into the
///     plan's pinned transport buffers, quantifying the pack/stage
///     overhead of the device split versus the host plan path. This
///     column keeps the fence-everything schedule (one fence after all
///     pack kernels, one before releases);
///   * "device_overlap" — the per-direction event schedule: each
///     direction publishes as soon as its own pack kernel completes and
///     each recv slot is released on its own unpack event, overlapping
///     pack with communication (the solver-loop default).
///
/// One JSON record per configuration in the compare_benchmarks.py schema
/// (`bytes` = the largest single point-to-point message of the pattern).
///
/// Usage:
///   bench_micro_halo [--out <file.json>] [--quick]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "fft/partition.hpp"
#include "fft/reshape.hpp"
#include "grid/halo.hpp"
#include "measure.hpp"

namespace bc = beatnik::comm;
namespace bg = beatnik::grid;
namespace bf = beatnik::fft;
using beatnik::bench::Result;

namespace {

/// Time `iters` runs of op() per rank inside one Context::run (setup and
/// thread spawn excluded); returns rank 0's wall time per iteration.
template <class Setup>
double time_pattern(int ranks, int iters, Setup&& setup) {
    bc::ContextConfig cfg;
    double ns_per_op = 0.0;
    bc::Context::run(ranks, [&](bc::Communicator& comm) {
        auto op = setup(comm);
        const int warmup = iters >= 10 ? iters / 10 : 1;
        for (int i = 0; i < warmup; ++i) op();
        comm.barrier();
        auto t0 = std::chrono::steady_clock::now();
        for (int i = 0; i < iters; ++i) op();
        comm.barrier();
        auto t1 = std::chrono::steady_clock::now();
        if (comm.rank() == 0) {
            ns_per_op = std::chrono::duration<double, std::nano>(t1 - t0).count() / iters;
        }
    }, cfg);
    return ns_per_op;
}

/// The pre-plan halo exchange, replicated: per-call neighbor discovery,
/// staging-vector pack, buffered user-tag sends, copy-out receives.
template <class T, int C>
void legacy_halo_exchange(bc::Communicator& comm, const bg::CartTopology2D& topo,
                          const bg::LocalGrid2D& grid, bg::NodeField<T, C>& field) {
    const int rank = comm.rank();
    std::vector<T> buf;
    for (int k = 0; k < 8; ++k) {
        auto [di, dj] = bg::kNeighborDirs2D[static_cast<std::size_t>(k)];
        int nbr = topo.neighbor(rank, di, dj);
        if (nbr < 0) continue;
        field.pack(grid.shared_space(di, dj), buf);
        comm.send(std::span<const T>(buf.data(), buf.size()), nbr, 1000 + (7 - k));
    }
    std::vector<T> incoming;
    for (int k = 0; k < 8; ++k) {
        auto [di, dj] = bg::kNeighborDirs2D[static_cast<std::size_t>(k)];
        int nbr = topo.neighbor(rank, di, dj);
        if (nbr < 0) continue;
        comm.recv<T>(incoming, nbr, 1000 + k);
        field.unpack(grid.halo_space(di, dj), incoming);
    }
}

enum class HaloAlgo { legacy, plan, device, device_overlap };

Result bench_halo(int ranks, int nodes_per_axis, int halo, HaloAlgo algo, int iters) {
    constexpr int kComponents = 3;
    double ns = time_pattern(ranks, iters, [=](bc::Communicator& comm) {
        auto dims = bg::dims_create_2d(comm.size());
        auto mesh = std::make_shared<bg::GlobalMesh2D>(
            std::array<double, 2>{0.0, 0.0}, std::array<double, 2>{1.0, 1.0},
            std::array<int, 2>{nodes_per_axis, nodes_per_axis}, std::array<bool, 2>{true, true});
        auto topo = std::make_shared<bg::CartTopology2D>(comm.size(), dims,
                                                         std::array<bool, 2>{true, true});
        auto grid = std::make_shared<bg::LocalGrid2D>(*mesh, *topo, comm.rank(), halo);
        auto field = std::make_shared<bg::NodeField<double, kComponents>>(*grid);
        for (int i = 0; i < grid->owned_extent(0); ++i) {
            for (int j = 0; j < grid->owned_extent(1); ++j) {
                for (int c = 0; c < kComponents; ++c) (*field)(i, j, c) = i * 31.0 + j + c;
            }
        }
        if (algo == HaloAlgo::device || algo == HaloAlgo::device_overlap) {
            auto plan = std::make_shared<bg::HaloPlan<double, kComponents>>(comm, *topo, *grid);
            auto queue = std::make_shared<beatnik::par::device::Queue>();
            plan->enable_device(*queue, /*overlap=*/algo == HaloAlgo::device_overlap);
            field->enable_device_mirror();
            field->sync_to_device(*queue);
            queue->fence();
            return std::function<void()>([plan, queue, field, mesh, topo, grid] {
                plan->exchange(*field);
            });
        }
        if (algo == HaloAlgo::plan) {
            auto plan = std::make_shared<bg::HaloPlan<double, kComponents>>(comm, *topo, *grid);
            return std::function<void()>([plan, field, mesh, topo, grid] {
                plan->exchange(*field);
            });
        }
        return std::function<void()>([&comm, field, mesh, topo, grid] {
            legacy_halo_exchange(comm, *topo, *grid, *field);
        });
    });
    // Largest single message: an edge band (block_extent x halo x C).
    auto dims = bg::dims_create_2d(ranks);
    int block = nodes_per_axis / (dims[0] < dims[1] ? dims[0] : dims[1]);
    std::size_t edge_bytes =
        static_cast<std::size_t>(block) * static_cast<std::size_t>(halo) * kComponents *
        sizeof(double);
    const char* name = algo == HaloAlgo::device_overlap ? "device_overlap"
                       : algo == HaloAlgo::device       ? "device"
                       : algo == HaloAlgo::plan         ? "plan"
                                                        : "legacy";
    return {"halo", name, ranks, edge_bytes, iters, ns};
}

/// The pre-plan p2p reshape, replicated: zero-fill output, staging
/// vectors, blocking user-tag sends/recvs in plan order.
void legacy_reshape_p2p(bc::Communicator& comm, const bf::ReshapePlan& plan,
                        const bf::Layout2D& src, std::span<const bf::cplx> in,
                        const bf::Layout2D& dst, std::vector<bf::cplx>& out) {
    out.assign(dst.size(), bf::cplx{0.0, 0.0});
    constexpr int kTag = 2000;
    std::vector<bf::cplx> buf;
    auto pack = [&](const bf::Box2D& box) {
        buf.clear();
        for (int i = box.i.begin; i < box.i.end; ++i) {
            for (int j = box.j.begin; j < box.j.end; ++j) buf.push_back(in[src.offset(i, j)]);
        }
    };
    auto unpack = [&](const bf::Box2D& box, std::span<const bf::cplx> data) {
        std::size_t k = 0;
        for (int i = box.i.begin; i < box.i.end; ++i) {
            for (int j = box.j.begin; j < box.j.end; ++j) out[dst.offset(i, j)] = data[k++];
        }
    };
    for (const auto& t : plan.sends()) {
        if (t.peer == comm.rank()) continue;
        pack(t.box);
        comm.send(std::span<const bf::cplx>(buf.data(), buf.size()), t.peer, kTag);
    }
    std::vector<bf::cplx> incoming;
    for (const auto& t : plan.recvs()) {
        if (t.peer == comm.rank()) {
            pack(t.box);
            unpack(t.box, std::span<const bf::cplx>(buf.data(), buf.size()));
            continue;
        }
        comm.recv<bf::cplx>(incoming, t.peer, kTag);
        unpack(t.box, std::span<const bf::cplx>(incoming.data(), incoming.size()));
    }
}

Result bench_reshape(int ranks, int n, bool plan_path, int iters) {
    double ns = time_pattern(ranks, iters, [=](bc::Communicator& comm) {
        std::array<int, 2> global{n, n};
        auto dims = bg::dims_create_2d(comm.size());
        auto bricks = std::make_shared<std::vector<bf::Box2D>>(bf::brick_boxes(global, dims));
        auto pencils = std::make_shared<std::vector<bf::Box2D>>(
            bf::pencil_boxes(global, comm.size(), /*long_axis=*/1));
        auto plan = std::make_shared<bf::ReshapePlan>(comm.rank(), *bricks, *pencils);
        auto src = std::make_shared<bf::Layout2D>(
            bf::Layout2D{(*bricks)[static_cast<std::size_t>(comm.rank())], 1});
        auto dst = std::make_shared<bf::Layout2D>(
            bf::Layout2D{(*pencils)[static_cast<std::size_t>(comm.rank())], 1});
        auto in = std::make_shared<std::vector<bf::cplx>>(src->size());
        for (std::size_t i = 0; i < in->size(); ++i) {
            (*in)[i] = {static_cast<double>(i % 97), static_cast<double>(comm.rank())};
        }
        auto out = std::make_shared<std::vector<bf::cplx>>();
        if (plan_path) {
            return std::function<void()>([&comm, plan, src, dst, in, out, bricks, pencils] {
                plan->execute(comm, *src, std::span<const bf::cplx>(*in), *dst, *out,
                              /*use_alltoall=*/false);
            });
        }
        return std::function<void()>([&comm, plan, src, dst, in, out, bricks, pencils] {
            legacy_reshape_p2p(comm, *plan, *src, std::span<const bf::cplx>(*in), *dst, *out);
        });
    });
    // Largest single message: one brick/pencil intersection. Bricks are
    // (n/dims[0]) x (n/dims[1]); j-pencils are (n/ranks) x n — so the
    // intersection is (n/ranks) x (n/dims[1]).
    auto dims = bg::dims_create_2d(ranks);
    std::size_t isect = (static_cast<std::size_t>(n) / static_cast<std::size_t>(ranks)) *
                        (static_cast<std::size_t>(n) / static_cast<std::size_t>(dims[1]));
    return {"reshape_p2p", plan_path ? "plan" : "legacy", ranks, isect * sizeof(bf::cplx), iters,
            ns};
}

} // namespace

int main(int argc, char** argv) {
    std::string out_path;
    bool quick = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out_path = argv[++i];
        } else {
            std::fprintf(stderr, "usage: %s [--out <file.json>] [--quick]\n", argv[0]);
            return 2;
        }
    }
    auto n = [quick](int full) { return beatnik::bench::scaled_iters(quick, full); };

    std::vector<Result> results;
    for (auto algo :
         {HaloAlgo::legacy, HaloAlgo::plan, HaloAlgo::device, HaloAlgo::device_overlap}) {
        results.push_back(bench_halo(8, 64, 2, algo, n(2000)));    // small blocks
        results.push_back(bench_halo(8, 256, 2, algo, n(500)));    // bigger bands
    }
    for (bool plan_path : {false, true}) {
        results.push_back(bench_reshape(8, 64, plan_path, n(1000)));    // small reshape
        results.push_back(bench_reshape(8, 256, plan_path, n(200)));    // bigger reshape
    }

    std::printf("%-12s %-8s %6s %10s %8s %14s\n", "op", "algo", "ranks", "bytes", "iters",
                "ns/op");
    for (const Result& r : results) {
        std::printf("%-12s %-8s %6d %10zu %8d %14.0f\n", r.op.c_str(), r.algo.c_str(), r.ranks,
                    r.bytes, r.iters, r.ns_per_op);
    }
    if (!out_path.empty()) {
        beatnik::bench::write_json("micro_halo", results, out_path);
        std::printf("wrote %s\n", out_path.c_str());
    }
    return 0;
}
