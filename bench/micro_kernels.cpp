/// \file micro_kernels.cpp
/// \brief Single-rank kernel microbenchmarks (google-benchmark): the
/// Birkhoff–Rott pair kernel, neighbor search, halo exchange, and
/// particle migration — the measured rates behind MachineModel::pair_rate
/// and the ablation data for the cutoff/bin-size design choices.
#include <benchmark/benchmark.h>

#include "base/rng.hpp"
#include "core/beatnik.hpp"

namespace b = beatnik;
namespace bc = beatnik::comm;
namespace bg = beatnik::grid;
namespace bs = beatnik::search;

namespace {

void BM_BRKernelPairs(benchmark::State& state) {
    // Raw pair-interaction throughput (the cutoff solver's inner loop).
    const auto n = static_cast<std::size_t>(state.range(0));
    beatnik::SplitMix64 rng(3);
    std::vector<b::Vec3> pos(n), gam(n);
    for (std::size_t i = 0; i < n; ++i) {
        pos[i] = {rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(-1, 1)};
        gam[i] = {rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(-1, 1)};
    }
    for (auto _ : state) {
        b::Vec3 acc{};
        for (std::size_t i = 0; i < n; ++i) {
            acc += b::br_kernel(pos[0], pos[i], gam[i], 1e-4);
        }
        benchmark::DoNotOptimize(acc);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n));
    state.counters["pairs_per_s"] = benchmark::Counter(
        static_cast<double>(state.iterations()) * static_cast<double>(n),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BRKernelPairs)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 17);

void BM_NeighborSearchBuildQuery(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    const double radius = 0.2;
    beatnik::SplitMix64 rng(11);
    std::vector<double> pts(3 * n);
    for (auto& v : pts) v = rng.uniform(-1.5, 1.5);
    for (auto _ : state) {
        bs::BinGrid3D grid(pts, radius);
        auto list = grid.query(pts, true);
        benchmark::DoNotOptimize(list.indices.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n));
}
BENCHMARK(BM_NeighborSearchBuildQuery)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_HaloExchange(benchmark::State& state) {
    // Real width-2 halo exchange of a 3-component field on a rank grid.
    const int p = static_cast<int>(state.range(0));
    const int mesh = static_cast<int>(state.range(1));
    for (auto _ : state) {
        bc::Context::run(p, [&](bc::Communicator& comm) {
            bg::GlobalMesh2D gm({0, 0}, {1, 1}, {mesh, mesh}, {true, true});
            bg::CartTopology2D topo(p, {0, 0}, {true, true});
            bg::LocalGrid2D lg(gm, topo, comm.rank(), 2);
            bg::NodeField<double, 3> f(lg);
            f.fill(1.0);
            for (int i = 0; i < 5; ++i) bg::halo_exchange(comm, topo, lg, f);
        });
    }
    state.SetItemsProcessed(state.iterations() * 5);
}
BENCHMARK(BM_HaloExchange)->Args({4, 128})->Args({16, 128})->Args({16, 512});

void BM_Migrate(benchmark::State& state) {
    // Particle migration with a configurable off-rank fraction — the
    // ablation for "how much does migration volume matter" (DESIGN.md §5).
    struct P {
        double x[7];
    };
    const int p = static_cast<int>(state.range(0));
    const int percent_moving = static_cast<int>(state.range(1));
    constexpr std::size_t kPerRank = 5000;
    for (auto _ : state) {
        bc::Context::run(p, [&](bc::Communicator& comm) {
            std::vector<P> particles(kPerRank);
            std::vector<int> dest(kPerRank);
            for (std::size_t k = 0; k < kPerRank; ++k) {
                bool moves = static_cast<int>(beatnik::hash_mix(5, k) % 100) < percent_moving;
                dest[k] = moves ? static_cast<int>(beatnik::hash_mix(9, k) %
                                                   static_cast<std::uint64_t>(comm.size()))
                                : comm.rank();
            }
            auto r = bg::migrate(comm, std::span<const P>(particles),
                                 std::span<const int>(dest));
            benchmark::DoNotOptimize(r.data());
        });
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(kPerRank) * p);
}
BENCHMARK(BM_Migrate)->Args({8, 0})->Args({8, 10})->Args({8, 50})->Args({8, 100});

void BM_CutoffSolverEval(benchmark::State& state) {
    // One full cutoff-solver derivative evaluation (the five-step
    // pipeline) at a small real scale.
    const int p = static_cast<int>(state.range(0));
    const int mesh = static_cast<int>(state.range(1));
    for (auto _ : state) {
        bc::Context::run(p, [&](bc::Communicator& comm) {
            auto params = b::decks::multimode_highorder(mesh, 0.4);
            b::Solver solver(comm, params);
            solver.step();
        });
    }
    state.SetLabel("includes solver setup");
}
BENCHMARK(BM_CutoffSolverEval)->Args({4, 32})->Args({4, 64})->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
