/// \file micro_kernels.cpp
/// \brief Single-rank kernel microbenchmarks: the Birkhoff–Rott pair
/// kernel, neighbor-search build + query (hash-map bin grid vs the dense
/// cell list, host and device builds), particle migration, and one full
/// cutoff-solver derivative evaluation — the measured rates behind
/// MachineModel::pair_rate and the ablation data for the cutoff/bin-size
/// design choices.
///
/// Records (compare_benchmarks.py schema; regression-tracked against
/// bench/results/baseline_micro_kernels.json in CI):
///   * op "br_pairs",  algo scalar — ns per kernel pair evaluation;
///   * op "nbr_build", algo bin_host | cell_host | cell_device — ns per
///     point to build the search structure (BinGrid3D hash-map binning
///     vs CellList3D count–scan–fill, serial and device kernels);
///   * op "nbr_query", algo bin_host | cell_host | cell_device — ns per
///     point to enumerate all self-query neighbors (the device column is
///     the fused visit_neighbors kernel the cutoff solver runs);
///   * op "migrate",   algo host — ns per particle exchanged (8 ranks,
///     50% off-rank);
///   * op "cutoff_eval", algo host — ns per solver step (4 ranks,
///     32x32 mesh, the five-step cutoff pipeline end to end).
///
/// Usage:
///   bench_micro_kernels [--out <file.json>] [--quick]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "base/rng.hpp"
#include "core/beatnik.hpp"
#include "search/cell_list.hpp"

namespace b = beatnik;
namespace bc = beatnik::comm;
namespace bg = beatnik::grid;
namespace bs = beatnik::search;
namespace bd = beatnik::par::device;

namespace {

struct Result {
    std::string op;
    std::string algo;
    int ranks = 1;
    std::size_t bytes = 0;
    int iters = 0;
    double ns_per_op = 0.0;
};

template <class Op>
double time_ns(int iters, Op&& op) {
    // Best of three timed passes: the CI regression gate compares single
    // runs against a committed baseline, and the device-backend records
    // are worker-scheduling sensitive on loaded runners — the minimum is
    // the stable, load-spike-free estimate of the code's actual cost.
    const int warmup = iters >= 10 ? iters / 10 : 1;
    for (int i = 0; i < warmup; ++i) op();
    double best = 0.0;
    for (int rep = 0; rep < 3; ++rep) {
        auto t0 = std::chrono::steady_clock::now();
        for (int i = 0; i < iters; ++i) op();
        auto t1 = std::chrono::steady_clock::now();
        const double ns =
            std::chrono::duration<double, std::nano>(t1 - t0).count() / iters;
        if (rep == 0 || ns < best) best = ns;
    }
    return best;
}

std::vector<double> random_cloud(std::size_t n, std::uint64_t seed, double extent) {
    std::vector<double> pts(3 * n);
    beatnik::SplitMix64 rng(seed);
    for (auto& v : pts) v = rng.uniform(-extent, extent);
    return pts;
}

Result bench_br_pairs(std::size_t n, int iters) {
    beatnik::SplitMix64 rng(3);
    std::vector<b::Vec3> pos(n), gam(n);
    for (std::size_t i = 0; i < n; ++i) {
        pos[i] = {rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(-1, 1)};
        gam[i] = {rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(-1, 1)};
    }
    volatile double sink = 0.0;
    double ns = time_ns(iters, [&] {
        b::Vec3 acc{};
        for (std::size_t i = 0; i < n; ++i) acc += b::br_kernel(pos[0], pos[i], gam[i], 1e-4);
        sink = acc.x;
    });
    (void)sink;
    return {"br_pairs", "scalar", 1, n * sizeof(b::Vec3) * 2, iters,
            ns / static_cast<double>(n)};
}

/// Build ns/point for one of the three search structures.
Result bench_nbr_build(const std::string& algo, std::size_t n, double radius, int iters) {
    auto pts = random_cloud(n, 11, 1.5);
    double ns = 0.0;
    if (algo == "bin_host") {
        ns = time_ns(iters, [&] {
            bs::BinGrid3D grid(pts, radius);
            volatile std::size_t sink = grid.size();
            (void)sink;
        });
    } else if (algo == "cell_host") {
        bs::CellList3D cells;
        ns = time_ns(iters, [&] { cells.build_host(pts, radius); });
    } else { // cell_device
        bd::ScopedHostRegistration pin{std::span<const double>(pts.data(), pts.size())};
        bd::Queue q;
        bs::CellList3D cells;
        ns = time_ns(iters, [&] { cells.build_device(q, pts.data(), pts.size(), radius); });
    }
    return {"nbr_build", algo, 1, pts.size() * sizeof(double), iters,
            ns / static_cast<double>(n)};
}

/// Self-query enumeration ns/point. The device column runs the fused
/// visit_neighbors kernel (distance-sum accumulate, the cutoff solver's
/// step-4 shape) rather than materializing a NeighborList.
Result bench_nbr_query(const std::string& algo, std::size_t n, double radius, int iters) {
    auto pts = random_cloud(n, 11, 1.5);
    double ns = 0.0;
    if (algo == "bin_host") {
        bs::BinGrid3D grid(pts, radius);
        ns = time_ns(iters, [&] {
            auto list = grid.query(pts, 0);
            volatile std::size_t sink = list.indices.size();
            (void)sink;
        });
    } else if (algo == "cell_host") {
        bs::CellList3D cells;
        cells.build_host(pts, radius);
        ns = time_ns(iters, [&] {
            auto list = cells.query(pts, pts, 0);
            volatile std::size_t sink = list.indices.size();
            (void)sink;
        });
    } else { // cell_device
        bd::ScopedHostRegistration pin{std::span<const double>(pts.data(), pts.size())};
        bd::Queue q;
        bs::CellList3D cells;
        cells.build_device(q, pts.data(), pts.size(), radius);
        std::vector<double> out(n);
        bd::ScopedHostRegistration out_pin{std::span<const double>(out.data(), out.size())};
        const bs::CellGrid g = cells.grid();
        const std::uint32_t* offs = cells.cell_offsets();
        const std::uint32_t* cpts = cells.cell_points();
        const double* crd = pts.data();
        double* op = out.data();
        const double r2 = radius * radius;
        ns = time_ns(iters, [&] {
            q.parallel_for(n, [=](std::size_t qi) {
                double acc = 0.0;
                bs::visit_neighbors(g, offs, cpts, crd, crd + 3 * qi, r2,
                                    [&](std::uint32_t s) {
                                        if (s != qi) acc += crd[3 * s];
                                    });
                op[qi] = acc;
            });
            q.fence();
        });
    }
    return {"nbr_query", algo, 1, pts.size() * sizeof(double), iters,
            ns / static_cast<double>(n)};
}

// The multi-rank benches time the collective operation from inside one
// Context::run (rank 0's clock; collectives keep the ranks in lockstep)
// so rank-thread spawn/teardown never lands in the measured window — on
// small runners that cost is scheduler-noise an order of magnitude above
// the operation itself.
Result bench_migrate(int p, int percent_moving, int iters) {
    struct P {
        double x[7];
    };
    constexpr std::size_t kPerRank = 5000;
    double ns = 0.0;
    bc::Context::run(p, [&](bc::Communicator& comm) {
        std::vector<P> particles(kPerRank);
        std::vector<int> dest(kPerRank);
        for (std::size_t k = 0; k < kPerRank; ++k) {
            bool moves =
                static_cast<int>(beatnik::hash_mix(5, k) % 100) < percent_moving;
            dest[k] = moves ? static_cast<int>(beatnik::hash_mix(9, k) %
                                               static_cast<std::uint64_t>(comm.size()))
                            : comm.rank();
        }
        double local = time_ns(iters, [&] {
            auto r = bg::migrate(comm, std::span<const P>(particles),
                                 std::span<const int>(dest));
            volatile std::size_t sink = r.size();
            (void)sink;
        });
        if (comm.rank() == 0) ns = local;
    });
    return {"migrate", "host", p, kPerRank * sizeof(P) * static_cast<std::size_t>(p), iters,
            ns / static_cast<double>(kPerRank * static_cast<std::size_t>(p))};
}

Result bench_cutoff_eval(int p, int mesh, int iters) {
    double ns = 0.0;
    bc::Context::run(p, [&](bc::Communicator& comm) {
        auto params = b::decks::multimode_highorder(mesh, 0.4);
        b::Solver solver(comm, params);
        double local = time_ns(iters, [&] { solver.step(); });
        if (comm.rank() == 0) ns = local;
    });
    return {"cutoff_eval", "host", p,
            static_cast<std::size_t>(mesh) * static_cast<std::size_t>(mesh) * 5 *
                sizeof(double),
            iters, ns};
}

void write_json(const std::vector<Result>& results, const std::string& path) {
    std::ofstream out(path);
    if (!out) {
        std::fprintf(stderr, "error: cannot open %s for writing\n", path.c_str());
        std::exit(1);
    }
    out << "{\n  \"bench\": \"micro_kernels\",\n  \"results\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const Result& r = results[i];
        out << "    {\"op\": \"" << r.op << "\", \"algo\": \"" << r.algo
            << "\", \"ranks\": " << r.ranks << ", \"bytes\": " << r.bytes
            << ", \"iters\": " << r.iters << ", \"ns_per_op\": " << r.ns_per_op << "}"
            << (i + 1 < results.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
}

} // namespace

int main(int argc, char** argv) {
    std::string out_path;
    bool quick = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out_path = argv[++i];
        } else {
            std::fprintf(stderr, "usage: %s [--out <file.json>] [--quick]\n", argv[0]);
            return 2;
        }
    }
    auto n = [quick](int full) { return quick ? std::max(1, full / 50) : full; };

    std::vector<Result> results;
    results.push_back(bench_br_pairs(1 << 14, n(500)));
    // 20k points at cutoff-solver-like density (~8 neighbors/point).
    constexpr std::size_t kPoints = 20000;
    constexpr double kRadius = 0.2;
    for (const char* algo : {"bin_host", "cell_host", "cell_device"}) {
        results.push_back(bench_nbr_build(algo, kPoints, kRadius, n(100)));
        results.push_back(bench_nbr_query(algo, kPoints, kRadius, n(50)));
    }
    results.push_back(bench_migrate(8, 50, n(50)));
    results.push_back(bench_cutoff_eval(4, 32, n(20)));

    std::printf("%-12s %-12s %6s %10s %8s %14s\n", "op", "algo", "ranks", "bytes", "iters",
                "ns/op");
    for (const Result& r : results) {
        std::printf("%-12s %-12s %6d %10zu %8d %14.1f\n", r.op.c_str(), r.algo.c_str(),
                    r.ranks, r.bytes, r.iters, r.ns_per_op);
    }
    if (!out_path.empty()) {
        write_json(results, out_path);
        std::printf("wrote %s\n", out_path.c_str());
    }
    return 0;
}
