/// \file fig09_table1_fft_configs.cpp
/// \brief Regenerates paper Table 1 + Fig. 9: low-order weak-scaling
/// runtime under all eight heFFTe parameter configurations
/// (AllToAll x Pencils x Reorder) from 4 to 1024 GPUs.
///
/// Paper shape to match (§5.5): with few ranks the custom point-to-point
/// path (AllToAll=False) is faster; at large rank counts configurations
/// with AllToAll=True win because the library's aggregating alltoall
/// amortizes per-message costs.
#include <cstdio>
#include <string>
#include <vector>

#include "io/writers.hpp"
#include "model_helpers.hpp"

namespace bm = beatnik::benchmod;
namespace bn = beatnik::netsim;
namespace bf = beatnik::fft;

int main(int argc, char** argv) {
    const bool small_scale = argc > 1 && std::string(argv[1]) == "--scale=small";
    const int per_gpu_side = small_scale ? 304 : 4864;

    // ---- Table 1 (verbatim enumeration).
    std::printf("=== Table 1: heFFTe parameter configurations ===\n");
    std::printf("Configuration  AllToAll  Pencils  Reorder\n");
    for (int idx = 0; idx < 8; ++idx) {
        auto cfg = bf::FFTConfig::from_table1_index(idx);
        std::printf("      %d         %-5s     %-5s    %-5s\n", idx,
                    cfg.use_alltoall ? "True" : "False", cfg.use_pencils ? "True" : "False",
                    cfg.use_reorder ? "True" : "False");
    }

    // ---- Fig. 9 (runtime matrix, weak scaled).
    std::printf("\n=== Fig. 9: weak-scaling runtime per configuration (s/step, modeled) ===\n");
    std::printf("per-GPU mesh %dx%d\n\n", per_gpu_side, per_gpu_side);
    auto machine = bn::MachineModel::lassen();
    auto grids = bm::paper_rank_grids();

    std::printf("config");
    for (auto g : grids) std::printf("  %8d", g[0] * g[1]);
    std::printf("  GPUs\n");

    beatnik::io::CsvWriter csv("fig09_fft_configs.csv",
                               {"config", "gpus", "seconds_per_step"});
    // runtimes[config][grid]
    std::vector<std::vector<double>> runtimes(8);
    for (int idx = 0; idx < 8; ++idx) {
        auto cfg = bf::FFTConfig::from_table1_index(idx);
        std::printf("   %d  ", idx);
        for (auto topo : grids) {
            std::array<int, 2> global{per_gpu_side * topo[0], per_gpu_side * topo[1]};
            double t = bm::loworder_step_seconds(topo, global, cfg, machine);
            runtimes[static_cast<std::size_t>(idx)].push_back(t);
            std::printf("  %8.4f", t);
            std::vector<double> row{static_cast<double>(idx),
                                    static_cast<double>(topo[0] * topo[1]), t};
            csv.row(row);
        }
        std::printf("\n");
    }

    // ---- Shape checks (the paper's §5.5 findings).
    auto best_config_at = [&](std::size_t grid_idx) {
        int best = 0;
        for (int idx = 1; idx < 8; ++idx) {
            if (runtimes[static_cast<std::size_t>(idx)][grid_idx] <
                runtimes[static_cast<std::size_t>(best)][grid_idx]) {
                best = idx;
            }
        }
        return best;
    };
    int best_small = best_config_at(0);
    int best_large = best_config_at(grids.size() - 1);
    bool small_p2p = !bf::FFTConfig::from_table1_index(best_small).use_alltoall;
    bool large_coll = bf::FFTConfig::from_table1_index(best_large).use_alltoall;
    std::printf("\nshape: best config on 4 GPUs is %d (AllToAll=%s)  — paper: custom p2p "
                "wins small: %s\n",
                best_small, small_p2p ? "False" : "True", small_p2p ? "YES" : "NO");
    std::printf("shape: best config on %d GPUs is %d (AllToAll=%s) — paper: builtin "
                "alltoall wins large: %s\n",
                grids.back()[0] * grids.back()[1], best_large,
                large_coll ? "True" : "False", large_coll ? "YES" : "NO");
    std::printf("wrote fig09_fft_configs.csv\n");
    return 0;
}
