/// \file model_validation.cpp
/// \brief Validates the netsim performance model against *real measured*
/// executions: the pairwise and Bruck all-to-all algorithms are raced on
/// thread-ranks at five block sizes spanning the latency-bound to
/// bandwidth-bound range, their actual message traces are replayed
/// through a host-calibrated model, and the model must pick the same
/// winner as the measurement in each regime.
///
/// Known fidelity limit: both measurement and model put the
/// pairwise/Bruck crossover in the 4-64 KiB decade, but not at the same
/// point — the model ignores Bruck's local per-round pack/unpack copies,
/// so right at the crossover (~8 KiB blocks on this host) it can still
/// favor Bruck where the measurement already favors pairwise. The grid
/// below brackets the crossover without sitting on it.
///
/// This is precisely the kind of prediction the Fig. 9 reproduction
/// relies on (which all-to-all strategy wins where), so validating it
/// against reality—in the only regime where we *have* reality—backs the
/// modeled scaling claims. Absolute times are not compared (the host is
/// a shared-memory machine, not a cluster); winners are.
#include <algorithm>
#include <cstdio>
#include <mutex>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "base/timer.hpp"
#include "comm/communicator.hpp"
#include "netsim/simulator.hpp"

namespace bc = beatnik::comm;
namespace bn = beatnik::netsim;

namespace {

constexpr int kRanks = 16;

/// Run a real alltoall with the given algorithm and block size; returns
/// measured seconds per operation and the recorded one-operation trace.
double measure_alltoall(bc::AlltoallAlgo algo, std::size_t block_doubles,
                        std::vector<bn::Msg>& trace_out) {
    bc::ContextConfig cfg;
    cfg.recv_timeout_seconds = 60.0;
    cfg.enable_trace = true;
    cfg.alltoall_algo = algo;
    constexpr int kIters = 20;

    double measured = 0.0;
    std::mutex m;
    bc::Context::run(
        kRanks,
        [&](bc::Communicator& comm) {
            std::vector<double> sendbuf(block_doubles * kRanks,
                                        static_cast<double>(comm.rank()));
            // Warm-up.
            auto sink = comm.alltoall(std::span<const double>(sendbuf));
            comm.barrier();
            beatnik::Stopwatch watch;
            for (int it = 0; it < kIters; ++it) {
                sink = comm.alltoall(std::span<const double>(sendbuf));
            }
            comm.barrier();
            if (comm.rank() == 0) {
                std::lock_guard lock(m);
                measured = watch.seconds() / kIters;
            }
        },
        cfg);

    // Context::run owns its context, so re-run one traced operation in a
    // context we keep to read the trace back.
    bc::Context ctx(kRanks, cfg);
    std::vector<int> identity(kRanks);
    std::iota(identity.begin(), identity.end(), 0);
    std::vector<std::thread> threads;
    for (int r = 0; r < kRanks; ++r) {
        threads.emplace_back([&, r] {
            bc::Communicator comm(ctx, 0, r, identity);
            std::vector<double> sendbuf(block_doubles * kRanks, 1.0);
            auto sink = comm.alltoall(std::span<const double>(sendbuf));
            (void)sink;
        });
    }
    for (auto& t : threads) t.join();
    trace_out.clear();
    for (const auto& rec : ctx.trace()->snapshot()) {
        if (rec.bytes > 0) trace_out.push_back({rec.src_world, rec.dst_world, rec.bytes});
    }
    return measured;
}

double model_trace(const std::vector<bn::Msg>& trace, const bn::MachineModel& host) {
    bn::Phase phase;
    phase.label = "alltoall";
    phase.messages = trace;
    bn::NetworkSimulator sim(host, kRanks);
    return sim.simulate({phase}).makespan;
}

} // namespace

int main() {
    std::printf("=== netsim model validation: algorithm winner, measured vs modeled ===\n");
    std::printf("%d thread-ranks; pairwise vs Bruck alltoall across block sizes\n\n", kRanks);

    // Host machine model: each rank-thread behaves like its own "node"
    // whose mailbox serializes incoming copies; the dominant per-message
    // cost is the condvar wake + lock handoff (~several microseconds).
    bn::MachineModel host;
    host.ranks_per_node = 1;
    host.inter_latency = 8.0e-6;           // thread wake + matching
    host.inter_bandwidth = 8.0e9;          // mailbox memcpy bandwidth
    host.nic_injection_bandwidth = 8.0e9;  // serialized mailbox access
    host.nic_per_message_overhead = 4.0e-6;
    host.per_message_overhead = 1.0e-6;
    host.incast_factor = 0.0;              // mutexes already serialize above

    struct Regime {
        const char* name;
        std::size_t block;
    };
    bool all_agree = true;
    // Five regimes spanning the latency-bound to bandwidth-bound range:
    // the model must pick the measured winner in each, not just at the
    // two extremes the original pair covered.
    for (Regime regime :
         {Regime{"small blocks (64 B)", 8}, Regime{"medium blocks (2 KiB)", 256},
          Regime{"medium blocks (4 KiB)", 512},
          Regime{"large blocks (64 KiB)", 8192}, Regime{"large blocks (512 KiB)", 65536}}) {
        std::vector<bn::Msg> trace_pw, trace_bruck;
        double m_pw = measure_alltoall(bc::AlltoallAlgo::pairwise, regime.block, trace_pw);
        double m_bk = measure_alltoall(bc::AlltoallAlgo::bruck, regime.block, trace_bruck);
        double s_pw = model_trace(trace_pw, host);
        double s_bk = model_trace(trace_bruck, host);
        const char* measured_winner = m_pw < m_bk ? "pairwise" : "bruck";
        const char* modeled_winner = s_pw < s_bk ? "pairwise" : "bruck";
        bool agree = std::string(measured_winner) == modeled_winner;
        all_agree &= agree;
        std::printf("%-22s measured: pairwise %.6fs bruck %.6fs -> %s\n", regime.name, m_pw,
                    m_bk, measured_winner);
        std::printf("%-22s modeled:  pairwise %.6fs bruck %.6fs -> %s   [%s]\n", "", s_pw,
                    s_bk, modeled_winner, agree ? "agrees" : "DISAGREES");
        std::printf("%-22s traces:   pairwise %zu msgs, bruck %zu msgs\n\n", "",
                    trace_pw.size(), trace_bruck.size());
    }
    std::printf("validation: model predicts the measured algorithm winner in all "
                "regimes: %s\n", all_agree ? "YES" : "NO");
    return 0;
}
