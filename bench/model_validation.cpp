/// \file model_validation.cpp
/// \brief Validates the netsim performance model against *real measured*
/// executions: the pairwise and Bruck all-to-all algorithms are raced on
/// thread-ranks at six block sizes spanning the latency-bound to
/// bandwidth-bound range, their actual message traces are replayed
/// through a host-calibrated model, and the model must pick the same
/// winner as the measurement in each regime.
///
/// The Bruck replay charges the algorithm's *local* staging copies
/// (initial/final rotations + per-round pack staging) through
/// Phase::local_copy_bytes — the term whose omission used to shift the
/// modeled pairwise/Bruck crossover off the measured one around ~8 KiB
/// blocks (the documented fidelity gap, now closed). The run exits
/// nonzero unless the model picks the measured winner in every regime
/// AND the modeled crossover lands inside the measured bracket, so CI
/// catches a fidelity regression.
///
/// This is precisely the kind of prediction the Fig. 9 reproduction
/// relies on (which all-to-all strategy wins where), so validating it
/// against reality—in the only regime where we *have* reality—backs the
/// modeled scaling claims. Absolute times are not compared (the host is
/// a shared-memory machine, not a cluster); winners are.
///
/// Usage:
///   bench_model_validation                      # winner/crossover gate
///   bench_model_validation --profile <file>     # host model from a
///       bench_patterns --calibrate machine profile instead of the
///       hand-tuned constants below
///   bench_model_validation --loopback-gate      # absolute-time gate: a
///       ring plan over the loopback transport (known injected latency/
///       bandwidth) must land where a netsim model built from those same
///       parameters predicts — the one regime where even *absolute*
///       seconds are checkable, because the "network" is synthetic
#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "base/timer.hpp"
#include "comm/communicator.hpp"
#include "comm/plan.hpp"
#include "measure.hpp"
#include "netsim/profile.hpp"
#include "netsim/simulator.hpp"
#include "telemetry/telemetry.hpp"

namespace bc = beatnik::comm;
namespace bn = beatnik::netsim;

namespace {

constexpr int kRanks = 16;

/// Run a real alltoall with the given algorithm and block size; returns
/// measured seconds per operation and the recorded one-operation trace.
double measure_alltoall(bc::AlltoallAlgo algo, std::size_t block_doubles,
                        std::vector<bn::Msg>& trace_out) {
    bc::ContextConfig cfg;
    cfg.recv_timeout_seconds = 60.0;
    cfg.enable_trace = true;
    cfg.alltoall_algo = algo;
    constexpr int kIters = 20;

    double measured = 0.0;
    std::mutex m;
    bc::Context::run(
        kRanks,
        [&](bc::Communicator& comm) {
            std::vector<double> sendbuf(block_doubles * kRanks,
                                        static_cast<double>(comm.rank()));
            // Warm-up.
            auto sink = comm.alltoall(std::span<const double>(sendbuf));
            comm.barrier();
            beatnik::Stopwatch watch;
            for (int it = 0; it < kIters; ++it) {
                sink = comm.alltoall(std::span<const double>(sendbuf));
            }
            comm.barrier();
            if (comm.rank() == 0) {
                std::lock_guard lock(m);
                measured = watch.seconds() / kIters;
            }
        },
        cfg);

    // Context::run owns its context, so re-run one traced operation in a
    // context we keep to read the trace back.
    bc::Context ctx(kRanks, cfg);
    std::vector<int> identity(kRanks);
    std::iota(identity.begin(), identity.end(), 0);
    std::vector<std::thread> threads;
    for (int r = 0; r < kRanks; ++r) {
        threads.emplace_back([&, r] {
            bc::Communicator comm(ctx, 0, r, identity);
            std::vector<double> sendbuf(block_doubles * kRanks, 1.0);
            auto sink = comm.alltoall(std::span<const double>(sendbuf));
            (void)sink;
        });
    }
    for (auto& t : threads) t.join();
    trace_out.clear();
    for (const auto& rec : ctx.trace()->snapshot()) {
        if (rec.bytes > 0) trace_out.push_back({rec.src_world, rec.dst_world, rec.bytes});
    }
    return measured;
}

/// Median-of-3 measurement: a 16-thread-rank race on a small (possibly
/// single-core) host is scheduling-noise dominated; the median filters
/// the occasional descheduled outlier run.
double measure_alltoall_median(bc::AlltoallAlgo algo, std::size_t block_doubles,
                               std::vector<bn::Msg>& trace_out) {
    return beatnik::bench::median_of(
        3, [&] { return measure_alltoall(algo, block_doubles, trace_out); });
}

double model_trace(const std::vector<bn::Msg>& trace, const bn::MachineModel& host,
                   double local_copy_bytes_per_rank) {
    bn::Phase phase;
    phase.label = "alltoall";
    phase.messages = trace;
    if (local_copy_bytes_per_rank > 0.0) {
        phase.local_copy_bytes.assign(kRanks, local_copy_bytes_per_rank);
    }
    bn::NetworkSimulator sim(host, kRanks);
    return sim.simulate({phase}).makespan;
}

/// Absolute-time gate against the loopback transport. The transport
/// injects a known cost model (delivery strictly no earlier than
/// latency + bytes/bandwidth after publish), a ring plan is timed over
/// it, and netsim — fed a CalibratedProfile carrying exactly those
/// injected parameters — must predict the measured time. The lower
/// bound is hard (loopback cannot deliver early); the upper bound is
/// generous, covering the ~50 us polling granularity of non-push
/// transports plus host scheduling.
int run_loopback_gate() {
    bc::LoopbackConfig lb;
    lb.latency_seconds = 2.0e-3;               // dwarfs poll granularity
    lb.bandwidth_bytes_per_second = 100.0e6;
    lb.jitter_seconds = 0.0;                   // deterministic gate
    constexpr int kGateRanks = 4;
    constexpr std::size_t kBytes = 400u * 1024; // 4 ms serialization time
    constexpr int kIters = 8;

    bc::ContextConfig cfg;
    cfg.transport = "loopback";
    cfg.loopback = lb;

    std::mutex m;
    double measured = beatnik::bench::median_of(3, [&] {
        double seconds = 0.0;
        bc::Context::run(
            kGateRanks,
            [&](bc::Communicator& comm) {
                const int next = (comm.rank() + 1) % comm.size();
                const int prev = (comm.rank() + comm.size() - 1) % comm.size();
                const int tag = comm.new_plan_tag();
                auto builder = bc::Plan::builder(comm);
                int s = builder.add_send(next, tag, kBytes);
                int r = builder.add_recv(prev, tag, kBytes);
                auto plan = builder.build();
                auto step = [&] {
                    plan.start();
                    auto buf = plan.send_buffer(s, kBytes);
                    std::memset(buf.data(), comm.rank() + 1, buf.size());
                    plan.publish(s);
                    plan.wait();
                    plan.release_recv(r);
                };
                step(); // warmup
                comm.barrier();
                auto t0 = std::chrono::steady_clock::now();
                for (int i = 0; i < kIters; ++i) step();
                comm.barrier();
                auto t1 = std::chrono::steady_clock::now();
                if (comm.rank() == 0) {
                    std::lock_guard lock(m);
                    seconds = std::chrono::duration<double>(t1 - t0).count() / kIters;
                }
            },
            cfg);
        return seconds;
    });

    // netsim prediction through a calibrated profile carrying exactly the
    // injected transport parameters (the same path a bench_patterns
    // --calibrate profile takes through netsim::machine_from_profile).
    bn::CalibratedProfile prof;
    prof.transport = "loopback";
    prof.latency_seconds = lb.latency_seconds;
    prof.bandwidth_bytes_per_second = lb.bandwidth_bytes_per_second;
    bn::MachineModel model = bn::machine_from_profile(prof);
    bn::Phase phase;
    phase.label = "loopback ring";
    for (int r = 0; r < kGateRanks; ++r) {
        phase.messages.push_back({r, (r + 1) % kGateRanks, kBytes});
    }
    double predicted = bn::NetworkSimulator(model, kGateRanks).simulate({phase}).makespan;

    const double lower = 0.9 * predicted;
    const double upper = 3.0 * predicted + 2.0e-3;
    const bool ok = measured >= lower && measured <= upper;
    std::printf("=== netsim model validation: loopback transport absolute-time gate ===\n");
    std::printf("injected: latency %.3f ms, bandwidth %.0f MB/s, %zu B ring on %d ranks\n",
                lb.latency_seconds * 1e3, lb.bandwidth_bytes_per_second / 1e6, kBytes,
                kGateRanks);
    std::printf("predicted %.3f ms, measured %.3f ms (accepted band [%.3f, %.3f] ms) -> %s\n",
                predicted * 1e3, measured * 1e3, lower * 1e3, upper * 1e3,
                ok ? "inside" : "OUTSIDE");

    // Traced cross-check: re-run the ring with telemetry armed and compare
    // each rank's *traced* "plan.wait" time against the injected
    // latency+serialization truth. This validates the trace spans with the
    // only ground truth in the repo — the synthetic transport's own cost
    // model — not just the wall-clock totals above.
    namespace tel = beatnik::telemetry;
    const bool was_enabled = tel::enabled();
    tel::arm();
    tel::Registry::instance().clear();
    bc::Context::run(
        kGateRanks,
        [&](bc::Communicator& comm) {
            const int next = (comm.rank() + 1) % comm.size();
            const int prev = (comm.rank() + comm.size() - 1) % comm.size();
            const int tag = comm.new_plan_tag();
            auto builder = bc::Plan::builder(comm);
            int s = builder.add_send(next, tag, kBytes);
            int r = builder.add_recv(prev, tag, kBytes);
            auto plan = builder.build();
            for (int i = 0; i < kIters; ++i) {
                plan.start();
                auto buf = plan.send_buffer(s, kBytes);
                std::memset(buf.data(), comm.rank() + 1, buf.size());
                plan.publish(s);
                plan.wait();
                plan.release_recv(r);
            }
        },
        cfg);
    if (!was_enabled) tel::disarm();

    const double truth =
        lb.latency_seconds + static_cast<double>(kBytes) / lb.bandwidth_bytes_per_second;
    const double wait_lower = 0.5 * kIters * truth;
    const double wait_upper = 3.0 * kIters * truth + 5.0e-3;
    bool wait_ok = true;
    int rank_tracks = 0;
    for (const tel::TrackRecorder* t : tel::Registry::instance().tracks()) {
        if (t->name().rfind("rank ", 0) != 0 || t->size() == 0) continue;
        ++rank_tracks;
        double waited = 0.0;
        std::uint64_t open_ts = 0;
        bool open = false;
        for (std::size_t i = 0; i < t->size(); ++i) {
            const tel::Event& e = (*t)[i];
            if (e.name == nullptr || std::strcmp(e.name, "plan.wait") != 0) continue;
            if (e.kind == tel::EventKind::begin) {
                open_ts = e.ts_ns;
                open = true;
            } else if (e.kind == tel::EventKind::end && open) {
                waited += static_cast<double>(e.ts_ns - open_ts) * 1e-9;
                open = false;
            }
        }
        const bool in_band = waited >= wait_lower && waited <= wait_upper;
        std::printf("traced %s: plan.wait %.3f ms over %d iters "
                    "(truth %.3f ms, band [%.3f, %.3f] ms) -> %s\n",
                    t->name().c_str(), waited * 1e3, kIters, kIters * truth * 1e3,
                    wait_lower * 1e3, wait_upper * 1e3, in_band ? "inside" : "OUTSIDE");
        if (!in_band) wait_ok = false;
    }
    if (rank_tracks != kGateRanks) {
        std::printf("traced wait check: expected %d rank tracks, saw %d\n", kGateRanks,
                    rank_tracks);
        wait_ok = false;
    }
    return (ok && wait_ok) ? 0 : 1;
}

} // namespace

int main(int argc, char** argv) {
    std::string profile_path;
    bool loopback_gate = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--loopback-gate") == 0) {
            loopback_gate = true;
        } else if (std::strcmp(argv[i], "--trace") == 0) {
            // Arm process-wide telemetry; the atexit flush writes the
            // Perfetto JSON (BEATNIK_TRACE_FILE or beatnik-<pid>.trace.json).
            beatnik::telemetry::arm();
        } else if (std::strcmp(argv[i], "--profile") == 0 && i + 1 < argc) {
            profile_path = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: %s [--profile <machine.json>] [--loopback-gate] [--trace]\n",
                         argv[0]);
            return 2;
        }
    }
    if (loopback_gate) return run_loopback_gate();

    std::printf("=== netsim model validation: algorithm winner, measured vs modeled ===\n");
    std::printf("%d thread-ranks; pairwise vs Bruck alltoall across block sizes\n\n", kRanks);

    // Host machine model: each rank-thread behaves like its own "node"
    // whose mailbox serializes incoming copies; the dominant per-message
    // cost is the condvar wake + lock handoff (~several microseconds).
    bn::MachineModel host;
    host.ranks_per_node = 1;
    host.inter_latency = 8.0e-6;           // thread wake + matching
    host.inter_bandwidth = 8.0e9;          // mailbox memcpy bandwidth
    host.nic_injection_bandwidth = 8.0e9;  // serialized mailbox access
    host.nic_per_message_overhead = 4.0e-6;
    host.per_message_overhead = 1.0e-6;
    host.incast_factor = 0.0;              // mutexes already serialize above
    // Local staging copies (pack/unpack, Bruck rotations) are the same
    // memcpy as the "wire" on a shared-memory host — not the GPU-node
    // streaming bandwidth of the default model.
    host.memory_bandwidth = 8.0e9;
    if (!profile_path.empty()) {
        // Measured parameters for *this* machine (bench_patterns
        // --calibrate) replace the hand-tuned constants above. The fitted
        // latency already folds in per-message software overheads, so the
        // model's explicit overhead terms are zeroed by the projection.
        bn::CalibratedProfile prof = bn::load_profile(profile_path);
        host = bn::machine_from_profile(prof);
        std::printf("host model from profile %s (transport %s: latency %.2f us, "
                    "bandwidth %.2f GB/s)\n\n",
                    profile_path.c_str(), prof.transport.c_str(),
                    prof.latency_seconds * 1e6,
                    prof.bandwidth_bytes_per_second / 1e9);
    }

    struct Regime {
        const char* name;
        std::size_t block;
    };
    // Six regimes spanning the latency-bound to bandwidth-bound range.
    // 4 KiB sits essentially ON the measured crossover (its winner flips
    // run to run on an oversubscribed host); 16 KiB is the nearest point
    // where the measurement is decisively pairwise *and* the un-fixed
    // model (no Bruck local-copy term) still picked Bruck — the regime
    // that makes this gate catch the fidelity gap.
    const std::vector<Regime> regimes{
        {"small blocks (64 B)", 8},      {"medium blocks (2 KiB)", 256},
        {"medium blocks (4 KiB)", 512},  {"medium blocks (16 KiB)", 2048},
        {"large blocks (64 KiB)", 8192}, {"large blocks (512 KiB)", 65536}};
    // A regime is *decisive* when the measured margin clears scheduling
    // noise; a run sitting right on the crossover must not fail CI on a
    // coin flip, but a decisive disagreement (the pre-fix gap had the
    // model picking Bruck against a ~2x measured pairwise win at 16 KiB)
    // must.
    constexpr double kDecisiveMargin = 0.25;
    bool scored_agree = true;
    std::vector<bool> modeled_pw_wins;
    int last_decisive_bruck = -1;
    int first_decisive_pairwise = -1;
    for (std::size_t r = 0; r < regimes.size(); ++r) {
        const Regime& regime = regimes[r];
        std::vector<bn::Msg> trace_pw, trace_bruck;
        double m_pw = measure_alltoall_median(bc::AlltoallAlgo::pairwise, regime.block, trace_pw);
        double m_bk = measure_alltoall_median(bc::AlltoallAlgo::bruck, regime.block, trace_bruck);
        double s_pw = model_trace(trace_pw, host, 0.0);
        // Bruck's rotations and pack staging never hit the wire, so they
        // are absent from the trace; charge them explicitly.
        double s_bk = model_trace(trace_bruck, host,
                                  bn::analytic::bruck_local_copy_bytes(
                                      kRanks, regime.block * sizeof(double)));
        const bool measured_pw = m_pw < m_bk;
        const bool modeled_pw = s_pw < s_bk;
        const bool decisive =
            std::abs(m_pw - m_bk) / std::min(m_pw, m_bk) > kDecisiveMargin;
        modeled_pw_wins.push_back(modeled_pw);
        if (decisive && !measured_pw) last_decisive_bruck = static_cast<int>(r);
        if (decisive && measured_pw && first_decisive_pairwise < 0) {
            first_decisive_pairwise = static_cast<int>(r);
        }
        const bool agree = measured_pw == modeled_pw;
        if (decisive) scored_agree &= agree;
        std::printf("%-22s measured: pairwise %.6fs bruck %.6fs -> %s%s\n", regime.name, m_pw,
                    m_bk, measured_pw ? "pairwise" : "bruck",
                    decisive ? "" : " (within noise, not scored)");
        std::printf("%-22s modeled:  pairwise %.6fs bruck %.6fs -> %s   [%s]\n", "", s_pw,
                    s_bk, modeled_pw ? "pairwise" : "bruck",
                    agree          ? "agrees"
                    : decisive     ? "DISAGREES"
                                   : "disagrees, unscored");
        std::printf("%-22s traces:   pairwise %zu msgs, bruck %zu msgs\n\n", "",
                    trace_pw.size(), trace_bruck.size());
    }

    // Crossover bracket check: the modeled bruck->pairwise flip must land
    // strictly after the last decisively-bruck regime and no later than
    // the first decisively-pairwise one.
    int modeled_flip = -1;
    for (std::size_t r = 1; r < modeled_pw_wins.size(); ++r) {
        if (modeled_pw_wins[r] && !modeled_pw_wins[r - 1]) {
            modeled_flip = static_cast<int>(r);
            break;
        }
    }
    auto regime_name = [&](int r) {
        return r < 0 ? "(none)" : regimes[static_cast<std::size_t>(r)].name;
    };
    const bool crossover_ok = modeled_flip > last_decisive_bruck &&
                              (first_decisive_pairwise < 0 ||
                               (modeled_flip >= 0 && modeled_flip <= first_decisive_pairwise));
    std::printf("crossover: measured bracket (%s, %s], modeled flip at %s -> %s\n",
                regime_name(last_decisive_bruck), regime_name(first_decisive_pairwise),
                regime_name(modeled_flip), crossover_ok ? "inside" : "OUTSIDE");
    std::printf("validation: model predicts every decisively measured winner: %s\n",
                scored_agree ? "YES" : "NO");
    if (!scored_agree || !crossover_ok) return 1;
    return 0;
}
