/// \file micro_fft.cpp
/// \brief Serial FFT kernel microbenchmarks (google-benchmark).
///
/// These measure the host-machine kernel rates that anchor the netsim
/// compute model (MachineModel::flops_rate is the GPU-side counterpart;
/// EXPERIMENTS.md discusses the mapping).
#include <benchmark/benchmark.h>

#include "base/rng.hpp"
#include "fft/serial_fft.hpp"

namespace bf = beatnik::fft;

namespace {

std::vector<bf::cplx> signal(std::size_t n) {
    std::vector<bf::cplx> x(n);
    beatnik::SplitMix64 rng(7);
    for (auto& v : x) v = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
    return x;
}

void BM_SerialFFTPow2(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    bf::SerialFFT1D plan(n);
    auto x = signal(n);
    for (auto _ : state) {
        plan.forward(x.data());
        benchmark::DoNotOptimize(x.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n));
    state.counters["flops_rate"] =
        benchmark::Counter(plan.flops() * static_cast<double>(state.iterations()),
                           benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SerialFFTPow2)->Arg(256)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_SerialFFTBluestein(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    bf::SerialFFT1D plan(n);
    auto x = signal(n);
    for (auto _ : state) {
        plan.forward(x.data());
        benchmark::DoNotOptimize(x.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SerialFFTBluestein)->Arg(243)->Arg(768)->Arg(4864);

void BM_SerialFFTStrided(benchmark::State& state) {
    // The reorder-knob tradeoff: strided lines pay a gather/scatter.
    const auto n = static_cast<std::size_t>(state.range(0));
    const auto stride = static_cast<std::size_t>(state.range(1));
    bf::SerialFFT1D plan(n);
    auto x = signal(n * stride);
    for (auto _ : state) {
        plan.forward_strided(x.data(), stride);
        benchmark::DoNotOptimize(x.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SerialFFTStrided)->Args({1024, 1})->Args({1024, 64})->Args({4096, 64});

} // namespace

BENCHMARK_MAIN();
