/// \file fig05_cutoff_weak.cpp
/// \brief Regenerates paper Fig. 5: high-order cutoff-solver weak scaling
/// from 4 to 1024 GPUs.
///
/// Workload (paper §5.1): multi-mode periodic, 768^2 mesh nodes per GPU,
/// cutoff distance 0.2. Weak scaling holds the node spacing fixed and
/// grows the domain with the rank count, so per-GPU compute stays
/// constant (the paper's premise: "the amount of computation per GPU
/// remains constant").
///
/// Paper shape to match: runtime stays nearly flat, rising only modestly
/// (~20%) from 4 to 1024 GPUs — the balanced multi-mode case localizes
/// communication to halo exchanges plus the migration machinery.
///
/// Each modeled point uses the cutoff communication/computation schedule
/// (migration count-exchange, payload migration, ghost halo, pair kernel)
/// with perfectly balanced ownership (the multimode property, verified by
/// the real execution in fig06_07). A real host-machine execution at 4
/// ranks is printed for reference.
#include <cstdio>
#include <numbers>
#include <string>

#include "io/writers.hpp"
#include "model_helpers.hpp"

namespace b = beatnik;
namespace bm = beatnik::benchmod;
namespace bn = beatnik::netsim;

int main(int argc, char** argv) {
    // The model is O(P) arithmetic — always run the paper's problem size.
    const int per_gpu_side = 768;
    (void)argc;
    (void)argv;
    const double cutoff = 0.2;
    const double block_extent = 6.0; // each GPU's surface patch is 6x6 (paper base domain)

    std::printf("=== Fig. 5: cutoff-solver weak scaling (multi-mode, periodic) ===\n");
    std::printf("per-GPU mesh %dx%d, cutoff %.2f, fixed spacing, growing domain\n\n",
                per_gpu_side, per_gpu_side, cutoff);
    std::printf("%-28s %6s  %12s  %9s  %s\n", "bench", "GPUs", "s/eval", "vs 4GPU",
                "provenance");

    auto machine = bn::MachineModel::lassen();
    b::io::CsvWriter csv("fig05_cutoff_weak.csv", {"gpus", "seconds_per_eval"});

    const double spacing = block_extent / per_gpu_side;
    const double avg_neighbors = std::numbers::pi * cutoff * cutoff / (spacing * spacing);
    const double points_per_gpu = static_cast<double>(per_gpu_side) * per_gpu_side;

    double t4 = 0.0;
    std::vector<double> times;
    for (auto topo : bm::paper_rank_grids()) {
        const int gpus = topo[0] * topo[1];
        bm::CutoffModelInput in;
        in.owned_share.assign(static_cast<std::size_t>(gpus), 1.0 / gpus);
        in.total_points = points_per_gpu * gpus;
        in.avg_neighbors = avg_neighbors;
        // Ghosts: points within `cutoff` of a block edge get copied, i.e.
        // a perimeter shell of the 6x6 block.
        in.ghost_fraction = bm::CutoffModelInput::ghost_copies(cutoff, block_extent);
        in.migrate_fraction = 0.05;
        double t = bm::cutoff_eval_seconds(gpus, in, machine);
        if (t4 == 0.0) t4 = t;
        bm::print_row("fig05_cutoff_weak", gpus, t, "modeled", t4);
        std::vector<double> row{static_cast<double>(gpus), t};
        csv.row(row);
        times.push_back(t);
    }

    double rise = (times.back() - times.front()) / times.front();
    std::printf("\nshape: runtime rise 4 -> 1024 GPUs: %.0f%% "
                "(paper: ~20%% — nearly flat: %s)\n",
                rise * 100.0, rise > 0.0 && rise < 0.6 ? "YES" : "NO");

    // Real host execution at 4 ranks for reference (shape anchor only).
    double measured = 0.0;
    b::comm::Context::run(4, [&](b::comm::Communicator& comm) {
        auto params = b::decks::multimode_highorder(64, /*cutoff=*/0.4);
        b::Solver solver(comm, params);
        solver.step(); // warm-up
        comm.barrier();
        b::Stopwatch watch;
        solver.advance(2);
        comm.barrier();
        if (comm.rank() == 0) measured = watch.seconds() / 6.0; // 2 steps x 3 evals
    });
    std::printf("reference: real 4-rank host execution (64^2 mesh): %.4f s/eval "
                "(measured-host)\n", measured);

    // Overlapped vs fenced cutoff schedule on the device backend: same
    // results (equivalence-tested), time difference reported here.
    auto delta = bm::measure_overlap_delta(/*ranks=*/4, /*mesh=*/64, /*cutoff=*/0.4);
    bm::print_overlap_delta(delta, 4, 64);
    std::printf("wrote fig05_cutoff_weak.csv\n");
    return 0;
}
