/// \file micro_collectives.cpp
/// \brief Real-execution collective benchmarks on thread-ranks
/// (google-benchmark): the three alltoall algorithms, allreduce, and
/// barrier across rank counts — the ablation data for the collective-
/// algorithm design choices in DESIGN.md §5.
#include <benchmark/benchmark.h>

#include "comm/communicator.hpp"

namespace bc = beatnik::comm;

namespace {

void BM_Barrier(benchmark::State& state) {
    const int p = static_cast<int>(state.range(0));
    for (auto _ : state) {
        bc::Context::run(p, [](bc::Communicator& comm) {
            for (int i = 0; i < 10; ++i) comm.barrier();
        });
    }
    state.SetItemsProcessed(state.iterations() * 10);
}
BENCHMARK(BM_Barrier)->Arg(2)->Arg(8)->Arg(16);

void BM_AllreduceVector(benchmark::State& state) {
    const int p = static_cast<int>(state.range(0));
    const auto n = static_cast<std::size_t>(state.range(1));
    for (auto _ : state) {
        bc::Context::run(p, [n](bc::Communicator& comm) {
            std::vector<double> xs(n, comm.rank());
            for (int i = 0; i < 5; ++i) comm.allreduce(std::span<double>(xs), bc::op::Sum{});
            benchmark::DoNotOptimize(xs.data());
        });
    }
    state.SetBytesProcessed(state.iterations() * 5 *
                            static_cast<std::int64_t>(n * sizeof(double) * static_cast<std::size_t>(p)));
}
BENCHMARK(BM_AllreduceVector)->Args({4, 1})->Args({4, 4096})->Args({16, 4096});

void BM_AlltoallAlgo(benchmark::State& state) {
    const int p = static_cast<int>(state.range(0));
    const auto block = static_cast<std::size_t>(state.range(1));
    const auto algo = static_cast<bc::AlltoallAlgo>(state.range(2));
    for (auto _ : state) {
        bc::ContextConfig cfg;
        cfg.alltoall_algo = algo;
        bc::Context::run(
            p,
            [&](bc::Communicator& comm) {
                std::vector<double> sendbuf(block * static_cast<std::size_t>(p),
                                            comm.rank() * 1.0);
                for (int i = 0; i < 3; ++i) {
                    auto r = comm.alltoall(std::span<const double>(sendbuf));
                    benchmark::DoNotOptimize(r.data());
                }
            },
            cfg);
    }
    const char* names[] = {"pairwise", "linear", "bruck"};
    state.SetLabel(names[state.range(2)]);
    state.SetBytesProcessed(state.iterations() * 3 *
                            static_cast<std::int64_t>(block * sizeof(double) *
                                                      static_cast<std::size_t>(p) *
                                                      static_cast<std::size_t>(p)));
}
// Sweep: small blocks favor bruck (fewer messages), large favor pairwise.
BENCHMARK(BM_AlltoallAlgo)
    ->Args({8, 8, 0})
    ->Args({8, 8, 1})
    ->Args({8, 8, 2})
    ->Args({8, 8192, 0})
    ->Args({8, 8192, 1})
    ->Args({8, 8192, 2})
    ->Args({16, 64, 0})
    ->Args({16, 64, 2});

void BM_ContextSpawn(benchmark::State& state) {
    // Fixed cost of standing up N rank-threads (relevant when reading the
    // other numbers: each iteration above includes one spawn).
    const int p = static_cast<int>(state.range(0));
    for (auto _ : state) {
        bc::Context::run(p, [](bc::Communicator&) {});
    }
}
BENCHMARK(BM_ContextSpawn)->Arg(4)->Arg(16)->Arg(64);

} // namespace

BENCHMARK_MAIN();
