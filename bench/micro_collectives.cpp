/// \file micro_collectives.cpp
/// \brief Real-execution collective microbenchmarks on thread-ranks.
///
/// Standalone CLI (no Google Benchmark dependency) so results can be
/// emitted in the repo's own regression-tracking schema: one JSON record
/// per configuration with `op`, `algo`, `ranks`, `bytes` (payload bytes of
/// a single point-to-point message in the pattern) and `ns_per_op`.
/// `scripts/compare_benchmarks.py` diffs two such files and fails on
/// regression; CI uploads the JSON as an artifact on every run.
///
/// Usage:
///   bench_micro_collectives [--out <file.json>] [--quick]
///
/// --quick shrinks iteration counts to a wiring-check level (used by
/// scripts/run_benchmarks.sh); timing noise makes quick numbers unsuitable
/// for regression comparison.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "comm/communicator.hpp"
#include "measure.hpp"

namespace bc = beatnik::comm;
using beatnik::bench::Result;

namespace {

/// Run a collective `iters` times on every rank (after a warmup) inside a
/// single Context::run so neither thread spawn nor per-rank buffer setup
/// lands in the measurement. \p setup(comm) runs once per rank and returns
/// the per-iteration closure. Returns rank 0's wall time per iteration in
/// nanoseconds.
template <class Setup>
double time_collective(int ranks, int iters, bc::ContextConfig cfg, Setup&& setup) {
    double ns_per_op = 0.0;
    bc::Context::run(ranks, [&](bc::Communicator& comm) {
        auto op = setup(comm);
        const int warmup = iters >= 10 ? iters / 10 : 1;
        for (int i = 0; i < warmup; ++i) op();
        comm.barrier();
        auto t0 = std::chrono::steady_clock::now();
        for (int i = 0; i < iters; ++i) op();
        comm.barrier();
        auto t1 = std::chrono::steady_clock::now();
        if (comm.rank() == 0) {
            ns_per_op = std::chrono::duration<double, std::nano>(t1 - t0).count() / iters;
        }
    }, cfg);
    return ns_per_op;
}

const char* algo_name(bc::AlltoallAlgo algo) {
    switch (algo) {
    case bc::AlltoallAlgo::pairwise: return "pairwise";
    case bc::AlltoallAlgo::linear: return "linear";
    case bc::AlltoallAlgo::bruck: return "bruck";
    }
    return "?";
}

Result bench_barrier(int ranks, int iters) {
    double ns = time_collective(ranks, iters, {}, [](bc::Communicator& comm) {
        return [&comm] { comm.barrier(); };
    });
    return {"barrier", "-", ranks, 0, iters, ns};
}

Result bench_bcast(int ranks, std::size_t doubles, int iters) {
    double ns = time_collective(ranks, iters, {}, [doubles](bc::Communicator& comm) {
        auto buf = std::make_shared<std::vector<double>>(doubles, 1.5);
        return [&comm, buf] { comm.bcast(std::span<double>(*buf), 0); };
    });
    return {"bcast", "-", ranks, doubles * sizeof(double), iters, ns};
}

Result bench_allreduce(int ranks, std::size_t doubles, int iters) {
    double ns = time_collective(ranks, iters, {}, [doubles](bc::Communicator& comm) {
        auto xs = std::make_shared<std::vector<double>>(doubles, comm.rank() * 1.0);
        return [&comm, xs] { comm.allreduce(std::span<double>(*xs), bc::op::Sum{}); };
    });
    return {"allreduce", "-", ranks, doubles * sizeof(double), iters, ns};
}

Result bench_alltoall(int ranks, bc::AlltoallAlgo algo, std::size_t block_doubles, int iters) {
    bc::ContextConfig cfg;
    cfg.alltoall_algo = algo;
    double ns = time_collective(ranks, iters, cfg, [block_doubles](bc::Communicator& comm) {
        auto sendbuf = std::make_shared<std::vector<double>>(
            block_doubles * static_cast<std::size_t>(comm.size()), comm.rank() * 1.0);
        return [&comm, sendbuf] {
            auto r = comm.alltoall(std::span<const double>(*sendbuf));
            // Keep the result alive so the exchange cannot be elided.
            if (!r.empty() && r.front() < -1.0) std::abort();
        };
    });
    return {"alltoall", algo_name(algo), ranks, block_doubles * sizeof(double), iters, ns};
}

/// Variable-count all-to-all: per-destination counts follow a skewed
/// deterministic pattern (some pairs exchange nothing), the regime the
/// Bruck v-variant aggregates well and the FFT reshapes actually produce.
Result bench_alltoallv(int ranks, bc::AlltoallAlgo algo, std::size_t base_doubles, int iters) {
    bc::ContextConfig cfg;
    cfg.alltoall_algo = algo;
    double ns = time_collective(ranks, iters, cfg, [base_doubles](bc::Communicator& comm) {
        const int p = comm.size();
        auto sendcounts = std::make_shared<std::vector<std::size_t>>(static_cast<std::size_t>(p));
        std::size_t total = 0;
        for (int dst = 0; dst < p; ++dst) {
            // Skew: (src + dst) % 3 scales each block by 0, 1, or 2.
            std::size_t c = base_doubles * static_cast<std::size_t>((comm.rank() + dst) % 3);
            (*sendcounts)[static_cast<std::size_t>(dst)] = c;
            total += c;
        }
        auto sendbuf = std::make_shared<std::vector<double>>(total, comm.rank() * 1.0);
        return [&comm, sendbuf, sendcounts] {
            std::vector<std::size_t> recvcounts;
            auto r = comm.alltoallv(std::span<const double>(*sendbuf),
                                    std::span<const std::size_t>(*sendcounts), recvcounts);
            if (!r.empty() && r.front() < -1.0) std::abort();
        };
    });
    return {"alltoallv", algo_name(algo), ranks, base_doubles * sizeof(double), iters, ns};
}

} // namespace

int main(int argc, char** argv) {
    std::string out_path;
    bool quick = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out_path = argv[++i];
        } else {
            std::fprintf(stderr, "usage: %s [--out <file.json>] [--quick]\n", argv[0]);
            return 2;
        }
    }
    // Iteration counts tuned so the full suite runs in tens of seconds on a
    // laptop core; --quick is a smoke pass only.
    auto n = [quick](int full) { return beatnik::bench::scaled_iters(quick, full); };

    std::vector<Result> results;
    results.push_back(bench_barrier(2, n(2000)));
    results.push_back(bench_barrier(8, n(500)));
    results.push_back(bench_bcast(8, 1024, n(500)));
    results.push_back(bench_bcast(8, 131072, n(100)));
    results.push_back(bench_allreduce(4, 1, n(1000)));
    results.push_back(bench_allreduce(8, 4096, n(200)));
    for (auto algo : {bc::AlltoallAlgo::pairwise, bc::AlltoallAlgo::linear,
                      bc::AlltoallAlgo::bruck}) {
        results.push_back(bench_alltoall(8, algo, 8, n(500)));       // 64 B messages
        results.push_back(bench_alltoall(8, algo, 1024, n(200)));    // 8 KiB messages
        results.push_back(bench_alltoall(8, algo, 131072, n(20)));   // 1 MiB messages
        // v-variant sweep (ROADMAP: Bruck v included since it exists now).
        results.push_back(bench_alltoallv(8, algo, 16, n(500)));     // ~128/256 B blocks
        results.push_back(bench_alltoallv(8, algo, 8192, n(100)));   // ~64/128 KiB blocks
    }

    std::printf("%-10s %-9s %6s %10s %8s %14s\n", "op", "algo", "ranks", "bytes", "iters",
                "ns/op");
    for (const Result& r : results) {
        std::printf("%-10s %-9s %6d %10zu %8d %14.0f\n", r.op.c_str(), r.algo.c_str(), r.ranks,
                    r.bytes, r.iters, r.ns_per_op);
    }
    if (!out_path.empty()) {
        beatnik::bench::write_json("micro_collectives", results, out_path);
        std::printf("wrote %s\n", out_path.c_str());
    }
    return 0;
}
