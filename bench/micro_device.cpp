/// \file micro_device.cpp
/// \brief Microbenchmarks for the GPU-shaped execution backend
/// (par/device): kernel launch + fence overhead versus the host backends,
/// deep_copy (mirror) bandwidth, and queue pipelining — the numbers that
/// tell you when device offload pays on a given machine, the same way the
/// paper's GPU runs amortize launch latency with mesh size.
///
/// Records (compare_benchmarks.py schema; `bytes` = working-set bytes):
///   * op "saxpy", algo serial | openmp | device — synchronous
///     parallel_for dispatch of the same kernel at several sizes;
///   * op "deep_copy", algo h2d | d2h — explicit mirror movement;
///   * op "launch", algo sync | pipelined — K dependent kernel launches
///     one-fence-per-launch versus enqueue-all-then-fence (stream
///     pipelining hides the per-launch handoff).
///
/// Usage:
///   bench_micro_device [--out <file.json>] [--quick]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <numeric>
#include <string>
#include <vector>

#include "par/par.hpp"

namespace bp = beatnik::par;
namespace bd = beatnik::par::device;

namespace {

struct Result {
    std::string op;
    std::string algo;
    int ranks = 1;
    std::size_t bytes = 0;
    int iters = 0;
    double ns_per_op = 0.0;
};

template <class Op>
double time_ns(int iters, Op&& op) {
    const int warmup = iters >= 10 ? iters / 10 : 1;
    for (int i = 0; i < warmup; ++i) op();
    auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) op();
    auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::nano>(t1 - t0).count() / iters;
}

const char* backend_name(bp::Backend b) {
    switch (b) {
    case bp::Backend::serial: return "serial";
    case bp::Backend::openmp: return "openmp";
    case bp::Backend::device: return "device";
    }
    return "?";
}

Result bench_saxpy(bp::Backend backend, std::size_t n, int iters) {
    bp::ScopedBackend scoped(backend);
    std::vector<double> x(n), y(n, 1.0);
    std::iota(x.begin(), x.end(), 0.0);
    double* xp = x.data();
    double* yp = y.data();
    double ns = time_ns(iters, [n, xp, yp] {
        bp::parallel_for(n, [xp, yp](std::size_t i) { yp[i] = 2.5 * xp[i] + yp[i]; });
    });
    return {"saxpy", backend_name(backend), 1, n * sizeof(double), iters, ns};
}

Result bench_deep_copy(bool to_device, std::size_t n, int iters) {
    std::vector<double> host(n, 3.0);
    bd::DeviceBuffer<double> dev(n);
    bd::Queue q;
    bd::deep_copy(q, dev.view(), std::span<const double>(host));
    q.fence();
    double ns = time_ns(iters, [&] {
        if (to_device) {
            bd::deep_copy(q, dev.view(), std::span<const double>(host));
        } else {
            bd::deep_copy(q, std::span<double>(host), std::as_const(dev).view());
        }
        q.fence();
    });
    return {"deep_copy", to_device ? "h2d" : "d2h", 1, n * sizeof(double), iters, ns};
}

/// K small kernels per operation: synchronous launches pay K fences; a
/// pipelined stream pays one.
Result bench_launch(bool pipelined, int kernels, std::size_t n, int iters) {
    bd::DeviceBuffer<double> dev(n);
    bd::Queue q;
    auto view = dev.view();
    q.parallel_for(n, [view](std::size_t i) { view[i] = 1.0; });
    q.fence();
    double ns = time_ns(iters, [&] {
        for (int k = 0; k < kernels; ++k) {
            q.parallel_for(n, [view](std::size_t i) { view[i] += 1.0; });
            if (!pipelined) q.fence();
        }
        if (pipelined) q.fence();
    });
    return {"launch", pipelined ? "pipelined" : "sync", 1, n * sizeof(double), iters, ns};
}

void write_json(const std::vector<Result>& results, const std::string& path) {
    std::ofstream out(path);
    if (!out) {
        std::fprintf(stderr, "error: cannot open %s for writing\n", path.c_str());
        std::exit(1);
    }
    out << "{\n  \"bench\": \"micro_device\",\n  \"results\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const Result& r = results[i];
        out << "    {\"op\": \"" << r.op << "\", \"algo\": \"" << r.algo
            << "\", \"ranks\": " << r.ranks << ", \"bytes\": " << r.bytes
            << ", \"iters\": " << r.iters << ", \"ns_per_op\": " << r.ns_per_op << "}"
            << (i + 1 < results.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
}

} // namespace

int main(int argc, char** argv) {
    std::string out_path;
    bool quick = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out_path = argv[++i];
        } else {
            std::fprintf(stderr, "usage: %s [--out <file.json>] [--quick]\n", argv[0]);
            return 2;
        }
    }
    auto n = [quick](int full) { return quick ? std::max(2, full / 50) : full; };

    std::vector<Result> results;
    // Kernel dispatch across backends: launch-bound (4 KiB) to
    // bandwidth-bound (8 MiB) working sets.
    for (std::size_t size : {std::size_t{512}, std::size_t{65536}, std::size_t{1048576}}) {
        const int iters = n(size >= 1048576 ? 200 : 2000);
        results.push_back(bench_saxpy(bp::Backend::serial, size, iters));
        if (bp::openmp_available()) {
            results.push_back(bench_saxpy(bp::Backend::openmp, size, iters));
        }
        results.push_back(bench_saxpy(bp::Backend::device, size, iters));
    }
    for (std::size_t size : {std::size_t{65536}, std::size_t{1048576}}) {
        const int iters = n(size >= 1048576 ? 200 : 1000);
        results.push_back(bench_deep_copy(/*to_device=*/true, size, iters));
        results.push_back(bench_deep_copy(/*to_device=*/false, size, iters));
    }
    results.push_back(bench_launch(/*pipelined=*/false, 16, 4096, n(1000)));
    results.push_back(bench_launch(/*pipelined=*/true, 16, 4096, n(1000)));

    std::printf("%-10s %-10s %6s %10s %8s %14s\n", "op", "algo", "ranks", "bytes", "iters",
                "ns/op");
    for (const Result& r : results) {
        std::printf("%-10s %-10s %6d %10zu %8d %14.0f\n", r.op.c_str(), r.algo.c_str(), r.ranks,
                    r.bytes, r.iters, r.ns_per_op);
    }
    if (!out_path.empty()) {
        write_json(results, out_path);
        std::printf("wrote %s\n", out_path.c_str());
    }
    return 0;
}
