/// \file fig04_loworder_strong.cpp
/// \brief Regenerates paper Fig. 4: low-order solver strong scaling of a
/// fixed mesh from 4 to 1024 GPUs on the Lassen machine model.
///
/// Workload (paper §5.1/§5.2): the fixed multi-mode problem strong-scaled
/// over growing rank counts. Paper shape to match: large speedup 4 -> 64
/// GPUs but only ~21% parallel efficiency, then performance *turns over*
/// (runtime increases) past 64 GPUs as message count dominates the
/// shrinking per-rank compute.
#include <cstdio>
#include <string>

#include "io/writers.hpp"
#include "model_helpers.hpp"

namespace bm = beatnik::benchmod;
namespace bn = beatnik::netsim;
namespace bf = beatnik::fft;

int main(int argc, char** argv) {
    // Mesh-size note: §5.1 nominally strong-scales the memory-full base
    // problem, but §5.2 states each GPU holds only a 76x76 block "in the
    // 64-node case" — implying a much smaller global mesh than 4864^2.
    // A 2048^2 mesh reproduces the paper's reported behavior (large
    // speedup to 64 GPUs at ~21% efficiency, then turnover), so it is the
    // default here; --scale=paper-base uses the literal 4864^2 (which
    // stays bandwidth-bound and does not turn over by 1024 ranks).
    const bool literal_base = argc > 1 && std::string(argv[1]) == "--scale=paper-base";
    const int global_side = literal_base ? 4864 : 2048;

    std::printf("=== Fig. 4: low-order strong scaling (multi-mode, periodic) ===\n");
    std::printf("fixed global mesh %dx%d, FFT config 7\n\n", global_side, global_side);
    std::printf("%-28s %6s  %12s  %9s  %s\n", "bench", "GPUs", "s/step", "speedup",
                "provenance");

    auto machine = bn::MachineModel::lassen();
    beatnik::io::CsvWriter csv("fig04_loworder_strong.csv",
                               {"gpus", "seconds_per_step", "speedup", "efficiency"});

    double t4 = 0.0;
    std::vector<double> times;
    std::vector<int> gpus_list;
    for (auto topo : bm::paper_rank_grids()) {
        const int gpus = topo[0] * topo[1];
        double t = bm::loworder_step_seconds(topo, {global_side, global_side}, bf::FFTConfig{},
                                             machine);
        if (t4 == 0.0) t4 = t;
        double speedup = t4 / t;
        double eff = speedup / (gpus / 4.0);
        bm::print_row("fig04_loworder_strong", gpus, t, "modeled", t4);
        std::vector<double> row{static_cast<double>(gpus), t, speedup, eff};
        csv.row(row);
        times.push_back(t);
        gpus_list.push_back(gpus);
    }

    // Shape checks: meaningful speedup to 64 GPUs at low efficiency, then
    // turnover.
    std::size_t i64 = 0;
    for (std::size_t i = 0; i < gpus_list.size(); ++i) {
        if (gpus_list[i] == 64) i64 = i;
    }
    double speedup64 = times[0] / times[i64];
    double eff64 = speedup64 / (64.0 / 4.0);
    std::printf("\nshape: 4->64 GPU speedup %.2fx, parallel efficiency %.0f%% "
                "(paper: 3.5x / 21%%)\n",
                speedup64, eff64 * 100.0);
    bool turnover = times.back() > times[i64];
    std::printf("shape: runtime turns over past 64 GPUs: %s (paper: YES)\n",
                turnover ? "YES" : "NO");
    std::printf("wrote fig04_loworder_strong.csv\n");
    return 0;
}
