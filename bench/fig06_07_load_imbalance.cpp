/// \file fig06_07_load_imbalance.cpp
/// \brief Regenerates paper Figs. 6 & 7: the per-rank spatial-ownership
/// distribution of the single-mode cutoff run at an early and a late
/// timestep — flat early, spread out once the interface rolls up.
///
/// This is a *real distributed execution* on thread-ranks (default 64,
/// paper used 256; pass --scale=paper for 256 ranks): the full migrate /
/// ghost / neighbor-list / force / return pipeline runs every derivative
/// evaluation and the census is taken from the actual spatial ownership,
/// exactly as the paper measured it.
///
/// Paper shape to match: at the early step every rank owns ~1/P of all
/// points; at the late step ranks inside the rollup own up to ~1.6x the
/// mean while outside ranks stay near the mean (0.2%–0.65% around the
/// 0.39% mean for P=256).
#include <algorithm>
#include <cstdio>
#include <string>

#include "core/beatnik.hpp"
#include "io/writers.hpp"

namespace b = beatnik;

int main(int argc, char** argv) {
    const bool paper_scale = argc > 1 && std::string(argv[1]) == "--scale=paper";
    const int nranks = paper_scale ? 256 : 64;
    const int mesh = paper_scale ? 192 : 96;
    const int early_step = 6;
    const int late_step = paper_scale ? 48 : 42;

    std::printf("=== Figs. 6-7: particles owned per rank, single-mode cutoff run ===\n");
    std::printf("%d thread-ranks, %d^2 mesh, free boundary, cutoff 0.5 "
                "(real distributed execution)\n\n", nranks, mesh);

    std::vector<double> early_shares, late_shares;
    double late_height = 0.0;
    b::comm::Context::run(nranks, [&](b::comm::Communicator& comm) {
        auto params = b::decks::singlemode_highorder(mesh, 0.5);
        params.initial.magnitude = 0.3;
        params.gravity = 50.0;
        b::Solver solver(comm, params);
        solver.advance(early_step);
        auto early = b::ownership_census(comm, solver);
        solver.advance(late_step - early_step);
        auto late = b::ownership_census(comm, solver);
        auto summary = b::summarize(solver.state());
        if (comm.rank() == 0) {
            early_shares = early;
            late_shares = late;
            late_height = summary.max_height;
        }
    });

    auto print_series = [&](const char* fig, int step, const std::vector<double>& shares) {
        auto stats = b::imbalance_stats(shares);
        std::printf("%s (timestep %d): %% of all particles owned per rank\n", fig, step);
        for (std::size_t r = 0; r < shares.size(); ++r) {
            std::printf("%6.3f%s", shares[r] * 100.0, (r + 1) % 8 == 0 ? "\n" : " ");
        }
        if (shares.size() % 8 != 0) std::printf("\n");
        std::printf("  min %.3f%%  max %.3f%%  mean %.3f%%  imbalance %.3f\n\n",
                    stats.min_share * 100.0, stats.max_share * 100.0,
                    100.0 / static_cast<double>(shares.size()), stats.imbalance);
        return stats;
    };
    auto early_stats = print_series("Fig. 6", early_step, early_shares);
    auto late_stats = print_series("Fig. 7", late_step, late_shares);
    std::printf("late-time interface amplitude max|z3| = %.3f\n", late_height);

    // CSV: one row per rank with both snapshots.
    b::io::CsvWriter csv("fig06_07_ownership.csv", {"rank", "early_share", "late_share"});
    for (std::size_t r = 0; r < early_shares.size(); ++r) {
        std::vector<double> row{static_cast<double>(r), early_shares[r], late_shares[r]};
        csv.row(row);
    }

    double early_spread = early_stats.max_share - early_stats.min_share;
    double late_spread = late_stats.max_share - late_stats.min_share;
    std::printf("\nshape: early distribution nearly flat (spread %.4f%%), late spread "
                "%.4f%% — imbalance grows with rollup: %s (paper: YES)\n",
                early_spread * 100.0, late_spread * 100.0,
                late_spread > 1.5 * early_spread ? "YES" : "NO");
    std::printf("wrote fig06_07_ownership.csv\n");
    return 0;
}
