/// \file measure.hpp
/// \brief Shared measurement plumbing for the bench CLIs.
///
/// Every standalone bench binary used to re-implement the same three
/// idioms: the median-of-N repetition filter (a thread-rank race on a
/// small host is scheduling-noise dominated; the median drops the
/// descheduled outlier), the CommBench-style sorted-iteration statistics
/// (report min/median/avg/max over individually timed iterations instead
/// of one amortized mean), and the regression-schema JSON record that
/// scripts/compare_benchmarks.py diffs. They live here once; the
/// cache-defeating touch between timed iterations (so a repeated pattern
/// measures memory traffic, not L2 residency of a hot payload) rides
/// along.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

namespace beatnik::bench {

/// One benchmark configuration's result in the regression-tracking schema
/// consumed by scripts/compare_benchmarks.py.
struct Result {
    std::string op;
    std::string algo;      ///< "-" when the op has no algorithm knob
    int ranks = 0;
    std::size_t bytes = 0; ///< payload bytes of one p2p message in the pattern
    int iters = 0;
    double ns_per_op = 0.0;
};

/// Write results as `{"bench": <name>, "results": [...]}` JSON.
inline void write_json(const std::string& bench_name,
                       const std::vector<Result>& results,
                       const std::string& path) {
    std::ofstream out(path);
    if (!out) {
        std::fprintf(stderr, "error: cannot open %s for writing\n", path.c_str());
        std::exit(1);
    }
    out << "{\n  \"bench\": \"" << bench_name << "\",\n  \"results\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const Result& r = results[i];
        out << "    {\"op\": \"" << r.op << "\", \"algo\": \"" << r.algo
            << "\", \"ranks\": " << r.ranks << ", \"bytes\": " << r.bytes
            << ", \"iters\": " << r.iters << ", \"ns_per_op\": " << r.ns_per_op
            << "}" << (i + 1 < results.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
}

/// Median of \p reps invocations of \p f (each returning seconds or any
/// comparable number). Filters the occasional descheduled outlier run.
template <class F>
[[nodiscard]] double median_of(int reps, F&& f) {
    std::vector<double> samples;
    samples.reserve(static_cast<std::size_t>(reps));
    for (int r = 0; r < reps; ++r) samples.push_back(f());
    std::sort(samples.begin(), samples.end());
    return samples[samples.size() / 2];
}

/// CommBench-style statistics over individually timed iterations.
struct IterStats {
    double min = 0.0;   ///< seconds
    double med = 0.0;
    double avg = 0.0;
    double max = 0.0;
    int iters = 0;
};

/// Summarize per-iteration timings (seconds). Sorts its argument.
[[nodiscard]] inline IterStats iter_stats(std::vector<double>& samples) {
    IterStats s;
    if (samples.empty()) return s;
    std::sort(samples.begin(), samples.end());
    s.min = samples.front();
    s.max = samples.back();
    s.med = samples[samples.size() / 2];
    double sum = 0.0;
    for (double v : samples) sum += v;
    s.avg = sum / static_cast<double>(samples.size());
    s.iters = static_cast<int>(samples.size());
    return s;
}

/// Sweep a scratch buffer with writes so the next timed iteration's
/// payload is unlikely to still sit in cache. Size the sweep to the
/// outer cache level of interest; 8 MiB covers typical desktop L2+L3.
class CacheDefeater {
public:
    explicit CacheDefeater(std::size_t sweep_bytes = 8u << 20)
        : scratch_(sweep_bytes / sizeof(std::uint64_t) + 1, 0) {}

    void touch() {
        ++stamp_;
        for (auto& v : scratch_) v = stamp_;
        // A read fold the optimizer cannot drop without proving the sum
        // unused; volatile sink keeps the sweep materialized.
        std::uint64_t sum = 0;
        for (auto v : scratch_) sum += v;
        sink_ = sum;
    }

private:
    std::vector<std::uint64_t> scratch_;
    std::uint64_t stamp_ = 0;
    volatile std::uint64_t sink_ = 0;
};

[[nodiscard]] inline double gbps(std::size_t bytes, double seconds) {
    return seconds > 0.0 ? static_cast<double>(bytes) / seconds / 1.0e9 : 0.0;
}

/// Iteration-count scaler for the shared `--quick` smoke flag.
[[nodiscard]] inline int scaled_iters(bool quick, int full) {
    return quick ? std::max(2, full / 50) : full;
}

} // namespace beatnik::bench
