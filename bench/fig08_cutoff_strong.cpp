/// \file fig08_cutoff_strong.cpp
/// \brief Regenerates paper Fig. 8: strong scaling of the single-mode
/// cutoff run from 4 to 256 GPUs under developing load imbalance.
///
/// Method: a real (serial) solver run evolves the single-mode interface
/// to the late, rolled-up state; the resulting point cloud is binned into
/// every rank grid's spatial blocks to obtain the *measured* ownership
/// distribution each rank count would see (ownership is a pure function
/// of point positions and block geometry). Those distributions drive the
/// netsim cutoff model for each rank count.
///
/// Paper shape to match: runtime drops by ~3.3x from 4 to 64 GPUs (21%
/// parallel efficiency), then turns over only modestly beyond 64 because
/// the cutoff localizes communication.
#include <cstdio>
#include <numbers>
#include <string>

#include "io/writers.hpp"
#include "model_helpers.hpp"
#include "par/par.hpp"

namespace b = beatnik;
namespace bm = beatnik::benchmod;
namespace bn = beatnik::netsim;

namespace {

/// Ownership share of each block of a side x side spatial grid over
/// [-3,3]^2 for the given surface points.
std::vector<double> bin_shares(const std::vector<std::array<double, 2>>& xy, int side) {
    std::vector<double> counts(static_cast<std::size_t>(side) * side, 0.0);
    for (const auto& p : xy) {
        auto clamp_idx = [&](double v) {
            int c = static_cast<int>((v + 3.0) / 6.0 * side);
            return c < 0 ? 0 : (c >= side ? side - 1 : c);
        };
        counts[static_cast<std::size_t>(clamp_idx(p[0])) * side + clamp_idx(p[1])] += 1.0;
    }
    for (auto& c : counts) c /= static_cast<double>(xy.size());
    return counts;
}

} // namespace

int main(int argc, char** argv) {
    const bool paper_scale = argc > 1 && std::string(argv[1]) == "--scale=paper";
    const int mesh = paper_scale ? 192 : 96;
    const int rollup_steps = paper_scale ? 60 : 42;
    const double cutoff = 0.5;

    std::printf("=== Fig. 8: cutoff-solver strong scaling (single-mode, free) ===\n");
    std::printf("rolled-up state from a real %d^2-mesh run (%d steps), paper problem "
                "512^2 @ cutoff %.1f\n\n", mesh, rollup_steps, cutoff);

    // ---- Real run to the rolled-up state (one rank, OpenMP pair loops).
    // Store positions together with the surface-mesh index so each rank
    // count's migration fraction (surface owner != spatial owner) can be
    // measured exactly.
    struct TrackedPoint {
        double x, y;
        int i, j;
    };
    std::vector<TrackedPoint> points;
    b::comm::Context::run(1, [&](b::comm::Communicator& comm) {
        b::par::ScopedBackend scoped(b::par::openmp_available() ? b::par::Backend::openmp
                                                                : b::par::Backend::serial);
        auto params = b::decks::singlemode_highorder(mesh, cutoff);
        params.initial.magnitude = 0.3;
        params.gravity = 50.0;
        b::Solver solver(comm, params);
        solver.advance(rollup_steps);
        const auto& local = solver.mesh().local();
        auto& pm = solver.state();
        for (int i = 0; i < local.owned_extent(0); ++i) {
            for (int j = 0; j < local.owned_extent(1); ++j) {
                points.push_back({pm.position()(i, j, 0), pm.position()(i, j, 1), i, j});
            }
        }
    });
    std::vector<std::array<double, 2>> xy;
    xy.reserve(points.size());
    for (const auto& pt : points) xy.push_back({pt.x, pt.y});

    // ---- Model each rank count with its measured ownership distribution.
    const double paper_points = 512.0 * 512.0;      // paper problem size
    const double spacing = 6.0 / 512.0;
    const double avg_neighbors = std::numbers::pi * cutoff * cutoff / (spacing * spacing);
    auto machine = bn::MachineModel::lassen();
    b::io::CsvWriter csv("fig08_cutoff_strong.csv",
                         {"gpus", "seconds_per_eval", "speedup", "imbalance"});

    std::printf("%-28s %6s  %12s  %9s  %s\n", "bench", "GPUs", "s/eval", "speedup",
                "provenance");
    double t4 = 0.0;
    std::vector<double> times;
    std::vector<int> gpus_list;
    for (int side : {2, 4, 8, 16}) { // 4, 16, 64, 256 GPUs as in the paper
        const int gpus = side * side;
        bm::CutoffModelInput in;
        in.owned_share = bin_shares(xy, side);
        in.total_points = paper_points;
        in.avg_neighbors = avg_neighbors;
        double block = 6.0 / side;
        in.ghost_fraction = bm::CutoffModelInput::ghost_copies(cutoff, block);
        // Measured migration fraction: points whose spatial block differs
        // from their (index-based) surface block at this rank count.
        std::size_t moved = 0;
        for (const auto& pt : points) {
            auto clamp_idx = [&](double v) {
                int c = static_cast<int>((v + 3.0) / 6.0 * side);
                return c < 0 ? 0 : (c >= side ? side - 1 : c);
            };
            int surf_ci = pt.i * side / mesh;
            int surf_cj = pt.j * side / mesh;
            if (surf_ci != clamp_idx(pt.x) || surf_cj != clamp_idx(pt.y)) ++moved;
        }
        in.migrate_fraction = static_cast<double>(moved) / static_cast<double>(points.size());
        double t = bm::cutoff_eval_seconds(gpus, in, machine);
        if (t4 == 0.0) t4 = t;
        auto stats = b::imbalance_stats(in.owned_share);
        bm::print_row("fig08_cutoff_strong", gpus, t, "modeled(measured dist.)", t4);
        std::vector<double> row{static_cast<double>(gpus), t, t4 / t, stats.imbalance};
        csv.row(row);
        times.push_back(t);
        gpus_list.push_back(gpus);
    }

    double speedup64 = times[0] / times[2];
    std::printf("\nshape: 4->64 GPU speedup %.2fx, efficiency %.0f%% (paper: 3.3x / 21%%)\n",
                speedup64, 100.0 * speedup64 / 16.0);
    double beyond = times[3] / times[2];
    std::printf("shape: 64->256 runtime ratio %.2f (paper: modest turnover, ratio ~1)\n",
                beyond);

    // Overlapped vs fenced cutoff schedule on the device backend: same
    // results (equivalence-tested), time difference reported here.
    auto delta = bm::measure_overlap_delta(/*ranks=*/4, /*mesh=*/64, /*cutoff=*/0.5);
    bm::print_overlap_delta(delta, 4, 64);
    std::printf("wrote fig08_cutoff_strong.csv\n");
    return 0;
}
