/// \file telemetry.cpp
/// \brief Env arming (BEATNIK_TRACE) and artifact flushing.

#include <atomic>
#include <cstdlib>
#include <fstream>
#include <string>
#include <telemetry/export.hpp>
#include <telemetry/metrics.hpp>
#include <telemetry/telemetry.hpp>
#include <unistd.h>

namespace beatnik::telemetry {

std::atomic<bool> g_enabled{false};

namespace {

bool env_truthy(const char* name) {
    const char* v = std::getenv(name);
    return v != nullptr && v[0] != '\0' && std::string(v) != "0";
}

/// Default per-process artifact path: forked shm processes inherit the armed
/// state, and the pid suffix keeps their flushes from clobbering each other.
std::string default_trace_path() {
    return "beatnik-" + std::to_string(::getpid()) + ".trace.json";
}

std::atomic<bool> g_flush_registered{false};

/// Runs during static initialization of every binary that links telemetry
/// (all of them: enabled() references g_enabled, so this TU always links).
[[maybe_unused]] const bool g_env_armed = [] {
    if (!env_truthy("BEATNIK_TRACE")) return false;
    Config cfg;
    if (const char* cap = std::getenv("BEATNIK_TRACE_CAPACITY"))
        cfg.track_capacity = static_cast<std::size_t>(std::strtoull(cap, nullptr, 10));
    if (const char* f = std::getenv("BEATNIK_TRACE_FILE")) cfg.trace_path = f;
    if (const char* f = std::getenv("BEATNIK_METRICS_FILE")) cfg.metrics_path = f;
    arm(cfg); // also registers the atexit flush
    return true;
}();

} // namespace

void register_flush_at_exit() {
    if (!g_flush_registered.exchange(true)) std::atexit([] { flush(); });
}

bool flush() {
    auto& reg = Registry::instance();
    Config cfg = reg.config();

    bool any_events = false;
    auto tracks = reg.tracks();
    for (const TrackRecorder* t : tracks)
        if (t->size() > 0) any_events = true;

    bool ok = true;
    if (any_events) {
        std::string path =
            cfg.trace_path.empty() ? default_trace_path() : cfg.trace_path;
        std::ofstream os(path);
        if (os) {
            write_chrome_trace(os, tracks, ::getpid());
        } else {
            ok = false;
        }
    }
    if (!cfg.metrics_path.empty() && MetricsRegistry::instance().size() > 0) {
        std::ofstream os(cfg.metrics_path);
        if (os) {
            MetricsRegistry::instance().write_json(os);
        } else {
            ok = false;
        }
    }
    return ok;
}

} // namespace beatnik::telemetry
