/// \file metrics.hpp
/// \brief Hierarchical phase metrics with cross-rank min/med/max rollup.
///
/// Metrics are the always-on half of the telemetry layer: solver phase
/// timings accumulate into a per-rank `MetricSet` whether or not tracing is
/// armed (this is what replaced `SectionTimers`), and a `MetricsRegistry`
/// rolls per-step means up across ranks at flush time. Hierarchy is by
/// path-style metric names ("step/rk3_stage1"), interned once per process so
/// the steady-state `add()` is two array writes — no strings, no maps, no
/// allocation after the first step.
///
/// The rollup JSON uses the compare_benchmarks.py schema (op/algo/ranks/
/// bytes/iters/ns_per_op) so phase timings diff with the same tooling as
/// bench results.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <telemetry/telemetry.hpp>
#include <vector>

namespace beatnik::telemetry {

namespace detail {
struct Interner {
    std::mutex mu;
    std::vector<std::string> names;
    std::map<std::string, int, std::less<>> ids;
};
inline Interner& interner() {
    static Interner* i = new Interner; // leaked: outlives late flushes
    return *i;
}
} // namespace detail

/// Intern \p name, returning its stable process-wide metric id.
[[nodiscard]] inline int metric_id(const char* name) {
    auto& in = detail::interner();
    std::lock_guard lock(in.mu);
    auto it = in.ids.find(name);
    if (it != in.ids.end()) return it->second;
    int id = static_cast<int>(in.names.size());
    in.names.emplace_back(name);
    in.ids.emplace(name, id);
    return id;
}

[[nodiscard]] inline std::string metric_name(int id) {
    auto& in = detail::interner();
    std::lock_guard lock(in.mu);
    return in.names.at(static_cast<std::size_t>(id));
}

/// A named phase, interned once. Declare at call sites as
/// `static const telemetry::Phase ph{"step/halo"};` — the per-call cost is
/// then just the id lookup the static already did.
struct Phase {
    const char* name;
    int id;
    explicit Phase(const char* n) : name(n), id(metric_id(n)) {}
};

/// Per-rank accumulator. Single-writer (its rank thread); readers snapshot
/// after the run joins. Grow-only: arrays resize only when a new metric id
/// first appears, so the steady state is allocation-free.
class MetricSet {
public:
    void add(int id, double value) {
        auto i = static_cast<std::size_t>(id);
        if (i >= sum_.size()) grow(i + 1);
        sum_[i] += value;
        ++count_[i];
    }

    /// Fold everything recorded since the last commit into per-step stats.
    /// Called at step boundaries by the owning solver/bench loop.
    void commit_step() {
        if (last_.size() < sum_.size()) {
            last_.resize(sum_.size(), 0.0);
            step_min_.resize(sum_.size(), 0.0);
            step_max_.resize(sum_.size(), 0.0);
        }
        for (std::size_t i = 0; i < sum_.size(); ++i) {
            double delta = sum_[i] - last_[i];
            if (steps_ == 0 || delta < step_min_[i]) step_min_[i] = delta;
            if (steps_ == 0 || delta > step_max_[i]) step_max_[i] = delta;
            last_[i] = sum_[i];
        }
        ++steps_;
    }

    /// Total accumulated value (seconds, for PhaseScope metrics) by name.
    /// Returns 0 for names never recorded here.
    [[nodiscard]] double total(const char* name) const {
        auto i = static_cast<std::size_t>(metric_id(name));
        return i < sum_.size() ? sum_[i] : 0.0;
    }
    [[nodiscard]] std::uint64_t count(const char* name) const {
        auto i = static_cast<std::size_t>(metric_id(name));
        return i < count_.size() ? count_[i] : 0;
    }

    [[nodiscard]] std::uint64_t steps() const { return steps_; }
    [[nodiscard]] std::size_t size() const { return sum_.size(); }
    [[nodiscard]] double sum(int id) const {
        auto i = static_cast<std::size_t>(id);
        return i < sum_.size() ? sum_[i] : 0.0;
    }
    [[nodiscard]] double step_min(int id) const {
        auto i = static_cast<std::size_t>(id);
        return i < step_min_.size() ? step_min_[i] : 0.0;
    }
    [[nodiscard]] double step_max(int id) const {
        auto i = static_cast<std::size_t>(id);
        return i < step_max_.size() ? step_max_[i] : 0.0;
    }

    void clear() {
        sum_.assign(sum_.size(), 0.0);
        count_.assign(count_.size(), 0);
        last_.assign(last_.size(), 0.0);
        step_min_.assign(step_min_.size(), 0.0);
        step_max_.assign(step_max_.size(), 0.0);
        steps_ = 0;
    }

private:
    void grow(std::size_t n) {
        sum_.resize(n, 0.0);
        count_.resize(n, 0);
    }

    std::vector<double> sum_;
    std::vector<std::uint64_t> count_;
    std::vector<double> last_;     // sum_ at the previous commit_step
    std::vector<double> step_min_; // min per-step delta
    std::vector<double> step_max_; // max per-step delta
    std::uint64_t steps_ = 0;
};

/// The MetricSet bound to the calling thread (or nullptr). Solver::step
/// binds its own set for the duration of the step so PhaseScopes anywhere
/// down the call stack land in the right rank's accumulator.
[[nodiscard]] inline MetricSet*& current_metrics() {
    thread_local MetricSet* ms = nullptr;
    return ms;
}

/// RAII binder for current_metrics().
class ScopedMetricSet {
public:
    explicit ScopedMetricSet(MetricSet* ms) : prev_(current_metrics()) {
        current_metrics() = ms;
    }
    ~ScopedMetricSet() { current_metrics() = prev_; }
    ScopedMetricSet(const ScopedMetricSet&) = delete;
    ScopedMetricSet& operator=(const ScopedMetricSet&) = delete;

private:
    MetricSet* prev_;
};

/// RAII phase timer: accumulates seconds into the bound MetricSet and, when
/// tracing is armed, opens a span on the thread track. When neither is
/// active it performs no clock reads at all.
class PhaseScope {
public:
    explicit PhaseScope(const Phase& phase) : phase_(&phase) {
        ms_ = current_metrics();
        if (enabled()) track_ = &thread_track();
        if (ms_ || track_) {
            t0_ = now_ns();
            if (track_) track_->begin(phase.name);
        }
    }
    ~PhaseScope() {
        if (ms_ || track_) {
            std::uint64_t t1 = now_ns();
            if (track_) track_->end(phase_->name);
            if (ms_) ms_->add(phase_->id, static_cast<double>(t1 - t0_) * 1e-9);
        }
    }
    PhaseScope(const PhaseScope&) = delete;
    PhaseScope& operator=(const PhaseScope&) = delete;

private:
    const Phase* phase_;
    MetricSet* ms_ = nullptr;
    TrackRecorder* track_ = nullptr;
    std::uint64_t t0_ = 0;
};

/// One rolled-up metric: per-step means across the registered rank sets.
struct Rollup {
    std::string name;
    double min_s = 0.0; ///< smallest per-step mean across ranks (seconds)
    double med_s = 0.0; ///< median per-step mean across ranks
    double max_s = 0.0; ///< largest per-step mean across ranks
    int ranks = 0;      ///< sets that recorded this metric
    std::uint64_t steps = 0; ///< most steps any contributing set committed
};

/// Cross-rank registry: each rank registers its MetricSet (shared_ptr, so a
/// flush after the solvers are gone still reads valid data) and rollup()
/// reduces per-step means to min/med/max across ranks. Instantiable for
/// tests; the process-wide instance feeds the atexit flush.
class MetricsRegistry {
public:
    static MetricsRegistry& instance() {
        static MetricsRegistry* r = new MetricsRegistry; // leaked
        return *r;
    }
    MetricsRegistry() = default;

    void register_set(int rank, std::shared_ptr<const MetricSet> set) {
        std::lock_guard lock(mu_);
        sets_.push_back({rank, std::move(set)});
    }

    void clear() {
        std::lock_guard lock(mu_);
        sets_.clear();
    }

    [[nodiscard]] std::size_t size() const {
        std::lock_guard lock(mu_);
        return sets_.size();
    }

    /// Reduce: for every metric any set recorded, collect each set's
    /// per-step mean (sum / steps) and take min/median/max across sets.
    [[nodiscard]] std::vector<Rollup> rollup() const {
        std::lock_guard lock(mu_);
        std::size_t nmetrics = 0;
        for (const auto& e : sets_) nmetrics = std::max(nmetrics, e.set->size());
        std::vector<Rollup> out;
        std::vector<double> vals;
        for (std::size_t id = 0; id < nmetrics; ++id) {
            vals.clear();
            std::uint64_t steps = 0;
            for (const auto& e : sets_) {
                if (e.set->steps() == 0) continue;
                double s = e.set->sum(static_cast<int>(id));
                if (s == 0.0) continue;
                vals.push_back(s / static_cast<double>(e.set->steps()));
                steps = std::max(steps, e.set->steps());
            }
            if (vals.empty()) continue;
            std::sort(vals.begin(), vals.end());
            Rollup r;
            r.name = metric_name(static_cast<int>(id));
            r.min_s = vals.front();
            r.max_s = vals.back();
            std::size_t n = vals.size();
            r.med_s = (n % 2 == 1) ? vals[n / 2]
                                   : 0.5 * (vals[n / 2 - 1] + vals[n / 2]);
            r.ranks = static_cast<int>(n);
            r.steps = steps;
            out.push_back(std::move(r));
        }
        return out;
    }

    /// compare_benchmarks.py-compatible JSON: one result per metric, keyed
    /// (op=metric name, algo="telemetry", ranks, bytes=0) with ns_per_op the
    /// median per-step time. min/max ride along as extra keys.
    void write_json(std::ostream& os, const char* bench = "telemetry") const {
        auto rolled = rollup();
        os << "{\"bench\": \"" << bench << "\", \"results\": [";
        bool first = true;
        for (const auto& r : rolled) {
            if (!first) os << ", ";
            first = false;
            os << "{\"op\": \"" << r.name << "\", \"algo\": \"telemetry\""
               << ", \"ranks\": " << r.ranks << ", \"bytes\": 0"
               << ", \"iters\": " << r.steps
               << ", \"ns_per_op\": " << r.med_s * 1e9
               << ", \"min_ns\": " << r.min_s * 1e9
               << ", \"max_ns\": " << r.max_s * 1e9 << "}";
        }
        os << "]}\n";
    }

private:
    struct Entry {
        int rank;
        std::shared_ptr<const MetricSet> set;
    };
    mutable std::mutex mu_;
    std::vector<Entry> sets_;
};

} // namespace beatnik::telemetry
