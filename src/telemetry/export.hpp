/// \file export.hpp
/// \brief Chrome/Perfetto trace-event JSON writer for telemetry recordings.
///
/// Emits the classic trace-event format (https://ui.perfetto.dev loads it
/// directly): "B"/"E" duration events, "i" instants, "C" counters, and
/// "s"/"f" flow arrows, plus "M" metadata naming one track per rank-thread
/// and per device queue. All events of one process share a pid so
/// scripts/merge_traces.py can concatenate recordings from forked shm
/// processes into one valid file.
///
/// Dangling "B" events (a span still open when the arena filled or the
/// recording stopped) are closed synthetically at the track's last
/// timestamp, so the artifact is always well-formed.
#pragma once

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <ostream>
#include <string>
#include <telemetry/telemetry.hpp>
#include <vector>

namespace beatnik::telemetry {

namespace detail {
inline void json_escape(std::ostream& os, const std::string& s) {
    for (char c : s) {
        switch (c) {
        case '"': os << "\\\""; break;
        case '\\': os << "\\\\"; break;
        case '\n': os << "\\n"; break;
        case '\t': os << "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                os << buf;
            } else {
                os << c;
            }
        }
    }
}

inline void event_common(std::ostream& os, int pid, std::uint32_t tid,
                         std::uint64_t ts_ns, const char* ph) {
    char ts[32];
    std::snprintf(ts, sizeof ts, "%" PRIu64 ".%03u", ts_ns / 1000,
                  static_cast<unsigned>(ts_ns % 1000));
    os << "{\"pid\": " << pid << ", \"tid\": " << tid << ", \"ts\": " << ts
       << ", \"ph\": \"" << ph << "\"";
}
} // namespace detail

/// Write all \p tracks as one trace-event JSON document. \p pid labels the
/// process (pass getpid(); forked shm runs then merge cleanly).
inline void write_chrome_trace(std::ostream& os,
                               const std::vector<TrackRecorder*>& tracks,
                               int pid) {
    os << "{\"traceEvents\": [\n";
    bool first = true;
    auto sep = [&] {
        if (!first) os << ",\n";
        first = false;
    };

    sep();
    os << "{\"pid\": " << pid
       << ", \"ph\": \"M\", \"name\": \"process_name\", \"args\": {\"name\": "
          "\"beatnik\"}}";

    for (const TrackRecorder* t : tracks) {
        sep();
        os << "{\"pid\": " << pid << ", \"tid\": " << t->tid()
           << ", \"ph\": \"M\", \"name\": \"thread_name\", \"args\": {\"name\": \"";
        detail::json_escape(os, t->name());
        os << "\"}}";
        sep();
        os << "{\"pid\": " << pid << ", \"tid\": " << t->tid()
           << ", \"ph\": \"M\", \"name\": \"thread_sort_index\", "
              "\"args\": {\"sort_index\": "
           << (t->kind() == TrackKind::queue ? 1000 + t->tid() : t->tid())
           << "}}";
    }

    char hex[32];
    for (const TrackRecorder* t : tracks) {
        std::size_t n = t->size();
        std::uint64_t last_ts = 0;
        std::vector<const char*> open; // B-event names awaiting E
        for (std::size_t i = 0; i < n; ++i) {
            const Event& e = (*t)[i];
            last_ts = e.ts_ns;
            sep();
            switch (e.kind) {
            case EventKind::begin:
                detail::event_common(os, pid, t->tid(), e.ts_ns, "B");
                os << ", \"name\": \"" << e.name << "\", \"args\": {\"a0\": "
                   << e.a0 << ", \"a1\": " << e.a1 << "}}";
                open.push_back(e.name);
                break;
            case EventKind::end:
                detail::event_common(os, pid, t->tid(), e.ts_ns, "E");
                os << ", \"name\": \"" << e.name << "\", \"args\": {\"a0\": "
                   << e.a0 << ", \"a1\": " << e.a1 << "}}";
                if (!open.empty()) open.pop_back();
                break;
            case EventKind::instant:
                detail::event_common(os, pid, t->tid(), e.ts_ns, "i");
                os << ", \"s\": \"t\", \"name\": \"" << e.name
                   << "\", \"args\": {\"a0\": " << e.a0 << ", \"a1\": " << e.a1
                   << "}}";
                break;
            case EventKind::counter:
                detail::event_common(os, pid, t->tid(), e.ts_ns, "C");
                os << ", \"name\": \"" << e.name << "\", \"args\": {\"value\": "
                   << e.value << "}}";
                break;
            case EventKind::flow_begin:
                std::snprintf(hex, sizeof hex, "0x%" PRIx64, e.flow);
                detail::event_common(os, pid, t->tid(), e.ts_ns, "s");
                os << ", \"cat\": \"flow\", \"name\": \"" << e.name
                   << "\", \"id\": \"" << hex << "\"}";
                break;
            case EventKind::flow_end:
                std::snprintf(hex, sizeof hex, "0x%" PRIx64, e.flow);
                detail::event_common(os, pid, t->tid(), e.ts_ns, "f");
                os << ", \"cat\": \"flow\", \"name\": \"" << e.name
                   << "\", \"id\": \"" << hex << "\", \"bp\": \"e\"}";
                break;
            }
        }
        // Close spans left open by a filled arena or an in-flight recording.
        while (!open.empty()) {
            sep();
            detail::event_common(os, pid, t->tid(), last_ts, "E");
            os << ", \"name\": \"" << open.back() << "\", \"args\": {}}";
            open.pop_back();
        }
        if (t->dropped() > 0) {
            sep();
            detail::event_common(os, pid, t->tid(), last_ts, "i");
            os << ", \"s\": \"t\", \"name\": \"telemetry.dropped\", "
                  "\"args\": {\"a0\": "
               << t->dropped() << ", \"a1\": 0}}";
        }
    }

    os << "\n], \"displayTimeUnit\": \"ms\"}\n";
}

} // namespace beatnik::telemetry
