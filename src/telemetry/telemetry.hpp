/// \file telemetry.hpp
/// \brief Process-wide, always-compiled, env/config-armed span tracing.
///
/// Design contract (mirrors the devcheck hook discipline):
///   - Disabled (the default) costs exactly one relaxed atomic load and a
///     predictable branch per hook — no clock reads, no allocation, no locks.
///   - Armed, steady-state recording is allocation-free: each track is a
///     grow-only arena sized at arm time, and events are claimed with a
///     single atomic fetch_add. When a track fills, further events are
///     counted as dropped instead of reallocating.
///   - Tracks are one per rank-thread (lazily created, cached in a
///     thread_local) and one per named device queue; a track's events are
///     pushed in timestamp order by construction (single thread, or under
///     the queue mutex), so per-track timestamps are monotonic.
///
/// Arming: `BEATNIK_TRACE=1` in the environment arms at process start and
/// registers an atexit flush to `BEATNIK_TRACE_FILE` (default
/// `beatnik-<pid>.trace.json`, so forked shm processes write distinct
/// files). Programmatic arming goes through `arm(Config)` — used by
/// `comm::ContextConfig::telemetry` and the bench `--trace` flags.
///
/// Snapshots (`Registry::tracks()` + reading events) are only meaningful at
/// quiescent points — after `Context::run` returns (thread joins) or after a
/// queue fence (mutex hand-off) — which is also what makes them TSan-clean.
///
/// Event `name` pointers must be string literals (static storage): events
/// are PODs and the exporter reads the pointers at flush time.
#pragma once

#include <atomic>
#include <base/timer.hpp>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace beatnik::telemetry {

/// Armed/disarmed flag. Defined in telemetry.cpp, which also hosts the
/// BEATNIK_TRACE env arming; referencing it here guarantees that TU links
/// into every binary that has even one telemetry hook.
extern std::atomic<bool> g_enabled;

/// The single branch every disabled-mode hook reduces to.
[[nodiscard]] inline bool enabled() {
    return g_enabled.load(std::memory_order_relaxed);
}

/// Nanoseconds on the process-wide monotonic clock, relative to the first
/// call. Shares MonoClock with every timeout and injected transport delay in
/// the repo, and stamps comm::TraceRecord too — one clock, every artifact.
[[nodiscard]] inline std::uint64_t now_ns() {
    static const MonoClock::time_point epoch = mono_now();
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(mono_now() - epoch)
            .count());
}

/// Arm-time knobs.
struct Config {
    std::size_t track_capacity = 1 << 16; ///< Events per track arena.
    std::string trace_path;   ///< Perfetto JSON path; empty = default at flush.
    std::string metrics_path; ///< Metrics rollup path; empty = no metrics file.
};

enum class EventKind : std::uint8_t {
    begin,      ///< Span open ("B").
    end,        ///< Span close ("E").
    instant,    ///< Point event ("i").
    counter,    ///< Sampled value ("C").
    flow_begin, ///< Flow arrow tail ("s"), bound to the enclosing span.
    flow_end,   ///< Flow arrow head ("f", bp:"e"), bound to the enclosing span.
};

/// One recorded event. POD; `name` must point at static storage.
struct Event {
    std::uint64_t ts_ns = 0;
    const char* name = nullptr;
    double value = 0.0;    ///< counter events only
    std::uint64_t flow = 0; ///< flow events only: the arrow id
    std::uint64_t a0 = 0;  ///< span/instant argument (bytes, slot, ...)
    std::uint64_t a1 = 0;
    EventKind kind = EventKind::instant;
};

enum class TrackKind : std::uint8_t { thread, queue };

/// Grow-only event arena for one timeline. Multi-producer safe (atomic index
/// claim) though in practice each track has one writer at a time.
class TrackRecorder {
public:
    TrackRecorder(std::string name, TrackKind kind, std::uint32_t tid,
                  std::size_t capacity)
        : name_(std::move(name)), kind_(kind), tid_(tid), events_(capacity) {}

    void begin(const char* name, std::uint64_t a0 = 0, std::uint64_t a1 = 0) {
        push({now_ns(), name, 0.0, 0, a0, a1, EventKind::begin});
    }
    void end(const char* name, std::uint64_t a0 = 0, std::uint64_t a1 = 0) {
        push({now_ns(), name, 0.0, 0, a0, a1, EventKind::end});
    }
    void instant(const char* name, std::uint64_t a0 = 0, std::uint64_t a1 = 0) {
        push({now_ns(), name, 0.0, 0, a0, a1, EventKind::instant});
    }
    void counter(const char* name, double value) {
        push({now_ns(), name, value, 0, 0, 0, EventKind::counter});
    }
    /// Flow tail: emit *inside* the span the arrow should leave from.
    void flow_begin(const char* name, std::uint64_t id) {
        push({now_ns(), name, 0.0, id, 0, 0, EventKind::flow_begin});
    }
    /// Flow head: emit *inside* the span the arrow should land on.
    void flow_end(const char* name, std::uint64_t id) {
        push({now_ns(), name, 0.0, id, 0, 0, EventKind::flow_end});
    }

    /// Number of recorded (not dropped) events. Quiescence-only read.
    [[nodiscard]] std::size_t size() const {
        std::size_t n = n_.load(std::memory_order_relaxed);
        return n < events_.size() ? n : events_.size();
    }
    [[nodiscard]] std::uint64_t dropped() const {
        return dropped_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] const Event& operator[](std::size_t i) const {
        return events_[i];
    }
    [[nodiscard]] const std::string& name() const { return name_; }
    [[nodiscard]] TrackKind kind() const { return kind_; }
    [[nodiscard]] std::uint32_t tid() const { return tid_; }

    /// Rename (registration-time only; e.g. "rank 3" replacing the default).
    void set_name(std::string name) { name_ = std::move(name); }

    /// Drop all recorded events; resize the arena if asked. Quiescence-only.
    void reset(std::size_t capacity = 0) {
        if (capacity != 0 && capacity != events_.size())
            events_.assign(capacity, Event{});
        n_.store(0, std::memory_order_relaxed);
        dropped_.store(0, std::memory_order_relaxed);
    }

private:
    void push(const Event& e) {
        std::size_t i = n_.fetch_add(1, std::memory_order_relaxed);
        if (i < events_.size())
            events_[i] = e;
        else
            dropped_.fetch_add(1, std::memory_order_relaxed);
    }

    std::string name_;
    TrackKind kind_;
    std::uint32_t tid_;
    std::vector<Event> events_;
    std::atomic<std::size_t> n_{0};
    std::atomic<std::uint64_t> dropped_{0};
};

/// Process-wide track registry. Leaky singleton (never destroyed) so device
/// runtime worker threads and static-destruction-order games can't dangle it.
class Registry {
public:
    static Registry& instance() {
        static Registry* r = new Registry; // leaked deliberately
        return *r;
    }

    /// Arm recording. Existing tracks are reset (and resized) so a re-arm
    /// starts a fresh recording; the thread_local track caches stay valid
    /// because tracks are never deallocated.
    void arm(const Config& cfg) {
        {
            std::lock_guard lock(mu_);
            config_ = cfg;
            for (auto& t : tracks_) t->reset(cfg.track_capacity);
        }
        g_enabled.store(true, std::memory_order_release);
    }

    void disarm() { g_enabled.store(false, std::memory_order_release); }

    /// Reset every track's events without re-arming. Quiescence-only.
    void clear() {
        std::lock_guard lock(mu_);
        for (auto& t : tracks_) t->reset();
    }

    TrackRecorder* register_track(std::string name, TrackKind kind) {
        std::lock_guard lock(mu_);
        auto tid = static_cast<std::uint32_t>(tracks_.size());
        tracks_.push_back(std::make_unique<TrackRecorder>(
            std::move(name), kind, tid, config_.track_capacity));
        return tracks_.back().get();
    }

    /// Stable pointers to all tracks registered so far.
    [[nodiscard]] std::vector<TrackRecorder*> tracks() const {
        std::lock_guard lock(mu_);
        std::vector<TrackRecorder*> out;
        out.reserve(tracks_.size());
        for (auto& t : tracks_) out.push_back(t.get());
        return out;
    }

    [[nodiscard]] Config config() const {
        std::lock_guard lock(mu_);
        return config_;
    }

private:
    Registry() = default;
    mutable std::mutex mu_;
    Config config_;
    std::vector<std::unique_ptr<TrackRecorder>> tracks_;
};

/// This thread's track, lazily registered on first armed use. The pointer is
/// cached for the thread's lifetime; a track outlives every recording.
[[nodiscard]] inline TrackRecorder& thread_track() {
    thread_local TrackRecorder* t = nullptr;
    if (!t) {
        char name[32];
        std::snprintf(name, sizeof name, "thread %p",
                      static_cast<void*>(&t));
        t = Registry::instance().register_track(name, TrackKind::thread);
    }
    return *t;
}

/// Give the calling thread's track a human label ("rank 3"). Called once per
/// rank-thread by Context::run when armed.
inline void name_thread_track(const std::string& name) {
    thread_track().set_name(name);
}

/// RAII span on the calling thread's track. Does nothing when disabled.
class Scope {
public:
    explicit Scope(const char* name, std::uint64_t a0 = 0,
                   std::uint64_t a1 = 0) {
        if (enabled()) {
            name_ = name;
            track_ = &thread_track();
            track_->begin(name, a0, a1);
        }
    }
    ~Scope() { close(); }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

    /// Close early, optionally attaching result arguments to the end event.
    void close(std::uint64_t a0 = 0, std::uint64_t a1 = 0) {
        if (track_) {
            track_->end(name_, a0, a1);
            track_ = nullptr;
        }
    }

private:
    const char* name_ = nullptr;
    TrackRecorder* track_ = nullptr;
};

/// FNV-1a over a handful of integers: deterministic cross-process flow ids
/// (the k-th publish on a channel hashes identically in sender and receiver).
[[nodiscard]] inline std::uint64_t flow_id(std::initializer_list<std::uint64_t> parts) {
    std::uint64_t h = 1469598103934665603ull;
    for (std::uint64_t p : parts) {
        for (int i = 0; i < 8; ++i) {
            h ^= (p >> (8 * i)) & 0xffu;
            h *= 1099511628211ull;
        }
    }
    return h ? h : 1; // 0 is "no flow"
}

/// Ensure artifacts are flushed at process exit (idempotent). Defined in
/// telemetry.cpp; both env arming and arm() below register it.
void register_flush_at_exit();

/// Arm/disarm wrappers (the call sites most code uses).
inline void arm(const Config& cfg = {}) {
    Registry::instance().arm(cfg);
    register_flush_at_exit();
}
inline void disarm() { Registry::instance().disarm(); }

/// Write the Perfetto JSON (and metrics rollup, if configured) now instead
/// of at exit. Safe to call repeatedly; quiescence-only. Defined in
/// telemetry.cpp. Returns false if a configured file could not be written.
bool flush();

} // namespace beatnik::telemetry
