/// \file writers.hpp
/// \brief Visualization / data writers — the Silo-library stand-in.
///
/// The paper's SiloWriter dumps surface-mesh state for visualization
/// (Figs. 1–2). Here we provide:
///  * VTK legacy structured-grid writer (readable by ParaView/VisIt, the
///    same consumers Silo targets);
///  * BOV ("brick of values") writer for raw field dumps;
///  * CSV series writer for benchmark tables.
#pragma once

#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "base/error.hpp"

namespace beatnik::io {

/// Write a 2D structured surface embedded in 3D as a VTK legacy
/// STRUCTURED_GRID file with any number of named point scalars.
///
/// \p positions is (ni*nj) x 3 row-major (j fastest), and each entry of
/// \p scalars pairs a name with a field of ni*nj values in the same order.
class VtkStructuredWriter {
public:
    VtkStructuredWriter(std::string path, int ni, int nj)
        : path_(std::move(path)), ni_(ni), nj_(nj) {
        BEATNIK_REQUIRE(ni >= 1 && nj >= 1, "vtk: empty grid");
    }

    void write(std::span<const double> positions,
               const std::vector<std::pair<std::string, std::span<const double>>>& scalars) const {
        const auto n = static_cast<std::size_t>(ni_) * static_cast<std::size_t>(nj_);
        BEATNIK_REQUIRE(positions.size() == 3 * n, "vtk: positions must be (ni*nj) x 3");
        std::ofstream os(path_);
        if (!os) throw IoError("cannot open " + path_ + " for writing");
        os << "# vtk DataFile Version 3.0\n";
        os << "beatnik surface mesh\n";
        os << "ASCII\n";
        os << "DATASET STRUCTURED_GRID\n";
        // VTK dimension order is fastest-first; our j index is fastest.
        os << "DIMENSIONS " << nj_ << ' ' << ni_ << " 1\n";
        os << "POINTS " << n << " double\n";
        for (std::size_t k = 0; k < n; ++k) {
            os << positions[3 * k] << ' ' << positions[3 * k + 1] << ' ' << positions[3 * k + 2]
               << '\n';
        }
        if (!scalars.empty()) {
            os << "POINT_DATA " << n << '\n';
            for (const auto& [name, values] : scalars) {
                BEATNIK_REQUIRE(values.size() == n, "vtk: scalar field size mismatch");
                os << "SCALARS " << name << " double 1\n";
                os << "LOOKUP_TABLE default\n";
                for (std::size_t k = 0; k < n; ++k) os << values[k] << '\n';
            }
        }
        if (!os) throw IoError("failed while writing " + path_);
    }

private:
    std::string path_;
    int ni_, nj_;
};

/// Raw binary "brick of values" dump with a small text header file, the
/// VisIt BOV convention.
inline void write_bov(const std::string& stem, std::span<const double> values, int ni, int nj) {
    const auto n = static_cast<std::size_t>(ni) * static_cast<std::size_t>(nj);
    BEATNIK_REQUIRE(values.size() == n, "bov: field size mismatch");
    {
        std::ofstream data(stem + ".bof", std::ios::binary);
        if (!data) throw IoError("cannot open " + stem + ".bof");
        data.write(reinterpret_cast<const char*>(values.data()),
                   static_cast<std::streamsize>(values.size() * sizeof(double)));
    }
    std::ofstream hdr(stem + ".bov");
    if (!hdr) throw IoError("cannot open " + stem + ".bov");
    hdr << "DATA_FILE: " << stem << ".bof\n";
    hdr << "DATA_SIZE: " << nj << ' ' << ni << " 1\n";
    hdr << "DATA_FORMAT: DOUBLE\n";
    hdr << "VARIABLE: field\n";
    hdr << "DATA_ENDIAN: LITTLE\n";
    hdr << "CENTERING: zonal\n";
    hdr << "BRICK_ORIGIN: 0 0 0\n";
    hdr << "BRICK_SIZE: 1 1 1\n";
}

/// Append-style CSV writer for benchmark series.
class CsvWriter {
public:
    explicit CsvWriter(const std::string& path, const std::vector<std::string>& columns)
        : os_(path) {
        if (!os_) throw IoError("cannot open " + path);
        for (std::size_t c = 0; c < columns.size(); ++c) {
            os_ << columns[c] << (c + 1 < columns.size() ? "," : "\n");
        }
    }

    void row(std::span<const double> values) {
        for (std::size_t c = 0; c < values.size(); ++c) {
            os_ << values[c] << (c + 1 < values.size() ? "," : "\n");
        }
    }

private:
    std::ofstream os_;
};

} // namespace beatnik::io
