/// \file par.hpp
/// \brief On-rank data parallelism: the Kokkos/Cabana stand-in.
///
/// Beatnik's kernels are flat data-parallel loops over mesh points. This
/// module provides `parallel_for` / `parallel_reduce` over an execution
/// backend chosen at runtime:
///   * Backend::serial — plain loop. The default when many logical ranks
///     share the machine (rank-threads already use the cores).
///   * Backend::openmp — OpenMP worksharing, for single-rank tools and
///     calibration microbenchmarks.
///
/// The backend is a per-thread setting so each rank-thread can choose
/// independently without synchronization.
#pragma once

#include <cstddef>
#include <utility>

#if defined(_OPENMP)
#include <omp.h>
#endif

namespace beatnik::par {

enum class Backend { serial, openmp };

/// Per-thread execution backend (each rank-thread owns its setting).
inline Backend& backend() {
    thread_local Backend b = Backend::serial;
    return b;
}

/// True when this build can actually run OpenMP loops.
constexpr bool openmp_available() {
#if defined(_OPENMP)
    return true;
#else
    return false;
#endif
}

/// RAII backend override for a scope.
class ScopedBackend {
public:
    explicit ScopedBackend(Backend b) : saved_(backend()) { backend() = b; }
    ~ScopedBackend() { backend() = saved_; }
    ScopedBackend(const ScopedBackend&) = delete;
    ScopedBackend& operator=(const ScopedBackend&) = delete;

private:
    Backend saved_;
};

/// Apply f(i) for i in [0, n).
template <class F>
void parallel_for(std::size_t n, F&& f) {
#if defined(_OPENMP)
    if (backend() == Backend::openmp) {
#pragma omp parallel for schedule(static)
        for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(n); ++i) {
            f(static_cast<std::size_t>(i));
        }
        return;
    }
#endif
    for (std::size_t i = 0; i < n; ++i) f(i);
}

/// Apply f(i, j) over the half-open index rectangle
/// [i_begin, i_end) x [j_begin, j_end), outer loop parallelized.
template <class F>
void parallel_for_2d(std::ptrdiff_t i_begin, std::ptrdiff_t i_end, std::ptrdiff_t j_begin,
                     std::ptrdiff_t j_end, F&& f) {
#if defined(_OPENMP)
    if (backend() == Backend::openmp) {
#pragma omp parallel for schedule(static)
        for (std::ptrdiff_t i = i_begin; i < i_end; ++i) {
            for (std::ptrdiff_t j = j_begin; j < j_end; ++j) f(i, j);
        }
        return;
    }
#endif
    for (std::ptrdiff_t i = i_begin; i < i_end; ++i) {
        for (std::ptrdiff_t j = j_begin; j < j_end; ++j) f(i, j);
    }
}

/// Reduce map(i) over [0, n) with a binary combiner, starting from
/// identity. The combiner must be associative and commutative.
template <class T, class Map, class Combine>
T parallel_reduce(std::size_t n, T identity, Map&& map, Combine&& combine) {
#if defined(_OPENMP)
    if (backend() == Backend::openmp) {
        T result = identity;
#pragma omp parallel
        {
            T local = identity;
#pragma omp for schedule(static) nowait
            for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(n); ++i) {
                local = combine(local, map(static_cast<std::size_t>(i)));
            }
#pragma omp critical
            result = combine(result, local);
        }
        return result;
    }
#endif
    T result = identity;
    for (std::size_t i = 0; i < n; ++i) result = combine(result, map(i));
    return result;
}

} // namespace beatnik::par
