/// \file par.hpp
/// \brief On-rank data parallelism: the Kokkos/Cabana stand-in.
///
/// Beatnik's kernels are flat data-parallel loops over mesh points. This
/// module provides `parallel_for` / `parallel_reduce` over an execution
/// backend chosen at runtime:
///   * Backend::serial — plain loop. The default when many logical ranks
///     share the machine (rank-threads already use the cores).
///   * Backend::openmp — OpenMP worksharing, for single-rank tools and
///     calibration microbenchmarks.
///   * Backend::device — the GPU-shaped backend (par/device/): kernels
///     are launched on the emulated accelerator's worker pool through the
///     calling thread's implicit queue and fenced before returning, so
///     the dispatch keeps synchronous semantics while exercising the real
///     host/device split (separate memory space, async queues, explicit
///     mirrors — see par/device/device.hpp).
///
/// The backend is a per-thread setting so each rank-thread can choose
/// independently; threads inherit the process-wide default
/// (set_default_backend, or the BEATNIK_TEST_BACKEND env knob in tests).
///
/// parallel_reduce is **bitwise deterministic across backends**: the
/// reduction is defined as a fold over fixed-size chunks (kReduceChunk
/// elements), each chunk folded left-to-right from the identity and the
/// chunk partials folded in chunk order. The chunk layout depends only on
/// n — never on thread or worker count — so serial, OpenMP and device
/// backends produce identical bits for identical inputs, including for
/// non-associative floating-point sums (the paper's energy/L2 patterns).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <utility>
#include <vector>

#if defined(_OPENMP)
#include <omp.h>
#endif

#include "par/device/device.hpp"

namespace beatnik::par {

enum class Backend { serial, openmp, device };

/// Process-wide default backend; threads read it once at first use of
/// backend(). Set it before spawning rank-threads (tests/main.cpp does).
/// Seeded from $BEATNIK_BACKEND (serial | openmp | device) so examples and
/// benches can switch backend without code changes — the CI traced-smoke
/// job runs rocketrig under BEATNIK_BACKEND=device this way. Unknown (or
/// unavailable: openmp in a non-OpenMP build) values keep serial.
inline std::atomic<Backend>& default_backend() {
    static std::atomic<Backend> b{[] {
        const char* env = std::getenv("BEATNIK_BACKEND");
        if (env != nullptr) {
            if (std::strcmp(env, "device") == 0) return Backend::device;
#if defined(_OPENMP)
            if (std::strcmp(env, "openmp") == 0) return Backend::openmp;
#endif
        }
        return Backend::serial;
    }()};
    return b;
}

inline void set_default_backend(Backend b) {
    default_backend().store(b, std::memory_order_relaxed);
}

/// Per-thread execution backend (each rank-thread owns its setting),
/// initialized from the process-wide default.
inline Backend& backend() {
    thread_local Backend b = default_backend().load(std::memory_order_relaxed);
    return b;
}

/// True when this build can actually run OpenMP loops.
constexpr bool openmp_available() {
#if defined(_OPENMP)
    return true;
#else
    return false;
#endif
}

/// RAII backend override for a scope.
class ScopedBackend {
public:
    explicit ScopedBackend(Backend b) : saved_(backend()) { backend() = b; }
    ~ScopedBackend() { backend() = saved_; }
    ScopedBackend(const ScopedBackend&) = delete;
    ScopedBackend& operator=(const ScopedBackend&) = delete;

private:
    Backend saved_;
};

namespace detail {

/// Device dispatch is taken only from host threads: a kernel body that
/// itself calls parallel_for (nested parallelism) degrades to a serial
/// loop on the worker, like device code without dynamic parallelism —
/// and never deadlocks the pool waiting for itself.
inline bool use_device() {
    return backend() == Backend::device && !device::in_device_context();
}

} // namespace detail

/// Apply f(i) for i in [0, n).
template <class F>
void parallel_for(std::size_t n, F&& f) {
    if (detail::use_device()) {
        auto& q = device::default_queue();
        q.parallel_for(n, f);
        q.fence();
        return;
    }
#if defined(_OPENMP)
    if (backend() == Backend::openmp) {
#pragma omp parallel for schedule(static)
        for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(n); ++i) {
            f(static_cast<std::size_t>(i));
        }
        return;
    }
#endif
    for (std::size_t i = 0; i < n; ++i) f(i);
}

/// Apply f(i, j) over the half-open index rectangle
/// [i_begin, i_end) x [j_begin, j_end), outer loop parallelized.
template <class F>
void parallel_for_2d(std::ptrdiff_t i_begin, std::ptrdiff_t i_end, std::ptrdiff_t j_begin,
                     std::ptrdiff_t j_end, F&& f) {
    if (detail::use_device()) {
        const std::ptrdiff_t nj = j_end - j_begin;
        if (i_end <= i_begin || nj <= 0) return;
        const auto total =
            static_cast<std::size_t>(i_end - i_begin) * static_cast<std::size_t>(nj);
        auto& q = device::default_queue();
        // Flatten to 1D so chunks cut across rows; kernels recover (i, j).
        q.parallel_for(total, [=](std::size_t idx) {
            const auto i = i_begin + static_cast<std::ptrdiff_t>(idx / static_cast<std::size_t>(nj));
            const auto j = j_begin + static_cast<std::ptrdiff_t>(idx % static_cast<std::size_t>(nj));
            f(i, j);
        });
        q.fence();
        return;
    }
#if defined(_OPENMP)
    if (backend() == Backend::openmp) {
#pragma omp parallel for schedule(static)
        for (std::ptrdiff_t i = i_begin; i < i_end; ++i) {
            for (std::ptrdiff_t j = j_begin; j < j_end; ++j) f(i, j);
        }
        return;
    }
#endif
    for (std::ptrdiff_t i = i_begin; i < i_end; ++i) {
        for (std::ptrdiff_t j = j_begin; j < j_end; ++j) f(i, j);
    }
}

/// Elements per reduction chunk. Part of the cross-backend determinism
/// contract: changing it changes every floating-point reduction's bits.
inline constexpr std::size_t kReduceChunk = 1024;

/// Reduce map(i) over [0, n) with a binary combiner, starting from
/// identity. The combiner must be associative up to the tolerance the
/// caller cares about; the *evaluation order* is fixed (see file header),
/// so all backends agree bitwise and runs are reproducible at any worker
/// or thread count.
template <class T, class Map, class Combine>
T parallel_reduce(std::size_t n, T identity, Map&& map, Combine&& combine) {
    const std::size_t nchunks = (n + kReduceChunk - 1) / kReduceChunk;
    auto fold_chunk = [&](std::size_t c) {
        const std::size_t b = c * kReduceChunk;
        const std::size_t e = std::min(n, b + kReduceChunk);
        T local = identity;
        for (std::size_t i = b; i < e; ++i) local = combine(local, map(i));
        return local;
    };

    if (detail::use_device()) {
        std::vector<T> partials(nchunks, identity);
        auto& q = device::default_queue();
        T* out = partials.data();
        q.parallel_for(nchunks, [&fold_chunk, out](std::size_t c) { out[c] = fold_chunk(c); });
        q.fence();
        T result = identity;
        for (const T& p : partials) result = combine(result, p);
        return result;
    }
#if defined(_OPENMP)
    if (backend() == Backend::openmp) {
        std::vector<T> partials(nchunks, identity);
#pragma omp parallel for schedule(static)
        for (std::ptrdiff_t c = 0; c < static_cast<std::ptrdiff_t>(nchunks); ++c) {
            partials[static_cast<std::size_t>(c)] = fold_chunk(static_cast<std::size_t>(c));
        }
        T result = identity;
        for (const T& p : partials) result = combine(result, p);
        return result;
    }
#endif
    T result = identity;
    for (std::size_t c = 0; c < nchunks; ++c) result = combine(result, fold_chunk(c));
    return result;
}

} // namespace beatnik::par
