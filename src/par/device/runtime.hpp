/// \file runtime.hpp
/// \brief The emulated device: a process-wide accelerator with its own
/// memory space and a persistent worker pool.
///
/// `par::device` models the host/device split that dominates real GPU
/// runs of the paper's Z-Model without requiring a GPU: one process-wide
/// Runtime plays the role of the accelerator. It owns
///
///   * a **device heap** — allocations that "live on the device". Host
///     code must never dereference them directly (the DeviceView accessor
///     debug-checks this, see view.hpp); data moves with explicit
///     deep_copy, exactly the discipline Kokkos/Cabana impose;
///   * a **host-range registry** — the pinned/mapped-memory analogue.
///     Device kernels may write straight into a host buffer (e.g. a
///     communication plan's transport buffer) only after the range has
///     been registered, mirroring the register-then-DMA contract of
///     GPU-aware communication;
///   * a **persistent worker pool** — the execution units. Kernels are
///     split into chunks that workers claim from a FIFO of submitted
///     tasks; a worker thread runs with the device-context flag set, which
///     is what legitimizes device-memory access inside kernels.
///
/// Queues (queue.hpp) provide the stream-ordered submission API on top;
/// this header is the raw machine.
///
/// Worker count comes from BEATNIK_DEVICE_WORKERS (default 4). Like a
/// GPU shared by several processes, all rank-threads of a run submit to
/// the same pool; tasks from different queues interleave at chunk
/// granularity while each queue stays internally ordered.
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "base/error.hpp"
#include "par/device/devcheck.hpp"

namespace beatnik::par::device {

class Runtime;

namespace detail {

/// True on threads currently executing device work (the worker pool).
/// Device-memory accessors assert on it; host threads read false.
inline thread_local bool t_device_context = false;

/// One kernel launch, type-erased. The callable is stored inline when it
/// fits (the common case: a lambda capturing a few pointers/ints), so the
/// steady-state enqueue path performs no heap allocation; larger captures
/// fall back to the heap. Workers claim chunk indices under the runtime
/// lock and invoke `run(fn, begin, end)` for the half-open index range of
/// each chunk. The final chunk to finish fires `on_done` — the owning
/// queue's completion hook.
struct Task {
    /// Sized for the fattest steady-state kernel capture (the RK3 axpy:
    /// six field views plus scalars, ~280 bytes) so the solver hot loop
    /// never takes the heap fallback.
    static constexpr std::size_t kInlineBytes = 512;

    alignas(std::max_align_t) std::byte storage[kInlineBytes];
    void* heap_fn = nullptr;                       ///< set when the callable spilled
    void (*run)(void* fn, std::size_t begin, std::size_t end) = nullptr;
    void (*destroy)(void* fn) noexcept = nullptr;  ///< tears down fn() in place
    void (*on_done)(void* owner, Task* task) = nullptr;
    void* owner = nullptr;

    std::size_t n = 0;           ///< total index count
    std::size_t chunk_size = 0;  ///< indices per chunk
    std::size_t nchunks = 0;     ///< always >= 1 (empty ranges run one no-op chunk)
    std::size_t next_chunk = 0;  ///< next chunk to hand out (runtime lock)
    std::atomic<std::size_t> chunks_left{0};

    [[nodiscard]] void* fn() { return heap_fn != nullptr ? heap_fn : storage; }

    /// Install callable \p r as the range functor (invoked with a chunk's
    /// [begin, end)). Inline when it fits, heap otherwise. `destroy` owns
    /// the full teardown for its storage mode — in-place destructor for
    /// inline, `delete` for heap (which pairs correctly with the aligned
    /// allocation path of over-aligned callables).
    template <class R>
    void install(R&& r) {
        using Fn = std::decay_t<R>;
        if constexpr (sizeof(Fn) <= kInlineBytes &&
                      alignof(Fn) <= alignof(std::max_align_t)) {
            ::new (static_cast<void*>(storage)) Fn(std::forward<R>(r));
            heap_fn = nullptr;
            if constexpr (std::is_trivially_destructible_v<Fn>) {
                destroy = nullptr;
            } else {
                destroy = [](void* fn) noexcept { static_cast<Fn*>(fn)->~Fn(); };
            }
        } else {
            heap_fn = new Fn(std::forward<R>(r));
            destroy = [](void* fn) noexcept { delete static_cast<Fn*>(fn); };
        }
        run = [](void* fn, std::size_t b, std::size_t e) { (*static_cast<Fn*>(fn))(b, e); };
    }

    /// Destroy the installed callable (after completion, before reuse).
    void uninstall() noexcept {
        if (destroy != nullptr) destroy(fn());
        heap_fn = nullptr;
        run = nullptr;
        destroy = nullptr;
    }
};

} // namespace detail

/// True while the calling thread is executing device work. Kernels run
/// with this set; host threads see false. The device-memory accessor
/// (DeviceView) and the kernel-side staging checks key off it.
[[nodiscard]] inline bool in_device_context() { return detail::t_device_context; }

/// The process-wide emulated accelerator. Use Runtime::instance().
class Runtime {
public:
    static Runtime& instance() {
        static Runtime rt;
        return rt;
    }

    Runtime(const Runtime&) = delete;
    Runtime& operator=(const Runtime&) = delete;

    [[nodiscard]] int num_workers() const { return static_cast<int>(workers_.size()); }

    // ------------------------------------------------------- device heap

    /// Allocate \p bytes in the device memory space (host API, like
    /// cudaMalloc). The block is tracked so accessibility checks and the
    /// host-dereference debug assert can tell device memory apart.
    [[nodiscard]] void* device_malloc(std::size_t bytes) {
        void* p = ::operator new(bytes != 0 ? bytes : 1);
        {
            std::lock_guard lock(mem_m_);
            heap_blocks_[p] = bytes;
            ++device_allocs_;
            device_bytes_ += bytes;
        }
        if (devcheck::enabled()) devcheck::Checker::instance().on_device_malloc(p, bytes);
        return p;
    }

    void device_free(void* p) noexcept {
        if (p == nullptr) return;
        // The shadow check runs before the block leaves the heap map so a
        // flagged early destruction still names a tracked allocation.
        if (devcheck::enabled()) devcheck::Checker::instance().on_device_free(p);
        {
            std::lock_guard lock(mem_m_);
            auto it = heap_blocks_.find(p);
            if (it != heap_blocks_.end()) {
                device_bytes_ -= it->second;
                heap_blocks_.erase(it);
            }
        }
        ::operator delete(p);
    }

    /// Whether [p, p + bytes) lies inside one device-heap block.
    [[nodiscard]] bool on_device_heap(const void* p, std::size_t bytes) const {
        std::lock_guard lock(mem_m_);
        return range_inside(heap_blocks_, p, bytes);
    }

    /// Device allocations performed since start-up (diagnostic).
    [[nodiscard]] std::uint64_t device_alloc_count() const {
        std::lock_guard lock(mem_m_);
        return device_allocs_;
    }
    [[nodiscard]] std::size_t device_bytes_in_use() const {
        std::lock_guard lock(mem_m_);
        return device_bytes_;
    }

    // ----------------------------------------- host (pinned) registration

    /// Register a host range for device access — the pin/map analogue.
    /// Kernels may write directly into registered host memory (plan
    /// transport buffers); unregistered host memory is reachable only
    /// through deep_copy. Registrations are refcounted: both endpoints of
    /// an in-process channel may pin the same buffer.
    void register_host_range(const void* p, std::size_t bytes) {
        if (bytes == 0) return;
        {
            std::lock_guard lock(mem_m_);
            auto [it, inserted] = host_ranges_.try_emplace(p, RangeRef{bytes, 1});
            if (!inserted) {
                BEATNIK_REQUIRE(it->second.bytes == bytes,
                                "register_host_range: same pointer registered with another size");
                ++it->second.refs;
            }
        }
        if (devcheck::enabled()) devcheck::Checker::instance().on_register_host(p, bytes);
    }

    void unregister_host_range(const void* p) noexcept {
        if (devcheck::enabled()) devcheck::Checker::instance().on_unregister_host(p);
        std::lock_guard lock(mem_m_);
        auto it = host_ranges_.find(p);
        if (it != host_ranges_.end() && --it->second.refs == 0) host_ranges_.erase(it);
    }

    /// Whether [p, p + bytes) lies inside one registered host range.
    [[nodiscard]] bool host_range_registered(const void* p, std::size_t bytes) const {
        std::lock_guard lock(mem_m_);
        auto it = host_ranges_.upper_bound(p);
        if (it == host_ranges_.begin()) return false;
        --it;
        const auto* base = static_cast<const std::byte*>(it->first);
        const auto* q = static_cast<const std::byte*>(p);
        return q >= base && q + bytes <= base + it->second.bytes;
    }

    /// A device kernel may touch [p, p + bytes) directly iff it is device
    /// memory or a registered (pinned) host range.
    [[nodiscard]] bool device_accessible(const void* p, std::size_t bytes) const {
        if (bytes == 0) return true;
        return on_device_heap(p, bytes) || host_range_registered(p, bytes);
    }

    // -------------------------------------------------------- submission

    /// Queue a task for the worker pool (called by Queue, which owns the
    /// task's lifetime until its on_done hook fires). Tasks start in FIFO
    /// order; chunks of the head task are handed to workers until
    /// exhausted, then the next task starts while straggler chunks finish.
    void submit(detail::Task* t) {
        BEATNIK_ASSERT(t->nchunks >= 1);
        t->next_chunk = 0;
        t->chunks_left.store(t->nchunks, std::memory_order_relaxed);
        {
            std::lock_guard lock(m_);
            if (tail_ - head_ == fifo_.size()) grow_fifo();
            fifo_[tail_ % fifo_.size()] = t;
            ++tail_;
        }
        cv_.notify_all();
    }

private:
    struct RangeRef {
        std::size_t bytes;
        int refs;
    };

    Runtime() {
        int n = 4;
        if (const char* env = std::getenv("BEATNIK_DEVICE_WORKERS")) {
            char* end = nullptr;
            long parsed = std::strtol(env, &end, 10);
            if (end != nullptr && *end == '\0' && parsed > 0 && parsed <= 256) {
                n = static_cast<int>(parsed);
            }
        }
        fifo_.resize(64, nullptr);
        workers_.reserve(static_cast<std::size_t>(n));
        for (int w = 0; w < n; ++w) workers_.emplace_back([this] { worker_main(); });
    }

    ~Runtime() {
        {
            std::lock_guard lock(m_);
            stop_ = true;
        }
        cv_.notify_all();
        for (auto& w : workers_) w.join();
    }

    template <class Map>
    [[nodiscard]] static bool range_inside(const Map& blocks, const void* p, std::size_t bytes) {
        auto it = blocks.upper_bound(p);
        if (it == blocks.begin()) return false;
        --it;
        const auto* base = static_cast<const std::byte*>(it->first);
        const auto* q = static_cast<const std::byte*>(p);
        return q >= base && q + bytes <= base + it->second;
    }

    void grow_fifo() {
        // Relocate the live window into a doubled ring (startup only; the
        // steady state reuses the existing capacity).
        std::vector<detail::Task*> bigger(fifo_.size() * 2, nullptr);
        for (std::size_t i = head_; i != tail_; ++i) {
            bigger[i % bigger.size()] = fifo_[i % fifo_.size()];
        }
        fifo_.swap(bigger);
    }

    void worker_main() {
        detail::t_device_context = true;
        std::unique_lock lock(m_);
        for (;;) {
            cv_.wait(lock, [&] { return stop_ || head_ != tail_; });
            if (stop_) return;
            detail::Task* t = fifo_[head_ % fifo_.size()];
            const std::size_t c = t->next_chunk++;
            BEATNIK_ASSERT(c < t->nchunks);
            if (c + 1 == t->nchunks) ++head_;   // last chunk handed out
            lock.unlock();
            const std::size_t begin = c * t->chunk_size;
            const std::size_t end = std::min(t->n, begin + t->chunk_size);
            t->run(t->fn(), begin, end);
            // The worker finishing the last chunk completes the task; the
            // owner may immediately reuse or destroy it.
            if (t->chunks_left.fetch_sub(1, std::memory_order_acq_rel) == 1) {
                t->on_done(t->owner, t);
            }
            lock.lock();
        }
    }

    std::mutex m_;
    std::condition_variable cv_;
    std::vector<detail::Task*> fifo_;   ///< ring buffer, [head_, tail_) live
    std::size_t head_ = 0;
    std::size_t tail_ = 0;
    bool stop_ = false;
    std::vector<std::thread> workers_;

    mutable std::mutex mem_m_;
    std::map<const void*, std::size_t> heap_blocks_;
    std::map<const void*, RangeRef> host_ranges_;
    std::uint64_t device_allocs_ = 0;
    std::size_t device_bytes_ = 0;
};

} // namespace beatnik::par::device
