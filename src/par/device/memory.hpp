/// \file memory.hpp
/// \brief Device memory space: owning buffers, debug-checked views, and
/// host-range (pinned-memory) registration helpers.
///
/// Device allocations live in the Runtime's tracked heap and are **not
/// directly dereferenceable from host code**: the DeviceView accessor
/// asserts (debug builds) that the calling thread is in device context —
/// i.e. inside a kernel on the worker pool. Host code moves data with
/// deep_copy (device.hpp), exactly the explicit-mirror discipline the
/// paper's Kokkos/Cabana stack imposes; forgetting a copy is a crash on a
/// real GPU and a thrown assertion here.
#pragma once

#include <algorithm>
#include <span>
#include <utility>
#include <vector>

#include "par/device/runtime.hpp"

namespace beatnik::par::device {

/// Where an allocation lives. Host memory is universally accessible (the
/// managed/pinned model); device memory is only touchable from kernels.
enum class MemorySpace { host, device };

/// Non-owning typed view of device memory. Element access is legal only
/// in device context (inside a kernel); the check compiles out in release
/// builds, like any bounds assert. Pointer *arithmetic* on data() is fine
/// anywhere — dereferencing it from host code is the bug this catches.
template <class T>
class DeviceView {
public:
    DeviceView() = default;
    DeviceView(T* p, std::size_t n) : p_(p), n_(n) {}

    /// Views convert like pointers: DeviceView<T> -> DeviceView<const T>.
    operator DeviceView<const T>() const { return {p_, n_}; }

    [[nodiscard]] std::size_t size() const { return n_; }
    [[nodiscard]] bool empty() const { return n_ == 0; }

    [[nodiscard]] T& operator[](std::size_t i) const {
        BEATNIK_ASSERT(in_device_context(),
                       "device memory dereferenced from host code — deep_copy to a host "
                       "mirror first");
        BEATNIK_ASSERT(i < n_);
        return p_[i];
    }

    /// Raw device pointer (no dereference implied).
    [[nodiscard]] T* data() const { return p_; }

    [[nodiscard]] DeviceView subview(std::size_t offset, std::size_t count) const {
        BEATNIK_ASSERT(offset + count <= n_);
        return {p_ + offset, count};
    }

private:
    T* p_ = nullptr;
    std::size_t n_ = 0;
};

/// Owning device-resident array of trivially copyable elements. Contents
/// are uninitialized after allocation (device-malloc semantics) — fill it
/// with deep_copy or a kernel.
template <class T>
class DeviceBuffer {
public:
    static_assert(std::is_trivially_copyable_v<T>,
                  "device buffers hold trivially copyable elements");

    DeviceBuffer() = default;
    explicit DeviceBuffer(std::size_t n)
        : p_(static_cast<T*>(Runtime::instance().device_malloc(n * sizeof(T)))), n_(n) {}

    DeviceBuffer(DeviceBuffer&& other) noexcept
        : p_(std::exchange(other.p_, nullptr)), n_(std::exchange(other.n_, 0)) {}
    DeviceBuffer& operator=(DeviceBuffer&& other) noexcept {
        if (this != &other) {
            reset();
            p_ = std::exchange(other.p_, nullptr);
            n_ = std::exchange(other.n_, 0);
        }
        return *this;
    }
    DeviceBuffer(const DeviceBuffer&) = delete;
    DeviceBuffer& operator=(const DeviceBuffer&) = delete;

    ~DeviceBuffer() { reset(); }

    void reset() {
        if (p_ != nullptr) Runtime::instance().device_free(p_);
        p_ = nullptr;
        n_ = 0;
    }

    [[nodiscard]] std::size_t size() const { return n_; }
    [[nodiscard]] explicit operator bool() const { return p_ != nullptr; }

    [[nodiscard]] DeviceView<T> view() { return {p_, n_}; }
    [[nodiscard]] DeviceView<const T> view() const { return {p_, n_}; }

private:
    T* p_ = nullptr;
    std::size_t n_ = 0;
};

/// RAII host-range registration: pins a host span for direct kernel
/// access for the lifetime of the object (used per-iteration by patterns
/// whose staging buffers move, e.g. growing migration channels).
class ScopedHostRegistration {
public:
    ScopedHostRegistration() = default;
    explicit ScopedHostRegistration(std::span<const std::byte> range)
        : p_(range.data()), bytes_(range.size()) {
        if (bytes_ != 0) Runtime::instance().register_host_range(p_, bytes_);
    }
    template <class T>
    explicit ScopedHostRegistration(std::span<T> range)
        : ScopedHostRegistration(std::as_bytes(range)) {}

    ScopedHostRegistration(ScopedHostRegistration&& other) noexcept
        : p_(std::exchange(other.p_, nullptr)), bytes_(std::exchange(other.bytes_, 0)) {}
    ScopedHostRegistration& operator=(ScopedHostRegistration&& other) noexcept {
        if (this != &other) {
            release();
            p_ = std::exchange(other.p_, nullptr);
            bytes_ = std::exchange(other.bytes_, 0);
        }
        return *this;
    }
    ScopedHostRegistration(const ScopedHostRegistration&) = delete;
    ScopedHostRegistration& operator=(const ScopedHostRegistration&) = delete;

    ~ScopedHostRegistration() { release(); }

    void release() {
        if (p_ != nullptr && bytes_ != 0) Runtime::instance().unregister_host_range(p_);
        p_ = nullptr;
        bytes_ = 0;
    }

private:
    const void* p_ = nullptr;
    std::size_t bytes_ = 0;
};

/// Grow-only pinned host array: a host vector whose storage stays
/// registered with the device runtime across growth. ensure() keeps the
/// registration in sync with the vector's actual storage — when a resize
/// reallocates, the stale registration is dropped and the new range
/// pinned, so kernels can never reach a dangling pin (the ensemble-mode
/// hazard of re-sized staging buffers). Growth must happen with the
/// owning queue quiescent (callers fence before ensure()); the steady
/// state — ensure() with no growth — is allocation-free.
template <class T>
class PinnedStore {
public:
    static_assert(std::is_trivially_copyable_v<T>,
                  "pinned staging holds trivially copyable elements");

    PinnedStore() = default;

    /// Make the store hold at least \p n elements (grow-only). Does not
    /// touch the device runtime — host-only pipelines use the same
    /// staging without ever instantiating the emulated device.
    void ensure(std::size_t n) { grow(n); }

    /// ensure(), plus guarantee the registration covers the current
    /// storage — growth drops the stale pin and re-registers the new
    /// range, so kernels can never reach a dangling registration.
    void ensure_pinned(std::size_t n) {
        grow(n);
        if (!pinned_ && !data_.empty()) {
            pin_ = ScopedHostRegistration(std::span<const T>(data_.data(), data_.size()));
            pinned_ = true;
        }
    }

    [[nodiscard]] bool pinned() const { return pinned_; }

    [[nodiscard]] std::size_t size() const { return data_.size(); }
    [[nodiscard]] bool empty() const { return data_.empty(); }
    [[nodiscard]] T* data() { return data_.data(); }
    [[nodiscard]] const T* data() const { return data_.data(); }
    [[nodiscard]] T& operator[](std::size_t i) { return data_[i]; }
    [[nodiscard]] const T& operator[](std::size_t i) const { return data_[i]; }

    [[nodiscard]] std::span<T> span(std::size_t n) { return {data_.data(), n}; }
    [[nodiscard]] std::span<const T> span(std::size_t n) const { return {data_.data(), n}; }

private:
    void grow(std::size_t n) {
        if (n <= data_.size()) return;
        pin_.release();
        pinned_ = false;
        // Geometric growth: repeated +1 growth re-pins O(log n) times,
        // not O(n).
        data_.resize(std::max(n, data_.capacity()));
    }

    std::vector<T> data_;
    ScopedHostRegistration pin_;
    bool pinned_ = false;
};

namespace devcheck {

// Footprint builders over the typed memory abstractions, so kernel call
// sites can declare footprints as devcheck::read(view) / write(span)
// without spelling out byte ranges (see devcheck.hpp::declare).

template <class T>
[[nodiscard]] inline Region read(DeviceView<T> v) {
    return read(v.data(), v.size() * sizeof(T));
}
template <class T>
[[nodiscard]] inline Region write(DeviceView<T> v) {
    return write(v.data(), v.size() * sizeof(T));
}
template <class T>
[[nodiscard]] inline Region read(std::span<T> s) {
    return read(s.data(), s.size_bytes());
}
template <class T>
[[nodiscard]] inline Region write(std::span<T> s) {
    return write(s.data(), s.size_bytes());
}

} // namespace devcheck

} // namespace beatnik::par::device
