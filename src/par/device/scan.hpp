/// \file scan.hpp
/// \brief Deterministic exclusive prefix scan on the device backend.
///
/// The count–scan–fill idiom behind cell lists and ghost staging needs a
/// prefix sum whose result does not depend on worker count. The scan is
/// defined over fixed-size chunks (kScanChunk elements): a kernel folds
/// each chunk left-to-right into a partial total, the host folds the
/// chunk partials in chunk order (a handful of adds), and a second kernel
/// rewrites each chunk as its local exclusive scan plus the chunk offset.
/// The chunk layout depends only on n — never on worker count — so the
/// result is identical on every backend, mirroring par::parallel_reduce's
/// determinism contract. Integer addition is associative, so here the
/// chunking is purely a parallelization shape, not a result-affecting
/// choice; what matters for callers is the fixed layout the counts came
/// from.
///
/// The caller owns the scratch (a grow-only partials array) so the
/// steady-state path performs no allocation.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "par/device/memory.hpp"
#include "par/device/queue.hpp"

namespace beatnik::par::device {

/// Elements per scan chunk (matches the reduce chunk for familiarity).
inline constexpr std::size_t kScanChunk = 1024;

/// Scratch for exclusive_scan: chunk partials, grown once to the
/// high-water mark and pinned while registered for kernel access.
struct ScanScratch {
    std::vector<std::uint32_t> partials;
    ScopedHostRegistration pin;

    /// Ensure capacity for scanning \p n elements; (re)pins on growth.
    /// Callers must not have a scan in flight when this grows.
    void reserve_for(std::size_t n) {
        const std::size_t nchunks = n == 0 ? 1 : (n + kScanChunk - 1) / kScanChunk;
        if (partials.size() >= nchunks) return;
        pin.release();
        partials.resize(nchunks);
        pin = ScopedHostRegistration(
            std::span<const std::uint32_t>(partials.data(), partials.size()));
    }
};

/// Exclusive prefix scan of \p data (in place, n elements) enqueued on
/// \p q; returns the total. \p data must be device-accessible (device
/// heap or registered host range). Synchronizes the queue: the total is
/// needed on the host (it sizes the next pipeline stage).
inline std::uint32_t exclusive_scan(Queue& q, std::uint32_t* data, std::size_t n,
                                    ScanScratch& scratch) {
    if (n == 0) return 0;
    scratch.reserve_for(n);
    const std::size_t nchunks = (n + kScanChunk - 1) / kScanChunk;
    std::uint32_t* parts = scratch.partials.data();
    devcheck::declare(q, "exclusive_scan partials",
                      {devcheck::read(data, n * sizeof(std::uint32_t)),
                       devcheck::write(parts, nchunks * sizeof(std::uint32_t))});
    q.parallel_for(nchunks, [data, parts, n](std::size_t c) {
        const std::size_t b = c * kScanChunk;
        const std::size_t e = b + kScanChunk < n ? b + kScanChunk : n;
        std::uint32_t sum = 0;
        for (std::size_t i = b; i < e; ++i) sum += data[i];
        parts[c] = sum;
    });
    q.fence(); // devcheck: fenced — host folds the chunk partials
    // Host fold over the chunk partials, rewriting each as its chunk's
    // exclusive offset.
    std::uint32_t total = 0;
    for (std::size_t c = 0; c < nchunks; ++c) {
        const std::uint32_t s = parts[c];
        parts[c] = total;
        total += s;
    }
    devcheck::declare(q, "exclusive_scan rewrite",
                      {devcheck::read(parts, nchunks * sizeof(std::uint32_t)),
                       devcheck::write(data, n * sizeof(std::uint32_t))});
    q.parallel_for(nchunks, [data, parts, n](std::size_t c) {
        const std::size_t b = c * kScanChunk;
        const std::size_t e = b + kScanChunk < n ? b + kScanChunk : n;
        std::uint32_t run = parts[c];
        for (std::size_t i = b; i < e; ++i) {
            const std::uint32_t v = data[i];
            data[i] = run;
            run += v;
        }
    });
    q.fence(); // devcheck: fenced — the caller sizes the next stage from the total
    return total;
}

} // namespace beatnik::par::device
