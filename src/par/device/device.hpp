/// \file device.hpp
/// \brief Umbrella header for the GPU-shaped execution backend: default
/// per-thread queue and explicit deep_copy between memory spaces.
///
/// `Backend::device` in par.hpp dispatches through default_queue() —
/// every rank-thread owns one implicit stream, so concurrent rank-threads
/// share the device the way processes share a GPU, without serializing
/// each other's synchronous launches.
#pragma once

#include "par/device/memory.hpp"
#include "par/device/queue.hpp"

namespace beatnik::par::device {

/// The calling thread's implicit stream (created on first use, fenced at
/// thread exit). Synchronous par::parallel_for dispatch and the sync
/// deep_copy overloads run on it.
inline Queue& default_queue() {
    thread_local Queue q("default");
    return q;
}

/// Enqueue f(i, j, k) over the row-major flattening of [0, ni) x
/// [0, nj) — the shared index decode for 2D solver kernels (k is the
/// flat index, for kernels that also address 1D staging). Async like
/// Queue::parallel_for.
template <class F>
void parallel_for_2d(Queue& q, int ni, int nj, F&& f) {
    if (ni <= 0 || nj <= 0) return;
    const auto snj = static_cast<std::size_t>(nj);
    q.parallel_for(static_cast<std::size_t>(ni) * snj,
                   [f = std::forward<F>(f), snj](std::size_t k) {
                       f(static_cast<int>(k / snj), static_cast<int>(k % snj), k);
                   });
}

// ---------------------------------------------------------- deep copies
//
// Explicit mirror movement, cudaMemcpyAsync-shaped: enqueue on a queue,
// complete at fence/event. The *_sync convenience overloads enqueue on
// the default queue and fence. Sizes must match exactly — a silent
// partial copy is how mirror bugs hide.

/// Process-wide tallies of host<->device mirror traffic. Tests use the
/// deltas to prove a device-resident solver loop performs *zero* field
/// copies across a steady-state step (the PCIe-traffic budget a real GPU
/// run lives or dies by). Device->device copies are not counted — they
/// never cross the bus.
struct CopyStats {
    std::atomic<std::uint64_t> h2d_copies{0};
    std::atomic<std::uint64_t> h2d_bytes{0};
    std::atomic<std::uint64_t> d2h_copies{0};
    std::atomic<std::uint64_t> d2h_bytes{0};

    static CopyStats& instance() {
        static CopyStats s;
        return s;
    }
};

/// Host -> device.
template <class T>
void deep_copy(Queue& q, DeviceView<T> dst, std::span<const T> src) {
    BEATNIK_REQUIRE(dst.size() == src.size(), "deep_copy: size mismatch (host -> device)");
    CopyStats::instance().h2d_copies.fetch_add(1, std::memory_order_relaxed);
    CopyStats::instance().h2d_bytes.fetch_add(src.size_bytes(), std::memory_order_relaxed);
    telemetry::Scope span("deep_copy h2d", src.size_bytes());
    q.copy_bytes(dst.data(), src.data(), src.size_bytes());
}

/// Device -> host.
template <class T>
void deep_copy(Queue& q, std::span<T> dst, DeviceView<const T> src) {
    BEATNIK_REQUIRE(dst.size() == src.size(), "deep_copy: size mismatch (device -> host)");
    CopyStats::instance().d2h_copies.fetch_add(1, std::memory_order_relaxed);
    CopyStats::instance().d2h_bytes.fetch_add(src.size() * sizeof(T), std::memory_order_relaxed);
    telemetry::Scope span("deep_copy d2h", src.size() * sizeof(T));
    q.copy_bytes(dst.data(), src.data(), src.size() * sizeof(T));
}

/// Device -> device.
template <class T>
void deep_copy(Queue& q, DeviceView<T> dst, DeviceView<const T> src) {
    BEATNIK_REQUIRE(dst.size() == src.size(), "deep_copy: size mismatch (device -> device)");
    telemetry::Scope span("deep_copy d2d", src.size() * sizeof(T));
    q.copy_bytes(dst.data(), src.data(), src.size() * sizeof(T));
}

template <class T>
void deep_copy_sync(DeviceView<T> dst, std::span<const T> src) {
    auto& q = default_queue();
    deep_copy(q, dst, src);
    q.fence();
}

template <class T>
void deep_copy_sync(std::span<T> dst, DeviceView<const T> src) {
    auto& q = default_queue();
    deep_copy(q, dst, src);
    q.fence();
}

template <class T>
void deep_copy_sync(DeviceView<T> dst, DeviceView<const T> src) {
    auto& q = default_queue();
    deep_copy(q, dst, src);
    q.fence();
}

} // namespace beatnik::par::device
