/// \file device.hpp
/// \brief Umbrella header for the GPU-shaped execution backend: default
/// per-thread queue and explicit deep_copy between memory spaces.
///
/// `Backend::device` in par.hpp dispatches through default_queue() —
/// every rank-thread owns one implicit stream, so concurrent rank-threads
/// share the device the way processes share a GPU, without serializing
/// each other's synchronous launches.
#pragma once

#include "par/device/memory.hpp"
#include "par/device/queue.hpp"

namespace beatnik::par::device {

/// The calling thread's implicit stream (created on first use, fenced at
/// thread exit). Synchronous par::parallel_for dispatch and the sync
/// deep_copy overloads run on it.
inline Queue& default_queue() {
    thread_local Queue q;
    return q;
}

// ---------------------------------------------------------- deep copies
//
// Explicit mirror movement, cudaMemcpyAsync-shaped: enqueue on a queue,
// complete at fence/event. The *_sync convenience overloads enqueue on
// the default queue and fence. Sizes must match exactly — a silent
// partial copy is how mirror bugs hide.

/// Host -> device.
template <class T>
void deep_copy(Queue& q, DeviceView<T> dst, std::span<const T> src) {
    BEATNIK_REQUIRE(dst.size() == src.size(), "deep_copy: size mismatch (host -> device)");
    q.copy_bytes(dst.data(), src.data(), src.size_bytes());
}

/// Device -> host.
template <class T>
void deep_copy(Queue& q, std::span<T> dst, DeviceView<const T> src) {
    BEATNIK_REQUIRE(dst.size() == src.size(), "deep_copy: size mismatch (device -> host)");
    q.copy_bytes(dst.data(), src.data(), src.size() * sizeof(T));
}

/// Device -> device.
template <class T>
void deep_copy(Queue& q, DeviceView<T> dst, DeviceView<const T> src) {
    BEATNIK_REQUIRE(dst.size() == src.size(), "deep_copy: size mismatch (device -> device)");
    q.copy_bytes(dst.data(), src.data(), src.size() * sizeof(T));
}

template <class T>
void deep_copy_sync(DeviceView<T> dst, std::span<const T> src) {
    auto& q = default_queue();
    deep_copy(q, dst, src);
    q.fence();
}

template <class T>
void deep_copy_sync(std::span<T> dst, DeviceView<const T> src) {
    auto& q = default_queue();
    deep_copy(q, dst, src);
    q.fence();
}

template <class T>
void deep_copy_sync(DeviceView<T> dst, DeviceView<const T> src) {
    auto& q = default_queue();
    deep_copy(q, dst, src);
    q.fence();
}

} // namespace beatnik::par::device
