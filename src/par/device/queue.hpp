/// \file queue.hpp
/// \brief Stream-ordered asynchronous submission: Queue, Event, fence.
///
/// A Queue is the CUDA-stream analogue over the emulated device
/// (runtime.hpp): operations enqueued on one queue execute in order, one
/// at a time, on the worker pool; operations on different queues run
/// concurrently. The API is deliberately small:
///
///   q.parallel_for(n, f);          // async kernel launch
///   q.copy_bytes(dst, src, nb);    // async memcpy (the DMA engine)
///   Event e = q.record_event();    // completion marker
///   other.wait_event(e);           // cross-queue dependency
///   q.fence();                     // host blocks until the queue drains
///
/// Steady-state enqueue/fence cycles are allocation-free: operation slots
/// are pooled and reused, the pending ring reuses its capacity, and small
/// kernel captures are stored inline in the task (runtime.hpp). Events
/// pool too: record_event() allocates a fresh completion state each call,
/// but the steady-state loops use record_event_into(), which re-arms the
/// caller's existing Event in place whenever this queue holds the only
/// reference and the previous marker already fired — so the hot
/// pack/unpack paths of the communication plans re-record the same
/// per-direction Events every iteration without touching the heap,
/// mirroring the plan API's own zero-allocation contract.
#pragma once

#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <utility>

#include "par/device/runtime.hpp"
#include "telemetry/telemetry.hpp"

namespace beatnik::par::device {

namespace detail {

/// Shared completion state behind an Event.
struct EventState {
    std::mutex m;
    std::condition_variable cv;
    bool done = false;
    /// Hazard-detector half: the recording queue's clock snapshot (see
    /// devcheck.hpp). Written at record and read at wait, always under
    /// the checker's own mutex — never under m.
    devcheck::EventClock dc;
    /// Telemetry flow id of the latest record on this state (0 = recorded
    /// while disarmed). Written under the recording queue's lock, read
    /// under a waiting queue's (different) lock — hence atomic.
    std::atomic<std::uint64_t> tel_id{0};
    std::vector<std::function<void()>> callbacks;
    /// set()'s fire scratch. A member (not a local) so the two vectors
    /// ping-pong their capacity across reuse cycles: a steady-state loop
    /// that re-records the same Event and re-registers one resume
    /// callback per iteration (the multi-queue cutoff schedule) performs
    /// no allocation after warm-up. Only touched by the single winning
    /// set() call, which is serialized against on_done by `done`.
    std::vector<std::function<void()>> firing;

    void set() {
        {
            std::lock_guard lock(m);
            if (done) return;
            done = true;
            callbacks.swap(firing);
        }
        cv.notify_all();
        for (auto& cb : firing) cb();
        firing.clear();
    }

    [[nodiscard]] bool is_done() {
        std::lock_guard lock(m);
        return done;
    }

    void wait() {
        std::unique_lock lock(m);
        cv.wait(lock, [&] { return done; });
    }

    /// Run \p cb when the event completes (immediately if it already has).
    /// The callback runs outside this state's lock.
    template <class Cb>
    void on_done(Cb&& cb) {
        {
            std::lock_guard lock(m);
            if (!done) {
                callbacks.emplace_back(std::forward<Cb>(cb));
                return;
            }
        }
        cb();
    }
};

} // namespace detail

/// Completion marker recorded on a queue. Copyable; an empty Event is
/// always ready.
class Event {
public:
    Event() = default;

    [[nodiscard]] bool ready() const { return !st_ || st_->is_done(); }

    /// Host-side block until the marker completes. Under devcheck, waiting
    /// on a default-constructed (never-recorded) Event is flagged: the
    /// "edge" such a wait creates does not exist.
    void wait() const {
        if (!st_) {
            if (devcheck::enabled()) {
                devcheck::Checker::instance().on_wait_never_recorded(nullptr);
            }
            return;
        }
        if (telemetry::enabled()) {
            auto& tr = telemetry::thread_track();
            tr.begin("event.wait");
            st_->wait();
            if (auto id = st_->tel_id.load(std::memory_order_relaxed)) {
                tr.flow_end("event", id);
            }
            tr.end("event.wait");
        } else {
            st_->wait();
        }
        if (devcheck::enabled()) devcheck::Checker::instance().on_host_event_wait(st_->dc);
    }

private:
    friend class Queue;
    explicit Event(std::shared_ptr<detail::EventState> st) : st_(std::move(st)) {}
    std::shared_ptr<detail::EventState> st_;
};

/// An in-order asynchronous execution stream over the shared device.
class Queue {
public:
    /// Operation slots and the pending ring are preallocated so the
    /// allocation-free steady state does not depend on the warm-up phase
    /// having reached the true high-water mark of in-flight operations
    /// (deeper pipelines still grow once, then reuse).
    static constexpr std::size_t kInitialOps = 32;

    // ring_ uses the fill constructor rather than resize(): GCC 12's
    // -Warray-bounds misfires on _M_fill_insert's memmove when resize is
    // inlined into TUs that instantiate Queue after heavy headers.
    explicit Queue(Runtime& rt = Runtime::instance(), const char* name = "queue")
        : rt_(&rt), name_(name), ring_(2 * kInitialOps, nullptr) {
        if (devcheck::enabled()) dc_ = devcheck::Checker::instance().make_queue(name);
        pool_.reserve(kInitialOps);
        free_.reserve(kInitialOps);
        for (std::size_t i = 0; i < kInitialOps; ++i) {
            pool_.push_back(std::make_unique<Op>());
            free_.push_back(pool_.back().get());
        }
    }

    /// Named queue for hazard diagnostics (\p name must have static
    /// storage duration; it outlives the queue inside access records).
    explicit Queue(const char* name) : Queue(Runtime::instance(), name) {}

    Queue(const Queue&) = delete;
    Queue& operator=(const Queue&) = delete;

    /// Detector state, null unless devcheck is active (see devcheck.hpp).
    [[nodiscard]] devcheck::QueueState* devcheck_state() const { return dc_.get(); }

    ~Queue() {
        fence();
        for (auto& op : pool_) op->task.uninstall();
    }

    /// Asynchronously apply f(i) for i in [0, n). \p f is copied into the
    /// operation; referenced data must stay alive until the kernel
    /// completes (fence, event, or a later same-queue operation).
    template <class F>
    void parallel_for(std::size_t n, F&& f) {
        const std::size_t chunk = chunk_for(n);
        parallel_for_range(n, chunk,
                           [f = std::forward<F>(f)](std::size_t b, std::size_t e) {
                               for (std::size_t i = b; i < e; ++i) f(i);
                           });
    }

    /// Lower-level launch: \p range_fn is invoked once per chunk with the
    /// chunk's half-open index range — for kernels that want to operate on
    /// whole subranges (block copies) instead of single indices.
    template <class R>
    void parallel_for_range(std::size_t n, std::size_t chunk, R&& range_fn) {
        BEATNIK_REQUIRE(chunk > 0, "device kernel chunk size must be positive");
        // Hazard bookkeeping happens at enqueue (the logical stream order
        // is fixed here), before m_ so the checker's mutex never nests
        // inside the queue's. A flagged conflict throws before the kernel
        // is ever enqueued.
        if (dc_) devcheck::Checker::instance().on_task(dc_.get());
        std::vector<std::shared_ptr<detail::EventState>> fire;
        std::shared_ptr<detail::EventState> reg;
        std::uint64_t gen = 0;
        {
            std::lock_guard lock(m_);
            Op* op = acquire();
            op->kind = Kind::kernel;
            if (telemetry::enabled()) op->tel_enqueue_ns = telemetry::now_ns();
            detail::Task& t = op->task;
            t.install(std::forward<R>(range_fn));
            t.n = n;
            t.chunk_size = chunk;
            t.nchunks = n == 0 ? 1 : (n + chunk - 1) / chunk;
            t.owner = this;
            t.on_done = [](void* owner, detail::Task* task) {
                static_cast<Queue*>(owner)->task_finished(task);
            };
            push(op);
            dispatch(fire);
            reg = take_pending_wait(gen);
        }
        finish_dispatch(fire, reg, gen);
    }

    /// Asynchronous memcpy executed by the worker pool (the DMA engine):
    /// both endpoints may be device memory or any host memory — like
    /// cudaMemcpy, pageable host memory is legal here, while *kernels*
    /// writing host memory require registration (runtime.hpp).
    void copy_bytes(void* dst, const void* src, std::size_t bytes) {
        // Copies self-declare their footprint; untracked (pageable host)
        // endpoints are legal for the DMA engine and skipped by the
        // checker, unlike kernel footprints.
        if (dc_) devcheck::Checker::instance().set_pending_copy(dc_.get(), dst, src, bytes);
        auto* d = static_cast<std::byte*>(dst);
        const auto* s = static_cast<const std::byte*>(src);
        parallel_for_range(bytes, kCopyChunkBytes, [d, s](std::size_t b, std::size_t e) {
            if (e > b) std::memcpy(d + b, s + b, e - b);
        });
    }

    /// Record a completion marker after everything currently enqueued.
    [[nodiscard]] Event record_event() {
        auto st = std::make_shared<detail::EventState>();
        enqueue_event(st);
        return Event(std::move(st));
    }

    /// Record a completion marker into \p e, reusing its completion state
    /// when this queue's handle is the only reference left and the marker
    /// has already fired — the allocation-free variant for steady-state
    /// loops that re-record the same event every iteration (per-direction
    /// halo overlap). Falls back to a fresh allocation otherwise.
    void record_event_into(Event& e) {
        auto& st = e.st_;
        if (!st || st.use_count() != 1 || !st->is_done()) {
            st = std::make_shared<detail::EventState>();
        } else {
            // Exclusively ours and fired: no waiter can exist, so the
            // flag reset cannot race a wait().
            std::lock_guard lock(st->m);
            st->done = false;
        }
        enqueue_event(st);
    }

    /// Make every operation enqueued after this call wait until \p e
    /// completes (cross-queue dependency). An empty/completed event is a
    /// no-op barrier.
    void wait_event(const Event& e) {
        if (!e.st_) {
            if (dc_) devcheck::Checker::instance().on_wait_never_recorded(dc_.get());
            return;
        }
        if (dc_) devcheck::Checker::instance().on_wait_event(dc_.get(), e.st_->dc);
        std::vector<std::shared_ptr<detail::EventState>> fire;
        std::shared_ptr<detail::EventState> reg;
        std::uint64_t gen = 0;
        {
            std::lock_guard lock(m_);
            if (telemetry::enabled()) {
                // The record->wait dependency edge, drawn at the point the
                // wait enters this queue's stream.
                auto* t = tel();
                t->begin("event.wait");
                if (auto id = e.st_->tel_id.load(std::memory_order_relaxed)) {
                    t->flow_end("event", id);
                }
                t->end("event.wait");
            }
            Op* op = acquire();
            op->kind = Kind::wait;
            op->ev = e.st_;
            push(op);
            dispatch(fire);
            reg = take_pending_wait(gen);
        }
        finish_dispatch(fire, reg, gen);
    }

    /// Block the host until every enqueued operation has completed.
    void fence() {
        telemetry::Scope span("queue.fence");
        {
            std::unique_lock lock(m_);
            cv_.wait(lock,
                     [&] { return running_ == nullptr && head_ == tail_ && waiting_ == nullptr; });
        }
        if (dc_) devcheck::Checker::instance().on_fence(dc_.get());
    }

    /// True when nothing is running or pending (nonblocking fence probe).
    /// A true probe is an observed synchronization, like a fence.
    [[nodiscard]] bool idle() {
        bool drained;
        {
            std::lock_guard lock(m_);
            drained = running_ == nullptr && head_ == tail_ && waiting_ == nullptr;
        }
        if (drained && dc_) devcheck::Checker::instance().on_fence(dc_.get());
        return drained;
    }

private:
    enum class Kind : std::uint8_t { kernel, event, wait };

    void enqueue_event(const std::shared_ptr<detail::EventState>& st) {
        // Snapshot the queue clock into the event (both the Op path and
        // the idle-queue direct completion mark the same logical point).
        if (dc_) devcheck::Checker::instance().on_record(dc_.get(), st->dc);
        std::vector<std::shared_ptr<detail::EventState>> fire;
        std::shared_ptr<detail::EventState> reg;
        std::uint64_t gen = 0;
        bool enqueued = false;
        {
            std::lock_guard lock(m_);
            if (telemetry::enabled()) {
                // Fresh flow id per record; waiters pick it up from the
                // shared state, giving the record->wait arrow.
                std::uint64_t id = next_event_flow_id();
                st->tel_id.store(id, std::memory_order_relaxed);
                auto* t = tel();
                t->begin("event.record");
                t->flow_begin("event", id);
                t->end("event.record");
            }
            // Idle queue: the marker is already satisfied. Completing it
            // directly (outside the lock) keeps the steady-state
            // record_event_into() path allocation-free — routing through
            // an Op would push into `fire` and allocate.
            if (running_ != nullptr || waiting_ != nullptr || head_ != tail_) {
                Op* op = acquire();
                op->kind = Kind::event;
                op->ev = st;
                push(op);
                dispatch(fire);
                reg = take_pending_wait(gen);
                enqueued = true;
            }
        }
        if (!enqueued) {
            st->set();
            return;
        }
        finish_dispatch(fire, reg, gen);
    }

    struct Op {
        detail::Task task;
        Kind kind = Kind::kernel;
        std::shared_ptr<detail::EventState> ev;
        std::uint64_t tel_enqueue_ns = 0; ///< armed runs: stamp at enqueue
    };

    /// This queue's telemetry track, lazily registered on first armed use.
    /// Always called under m_, so track writes are serialized and the
    /// track's timestamps are monotonic.
    telemetry::TrackRecorder* tel() {
        if (tel_ == nullptr) {
            tel_ = telemetry::Registry::instance().register_track(
                std::string("queue ") + name_, telemetry::TrackKind::queue);
        }
        return tel_;
    }

    static std::uint64_t next_event_flow_id() {
        static std::atomic<std::uint64_t> serial{0};
        return telemetry::flow_id(
            {0xE0ull, serial.fetch_add(1, std::memory_order_relaxed) + 1});
    }

    static constexpr std::size_t kCopyChunkBytes = 1 << 20;

    /// Chunks sized so a launch spreads over the pool but stays coarse
    /// enough that chunk claiming doesn't dominate tiny kernels.
    [[nodiscard]] std::size_t chunk_for(std::size_t n) const {
        const auto workers = static_cast<std::size_t>(rt_->num_workers());
        const std::size_t target = workers * 4;
        std::size_t chunk = (n + target - 1) / target;
        return std::max<std::size_t>(chunk, 64);
    }

    // All of the below run under m_.

    Op* acquire() {
        if (free_.empty()) {
            pool_.push_back(std::make_unique<Op>());
            free_.push_back(pool_.back().get());
        }
        Op* op = free_.back();
        free_.pop_back();
        return op;
    }

    void release(Op* op) {
        op->ev.reset();
        free_.push_back(op);
    }

    void push(Op* op) {
        if (tail_ - head_ == ring_.size()) {
            std::vector<Op*> bigger(ring_.size() * 2, nullptr);
            for (std::size_t i = head_; i != tail_; ++i) {
                bigger[i % bigger.size()] = ring_[i % ring_.size()];
            }
            ring_.swap(bigger);
        }
        ring_[tail_ % ring_.size()] = op;
        ++tail_;
    }

    /// Advance the stream as far as possible: submit the next kernel,
    /// complete event markers (collected into \p fire, set after the lock
    /// is released — event callbacks may take other queues' locks), and
    /// park on unsatisfied wait ops.
    void dispatch(std::vector<std::shared_ptr<detail::EventState>>& fire) {
        while (running_ == nullptr && waiting_ == nullptr && head_ != tail_) {
            Op* op = ring_[head_ % ring_.size()];
            ++head_;
            switch (op->kind) {
            case Kind::kernel:
                if (telemetry::enabled()) {
                    // a0 = time spent queued behind earlier ops (ns).
                    std::uint64_t now = telemetry::now_ns();
                    std::uint64_t waited =
                        op->tel_enqueue_ns != 0 && now > op->tel_enqueue_ns
                            ? now - op->tel_enqueue_ns
                            : 0;
                    tel()->begin("task", waited, op->task.n);
                }
                running_ = op;
                rt_->submit(&op->task);
                return;
            case Kind::event:
                fire.push_back(op->ev);
                release(op);
                break;
            case Kind::wait:
                if (op->ev->is_done()) {
                    release(op);
                    break;
                }
                // Park. The resume callback is registered by the caller
                // *after* m_ is released (pending_wait_): on_done may run
                // the callback inline when the event completed in the
                // meantime, and that callback relocks m_.
                waiting_ = op;
                ++wait_generation_;
                pending_wait_ = op->ev;
                return;
            }
        }
        if (running_ == nullptr && waiting_ == nullptr && head_ == tail_) cv_.notify_all();
    }

    /// Consume the event a freshly parked wait op needs a resume
    /// callback on. Must run under m_, in the same critical section as
    /// the dispatch() that parked — a later relock would race queue
    /// destruction on threads that don't own the queue.
    [[nodiscard]] std::shared_ptr<detail::EventState> take_pending_wait(std::uint64_t& gen) {
        gen = wait_generation_;
        return std::exchange(pending_wait_, nullptr);
    }

    /// Post-dispatch work that must run *without* m_ and must not touch
    /// queue members: register the parked wait op's resume callback (the
    /// event may have completed meanwhile, in which case on_done invokes
    /// the callback inline — it relocks m_, which is why it cannot run
    /// under the lock) and complete event markers. Touching `this` inside
    /// the callback is safe because a parked wait keeps waiting_ set,
    /// which blocks ~Queue's fence until the resume runs.
    void finish_dispatch(std::vector<std::shared_ptr<detail::EventState>>& fire,
                         std::shared_ptr<detail::EventState>& reg, std::uint64_t gen) {
        if (reg) reg->on_done([this, gen] { resume_after_wait(gen); });
        for (auto& ev : fire) ev->set();
    }

    /// Runs on whatever thread completes the awaited event; it may not
    /// touch queue members after its critical section (see
    /// finish_dispatch). The queue is guaranteed alive on entry: the
    /// parked wait op holds waiting_ non-null, which blocks destruction.
    void resume_after_wait(std::uint64_t gen) {
        std::vector<std::shared_ptr<detail::EventState>> fire;
        std::shared_ptr<detail::EventState> reg;
        std::uint64_t next_gen = 0;
        {
            std::lock_guard lock(m_);
            if (waiting_ == nullptr || wait_generation_ != gen) return;
            release(waiting_);
            waiting_ = nullptr;
            dispatch(fire);
            reg = take_pending_wait(next_gen);
        }
        finish_dispatch(fire, reg, next_gen);
    }

    /// Completion hook, called by the worker that finishes the task's
    /// last chunk. Everything that wakes a fencing (possibly destroying)
    /// thread happens inside the critical section — dispatch notifies
    /// cv_ under the lock when the queue drains — so after the unlock
    /// this thread never touches queue members again (finish_dispatch
    /// only uses the extracted shared states).
    void task_finished(detail::Task* t) {
        std::vector<std::shared_ptr<detail::EventState>> fire;
        std::shared_ptr<detail::EventState> reg;
        std::uint64_t gen = 0;
        {
            std::lock_guard lock(m_);
            Op* op = running_;
            BEATNIK_ASSERT(op != nullptr && &op->task == t);
            (void)t;
            if (telemetry::enabled()) tel()->end("task");
            op->task.uninstall();
            running_ = nullptr;
            release(op);
            dispatch(fire);
            reg = take_pending_wait(gen);
        }
        finish_dispatch(fire, reg, gen);
    }

    Runtime* rt_;
    const char* name_;                        ///< static-storage queue label
    telemetry::TrackRecorder* tel_ = nullptr; ///< lazy telemetry track
    /// Hazard-detector state; null unless devcheck is active, so every
    /// hook above is a dead branch in ordinary runs.
    std::unique_ptr<devcheck::QueueState> dc_;
    std::mutex m_;
    std::condition_variable cv_;
    std::vector<std::unique_ptr<Op>> pool_;
    std::vector<Op*> free_;
    std::vector<Op*> ring_;   ///< pending ops, [head_, tail_) live
    std::size_t head_ = 0;
    std::size_t tail_ = 0;
    Op* running_ = nullptr;
    Op* waiting_ = nullptr;   ///< head wait op parked on an external event
    std::uint64_t wait_generation_ = 0;
    /// Event whose resume callback still needs registering (set by
    /// dispatch under m_, drained by take_pending_wait in the same
    /// critical section, registered by finish_dispatch outside it).
    std::shared_ptr<detail::EventState> pending_wait_;
};

} // namespace beatnik::par::device
