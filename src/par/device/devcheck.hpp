/// \file devcheck.hpp
/// \brief Happens-before hazard detector for the device runtime.
///
/// The emulated device (runtime.hpp / queue.hpp) executes every schedule
/// the solver builds — but its worker-pool mutexes create *accidental*
/// happens-before edges that hide ordering bugs which become real races
/// the day the kernels run on actual CUDA/HIP streams. devcheck validates
/// the **logical** stream/event ordering model itself, the way CUDA's
/// compute-sanitizer racecheck does for shared memory:
///
///   * every Queue carries a vector clock, advanced once per task and
///     merged across Event record/wait edges, fence(), and the enqueuing
///     host thread's own clock;
///   * every tracked DeviceBuffer and registered (pinned) host range is
///     shadowed by per-region last-writer/last-reader access records,
///     epoch-coarsened (one record per (actor, range, kind), overwritten
///     in place) so the steady state stays allocation-free;
///   * kernels, deep_copy and the pack/unpack paths declare read/write
///     footprints (devcheck::declare + devcheck::read/write), which the
///     checker joins against the records under the happens-before order.
///
/// Hazard classes detected:
///   1. cross-queue write/write or read/write access to the same region
///      with no connecting event chain;
///   2. host dereference of a device-stale mirror, and destruction of a
///      buffer (or unpinning of a range) with unretired kernel accesses;
///   3. kernel staging through an unregistered/unpinned host range;
///   4. wait() on a never-recorded Event, and double-publish / protocol
///      violations on communication-plan channel slots.
///
/// Diagnostics name both conflicting tasks, their queues, and the missing
/// edge. Hazards throw devcheck::HazardError on host paths and print to
/// stderr from noexcept paths (destructors); both bump hazard_count(), so
/// a test harness can fail the process on any residual hazard.
///
/// Opt-in twice over: compile with -DBEATNIK_DEVCHECK=ON (defines
/// BEATNIK_DEVCHECK_ENABLED) *and* run with BEATNIK_DEVCHECK=1 in the
/// environment. Disabled builds compile every hook to a dead branch;
/// enabled-but-off runs cost one cached boolean test per hook.
///
/// All bookkeeping happens at *enqueue* time on the submitting host
/// thread, under one global checker mutex: the logical stream order is
/// fully determined at enqueue, so no worker-thread instrumentation is
/// needed and the checker adds no synchronization that could itself mask
/// an ordering bug.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <initializer_list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "base/error.hpp"

namespace beatnik::par::device::devcheck {

/// Thrown (host paths) when a hazard is detected.
class HazardError : public Error {
public:
    explicit HazardError(const std::string& what) : Error(what) {}
};

/// Whether the detector is compiled into this build (-DBEATNIK_DEVCHECK=ON).
#ifdef BEATNIK_DEVCHECK_ENABLED
inline constexpr bool compiled = true;
#else
inline constexpr bool compiled = false;
#endif

/// Whether the detector is active: compiled in *and* BEATNIK_DEVCHECK=1
/// in the environment. Cached once; cheap enough for hot-path guards.
[[nodiscard]] inline bool enabled() {
    if constexpr (!compiled) {
        return false;
    } else {
        static const bool on = [] {
            const char* e = std::getenv("BEATNIK_DEVCHECK");
            return e != nullptr && e[0] == '1' && e[1] == '\0';
        }();
        return on;
    }
}

/// A vector clock: component per actor (queue or host thread), grow-only.
using Clock = std::vector<std::uint64_t>;

/// One declared footprint region of a kernel or copy.
struct Region {
    const void* p = nullptr;
    std::size_t bytes = 0;
    bool is_write = false;
};

/// Footprint builders. \p p / \p bytes give the raw byte range; memory.hpp
/// adds DeviceView/span overloads on top of these.
[[nodiscard]] inline Region read(const void* p, std::size_t bytes) { return {p, bytes, false}; }
[[nodiscard]] inline Region write(const void* p, std::size_t bytes) { return {p, bytes, true}; }

/// Per-queue detector state, owned by the Queue (null when disabled).
/// Mutated only under the checker mutex.
struct QueueState {
    std::uint32_t id = 0;       ///< actor index into every Clock
    const char* name = "queue"; ///< static-storage string, used in diagnostics
    std::uint64_t seq = 0;      ///< tasks enqueued so far (diagnostic numbering)
    Clock clock;                ///< queue clock after the last enqueued op
    // Pending footprint declaration, consumed by the next kernel/copy.
    const char* pending_what = nullptr;
    bool has_pending = false;
    bool pending_is_copy = false;
    std::vector<Region> pending;
};

/// Detector half of an Event's completion state (embedded in
/// detail::EventState, written at record, read at wait — always under the
/// checker mutex). serial == 0 means the event was never recorded.
struct EventClock {
    std::uint64_t serial = 0;
    Clock clock;
    const char* queue_name = "?";
    std::uint64_t task_seq = 0;
};

/// The process-wide checker. All public entry points are called by the
/// runtime/queue/wrapper hooks only when enabled(); each takes the global
/// mutex, so hook call sites must not hold any queue or runtime lock.
class Checker {
public:
    static Checker& instance() {
        static Checker c;
        return c;
    }

    Checker(const Checker&) = delete;
    Checker& operator=(const Checker&) = delete;

    // ------------------------------------------------------------- actors

    [[nodiscard]] std::unique_ptr<QueueState> make_queue(const char* name) {
        auto st = std::make_unique<QueueState>();
        std::lock_guard lock(m_);
        st->id = next_actor_++;
        st->name = name;
        return st;
    }

    // ------------------------------------------------- clock / edge hooks

    /// A kernel or copy task is being enqueued on \p q. Advances the queue
    /// clock and joins the pending footprint declaration (if any) against
    /// the shadow records. Throws HazardError on a conflict.
    void on_task(QueueState* q) {
        std::string hazard;
        {
            std::lock_guard lock(m_);
            HostActor& h = host();
            merge(q->clock, h.clock);
            bump(q->clock, q->id);
            ++q->seq;
            if (q->has_pending) {
                const char* what = q->pending_what != nullptr ? q->pending_what : "kernel";
                for (const Region& r : q->pending) {
                    if (r.bytes == 0) continue;
                    join_region(*q, what, r, q->pending_is_copy, hazard);
                }
                q->pending.clear();
                q->has_pending = false;
                q->pending_is_copy = false;
                q->pending_what = nullptr;
            }
        }
        if (!hazard.empty()) report(hazard);
    }

    /// Stash a footprint declaration for the next task on \p q.
    void set_pending(QueueState* q, const char* what, std::initializer_list<Region> regions,
                     bool is_copy = false) {
        std::lock_guard lock(m_);
        q->pending.assign(regions.begin(), regions.end());
        q->pending_what = what;
        q->pending_is_copy = is_copy;
        q->has_pending = true;
    }

    /// Variable-count overload (e.g. one region per communication peer).
    void set_pending(QueueState* q, const char* what, const std::vector<Region>& regions,
                     bool is_copy = false) {
        std::lock_guard lock(m_);
        q->pending.assign(regions.begin(), regions.end());
        q->pending_what = what;
        q->pending_is_copy = is_copy;
        q->has_pending = true;
    }

    /// Auto-declaration for Queue::copy_bytes: copies are the DMA engine,
    /// so (like cudaMemcpy) pageable host endpoints are legal — untracked
    /// regions are skipped instead of flagged.
    void set_pending_copy(QueueState* q, const void* dst, const void* src, std::size_t bytes) {
        std::lock_guard lock(m_);
        q->pending.clear();
        q->pending.push_back(devcheck::read(src, bytes));
        q->pending.push_back(devcheck::write(dst, bytes));
        if (!q->has_pending || q->pending_what == nullptr) q->pending_what = "copy_bytes";
        q->pending_is_copy = true;
        q->has_pending = true;
    }

    /// An event marker is recorded on \p q: snapshot the queue clock.
    void on_record(QueueState* q, EventClock& ec) {
        std::lock_guard lock(m_);
        merge(q->clock, host().clock);
        ec.serial = next_event_serial_++;
        ec.clock = q->clock;
        ec.queue_name = q->name;
        ec.task_seq = q->seq;
    }

    /// \p q waits on a recorded event: merge the event clock in.
    void on_wait_event(QueueState* q, const EventClock& ec) {
        std::lock_guard lock(m_);
        merge(q->clock, host().clock);
        merge(q->clock, ec.clock);
    }

    /// Host thread blocks on a recorded event (Event::wait()).
    void on_host_event_wait(const EventClock& ec) {
        std::lock_guard lock(m_);
        merge(host().clock, ec.clock);
    }

    /// wait() on an Event that was never recorded — the edge this wait was
    /// meant to create does not exist (hazard class 4). \p q is null for a
    /// host-side Event::wait().
    void on_wait_never_recorded(const QueueState* q) {
        report(strcat_msg("devcheck: HAZARD [never-recorded-event]\n  ",
                          q != nullptr ? strcat_msg("queue '", q->name, "'") : "host thread",
                          " waits on an Event that was never recorded on any queue\n",
                          "  the dependency edge this wait was meant to create does not "
                          "exist — record the event (record_event / record_event_into) "
                          "before waiting on it"));
    }

    /// Host thread completed a fence()/idle() on \p q.
    void on_fence(QueueState* q) {
        std::lock_guard lock(m_);
        merge(host().clock, q->clock);
    }

    // ------------------------------------------------ memory shadow hooks

    void on_device_malloc(const void* p, std::size_t bytes) {
        std::lock_guard lock(m_);
        auto [it, inserted] = device_allocs_.insert_or_assign(p, AllocShadow{});
        it->second.bytes = bytes;
    }

    /// Device buffer freed: every recorded access must already be ordered
    /// before this host thread (fence or event chain), else kernels may
    /// still be in flight (hazard class 2). noexcept path: reports to
    /// stderr, never throws (called from destructors).
    void on_device_free(const void* p) noexcept {
        std::lock_guard lock(m_);
        auto it = device_allocs_.find(p);
        if (it == device_allocs_.end()) return;
        check_unretired(it->second, p, "device buffer freed",
                        /*writes_only=*/false);
        device_allocs_.erase(it);
        for (auto mit = mirrors_.begin(); mit != mirrors_.end();) {
            if (mit->second.dev == p) {
                mit = mirrors_.erase(mit);
            } else {
                ++mit;
            }
        }
    }

    void on_register_host(const void* p, std::size_t bytes) {
        std::lock_guard lock(m_);
        auto [it, inserted] = host_ranges_.try_emplace(p);
        if (inserted) {
            it->second.bytes = bytes;
        } else {
            ++it->second.refs;
        }
    }

    /// Final unregistration of a pinned range with unretired kernel
    /// *writes* is hazard class 2's unpin flavour. Reads are exempt: a
    /// channel peer's in-place unpack reads are ordered through the plan
    /// protocol itself (its release edge), which the unpinning side has no
    /// reason to have observed.
    void on_unregister_host(const void* p) noexcept {
        std::lock_guard lock(m_);
        auto it = host_ranges_.find(p);
        if (it == host_ranges_.end()) return;
        if (--it->second.refs > 0) return;
        check_unretired(it->second, p, "pinned host range unregistered",
                        /*writes_only=*/true);
        host_ranges_.erase(it);
    }

    // ------------------------------------------------------ mirror shadow

    /// A host array [host, host + bytes) acquired a device mirror at
    /// \p dev (NodeField::enable_device_mirror).
    void on_register_mirror(const void* host_p, std::size_t bytes, const void* dev) {
        std::lock_guard lock(m_);
        mirrors_.insert_or_assign(host_p, MirrorShadow{bytes, dev, {}});
    }

    /// A mirror sync was enqueued on \p q: after this task, host and
    /// device copies agree. \p to_host records the direction — only a
    /// device->host sync *writes* the host array, so only that direction
    /// makes later host reads race with the in-flight copy.
    void on_mirror_sync(QueueState* q, const void* host_p, bool to_host) {
        std::lock_guard lock(m_);
        auto it = mirrors_.find(host_p);
        if (it == mirrors_.end()) return;
        it->second.last_sync = q->clock;
        it->second.sync_writes_host = to_host;
    }

    /// Host code reads [p, p + bytes) of what may be a mirrored host
    /// array: flag device writes that the last sync does not cover (stale
    /// mirror) and syncs this thread has not yet fenced (hazard class 2).
    void on_host_mirror_read(const void* p, std::size_t bytes, const char* what) {
        std::string hazard;
        {
            std::lock_guard lock(m_);
            auto it = find_containing(mirrors_, p, bytes);
            if (it == mirrors_.end()) return;
            const MirrorShadow& mir = it->second;
            auto dit = device_allocs_.find(mir.dev);
            if (dit != device_allocs_.end()) {
                for (const AccessRecord& rec : dit->second.records) {
                    if (!rec.is_write || leq(rec.clock, mir.last_sync)) continue;
                    hazard = strcat_msg(
                        "devcheck: HAZARD [stale-mirror-host-read]\n  ", what,
                        " reads a host mirror whose device copy was modified by task '",
                        rec.what, "' (#", rec.seq, " on queue '", rec.queue_name,
                        "') after the last sync_to_host\n  missing edge: sync_to_host + "
                        "fence between that task and this host read");
                    break;
                }
            }
            if (hazard.empty() && mir.sync_writes_host && !mir.last_sync.empty() &&
                !leq(mir.last_sync, host().clock)) {
                hazard = strcat_msg(
                    "devcheck: HAZARD [unfenced-mirror-sync]\n  ", what,
                    " reads a host mirror whose latest sync copy is not ordered before "
                    "this thread\n  missing edge: fence() (or event wait) on the sync "
                    "queue before touching the host data");
            }
        }
        if (!hazard.empty()) report(hazard);
    }

    // ----------------------------------------------------- channel shadow
    //
    // Communication-plan channel buffers are aliased between sender and
    // receiver (zero-copy rendezvous), so the wrappers model each slot as
    // a release/acquire pair keyed by the buffer pointer, plus a protocol
    // state machine: empty -> packing (send_buffer) -> full (publish) ->
    // reading (recv_view) -> empty (release_recv).

    void on_channel_send_acquire(const void* key) {
        std::lock_guard lock(m_);
        ChannelShadow& ch = channels_[key];
        // send_buffer blocks until the peer released the slot, so a stale
        // state here means the entry is left over from a freed buffer that
        // shared the address: reset rather than flag.
        ch.state = ChannelShadow::packing;
        merge(host().clock, ch.clock);
    }

    void on_channel_publish(const void* key, const char* what) {
        std::string hazard;
        {
            std::lock_guard lock(m_);
            ChannelShadow& ch = channels_[key];
            if (ch.state != ChannelShadow::packing) {
                hazard = strcat_msg(
                    "devcheck: HAZARD [double-publish]\n  ", what,
                    " publishes a channel slot that is not in the packed state (state: ",
                    state_name(ch.state), ", last transition by ", ch.last_op,
                    ")\n  publish() must follow exactly one send_buffer() acquisition — "
                    "a second publish hands the peer a slot it may already be reading");
            } else {
                ch.state = ChannelShadow::full;
                merge(ch.clock, host().clock);
                ch.last_op = what;
            }
        }
        if (!hazard.empty()) report(hazard);
    }

    void on_channel_recv_acquire(const void* key, const char* what) {
        std::string hazard;
        {
            std::lock_guard lock(m_);
            auto [it, inserted] = channels_.try_emplace(key);
            ChannelShadow& ch = it->second;
            if (inserted) {
                // Peer side not instrumented (raw comm::Plan user): track
                // from here on without flagging.
                ch.state = ChannelShadow::full;
            }
            if (ch.state != ChannelShadow::full) {
                hazard = strcat_msg(
                    "devcheck: HAZARD [recv-unpublished]\n  ", what,
                    " acquires a receive slot that was never published (state: ",
                    state_name(ch.state), ", last transition by ", ch.last_op, ")");
            } else {
                ch.state = ChannelShadow::reading;
                merge(host().clock, ch.clock);
                ch.last_op = what;
            }
        }
        if (!hazard.empty()) report(hazard);
    }

    void on_channel_release(const void* key, const char* what) {
        std::string hazard;
        {
            std::lock_guard lock(m_);
            ChannelShadow& ch = channels_[key];
            if (ch.state != ChannelShadow::reading) {
                hazard = strcat_msg(
                    "devcheck: HAZARD [release-unread]\n  ", what,
                    " releases a receive slot it never acquired (state: ",
                    state_name(ch.state), ", last transition by ", ch.last_op, ")");
            } else {
                ch.state = ChannelShadow::empty;
                merge(ch.clock, host().clock);
                ch.last_op = what;
            }
        }
        if (!hazard.empty()) report(hazard);
    }

    // -------------------------------------------------------- diagnostics

    [[nodiscard]] std::uint64_t hazard_count() const {
        return hazards_.load(std::memory_order_relaxed);
    }

    /// Drain the hazard counter (seeded-hazard tests consume the hazards
    /// they provoke so the end-of-process cleanliness gate stays green).
    std::uint64_t take_hazard_count() {
        return hazards_.exchange(0, std::memory_order_relaxed);
    }

private:
    Checker() = default;

    struct AccessRecord {
        std::size_t begin = 0;
        std::size_t end = 0;
        bool is_write = false;
        std::uint32_t actor = 0;
        const char* queue_name = "?";
        const char* what = "?";
        std::uint64_t seq = 0;
        Clock clock;
    };

    struct AllocShadow {
        std::size_t bytes = 0;
        int refs = 1;
        std::vector<AccessRecord> records;
    };

    struct MirrorShadow {
        std::size_t bytes = 0;
        const void* dev = nullptr;
        Clock last_sync;   ///< empty until the first sync
        /// Last sync was device->host (the copy writes the host array, so
        /// host reads must be fenced past it; host->device only reads it).
        bool sync_writes_host = false;
    };

    struct ChannelShadow {
        enum State : std::uint8_t { empty, packing, full, reading };
        State state = empty;
        Clock clock;
        const char* last_op = "(none)";
    };

    /// Per host thread: its actor id and clock. Only ever touched by the
    /// owning thread, always under the checker mutex.
    struct HostActor {
        std::uint32_t id = 0;
        Clock clock;
    };

    [[nodiscard]] HostActor& host() {
        thread_local HostActor actor;
        if (actor.id == 0) actor.id = next_actor_++;
        return actor;
    }

    [[nodiscard]] static const char* state_name(ChannelShadow::State s) {
        switch (s) {
        case ChannelShadow::empty: return "empty";
        case ChannelShadow::packing: return "packing";
        case ChannelShadow::full: return "published";
        case ChannelShadow::reading: return "reading";
        }
        return "?";
    }

    /// dst := dst join src (componentwise max).
    static void merge(Clock& dst, const Clock& src) {
        if (src.size() > dst.size()) dst.resize(src.size(), 0);
        for (std::size_t i = 0; i < src.size(); ++i) {
            if (src[i] > dst[i]) dst[i] = src[i];
        }
    }

    static void bump(Clock& c, std::uint32_t actor) {
        if (actor >= c.size()) c.resize(actor + 1, 0);
        ++c[actor];
    }

    /// a happens-before-or-equal b.
    [[nodiscard]] static bool leq(const Clock& a, const Clock& b) {
        for (std::size_t i = 0; i < a.size(); ++i) {
            if (a[i] != 0 && (i >= b.size() || a[i] > b[i])) return false;
        }
        return true;
    }

    template <class Map>
    [[nodiscard]] static typename Map::iterator find_containing(Map& m, const void* p,
                                                                std::size_t bytes) {
        auto it = m.upper_bound(p);
        if (it == m.begin()) return m.end();
        --it;
        const auto* base = static_cast<const std::byte*>(it->first);
        const auto* q = static_cast<const std::byte*>(p);
        if (q >= base && q + bytes <= base + it->second.bytes) return it;
        return m.end();
    }

    /// Join one declared region of the task just ticked on \p q against
    /// the shadow records. Leaves the first conflict message in \p hazard
    /// (bookkeeping still completes so the shadow stays coherent).
    void join_region(QueueState& q, const char* what, const Region& r, bool is_copy,
                     std::string& hazard) {
        AllocShadow* shadow = nullptr;
        const std::byte* base = nullptr;
        if (auto it = find_containing(device_allocs_, r.p, r.bytes);
            it != device_allocs_.end()) {
            shadow = &it->second;
            base = static_cast<const std::byte*>(it->first);
        } else if (auto hit = find_containing(host_ranges_, r.p, r.bytes);
                   hit != host_ranges_.end()) {
            shadow = &hit->second;
            base = static_cast<const std::byte*>(hit->first);
        } else {
            if (!is_copy && hazard.empty()) {
                hazard = strcat_msg(
                    "devcheck: HAZARD [unpinned-staging]\n  task '", what, "' (#", q.seq,
                    " on queue '", q.name, "') declares a ", r.is_write ? "write" : "read",
                    " of ", r.bytes, " bytes at ", r.p,
                    " that is neither device memory nor a registered (pinned) host "
                    "range\n  kernels may only stage through pinned memory — register "
                    "the range (PinnedStore::ensure_pinned / ScopedHostRegistration) "
                    "before the launch");
            }
            return;
        }
        const auto off = static_cast<std::size_t>(static_cast<const std::byte*>(r.p) - base);
        const std::size_t b = off;
        const std::size_t e = off + r.bytes;
        // Conflict scan: overlapping access, at least one write, from
        // another actor, with no happens-before edge into this task.
        for (const AccessRecord& rec : shadow->records) {
            if (rec.actor == q.id) continue;
            if (rec.end <= b || e <= rec.begin) continue;
            if (!rec.is_write && !r.is_write) continue;
            if (leq(rec.clock, q.clock)) continue;
            if (hazard.empty()) {
                hazard = strcat_msg(
                    "devcheck: HAZARD [cross-queue-conflict]\n  ",
                    r.is_write ? "write" : "read", " by task '", what, "' (#", q.seq,
                    " on queue '", q.name, "') overlaps bytes [", rec.begin, ", ", rec.end,
                    ") ", rec.is_write ? "written" : "read", " by task '", rec.what, "' (#",
                    rec.seq, " on queue '", rec.queue_name,
                    "')\n  no happens-before edge connects them — missing Event "
                    "record/wait between the queues (or a fence before the enqueue)");
            }
        }
        // Epoch coarsening: a write supersedes every ordered record it
        // covers; a read supersedes only ordered *reads* (a read must
        // never hide an older write from a future conflicting writer).
        auto& recs = shadow->records;
        for (std::size_t i = 0; i < recs.size();) {
            AccessRecord& rec = recs[i];
            const bool covered = b <= rec.begin && rec.end <= e;
            const bool prunable = r.is_write || !rec.is_write;
            if (covered && prunable && leq(rec.clock, q.clock) &&
                !(rec.actor == q.id && rec.begin == b && rec.end == e &&
                  rec.is_write == r.is_write)) {
                rec = std::move(recs.back());
                recs.pop_back();
            } else {
                ++i;
            }
        }
        // In-place epoch overwrite for the steady state: same actor, same
        // range, same kind -> refresh the existing record.
        for (AccessRecord& rec : recs) {
            if (rec.actor == q.id && rec.begin == b && rec.end == e &&
                rec.is_write == r.is_write) {
                rec.clock = q.clock;
                rec.what = what;
                rec.seq = q.seq;
                rec.queue_name = q.name;
                return;
            }
        }
        AccessRecord rec;
        rec.begin = b;
        rec.end = e;
        rec.is_write = r.is_write;
        rec.actor = q.id;
        rec.queue_name = q.name;
        rec.what = what;
        rec.seq = q.seq;
        rec.clock = q.clock;
        recs.push_back(std::move(rec));
    }

    /// Shared by the free/unpin hooks (noexcept contexts): any record not
    /// ordered before the calling host thread means in-flight kernels may
    /// still touch the memory being retired.
    void check_unretired(const AllocShadow& shadow, const void* p, const char* action,
                         bool writes_only) noexcept {
        const Clock& h = host().clock;
        for (const AccessRecord& rec : shadow.records) {
            if (writes_only && !rec.is_write) continue;
            if (leq(rec.clock, h)) continue;
            hazards_.fetch_add(1, std::memory_order_relaxed);
            std::fprintf(stderr,
                         "devcheck: HAZARD [early-destruction]\n  %s at %p while task "
                         "'%s' (#%llu on queue '%s') has no completed-before edge to "
                         "this thread\n  missing edge: fence() the queue (or wait its "
                         "event) before freeing/unpinning\n",
                         action, p, rec.what, static_cast<unsigned long long>(rec.seq),
                         rec.queue_name);
            return;
        }
    }

    /// Host-path hazard: count it and throw.
    void report(const std::string& msg) {
        hazards_.fetch_add(1, std::memory_order_relaxed);
        throw HazardError(msg);
    }

    std::mutex m_;
    std::uint32_t next_actor_ = 1;   ///< 0 reserved as "unassigned"
    std::uint64_t next_event_serial_ = 1;
    std::atomic<std::uint64_t> hazards_{0};
    std::map<const void*, AllocShadow> device_allocs_;
    std::map<const void*, AllocShadow> host_ranges_;
    std::map<const void*, MirrorShadow> mirrors_;
    std::map<const void*, ChannelShadow> channels_;
};

// --------------------------------------------------------- hook wrappers
//
// Thin gated entry points so call sites stay one-liners and disabled
// builds fold every hook into `if (false)`.

/// Declare the next kernel's read/write footprint on \p q (any type with
/// a devcheck_state() accessor, i.e. Queue — templated so this header
/// stays independent of queue.hpp). \p what must have static storage
/// duration (a string literal). Regions outside tracked memory are
/// hazard class 3 unless the task is a copy.
template <class Q>
inline void declare(Q& q, const char* what, std::initializer_list<Region> regions) {
    if (QueueState* st = q.devcheck_state(); st != nullptr) {
        Checker::instance().set_pending(st, what, regions);
    }
}

/// Variable-count overload: callers keep the vector as reused scratch so
/// the steady state stays allocation-free.
template <class Q>
inline void declare(Q& q, const char* what, const std::vector<Region>& regions) {
    if (QueueState* st = q.devcheck_state(); st != nullptr) {
        Checker::instance().set_pending(st, what, regions);
    }
}

inline void note_mirror(const void* host_p, std::size_t bytes, const void* dev) {
    if (enabled()) Checker::instance().on_register_mirror(host_p, bytes, dev);
}

template <class Q>
inline void note_mirror_sync(Q& q, const void* host_p, bool to_host) {
    if (QueueState* st = q.devcheck_state(); st != nullptr) {
        Checker::instance().on_mirror_sync(st, host_p, to_host);
    }
}

/// Host-side read of possibly-mirrored host data (NodeField entry points).
inline void host_reads(const void* p, std::size_t bytes, const char* what) {
    if (enabled()) Checker::instance().on_host_mirror_read(p, bytes, what);
}

inline void channel_send_acquire(const void* key) {
    if (enabled() && key != nullptr) Checker::instance().on_channel_send_acquire(key);
}
inline void channel_publish(const void* key, const char* what) {
    if (enabled() && key != nullptr) Checker::instance().on_channel_publish(key, what);
}
inline void channel_recv_acquire(const void* key, const char* what) {
    if (enabled() && key != nullptr) Checker::instance().on_channel_recv_acquire(key, what);
}
inline void channel_release(const void* key, const char* what) {
    if (enabled() && key != nullptr) Checker::instance().on_channel_release(key, what);
}

[[nodiscard]] inline std::uint64_t hazard_count() {
    return enabled() ? Checker::instance().hazard_count() : 0;
}

[[nodiscard]] inline std::uint64_t take_hazard_count() {
    return enabled() ? Checker::instance().take_hazard_count() : 0;
}

} // namespace beatnik::par::device::devcheck
