#include "netsim/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <map>

namespace beatnik::netsim {

SimResult NetworkSimulator::simulate(const std::vector<Phase>& phases) const {
    std::vector<double> clock(static_cast<std::size_t>(nranks_), 0.0);
    SimResult result;
    for (const auto& phase : phases) {
        if (!phase.compute_seconds.empty()) {
            BEATNIK_REQUIRE(static_cast<int>(phase.compute_seconds.size()) == nranks_,
                            "phase compute vector must have one entry per rank");
            for (int r = 0; r < nranks_; ++r) {
                clock[static_cast<std::size_t>(r)] += phase.compute_seconds[static_cast<std::size_t>(r)];
                result.total_compute += phase.compute_seconds[static_cast<std::size_t>(r)];
            }
        }
        for (const auto& m : phase.messages) {
            BEATNIK_REQUIRE(m.src >= 0 && m.src < nranks_ && m.dst >= 0 && m.dst < nranks_,
                            "message rank out of range");
            result.total_comm_bytes += static_cast<double>(m.bytes);
        }
        result.total_messages += phase.messages.size();
        if (phase.messages.empty()) continue;
        if (phase.kind == PhaseKind::builtin_alltoall) {
            simulate_builtin_alltoall(phase, clock);
        } else {
            simulate_p2p(phase, clock);
        }
    }
    result.rank_finish = clock;
    result.makespan = *std::max_element(clock.begin(), clock.end());
    return result;
}

void NetworkSimulator::simulate_p2p(const Phase& phase, std::vector<double>& clock) const {
    const auto& m = machine_;
    const auto nr = static_cast<std::size_t>(nranks_);
    const int nnodes = (nranks_ + m.ranks_per_node - 1) / m.ranks_per_node;

    // Algorithm-internal staging copies (Bruck rotations and per-round
    // pack staging) delay the rank before any message issues.
    if (!phase.local_copy_bytes.empty()) {
        BEATNIK_REQUIRE(static_cast<int>(phase.local_copy_bytes.size()) == nranks_,
                        "phase local-copy vector must have one entry per rank");
        for (int r = 0; r < nranks_; ++r) {
            clock[static_cast<std::size_t>(r)] +=
                phase.local_copy_bytes[static_cast<std::size_t>(r)] / m.memory_bandwidth;
        }
    }

    // Sender CPUs issue their messages back to back: overhead + pack.
    struct Event {
        double issue;
        const Msg* msg;
    };
    std::vector<double> send_cursor(clock);
    std::vector<Event> events;
    events.reserve(phase.messages.size());
    for (const auto& msg : phase.messages) {
        double pack = static_cast<double>(msg.bytes) / m.memory_bandwidth;
        double issue = send_cursor[static_cast<std::size_t>(msg.src)];
        send_cursor[static_cast<std::size_t>(msg.src)] = issue + m.per_message_overhead + pack;
        events.push_back({issue, &msg});
    }
    std::stable_sort(events.begin(), events.end(),
                     [](const Event& a, const Event& b) { return a.issue < b.issue; });

    // Unscheduled p2p storms suffer incast: count distinct source nodes
    // converging on each destination node to degrade its ingress rate.
    std::vector<std::vector<bool>> seen_src(static_cast<std::size_t>(nnodes),
                                            std::vector<bool>(static_cast<std::size_t>(nnodes),
                                                              false));
    std::vector<int> incast_sources(static_cast<std::size_t>(nnodes), 0);
    for (const auto& msg : phase.messages) {
        int sn = m.node_of(msg.src);
        int dn = m.node_of(msg.dst);
        if (sn != dn && !seen_src[static_cast<std::size_t>(dn)][static_cast<std::size_t>(sn)]) {
            seen_src[static_cast<std::size_t>(dn)][static_cast<std::size_t>(sn)] = true;
            ++incast_sources[static_cast<std::size_t>(dn)];
        }
    }

    // Node NICs serialize inter-node traffic (egress and ingress).
    std::vector<double> egress_free(static_cast<std::size_t>(nnodes), 0.0);
    std::vector<double> ingress_free(static_cast<std::size_t>(nnodes), 0.0);
    std::vector<double> recv_ready(nr, 0.0);
    std::vector<double> unpack_cost(nr, 0.0);

    for (const auto& ev : events) {
        const Msg& msg = *ev.msg;
        double delivery;
        if (m.same_node(msg.src, msg.dst)) {
            delivery = ev.issue + m.intra_latency +
                       static_cast<double>(msg.bytes) / m.intra_bandwidth;
        } else {
            const auto sn = static_cast<std::size_t>(m.node_of(msg.src));
            const auto dn = static_cast<std::size_t>(m.node_of(msg.dst));
            double egress_time = m.nic_per_message_overhead +
                                 static_cast<double>(msg.bytes) / m.nic_injection_bandwidth;
            double incast = 1.0 + m.incast_factor *
                                      std::log2(1.0 + incast_sources[dn]);
            double ingress_time = m.nic_per_message_overhead +
                                  incast * static_cast<double>(msg.bytes) /
                                      m.nic_injection_bandwidth;
            double start = std::max(ev.issue, egress_free[sn]);
            egress_free[sn] = start + egress_time;
            double wire_arrival = start + m.inter_latency +
                                  static_cast<double>(msg.bytes) / m.inter_bandwidth;
            double ingress_start = std::max(wire_arrival - ingress_time, ingress_free[dn]);
            ingress_free[dn] = ingress_start + ingress_time;
            delivery = std::max(wire_arrival, ingress_free[dn]);
        }
        auto dst = static_cast<std::size_t>(msg.dst);
        recv_ready[dst] = std::max(recv_ready[dst], delivery);
        unpack_cost[dst] += static_cast<double>(msg.bytes) / m.memory_bandwidth;
    }
    for (std::size_t r = 0; r < nr; ++r) {
        clock[r] = std::max(send_cursor[r], std::max(recv_ready[r], clock[r])) + unpack_cost[r];
    }
}

void NetworkSimulator::simulate_builtin_alltoall(const Phase& phase,
                                                 std::vector<double>& clock) const {
    // Model of the MPI library's optimized node-aware alltoallv:
    //   1. ranks stage their outgoing data to the node leader (intra-node),
    //   2. leaders run a pairwise exchange of per-node aggregated payloads,
    //   3. leaders scatter arrivals to their node's ranks.
    // Fewer, larger inter-node messages — wins at scale; the staging
    // copies lose to the direct p2p path on small rank counts. This is
    // the mechanism behind the paper's Fig. 9 crossover.
    const auto& m = machine_;
    const auto nr = static_cast<std::size_t>(nranks_);
    const int nnodes = (nranks_ + m.ranks_per_node - 1) / m.ranks_per_node;
    const auto nn = static_cast<std::size_t>(nnodes);

    // Aggregate traffic per node pair, plus staging volumes per node.
    std::map<std::pair<int, int>, double> node_pair_bytes;
    std::vector<double> node_out(nn, 0.0), node_in(nn, 0.0);
    for (const auto& msg : phase.messages) {
        int sn = m.node_of(msg.src);
        int dn = m.node_of(msg.dst);
        auto bytes = static_cast<double>(msg.bytes);
        if (sn != dn) node_pair_bytes[{sn, dn}] += bytes;
        node_out[static_cast<std::size_t>(sn)] += bytes;
        node_in[static_cast<std::size_t>(dn)] += bytes;
    }

    // Entry synchronization: the collective proceeds at the pace of the
    // slowest participant (alltoallv is not synchronizing in theory, but
    // the dense exchange makes every rank wait on everyone in practice).
    double enter = *std::max_element(clock.begin(), clock.end());

    // Stage 1: stage outgoing payloads into host collective buffers (the
    // GPU-aware collective path's extra copy — p2p skips this).
    std::vector<double> leader_ready(nn, enter);
    for (std::size_t n = 0; n < nn; ++n) {
        double gather = node_out[n] / m.collective_staging_bandwidth +
                        m.per_message_overhead * (m.ranks_per_node - 1);
        leader_ready[n] = enter + gather;
    }

    // Stage 2: pairwise exchange among leaders; each node's time is the
    // (nnodes-1) message launches plus its aggregate volume through the
    // NIC, whichever side (in or out) is heavier.
    std::vector<double> leader_done(nn, 0.0);
    for (std::size_t n = 0; n < nn; ++n) {
        double inter_out = 0.0;
        std::size_t out_msgs = 0;
        for (std::size_t peer = 0; peer < nn; ++peer) {
            auto it = node_pair_bytes.find({static_cast<int>(n), static_cast<int>(peer)});
            if (it != node_pair_bytes.end()) {
                inter_out += it->second;
                ++out_msgs;
            }
        }
        double inter_in = 0.0;
        for (std::size_t peer = 0; peer < nn; ++peer) {
            auto it = node_pair_bytes.find({static_cast<int>(peer), static_cast<int>(n)});
            if (it != node_pair_bytes.end()) inter_in += it->second;
        }
        double rounds = std::max(0, nnodes - 1);
        double volume = std::max(inter_out, inter_in) / m.nic_injection_bandwidth +
                        static_cast<double>(out_msgs) * m.nic_per_message_overhead;
        leader_done[n] = leader_ready[n] + rounds * (m.inter_latency + m.per_message_overhead) +
                         volume;
    }
    double exchange_done = nn > 1 ? *std::max_element(leader_done.begin(), leader_done.end())
                                  : *std::max_element(leader_ready.begin(), leader_ready.end());

    // Stage 3: unstage arrivals from host buffers back to the ranks.
    for (int r = 0; r < nranks_; ++r) {
        auto n = static_cast<std::size_t>(m.node_of(r));
        double scatter = node_in[n] / m.collective_staging_bandwidth +
                         m.per_message_overhead * (m.ranks_per_node - 1);
        clock[static_cast<std::size_t>(r)] = exchange_done + scatter;
    }
    (void)nr;
}

namespace analytic {

namespace {
int ceil_log2(int p) {
    int l = 0;
    while ((1 << l) < p) ++l;
    return l;
}
} // namespace

double barrier_cost(const MachineModel& m, int p) {
    return ceil_log2(p) * (m.inter_latency + m.per_message_overhead);
}

double bcast_cost(const MachineModel& m, int p, std::size_t bytes) {
    return ceil_log2(p) *
           (m.inter_latency + m.per_message_overhead +
            static_cast<double>(bytes) / m.inter_bandwidth);
}

double allreduce_cost(const MachineModel& m, int p, std::size_t bytes) {
    return ceil_log2(p) *
           (m.inter_latency + m.per_message_overhead +
            static_cast<double>(bytes) / m.inter_bandwidth);
}

double allgather_cost(const MachineModel& m, int p, std::size_t bytes_per_rank) {
    return (p - 1) * (m.inter_latency + m.per_message_overhead +
                      static_cast<double>(bytes_per_rank) / m.inter_bandwidth);
}

double alltoall_pairwise_cost(const MachineModel& m, int p, std::size_t block_bytes) {
    return (p - 1) * (m.inter_latency + m.per_message_overhead +
                      static_cast<double>(block_bytes) / m.inter_bandwidth);
}

double bruck_local_copy_bytes(int p, std::size_t block_bytes) {
    // Initial rotation + final inverse rotation: the whole p-block
    // working set moves once each.
    double total = 2.0 * static_cast<double>(p) * static_cast<double>(block_bytes);
    // Per round, the blocks whose (rotated) index has the round's bit set
    // are packed into contiguous staging before the wire copy.
    for (int dist = 1; dist < p; dist <<= 1) {
        int moved = 0;
        for (int i = 0; i < p; ++i) {
            if ((i & dist) != 0) ++moved;
        }
        total += static_cast<double>(moved) * static_cast<double>(block_bytes);
    }
    return total;
}

} // namespace analytic

} // namespace beatnik::netsim
