/// \file machine.hpp
/// \brief Machine performance description for the network simulator.
///
/// The evaluation platform of the paper (LLNL Lassen: IBM Power9 nodes,
/// 4 V100 GPUs per node, EDR InfiniBand, Spectrum MPI with GPU-aware
/// transfers) is not available here, so scaling experiments replay *real*
/// message schedules through this model (DESIGN.md §1, substitution
/// table). Parameters are order-of-magnitude hardware values, documented
/// inline; EXPERIMENTS.md discusses sensitivity. We claim curve *shapes*,
/// never absolute seconds.
#pragma once

#include <cstddef>

namespace beatnik::netsim {

struct MachineModel {
    /// Ranks (GPUs) per node — Lassen runs 1 rank per GPU, 4 GPUs/node.
    int ranks_per_node = 4;

    /// Per-message launch overhead on the CPU (LogGP "o"): Spectrum MPI
    /// GPU-aware path, a few microseconds.
    double per_message_overhead = 2.0e-6;

    /// Intra-node transfers (shared memory / NVLink through host):
    /// cheaper latency, high bandwidth.
    double intra_latency = 2.0e-6;      ///< seconds
    double intra_bandwidth = 30.0e9;    ///< bytes/second

    /// Inter-node transfers over EDR InfiniBand (~100 Gb/s per port) with
    /// GPU-aware staging overhead.
    double inter_latency = 5.0e-6;      ///< seconds
    double inter_bandwidth = 10.0e9;    ///< bytes/second

    /// Node injection limit: all ranks of a node share the NIC, so
    /// concurrent inter-node messages serialize at this rate.
    double nic_injection_bandwidth = 12.0e9; ///< bytes/second

    /// Per-message processing cost at the NIC/HCA (message-rate limit,
    /// ~500K msg/s for EDR-era adapters with GPU-aware staging). This is
    /// one term that makes aggregating collectives win at scale: a dense
    /// p2p all-to-all pushes P-1 messages per rank through the shared
    /// NIC, while the node-aware builtin sends nodes-1 aggregated ones.
    double nic_per_message_overhead = 2.0e-6; ///< seconds

    /// Incast factor for *unscheduled* point-to-point storms (heFFTe's
    /// custom path): when S source nodes converge on one destination
    /// node without round scheduling, its effective ingress bandwidth
    /// degrades by (1 + incast_factor * log2(1 + S)). The MPI builtin
    /// alltoall's phased pairwise schedule avoids this. Calibrated so the
    /// paper's Fig. 9 AllToAll crossover lands above 64 ranks.
    double incast_factor = 0.12;

    /// Effective bandwidth of the extra staging copies the GPU-aware
    /// *collective* path performs (Spectrum MPI stages collective
    /// payloads through host buffers; p2p uses GPUDirect and skips this).
    /// This is what makes the custom p2p path win on small rank counts.
    /// Calibrated jointly with incast_factor so the Fig. 9 crossover
    /// falls between 64 and 256 ranks as observed on Lassen.
    double collective_staging_bandwidth = 50.0e9; ///< bytes/second per node

    /// Effective compute rate of one GPU on the FFT/stencil kernels
    /// (well below peak — these kernels are memory-bound on V100).
    double flops_rate = 0.8e12;         ///< flop/second

    /// Far-field force kernel throughput (pair interactions per second
    /// per GPU; ~30 flops/pair at memory-bound intensity).
    double pair_rate = 2.0e10;          ///< pairs/second

    /// Streaming memory bandwidth used for pack/unpack of message and
    /// migration buffers.
    double memory_bandwidth = 500.0e9;  ///< bytes/second

    [[nodiscard]] int node_of(int rank) const { return rank / ranks_per_node; }
    [[nodiscard]] bool same_node(int a, int b) const { return node_of(a) == node_of(b); }

    /// Point-to-point wire time of one message (excluding queueing).
    [[nodiscard]] double wire_time(int src, int dst, std::size_t bytes) const {
        if (same_node(src, dst)) {
            return intra_latency + static_cast<double>(bytes) / intra_bandwidth;
        }
        return inter_latency + static_cast<double>(bytes) / inter_bandwidth;
    }

    /// The Lassen-like reference machine used by all paper-figure benches.
    static MachineModel lassen() { return MachineModel{}; }
};

} // namespace beatnik::netsim
