/// \file fft_bridge.hpp
/// \brief Converts minifft schedule plans into netsim phases.
///
/// The scaling benchmarks (Figs. 3, 4, 9) build *real* reshape plans for
/// any rank count with DistributedFFT2D::plan_schedule and replay them
/// here — the simulator never sees synthetic traffic, only the message
/// lists the library would actually send.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "comm/channel.hpp"
#include "fft/distributed_fft.hpp"
#include "netsim/simulator.hpp"

namespace beatnik::netsim {

/// Convert persistent-plan send schedules (comm::Plan::send_schedule,
/// grid::HaloPlan::send_schedule, one entry per rank's plan, concatenated)
/// into a single simulator phase. This is the executable-plan twin of the
/// static fft::plan_schedule path: a pattern that runs through a comm::Plan
/// exports exactly the message list it would send, and the machine model
/// replays it.
[[nodiscard]] inline Phase phase_from_plans(std::span<const comm::PlanMsg> msgs,
                                            std::string label,
                                            PhaseKind kind = PhaseKind::p2p) {
    Phase ph;
    ph.label = std::move(label);
    ph.kind = kind;
    ph.messages.reserve(msgs.size());
    for (const auto& m : msgs) {
        if (m.src_world == m.dst_world) continue;   // self copies cost no network
        ph.messages.push_back({m.src_world, m.dst_world, m.bytes});
    }
    return ph;
}

/// Convert one planned FFT transform (its reshape phases + per-rank FFT
/// flops) to simulator phases. \p transforms repeats the whole transform
/// (e.g. 6 for the low-order solver's 3 forward + 3 inverse transforms
/// per derivative evaluation; forward and inverse schedules are mirror
/// images with identical cost structure).
[[nodiscard]] inline std::vector<Phase> fft_phases(const std::vector<fft::PlannedPhase>& planned,
                                                   const MachineModel& machine, int nranks,
                                                   int transforms = 1) {
    // plan_schedule attaches FFT flops to the phase whose communication
    // *precedes* the compute; the simulator runs compute *before* a
    // phase's messages. Shift the compute one phase later accordingly.
    std::vector<Phase> phases;
    phases.reserve(planned.size() * static_cast<std::size_t>(transforms) + 1);
    std::vector<double> pending_compute(static_cast<std::size_t>(nranks), 0.0);
    for (int t = 0; t < transforms; ++t) {
        for (const auto& pp : planned) {
            Phase ph;
            ph.label = pp.label;
            ph.kind = pp.is_alltoall ? PhaseKind::builtin_alltoall : PhaseKind::p2p;
            ph.messages.reserve(pp.messages.size());
            for (const auto& m : pp.messages) ph.messages.push_back({m.src, m.dst, m.bytes});
            ph.compute_seconds = pending_compute;
            for (int r = 0; r < nranks; ++r) {
                pending_compute[static_cast<std::size_t>(r)] =
                    pp.flops_per_rank[static_cast<std::size_t>(r)] / machine.flops_rate;
            }
            phases.push_back(std::move(ph));
        }
    }
    // Trailing compute (zero for a full brick->brick transform, nonzero if
    // the last planned phase carried work).
    Phase tail;
    tail.label = "tail-compute";
    tail.compute_seconds = std::move(pending_compute);
    phases.push_back(std::move(tail));
    return phases;
}

} // namespace beatnik::netsim
