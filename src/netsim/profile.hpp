/// \file profile.hpp
/// \brief Calibrated machine profiles bridging measurement and simulation.
///
/// `bench_patterns --calibrate` measures a real transport (latency from a
/// small-message ring, bandwidth from a large-message ring, local-copy
/// bandwidth from a memcpy sweep) and writes the numbers as a small JSON
/// profile. This header loads such a profile back and projects it onto a
/// MachineModel, so netsim predictions can be grounded in *measured*
/// parameters of the machine at hand instead of the hard-coded Lassen
/// estimates. The profile format is deliberately flat — a single JSON
/// object of scalar fields — so it is parsed here with a dependency-free
/// key scan rather than a JSON library.
#pragma once

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "base/error.hpp"
#include "netsim/machine.hpp"

namespace beatnik::netsim {

/// Per-transport parameters fitted by `bench_patterns --calibrate`.
struct CalibratedProfile {
    std::string transport;                       ///< "inproc", "shm" or "loopback"
    double latency_seconds = 0.0;                ///< one-way small-message latency
    double bandwidth_bytes_per_second = 0.0;     ///< large-message stream bandwidth
    double local_copy_bandwidth_bytes_per_second = 0.0; ///< memcpy sweep rate
};

namespace detail {

/// Value of `"key": <number>` in \p json, or \p fallback when absent.
inline double scan_number(const std::string& json, const std::string& key,
                          double fallback) {
    const std::string needle = "\"" + key + "\"";
    auto pos = json.find(needle);
    if (pos == std::string::npos) return fallback;
    pos = json.find(':', pos + needle.size());
    if (pos == std::string::npos) return fallback;
    ++pos;
    while (pos < json.size() &&
           std::isspace(static_cast<unsigned char>(json[pos])) != 0) {
        ++pos;
    }
    const char* begin = json.c_str() + pos;
    char* end = nullptr;
    double value = std::strtod(begin, &end);
    return end != begin ? value : fallback;
}

/// Value of `"key": "<string>"` in \p json, or "" when absent.
inline std::string scan_string(const std::string& json, const std::string& key) {
    const std::string needle = "\"" + key + "\"";
    auto pos = json.find(needle);
    if (pos == std::string::npos) return {};
    pos = json.find(':', pos + needle.size());
    if (pos == std::string::npos) return {};
    auto open = json.find('"', pos + 1);
    if (open == std::string::npos) return {};
    auto close = json.find('"', open + 1);
    if (close == std::string::npos) return {};
    return json.substr(open + 1, close - open - 1);
}

} // namespace detail

/// Parse a calibration profile from JSON text. Missing numeric fields
/// stay zero; latency and bandwidth are required to be positive.
[[nodiscard]] inline CalibratedProfile parse_profile(const std::string& json) {
    CalibratedProfile p;
    p.transport = detail::scan_string(json, "transport");
    p.latency_seconds = detail::scan_number(json, "latency_seconds", 0.0);
    p.bandwidth_bytes_per_second =
        detail::scan_number(json, "bandwidth_bytes_per_second", 0.0);
    p.local_copy_bandwidth_bytes_per_second = detail::scan_number(
        json, "local_copy_bandwidth_bytes_per_second", 0.0);
    BEATNIK_REQUIRE(p.latency_seconds > 0.0 &&
                        p.bandwidth_bytes_per_second > 0.0,
                    "machine profile missing latency_seconds / "
                    "bandwidth_bytes_per_second");
    return p;
}

/// Load a calibration profile from \p path (a `--calibrate` output file).
[[nodiscard]] inline CalibratedProfile load_profile(const std::string& path) {
    std::ifstream in(path);
    BEATNIK_REQUIRE(in.good(), "cannot open machine profile: " + path);
    std::ostringstream buf;
    buf << in.rdbuf();
    return parse_profile(buf.str());
}

/// Project a calibrated profile onto a MachineModel. The measured
/// transport is uniform (every peer pair crosses the same mechanism), so
/// intra- and inter-node parameters collapse to the measured pair and
/// NIC-level contention terms are disabled: the resulting model predicts
/// *this machine's* schedules, not Lassen's.
[[nodiscard]] inline MachineModel machine_from_profile(const CalibratedProfile& p) {
    MachineModel m;
    m.ranks_per_node = 1;
    m.per_message_overhead = 0.0;
    m.intra_latency = p.latency_seconds;
    m.inter_latency = p.latency_seconds;
    m.intra_bandwidth = p.bandwidth_bytes_per_second;
    m.inter_bandwidth = p.bandwidth_bytes_per_second;
    m.nic_injection_bandwidth = p.bandwidth_bytes_per_second;
    m.nic_per_message_overhead = 0.0;
    m.incast_factor = 0.0;
    m.collective_staging_bandwidth = p.bandwidth_bytes_per_second;
    if (p.local_copy_bandwidth_bytes_per_second > 0.0) {
        m.memory_bandwidth = p.local_copy_bandwidth_bytes_per_second;
    }
    return m;
}

} // namespace beatnik::netsim
