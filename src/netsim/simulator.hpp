/// \file simulator.hpp
/// \brief Deterministic network performance simulator.
///
/// Replays a phased communication schedule — per-rank compute followed by
/// a set of point-to-point messages — against a MachineModel, tracking
/// per-rank clocks and per-node NIC occupancy (the congestion source in
/// all-to-all phases). Collective phases may instead be modeled as the
/// MPI library's optimized node-aware algorithm; the contrast between the
/// two is precisely what the paper's heFFTe `AllToAll` knob measures
/// (Fig. 9).
///
/// The simulator is greedy list-scheduling: messages issue in global
/// timestamp order, resources (sender CPU, node NIC egress/ingress) are
/// FIFO. Deterministic by construction — no randomness, no wall clock.
#pragma once

#include <string>
#include <vector>

#include "base/error.hpp"
#include "netsim/machine.hpp"

namespace beatnik::netsim {

/// One point-to-point transfer in a schedule.
struct Msg {
    int src = 0;
    int dst = 0;
    std::size_t bytes = 0;
};

/// How the messages of a phase are executed.
enum class PhaseKind {
    p2p,                 ///< explicit sends (heFFTe custom path, halos, migration)
    builtin_alltoall,    ///< library collective: node-aware hierarchical algorithm
};

/// A communication phase preceded by per-rank local compute.
struct Phase {
    std::string label;
    PhaseKind kind = PhaseKind::p2p;
    std::vector<double> compute_seconds; ///< per rank, before communication (may be empty)
    std::vector<Msg> messages;
    /// Local staging bytes the algorithm moves *off the wire*, per rank,
    /// charged at the machine's memory bandwidth before the rank issues
    /// its sends (may be empty). Wire pack/unpack is already modeled per
    /// message; this covers algorithm-internal copies — e.g. Bruck's
    /// initial/final block rotations and its per-round pack staging,
    /// which the pairwise exchange does not pay. Ignoring them was the
    /// documented ~8 KiB crossover-fidelity gap (bench_model_validation).
    std::vector<double> local_copy_bytes;
};

namespace analytic {

/// Local (off-wire) copy bytes one rank pays for a Bruck alltoall with
/// per-rank block size \p block_bytes over \p p ranks: the initial and
/// final rotations move the whole p-block working set once each, and
/// every round packs its moved blocks into contiguous staging before the
/// wire copy (ceil(log2 p) rounds x the blocks whose index has that
/// round's bit set).
[[nodiscard]] double bruck_local_copy_bytes(int p, std::size_t block_bytes);

} // namespace analytic

struct SimResult {
    double makespan = 0.0;                 ///< max finish time over ranks
    std::vector<double> rank_finish;       ///< per-rank finish times
    double total_compute = 0.0;            ///< sum of compute input
    double total_comm_bytes = 0.0;
    std::size_t total_messages = 0;
};

class NetworkSimulator {
public:
    NetworkSimulator(MachineModel machine, int nranks)
        : machine_(machine), nranks_(nranks) {
        BEATNIK_REQUIRE(nranks >= 1, "simulator needs at least one rank");
    }

    [[nodiscard]] const MachineModel& machine() const { return machine_; }
    [[nodiscard]] int nranks() const { return nranks_; }

    /// Run all phases in order (phase k+1 starts on a rank when that rank
    /// finished phase k; messages of phase k+1 additionally wait for the
    /// producing sender). Returns timing for the whole schedule.
    [[nodiscard]] SimResult simulate(const std::vector<Phase>& phases) const;

private:
    void simulate_p2p(const Phase& phase, std::vector<double>& clock) const;
    void simulate_builtin_alltoall(const Phase& phase, std::vector<double>& clock) const;

    MachineModel machine_;
    int nranks_;
};

/// Analytic costs of the standard collective algorithms (cross-checks for
/// the simulator and quick estimates for solver models). All formulas are
/// the textbook alpha-beta costs of the algorithms implemented in
/// comm::Communicator.
namespace analytic {

/// ceil(log2 p) rounds of empty messages.
double barrier_cost(const MachineModel& m, int p);

/// Binomial tree: ceil(log2 p) * (alpha + n*beta).
double bcast_cost(const MachineModel& m, int p, std::size_t bytes);

/// Recursive doubling: ceil(log2 p) * (alpha + n*beta).
double allreduce_cost(const MachineModel& m, int p, std::size_t bytes);

/// Ring: (p-1) * (alpha + n*beta).
double allgather_cost(const MachineModel& m, int p, std::size_t bytes_per_rank);

/// Pairwise exchange: (p-1) * (alpha + n_block*beta).
double alltoall_pairwise_cost(const MachineModel& m, int p, std::size_t block_bytes);

} // namespace analytic

} // namespace beatnik::netsim
