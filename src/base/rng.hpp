/// \file rng.hpp
/// \brief Deterministic, splittable random number generation.
///
/// Every stochastic choice in the library (initial-condition mode phases,
/// test data) flows through SplitMix64/Xoshiro-style generators seeded from
/// an explicit user seed, so runs are reproducible across rank counts: a
/// mesh node's random values depend only on its *global* index and the seed,
/// never on which rank owns it.
#pragma once

#include <cstdint>

namespace beatnik {

/// SplitMix64: tiny, high-quality 64-bit mixer. Used both as a stream
/// generator and as a hash of (seed, index) pairs.
class SplitMix64 {
public:
    explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

    /// Next raw 64-bit value.
    std::uint64_t next() {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    /// Uniform double in [0, 1).
    double uniform() {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /// Uniform double in [lo, hi).
    double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

private:
    std::uint64_t state_;
};

/// Stateless hash of (seed, key) — gives each global index its own
/// reproducible random stream independent of domain decomposition.
inline std::uint64_t hash_mix(std::uint64_t seed, std::uint64_t key) {
    SplitMix64 g(seed ^ (0x9e3779b97f4a7c15ULL * (key + 1)));
    return g.next();
}

/// Uniform double in [0,1) from (seed, key) without carrying state.
inline double hash_uniform(std::uint64_t seed, std::uint64_t key) {
    return static_cast<double>(hash_mix(seed, key) >> 11) * 0x1.0p-53;
}

} // namespace beatnik
