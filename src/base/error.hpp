/// \file error.hpp
/// \brief Error types and runtime check macros shared by every Beatnik module.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>

namespace beatnik {

/// Base class for all errors thrown by this library.
///
/// Every failure path in the library throws (never aborts), so that
/// rank-threads can propagate failures to the harness that spawned them.
class Error : public std::runtime_error {
public:
    explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown on misuse of an API (bad arguments, wrong state).
class InvalidArgument : public Error {
public:
    explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Thrown when a communication operation fails (mismatched message,
/// deadlock timeout, rank out of range, ...).
class CommError : public Error {
public:
    explicit CommError(const std::string& what) : Error(what) {}
};

/// Thrown when an I/O operation fails.
class IoError : public Error {
public:
    explicit IoError(const std::string& what) : Error(what) {}
};

/// Minimal stand-in for std::format (not available in GCC 12's libstdc++):
/// streams all arguments into a string.
template <class... Args>
std::string strcat_msg(Args&&... args) {
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

namespace detail {

/// __FILE__ is whatever path the build system compiled with — absolute for
/// out-of-source CMake builds. Trim to the basename so failure messages are
/// identical no matter where the tree was checked out or built.
constexpr std::string_view trim_to_basename(std::string_view file) {
    if (auto pos = file.find_last_of("/\\"); pos != std::string_view::npos) {
        return file.substr(pos + 1);
    }
    return file;
}

[[noreturn]] inline void throw_check_failure(std::string_view kind, std::string_view expr,
                                             std::string_view file, int line,
                                             const std::string& msg) {
    throw Error(strcat_msg(kind, " failed: `", expr, "` at ", trim_to_basename(file), ":", line,
                           msg.empty() ? "" : " — ", msg));
}

} // namespace detail

} // namespace beatnik

/// Always-on invariant check. Throws beatnik::Error on failure.
/// Used for conditions that depend on user input or cross-module contracts.
#define BEATNIK_REQUIRE(expr, ...)                                                        \
    do {                                                                                  \
        if (!(expr)) [[unlikely]] {                                                       \
            ::beatnik::detail::throw_check_failure("requirement", #expr, __FILE__,        \
                                                   __LINE__, ::std::string{__VA_ARGS__}); \
        }                                                                                 \
    } while (false)

/// Debug-only internal consistency check (compiled out in release builds).
#ifdef NDEBUG
#define BEATNIK_ASSERT(expr, ...) ((void)0)
#else
#define BEATNIK_ASSERT(expr, ...)                                                        \
    do {                                                                                  \
        if (!(expr)) [[unlikely]] {                                                       \
            ::beatnik::detail::throw_check_failure("assertion", #expr, __FILE__,          \
                                                   __LINE__, ::std::string{__VA_ARGS__}); \
        }                                                                                 \
    } while (false)
#endif
