/// \file timer.hpp
/// \brief The repo's one monotonic clock, plus a wall-clock stopwatch.
///
/// Every raw clock read outside src/telemetry/ goes through mono_now() /
/// deadline_after() here (enforced by scripts/lint.py's chrono rule), so
/// timeouts, injected transport delays, and telemetry timestamps all come
/// from the same steady clock — one recording can feed both the Perfetto
/// timeline and the netsim replay without cross-clock skew.
///
/// The labelled SectionTimers registry that used to live here allocated a
/// std::string key per add() call; solver phase timing now rides the
/// allocation-free telemetry metrics (src/telemetry/metrics.hpp).
#pragma once

#include <chrono>

namespace beatnik {

/// The process-wide monotonic clock. Alias (not a new type) so standard
/// <chrono> arithmetic applies unchanged.
using MonoClock = std::chrono::steady_clock;

/// One monotonic clock read. The only sanctioned spelling outside
/// src/base/ and src/telemetry/ (see scripts/lint.py, chrono-reads rule).
[[nodiscard]] inline MonoClock::time_point mono_now() { return MonoClock::now(); }

/// Deadline \p seconds from now, in MonoClock coordinates. A non-positive
/// timeout yields a deadline already in the past — callers gate on the
/// timeout value, not the deadline, exactly as before.
[[nodiscard]] inline MonoClock::time_point deadline_after(double seconds) {
    return mono_now() + std::chrono::duration_cast<MonoClock::duration>(
                            std::chrono::duration<double>(seconds));
}

/// Simple monotonic wall-clock stopwatch.
class Stopwatch {
public:
    Stopwatch() : start_(mono_now()) {}

    /// Restart the stopwatch.
    void reset() { start_ = mono_now(); }

    /// Seconds elapsed since construction or the last reset().
    [[nodiscard]] double seconds() const {
        return std::chrono::duration<double>(mono_now() - start_).count();
    }

private:
    MonoClock::time_point start_;
};

} // namespace beatnik
