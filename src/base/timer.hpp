/// \file timer.hpp
/// \brief Wall-clock timers and a labelled section-timing registry.
#pragma once

#include <chrono>
#include <map>
#include <string>

namespace beatnik {

/// Simple monotonic wall-clock stopwatch.
class Stopwatch {
public:
    Stopwatch() : start_(clock::now()) {}

    /// Restart the stopwatch.
    void reset() { start_ = clock::now(); }

    /// Seconds elapsed since construction or the last reset().
    [[nodiscard]] double seconds() const {
        return std::chrono::duration<double>(clock::now() - start_).count();
    }

private:
    using clock = std::chrono::steady_clock;
    clock::time_point start_;
};

/// Accumulates named timing sections, e.g. per-solver phase
/// ("halo", "fft", "migrate", "force"). Not thread-safe by design: each
/// rank-thread owns its own SectionTimers instance.
class SectionTimers {
public:
    /// RAII guard that charges elapsed time to a named section.
    class Scope {
    public:
        Scope(SectionTimers& owner, std::string name)
            : owner_(owner), name_(std::move(name)) {}
        ~Scope() { owner_.add(name_, watch_.seconds()); }
        Scope(const Scope&) = delete;
        Scope& operator=(const Scope&) = delete;

    private:
        SectionTimers& owner_;
        std::string name_;
        Stopwatch watch_;
    };

    /// Start timing a named section; time is charged when the guard dies.
    [[nodiscard]] Scope time(std::string name) { return Scope(*this, std::move(name)); }

    /// Add raw seconds to a section.
    void add(const std::string& name, double seconds) { totals_[name] += seconds; }

    /// Total seconds charged to \p name (0.0 if never timed).
    [[nodiscard]] double total(const std::string& name) const {
        auto it = totals_.find(name);
        return it == totals_.end() ? 0.0 : it->second;
    }

    /// All section totals, ordered by name.
    [[nodiscard]] const std::map<std::string, double>& totals() const { return totals_; }

    void clear() { totals_.clear(); }

private:
    std::map<std::string, double> totals_;
};

} // namespace beatnik
