/// \file local_grid.hpp
/// \brief Per-rank block of the global mesh plus halo bookkeeping.
#pragma once

#include <array>

#include "grid/cart_topology.hpp"
#include "grid/global_mesh.hpp"
#include "grid/index_space.hpp"

namespace beatnik::grid {

/// The block of global nodes owned by one rank, together with the halo
/// width and the index spaces needed by stencil code and halo exchange.
///
/// Two index frames are used:
///  * global frame: indices into the global mesh;
///  * local frame: 0 at the first *owned* node; ghosts live at negative
///    indices and at >= owned extent. Fields are stored in the local frame.
class LocalGrid2D {
public:
    LocalGrid2D(const GlobalMesh2D& mesh, const CartTopology2D& topo, int rank, int halo_width)
        : topo_coords_(topo.coords_of(rank)), halo_width_(halo_width) {
        BEATNIK_REQUIRE(halo_width >= 0, "halo width must be non-negative");
        for (int d = 0; d < 2; ++d) {
            owned_global_[static_cast<std::size_t>(d)] =
                block_partition(mesh.num_nodes(d), topo.dims()[static_cast<std::size_t>(d)],
                                topo_coords_[static_cast<std::size_t>(d)]);
            BEATNIK_REQUIRE(owned_global_[static_cast<std::size_t>(d)].extent() >= halo_width,
                            "block too small for the requested halo width");
        }
    }

    [[nodiscard]] int halo_width() const { return halo_width_; }
    [[nodiscard]] const std::array<int, 2>& topo_coords() const { return topo_coords_; }

    /// Global index range of owned nodes along axis \p d.
    [[nodiscard]] Range owned_global(int d) const {
        return owned_global_[static_cast<std::size_t>(d)];
    }

    /// Number of owned nodes along axis \p d.
    [[nodiscard]] int owned_extent(int d) const {
        return owned_global_[static_cast<std::size_t>(d)].extent();
    }

    /// Global index of local index 0 along axis \p d.
    [[nodiscard]] int global_offset(int d) const {
        return owned_global_[static_cast<std::size_t>(d)].begin;
    }

    /// Owned nodes in the local frame: [0, ni) x [0, nj).
    [[nodiscard]] IndexSpace2D own_space() const {
        return {{0, owned_extent(0)}, {0, owned_extent(1)}};
    }

    /// Owned + ghost nodes in the local frame.
    [[nodiscard]] IndexSpace2D ghosted_space() const {
        return {{-halo_width_, owned_extent(0) + halo_width_},
                {-halo_width_, owned_extent(1) + halo_width_}};
    }

    /// Owned sub-rectangle a neighbor at offset (di, dj) needs from us
    /// (the "pack" region), in the local frame.
    [[nodiscard]] IndexSpace2D shared_space(int di, int dj) const {
        return {edge_band(di, owned_extent(0), /*ghost=*/false),
                edge_band(dj, owned_extent(1), /*ghost=*/false)};
    }

    /// Ghost sub-rectangle filled by the neighbor at offset (di, dj)
    /// (the "unpack" region), in the local frame.
    [[nodiscard]] IndexSpace2D halo_space(int di, int dj) const {
        return {edge_band(di, owned_extent(0), /*ghost=*/true),
                edge_band(dj, owned_extent(1), /*ghost=*/true)};
    }

private:
    /// The 1D band along one axis for direction d in {-1, 0, +1}:
    /// own-frame rows we send (ghost=false) or ghost rows we fill
    /// (ghost=true).
    [[nodiscard]] Range edge_band(int d, int extent, bool ghost) const {
        const int w = halo_width_;
        if (d == 0) return {0, extent};
        if (d < 0) return ghost ? Range{-w, 0} : Range{0, w};
        return ghost ? Range{extent, extent + w} : Range{extent - w, extent};
    }

    std::array<int, 2> topo_coords_;
    int halo_width_;
    std::array<Range, 2> owned_global_;
};

} // namespace beatnik::grid
