/// \file field.hpp
/// \brief Node-centered field storage with ghost layers.
#pragma once

#include <span>
#include <vector>

#include "base/error.hpp"
#include "grid/local_grid.hpp"

namespace beatnik::grid {

/// A C-component field over the owned+ghost nodes of a LocalGrid2D.
///
/// Storage is a dense row-major array over the ghosted rectangle with the
/// component index fastest (an "array of small structs" layout — fields
/// with C=2..3 doubles stay compact and cache-friendly, per the
/// hpc-parallel guide's "use compact data structures" rule).
///
/// Indexing is in the local frame: owned nodes at [0, ni) x [0, nj),
/// ghosts at negative / >= extent indices (see LocalGrid2D).
template <class T, int C>
class NodeField {
public:
    static_assert(C >= 1);

    explicit NodeField(const LocalGrid2D& grid)
        : halo_(grid.halo_width()), ni_(grid.owned_extent(0)), nj_(grid.owned_extent(1)),
          stride_j_(C), stride_i_((nj_ + 2 * halo_) * C),
          data_(static_cast<std::size_t>(ni_ + 2 * halo_) *
                    static_cast<std::size_t>(nj_ + 2 * halo_) * C,
                T{}) {}

    [[nodiscard]] int halo_width() const { return halo_; }
    [[nodiscard]] int extent(int d) const { return d == 0 ? ni_ : nj_; }
    static constexpr int components() { return C; }

    [[nodiscard]] T& operator()(int i, int j, int c = 0) {
        BEATNIK_ASSERT(in_bounds(i, j, c));
        return data_[index(i, j, c)];
    }
    [[nodiscard]] const T& operator()(int i, int j, int c = 0) const {
        BEATNIK_ASSERT(in_bounds(i, j, c));
        return data_[index(i, j, c)];
    }

    /// Raw storage (ghosted rectangle, row-major, component-fastest).
    [[nodiscard]] std::vector<T>& storage() { return data_; }
    [[nodiscard]] const std::vector<T>& storage() const { return data_; }

    /// Set every entry (ghosts included).
    void fill(T value) { std::fill(data_.begin(), data_.end(), value); }

    /// Copy all components at a node from another field of the same shape.
    void copy_node(int i, int j, const NodeField& from) {
        for (int c = 0; c < C; ++c) (*this)(i, j, c) = from(i, j, c);
    }

    /// Pack an index rectangle (all components) into \p out, row-major.
    void pack(const IndexSpace2D& space, std::vector<T>& out) const {
        out.clear();
        out.reserve(space.size() * C);
        for (int i = space.i.begin; i < space.i.end; ++i) {
            for (int j = space.j.begin; j < space.j.end; ++j) {
                for (int c = 0; c < C; ++c) out.push_back((*this)(i, j, c));
            }
        }
    }

    /// Unpack a buffer previously produced by pack() for \p space.
    void unpack(const IndexSpace2D& space, const std::vector<T>& in) {
        unpack_from(space, std::span<const T>(in.data(), in.size()));
    }

    /// Pack an index rectangle directly into caller-provided storage of
    /// exactly space.size() * C elements (the persistent-plan transport
    /// buffer) — no staging vector, no allocation. Storage is (j, c)-
    /// contiguous per row, so each row moves as one block copy.
    void pack_into(const IndexSpace2D& space, std::span<T> out) const {
        BEATNIK_REQUIRE(out.size() == space.size() * C, "pack_into: buffer size mismatch");
        if (space.size() == 0) return;
        const std::size_t row = row_elems(space);
        std::size_t k = 0;
        for (int i = space.i.begin; i < space.i.end; ++i, k += row) {
            std::copy_n(&(*this)(i, space.j.begin, 0), row, out.data() + k);
        }
    }

    /// Unpack a span previously produced by pack()/pack_into() for \p space.
    void unpack_from(const IndexSpace2D& space, std::span<const T> in) {
        BEATNIK_REQUIRE(in.size() == space.size() * C, "unpack: buffer size mismatch");
        if (space.size() == 0) return;
        const std::size_t row = row_elems(space);
        std::size_t k = 0;
        for (int i = space.i.begin; i < space.i.end; ++i, k += row) {
            std::copy_n(in.data() + k, row, &(*this)(i, space.j.begin, 0));
        }
    }

    /// Accumulate (+=) a packed span into an index rectangle — the
    /// scatter-add unpack.
    void accumulate_from(const IndexSpace2D& space, std::span<const T> in) {
        BEATNIK_REQUIRE(in.size() == space.size() * C, "accumulate: buffer size mismatch");
        if (space.size() == 0) return;
        const std::size_t row = row_elems(space);
        std::size_t k = 0;
        for (int i = space.i.begin; i < space.i.end; ++i, k += row) {
            T* dst = &(*this)(i, space.j.begin, 0);
            for (std::size_t m = 0; m < row; ++m) dst[m] += in[k + m];
        }
    }

private:
    /// Contiguous elements per row of an index rectangle ((j, c) are the
    /// two fastest storage axes).
    [[nodiscard]] static std::size_t row_elems(const IndexSpace2D& space) {
        return static_cast<std::size_t>(space.j.end - space.j.begin) * C;
    }

    [[nodiscard]] bool in_bounds(int i, int j, int c) const {
        return i >= -halo_ && i < ni_ + halo_ && j >= -halo_ && j < nj_ + halo_ && c >= 0 && c < C;
    }
    [[nodiscard]] std::size_t index(int i, int j, int c) const {
        return static_cast<std::size_t>((i + halo_) * stride_i_ + (j + halo_) * stride_j_ + c);
    }

    int halo_;
    int ni_, nj_;
    int stride_j_, stride_i_;
    std::vector<T> data_;
};

} // namespace beatnik::grid
