/// \file field.hpp
/// \brief Node-centered field storage with ghost layers, with an optional
/// device mirror (par/device) for GPU-shaped runs.
#pragma once

#include <span>
#include <utility>
#include <vector>

#include "base/error.hpp"
#include "grid/local_grid.hpp"
#include "par/device/device.hpp"

namespace beatnik::grid {

/// Non-owning device-side view of a NodeField's ghosted rectangle: the
/// same (i, j, c) indexing over the device mirror. Dereferenceable only
/// in device context (kernels) — the accessor is debug-checked like any
/// DeviceView.
template <class T, int C>
class DeviceFieldView {
public:
    DeviceFieldView() = default;
    DeviceFieldView(par::device::DeviceView<T> data, int halo, int ni, int nj)
        : data_(data), halo_(halo), ni_(ni), nj_(nj), stride_i_((nj + 2 * halo) * C) {}

    [[nodiscard]] T& operator()(int i, int j, int c = 0) const {
        BEATNIK_ASSERT(i >= -halo_ && i < ni_ + halo_ && j >= -halo_ && j < nj_ + halo_ &&
                       c >= 0 && c < C);
        return data_[index(i, j, c)];
    }

    [[nodiscard]] int halo_width() const { return halo_; }
    [[nodiscard]] int extent(int d) const { return d == 0 ? ni_ : nj_; }
    static constexpr int components() { return C; }

    /// Underlying flat view of the whole ghosted rectangle — the footprint
    /// handle kernel call sites hand to devcheck::read()/write().
    [[nodiscard]] par::device::DeviceView<T> raw() const { return data_; }

private:
    [[nodiscard]] std::size_t index(int i, int j, int c) const {
        return static_cast<std::size_t>((i + halo_) * stride_i_ + (j + halo_) * C + c);
    }

    par::device::DeviceView<T> data_;
    int halo_ = 0;
    int ni_ = 0;
    int nj_ = 0;
    int stride_i_ = 0;
};

/// A C-component field over the owned+ghost nodes of a LocalGrid2D.
///
/// Storage is a dense row-major array over the ghosted rectangle with the
/// component index fastest (an "array of small structs" layout — fields
/// with C=2..3 doubles stay compact and cache-friendly, per the
/// hpc-parallel guide's "use compact data structures" rule).
///
/// Indexing is in the local frame: owned nodes at [0, ni) x [0, nj),
/// ghosts at negative / >= extent indices (see LocalGrid2D).
template <class T, int C>
class NodeField {
public:
    static_assert(C >= 1);

    explicit NodeField(const LocalGrid2D& grid)
        : halo_(grid.halo_width()), ni_(grid.owned_extent(0)), nj_(grid.owned_extent(1)),
          stride_j_(C), stride_i_((nj_ + 2 * halo_) * C),
          data_(static_cast<std::size_t>(ni_ + 2 * halo_) *
                    static_cast<std::size_t>(nj_ + 2 * halo_) * C,
                T{}) {}

    [[nodiscard]] int halo_width() const { return halo_; }
    [[nodiscard]] int extent(int d) const { return d == 0 ? ni_ : nj_; }
    static constexpr int components() { return C; }

    [[nodiscard]] T& operator()(int i, int j, int c = 0) {
        BEATNIK_ASSERT(in_bounds(i, j, c));
        return data_[index(i, j, c)];
    }
    [[nodiscard]] const T& operator()(int i, int j, int c = 0) const {
        BEATNIK_ASSERT(in_bounds(i, j, c));
        return data_[index(i, j, c)];
    }

    /// Raw storage (ghosted rectangle, row-major, component-fastest).
    /// The const overload counts as a host *read* for the hazard detector
    /// (stale-mirror checks); the mutable overload is the initial-fill /
    /// overwrite path and is not flagged.
    [[nodiscard]] std::vector<T>& storage() { return data_; }
    [[nodiscard]] const std::vector<T>& storage() const {
        par::device::devcheck::host_reads(data_.data(), data_.size() * sizeof(T),
                                          "NodeField::storage");
        return data_;
    }

    /// Set every entry (ghosts included).
    void fill(T value) { std::fill(data_.begin(), data_.end(), value); }

    /// Copy all components at a node from another field of the same shape.
    void copy_node(int i, int j, const NodeField& from) {
        for (int c = 0; c < C; ++c) (*this)(i, j, c) = from(i, j, c);
    }

    /// Pack an index rectangle (all components) into \p out, row-major.
    void pack(const IndexSpace2D& space, std::vector<T>& out) const {
        out.clear();
        out.reserve(space.size() * C);
        for (int i = space.i.begin; i < space.i.end; ++i) {
            for (int j = space.j.begin; j < space.j.end; ++j) {
                for (int c = 0; c < C; ++c) out.push_back((*this)(i, j, c));
            }
        }
    }

    /// Unpack a buffer previously produced by pack() for \p space.
    void unpack(const IndexSpace2D& space, const std::vector<T>& in) {
        unpack_from(space, std::span<const T>(in.data(), in.size()));
    }

    /// Pack an index rectangle directly into caller-provided storage of
    /// exactly space.size() * C elements (the persistent-plan transport
    /// buffer) — no staging vector, no allocation. Storage is (j, c)-
    /// contiguous per row, so each row moves as one block copy.
    void pack_into(const IndexSpace2D& space, std::span<T> out) const {
        BEATNIK_REQUIRE(out.size() == space.size() * C, "pack_into: buffer size mismatch");
        if (space.size() == 0) return;
        par::device::devcheck::host_reads(data_.data(), data_.size() * sizeof(T),
                                          "NodeField::pack_into");
        const std::size_t row = row_elems(space);
        std::size_t k = 0;
        for (int i = space.i.begin; i < space.i.end; ++i, k += row) {
            std::copy_n(&(*this)(i, space.j.begin, 0), row, out.data() + k);
        }
    }

    /// Unpack a span previously produced by pack()/pack_into() for \p space.
    void unpack_from(const IndexSpace2D& space, std::span<const T> in) {
        BEATNIK_REQUIRE(in.size() == space.size() * C, "unpack: buffer size mismatch");
        if (space.size() == 0) return;
        const std::size_t row = row_elems(space);
        std::size_t k = 0;
        for (int i = space.i.begin; i < space.i.end; ++i, k += row) {
            std::copy_n(in.data() + k, row, &(*this)(i, space.j.begin, 0));
        }
    }

    /// Accumulate (+=) a packed span into an index rectangle — the
    /// scatter-add unpack.
    void accumulate_from(const IndexSpace2D& space, std::span<const T> in) {
        BEATNIK_REQUIRE(in.size() == space.size() * C, "accumulate: buffer size mismatch");
        if (space.size() == 0) return;
        const std::size_t row = row_elems(space);
        std::size_t k = 0;
        for (int i = space.i.begin; i < space.i.end; ++i, k += row) {
            T* dst = &(*this)(i, space.j.begin, 0);
            for (std::size_t m = 0; m < row; ++m) dst[m] += in[k + m];
        }
    }

    // ------------------------------------------------------ device mirror

    /// Allocate the device-resident mirror of the ghosted rectangle
    /// (uninitialized — sync_to_device() fills it). Idempotent.
    void enable_device_mirror() {
        if (!dev_) {
            dev_ = par::device::DeviceBuffer<T>(data_.size());
            par::device::devcheck::note_mirror(data_.data(), data_.size() * sizeof(T),
                                               dev_.view().data());
        }
    }

    [[nodiscard]] bool device_mirrored() const { return static_cast<bool>(dev_); }

    /// Enqueue host -> device / device -> host mirror copies on \p q.
    void sync_to_device(par::device::Queue& q) {
        require_mirror();
        par::device::deep_copy(q, dev_.view(), std::span<const T>(data_.data(), data_.size()));
        // Either direction leaves host and device copies in agreement at
        // the copy's position in the stream order.
        par::device::devcheck::note_mirror_sync(q, data_.data(), /*to_host=*/false);
    }
    void sync_to_host(par::device::Queue& q) {
        require_mirror();
        par::device::deep_copy(q, std::span<T>(data_.data(), data_.size()),
                               std::as_const(dev_).view());
        par::device::devcheck::note_mirror_sync(q, data_.data(), /*to_host=*/true);
    }

    /// Device-side (i, j, c) view of the mirror for kernels.
    [[nodiscard]] DeviceFieldView<T, C> device_view() {
        require_mirror();
        return {dev_.view(), halo_, ni_, nj_};
    }
    [[nodiscard]] DeviceFieldView<const T, C> device_view() const {
        require_mirror();
        return {dev_.view(), halo_, ni_, nj_};
    }

    /// Device-kernel pack: rows of the rectangle are copied from the
    /// device mirror straight into \p out — which must be device-
    /// accessible (device memory or a *registered* host staging range,
    /// e.g. a pinned communication-plan buffer; see Plan::pin_buffers).
    /// Asynchronous: complete at q.fence().
    void device_pack_into(par::device::Queue& q, const IndexSpace2D& space,
                          std::span<T> out) const {
        require_mirror();
        BEATNIK_REQUIRE(out.size() == space.size() * C, "device pack: buffer size mismatch");
        BEATNIK_REQUIRE(
            par::device::Runtime::instance().device_accessible(out.data(), out.size_bytes()),
            "device pack target is not device-accessible — pin the staging buffer first");
        if (space.size() == 0) return;
        const std::size_t row = row_elems(space);
        const T* src = dev_.view().data();
        T* dst = out.data();
        const std::size_t base = index(space.i.begin, space.j.begin, 0);
        const auto stride = static_cast<std::size_t>(stride_i_);
        const auto rows = static_cast<std::size_t>(space.i.end - space.i.begin);
        namespace dc = par::device::devcheck;
        // Footprint: the bounding range of the packed rows in the mirror
        // (tight enough that disjoint halo bands stay disjoint), plus the
        // staging target.
        dc::declare(q, "NodeField::device_pack_into",
                    {dc::read(src + base, ((rows - 1) * stride + row) * sizeof(T)),
                     dc::write(out)});
        q.parallel_for(rows, [src, dst, base, stride, row](std::size_t r) {
            std::copy_n(src + base + r * stride, row, dst + r * row);
        });
    }

    /// Device-kernel unpack: the inverse of device_pack_into. \p in must
    /// be device-accessible (a received plan buffer, pinned).
    void device_unpack_from(par::device::Queue& q, const IndexSpace2D& space,
                            std::span<const T> in) {
        run_device_unpack(q, space, in, /*accumulate=*/false);
    }

    /// Device-kernel scatter-add unpack (+=).
    void device_accumulate_from(par::device::Queue& q, const IndexSpace2D& space,
                                std::span<const T> in) {
        run_device_unpack(q, space, in, /*accumulate=*/true);
    }

private:
    void require_mirror() const {
        BEATNIK_REQUIRE(static_cast<bool>(dev_),
                        "field has no device mirror — call enable_device_mirror() first");
    }

    void run_device_unpack(par::device::Queue& q, const IndexSpace2D& space,
                           std::span<const T> in, bool accumulate) {
        require_mirror();
        BEATNIK_REQUIRE(in.size() == space.size() * C, "device unpack: buffer size mismatch");
        BEATNIK_REQUIRE(
            par::device::Runtime::instance().device_accessible(in.data(), in.size_bytes()),
            "device unpack source is not device-accessible — pin the staging buffer first");
        if (space.size() == 0) return;
        const std::size_t row = row_elems(space);
        T* dst = dev_.view().data();
        const T* src = in.data();
        const std::size_t base = index(space.i.begin, space.j.begin, 0);
        const auto stride = static_cast<std::size_t>(stride_i_);
        const auto rows = static_cast<std::size_t>(space.i.end - space.i.begin);
        namespace dc = par::device::devcheck;
        dc::declare(q, accumulate ? "NodeField::device_accumulate_from"
                                  : "NodeField::device_unpack_from",
                    {dc::read(in),
                     dc::write(dst + base, ((rows - 1) * stride + row) * sizeof(T))});
        q.parallel_for(rows, [src, dst, base, stride, row, accumulate](std::size_t r) {
                           T* d = dst + base + r * stride;
                           const T* s = src + r * row;
                           if (accumulate) {
                               for (std::size_t m = 0; m < row; ++m) d[m] += s[m];
                           } else {
                               std::copy_n(s, row, d);
                           }
                       });
    }

    /// Contiguous elements per row of an index rectangle ((j, c) are the
    /// two fastest storage axes).
    [[nodiscard]] static std::size_t row_elems(const IndexSpace2D& space) {
        return static_cast<std::size_t>(space.j.end - space.j.begin) * C;
    }

    [[nodiscard]] bool in_bounds(int i, int j, int c) const {
        return i >= -halo_ && i < ni_ + halo_ && j >= -halo_ && j < nj_ + halo_ && c >= 0 && c < C;
    }
    [[nodiscard]] std::size_t index(int i, int j, int c) const {
        return static_cast<std::size_t>((i + halo_) * stride_i_ + (j + halo_) * stride_j_ + c);
    }

    int halo_;
    int ni_, nj_;
    int stride_j_, stride_i_;
    std::vector<T> data_;
    par::device::DeviceBuffer<T> dev_;   ///< empty unless device-mirrored
};

} // namespace beatnik::grid
