/// \file halo.hpp
/// \brief Width-w structured halo exchange with corner neighbors.
///
/// The Cabana::Grid halo-exchange analogue (paper §3.1: Beatnik uses
/// "two-node-deep stencils" for normals, finite differences and
/// Laplacians). Each rank exchanges up to 8 messages — 4 edges + 4
/// corners — per field. Periodic axes wrap through the topology; at
/// non-periodic boundaries no message is exchanged and ghost values are
/// left for the BoundaryCondition module to fill by extrapolation.
#pragma once

#include <array>
#include <vector>

#include "comm/communicator.hpp"
#include "grid/field.hpp"

namespace beatnik::grid {

/// All 8 neighbor directions of a 2D block, in a fixed order shared by
/// sender and receiver.
inline constexpr std::array<std::array<int, 2>, 8> kNeighborDirs2D{{
    {-1, -1}, {-1, 0}, {-1, 1}, {0, -1}, {0, 1}, {1, -1}, {1, 0}, {1, 1}}};

/// Tag layout: direction index (0..7) + a caller-provided stream id so
/// multiple fields can be in flight without cross-talk.
inline int halo_tag(int dir_index, int stream) {
    return 1000 + stream * 16 + dir_index;
}

/// Exchange ghost layers of \p field with all existing neighbors.
///
/// \p stream distinguishes concurrent exchanges on the same communicator
/// (e.g. position vs vorticity fields).
template <class T, int C>
void halo_exchange(comm::Communicator& comm, const CartTopology2D& topo, const LocalGrid2D& grid,
                   NodeField<T, C>& field, int stream = 0) {
    BEATNIK_REQUIRE(field.halo_width() == grid.halo_width(), "field/grid halo width mismatch");
    if (grid.halo_width() == 0) return;
    const int rank = comm.rank();

    // Post all sends (buffered), then receive. A neighbor at direction d
    // fills our ghost region halo_space(d) with its shared_space(-d); we
    // tag by *our* direction index so the pairing is unambiguous even
    // when the same rank is a neighbor in several directions (small or
    // periodic process grids).
    std::vector<T> buf;
    for (int k = 0; k < 8; ++k) {
        auto [di, dj] = kNeighborDirs2D[static_cast<std::size_t>(k)];
        int nbr = topo.neighbor(rank, di, dj);
        if (nbr < 0) continue;
        field.pack(grid.shared_space(di, dj), buf);
        // The receiver's direction toward us is (-di, -dj); find its index.
        int recv_dir = 7 - k; // kNeighborDirs2D is symmetric: dir[7-k] == -dir[k]
        comm.send(std::span<const T>(buf.data(), buf.size()), nbr, halo_tag(recv_dir, stream));
    }
    std::vector<T> incoming;
    for (int k = 0; k < 8; ++k) {
        auto [di, dj] = kNeighborDirs2D[static_cast<std::size_t>(k)];
        int nbr = topo.neighbor(rank, di, dj);
        if (nbr < 0) continue;
        comm.recv<T>(incoming, nbr, halo_tag(k, stream));
        field.unpack(grid.halo_space(di, dj), incoming);
    }
}

/// Reverse halo exchange ("scatter"): adds the ghost-region values this
/// rank accumulated into the *owner's* corresponding owned nodes. Used by
/// force-accumulation patterns where contributions land in ghosts.
template <class T, int C>
void halo_scatter_add(comm::Communicator& comm, const CartTopology2D& topo,
                      const LocalGrid2D& grid, NodeField<T, C>& field, int stream = 0) {
    BEATNIK_REQUIRE(field.halo_width() == grid.halo_width(), "field/grid halo width mismatch");
    if (grid.halo_width() == 0) return;
    const int rank = comm.rank();

    std::vector<T> buf;
    for (int k = 0; k < 8; ++k) {
        auto [di, dj] = kNeighborDirs2D[static_cast<std::size_t>(k)];
        int nbr = topo.neighbor(rank, di, dj);
        if (nbr < 0) continue;
        field.pack(grid.halo_space(di, dj), buf);
        int recv_dir = 7 - k;
        comm.send(std::span<const T>(buf.data(), buf.size()), nbr, halo_tag(recv_dir, stream));
    }
    std::vector<T> incoming;
    for (int k = 0; k < 8; ++k) {
        auto [di, dj] = kNeighborDirs2D[static_cast<std::size_t>(k)];
        int nbr = topo.neighbor(rank, di, dj);
        if (nbr < 0) continue;
        comm.recv<T>(incoming, nbr, halo_tag(k, stream));
        // Accumulate into the owned band we would have packed for (di,dj).
        auto space = grid.shared_space(di, dj);
        BEATNIK_REQUIRE(incoming.size() == space.size() * C, "scatter: buffer size mismatch");
        std::size_t idx = 0;
        for (int i = space.i.begin; i < space.i.end; ++i) {
            for (int j = space.j.begin; j < space.j.end; ++j) {
                for (int c = 0; c < C; ++c) field(i, j, c) += incoming[idx++];
            }
        }
    }
}

} // namespace beatnik::grid
