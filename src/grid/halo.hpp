/// \file halo.hpp
/// \brief Width-w structured halo exchange with corner neighbors, built on
/// persistent communication plans.
///
/// The Cabana::Grid halo-exchange analogue (paper §3.1: Beatnik uses
/// "two-node-deep stencils" for normals, finite differences and
/// Laplacians). Each rank exchanges up to 8 messages — 4 edges + 4
/// corners — per field. Periodic axes wrap through the topology; at
/// non-periodic boundaries no message is exchanged and ghost values are
/// left for the BoundaryCondition module to fill by extrapolation.
///
/// The primary API is HaloPlan: built once per (topology, grid, stream)
/// it pre-registers every neighbor channel, and each exchange() /
/// scatter_add() iteration packs straight into the transport buffers and
/// unpacks messages in arrival order — zero per-iteration allocation and
/// no mailbox matching. The halo_exchange()/halo_scatter_add() free
/// functions remain as deprecated thin wrappers that build a throwaway
/// plan per call (the channels themselves persist in the context, so even
/// the wrappers reuse buffers across calls).
#pragma once

#include <array>
#include <vector>

#include "comm/plan.hpp"
#include "grid/field.hpp"

namespace beatnik::grid {

/// All 8 neighbor directions of a 2D block, in a fixed order shared by
/// sender and receiver.
inline constexpr std::array<std::array<int, 2>, 8> kNeighborDirs2D{{
    {-1, -1}, {-1, 0}, {-1, 1}, {0, -1}, {0, 1}, {1, -1}, {1, 0}, {1, 1}}};

/// Tag of the halo channel for direction index \p dir_index (0..7) and
/// caller-provided stream id, drawn from the reserved plan tag band (see
/// comm/types.hpp) so halo traffic provably cannot collide with user tags
/// or the collective tag sequence.
inline int halo_tag(int dir_index, int stream) {
    return comm::tags::halo(dir_index, stream);
}

/// Persistent halo-exchange plan for one field shape.
///
/// Build once per (communicator, topology, grid, components); the
/// constructor registers one send and one recv channel per existing
/// neighbor direction. Each direction gets its own tag, so the plan is
/// correct even on degenerate process grids (1xN, periodic) where the
/// same rank is a neighbor in several directions — including self-sends.
///
/// Tagging: by default (\p stream == kAutoStream) the plan draws a block
/// of 8 direction tags from the communicator's plan sequence, so any
/// number of persistent plans can coexist on one communicator as long as
/// they are built collectively in the same order. A fixed \p stream >= 0
/// instead uses the halo tag sub-band (tags::halo) — stable across
/// rebuilds, which is what lets the deprecated free-function wrappers
/// reuse the same channels call after call, but two *live* plans must
/// then never share a stream.
template <class T, int C>
class HaloPlan {
public:
    static_assert(std::is_trivially_copyable_v<T>,
                  "halo-exchanged elements must be trivially copyable");
    static_assert(alignof(T) <= __STDCPP_DEFAULT_NEW_ALIGNMENT__,
                  "channel buffers only guarantee default new alignment");

    /// Draw direction tags from the communicator's plan sequence.
    static constexpr int kAutoStream = -1;

    HaloPlan(comm::Communicator& comm, const CartTopology2D& topo, const LocalGrid2D& grid,
             int stream = kAutoStream)
        : grid_(grid) {
        const int rank = comm.rank();
        if (grid.halo_width() == 0) return;   // nothing to exchange, empty plan
        // All 8 tags are allocated unconditionally (even for directions
        // with no neighbor) so the plan-sequence counter stays in lockstep
        // across ranks with different neighbor counts.
        std::array<int, 8> dir_tag;
        for (int k = 0; k < 8; ++k) {
            dir_tag[static_cast<std::size_t>(k)] =
                stream == kAutoStream ? comm.new_plan_tag() : halo_tag(k, stream);
        }
        auto b = comm::Plan::builder(comm);
        for (int k = 0; k < 8; ++k) {
            auto [di, dj] = kNeighborDirs2D[static_cast<std::size_t>(k)];
            int nbr = topo.neighbor(rank, di, dj);
            if (nbr < 0) continue;
            const std::size_t bytes = grid.shared_space(di, dj).size() * C * sizeof(T);
            // A neighbor at direction d fills our ghost region
            // halo_space(d) with its shared_space(-d); messages are tagged
            // by the *receiver's* direction index so the pairing is
            // unambiguous even when the same rank is a neighbor in several
            // directions. kNeighborDirs2D is symmetric: dir[7-k] == -dir[k].
            Dir dir;
            dir.k = k;
            dir.send_slot = b.add_send(nbr, dir_tag[static_cast<std::size_t>(7 - k)], bytes);
            dir.recv_slot = b.add_recv(nbr, dir_tag[static_cast<std::size_t>(k)], bytes);
            dirs_.push_back(dir);
        }
        if (!dirs_.empty()) plan_ = b.build();
    }

    /// Switch the plan to device-side packing: every transport buffer is
    /// pre-sized to its maximum and registered (pinned) with the device
    /// runtime, and subsequent exchange()/scatter_add() calls on device-
    /// mirrored fields pack and unpack with device kernels on \p q,
    /// straight between the field's device mirror and the pinned plan
    /// buffers — one staged copy, no host-side pack loop, still zero
    /// per-iteration allocation. Call once, between iterations.
    ///
    /// With \p overlap (the default) each direction's publish() fires as
    /// soon as *its* pack kernel completes — a per-direction Event instead
    /// of one post-pack fence — so the first messages are on the wire
    /// while later directions are still packing, and each recv slot is
    /// released as soon as its own unpack kernel finishes. overlap=false
    /// keeps the older fence-everything schedule (benchmark reference).
    void enable_device(par::device::Queue& q, bool overlap = true) {
        device_queue_ = &q;
        overlap_ = overlap;
        arrived_.reserve(dirs_.size());
        send_events_.resize(dirs_.size());
        recv_events_.resize(dirs_.size());
        if (plan_.valid()) {
            plan_.pin_buffers([this](std::span<std::byte> buf) {
                pinned_.emplace_back(buf);
            });
        }
    }

    [[nodiscard]] bool device_enabled() const { return device_queue_ != nullptr; }

    /// Exchange ghost layers of \p field with all existing neighbors:
    /// pack shared bands into the transport buffers, then unpack ghost
    /// bands in message-arrival order (unpacking one neighbor overlaps
    /// the delivery of the rest).
    void exchange(grid::NodeField<T, C>& field) {
        run(field, /*scatter=*/false);
    }

    /// Reverse halo exchange ("scatter"): adds the ghost-region values
    /// this rank accumulated into the *owner's* corresponding owned nodes.
    /// Used by force-accumulation patterns where contributions land in
    /// ghosts.
    void scatter_add(grid::NodeField<T, C>& field) {
        run(field, /*scatter=*/true);
    }

    /// The plan's send schedule (world ranks / bytes) for the netsim
    /// machine model; empty when this rank has no neighbors.
    [[nodiscard]] std::vector<comm::PlanMsg> send_schedule() const {
        return plan_.valid() ? plan_.send_schedule() : std::vector<comm::PlanMsg>{};
    }

    [[nodiscard]] int num_neighbors() const { return static_cast<int>(dirs_.size()); }

private:
    struct Dir {
        int k = 0;           ///< direction index into kNeighborDirs2D
        int send_slot = -1;
        int recv_slot = -1;
    };

    void run(grid::NodeField<T, C>& field, bool scatter) {
        BEATNIK_REQUIRE(field.halo_width() == grid_.halo_width(),
                        "field/grid halo width mismatch");
        if (dirs_.empty()) return;
        // A device-enabled plan still serves host-resident fields through
        // the host path (pinned channel buffers are ordinary host memory
        // to host code) — this is what lets one ProblemManager exchange a
        // caller's unmirrored scratch field mid-run.
        if (device_queue_ != nullptr && field.device_mirrored()) {
            run_device(field, scatter);
            return;
        }
        plan_.start();
        for (const Dir& d : dirs_) {
            auto [di, dj] = kNeighborDirs2D[static_cast<std::size_t>(d.k)];
            // Forward: send the owned shared band; reverse: send the ghost
            // band we accumulated into.
            auto space = scatter ? grid_.halo_space(di, dj) : grid_.shared_space(di, dj);
            auto buf = plan_.send_buffer(d.send_slot, space.size() * C * sizeof(T));
            namespace dc = par::device::devcheck;
            dc::channel_send_acquire(buf.data());
            field.pack_into(space, std::span<T>(reinterpret_cast<T*>(buf.data()),
                                                space.size() * C));
            dc::channel_publish(buf.data(), "HaloPlan host publish");
            plan_.publish(d.send_slot);
        }
        // Unpack in arrival order; release each slot as soon as it is
        // unpacked so the sender can refill it without waiting for our
        // next iteration.
        for (int done = 0; done < static_cast<int>(dirs_.size()); ++done) {
            int s = plan_.wait_any_recv();
            BEATNIK_ASSERT(s >= 0);
            const Dir& d = slot_dir(s);
            auto [di, dj] = kNeighborDirs2D[static_cast<std::size_t>(d.k)];
            auto in = plan_.recv_view_as<T>(s);
            namespace dc = par::device::devcheck;
            dc::channel_recv_acquire(in.data(), "HaloPlan host recv");
            if (scatter) {
                field.accumulate_from(grid_.shared_space(di, dj), in);
            } else {
                field.unpack_from(grid_.halo_space(di, dj), in);
            }
            dc::channel_release(in.data(), "HaloPlan host release");
            plan_.release_recv(s);
        }
        BEATNIK_ASSERT(plan_.wait_any_recv() == -1);
    }

    /// Device iteration: device kernels pack every direction's shared
    /// band from the field's device mirror into the pinned transport
    /// buffers, then each direction publishes as soon as *its* pack
    /// kernel completes (a per-direction Event on the in-order queue), so
    /// early directions are in flight while later ones are still packing.
    /// Arrivals are unpacked by device kernels in arrival order and each
    /// slot is released as soon as its own unpack event fires — the
    /// sender can refill it without waiting for the whole iteration.
    void run_device(grid::NodeField<T, C>& field, bool scatter) {
        BEATNIK_REQUIRE(field.device_mirrored(),
                        "device halo exchange needs a device-mirrored field");
        namespace dc = par::device::devcheck;
        par::device::Queue& q = *device_queue_;
        plan_.start();
        send_keys_.assign(dirs_.size(), nullptr);
        recv_keys_.assign(dirs_.size(), nullptr);
        for (std::size_t n = 0; n < dirs_.size(); ++n) {
            const Dir& d = dirs_[n];
            auto [di, dj] = kNeighborDirs2D[static_cast<std::size_t>(d.k)];
            auto space = scatter ? grid_.halo_space(di, dj) : grid_.shared_space(di, dj);
            auto buf = plan_.send_buffer(d.send_slot, space.size() * C * sizeof(T));
            send_keys_[n] = buf.data();
            dc::channel_send_acquire(buf.data());
            field.device_pack_into(q, space,
                                   std::span<T>(reinterpret_cast<T*>(buf.data()),
                                                space.size() * C));
            if (overlap_) q.record_event_into(send_events_[n]);
        }
        if (overlap_) {
            // Publish in pack-completion order (packs run in queue order).
            for (std::size_t n = 0; n < dirs_.size(); ++n) {
                send_events_[n].wait();
                dc::channel_publish(send_keys_[n], "HaloPlan overlapped publish");
                plan_.publish(dirs_[n].send_slot);
            }
        } else {
            q.fence(); // devcheck: fenced — non-overlap reference schedule
            for (std::size_t n = 0; n < dirs_.size(); ++n) {
                dc::channel_publish(send_keys_[n], "HaloPlan fenced publish");
                plan_.publish(dirs_[n].send_slot);
            }
        }
        // Unpack in arrival order; the kernels read the pinned recv
        // buffers in place, so each slot is released only once its unpack
        // event (or the closing fence) proves the reads are done.
        arrived_.clear();
        for (int done = 0; done < static_cast<int>(dirs_.size()); ++done) {
            int s = plan_.wait_any_recv();
            BEATNIK_ASSERT(s >= 0);
            const Dir& d = slot_dir(s);
            auto [di, dj] = kNeighborDirs2D[static_cast<std::size_t>(d.k)];
            auto in = plan_.recv_view_as<T>(s);
            recv_keys_[static_cast<std::size_t>(s)] = in.data();
            dc::channel_recv_acquire(in.data(), "HaloPlan device recv");
            if (scatter) {
                field.device_accumulate_from(q, grid_.shared_space(di, dj), in);
            } else {
                field.device_unpack_from(q, grid_.halo_space(di, dj), in);
            }
            if (overlap_) q.record_event_into(recv_events_[static_cast<std::size_t>(s)]);
            arrived_.push_back(s);
        }
        BEATNIK_ASSERT(plan_.wait_any_recv() == -1);
        if (overlap_) {
            for (int s : arrived_) {
                recv_events_[static_cast<std::size_t>(s)].wait();
                dc::channel_release(recv_keys_[static_cast<std::size_t>(s)],
                                    "HaloPlan overlapped release");
                plan_.release_recv(s);
            }
        } else {
            q.fence(); // devcheck: fenced — non-overlap reference schedule
            for (int s : arrived_) {
                dc::channel_release(recv_keys_[static_cast<std::size_t>(s)],
                                    "HaloPlan fenced release");
                plan_.release_recv(s);
            }
        }
    }

    const Dir& slot_dir(int recv_slot) const {
        // recv slots were allocated in dirs_ order, one per direction.
        BEATNIK_ASSERT(recv_slot >= 0 && recv_slot < static_cast<int>(dirs_.size()));
        return dirs_[static_cast<std::size_t>(recv_slot)];
    }

    LocalGrid2D grid_;
    std::vector<Dir> dirs_;
    comm::Plan plan_;
    par::device::Queue* device_queue_ = nullptr;
    bool overlap_ = true;
    std::vector<par::device::ScopedHostRegistration> pinned_;
    std::vector<int> arrived_;   ///< per-iteration scratch (capacity reused)
    /// Per-direction completion markers, re-recorded each iteration
    /// (allocation-free via record_event_into).
    std::vector<par::device::Event> send_events_;
    std::vector<par::device::Event> recv_events_;
    /// devcheck channel keys captured at acquire time: publish/release
    /// happen in later loops where the buffer spans are out of scope.
    std::vector<const void*> send_keys_;
    std::vector<const void*> recv_keys_;
};

/// Deprecated: exchange ghost layers of \p field with all existing
/// neighbors. Thin wrapper that builds a HaloPlan per call — prefer
/// building a HaloPlan once per field shape and calling exchange() on it
/// (the plan path is allocation-free per iteration; this wrapper is not).
template <class T, int C>
void halo_exchange(comm::Communicator& comm, const CartTopology2D& topo, const LocalGrid2D& grid,
                   NodeField<T, C>& field, int stream = 0) {
    BEATNIK_REQUIRE(field.halo_width() == grid.halo_width(), "field/grid halo width mismatch");
    if (grid.halo_width() == 0) return;
    HaloPlan<T, C>(comm, topo, grid, stream).exchange(field);
}

/// Deprecated: reverse halo exchange ("scatter-add"). Thin wrapper over
/// HaloPlan::scatter_add — prefer a persistent HaloPlan.
template <class T, int C>
void halo_scatter_add(comm::Communicator& comm, const CartTopology2D& topo,
                      const LocalGrid2D& grid, NodeField<T, C>& field, int stream = 0) {
    BEATNIK_REQUIRE(field.halo_width() == grid.halo_width(), "field/grid halo width mismatch");
    if (grid.halo_width() == 0) return;
    HaloPlan<T, C>(comm, topo, grid, stream).scatter_add(field);
}

} // namespace beatnik::grid
