/// \file cart_topology.hpp
/// \brief 2D Cartesian arrangement of ranks (the MPI_Cart_create analogue).
///
/// Beatnik decomposes both the 2D surface mesh and the 3D spatial mesh
/// (x/y only, per the paper §3.2) into a 2D grid of blocks. This class
/// owns the rank <-> (ci, cj) coordinate mapping, per-axis periodicity,
/// and neighbor lookup including diagonal (corner) neighbors.
#pragma once

#include <array>

#include "base/error.hpp"

namespace beatnik::grid {

/// Factor \p nranks into a near-square 2D grid (MPI_Dims_create analogue).
/// Returns {p_i, p_j} with p_i * p_j == nranks and p_i <= p_j as balanced
/// as possible.
inline std::array<int, 2> dims_create_2d(int nranks) {
    BEATNIK_REQUIRE(nranks >= 1, "dims_create_2d: need at least one rank");
    std::array<int, 2> best{1, nranks};
    for (int a = 1; a * a <= nranks; ++a) {
        if (nranks % a == 0) best = {a, nranks / a};
    }
    return best;
}

class CartTopology2D {
public:
    /// Arrange \p nranks into dims (auto-factored when {0,0} is passed).
    CartTopology2D(int nranks, std::array<int, 2> dims, std::array<bool, 2> periodic)
        : periodic_(periodic) {
        if (dims[0] == 0 && dims[1] == 0) dims = dims_create_2d(nranks);
        BEATNIK_REQUIRE(dims[0] >= 1 && dims[1] >= 1 && dims[0] * dims[1] == nranks,
                        "topology dims must multiply to the rank count");
        dims_ = dims;
    }

    [[nodiscard]] int size() const { return dims_[0] * dims_[1]; }
    [[nodiscard]] const std::array<int, 2>& dims() const { return dims_; }
    [[nodiscard]] bool periodic(int axis) const { return periodic_[static_cast<std::size_t>(axis)]; }

    /// Block coordinates of a rank (row-major: rank = ci * pj + cj).
    [[nodiscard]] std::array<int, 2> coords_of(int rank) const {
        BEATNIK_REQUIRE(rank >= 0 && rank < size(), "rank out of range");
        return {rank / dims_[1], rank % dims_[1]};
    }

    /// Rank at block coordinates, wrapping periodic axes; -1 when the
    /// coordinate falls outside a non-periodic boundary.
    [[nodiscard]] int rank_of(int ci, int cj) const {
        if (!wrap(ci, dims_[0], periodic_[0])) return -1;
        if (!wrap(cj, dims_[1], periodic_[1])) return -1;
        return ci * dims_[1] + cj;
    }

    /// Neighbor of \p rank at block offset (di, dj); -1 past a
    /// non-periodic edge.
    [[nodiscard]] int neighbor(int rank, int di, int dj) const {
        auto c = coords_of(rank);
        return rank_of(c[0] + di, c[1] + dj);
    }

private:
    static bool wrap(int& c, int n, bool periodic) {
        if (c >= 0 && c < n) return true;
        if (!periodic) return false;
        c = ((c % n) + n) % n;
        return true;
    }

    std::array<int, 2> dims_{1, 1};
    std::array<bool, 2> periodic_{false, false};
};

} // namespace beatnik::grid
