/// \file global_mesh.hpp
/// \brief Global description of the logically rectangular surface mesh.
#pragma once

#include <array>

#include "base/error.hpp"

namespace beatnik::grid {

/// The global 2D node mesh: physical bounds, node counts, periodicity.
///
/// Node coordinates follow the usual structured-mesh conventions:
///  * periodic axis: nodes at lo + i*(hi-lo)/n for i in [0, n) — the
///    "last" node is the wrap-around image of node 0 and is not stored;
///  * non-periodic axis: nodes at lo + i*(hi-lo)/(n-1) covering [lo, hi].
class GlobalMesh2D {
public:
    GlobalMesh2D(std::array<double, 2> low, std::array<double, 2> high,
                 std::array<int, 2> num_nodes, std::array<bool, 2> periodic)
        : low_(low), high_(high), num_nodes_(num_nodes), periodic_(periodic) {
        for (int d = 0; d < 2; ++d) {
            BEATNIK_REQUIRE(high[static_cast<std::size_t>(d)] > low[static_cast<std::size_t>(d)],
                            "mesh bounds must be increasing");
            BEATNIK_REQUIRE(num_nodes[static_cast<std::size_t>(d)] >= 2,
                            "mesh needs at least 2 nodes per dimension");
        }
    }

    [[nodiscard]] double low(int d) const { return low_[static_cast<std::size_t>(d)]; }
    [[nodiscard]] double high(int d) const { return high_[static_cast<std::size_t>(d)]; }
    [[nodiscard]] double extent(int d) const { return high(d) - low(d); }
    [[nodiscard]] int num_nodes(int d) const { return num_nodes_[static_cast<std::size_t>(d)]; }
    [[nodiscard]] bool periodic(int d) const { return periodic_[static_cast<std::size_t>(d)]; }

    /// Spacing between adjacent nodes along axis \p d.
    [[nodiscard]] double spacing(int d) const {
        int cells = periodic(d) ? num_nodes(d) : num_nodes(d) - 1;
        return extent(d) / cells;
    }

    /// Physical coordinate of (possibly out-of-range, for ghosts) node
    /// index \p i along axis \p d. Indices beyond the edge continue the
    /// uniform spacing, which is exactly what periodic ghost correction
    /// and free-boundary extrapolation expect.
    [[nodiscard]] double coordinate(int d, int i) const {
        return low(d) + spacing(d) * i;
    }

    [[nodiscard]] std::size_t total_nodes() const {
        return static_cast<std::size_t>(num_nodes(0)) * static_cast<std::size_t>(num_nodes(1));
    }

private:
    std::array<double, 2> low_;
    std::array<double, 2> high_;
    std::array<int, 2> num_nodes_;
    std::array<bool, 2> periodic_;
};

} // namespace beatnik::grid
