/// \file migrate.hpp
/// \brief Particle migration between arbitrary decompositions.
///
/// The Cabana `migrate` analogue and the communication core of the
/// paper's CutoffBRSolver: every derivative evaluation moves each surface
/// node from its 2D mesh-index owner to its 3D position-based owner and
/// back (paper §3.2). The pattern is an all-to-all keyed by a per-particle
/// destination rank.
///
/// The primary API is MigratePlan: built once per recurring migration
/// (one persistent channel per peer pair), execute() packs particles
/// straight into the transport buffers and receives counts implicitly
/// from the arriving message sizes — no count pre-exchange, no staging
/// copy, and steady-state zero allocation on the communication path
/// (channel buffers grow once to the high-water mark; only the returned
/// result vector is allocated per call). The migrate()/distribute() free
/// functions remain as the legacy alltoallv-collective path.
#pragma once

#include <span>
#include <vector>

#include "comm/plan.hpp"
#include "par/device/device.hpp"

namespace beatnik::grid {

/// Persistent migration plan over all peers of a communicator.
///
/// Build collectively (every rank constructs the plan in the same order —
/// the tag is drawn from the communicator's plan sequence). One plan
/// serves any particle type P and any per-call destination distribution;
/// reuse it for the same recurring pattern rather than rebuilding.
template <class P>
class MigratePlan {
public:
    static_assert(std::is_trivially_copyable_v<P>,
                  "migrated particles must be trivially copyable");
    static_assert(alignof(P) <= __STDCPP_DEFAULT_NEW_ALIGNMENT__,
                  "channel buffers only guarantee default new alignment");

    explicit MigratePlan(comm::Communicator& comm) : comm_(&comm) {
        const int p = comm.size();
        const int tag = comm.new_plan_tag();
        auto b = comm::Plan::builder(comm);
        slots_.resize(static_cast<std::size_t>(p));
        for (int r = 0; r < p; ++r) {
            if (r == comm.rank()) continue;
            // Initial capacity 0: channels grow to the high-water mark of
            // actual traffic on first use and stay there.
            slots_[static_cast<std::size_t>(r)].send = b.add_send(r, tag, 0);
            slots_[static_cast<std::size_t>(r)].recv = b.add_recv(r, tag, 0);
            recv_peer_.push_back(r);
        }
        if (p > 1) plan_ = b.build();
        sendcounts_.resize(static_cast<std::size_t>(p));
        cursors_.resize(static_cast<std::size_t>(p));
    }

    /// Exchange particles so each lands on its destination rank. Returns
    /// the particles received by this rank, grouped by source rank in
    /// ascending order (self-owned particles included). Allocates the
    /// result vector each call — steady-state loops that keep persistent
    /// receive staging should use execute_into().
    [[nodiscard]] std::vector<P> execute(std::span<const P> particles,
                                         std::span<const int> destinations) {
        std::vector<P> result;
        execute_into(particles, destinations, [&result](std::size_t total) {
            result.resize(total);
            return result.data();
        });
        return result;
    }

    /// Allocation-free variant of execute(): once the received total is
    /// known, \p get_out(total) must return a P* with room for \p total
    /// elements (callers hand out persistent grow-only staging, e.g. a
    /// PinnedStore the device pipeline's kernels then read in place).
    /// Returns the received count; layout is identical to execute().
    template <class GetOut>
    std::size_t execute_into(std::span<const P> particles, std::span<const int> destinations,
                             GetOut&& get_out) {
        BEATNIK_REQUIRE(particles.size() == destinations.size(),
                        "migrate: one destination per particle required");
        const int p = comm_->size();
        const int rank = comm_->rank();
        if (p == 1) {
            P* out = get_out(particles.size());
            std::copy(particles.begin(), particles.end(), out);
            return particles.size();
        }

        std::fill(sendcounts_.begin(), sendcounts_.end(), std::size_t{0});
        for (int dst : destinations) {
            BEATNIK_REQUIRE(dst >= 0 && dst < p, "migrate: destination rank out of range");
            ++sendcounts_[static_cast<std::size_t>(dst)];
        }

        // Acquire every transport buffer, then pack all particles in one
        // pass, writing each straight into its destination slot.
        namespace dc = par::device::devcheck;
        plan_.start();
        self_buf_.clear();
        self_buf_.reserve(sendcounts_[static_cast<std::size_t>(rank)]);
        chan_keys_.assign(static_cast<std::size_t>(p), nullptr);
        for (int r = 0; r < p; ++r) {
            if (r == rank) continue;
            auto buf = plan_.send_buffer(slots_[static_cast<std::size_t>(r)].send,
                                         sendcounts_[static_cast<std::size_t>(r)] * sizeof(P));
            chan_keys_[static_cast<std::size_t>(r)] = buf.data();
            dc::channel_send_acquire(buf.data());
            cursors_[static_cast<std::size_t>(r)] = reinterpret_cast<P*>(buf.data());
        }
        for (std::size_t k = 0; k < particles.size(); ++k) {
            const int dst = destinations[k];
            if (dst == rank) {
                self_buf_.push_back(particles[k]);
            } else {
                *cursors_[static_cast<std::size_t>(dst)]++ = particles[k];
            }
        }
        for (int r = 0; r < p; ++r) {
            if (r == rank) continue;
            dc::channel_publish(chan_keys_[static_cast<std::size_t>(r)],
                                "MigratePlan host publish");
            plan_.publish(slots_[static_cast<std::size_t>(r)].send);
        }

        // Drain every arrival (sizes are implicit in the messages), then
        // assemble grouped by source rank ascending.
        plan_.wait();
        std::size_t total = self_buf_.size();
        for (int r : recv_peer_) {
            total += plan_.recv_view(slots_[static_cast<std::size_t>(r)].recv).size() / sizeof(P);
        }
        P* out = get_out(total);
        for (int r = 0; r < p; ++r) {
            if (r == rank) {
                out = std::copy(self_buf_.begin(), self_buf_.end(), out);
            } else {
                auto in = plan_.recv_view_as<P>(slots_[static_cast<std::size_t>(r)].recv);
                dc::channel_recv_acquire(in.data(), "MigratePlan host recv");
                out = std::copy(in.begin(), in.end(), out);
                dc::channel_release(in.data(), "MigratePlan host release");
                plan_.release_recv(slots_[static_cast<std::size_t>(r)].recv);
            }
        }
        return total;
    }

    /// Device-resident variant: \p particles live on the device; a device
    /// kernel scatters them straight into the plan's transport buffers
    /// (registered for the iteration — migration buffers grow to the
    /// high-water mark, so they are pinned per call, unlike the fixed
    /// halo buffers), and arrivals are unpacked by device kernels into
    /// \p out, grouped by source rank ascending with byte-identical
    /// layout to the host execute(). Destination ranks stay on the host
    /// (they are computed from host-side ownership logic); the particle
    /// payload itself never takes a host round-trip. Returns the received
    /// particle count; \p out grows as needed (grow-only).
    std::size_t execute_device(par::device::Queue& q,
                               par::device::DeviceView<const P> particles,
                               std::span<const int> destinations,
                               par::device::DeviceBuffer<P>& out) {
        BEATNIK_REQUIRE(particles.size() == destinations.size(),
                        "migrate: one destination per particle required");
        const int p = comm_->size();
        const int rank = comm_->rank();
        if (p == 1) {
            if (out.size() < particles.size()) out = par::device::DeviceBuffer<P>(particles.size());
            par::device::deep_copy(q, out.view().subview(0, particles.size()), particles);
            q.fence(); // devcheck: fenced — single-rank result is consumed immediately
            return particles.size();
        }

        // Host pass: counts and a deterministic slot per particle (its
        // rank within its destination block, in input order) so the
        // scatter kernel needs no atomics and reproduces the host pack's
        // byte layout exactly.
        std::fill(sendcounts_.begin(), sendcounts_.end(), std::size_t{0});
        slot_of_.resize(destinations.size());
        for (std::size_t k = 0; k < destinations.size(); ++k) {
            const int dst = destinations[k];
            BEATNIK_REQUIRE(dst >= 0 && dst < p, "migrate: destination rank out of range");
            slot_of_[k] = sendcounts_[static_cast<std::size_t>(dst)]++;
        }

        namespace dc = par::device::devcheck;
        plan_.start();
        pinned_.clear();
        std::fill(cursors_.begin(), cursors_.end(), nullptr);
        chan_keys_.assign(static_cast<std::size_t>(p), nullptr);
        dc_regions_.clear();
        dc_regions_.push_back(dc::read(particles.data(), particles.size() * sizeof(P)));
        for (int r = 0; r < p; ++r) {
            if (r == rank) continue;
            auto buf = plan_.send_buffer(slots_[static_cast<std::size_t>(r)].send,
                                         sendcounts_[static_cast<std::size_t>(r)] * sizeof(P));
            chan_keys_[static_cast<std::size_t>(r)] = buf.data();
            dc::channel_send_acquire(buf.data());
            pinned_.emplace_back(std::span<const std::byte>(buf.data(), buf.size()));
            cursors_[static_cast<std::size_t>(r)] = reinterpret_cast<P*>(buf.data());
            dc_regions_.push_back(dc::write(buf.data(), buf.size()));
        }
        {
            const P* src = particles.data();
            const int* dest = destinations.data();
            const std::size_t* slot = slot_of_.data();
            P* const* cur = cursors_.data();
            dc::declare(q, "MigratePlan scatter", dc_regions_);
            q.parallel_for(particles.size(), [src, dest, slot, cur, rank](std::size_t k) {
                const int dst = dest[k];
                if (dst != rank) cur[dst][slot[k]] = src[k];
            });
        }
        q.fence(); // devcheck: fenced — scatter must land before publish
        for (int r = 0; r < p; ++r) {
            if (r == rank) continue;
            dc::channel_publish(chan_keys_[static_cast<std::size_t>(r)],
                                "MigratePlan device publish");
            plan_.publish(slots_[static_cast<std::size_t>(r)].send);
        }

        // Drain arrivals, size the output, then unpack with device
        // kernels: peers' blocks stream from the pinned recv buffers,
        // the self block gathers device -> device through its slot map.
        plan_.wait();
        const std::size_t self_count = sendcounts_[static_cast<std::size_t>(rank)];
        std::size_t total = self_count;
        for (int r : recv_peer_) {
            total += plan_.recv_view(slots_[static_cast<std::size_t>(r)].recv).size() / sizeof(P);
        }
        if (out.size() < total) out = par::device::DeviceBuffer<P>(total);
        std::size_t off = 0;
        for (int r = 0; r < p; ++r) {
            if (r == rank) {
                const P* src = particles.data();
                const int* dest = destinations.data();
                const std::size_t* slot = slot_of_.data();
                P* dst = out.view().data() + off;
                dc::declare(q, "MigratePlan self-gather",
                            {dc::read(src, particles.size() * sizeof(P)),
                             dc::write(dst, self_count * sizeof(P))});
                q.parallel_for(particles.size(), [src, dest, slot, dst, rank](std::size_t k) {
                    if (dest[k] == rank) dst[slot[k]] = src[k];
                });
                off += self_count;
            } else {
                auto in = plan_.recv_view_as<P>(slots_[static_cast<std::size_t>(r)].recv);
                chan_keys_[static_cast<std::size_t>(r)] = in.data();
                dc::channel_recv_acquire(in.data(), "MigratePlan device recv");
                pinned_.emplace_back(std::span<const std::byte>(
                    reinterpret_cast<const std::byte*>(in.data()), in.size_bytes()));
                q.copy_bytes(out.view().data() + off, in.data(), in.size_bytes());
                off += in.size();
            }
        }
        q.fence(); // devcheck: fenced — unpack copies must retire before unpin
        // Unregister before releasing the slots: a released peer may
        // immediately re-pin the same (reused) channel buffer with a
        // different message size, which the registry rejects while our
        // old registration is still live.
        pinned_.clear();
        for (int r : recv_peer_) {
            dc::channel_release(chan_keys_[static_cast<std::size_t>(r)],
                                "MigratePlan device release");
            plan_.release_recv(slots_[static_cast<std::size_t>(r)].recv);
        }
        return total;
    }

private:
    struct PeerSlots {
        int send = -1;
        int recv = -1;
    };

    comm::Communicator* comm_;
    comm::Plan plan_;
    std::vector<PeerSlots> slots_;
    std::vector<int> recv_peer_;
    std::vector<std::size_t> sendcounts_;
    std::vector<P*> cursors_;
    std::vector<P> self_buf_;
    std::vector<std::size_t> slot_of_;                       ///< device path scratch
    std::vector<par::device::ScopedHostRegistration> pinned_;
    /// devcheck scratch (capacity reused): per-rank channel keys captured
    /// at acquire time, and the scatter kernel's per-peer footprint.
    std::vector<const void*> chan_keys_;
    std::vector<par::device::devcheck::Region> dc_regions_;
};

/// Legacy path: exchange particles via the alltoallv collective.
///
/// \param comm         communicator to exchange on
/// \param particles    local particles (any trivially copyable record)
/// \param destinations destination rank per particle (same length)
/// \return particles received by this rank, grouped by source rank in
///         ascending order (self-owned particles included).
///
/// Prefer a persistent MigratePlan for recurring migrations — it skips
/// the count pre-exchange and the pack/unpack staging copies.
template <class P>
[[nodiscard]] std::vector<P> migrate(comm::Communicator& comm, std::span<const P> particles,
                                     std::span<const int> destinations) {
    BEATNIK_REQUIRE(particles.size() == destinations.size(),
                    "migrate: one destination per particle required");
    const int p = comm.size();

    // Bucket by destination. Two passes keep the packed buffer contiguous
    // (counts first, then placement) without per-bucket vectors.
    std::vector<std::size_t> sendcounts(static_cast<std::size_t>(p), 0);
    for (int dst : destinations) {
        BEATNIK_REQUIRE(dst >= 0 && dst < p, "migrate: destination rank out of range");
        ++sendcounts[static_cast<std::size_t>(dst)];
    }
    std::vector<std::size_t> offsets(static_cast<std::size_t>(p) + 1, 0);
    for (int r = 0; r < p; ++r) {
        offsets[static_cast<std::size_t>(r) + 1] =
            offsets[static_cast<std::size_t>(r)] + sendcounts[static_cast<std::size_t>(r)];
    }
    std::vector<P> packed(particles.size());
    std::vector<std::size_t> cursor(offsets.begin(), offsets.end() - 1);
    for (std::size_t k = 0; k < particles.size(); ++k) {
        packed[cursor[static_cast<std::size_t>(destinations[k])]++] = particles[k];
    }

    std::vector<std::size_t> recvcounts;
    return comm.alltoallv(std::span<const P>(packed), std::span<const std::size_t>(sendcounts),
                          recvcounts);
}

/// Like migrate(), but a particle may be sent to *several* ranks (ghost
/// distribution). \p destinations_per_particle holds, for particle k, the
/// half-open range [dest_offsets[k], dest_offsets[k+1]) of entries in
/// \p dest_ranks.
template <class P>
[[nodiscard]] std::vector<P> distribute(comm::Communicator& comm, std::span<const P> particles,
                                        std::span<const std::size_t> dest_offsets,
                                        std::span<const int> dest_ranks) {
    BEATNIK_REQUIRE(dest_offsets.size() == particles.size() + 1,
                    "distribute: offsets must have size N+1");
    const int p = comm.size();
    std::vector<std::size_t> sendcounts(static_cast<std::size_t>(p), 0);
    for (int dst : dest_ranks) {
        BEATNIK_REQUIRE(dst >= 0 && dst < p, "distribute: destination rank out of range");
        ++sendcounts[static_cast<std::size_t>(dst)];
    }
    std::vector<std::size_t> offsets(static_cast<std::size_t>(p) + 1, 0);
    for (int r = 0; r < p; ++r) {
        offsets[static_cast<std::size_t>(r) + 1] =
            offsets[static_cast<std::size_t>(r)] + sendcounts[static_cast<std::size_t>(r)];
    }
    std::vector<P> packed(dest_ranks.size());
    std::vector<std::size_t> cursor(offsets.begin(), offsets.end() - 1);
    for (std::size_t k = 0; k < particles.size(); ++k) {
        for (std::size_t m = dest_offsets[k]; m < dest_offsets[k + 1]; ++m) {
            packed[cursor[static_cast<std::size_t>(dest_ranks[m])]++] = particles[k];
        }
    }
    std::vector<std::size_t> recvcounts;
    return comm.alltoallv(std::span<const P>(packed), std::span<const std::size_t>(sendcounts),
                          recvcounts);
}

} // namespace beatnik::grid
