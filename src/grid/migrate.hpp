/// \file migrate.hpp
/// \brief Particle migration between arbitrary decompositions.
///
/// The Cabana `migrate` analogue and the communication core of the
/// paper's CutoffBRSolver: every derivative evaluation moves each surface
/// node from its 2D mesh-index owner to its 3D position-based owner and
/// back (paper §3.2). The pattern is an alltoallv keyed by a per-particle
/// destination rank.
#pragma once

#include <span>
#include <vector>

#include "comm/communicator.hpp"

namespace beatnik::grid {

/// Exchange particles so each lands on its destination rank.
///
/// \param comm         communicator to exchange on
/// \param particles    local particles (any trivially copyable record)
/// \param destinations destination rank per particle (same length)
/// \return particles received by this rank, grouped by source rank in
///         ascending order (self-owned particles included).
template <class P>
[[nodiscard]] std::vector<P> migrate(comm::Communicator& comm, std::span<const P> particles,
                                     std::span<const int> destinations) {
    BEATNIK_REQUIRE(particles.size() == destinations.size(),
                    "migrate: one destination per particle required");
    const int p = comm.size();

    // Bucket by destination. Two passes keep the packed buffer contiguous
    // (counts first, then placement) without per-bucket vectors.
    std::vector<std::size_t> sendcounts(static_cast<std::size_t>(p), 0);
    for (int dst : destinations) {
        BEATNIK_REQUIRE(dst >= 0 && dst < p, "migrate: destination rank out of range");
        ++sendcounts[static_cast<std::size_t>(dst)];
    }
    std::vector<std::size_t> offsets(static_cast<std::size_t>(p) + 1, 0);
    for (int r = 0; r < p; ++r) {
        offsets[static_cast<std::size_t>(r) + 1] =
            offsets[static_cast<std::size_t>(r)] + sendcounts[static_cast<std::size_t>(r)];
    }
    std::vector<P> packed(particles.size());
    std::vector<std::size_t> cursor(offsets.begin(), offsets.end() - 1);
    for (std::size_t k = 0; k < particles.size(); ++k) {
        packed[cursor[static_cast<std::size_t>(destinations[k])]++] = particles[k];
    }

    std::vector<std::size_t> recvcounts;
    return comm.alltoallv(std::span<const P>(packed), std::span<const std::size_t>(sendcounts),
                          recvcounts);
}

/// Like migrate(), but a particle may be sent to *several* ranks (ghost
/// distribution). \p destinations_per_particle holds, for particle k, the
/// half-open range [dest_offsets[k], dest_offsets[k+1]) of entries in
/// \p dest_ranks.
template <class P>
[[nodiscard]] std::vector<P> distribute(comm::Communicator& comm, std::span<const P> particles,
                                        std::span<const std::size_t> dest_offsets,
                                        std::span<const int> dest_ranks) {
    BEATNIK_REQUIRE(dest_offsets.size() == particles.size() + 1,
                    "distribute: offsets must have size N+1");
    const int p = comm.size();
    std::vector<std::size_t> sendcounts(static_cast<std::size_t>(p), 0);
    for (int dst : dest_ranks) {
        BEATNIK_REQUIRE(dst >= 0 && dst < p, "distribute: destination rank out of range");
        ++sendcounts[static_cast<std::size_t>(dst)];
    }
    std::vector<std::size_t> offsets(static_cast<std::size_t>(p) + 1, 0);
    for (int r = 0; r < p; ++r) {
        offsets[static_cast<std::size_t>(r) + 1] =
            offsets[static_cast<std::size_t>(r)] + sendcounts[static_cast<std::size_t>(r)];
    }
    std::vector<P> packed(dest_ranks.size());
    std::vector<std::size_t> cursor(offsets.begin(), offsets.end() - 1);
    for (std::size_t k = 0; k < particles.size(); ++k) {
        for (std::size_t m = dest_offsets[k]; m < dest_offsets[k + 1]; ++m) {
            packed[cursor[static_cast<std::size_t>(dest_ranks[m])]++] = particles[k];
        }
    }
    std::vector<std::size_t> recvcounts;
    return comm.alltoallv(std::span<const P>(packed), std::span<const std::size_t>(sendcounts),
                          recvcounts);
}

} // namespace beatnik::grid
