/// \file index_space.hpp
/// \brief Half-open index ranges and rectangles for mesh iteration.
#pragma once

#include <cstddef>

#include "base/error.hpp"

namespace beatnik::grid {

/// Half-open 1D index range [begin, end).
struct Range {
    int begin = 0;
    int end = 0;

    [[nodiscard]] int extent() const { return end - begin; }
    [[nodiscard]] bool contains(int i) const { return i >= begin && i < end; }
    [[nodiscard]] bool empty() const { return end <= begin; }

    /// Intersection of two ranges (possibly empty).
    [[nodiscard]] Range intersect(const Range& o) const {
        Range r{begin > o.begin ? begin : o.begin, end < o.end ? end : o.end};
        if (r.end < r.begin) r.end = r.begin;
        return r;
    }

    friend bool operator==(const Range&, const Range&) = default;
};

/// Half-open 2D index rectangle.
struct IndexSpace2D {
    Range i;
    Range j;

    [[nodiscard]] std::size_t size() const {
        if (i.empty() || j.empty()) return 0;
        return static_cast<std::size_t>(i.extent()) * static_cast<std::size_t>(j.extent());
    }
    [[nodiscard]] bool contains(int ii, int jj) const { return i.contains(ii) && j.contains(jj); }
    [[nodiscard]] bool empty() const { return i.empty() || j.empty(); }
    [[nodiscard]] IndexSpace2D intersect(const IndexSpace2D& o) const {
        return {i.intersect(o.i), j.intersect(o.j)};
    }

    friend bool operator==(const IndexSpace2D&, const IndexSpace2D&) = default;
};

/// Apply f(i, j) over an index rectangle.
template <class F>
void for_each(const IndexSpace2D& s, F&& f) {
    for (int i = s.i.begin; i < s.i.end; ++i) {
        for (int j = s.j.begin; j < s.j.end; ++j) f(i, j);
    }
}

/// Partition \p n items into \p parts blocks; block \p b spans
/// [floor(b*n/parts), floor((b+1)*n/parts)). Sizes differ by at most one.
inline Range block_partition(int n, int parts, int b) {
    BEATNIK_REQUIRE(parts >= 1 && b >= 0 && b < parts, "block_partition: bad block index");
    auto lo = static_cast<int>((static_cast<long long>(n) * b) / parts);
    auto hi = static_cast<int>((static_cast<long long>(n) * (b + 1)) / parts);
    return {lo, hi};
}

} // namespace beatnik::grid
