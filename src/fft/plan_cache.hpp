/// \file plan_cache.hpp
/// \brief Shared persistent-plan binding for the reshape p2p paths.
///
/// Both reshape planners (2D ReshapePlan, 3D Reshape3D) execute their
/// point-to-point path through a comm::Plan bound lazily on first
/// execution. The binding logic — draw a lockstep plan tag, register one
/// slot per off-rank transfer, rebuild if the communicator changed — is
/// identical up to the Transfer type (which only needs `.peer` and
/// `.box.size()`), so it lives here once. Copies of a planner share the
/// cache via shared_ptr: forward/inverse paths over identical box lists
/// reuse the same channels.
#pragma once

#include <optional>
#include <utility>
#include <vector>

#include "comm/plan.hpp"
#include "fft/serial_fft.hpp"
#include "par/device/device.hpp"

namespace beatnik::fft::detail {

/// Execution-time state of a bound p2p reshape plan. Touched only from
/// the owning rank-thread.
struct P2PPlanCache {
    std::optional<comm::Plan> plan;
    comm::Communicator* comm = nullptr;
    std::vector<std::pair<int, std::size_t>> send_slots;  ///< (slot, sends index)
    std::vector<std::pair<int, std::size_t>> recv_slots;  ///< (slot, recvs index)
    std::vector<cplx> self_buf;                           ///< self-rectangle staging
    /// Device staging mode (ReshapePlan::enable_device): transport
    /// buffers are pinned at bind and pack/unpack run as kernels on this
    /// queue, each send publishing on its own completion event.
    par::device::Queue* queue = nullptr;
    std::vector<par::device::ScopedHostRegistration> pinned;
    std::vector<par::device::Event> send_events;
    std::vector<par::device::Event> recv_events;
    std::vector<int> arrived;   ///< per-sweep scratch (capacity reused)
    /// devcheck channel keys captured at acquire time (publish/release
    /// run in later loops); capacity reused per sweep.
    std::vector<const void*> send_keys;
    std::vector<const void*> recv_keys;

    /// Bind (or rebind after a communicator change). The plan tag comes
    /// from the communicator's collective plan sequence, so every rank
    /// binding the same reshape in the same order resolves the same
    /// channels. \p Transfer needs `.peer` and `.box.size()`.
    ///
    /// Communicator change is detected by address, so a planner holding
    /// this cache must not be carried across contexts: a new context can
    /// reuse the old communicator's address and would silently alias the
    /// stale binding (see the lifetime note in comm/plan.hpp).
    template <class Transfer>
    void bind(comm::Communicator& c, const std::vector<Transfer>& sends,
              const std::vector<Transfer>& recvs) {
        if (comm == &c && plan.has_value()) return;
        const int tag = c.new_plan_tag();
        auto b = comm::Plan::builder(c);
        send_slots.clear();
        recv_slots.clear();
        for (std::size_t t = 0; t < sends.size(); ++t) {
            if (sends[t].peer == c.rank()) continue;
            send_slots.push_back(
                {b.add_send(sends[t].peer, tag, sends[t].box.size() * sizeof(cplx)), t});
        }
        for (std::size_t t = 0; t < recvs.size(); ++t) {
            if (recvs[t].peer == c.rank()) continue;
            recv_slots.push_back(
                {b.add_recv(recvs[t].peer, tag, recvs[t].box.size() * sizeof(cplx)), t});
        }
        plan.emplace(b.build());
        comm = &c;
        if (queue != nullptr) setup_device();
    }

    /// Pin the bound plan's transport buffers and size the per-slot event
    /// storage. Called from bind() when device mode is already on, and
    /// from ReshapePlan::enable_device() when the plan was already bound
    /// (a host sweep ran first) — bind()'s early return would otherwise
    /// leave the buffers unpinned and the event vectors empty.
    void setup_device() {
        pinned.clear();
        plan->pin_buffers([this](std::span<std::byte> buf) {
            pinned.emplace_back(buf);
        });
        send_events.resize(send_slots.size());
        recv_events.resize(recv_slots.size());
        arrived.reserve(recv_slots.size());
    }

    /// One p2p reshape sweep: bind if needed, pack each off-rank
    /// rectangle straight into its transport slot and publish, copy the
    /// self rectangle locally, then unpack arrivals in completion order,
    /// releasing each slot as soon as it is consumed. The pack/unpack
    /// callables carry the dimension-specific layouts:
    ///   pack_into(box, cplx* dst), pack_self(box, std::vector<cplx>&),
    ///   unpack(box, std::span<const cplx>).
    template <class Transfer, class PackInto, class PackSelf, class Unpack>
    void execute(comm::Communicator& c, const std::vector<Transfer>& sends,
                 const std::vector<Transfer>& recvs, PackInto&& pack_into,
                 PackSelf&& pack_self, Unpack&& unpack, const char* size_error) {
        namespace dc = par::device::devcheck;
        bind(c, sends, recvs);
        plan->start();
        for (const auto& [slot, t] : send_slots) {
            const auto& box = sends[t].box;
            auto buf = plan->send_buffer(slot, box.size() * sizeof(cplx));
            dc::channel_send_acquire(buf.data());
            pack_into(box, reinterpret_cast<cplx*>(buf.data()));
            dc::channel_publish(buf.data(), "ReshapePlan host publish");
            plan->publish(slot);
        }
        // Self rectangle never leaves the rank.
        for (const auto& t : recvs) {
            if (t.peer != c.rank()) continue;
            self_buf.clear();
            pack_self(t.box, self_buf);
            unpack(t.box, std::span<const cplx>(self_buf.data(), self_buf.size()));
        }
        for (std::size_t done = 0; done < recv_slots.size(); ++done) {
            int s = plan->wait_any_recv();
            BEATNIK_ASSERT(s >= 0);
            const auto& box = recvs[recv_slots[static_cast<std::size_t>(s)].second].box;
            auto incoming = plan->recv_view_as<cplx>(s);
            BEATNIK_REQUIRE(incoming.size() == box.size(), size_error);
            dc::channel_recv_acquire(incoming.data(), "ReshapePlan host recv");
            unpack(box, incoming);
            dc::channel_release(incoming.data(), "ReshapePlan host release");
            plan->release_recv(s);
        }
    }
};

} // namespace beatnik::fft::detail
