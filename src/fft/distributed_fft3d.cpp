#include "fft/distributed_fft3d.hpp"

#include <cmath>

namespace beatnik::fft {

// --------------------------------------------------------------- Reshape3D

void Reshape3D::pack(const Layout3D& l, std::span<const cplx> in, const Box3D& b,
                     std::vector<cplx>& buf) {
    for (int i = b.i.begin; i < b.i.end; ++i) {
        for (int j = b.j.begin; j < b.j.end; ++j) {
            for (int k = b.k.begin; k < b.k.end; ++k) buf.push_back(in[l.offset(i, j, k)]);
        }
    }
}

void Reshape3D::pack_into(const Layout3D& l, std::span<const cplx> in, const Box3D& b,
                          cplx* out) {
    for (int i = b.i.begin; i < b.i.end; ++i) {
        for (int j = b.j.begin; j < b.j.end; ++j) {
            for (int k = b.k.begin; k < b.k.end; ++k) *out++ = in[l.offset(i, j, k)];
        }
    }
}

void Reshape3D::unpack(const Layout3D& l, std::vector<cplx>& out, const Box3D& b,
                       std::span<const cplx> buf) {
    std::size_t m = 0;
    for (int i = b.i.begin; i < b.i.end; ++i) {
        for (int j = b.j.begin; j < b.j.end; ++j) {
            for (int k = b.k.begin; k < b.k.end; ++k) out[l.offset(i, j, k)] = buf[m++];
        }
    }
}

void Reshape3D::execute(comm::Communicator& comm, const Layout3D& src, std::span<const cplx> in,
                        const Layout3D& dst, std::vector<cplx>& out, bool use_alltoall) const {
    BEATNIK_REQUIRE(in.size() == src.size(), "reshape3d: input size mismatch");
    // The recv boxes tile the destination exactly (checked below), so the
    // output needs no zero-fill pass — every element is overwritten.
    BEATNIK_ASSERT(recv_coverage_ == dst.size(),
                   "reshape3d: recv boxes do not cover the destination layout");
    out.resize(dst.size());
    if (use_alltoall) {
        const int p = comm.size();
        std::vector<std::size_t> sendcounts(static_cast<std::size_t>(p), 0);
        std::vector<cplx> packed;
        packed.reserve(src.size());
        for (const auto& t : sends_) {
            sendcounts[static_cast<std::size_t>(t.peer)] = t.box.size();
            pack(src, in, t.box, packed);
        }
        std::vector<std::size_t> recvcounts;
        auto received = comm.alltoallv(std::span<const cplx>(packed),
                                       std::span<const std::size_t>(sendcounts), recvcounts);
        std::size_t off = 0;
        for (const auto& t : recvs_) {
            BEATNIK_REQUIRE(recvcounts[static_cast<std::size_t>(t.peer)] == t.box.size(),
                            "reshape3d: unexpected block size");
            unpack(dst, out, t.box, std::span<const cplx>(received.data() + off, t.box.size()));
            off += t.box.size();
        }
        return;
    }
    // heFFTe's custom p2p path on persistent pre-matched channels (see
    // plan_cache.hpp).
    p2p_->execute(
        comm, sends_, recvs_,
        [&](const Box3D& box, cplx* slot) { pack_into(src, in, box, slot); },
        [&](const Box3D& box, std::vector<cplx>& buf) { pack(src, in, box, buf); },
        [&](const Box3D& box, std::span<const cplx> data) { unpack(dst, out, box, data); },
        "reshape3d: unexpected p2p size");
}

// --------------------------------------------------------- DistributedFFT3D

namespace {

std::vector<Box3D> brick_boxes_3d(std::array<int, 3> g, std::array<int, 2> dims) {
    std::vector<Box3D> boxes;
    for (int ci = 0; ci < dims[0]; ++ci) {
        for (int cj = 0; cj < dims[1]; ++cj) {
            boxes.push_back({grid::block_partition(g[0], dims[0], ci),
                             grid::block_partition(g[1], dims[1], cj),
                             {0, g[2]}});
        }
    }
    return boxes;
}

/// j-pencils: full j, (i, k) partitioned by the rank grid.
std::vector<Box3D> j_pencil_boxes(std::array<int, 3> g, std::array<int, 2> dims) {
    std::vector<Box3D> boxes;
    for (int ci = 0; ci < dims[0]; ++ci) {
        for (int cj = 0; cj < dims[1]; ++cj) {
            boxes.push_back({grid::block_partition(g[0], dims[0], ci),
                             {0, g[1]},
                             grid::block_partition(g[2], dims[1], cj)});
        }
    }
    return boxes;
}

/// i-pencils: full i, (j, k) partitioned by the rank grid.
std::vector<Box3D> i_pencil_boxes(std::array<int, 3> g, std::array<int, 2> dims) {
    std::vector<Box3D> boxes;
    for (int ci = 0; ci < dims[0]; ++ci) {
        for (int cj = 0; cj < dims[1]; ++cj) {
            boxes.push_back({{0, g[0]},
                             grid::block_partition(g[1], dims[0], ci),
                             grid::block_partition(g[2], dims[1], cj)});
        }
    }
    return boxes;
}

/// k-slabs: full (i, j) planes, k partitioned over all P ranks.
std::vector<Box3D> k_slab_boxes(std::array<int, 3> g, int p) {
    std::vector<Box3D> boxes;
    for (int r = 0; r < p; ++r) {
        boxes.push_back({{0, g[0]}, {0, g[1]}, grid::block_partition(g[2], p, r)});
    }
    return boxes;
}

double fft_flops_est(int n) {
    double dn = static_cast<double>(n);
    return is_pow2(static_cast<std::size_t>(n)) ? 5.0 * dn * std::log2(dn > 1 ? dn : 2.0)
                                                : 15.0 * dn * std::log2(dn > 1 ? dn : 2.0);
}

} // namespace

DistributedFFT3D::StagePlan DistributedFFT3D::make_plan(std::array<int, 3> global,
                                                        std::array<int, 2> topo_dims,
                                                        FFTConfig config) {
    StagePlan plan;
    plan.bricks = brick_boxes_3d(global, topo_dims);
    if (config.use_pencils) {
        plan.stage_b = j_pencil_boxes(global, topo_dims);
        plan.stage_c = i_pencil_boxes(global, topo_dims);
    } else {
        plan.stage_b = k_slab_boxes(global, topo_dims[0] * topo_dims[1]);
    }
    return plan;
}

DistributedFFT3D::DistributedFFT3D(comm::Communicator& comm, std::array<int, 3> global,
                                   std::array<int, 2> topo_dims, FFTConfig config)
    : comm_(&comm), global_(global), config_(config) {
    BEATNIK_REQUIRE(comm.size() == topo_dims[0] * topo_dims[1],
                    "communicator size must match the topology");
    auto plan = make_plan(global, topo_dims, config);
    const auto r = static_cast<std::size_t>(comm.rank());
    brick_ = Layout3D{plan.bricks[r], 2}; // k-fastest mesh-native order
    if (config.use_pencils) {
        stage_b_ = Layout3D{plan.stage_b[r], config.use_reorder ? 1 : 2};
        stage_c_ = Layout3D{plan.stage_c[r], config.use_reorder ? 0 : 2};
        forward_path_.emplace_back(comm.rank(), plan.bricks, plan.stage_b);
        forward_path_.emplace_back(comm.rank(), plan.stage_b, plan.stage_c);
        forward_path_.emplace_back(comm.rank(), plan.stage_c, plan.bricks);
        inverse_path_.emplace_back(comm.rank(), plan.bricks, plan.stage_c);
        inverse_path_.emplace_back(comm.rank(), plan.stage_c, plan.stage_b);
        inverse_path_.emplace_back(comm.rank(), plan.stage_b, plan.bricks);
    } else {
        stage_b_ = Layout3D{plan.stage_b[r], config.use_reorder ? 1 : 2};
        forward_path_.emplace_back(comm.rank(), plan.bricks, plan.stage_b);
        forward_path_.emplace_back(comm.rank(), plan.stage_b, plan.bricks);
        inverse_path_ = forward_path_; // symmetric two-hop path
    }
}

void DistributedFFT3D::transform_axis(std::vector<cplx>& data, const Layout3D& layout, int axis,
                                      bool inverse) const {
    const Box3D& b = layout.box;
    const grid::Range line = axis == 0 ? b.i : (axis == 1 ? b.j : b.k);
    BEATNIK_REQUIRE(line.begin == 0 &&
                        line.end == global_[static_cast<std::size_t>(axis)],
                    "stage must own complete lines along its transform axis");
    const auto& plan = plan_for(static_cast<std::size_t>(line.extent()));
    const std::size_t stride = layout.stride(axis);
    const grid::Range a = axis == 0 ? b.j : b.i;
    const grid::Range c = axis == 2 ? b.j : b.k;
    for (int x = a.begin; x < a.end; ++x) {
        for (int y = c.begin; y < c.end; ++y) {
            std::size_t base;
            if (axis == 0) {
                base = layout.offset(0, x, y);
            } else if (axis == 1) {
                base = layout.offset(x, 0, y);
            } else {
                base = layout.offset(x, y, 0);
            }
            cplx* p = data.data() + base;
            inverse ? plan.inverse_strided(p, stride) : plan.forward_strided(p, stride);
        }
    }
}

void DistributedFFT3D::transform(std::vector<cplx>& data, bool inverse) {
    BEATNIK_REQUIRE(data.size() == brick_.size(), "fft3d: data/brick size mismatch");
    const bool a2a = config_.use_alltoall;
    if (config_.use_pencils) {
        if (!inverse) {
            transform_axis(data, brick_, 2, false);
            forward_path_[0].execute(*comm_, brick_, data, stage_b_, work_b_, a2a);
            transform_axis(work_b_, stage_b_, 1, false);
            forward_path_[1].execute(*comm_, stage_b_, work_b_, stage_c_, work_c_, a2a);
            transform_axis(work_c_, stage_c_, 0, false);
            forward_path_[2].execute(*comm_, stage_c_, work_c_, brick_, data, a2a);
        } else {
            inverse_path_[0].execute(*comm_, brick_, data, stage_c_, work_c_, a2a);
            transform_axis(work_c_, stage_c_, 0, true);
            inverse_path_[1].execute(*comm_, stage_c_, work_c_, stage_b_, work_b_, a2a);
            transform_axis(work_b_, stage_b_, 1, true);
            inverse_path_[2].execute(*comm_, stage_b_, work_b_, brick_, data, a2a);
            transform_axis(data, brick_, 2, true);
        }
        return;
    }
    // Slab path: k in the brick, then (i, j) planes in the slab.
    if (!inverse) {
        transform_axis(data, brick_, 2, false);
        forward_path_[0].execute(*comm_, brick_, data, stage_b_, work_b_, a2a);
        transform_axis(work_b_, stage_b_, 1, false);
        transform_axis(work_b_, stage_b_, 0, false);
        forward_path_[1].execute(*comm_, stage_b_, work_b_, brick_, data, a2a);
    } else {
        inverse_path_[0].execute(*comm_, brick_, data, stage_b_, work_b_, a2a);
        transform_axis(work_b_, stage_b_, 0, true);
        transform_axis(work_b_, stage_b_, 1, true);
        inverse_path_[1].execute(*comm_, stage_b_, work_b_, brick_, data, a2a);
        transform_axis(data, brick_, 2, true);
    }
}

std::vector<PlannedPhase> DistributedFFT3D::plan_schedule(std::array<int, 3> global,
                                                          std::array<int, 2> topo_dims,
                                                          FFTConfig config) {
    const int p = topo_dims[0] * topo_dims[1];
    auto plan = make_plan(global, topo_dims, config);

    auto phase_of = [&](const std::string& label, const std::vector<Box3D>& src,
                        const std::vector<Box3D>& dst, double flops_per_elem_after,
                        const std::vector<Box3D>& compute_boxes) {
        PlannedPhase phase;
        phase.label = label;
        phase.is_alltoall = config.use_alltoall;
        for (int r = 0; r < p; ++r) {
            Reshape3D rp(r, src, dst);
            for (const auto& t : rp.sends()) {
                if (t.peer == r) continue;
                phase.messages.push_back({r, t.peer, t.box.size() * sizeof(cplx)});
            }
        }
        phase.flops_per_rank.assign(static_cast<std::size_t>(p), 0.0);
        if (flops_per_elem_after > 0.0) {
            for (int r = 0; r < p; ++r) {
                phase.flops_per_rank[static_cast<std::size_t>(r)] =
                    flops_per_elem_after *
                    static_cast<double>(compute_boxes[static_cast<std::size_t>(r)].size());
            }
        }
        return phase;
    };

    std::vector<PlannedPhase> phases;
    // Leading brick-local axis-2 transform appears as a compute-only phase.
    PlannedPhase head;
    head.label = "brick k-transform";
    head.flops_per_rank.assign(static_cast<std::size_t>(p), 0.0);
    for (int r = 0; r < p; ++r) {
        const auto& b = plan.bricks[static_cast<std::size_t>(r)];
        head.flops_per_rank[static_cast<std::size_t>(r)] =
            fft_flops_est(global[2]) / global[2] * static_cast<double>(b.size());
    }
    phases.push_back(std::move(head));
    if (config.use_pencils) {
        phases.push_back(phase_of("brick->jpencil", plan.bricks, plan.stage_b,
                                  fft_flops_est(global[1]) / global[1], plan.stage_b));
        phases.push_back(phase_of("jpencil->ipencil", plan.stage_b, plan.stage_c,
                                  fft_flops_est(global[0]) / global[0], plan.stage_c));
        phases.push_back(phase_of("ipencil->brick", plan.stage_c, plan.bricks, 0.0, {}));
    } else {
        double planar = fft_flops_est(global[0]) / global[0] +
                        fft_flops_est(global[1]) / global[1];
        phases.push_back(
            phase_of("brick->kslab", plan.bricks, plan.stage_b, planar, plan.stage_b));
        phases.push_back(phase_of("kslab->brick", plan.stage_b, plan.bricks, 0.0, {}));
    }
    return phases;
}

} // namespace beatnik::fft
