#include "fft/distributed_fft.hpp"

#include <algorithm>
#include <span>

#include "telemetry/telemetry.hpp"

namespace beatnik::fft {

DistributedFFT2D::StagePlan DistributedFFT2D::make_stage_plan(std::array<int, 2> global,
                                                              std::array<int, 2> topo_dims,
                                                              FFTConfig config) {
    const int p = topo_dims[0] * topo_dims[1];
    StagePlan plan;
    plan.bricks = brick_boxes(global, topo_dims);
    if (config.use_pencils) {
        plan.stage1 = pencil_boxes(global, p, /*long_axis=*/1);
        plan.stage2 = pencil_boxes(global, p, /*long_axis=*/0);
    } else {
        plan.stage1 = row_band_boxes(global, topo_dims);
        plan.stage2 = column_band_boxes(global, topo_dims);
    }
    plan.stage2_fast_axis = config.use_reorder ? 0 : 1;
    return plan;
}

DistributedFFT2D::DistributedFFT2D(comm::Communicator& comm, std::array<int, 2> global,
                                   std::array<int, 2> topo_dims, FFTConfig config)
    : DistributedFFT2D(comm, global, config, make_stage_plan(global, topo_dims, config)) {
    BEATNIK_REQUIRE(comm.size() == topo_dims[0] * topo_dims[1],
                    "communicator size must match the topology");
}

DistributedFFT2D::DistributedFFT2D(comm::Communicator& comm, std::array<int, 2> global,
                                   FFTConfig config, const StagePlan& plan)
    : comm_(&comm), global_(global), config_(config),
      brick_layout_{plan.bricks[static_cast<std::size_t>(comm.rank())], 1},
      // Stage 1 transforms axis 1; its mesh-native layout (j fastest) is
      // already unit-stride for that axis, so reorder only affects stage 2.
      stage1_{Layout2D{plan.stage1[static_cast<std::size_t>(comm.rank())], 1}, 1},
      stage2_{Layout2D{plan.stage2[static_cast<std::size_t>(comm.rank())],
                       plan.stage2_fast_axis},
              0},
      to_stage1_(comm.rank(), plan.bricks, plan.stage1),
      stage1_to_stage2_(comm.rank(), plan.stage1, plan.stage2),
      stage2_to_brick_(comm.rank(), plan.stage2, plan.bricks),
      to_stage2_(comm.rank(), plan.bricks, plan.stage2),
      stage2_to_stage1_(comm.rank(), plan.stage2, plan.stage1),
      stage1_to_brick_(comm.rank(), plan.stage1, plan.bricks) {}

void DistributedFFT2D::transform_stage(std::vector<cplx>& data, const Stage& stage,
                                       bool inverse) const {
    const Box2D& box = stage.layout.box;
    const int axis = stage.axis;
    const int n = axis == 0 ? box.i.extent() : box.j.extent();
    BEATNIK_REQUIRE(n == global_[static_cast<std::size_t>(axis)],
                    "stage must own complete lines along its transform axis");
    const auto& plan = plan_for(static_cast<std::size_t>(n));
    const std::size_t stride = stage.layout.stride(axis);
    const grid::Range cross_range = axis == 0 ? box.j : box.i;
    for (int cross = cross_range.begin; cross < cross_range.end; ++cross) {
        cplx* line = data.data() + stage.layout.line_offset(axis, cross);
        if (inverse) {
            plan.inverse_strided(line, stride);
        } else {
            plan.forward_strided(line, stride);
        }
    }
}

void DistributedFFT2D::enable_device(par::device::Queue& q) {
    // Both stage buffers see both intermediate layouts across the
    // forward/inverse routes; size them to the larger once so the pinned
    // range survives every later resize().
    const std::size_t smax = std::max(stage1_.layout.size(), stage2_.layout.size());
    work_.reserve(smax);
    work2_.reserve(smax);
    work_.resize(smax);
    work2_.resize(smax);
    pinned_.clear();
    pinned_.emplace_back(std::span<const cplx>(work_.data(), smax));
    pinned_.emplace_back(std::span<const cplx>(work2_.data(), smax));
    for (ReshapePlan* rp : {&to_stage1_, &stage1_to_stage2_, &stage2_to_brick_, &to_stage2_,
                            &stage2_to_stage1_, &stage1_to_brick_}) {
        rp->enable_device(q);
    }
}

void DistributedFFT2D::forward(std::vector<cplx>& data) {
    telemetry::Scope span("fft.forward", data.size() * sizeof(cplx));
    BEATNIK_REQUIRE(data.size() == brick_layout_.size(), "forward: data/brick size mismatch");
    to_stage1_.execute(*comm_, brick_layout_, data, stage1_.layout, work_, config_.use_alltoall);
    transform_stage(work_, stage1_, /*inverse=*/false);
    stage1_to_stage2_.execute(*comm_, stage1_.layout, work_, stage2_.layout, work2_,
                              config_.use_alltoall);
    transform_stage(work2_, stage2_, /*inverse=*/false);
    stage2_to_brick_.execute(*comm_, stage2_.layout, work2_, brick_layout_, data,
                             config_.use_alltoall);
}

void DistributedFFT2D::inverse(std::vector<cplx>& data) {
    telemetry::Scope span("fft.inverse", data.size() * sizeof(cplx));
    BEATNIK_REQUIRE(data.size() == brick_layout_.size(), "inverse: data/brick size mismatch");
    // Reverse path: brick -> stage2 -> stage1 -> brick.
    to_stage2_.execute(*comm_, brick_layout_, data, stage2_.layout, work_, config_.use_alltoall);
    transform_stage(work_, stage2_, /*inverse=*/true);
    stage2_to_stage1_.execute(*comm_, stage2_.layout, work_, stage1_.layout, work2_,
                              config_.use_alltoall);
    transform_stage(work2_, stage1_, /*inverse=*/true);
    stage1_to_brick_.execute(*comm_, stage1_.layout, work2_, brick_layout_, data,
                             config_.use_alltoall);
}

std::vector<PlannedPhase> DistributedFFT2D::plan_schedule(std::array<int, 2> global,
                                                          std::array<int, 2> topo_dims,
                                                          FFTConfig config) {
    const int p = topo_dims[0] * topo_dims[1];
    auto plan = make_stage_plan(global, topo_dims, config);

    auto phase_of = [&](const std::string& label, const std::vector<Box2D>& src,
                        const std::vector<Box2D>& dst, int fft_axis_after) {
        PlannedPhase phase;
        phase.label = label;
        phase.is_alltoall = config.use_alltoall;
        for (int r = 0; r < p; ++r) {
            ReshapePlan rp(r, src, dst);
            for (const auto& t : rp.sends()) {
                if (t.peer == r) continue; // self copies cost no network
                phase.messages.push_back({r, t.peer, t.box.size() * sizeof(cplx)});
            }
        }
        phase.flops_per_rank.assign(static_cast<std::size_t>(p), 0.0);
        if (fft_axis_after >= 0) {
            const auto& boxes = fft_axis_after == 1 ? plan.stage1 : plan.stage2;
            for (int r = 0; r < p; ++r) {
                const Box2D& b = boxes[static_cast<std::size_t>(r)];
                int n = fft_axis_after == 0 ? b.i.extent() : b.j.extent();
                int lines = fft_axis_after == 0 ? b.j.extent() : b.i.extent();
                // flop model mirrors SerialFFT1D::flops without a plan.
                double dn = static_cast<double>(n);
                double fl = is_pow2(static_cast<std::size_t>(n))
                                ? 5.0 * dn * std::log2(dn > 1 ? dn : 2.0)
                                : 15.0 * dn * std::log2(dn > 1 ? dn : 2.0);
                // Strided second stage pays a gather/scatter penalty.
                if (fft_axis_after == 0 && !config.use_reorder) fl *= 1.6;
                phase.flops_per_rank[static_cast<std::size_t>(r)] = fl * lines;
            }
        }
        return phase;
    };

    std::vector<PlannedPhase> phases;
    phases.push_back(phase_of("brick->stage1", plan.bricks, plan.stage1, 1));
    phases.push_back(phase_of("stage1->stage2", plan.stage1, plan.stage2, 0));
    phases.push_back(phase_of("stage2->brick", plan.stage2, plan.bricks, -1));
    return phases;
}

} // namespace beatnik::fft
