/// \file distributed_fft.hpp
/// \brief Distributed 2D complex FFT over a brick-decomposed array — the
/// heFFTe stand-in, including its three tuning knobs (paper Table 1):
///
///   * AllToAll — reshapes run through the alltoallv collective (true) or
///     an explicit point-to-point message list (false);
///   * Pencils  — intermediate stages are generic 1D pencil partitions
///     over all P ranks (true) or brick-aligned band partitions whose
///     first/last reshapes stay inside row/column subgroups (false);
///   * Reorder  — intermediate buffers are laid out with the transform
///     axis unit-stride (true) or kept mesh-ordered, making the second
///     transform stage strided (false).
///
/// All eight knob combinations compute identical transforms (tested) but
/// generate different message schedules and memory behavior — which is
/// exactly the property Fig. 9 of the paper measures.
///
/// Data contract: forward()/inverse() operate in place on the rank's
/// brick in mesh-native layout (j fastest), matching the surface mesh's
/// owned block. Transforms are unnormalized forward, 1/(N0*N1) inverse.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "comm/communicator.hpp"
#include "fft/partition.hpp"
#include "fft/reshape.hpp"

namespace beatnik::fft {

/// heFFTe-style algorithm configuration (paper Table 1).
struct FFTConfig {
    bool use_alltoall = true;
    bool use_pencils = true;
    bool use_reorder = true;

    /// Table-1 numbering: configs 0..7 in the paper's order
    /// (AllToAll, Pencils, Reorder) with False < True.
    [[nodiscard]] int table1_index() const {
        return (use_alltoall ? 4 : 0) + (use_pencils ? 2 : 0) + (use_reorder ? 1 : 0);
    }
    [[nodiscard]] static FFTConfig from_table1_index(int idx) {
        return {(idx & 4) != 0, (idx & 2) != 0, (idx & 1) != 0};
    }
};

/// One point-to-point transfer in a planned schedule (world ranks).
struct PlannedMsg {
    int src = 0;
    int dst = 0;
    std::size_t bytes = 0;
};

/// A communication phase of the transform plus the per-rank compute that
/// follows it. Consumed by the netsim performance model.
struct PlannedPhase {
    std::string label;
    bool is_alltoall = false;          ///< collective (true) vs p2p list
    std::vector<PlannedMsg> messages;  ///< every rank's transfers
    std::vector<double> flops_per_rank; ///< local FFT work after this phase
};

class DistributedFFT2D {
public:
    /// Plan a transform of the \p global array distributed as bricks over
    /// a topo_dims[0] x topo_dims[1] rank grid (row-major rank order,
    /// matching CartTopology2D).
    DistributedFFT2D(comm::Communicator& comm, std::array<int, 2> global,
                     std::array<int, 2> topo_dims, FFTConfig config);

    [[nodiscard]] const Box2D& local_box() const { return brick_layout_.box; }
    [[nodiscard]] const FFTConfig& config() const { return config_; }
    [[nodiscard]] std::array<int, 2> global_dims() const { return global_; }

    /// In-place forward transform of this rank's brick (j-fastest order).
    void forward(std::vector<cplx>& data);
    /// In-place inverse transform (scaled so inverse(forward(x)) == x).
    void inverse(std::vector<cplx>& data);

    /// Route the reshape staging through the device: the persistent stage
    /// buffers are pre-sized to their high-water mark and pinned, and the
    /// p2p reshapes pack/unpack with device kernels straight into the
    /// pinned plan transport buffers (ReshapePlan::enable_device). The
    /// caller's transform arrays must be pinned too. The butterflies stay
    /// host compute over the pinned lines — the cuFFT seam on real
    /// hardware. The alltoall configurations keep host staging.
    void enable_device(par::device::Queue& q);

    /// Signed integer mode for index m of an N-point axis
    /// (0, 1, ..., N/2, -(N/2-1), ..., -1).
    [[nodiscard]] static int signed_mode(int m, int n) { return m <= n / 2 ? m : m - n; }

    /// Build the full communication/computation schedule of one forward
    /// transform for any rank count, without a communicator or data.
    /// This is how the scaling benchmarks obtain P=1024 schedules.
    [[nodiscard]] static std::vector<PlannedPhase> plan_schedule(std::array<int, 2> global,
                                                                 std::array<int, 2> topo_dims,
                                                                 FFTConfig config);

private:
    struct Stage {
        Layout2D layout;   ///< data layout while transforming
        int axis = 0;      ///< axis transformed in this stage
    };

    /// Box lists / layouts for both intermediate stages, shared by the
    /// executing constructor and the static planner.
    struct StagePlan {
        std::vector<Box2D> bricks;
        std::vector<Box2D> stage1; ///< full j lines
        std::vector<Box2D> stage2; ///< full i lines
        int stage2_fast_axis = 0;
    };
    static StagePlan make_stage_plan(std::array<int, 2> global, std::array<int, 2> topo_dims,
                                     FFTConfig config);

    /// Delegation target that builds the stage plan exactly once.
    DistributedFFT2D(comm::Communicator& comm, std::array<int, 2> global, FFTConfig config,
                     const StagePlan& plan);

    void transform_stage(std::vector<cplx>& data, const Stage& stage, bool inverse) const;

    comm::Communicator* comm_;
    std::array<int, 2> global_;
    FFTConfig config_;
    Layout2D brick_layout_;
    Stage stage1_;
    Stage stage2_;
    // Forward-path reshapes.
    ReshapePlan to_stage1_;
    ReshapePlan stage1_to_stage2_;
    ReshapePlan stage2_to_brick_;
    // Inverse-path reshapes (the reverse route).
    ReshapePlan to_stage2_;
    ReshapePlan stage2_to_stage1_;
    ReshapePlan stage1_to_brick_;
    // Persistent stage buffers: sized on the first transform, reused by
    // every subsequent one (reshape outputs resize() into them without a
    // zero-fill pass). Under enable_device they are pre-sized and pinned,
    // so later resizes never move the registered range.
    std::vector<cplx> work_;
    std::vector<cplx> work2_;
    std::vector<par::device::ScopedHostRegistration> pinned_;
};

} // namespace beatnik::fft
