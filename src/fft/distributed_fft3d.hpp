/// \file distributed_fft3d.hpp
/// \brief Distributed 3D complex FFT — the dimension heFFTe was built
/// for, where the Pencils knob selects genuinely different intermediate
/// decompositions:
///
///   * pencils=true : brick -> k-lines -> j-pencils -> i-pencils -> brick,
///     three 1D transform stages over pencil partitions;
///   * pencils=false: brick -> k-slabs (full i,j planes; local 2D FFT)
///     -> i-slabs (full j,k; local 1D FFT along k... transform the
///     remaining axis) -> brick — fewer, larger reshapes.
///
/// Not used by the Beatnik solver itself (the surface mesh is 2D) but
/// part of the heFFTe-substitute scope: the cutoff solver's SpatialMesh
/// and future P3M-style far-field solvers (paper §6) are 3D consumers.
///
/// Data contract: in-place on the rank's brick in k-fastest row-major
/// order; unnormalized forward, 1/(N0*N1*N2) inverse.
#pragma once

#include <array>
#include <memory>
#include <vector>

#include "fft/distributed_fft.hpp" // FFTConfig
#include "fft/plan_cache.hpp"

namespace beatnik::fft {

/// A rectangular subset of the global 3D index space.
struct Box3D {
    grid::Range i, j, k;

    [[nodiscard]] std::size_t size() const {
        if (i.empty() || j.empty() || k.empty()) return 0;
        return static_cast<std::size_t>(i.extent()) * static_cast<std::size_t>(j.extent()) *
               static_cast<std::size_t>(k.extent());
    }
    [[nodiscard]] Box3D intersect(const Box3D& o) const {
        return {i.intersect(o.i), j.intersect(o.j), k.intersect(o.k)};
    }
    [[nodiscard]] bool empty() const { return size() == 0; }
};

/// Row-major layout with a selectable unit-stride axis; the other two
/// axes keep their natural (i, j, k) order.
struct Layout3D {
    Box3D box;
    int fast_axis = 2;

    [[nodiscard]] std::size_t size() const { return box.size(); }

    [[nodiscard]] std::size_t offset(int gi, int gj, int gk) const {
        auto li = static_cast<std::size_t>(gi - box.i.begin);
        auto lj = static_cast<std::size_t>(gj - box.j.begin);
        auto lk = static_cast<std::size_t>(gk - box.k.begin);
        auto ni = static_cast<std::size_t>(box.i.extent());
        auto nj = static_cast<std::size_t>(box.j.extent());
        auto nk = static_cast<std::size_t>(box.k.extent());
        switch (fast_axis) {
        case 0: return (lj * nk + lk) * ni + li;
        case 1: return (li * nk + lk) * nj + lj;
        default: return (li * nj + lj) * nk + lk;
        }
    }

    [[nodiscard]] std::size_t stride(int axis) const {
        if (axis == fast_axis) return 1;
        auto ni = static_cast<std::size_t>(box.i.extent());
        auto nj = static_cast<std::size_t>(box.j.extent());
        auto nk = static_cast<std::size_t>(box.k.extent());
        // Stride of `axis` given the fast axis is innermost and the other
        // two retain (i, j, k) ordering.
        switch (fast_axis) {
        case 0:
            return axis == 2 ? ni : nk * ni; // order: j, k, i(fast)
        case 1:
            return axis == 2 ? nj : nk * nj; // order: i, k, j(fast)
        default:
            return axis == 1 ? nk : nj * nk; // order: i, j, k(fast)
        }
    }
};

/// Planned repartition between 3D box lists (the 3D analogue of
/// ReshapePlan; heFFTe's box-intersection approach). The p2p path runs on
/// a persistent comm::Plan bound on first execution; copies of a
/// Reshape3D share that binding (forward/inverse paths over identical box
/// lists reuse the same channels).
class Reshape3D {
public:
    struct Transfer {
        int peer;
        Box3D box;
    };

    Reshape3D(int rank, const std::vector<Box3D>& src, const std::vector<Box3D>& dst)
        : p2p_(std::make_shared<detail::P2PPlanCache>()) {
        const int p = static_cast<int>(src.size());
        BEATNIK_REQUIRE(dst.size() == src.size(), "reshape3d: one box per rank on both sides");
        for (int r = 0; r < p; ++r) {
            Box3D out = src[static_cast<std::size_t>(rank)].intersect(dst[static_cast<std::size_t>(r)]);
            if (!out.empty()) sends_.push_back({r, out});
            Box3D in = dst[static_cast<std::size_t>(rank)].intersect(src[static_cast<std::size_t>(r)]);
            if (!in.empty()) {
                recv_coverage_ += in.size();
                recvs_.push_back({r, in});
            }
        }
    }

    [[nodiscard]] const std::vector<Transfer>& sends() const { return sends_; }
    [[nodiscard]] const std::vector<Transfer>& recvs() const { return recvs_; }

    void execute(comm::Communicator& comm, const Layout3D& src, std::span<const cplx> in,
                 const Layout3D& dst, std::vector<cplx>& out, bool use_alltoall) const;

private:
    static void pack(const Layout3D& l, std::span<const cplx> in, const Box3D& b,
                     std::vector<cplx>& buf);
    static void pack_into(const Layout3D& l, std::span<const cplx> in, const Box3D& b,
                          cplx* out);
    static void unpack(const Layout3D& l, std::vector<cplx>& out, const Box3D& b,
                       std::span<const cplx> buf);

    std::vector<Transfer> sends_;
    std::vector<Transfer> recvs_;
    std::size_t recv_coverage_ = 0;
    /// Execution-time p2p binding, shared by copies (see fft/plan_cache.hpp).
    std::shared_ptr<detail::P2PPlanCache> p2p_;
};

class DistributedFFT3D {
public:
    /// Bricks are a 2D decomposition over axes (i, j) with the full k
    /// extent per rank — the SpatialMesh-style decomposition (paper §3.2).
    DistributedFFT3D(comm::Communicator& comm, std::array<int, 3> global,
                     std::array<int, 2> topo_dims, FFTConfig config);

    [[nodiscard]] const Box3D& local_box() const { return brick_.box; }

    void forward(std::vector<cplx>& data) { transform(data, false); }
    void inverse(std::vector<cplx>& data) { transform(data, true); }

    /// Message schedule of one forward transform for the netsim model.
    [[nodiscard]] static std::vector<PlannedPhase> plan_schedule(std::array<int, 3> global,
                                                                 std::array<int, 2> topo_dims,
                                                                 FFTConfig config);

private:
    struct StagePlan {
        std::vector<Box3D> bricks;
        std::vector<Box3D> stage_a; ///< pencils: k-lines; slabs: k-slabs
        std::vector<Box3D> stage_b; ///< pencils: j-pencils; slabs: i-slabs
        std::vector<Box3D> stage_c; ///< pencils: i-pencils; slabs: unused (empty)
    };
    static StagePlan make_plan(std::array<int, 3> global, std::array<int, 2> topo_dims,
                               FFTConfig config);

    void transform(std::vector<cplx>& data, bool inverse);
    void transform_axis(std::vector<cplx>& data, const Layout3D& layout, int axis,
                        bool inverse) const;

    comm::Communicator* comm_;
    std::array<int, 3> global_;
    FFTConfig config_;
    Layout3D brick_;
    Layout3D stage_a_;
    Layout3D stage_b_;
    Layout3D stage_c_; ///< pencil path only
    std::vector<Reshape3D> forward_path_;
    std::vector<Reshape3D> inverse_path_;
    // Persistent stage buffers, reused across transforms.
    std::vector<cplx> work_b_;
    std::vector<cplx> work_c_;
};

} // namespace beatnik::fft
