#include <memory>
#include "fft/serial_fft.hpp"

#include <cmath>
#include <map>
#include <mutex>
#include <numbers>

namespace beatnik::fft {

namespace {
constexpr double kPi = std::numbers::pi;
} // namespace

SerialFFT1D::Radix2Tables SerialFFT1D::make_tables(std::size_t n) {
    BEATNIK_ASSERT(is_pow2(n));
    Radix2Tables t;
    t.n = n;
    t.bitrev.resize(n);
    std::size_t log2n = 0;
    while ((std::size_t{1} << log2n) < n) ++log2n;
    for (std::size_t i = 0; i < n; ++i) {
        std::size_t r = 0;
        for (std::size_t b = 0; b < log2n; ++b) {
            if (i & (std::size_t{1} << b)) r |= std::size_t{1} << (log2n - 1 - b);
        }
        t.bitrev[i] = r;
    }
    t.twiddle.resize(n / 2);
    for (std::size_t k = 0; k < n / 2; ++k) {
        double angle = -2.0 * kPi * static_cast<double>(k) / static_cast<double>(n);
        t.twiddle[k] = {std::cos(angle), std::sin(angle)};
    }
    return t;
}

void SerialFFT1D::radix2_core(const Radix2Tables& t, cplx* data, bool inverse_sign) {
    const std::size_t n = t.n;
    if (n <= 1) return;
    // Bit-reversal permutation (swap once per pair).
    for (std::size_t i = 0; i < n; ++i) {
        std::size_t j = t.bitrev[i];
        if (i < j) std::swap(data[i], data[j]);
    }
    // Butterflies. Twiddle index stride halves as the span doubles.
    for (std::size_t len = 2; len <= n; len <<= 1) {
        const std::size_t half = len >> 1;
        const std::size_t tstep = n / len;
        for (std::size_t start = 0; start < n; start += len) {
            for (std::size_t k = 0; k < half; ++k) {
                cplx w = t.twiddle[k * tstep];
                if (inverse_sign) w = std::conj(w);
                cplx u = data[start + k];
                cplx v = data[start + k + half] * w;
                data[start + k] = u + v;
                data[start + k + half] = u - v;
            }
        }
    }
}

SerialFFT1D::SerialFFT1D(std::size_t n) : n_(n), pow2_(is_pow2(n)) {
    BEATNIK_REQUIRE(n >= 1, "FFT length must be positive");
    if (pow2_) {
        tables_ = make_tables(n);
        return;
    }
    // Bluestein: x_hat[k] = b*[k] * (a (*) b)[k] with a[m] = x[m] b*[m],
    // b[m] = exp(-i*pi*m^2/n), (*) a cyclic convolution of length >= 2n-1.
    conv_n_ = next_pow2(2 * n - 1);
    tables_ = make_tables(conv_n_);
    chirp_.resize(n);
    for (std::size_t k = 0; k < n; ++k) {
        // k^2 mod 2n keeps the angle argument small for huge n.
        double kk = static_cast<double>((k * k) % (2 * n));
        double angle = -kPi * kk / static_cast<double>(n);
        chirp_[k] = {std::cos(angle), std::sin(angle)};
    }
    // FFT of padded conj(chirp) with wrap-around tail.
    std::vector<cplx> b(conv_n_, cplx{0.0, 0.0});
    for (std::size_t k = 0; k < n; ++k) {
        b[k] = std::conj(chirp_[k]);
        if (k != 0) b[conv_n_ - k] = std::conj(chirp_[k]);
    }
    radix2_core(tables_, b.data(), /*inverse_sign=*/false);
    chirp_fft_ = std::move(b);
}

void SerialFFT1D::radix2(cplx* data, std::size_t stride, bool inverse_sign) const {
    if (stride == 1) {
        radix2_core(tables_, data, inverse_sign);
        return;
    }
    // Strided access: gather, transform, scatter. The gather/scatter cost
    // is the honest price of unordered data (the reorder knob's tradeoff).
    std::vector<cplx> tmp(n_);
    for (std::size_t i = 0; i < n_; ++i) tmp[i] = data[i * stride];
    radix2_core(tables_, tmp.data(), inverse_sign);
    for (std::size_t i = 0; i < n_; ++i) data[i * stride] = tmp[i];
}

void SerialFFT1D::bluestein(cplx* data, std::size_t stride, bool inverse_sign) const {
    std::vector<cplx> a(conv_n_, cplx{0.0, 0.0});
    for (std::size_t m = 0; m < n_; ++m) {
        cplx c = inverse_sign ? std::conj(chirp_[m]) : chirp_[m];
        a[m] = data[m * stride] * c;
    }
    radix2_core(tables_, a.data(), /*inverse_sign=*/false);
    if (inverse_sign) {
        // Convolve with conj(b) instead of b: conj the spectrum of b.
        for (std::size_t k = 0; k < conv_n_; ++k) a[k] *= std::conj(chirp_fft_[k]);
    } else {
        for (std::size_t k = 0; k < conv_n_; ++k) a[k] *= chirp_fft_[k];
    }
    radix2_core(tables_, a.data(), /*inverse_sign=*/true);
    const double scale = 1.0 / static_cast<double>(conv_n_);
    for (std::size_t k = 0; k < n_; ++k) {
        cplx c = inverse_sign ? std::conj(chirp_[k]) : chirp_[k];
        data[k * stride] = a[k] * scale * c;
    }
}

void SerialFFT1D::forward_strided(cplx* data, std::size_t stride) const {
    if (pow2_) {
        radix2(data, stride, /*inverse_sign=*/false);
    } else {
        bluestein(data, stride, /*inverse_sign=*/false);
    }
}

void SerialFFT1D::inverse_strided(cplx* data, std::size_t stride) const {
    if (pow2_) {
        radix2(data, stride, /*inverse_sign=*/true);
    } else {
        bluestein(data, stride, /*inverse_sign=*/true);
    }
    const double scale = 1.0 / static_cast<double>(n_);
    for (std::size_t i = 0; i < n_; ++i) data[i * stride] *= scale;
}

double SerialFFT1D::flops() const {
    // ~5 n log2 n for radix-2; Bluestein pays three transforms of conv_n_.
    auto r2 = [](std::size_t n) {
        double dn = static_cast<double>(n);
        return 5.0 * dn * std::log2(dn > 1 ? dn : 2.0);
    };
    return pow2_ ? r2(n_) : 3.0 * r2(conv_n_) + 8.0 * static_cast<double>(n_);
}

const SerialFFT1D& plan_for(std::size_t n) {
    static std::mutex mutex;
    static std::map<std::size_t, std::unique_ptr<SerialFFT1D>> cache;
    std::lock_guard lock(mutex);
    auto& slot = cache[n];
    if (!slot) slot = std::make_unique<SerialFFT1D>(n);
    return *slot;
}

} // namespace beatnik::fft
