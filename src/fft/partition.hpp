/// \file partition.hpp
/// \brief Box lists describing how each transform stage distributes the
/// global array over ranks.
///
/// The distributed FFT is a sequence of repartitions between these box
/// lists (DESIGN.md §1). Two families are provided:
///  * generic pencil partitions — 1D block partitions of the full index
///    space over all P ranks (heFFTe's pencil machinery);
///  * nested band partitions — sub-partitions aligned with the brick
///    decomposition, which keep early/late reshape phases inside row or
///    column subgroups (the `use_pencils == false` path).
#pragma once

#include <array>
#include <vector>

#include "fft/layout.hpp"
#include "grid/cart_topology.hpp"

namespace beatnik::fft {

/// Brick (block) boxes matching the surface-mesh decomposition: rank
/// (ci, cj) owns block_partition(i) x block_partition(j).
inline std::vector<Box2D> brick_boxes(std::array<int, 2> global, std::array<int, 2> topo_dims) {
    std::vector<Box2D> boxes;
    boxes.reserve(static_cast<std::size_t>(topo_dims[0] * topo_dims[1]));
    for (int ci = 0; ci < topo_dims[0]; ++ci) {
        for (int cj = 0; cj < topo_dims[1]; ++cj) {
            boxes.push_back({grid::block_partition(global[0], topo_dims[0], ci),
                             grid::block_partition(global[1], topo_dims[1], cj)});
        }
    }
    return boxes;
}

/// Pencil boxes: full extent along \p long_axis, the other axis block-
/// partitioned over all P ranks. Lines along long_axis are complete, so
/// that axis can be transformed locally.
inline std::vector<Box2D> pencil_boxes(std::array<int, 2> global, int nranks, int long_axis) {
    std::vector<Box2D> boxes;
    boxes.reserve(static_cast<std::size_t>(nranks));
    for (int r = 0; r < nranks; ++r) {
        if (long_axis == 1) {
            boxes.push_back({grid::block_partition(global[0], nranks, r), {0, global[1]}});
        } else {
            boxes.push_back({{0, global[0]}, grid::block_partition(global[1], nranks, r)});
        }
    }
    return boxes;
}

/// Row-band boxes: rank (ci, cj) owns the cj-th sub-band of brick row
/// band I_ci, with the full j extent. Reaching this partition from bricks
/// only requires exchanges *within* each row subgroup.
inline std::vector<Box2D> row_band_boxes(std::array<int, 2> global, std::array<int, 2> topo_dims) {
    std::vector<Box2D> boxes;
    boxes.reserve(static_cast<std::size_t>(topo_dims[0] * topo_dims[1]));
    for (int ci = 0; ci < topo_dims[0]; ++ci) {
        auto band = grid::block_partition(global[0], topo_dims[0], ci);
        for (int cj = 0; cj < topo_dims[1]; ++cj) {
            auto sub = grid::block_partition(band.extent(), topo_dims[1], cj);
            boxes.push_back({{band.begin + sub.begin, band.begin + sub.end}, {0, global[1]}});
        }
    }
    return boxes;
}

/// Column-band boxes: rank (ci, cj) owns the ci-th sub-band of brick
/// column band J_cj, with the full i extent. Returning to bricks from
/// here only requires exchanges *within* each column subgroup.
inline std::vector<Box2D> column_band_boxes(std::array<int, 2> global,
                                            std::array<int, 2> topo_dims) {
    std::vector<Box2D> boxes;
    boxes.reserve(static_cast<std::size_t>(topo_dims[0] * topo_dims[1]));
    for (int ci = 0; ci < topo_dims[0]; ++ci) {
        for (int cj = 0; cj < topo_dims[1]; ++cj) {
            auto band = grid::block_partition(global[1], topo_dims[1], cj);
            auto sub = grid::block_partition(band.extent(), topo_dims[0], ci);
            boxes.push_back({{0, global[0]}, {band.begin + sub.begin, band.begin + sub.end}});
        }
    }
    return boxes;
}

/// Sanity check used by tests: a box list tiles the global index space
/// exactly (disjoint cover).
inline bool tiles_exactly(const std::vector<Box2D>& boxes, std::array<int, 2> global) {
    std::size_t total = 0;
    for (const auto& b : boxes) total += b.size();
    if (total != static_cast<std::size_t>(global[0]) * static_cast<std::size_t>(global[1])) {
        return false;
    }
    for (std::size_t a = 0; a < boxes.size(); ++a) {
        for (std::size_t b = a + 1; b < boxes.size(); ++b) {
            if (!boxes[a].intersect(boxes[b]).empty()) return false;
        }
    }
    return true;
}

} // namespace beatnik::fft
