/// \file serial_fft.hpp
/// \brief On-rank 1D complex FFT kernels (the node-local compute under the
/// distributed transforms, standing in for heFFTe's cuFFT/FFTW backends).
///
/// Two algorithms cover every length:
///  * power-of-two: iterative radix-2 Cooley–Tukey with a precomputed
///    bit-reversal table and per-stage twiddles;
///  * arbitrary n: Bluestein's chirp-z, which reduces the transform to a
///    cyclic convolution executed with the radix-2 kernel.
///
/// Strided execution is supported so the distributed transform can run
/// directly over mesh-ordered data when the `reorder` knob is off — the
/// same contiguous-vs-strided tradeoff heFFTe's reorder option exposes.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

#include "base/error.hpp"

namespace beatnik::fft {

using cplx = std::complex<double>;

/// True if n is a power of two (n >= 1).
constexpr bool is_pow2(std::size_t n) { return n > 0 && (n & (n - 1)) == 0; }

/// Smallest power of two >= n.
constexpr std::size_t next_pow2(std::size_t n) {
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p;
}

/// Reusable plan for 1D transforms of a fixed length.
///
/// Normalization convention: forward() is unscaled; inverse() divides by n,
/// so inverse(forward(x)) == x.
class SerialFFT1D {
public:
    explicit SerialFFT1D(std::size_t n);

    [[nodiscard]] std::size_t size() const { return n_; }

    /// Transform n contiguous values in place.
    void forward(cplx* data) const { forward_strided(data, 1); }
    void inverse(cplx* data) const { inverse_strided(data, 1); }

    /// Transform n values at the given element stride in place.
    void forward_strided(cplx* data, std::size_t stride) const;
    void inverse_strided(cplx* data, std::size_t stride) const;

    /// Flop estimate for one transform (used by the netsim compute model).
    [[nodiscard]] double flops() const;

private:
    void radix2(cplx* data, std::size_t stride, bool inverse_sign) const;
    void bluestein(cplx* data, std::size_t stride, bool inverse_sign) const;

    std::size_t n_;
    bool pow2_;

    // radix-2 tables (for n_ itself when pow2, and for the convolution
    // length when using Bluestein).
    struct Radix2Tables {
        std::size_t n = 0;
        std::vector<std::size_t> bitrev;
        std::vector<cplx> twiddle; ///< w[k] = exp(-2*pi*i*k/n), k < n/2
    };
    static Radix2Tables make_tables(std::size_t n);
    static void radix2_core(const Radix2Tables& t, cplx* data, bool inverse_sign);

    Radix2Tables tables_;          ///< for n_ (pow2) or conv length (Bluestein)
    // Bluestein precomputation.
    std::vector<cplx> chirp_;      ///< b[k] = exp(-i*pi*k^2/n)
    std::vector<cplx> chirp_fft_;  ///< FFT of the padded conjugate chirp
    std::size_t conv_n_ = 0;
};

/// Process-wide plan cache: rank-threads repeatedly transform the same
/// lengths, and plan construction is O(n log n). Thread-safe.
const SerialFFT1D& plan_for(std::size_t n);

} // namespace beatnik::fft
