/// \file reshape.hpp
/// \brief Repartitioning of a distributed array between two box lists.
///
/// This is the heart of the heFFTe substitute: like heFFTe, a reshape is
/// planned by intersecting every source box with every destination box,
/// producing per-pair transfer rectangles. Execution either goes through
/// the alltoallv collective (the `AllToAll=true` configuration) or through
/// an explicit point-to-point message list touching only overlapping
/// peers (`AllToAll=false`, heFFTe's custom p2p path).
///
/// The plan itself is communication-free and can be built for any rank
/// count — the scaling benchmarks build P=1024 plans and feed their
/// message schedules straight into the netsim performance model.
#pragma once

#include <vector>

#include "comm/communicator.hpp"
#include "fft/layout.hpp"
#include "fft/serial_fft.hpp"

namespace beatnik::fft {

/// One planned transfer rectangle between a pair of ranks.
struct Transfer {
    int peer = 0;   ///< The other rank.
    Box2D box;      ///< Global index rectangle carried by this transfer.
};

/// A planned repartition from layout list A to layout list B over P ranks.
class ReshapePlan {
public:
    /// Plan the reshape for one rank. Box lists must tile the same global
    /// space (checked in debug builds via total element count).
    ReshapePlan(int rank, const std::vector<Box2D>& src_boxes,
                const std::vector<Box2D>& dst_boxes) {
        const int p = static_cast<int>(src_boxes.size());
        BEATNIK_REQUIRE(dst_boxes.size() == src_boxes.size(),
                        "reshape: box lists must have one box per rank");
        BEATNIK_REQUIRE(rank >= 0 && rank < p, "reshape: rank out of range");
        const Box2D& mine_src = src_boxes[static_cast<std::size_t>(rank)];
        const Box2D& mine_dst = dst_boxes[static_cast<std::size_t>(rank)];
        for (int r = 0; r < p; ++r) {
            Box2D out = mine_src.intersect(dst_boxes[static_cast<std::size_t>(r)]);
            if (!out.empty()) sends_.push_back({r, out});
            Box2D in = mine_dst.intersect(src_boxes[static_cast<std::size_t>(r)]);
            if (!in.empty()) recvs_.push_back({r, in});
        }
    }

    [[nodiscard]] const std::vector<Transfer>& sends() const { return sends_; }
    [[nodiscard]] const std::vector<Transfer>& recvs() const { return recvs_; }

    /// Execute the reshape. \p in is the local data in \p src layout;
    /// \p out is resized and filled in \p dst layout. \p use_alltoall
    /// selects the collective path vs the explicit p2p path.
    void execute(comm::Communicator& comm, const Layout2D& src, std::span<const cplx> in,
                 const Layout2D& dst, std::vector<cplx>& out, bool use_alltoall) const {
        BEATNIK_REQUIRE(in.size() == src.size(), "reshape: input size mismatch");
        out.assign(dst.size(), cplx{0.0, 0.0});
        if (use_alltoall) {
            execute_alltoall(comm, src, in, dst, out);
        } else {
            execute_p2p(comm, src, in, dst, out);
        }
    }

private:
    /// Pack a transfer rectangle in canonical (i-major) order.
    static void pack(const Layout2D& src, std::span<const cplx> in, const Box2D& box,
                     std::vector<cplx>& buf) {
        for (int i = box.i.begin; i < box.i.end; ++i) {
            for (int j = box.j.begin; j < box.j.end; ++j) buf.push_back(in[src.offset(i, j)]);
        }
    }

    static void unpack(const Layout2D& dst, std::vector<cplx>& out, const Box2D& box,
                       std::span<const cplx> buf) {
        std::size_t k = 0;
        for (int i = box.i.begin; i < box.i.end; ++i) {
            for (int j = box.j.begin; j < box.j.end; ++j) out[dst.offset(i, j)] = buf[k++];
        }
    }

    void execute_alltoall(comm::Communicator& comm, const Layout2D& src, std::span<const cplx> in,
                          const Layout2D& dst, std::vector<cplx>& out) const {
        const int p = comm.size();
        std::vector<std::size_t> sendcounts(static_cast<std::size_t>(p), 0);
        std::vector<cplx> packed;
        packed.reserve(src.size());
        // sends_ is ordered by peer, matching alltoallv's block order.
        for (const auto& t : sends_) {
            sendcounts[static_cast<std::size_t>(t.peer)] = t.box.size();
            pack(src, in, t.box, packed);
        }
        std::vector<std::size_t> recvcounts;
        auto received = comm.alltoallv(std::span<const cplx>(packed),
                                       std::span<const std::size_t>(sendcounts), recvcounts);
        std::size_t off = 0;
        for (const auto& t : recvs_) {
            BEATNIK_REQUIRE(recvcounts[static_cast<std::size_t>(t.peer)] == t.box.size(),
                            "reshape: unexpected block size from peer");
            unpack(dst, out, t.box,
                   std::span<const cplx>(received.data() + off, t.box.size()));
            off += t.box.size();
        }
        BEATNIK_REQUIRE(off == received.size(), "reshape: received data not fully consumed");
    }

    void execute_p2p(comm::Communicator& comm, const Layout2D& src, std::span<const cplx> in,
                     const Layout2D& dst, std::vector<cplx>& out) const {
        // heFFTe's custom path: only overlapping peers exchange messages.
        constexpr int kTag = 2000;
        std::vector<cplx> buf;
        for (const auto& t : sends_) {
            if (t.peer == comm.rank()) continue;
            buf.clear();
            pack(src, in, t.box, buf);
            comm.send(std::span<const cplx>(buf.data(), buf.size()), t.peer, kTag);
        }
        std::vector<cplx> incoming;
        for (const auto& t : recvs_) {
            if (t.peer == comm.rank()) {
                buf.clear();
                pack(src, in, t.box, buf);
                unpack(dst, out, t.box, std::span<const cplx>(buf.data(), buf.size()));
                continue;
            }
            comm.recv<cplx>(incoming, t.peer, kTag);
            BEATNIK_REQUIRE(incoming.size() == t.box.size(),
                            "reshape: unexpected p2p block size");
            unpack(dst, out, t.box, std::span<const cplx>(incoming.data(), incoming.size()));
        }
    }

    std::vector<Transfer> sends_;
    std::vector<Transfer> recvs_;
};

} // namespace beatnik::fft
