/// \file reshape.hpp
/// \brief Repartitioning of a distributed array between two box lists.
///
/// This is the heart of the heFFTe substitute: like heFFTe, a reshape is
/// planned by intersecting every source box with every destination box,
/// producing per-pair transfer rectangles. Execution either goes through
/// the alltoallv collective (the `AllToAll=true` configuration, which
/// inherits the communicator's zero-copy rendezvous path for large
/// blocks) or through a persistent comm::Plan touching only overlapping
/// peers (`AllToAll=false`, heFFTe's custom p2p path): the plan is bound
/// on first execution, packs rectangles straight into pre-registered
/// channel buffers, and unpacks arrivals in completion order — no
/// per-sweep staging allocation and real send/recv overlap.
///
/// The plan itself is communication-free and can be built for any rank
/// count — the scaling benchmarks build P=1024 plans and feed their
/// message schedules straight into the netsim performance model.
#pragma once

#include <memory>
#include <vector>

#include "fft/layout.hpp"
#include "fft/plan_cache.hpp"
#include "telemetry/telemetry.hpp"

namespace beatnik::fft {

/// One planned transfer rectangle between a pair of ranks.
struct Transfer {
    int peer = 0;   ///< The other rank.
    Box2D box;      ///< Global index rectangle carried by this transfer.
};

/// A planned repartition from layout list A to layout list B over P ranks.
class ReshapePlan {
public:
    /// Plan the reshape for one rank. Box lists must tile the same global
    /// space (checked in debug builds via total element count).
    ReshapePlan(int rank, const std::vector<Box2D>& src_boxes,
                const std::vector<Box2D>& dst_boxes) {
        const int p = static_cast<int>(src_boxes.size());
        BEATNIK_REQUIRE(dst_boxes.size() == src_boxes.size(),
                        "reshape: box lists must have one box per rank");
        BEATNIK_REQUIRE(rank >= 0 && rank < p, "reshape: rank out of range");
        const Box2D& mine_src = src_boxes[static_cast<std::size_t>(rank)];
        const Box2D& mine_dst = dst_boxes[static_cast<std::size_t>(rank)];
        for (int r = 0; r < p; ++r) {
            Box2D out = mine_src.intersect(dst_boxes[static_cast<std::size_t>(r)]);
            if (!out.empty()) sends_.push_back({r, out});
            Box2D in = mine_dst.intersect(src_boxes[static_cast<std::size_t>(r)]);
            if (!in.empty()) {
                recv_coverage_ += in.size();
                recvs_.push_back({r, in});
            }
        }
    }

    [[nodiscard]] const std::vector<Transfer>& sends() const { return sends_; }
    [[nodiscard]] const std::vector<Transfer>& recvs() const { return recvs_; }

    /// Switch the p2p path to device staging: the persistent plan's
    /// transport buffers are pinned at bind, rectangle packs/unpacks run
    /// as kernels on \p q (so `in`/`out` must be device-accessible —
    /// pinned host ranges in practice), and each send publishes on its
    /// own pack-completion event, overlapping pack with communication.
    /// The alltoall path is unaffected (host code reads the pinned
    /// buffers directly). Safe to call after host sweeps already bound
    /// the plan: the existing binding is pinned in place.
    void enable_device(par::device::Queue& q) {
        p2p_->queue = &q;
        if (p2p_->plan.has_value()) p2p_->setup_device();
    }

    [[nodiscard]] bool device_enabled() const { return p2p_->queue != nullptr; }

    /// Execute the reshape. \p in is the local data in \p src layout;
    /// \p out is resized and filled in \p dst layout. \p use_alltoall
    /// selects the collective path vs the persistent-plan p2p path.
    void execute(comm::Communicator& comm, const Layout2D& src, std::span<const cplx> in,
                 const Layout2D& dst, std::vector<cplx>& out, bool use_alltoall) const {
        telemetry::Scope span("fft.reshape", in.size() * sizeof(cplx),
                              use_alltoall ? 1 : 0);
        BEATNIK_REQUIRE(in.size() == src.size(), "reshape: input size mismatch");
        // Every element of the output is written exactly once by a recv
        // rectangle (the recv boxes are disjoint and cover the destination
        // box — checked below), so no zero-fill pass is needed: resize
        // without assign, and reused buffers skip even the one-time fill.
        BEATNIK_ASSERT(recv_coverage_ == dst.size(),
                       "reshape: recv boxes do not cover the destination layout");
        out.resize(dst.size());
        if (use_alltoall) {
            execute_alltoall(comm, src, in, dst, out);
        } else {
            execute_p2p(comm, src, in, dst, out);
        }
    }

private:
    /// Pack a transfer rectangle in canonical (i-major) order.
    static void pack(const Layout2D& src, std::span<const cplx> in, const Box2D& box,
                     std::vector<cplx>& buf) {
        for (int i = box.i.begin; i < box.i.end; ++i) {
            for (int j = box.j.begin; j < box.j.end; ++j) buf.push_back(in[src.offset(i, j)]);
        }
    }

    /// Pack directly into caller-provided storage (the plan's transport
    /// buffer) — no staging vector. In the common j-fastest layout the
    /// wire order matches memory order, so each box row moves as one
    /// block copy.
    static void pack_into(const Layout2D& src, std::span<const cplx> in, const Box2D& box,
                          cplx* out) {
        if (src.fast_axis == 1) {
            const std::size_t row = static_cast<std::size_t>(box.j.extent());
            for (int i = box.i.begin; i < box.i.end; ++i, out += row) {
                std::copy_n(in.data() + src.offset(i, box.j.begin), row, out);
            }
            return;
        }
        for (int i = box.i.begin; i < box.i.end; ++i) {
            for (int j = box.j.begin; j < box.j.end; ++j) *out++ = in[src.offset(i, j)];
        }
    }

    static void unpack(const Layout2D& dst, std::vector<cplx>& out, const Box2D& box,
                       std::span<const cplx> buf) {
        if (dst.fast_axis == 1) {
            const std::size_t row = static_cast<std::size_t>(box.j.extent());
            std::size_t k = 0;
            for (int i = box.i.begin; i < box.i.end; ++i, k += row) {
                std::copy_n(buf.data() + k, row, out.data() + dst.offset(i, box.j.begin));
            }
            return;
        }
        std::size_t k = 0;
        for (int i = box.i.begin; i < box.i.end; ++i) {
            for (int j = box.j.begin; j < box.j.end; ++j) out[dst.offset(i, j)] = buf[k++];
        }
    }

    void execute_alltoall(comm::Communicator& comm, const Layout2D& src, std::span<const cplx> in,
                          const Layout2D& dst, std::vector<cplx>& out) const {
        const int p = comm.size();
        std::vector<std::size_t> sendcounts(static_cast<std::size_t>(p), 0);
        std::vector<cplx> packed;
        packed.reserve(src.size());
        // sends_ is ordered by peer, matching alltoallv's block order.
        for (const auto& t : sends_) {
            sendcounts[static_cast<std::size_t>(t.peer)] = t.box.size();
            pack(src, in, t.box, packed);
        }
        std::vector<std::size_t> recvcounts;
        auto received = comm.alltoallv(std::span<const cplx>(packed),
                                       std::span<const std::size_t>(sendcounts), recvcounts);
        std::size_t off = 0;
        for (const auto& t : recvs_) {
            BEATNIK_REQUIRE(recvcounts[static_cast<std::size_t>(t.peer)] == t.box.size(),
                            "reshape: unexpected block size from peer");
            unpack(dst, out, t.box,
                   std::span<const cplx>(received.data() + off, t.box.size()));
            off += t.box.size();
        }
        BEATNIK_REQUIRE(off == received.size(), "reshape: received data not fully consumed");
    }

    void execute_p2p(comm::Communicator& comm, const Layout2D& src, std::span<const cplx> in,
                     const Layout2D& dst, std::vector<cplx>& out) const {
        if (p2p_->queue != nullptr) {
            execute_p2p_device(comm, src, in, dst, out);
            return;
        }
        // heFFTe's custom path: only overlapping peers exchange messages,
        // through persistent pre-matched channels (see plan_cache.hpp).
        p2p_->execute(
            comm, sends_, recvs_,
            [&](const Box2D& box, cplx* slot) { pack_into(src, in, box, slot); },
            [&](const Box2D& box, std::vector<cplx>& buf) { pack(src, in, box, buf); },
            [&](const Box2D& box, std::span<const cplx> data) { unpack(dst, out, box, data); },
            "reshape: unexpected p2p block size");
    }

    /// devcheck footprint of \p box inside layout \p l at \p base: the
    /// bounding byte range (offset() is monotone in both indices).
    static par::device::devcheck::Region box_region(const Layout2D& l, const cplx* base,
                                                    const Box2D& box, bool is_write) {
        if (box.size() == 0) return {nullptr, 0, is_write};
        const std::size_t first = l.offset(box.i.begin, box.j.begin);
        const std::size_t last = l.offset(box.i.end - 1, box.j.end - 1);
        return {base + first, (last - first + 1) * sizeof(cplx), is_write};
    }

    /// Device-kernel copy of a box from layout \p src in \p in to the
    /// canonical i-major wire order at \p slot.
    static void device_pack_box(par::device::Queue& q, const Layout2D& src, const cplx* in,
                                const Box2D& box, cplx* slot) {
        const int ib = box.i.begin;
        const int jb = box.j.begin;
        const int rowlen = box.j.extent();
        const Layout2D layout = src;
        namespace dc = par::device::devcheck;
        dc::declare(q, "ReshapePlan device pack",
                    {box_region(src, in, box, false),
                     dc::write(slot, box.size() * sizeof(cplx))});
        q.parallel_for(static_cast<std::size_t>(box.i.extent()), [=](std::size_t r) {
            const int i = ib + static_cast<int>(r);
            cplx* dst = slot + r * static_cast<std::size_t>(rowlen);
            for (int j = jb; j < jb + rowlen; ++j) dst[j - jb] = in[layout.offset(i, j)];
        });
    }

    /// Device-kernel inverse: wire order at \p data into layout \p dst.
    static void device_unpack_box(par::device::Queue& q, const Layout2D& dst, cplx* out,
                                  const Box2D& box, const cplx* data) {
        const int ib = box.i.begin;
        const int jb = box.j.begin;
        const int rowlen = box.j.extent();
        const Layout2D layout = dst;
        namespace dc = par::device::devcheck;
        dc::declare(q, "ReshapePlan device unpack",
                    {dc::read(data, box.size() * sizeof(cplx)),
                     box_region(dst, out, box, true)});
        q.parallel_for(static_cast<std::size_t>(box.i.extent()), [=](std::size_t r) {
            const int i = ib + static_cast<int>(r);
            const cplx* s = data + r * static_cast<std::size_t>(rowlen);
            for (int j = jb; j < jb + rowlen; ++j) out[layout.offset(i, j)] = s[j - jb];
        });
    }

    /// The device sweep: packs go straight from the (pinned) source array
    /// into the pinned plan buffers as kernels, each send publishing on
    /// its own completion event; the self rectangle is one direct
    /// in->out kernel; arrivals unpack as kernels and release on their
    /// own events. The closing fence makes `out` host-readable (the
    /// caller runs FFT butterflies on it next).
    void execute_p2p_device(comm::Communicator& comm, const Layout2D& src,
                            std::span<const cplx> in, const Layout2D& dst,
                            std::vector<cplx>& out) const {
        auto& c = *p2p_;
        c.bind(comm, sends_, recvs_);
        par::device::Queue& q = *c.queue;
        auto& rt = par::device::Runtime::instance();
        BEATNIK_REQUIRE(rt.device_accessible(in.data(), in.size_bytes()),
                        "device reshape: source array is not device-accessible — pin it first");
        BEATNIK_REQUIRE(rt.device_accessible(out.data(), out.size() * sizeof(cplx)),
                        "device reshape: output array is not device-accessible — pin it first");
        namespace dc = par::device::devcheck;
        c.plan->start();
        c.send_keys.assign(c.send_slots.size(), nullptr);
        c.recv_keys.assign(c.recv_slots.size(), nullptr);
        for (std::size_t s = 0; s < c.send_slots.size(); ++s) {
            const auto& [slot, t] = c.send_slots[s];
            const Box2D& box = sends_[t].box;
            auto buf = c.plan->send_buffer(slot, box.size() * sizeof(cplx));
            c.send_keys[s] = buf.data();
            dc::channel_send_acquire(buf.data());
            device_pack_box(q, src, in.data(), box, reinterpret_cast<cplx*>(buf.data()));
            q.record_event_into(c.send_events[s]);
        }
        for (std::size_t s = 0; s < c.send_slots.size(); ++s) {
            c.send_events[s].wait();
            dc::channel_publish(c.send_keys[s], "ReshapePlan device publish");
            c.plan->publish(c.send_slots[s].first);
        }
        // Self rectangle: one direct device copy, no staging.
        for (const auto& t : recvs_) {
            if (t.peer != comm.rank()) continue;
            const Box2D& box = t.box;
            const int ib = box.i.begin;
            const int jb = box.j.begin;
            const int rowlen = box.j.extent();
            const Layout2D lsrc = src;
            const Layout2D ldst = dst;
            const cplx* ip = in.data();
            cplx* op = out.data();
            dc::declare(q, "ReshapePlan self rectangle",
                        {box_region(lsrc, ip, box, false), box_region(ldst, op, box, true)});
            q.parallel_for(static_cast<std::size_t>(box.i.extent()), [=](std::size_t r) {
                const int i = ib + static_cast<int>(r);
                for (int j = jb; j < jb + rowlen; ++j) {
                    op[ldst.offset(i, j)] = ip[lsrc.offset(i, j)];
                }
            });
        }
        c.arrived.clear();
        for (std::size_t done = 0; done < c.recv_slots.size(); ++done) {
            int s = c.plan->wait_any_recv();
            BEATNIK_ASSERT(s >= 0);
            const Box2D& box = recvs_[c.recv_slots[static_cast<std::size_t>(s)].second].box;
            auto incoming = c.plan->recv_view_as<cplx>(s);
            BEATNIK_REQUIRE(incoming.size() == box.size(), "reshape: unexpected p2p block size");
            c.recv_keys[static_cast<std::size_t>(s)] = incoming.data();
            dc::channel_recv_acquire(incoming.data(), "ReshapePlan device recv");
            device_unpack_box(q, dst, out.data(), box, incoming.data());
            q.record_event_into(c.recv_events[static_cast<std::size_t>(s)]);
            c.arrived.push_back(s);
        }
        for (int s : c.arrived) {
            c.recv_events[static_cast<std::size_t>(s)].wait();
            dc::channel_release(c.recv_keys[static_cast<std::size_t>(s)],
                                "ReshapePlan device release");
            c.plan->release_recv(s);
        }
        q.fence(); // devcheck: fenced — caller's host FFT reads `out` next
    }

    std::vector<Transfer> sends_;
    std::vector<Transfer> recvs_;
    std::size_t recv_coverage_ = 0;   ///< sum of recv rectangle sizes
    /// Execution-time p2p binding, shared by copies and touched only from
    /// the owning rank-thread (see fft/plan_cache.hpp).
    std::shared_ptr<detail::P2PPlanCache> p2p_ = std::make_shared<detail::P2PPlanCache>();
};

} // namespace beatnik::fft
