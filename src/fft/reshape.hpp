/// \file reshape.hpp
/// \brief Repartitioning of a distributed array between two box lists.
///
/// This is the heart of the heFFTe substitute: like heFFTe, a reshape is
/// planned by intersecting every source box with every destination box,
/// producing per-pair transfer rectangles. Execution either goes through
/// the alltoallv collective (the `AllToAll=true` configuration, which
/// inherits the communicator's zero-copy rendezvous path for large
/// blocks) or through a persistent comm::Plan touching only overlapping
/// peers (`AllToAll=false`, heFFTe's custom p2p path): the plan is bound
/// on first execution, packs rectangles straight into pre-registered
/// channel buffers, and unpacks arrivals in completion order — no
/// per-sweep staging allocation and real send/recv overlap.
///
/// The plan itself is communication-free and can be built for any rank
/// count — the scaling benchmarks build P=1024 plans and feed their
/// message schedules straight into the netsim performance model.
#pragma once

#include <memory>
#include <vector>

#include "fft/layout.hpp"
#include "fft/plan_cache.hpp"

namespace beatnik::fft {

/// One planned transfer rectangle between a pair of ranks.
struct Transfer {
    int peer = 0;   ///< The other rank.
    Box2D box;      ///< Global index rectangle carried by this transfer.
};

/// A planned repartition from layout list A to layout list B over P ranks.
class ReshapePlan {
public:
    /// Plan the reshape for one rank. Box lists must tile the same global
    /// space (checked in debug builds via total element count).
    ReshapePlan(int rank, const std::vector<Box2D>& src_boxes,
                const std::vector<Box2D>& dst_boxes) {
        const int p = static_cast<int>(src_boxes.size());
        BEATNIK_REQUIRE(dst_boxes.size() == src_boxes.size(),
                        "reshape: box lists must have one box per rank");
        BEATNIK_REQUIRE(rank >= 0 && rank < p, "reshape: rank out of range");
        const Box2D& mine_src = src_boxes[static_cast<std::size_t>(rank)];
        const Box2D& mine_dst = dst_boxes[static_cast<std::size_t>(rank)];
        for (int r = 0; r < p; ++r) {
            Box2D out = mine_src.intersect(dst_boxes[static_cast<std::size_t>(r)]);
            if (!out.empty()) sends_.push_back({r, out});
            Box2D in = mine_dst.intersect(src_boxes[static_cast<std::size_t>(r)]);
            if (!in.empty()) {
                recv_coverage_ += in.size();
                recvs_.push_back({r, in});
            }
        }
    }

    [[nodiscard]] const std::vector<Transfer>& sends() const { return sends_; }
    [[nodiscard]] const std::vector<Transfer>& recvs() const { return recvs_; }

    /// Execute the reshape. \p in is the local data in \p src layout;
    /// \p out is resized and filled in \p dst layout. \p use_alltoall
    /// selects the collective path vs the persistent-plan p2p path.
    void execute(comm::Communicator& comm, const Layout2D& src, std::span<const cplx> in,
                 const Layout2D& dst, std::vector<cplx>& out, bool use_alltoall) const {
        BEATNIK_REQUIRE(in.size() == src.size(), "reshape: input size mismatch");
        // Every element of the output is written exactly once by a recv
        // rectangle (the recv boxes are disjoint and cover the destination
        // box — checked below), so no zero-fill pass is needed: resize
        // without assign, and reused buffers skip even the one-time fill.
        BEATNIK_ASSERT(recv_coverage_ == dst.size(),
                       "reshape: recv boxes do not cover the destination layout");
        out.resize(dst.size());
        if (use_alltoall) {
            execute_alltoall(comm, src, in, dst, out);
        } else {
            execute_p2p(comm, src, in, dst, out);
        }
    }

private:
    /// Pack a transfer rectangle in canonical (i-major) order.
    static void pack(const Layout2D& src, std::span<const cplx> in, const Box2D& box,
                     std::vector<cplx>& buf) {
        for (int i = box.i.begin; i < box.i.end; ++i) {
            for (int j = box.j.begin; j < box.j.end; ++j) buf.push_back(in[src.offset(i, j)]);
        }
    }

    /// Pack directly into caller-provided storage (the plan's transport
    /// buffer) — no staging vector. In the common j-fastest layout the
    /// wire order matches memory order, so each box row moves as one
    /// block copy.
    static void pack_into(const Layout2D& src, std::span<const cplx> in, const Box2D& box,
                          cplx* out) {
        if (src.fast_axis == 1) {
            const std::size_t row = static_cast<std::size_t>(box.j.extent());
            for (int i = box.i.begin; i < box.i.end; ++i, out += row) {
                std::copy_n(in.data() + src.offset(i, box.j.begin), row, out);
            }
            return;
        }
        for (int i = box.i.begin; i < box.i.end; ++i) {
            for (int j = box.j.begin; j < box.j.end; ++j) *out++ = in[src.offset(i, j)];
        }
    }

    static void unpack(const Layout2D& dst, std::vector<cplx>& out, const Box2D& box,
                       std::span<const cplx> buf) {
        if (dst.fast_axis == 1) {
            const std::size_t row = static_cast<std::size_t>(box.j.extent());
            std::size_t k = 0;
            for (int i = box.i.begin; i < box.i.end; ++i, k += row) {
                std::copy_n(buf.data() + k, row, out.data() + dst.offset(i, box.j.begin));
            }
            return;
        }
        std::size_t k = 0;
        for (int i = box.i.begin; i < box.i.end; ++i) {
            for (int j = box.j.begin; j < box.j.end; ++j) out[dst.offset(i, j)] = buf[k++];
        }
    }

    void execute_alltoall(comm::Communicator& comm, const Layout2D& src, std::span<const cplx> in,
                          const Layout2D& dst, std::vector<cplx>& out) const {
        const int p = comm.size();
        std::vector<std::size_t> sendcounts(static_cast<std::size_t>(p), 0);
        std::vector<cplx> packed;
        packed.reserve(src.size());
        // sends_ is ordered by peer, matching alltoallv's block order.
        for (const auto& t : sends_) {
            sendcounts[static_cast<std::size_t>(t.peer)] = t.box.size();
            pack(src, in, t.box, packed);
        }
        std::vector<std::size_t> recvcounts;
        auto received = comm.alltoallv(std::span<const cplx>(packed),
                                       std::span<const std::size_t>(sendcounts), recvcounts);
        std::size_t off = 0;
        for (const auto& t : recvs_) {
            BEATNIK_REQUIRE(recvcounts[static_cast<std::size_t>(t.peer)] == t.box.size(),
                            "reshape: unexpected block size from peer");
            unpack(dst, out, t.box,
                   std::span<const cplx>(received.data() + off, t.box.size()));
            off += t.box.size();
        }
        BEATNIK_REQUIRE(off == received.size(), "reshape: received data not fully consumed");
    }

    void execute_p2p(comm::Communicator& comm, const Layout2D& src, std::span<const cplx> in,
                     const Layout2D& dst, std::vector<cplx>& out) const {
        // heFFTe's custom path: only overlapping peers exchange messages,
        // through persistent pre-matched channels (see plan_cache.hpp).
        p2p_->execute(
            comm, sends_, recvs_,
            [&](const Box2D& box, cplx* slot) { pack_into(src, in, box, slot); },
            [&](const Box2D& box, std::vector<cplx>& buf) { pack(src, in, box, buf); },
            [&](const Box2D& box, std::span<const cplx> data) { unpack(dst, out, box, data); },
            "reshape: unexpected p2p block size");
    }

    std::vector<Transfer> sends_;
    std::vector<Transfer> recvs_;
    std::size_t recv_coverage_ = 0;   ///< sum of recv rectangle sizes
    /// Execution-time p2p binding, shared by copies and touched only from
    /// the owning rank-thread (see fft/plan_cache.hpp).
    std::shared_ptr<detail::P2PPlanCache> p2p_ = std::make_shared<detail::P2PPlanCache>();
};

} // namespace beatnik::fft
