/// \file layout.hpp
/// \brief Boxes (index sub-rectangles) and local memory layouts for the
/// distributed transforms.
#pragma once

#include <array>
#include <cstddef>

#include "base/error.hpp"
#include "grid/index_space.hpp"

namespace beatnik::fft {

/// A rectangular subset of the global 2D index space. Reuses the grid
/// module's index-space type — a box *is* an index rectangle.
using Box2D = grid::IndexSpace2D;

/// Memory layout of a box: row-major with a selectable fast (unit-stride)
/// axis. fast_axis == 1 is the mesh-native layout (j fastest); the
/// `reorder` knob flips intermediate stages to make the transform axis
/// contiguous, exactly heFFTe's reorder option.
struct Layout2D {
    Box2D box;
    int fast_axis = 1;

    [[nodiscard]] std::size_t size() const { return box.size(); }

    /// Linear offset of global index (gi, gj) inside this layout.
    [[nodiscard]] std::size_t offset(int gi, int gj) const {
        BEATNIK_ASSERT(box.contains(gi, gj));
        auto li = static_cast<std::size_t>(gi - box.i.begin);
        auto lj = static_cast<std::size_t>(gj - box.j.begin);
        if (fast_axis == 1) {
            return li * static_cast<std::size_t>(box.j.extent()) + lj;
        }
        return lj * static_cast<std::size_t>(box.i.extent()) + li;
    }

    /// Element stride between consecutive indices along \p axis.
    [[nodiscard]] std::size_t stride(int axis) const {
        if (axis == fast_axis) return 1;
        return static_cast<std::size_t>(fast_axis == 1 ? box.j.extent() : box.i.extent());
    }

    /// Offset of the first element of the 1D line that runs along \p axis
    /// and crosses the box at cross-index \p cross (a global index on the
    /// other axis).
    [[nodiscard]] std::size_t line_offset(int axis, int cross) const {
        return axis == 0 ? offset(box.i.begin, cross) : offset(cross, box.j.begin);
    }
};

} // namespace beatnik::fft
