/// \file cell_list.hpp
/// \brief Device-friendly fixed-radius cell list: count–scan–fill over a
/// dense cell grid.
///
/// The device-resident replacement for BinGrid3D's hash-map binning
/// (paper §3.2 step 3). The structure is the classic GPU cell list:
///
///   1. bounds   — per-chunk min/max of the points' cell coordinates,
///                 folded on the host (min/max are associative, so the
///                 chunking cannot change the result);
///   2. count    — one atomic increment per point into a dense per-cell
///                 counter array;
///   3. scan     — deterministic exclusive prefix scan of the counters
///                 (par/device/scan.hpp) giving CSR cell offsets;
///   4. fill     — atomic-cursor scatter of point indices into their
///                 cells (order within a cell is racy here);
///   5. sort     — per-cell ascending sort of the point indices, which
///                 erases the fill races and makes the structure exactly
///                 what the serial fill-in-index-order build produces.
///
/// Cells are cubes of edge == search radius, addressed by
/// floor(coordinate / radius) exactly like BinGrid3D, and queries sweep
/// the same 27-cell stencil in the same dz/dy/dx order with ascending
/// point order inside each cell — so neighbor *enumeration order* (and
/// therefore any floating-point accumulation over it) is bitwise
/// identical to BinGrid3D's, host build and device build alike.
///
/// All storage is grow-only (PinnedStore): a steady-state rebuild over a
/// same-or-smaller point cloud allocates nothing, and the device build's
/// kernels write straight into the registered staging.
#pragma once

#include <atomic>
#include <cmath>
#include <cstdint>
#include <span>

#include "base/error.hpp"
#include "par/device/device.hpp"
#include "par/device/scan.hpp"
#include "search/neighbor_search.hpp"

namespace beatnik::search {

/// Kernel-safe description of the dense cell grid (POD, captured by
/// value into device kernels).
struct CellGrid {
    double cell = 0.0;             ///< cell edge length == search radius
    std::array<int, 3> lo{};       ///< minimum cell coordinate per axis
    std::array<int, 3> n{1, 1, 1}; ///< cells per axis (>= 1)

    /// Cell coordinate of a position along one axis — floor, matching
    /// BinGrid3D::cell_of so both structures bin identically.
    [[nodiscard]] static int coord(double v, double cell) {
        return static_cast<int>(std::floor(v / cell));
    }

    [[nodiscard]] std::size_t num_cells() const {
        return static_cast<std::size_t>(n[0]) * static_cast<std::size_t>(n[1]) *
               static_cast<std::size_t>(n[2]);
    }

    /// Linear cell index of *absolute* cell coordinates (must be inside).
    [[nodiscard]] std::size_t index(int cx, int cy, int cz) const {
        const auto ix = static_cast<std::size_t>(cx - lo[0]);
        const auto iy = static_cast<std::size_t>(cy - lo[1]);
        const auto iz = static_cast<std::size_t>(cz - lo[2]);
        return (iz * static_cast<std::size_t>(n[1]) + iy) * static_cast<std::size_t>(n[0]) + ix;
    }

    [[nodiscard]] bool contains(int cx, int cy, int cz) const {
        return cx >= lo[0] && cx < lo[0] + n[0] && cy >= lo[1] && cy < lo[1] + n[1] &&
               cz >= lo[2] && cz < lo[2] + n[2];
    }
};

/// Enumerate the sources within \p radius (strict, squared compare) of
/// query position \p qp, in exactly BinGrid3D's order: stencil cells in
/// dz/dy/dx order, ascending point index within each cell. Calls
/// f(source_index) for every hit, *including* an identical-position /
/// self source — exclusion is the caller's policy. Usable from host code
/// and device kernels alike (pure pointer math over the CSR arrays).
template <class F>
inline void visit_neighbors(const CellGrid& g, const std::uint32_t* cell_offsets,
                            const std::uint32_t* cell_points, const double* points,
                            const double* qp, double r2, F&& f) {
    const int qx = CellGrid::coord(qp[0], g.cell);
    const int qy = CellGrid::coord(qp[1], g.cell);
    const int qz = CellGrid::coord(qp[2], g.cell);
    for (int dz = -1; dz <= 1; ++dz) {
        for (int dy = -1; dy <= 1; ++dy) {
            for (int dx = -1; dx <= 1; ++dx) {
                const int cx = qx + dx, cy = qy + dy, cz = qz + dz;
                if (!g.contains(cx, cy, cz)) continue;
                const std::size_t c = g.index(cx, cy, cz);
                for (std::uint32_t m = cell_offsets[c]; m < cell_offsets[c + 1]; ++m) {
                    const std::uint32_t s = cell_points[m];
                    const double* sp = points + 3 * static_cast<std::size_t>(s);
                    const double ddx = qp[0] - sp[0];
                    const double ddy = qp[1] - sp[1];
                    const double ddz = qp[2] - sp[2];
                    if (ddx * ddx + ddy * ddy + ddz * ddz < r2) f(s);
                }
            }
        }
    }
}

/// Dense cell list over a 3D point set, rebuilt per particle snapshot.
///
/// Build on the host (serial, index-order fill) or on the device
/// (count–scan–fill kernels); the resulting CSR arrays are bitwise
/// identical either way. Query via the host query() (a NeighborList,
/// BinGrid3D-compatible) or by fusing visit_neighbors() into a kernel
/// over the exported raw arrays.
class CellList3D {
public:
    /// No self-exclusion sentinel for query() — see BinGrid3D::kNoSelf.
    static constexpr std::size_t kNoSelf = static_cast<std::size_t>(-1);

    /// Guard against pathological sparse clouds: a dense grid over a
    /// bounding box much larger than the radius would explode. The
    /// cutoff solver's box/cutoff ratios live far below this.
    static constexpr std::size_t kMaxCells = std::size_t{1} << 24;

    CellList3D() = default;

    [[nodiscard]] std::size_t size() const { return n_; }
    [[nodiscard]] double radius() const { return radius_; }
    [[nodiscard]] const CellGrid& grid() const { return grid_; }
    /// CSR cell offsets (num_cells + 1 entries).
    [[nodiscard]] const std::uint32_t* cell_offsets() const { return offsets_.data(); }
    /// Point indices grouped by cell, ascending within each cell.
    [[nodiscard]] const std::uint32_t* cell_points() const { return points_by_cell_.data(); }

    /// Serial build: assign cells, count, scan, then fill in ascending
    /// point order (so per-cell lists are sorted by construction).
    void build_host(std::span<const double> points, double radius) {
        begin_build(points.data(), points.size(), radius);
        if (n_ == 0) return;
        const double* pts = points.data();
        int mn[3], mx[3];
        for (int d = 0; d < 3; ++d) {
            mn[d] = mx[d] = CellGrid::coord(pts[d], radius);
        }
        for (std::size_t k = 1; k < n_; ++k) {
            for (int d = 0; d < 3; ++d) {
                const int c = CellGrid::coord(pts[3 * k + static_cast<std::size_t>(d)], radius);
                mn[d] = c < mn[d] ? c : mn[d];
                mx[d] = c > mx[d] ? c : mx[d];
            }
        }
        const std::size_t ncells = set_grid(mn, mx, /*pin=*/false);
        std::uint32_t* counts = offsets_.data();
        std::uint32_t* cell_of = cell_of_.data();
        for (std::size_t c = 0; c <= ncells; ++c) counts[c] = 0;
        for (std::size_t k = 0; k < n_; ++k) {
            const std::size_t c = cell_of_point(pts + 3 * k);
            cell_of[k] = static_cast<std::uint32_t>(c);
            ++counts[c];
        }
        std::uint32_t total = 0;
        for (std::size_t c = 0; c < ncells; ++c) {
            const std::uint32_t v = counts[c];
            counts[c] = total;
            total += v;
        }
        counts[ncells] = total;
        std::uint32_t* cursors = cursors_.data();
        for (std::size_t c = 0; c < ncells; ++c) cursors[c] = counts[c];
        for (std::size_t k = 0; k < n_; ++k) {
            points_by_cell_[cursors[cell_of[k]]++] = static_cast<std::uint32_t>(k);
        }
    }

    /// Device build over device-accessible \p points (registered host
    /// range or device heap): the count–scan–fill kernels of the file
    /// header, enqueued on \p q and fenced (the scan already requires
    /// host participation, and callers consume the totals immediately).
    /// Steady-state rebuilds are allocation-free once staging has grown
    /// to its high-water mark.
    void build_device(par::device::Queue& q, const double* points, std::size_t coords,
                      double radius) {
        begin_build(points, coords, radius);
        if (n_ == 0) return;
        const double cell = radius;
        const std::size_t nchunks = (n_ + kBoundsChunk - 1) / kBoundsChunk;
        bounds_.ensure_pinned(nchunks);
        // 1. bounds: per-chunk min/max cell coordinates, host fold.
        namespace dc = par::device::devcheck;
        {
            Bounds* parts = bounds_.data();
            const double* pts = points;
            const std::size_t n = n_;
            dc::declare(q, "cell-list bounds",
                        {dc::read(pts, 3 * n * sizeof(double)),
                         dc::write(parts, nchunks * sizeof(Bounds))});
            q.parallel_for(nchunks, [parts, pts, n, cell](std::size_t c) {
                const std::size_t b = c * kBoundsChunk;
                const std::size_t e = b + kBoundsChunk < n ? b + kBoundsChunk : n;
                Bounds bd;
                for (int d = 0; d < 3; ++d) {
                    bd.mn[d] = bd.mx[d] =
                        CellGrid::coord(pts[3 * b + static_cast<std::size_t>(d)], cell);
                }
                for (std::size_t k = b + 1; k < e; ++k) {
                    for (int d = 0; d < 3; ++d) {
                        const int v =
                            CellGrid::coord(pts[3 * k + static_cast<std::size_t>(d)], cell);
                        bd.mn[d] = v < bd.mn[d] ? v : bd.mn[d];
                        bd.mx[d] = v > bd.mx[d] ? v : bd.mx[d];
                    }
                }
                parts[c] = bd;
            });
            q.fence(); // devcheck: fenced — host folds the bounds partials
        }
        int mn[3], mx[3];
        for (int d = 0; d < 3; ++d) {
            mn[d] = bounds_[0].mn[d];
            mx[d] = bounds_[0].mx[d];
        }
        for (std::size_t c = 1; c < nchunks; ++c) {
            for (int d = 0; d < 3; ++d) {
                mn[d] = std::min(mn[d], bounds_[c].mn[d]);
                mx[d] = std::max(mx[d], bounds_[c].mx[d]);
            }
        }
        const std::size_t ncells = set_grid(mn, mx, /*pin=*/true);

        std::uint32_t* counts = offsets_.data();
        std::uint32_t* cell_of = cell_of_.data();
        std::uint32_t* cursors = cursors_.data();
        std::uint32_t* by_cell = points_by_cell_.data();
        const CellGrid g = grid_;
        const double* pts = points;
        // 2. count (+ remember each point's cell for the fill).
        dc::declare(q, "cell-list zero counts",
                    {dc::write(counts, (ncells + 1) * sizeof(std::uint32_t))});
        q.parallel_for(ncells + 1, [counts](std::size_t c) { counts[c] = 0; });
        dc::declare(q, "cell-list count",
                    {dc::read(pts, 3 * n_ * sizeof(double)),
                     dc::write(cell_of, n_ * sizeof(std::uint32_t)),
                     dc::write(counts, ncells * sizeof(std::uint32_t))});
        q.parallel_for(n_, [counts, cell_of, pts, g](std::size_t k) {
            const double* p = pts + 3 * k;
            const std::size_t c = g.index(CellGrid::coord(p[0], g.cell),
                                          CellGrid::coord(p[1], g.cell),
                                          CellGrid::coord(p[2], g.cell));
            cell_of[k] = static_cast<std::uint32_t>(c);
            std::atomic_ref<std::uint32_t>(counts[c]).fetch_add(1, std::memory_order_relaxed);
        });
        // 3. scan (fences internally; the host fold needs the partials).
        const std::uint32_t total = par::device::exclusive_scan(q, counts, ncells, scan_);
        BEATNIK_ASSERT(total == n_);
        offsets_[ncells] = total;
        // 4. fill through atomic per-cell cursors (racy within a cell).
        dc::declare(q, "cell-list cursor init",
                    {dc::read(counts, ncells * sizeof(std::uint32_t)),
                     dc::write(cursors, ncells * sizeof(std::uint32_t))});
        q.parallel_for(ncells, [cursors, counts](std::size_t c) { cursors[c] = counts[c]; });
        dc::declare(q, "cell-list fill",
                    {dc::read(cell_of, n_ * sizeof(std::uint32_t)),
                     dc::write(cursors, ncells * sizeof(std::uint32_t)),
                     dc::write(by_cell, n_ * sizeof(std::uint32_t))});
        q.parallel_for(n_, [cursors, cell_of, by_cell](std::size_t k) {
            const std::uint32_t slot = std::atomic_ref<std::uint32_t>(cursors[cell_of[k]])
                                           .fetch_add(1, std::memory_order_relaxed);
            by_cell[slot] = static_cast<std::uint32_t>(k);
        });
        // 5. per-cell ascending insertion sort: erases the fill races and
        // reproduces the serial fill-in-index-order layout bit for bit.
        dc::declare(q, "cell-list sort",
                    {dc::read(counts, (ncells + 1) * sizeof(std::uint32_t)),
                     dc::write(by_cell, n_ * sizeof(std::uint32_t))});
        q.parallel_for(ncells, [counts, by_cell](std::size_t c) {
            const std::uint32_t b = counts[c];
            const std::uint32_t e = counts[c + 1];
            for (std::uint32_t i = b + 1; i < e; ++i) {
                const std::uint32_t v = by_cell[i];
                std::uint32_t j = i;
                while (j > b && by_cell[j - 1] > v) {
                    by_cell[j] = by_cell[j - 1];
                    --j;
                }
                by_cell[j] = v;
            }
        });
        q.fence(); // devcheck: fenced — callers consume the CSR on the host
    }

    /// Neighbor lists for every query point, BinGrid3D-compatible (host
    /// compute; the device path fuses visit_neighbors into its kernels
    /// instead of materializing a list). \p self_offset maps query q to
    /// source q + self_offset for self-pair exclusion; kNoSelf disables
    /// exclusion. \p points must be the build's point array.
    [[nodiscard]] NeighborList query(std::span<const double> points,
                                     std::span<const double> queries,
                                     std::size_t self_offset) const {
        BEATNIK_REQUIRE(queries.size() % 3 == 0, "queries must be N x 3 coordinates");
        const std::size_t nq = queries.size() / 3;
        BEATNIK_REQUIRE(self_offset == kNoSelf || self_offset + nq <= n_,
                        "self_offset must map every query onto a source index");
        const double r2 = radius_ * radius_;
        NeighborList list;
        list.offsets.resize(nq + 1, 0);
        for (int pass = 0; pass < 2; ++pass) {
            for (std::size_t q = 0; q < nq; ++q) {
                const std::size_t self =
                    self_offset == kNoSelf ? kNoSelf : q + self_offset;
                std::uint32_t written = 0;
                visit_neighbors(grid_, offsets_.data(), points_by_cell_.data(), points.data(),
                                queries.data() + 3 * q, r2, [&](std::uint32_t s) {
                                    if (s == self) return;
                                    if (pass == 1) {
                                        list.indices[list.offsets[q] + written] = s;
                                    }
                                    ++written;
                                });
                if (pass == 0) list.offsets[q + 1] = written;
            }
            if (pass == 0) {
                for (std::size_t q = 0; q < nq; ++q) list.offsets[q + 1] += list.offsets[q];
                list.indices.resize(list.offsets[nq]);
            }
        }
        return list;
    }

private:
    struct Bounds {
        int mn[3];
        int mx[3];
    };
    static constexpr std::size_t kBoundsChunk = par::device::kScanChunk;

    /// Shared build preamble: validate, record shape, grow (host) or
    /// grow-and-pin (device callers pin afterwards via ensure_pinned on
    /// their own ensure calls) the staging.
    void begin_build(const double* points, std::size_t coords, double radius) {
        BEATNIK_REQUIRE(radius > 0.0, "search radius must be positive");
        BEATNIK_REQUIRE(coords % 3 == 0, "points must be N x 3 coordinates");
        BEATNIK_REQUIRE(coords == 0 || points != nullptr, "null point array");
        n_ = coords / 3;
        radius_ = radius;
        if (n_ == 0) {
            grid_ = CellGrid{radius, {0, 0, 0}, {1, 1, 1}};
            offsets_.ensure(2);
            offsets_[0] = offsets_[1] = 0;
        }
    }

    /// Fix the grid from folded cell-coordinate bounds and size the CSR
    /// staging (pinned when the device build's kernels will write it —
    /// the host build never touches the device runtime). Both builds
    /// funnel through here, so host/device grids are identical by
    /// construction.
    std::size_t set_grid(const int (&mn)[3], const int (&mx)[3], bool pin) {
        grid_.cell = radius_;
        for (int d = 0; d < 3; ++d) {
            grid_.lo[static_cast<std::size_t>(d)] = mn[d];
            grid_.n[static_cast<std::size_t>(d)] = mx[d] - mn[d] + 1;
        }
        const std::size_t ncells = grid_.num_cells();
        BEATNIK_REQUIRE(ncells <= kMaxCells,
                        "cell list grid too large — point cloud too sparse for this radius");
        if (pin) {
            offsets_.ensure_pinned(ncells + 1);
            cursors_.ensure_pinned(ncells);
            cell_of_.ensure_pinned(n_);
            points_by_cell_.ensure_pinned(n_);
        } else {
            offsets_.ensure(ncells + 1);
            cursors_.ensure(ncells);
            cell_of_.ensure(n_);
            points_by_cell_.ensure(n_);
        }
        return ncells;
    }

    [[nodiscard]] std::size_t cell_of_point(const double* p) const {
        return grid_.index(CellGrid::coord(p[0], grid_.cell), CellGrid::coord(p[1], grid_.cell),
                           CellGrid::coord(p[2], grid_.cell));
    }

    CellGrid grid_;
    double radius_ = 0.0;
    std::size_t n_ = 0;
    par::device::PinnedStore<std::uint32_t> offsets_;        ///< ncells + 1
    par::device::PinnedStore<std::uint32_t> cursors_;        ///< fill cursors
    par::device::PinnedStore<std::uint32_t> cell_of_;        ///< per-point cell
    par::device::PinnedStore<std::uint32_t> points_by_cell_; ///< CSR payload
    par::device::PinnedStore<Bounds> bounds_;                ///< bounds partials
    par::device::ScanScratch scan_;
};

} // namespace beatnik::search
