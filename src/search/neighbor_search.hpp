/// \file neighbor_search.hpp
/// \brief Fixed-radius neighbor search over 3D point sets — the ArborX
/// stand-in used by the cutoff Birkhoff–Rott solver (paper §3.2 step 3).
///
/// Algorithm: uniform binning with cell size == search radius, then a
/// 27-cell stencil sweep. This is the standard cell-list method for
/// fixed-radius queries and produces exactly the neighbor lists ArborX's
/// spatial queries would return (verified against brute force in tests).
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <span>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "base/error.hpp"

namespace beatnik::search {

/// Compressed (CSR) neighbor lists: neighbors of query point q are
/// indices[offsets[q] .. offsets[q+1]).
struct NeighborList {
    std::vector<std::uint32_t> offsets; ///< size = #queries + 1
    std::vector<std::uint32_t> indices; ///< concatenated neighbor ids

    [[nodiscard]] std::size_t num_queries() const {
        return offsets.empty() ? 0 : offsets.size() - 1;
    }
    [[nodiscard]] std::size_t count(std::size_t q) const {
        return offsets[q + 1] - offsets[q];
    }
    [[nodiscard]] std::span<const std::uint32_t> neighbors(std::size_t q) const {
        return {indices.data() + offsets[q], count(q)};
    }
};

/// Uniform bin grid over a 3D point set.
///
/// Build once per particle snapshot; query any point set against it.
/// Neighbor means strictly within `radius` (squared-distance compare,
/// self-pairs excluded when the query set is the source set).
class BinGrid3D {
public:
    /// \p points is an N x 3 row-major coordinate array.
    BinGrid3D(std::span<const double> points, double radius)
        : points_(points.begin(), points.end()), radius_(radius) {
        BEATNIK_REQUIRE(radius > 0.0, "search radius must be positive");
        BEATNIK_REQUIRE(points.size() % 3 == 0, "points must be N x 3 coordinates");
        const std::size_t n = points.size() / 3;
        cell_size_ = radius;
        for (std::size_t k = 0; k < n; ++k) {
            bins_[cell_of(&points_[3 * k])].push_back(static_cast<std::uint32_t>(k));
        }
    }

    [[nodiscard]] std::size_t size() const { return points_.size() / 3; }
    [[nodiscard]] double radius() const { return radius_; }

    /// Pass as \p self_offset when the query set is unrelated to the
    /// source set (no self-pair to exclude).
    static constexpr std::size_t kNoSelf = static_cast<std::size_t>(-1);

    /// Neighbor lists for every query point. \p self_offset makes the
    /// self-interaction exclusion explicit: query q corresponds to
    /// source q + self_offset, and that one source is skipped. The old
    /// boolean flag silently assumed the queries were an index-aligned
    /// *prefix* of the sources (self_offset == 0); any other caller got
    /// wrong-neighbor exclusion with no diagnostic, so the mapping is
    /// now a checked parameter (kNoSelf = no exclusion).
    [[nodiscard]] NeighborList query(std::span<const double> queries,
                                     std::size_t self_offset) const {
        BEATNIK_REQUIRE(queries.size() % 3 == 0, "queries must be N x 3 coordinates");
        const std::size_t nq = queries.size() / 3;
        BEATNIK_REQUIRE(self_offset == kNoSelf || self_offset + nq <= size(),
                        "self_offset must map every query onto a source index");
        const double r2 = radius_ * radius_;
        NeighborList list;
        list.offsets.resize(nq + 1, 0);
        // Two passes (count, fill) keep the CSR arrays tight without
        // intermediate per-query vectors.
        for (int pass = 0; pass < 2; ++pass) {
            for (std::size_t q = 0; q < nq; ++q) {
                const double* qp = &queries[3 * q];
                auto qc = cell_of(qp);
                const std::size_t self = self_offset == kNoSelf ? kNoSelf : q + self_offset;
                std::uint32_t written = 0;
                for (int dz = -1; dz <= 1; ++dz) {
                    for (int dy = -1; dy <= 1; ++dy) {
                        for (int dx = -1; dx <= 1; ++dx) {
                            auto it = bins_.find(
                                {qc[0] + dx, qc[1] + dy, qc[2] + dz});
                            if (it == bins_.end()) continue;
                            for (std::uint32_t s : it->second) {
                                if (s == self) continue;
                                const double* sp = &points_[3 * s];
                                double d2 = sq(qp[0] - sp[0]) + sq(qp[1] - sp[1]) +
                                            sq(qp[2] - sp[2]);
                                if (d2 < r2) {
                                    if (pass == 1) {
                                        list.indices[list.offsets[q] + written] = s;
                                    }
                                    ++written;
                                }
                            }
                        }
                    }
                }
                if (pass == 0) list.offsets[q + 1] = written;
            }
            if (pass == 0) {
                for (std::size_t q = 0; q < nq; ++q) list.offsets[q + 1] += list.offsets[q];
                list.indices.resize(list.offsets[nq]);
            }
        }
        return list;
    }

    /// The pre-contract boolean form is a compile error: `true` would
    /// silently convert to self_offset == 1 and exclude the *wrong*
    /// source. (A deduced template so integer literals still bind to the
    /// std::size_t overload above.)
    template <class B, std::enable_if_t<std::is_same_v<B, bool>, int> = 0>
    NeighborList query(std::span<const double>, B) const = delete;

private:
    using Cell = std::array<int, 3>;
    struct CellHash {
        std::size_t operator()(const Cell& c) const {
            // Large-prime mix; cells are small ints so this is collision-light.
            auto h = static_cast<std::size_t>(c[0]) * 73856093u;
            h ^= static_cast<std::size_t>(c[1]) * 19349663u;
            h ^= static_cast<std::size_t>(c[2]) * 83492791u;
            return h;
        }
    };

    static double sq(double v) { return v * v; }

    [[nodiscard]] Cell cell_of(const double* p) const {
        return {static_cast<int>(std::floor(p[0] / cell_size_)),
                static_cast<int>(std::floor(p[1] / cell_size_)),
                static_cast<int>(std::floor(p[2] / cell_size_))};
    }

    std::vector<double> points_;
    double radius_;
    double cell_size_ = 0.0;
    std::unordered_map<Cell, std::vector<std::uint32_t>, CellHash> bins_;
};

/// O(N*M) reference used by tests and accuracy studies. \p self_offset
/// follows the BinGrid3D::query contract (BinGrid3D::kNoSelf disables
/// self-pair exclusion).
[[nodiscard]] inline NeighborList brute_force_neighbors(std::span<const double> points,
                                                        std::span<const double> queries,
                                                        double radius,
                                                        std::size_t self_offset) {
    const std::size_t n = points.size() / 3;
    const std::size_t nq = queries.size() / 3;
    BEATNIK_REQUIRE(self_offset == BinGrid3D::kNoSelf || self_offset + nq <= n,
                    "self_offset must map every query onto a source index");
    const double r2 = radius * radius;
    NeighborList list;
    list.offsets.resize(nq + 1, 0);
    for (std::size_t q = 0; q < nq; ++q) {
        const std::size_t self = self_offset == BinGrid3D::kNoSelf ? BinGrid3D::kNoSelf
                                                                   : q + self_offset;
        for (std::size_t s = 0; s < n; ++s) {
            if (s == self) continue;
            double d2 = 0.0;
            for (int d = 0; d < 3; ++d) {
                double diff = queries[3 * q + static_cast<std::size_t>(d)] -
                              points[3 * s + static_cast<std::size_t>(d)];
                d2 += diff * diff;
            }
            if (d2 < r2) {
                list.indices.push_back(static_cast<std::uint32_t>(s));
                ++list.offsets[q + 1];
            }
        }
    }
    for (std::size_t q = 0; q < nq; ++q) list.offsets[q + 1] += list.offsets[q];
    return list;
}

} // namespace beatnik::search
