/// \file solver.hpp
/// \brief Top-level solver facade (paper §3.1, Solver module): builds the
/// mesh, state, Z-Model, BR solver and integrator from a parameter set
/// and runs timesteps.
#pragma once

#include <memory>
#include <numbers>

#include "core/cutoff_br_solver.hpp"
#include "core/exact_br_solver.hpp"
#include "core/time_integrator.hpp"
#include "telemetry/metrics.hpp"

namespace beatnik {

class Solver {
public:
    Solver(comm::Communicator& comm, Params params)
        : params_(validated(std::move(params))), mesh_(comm, params_),
          pm_(comm, mesh_, params_) {
        if (params_.order != Order::low) {
            if (params_.br_solver == BRSolverKind::exact) {
                br_ = std::make_unique<ExactBRSolver>(mesh_, params_);
            } else {
                br_ = std::make_unique<CutoffBRSolver>(mesh_, params_);
            }
        }
        model_ = std::make_unique<ZModel>(comm, mesh_, params_, br_.get());
        integrator_ = std::make_unique<TimeIntegrator>(mesh_, *model_);
        dt_ = params_.dt > 0.0 ? params_.dt : default_dt();
        // Armed runs: contribute this rank's metrics to the cross-rank
        // rollup emitted at flush (min/med/max per step across ranks).
        if (telemetry::enabled()) {
            telemetry::MetricsRegistry::instance().register_set(comm.world_rank(),
                                                                metrics_);
        }
    }

    /// Automatic timestep: stay below both the fastest RT growth time at
    /// the grid scale (sigma_max = sqrt(A g k_max), k_max = pi/dx) and the
    /// explicit-diffusion stability limit of the artificial viscosity.
    [[nodiscard]] double default_dt() const {
        const double dmin = std::min(mesh_.global().spacing(0), mesh_.global().spacing(1));
        const double sigma_max =
            std::sqrt(params_.atwood * params_.gravity * std::numbers::pi / dmin);
        double dt = params_.cfl / sigma_max;
        const double mu_eff = mesh_.effective_mu(params_.mu);
        if (mu_eff > 0.0) dt = std::min(dt, 0.2 * dmin * dmin / mu_eff);
        return dt;
    }

    /// Advance one timestep (three ZModel evaluations). Collective.
    /// Binds this solver's MetricSet for the duration of the step so every
    /// PhaseScope down the stack (integrator, zmodel, halo, fft, br)
    /// accumulates into this rank's metrics, then folds the step's deltas
    /// at the boundary.
    void step() {
        telemetry::ScopedMetricSet bind(metrics_.get());
        {
            static const telemetry::Phase ph{"step"};
            telemetry::PhaseScope scope(ph);
            integrator_->step(pm_, dt_);
        }
        metrics_->commit_step();
        time_ += dt_;
        ++step_count_;
    }

    /// Advance \p n timesteps.
    void advance(int n) {
        for (int s = 0; s < n; ++s) step();
    }

    [[nodiscard]] double time() const { return time_; }
    [[nodiscard]] int step_count() const { return step_count_; }
    [[nodiscard]] double dt() const { return dt_; }
    [[nodiscard]] const Params& params() const { return params_; }
    [[nodiscard]] const SurfaceMesh& mesh() const { return mesh_; }
    [[nodiscard]] ProblemManager& state() { return pm_; }
    [[nodiscard]] const ProblemManager& state() const { return pm_; }
    [[nodiscard]] ZModel& zmodel() { return *model_; }

    /// This rank's accumulated phase metrics (replaces the old
    /// SectionTimers registry; see src/telemetry/metrics.hpp).
    [[nodiscard]] const telemetry::MetricSet& metrics() const { return *metrics_; }

    /// Seconds accumulated in phase \p name ("step", "step/halo", ...)
    /// across all steps so far on this rank.
    [[nodiscard]] double phase_seconds(const char* name) const {
        return metrics_->total(name);
    }

    /// The cutoff solver when active (for load-imbalance diagnostics).
    [[nodiscard]] const CutoffBRSolver* cutoff_solver() const {
        return dynamic_cast<const CutoffBRSolver*>(br_.get());
    }

private:
    static Params validated(Params p) {
        p.validate();
        return p;
    }

    Params params_;
    SurfaceMesh mesh_;
    ProblemManager pm_;
    std::unique_ptr<BRSolverBase> br_;
    std::unique_ptr<ZModel> model_;
    std::unique_ptr<TimeIntegrator> integrator_;
    /// shared_ptr: the cross-rank MetricsRegistry may outlive this solver
    /// (rollup happens at flush, typically process exit).
    std::shared_ptr<telemetry::MetricSet> metrics_ = std::make_shared<telemetry::MetricSet>();
    double dt_ = 0.0;
    double time_ = 0.0;
    int step_count_ = 0;
};

} // namespace beatnik
