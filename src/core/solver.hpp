/// \file solver.hpp
/// \brief Top-level solver facade (paper §3.1, Solver module): builds the
/// mesh, state, Z-Model, BR solver and integrator from a parameter set
/// and runs timesteps.
#pragma once

#include <memory>
#include <numbers>

#include "base/timer.hpp"
#include "core/cutoff_br_solver.hpp"
#include "core/exact_br_solver.hpp"
#include "core/time_integrator.hpp"

namespace beatnik {

class Solver {
public:
    Solver(comm::Communicator& comm, Params params)
        : params_(validated(std::move(params))), mesh_(comm, params_),
          pm_(comm, mesh_, params_) {
        if (params_.order != Order::low) {
            if (params_.br_solver == BRSolverKind::exact) {
                br_ = std::make_unique<ExactBRSolver>(mesh_, params_);
            } else {
                br_ = std::make_unique<CutoffBRSolver>(mesh_, params_);
            }
        }
        model_ = std::make_unique<ZModel>(comm, mesh_, params_, br_.get());
        integrator_ = std::make_unique<TimeIntegrator>(mesh_, *model_);
        dt_ = params_.dt > 0.0 ? params_.dt : default_dt();
    }

    /// Automatic timestep: stay below both the fastest RT growth time at
    /// the grid scale (sigma_max = sqrt(A g k_max), k_max = pi/dx) and the
    /// explicit-diffusion stability limit of the artificial viscosity.
    [[nodiscard]] double default_dt() const {
        const double dmin = std::min(mesh_.global().spacing(0), mesh_.global().spacing(1));
        const double sigma_max =
            std::sqrt(params_.atwood * params_.gravity * std::numbers::pi / dmin);
        double dt = params_.cfl / sigma_max;
        const double mu_eff = mesh_.effective_mu(params_.mu);
        if (mu_eff > 0.0) dt = std::min(dt, 0.2 * dmin * dmin / mu_eff);
        return dt;
    }

    /// Advance one timestep (three ZModel evaluations). Collective.
    void step() {
        auto scope = timers_.time("step");
        integrator_->step(pm_, dt_);
        time_ += dt_;
        ++step_count_;
    }

    /// Advance \p n timesteps.
    void advance(int n) {
        for (int s = 0; s < n; ++s) step();
    }

    [[nodiscard]] double time() const { return time_; }
    [[nodiscard]] int step_count() const { return step_count_; }
    [[nodiscard]] double dt() const { return dt_; }
    [[nodiscard]] const Params& params() const { return params_; }
    [[nodiscard]] const SurfaceMesh& mesh() const { return mesh_; }
    [[nodiscard]] ProblemManager& state() { return pm_; }
    [[nodiscard]] const ProblemManager& state() const { return pm_; }
    [[nodiscard]] ZModel& zmodel() { return *model_; }
    [[nodiscard]] SectionTimers& timers() { return timers_; }

    /// The cutoff solver when active (for load-imbalance diagnostics).
    [[nodiscard]] const CutoffBRSolver* cutoff_solver() const {
        return dynamic_cast<const CutoffBRSolver*>(br_.get());
    }

private:
    static Params validated(Params p) {
        p.validate();
        return p;
    }

    Params params_;
    SurfaceMesh mesh_;
    ProblemManager pm_;
    std::unique_ptr<BRSolverBase> br_;
    std::unique_ptr<ZModel> model_;
    std::unique_ptr<TimeIntegrator> integrator_;
    SectionTimers timers_;
    double dt_ = 0.0;
    double time_ = 0.0;
    int step_count_ = 0;
};

} // namespace beatnik
