/// \file surface_mesh.hpp
/// \brief The distributed 2D interface mesh (paper §2, SurfaceMesh module).
///
/// Bundles the global mesh description, the rank topology, and this
/// rank's local block with the width-2 halo Beatnik's stencils need.
#pragma once

#include "comm/communicator.hpp"
#include "core/params.hpp"
#include "grid/global_mesh.hpp"
#include "grid/local_grid.hpp"

namespace beatnik {

class SurfaceMesh {
public:
    /// Two-node-deep stencils (4th-order derivatives, Laplacians).
    static constexpr int kHaloWidth = 2;

    SurfaceMesh(comm::Communicator& comm, const Params& params)
        : periodic_(params.boundary == Boundary::periodic),
          global_({params.surface_low[0], params.surface_low[1]},
                  {params.surface_high[0], params.surface_high[1]}, params.num_nodes,
                  {periodic_, periodic_}),
          topo_(comm.size(), params.topo_dims, {periodic_, periodic_}),
          local_(global_, topo_, comm.rank(), kHaloWidth) {}

    [[nodiscard]] const grid::GlobalMesh2D& global() const { return global_; }
    [[nodiscard]] const grid::CartTopology2D& topology() const { return topo_; }
    [[nodiscard]] const grid::LocalGrid2D& local() const { return local_; }
    [[nodiscard]] bool periodic() const { return periodic_; }

    /// Initial surface coordinate of local node (i, j) along axis d
    /// (ghost indices extrapolate the uniform spacing).
    [[nodiscard]] double coordinate(int d, int local_index) const {
        return global_.coordinate(d, local_.global_offset(d) + local_index);
    }

    /// Quadrature weight of one node in the Birkhoff–Rott sums.
    [[nodiscard]] double cell_area() const { return global_.spacing(0) * global_.spacing(1); }

    /// Grid-scaled effective parameters (Beatnik convention: coefficients
    /// scale with sqrt(dx*dy)).
    [[nodiscard]] double effective_epsilon(double eps_coeff) const {
        return eps_coeff * std::sqrt(cell_area());
    }
    [[nodiscard]] double effective_mu(double mu_coeff) const {
        return mu_coeff * std::sqrt(cell_area());
    }

private:
    bool periodic_;
    grid::GlobalMesh2D global_;
    grid::CartTopology2D topo_;
    grid::LocalGrid2D local_;
};

} // namespace beatnik
