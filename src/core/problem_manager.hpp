/// \file problem_manager.hpp
/// \brief Owns the distributed mesh state (position + vorticity) and its
/// halo exchanges (paper §3.1, ProblemManager module).
#pragma once

#include "comm/communicator.hpp"
#include "core/boundary_condition.hpp"
#include "core/initial_conditions.hpp"
#include "core/surface_mesh.hpp"
#include "grid/halo.hpp"

namespace beatnik {

class ProblemManager {
public:
    /// Distinct halo-exchange streams so interleaved exchanges of
    /// different fields never cross-match.
    enum Stream : int { kPositionStream = 0, kVorticityStream = 1, kScratchStream = 2 };

    ProblemManager(comm::Communicator& comm, const SurfaceMesh& mesh, const Params& params)
        : comm_(&comm), mesh_(&mesh), bc_(mesh), z_(mesh.local()), w_(mesh.local()),
          // Auto-stream plans: tags come from the communicator's plan
          // sequence, so several ProblemManagers can coexist on one
          // communicator (construction is collective).
          z_halo_(comm, mesh.topology(), mesh.local()),
          w_halo_(comm, mesh.topology(), mesh.local()),
          scratch_halo_(comm, mesh.topology(), mesh.local()) {
        apply_initial_conditions(mesh, params.initial, z_, w_);
        gather_halos();
    }

    [[nodiscard]] comm::Communicator& comm() { return *comm_; }
    [[nodiscard]] const SurfaceMesh& mesh() const { return *mesh_; }
    [[nodiscard]] const BoundaryCondition& boundary() const { return bc_; }

    /// Interface position z(i,j) — 3 components.
    [[nodiscard]] grid::NodeField<double, 3>& position() { return z_; }
    [[nodiscard]] const grid::NodeField<double, 3>& position() const { return z_; }

    /// Vorticity components w(i,j) = surface gradient of the dipole
    /// strength — 2 components.
    [[nodiscard]] grid::NodeField<double, 2>& vorticity() { return w_; }
    [[nodiscard]] const grid::NodeField<double, 2>& vorticity() const { return w_; }

    /// Refresh ghosts of both state fields and re-apply boundary fixups.
    /// Call after any update of owned values. Runs on the persistent halo
    /// plans built at construction — no per-call setup or allocation.
    void gather_halos() {
        z_halo_.exchange(z_);
        w_halo_.exchange(w_);
        bc_.apply_position(z_);
        bc_.apply_value(w_);
    }

    /// Halo + boundary fixup for a derived (non-position) field owned by a
    /// solver (e.g. the Bernoulli scalar or a velocity component). Plans
    /// are field-agnostic for a given shape, so every supported width
    /// rides one of the persistent plans (a 3-component scratch exchange
    /// reuses the position plan's channels, etc.); other widths fall back
    /// to a throwaway wrapper plan on a separate fixed stream.
    template <int C>
    void gather_scratch_halo(grid::NodeField<double, C>& f) {
        if constexpr (C == 1) {
            scratch_halo_.exchange(f);
        } else if constexpr (C == 2) {
            w_halo_.exchange(f);
        } else if constexpr (C == 3) {
            z_halo_.exchange(f);
        } else {
            grid::halo_exchange(*comm_, mesh_->topology(), mesh_->local(), f,
                                kScratchStream + C);
        }
        bc_.apply_value(f);
    }

private:
    comm::Communicator* comm_;
    const SurfaceMesh* mesh_;
    BoundaryCondition bc_;
    grid::NodeField<double, 3> z_;
    grid::NodeField<double, 2> w_;
    grid::HaloPlan<double, 3> z_halo_;
    grid::HaloPlan<double, 2> w_halo_;
    grid::HaloPlan<double, 1> scratch_halo_;
};

} // namespace beatnik
