/// \file problem_manager.hpp
/// \brief Owns the distributed mesh state (position + vorticity) and its
/// halo exchanges (paper §3.1, ProblemManager module).
///
/// Under `Backend::device` the state fields are **device-resident**: the
/// mirrors are enabled at construction, every halo exchange packs/unpacks
/// with device kernels straight into the pinned plan buffers, boundary
/// fixups run as device kernels, and the host copies go stale until an
/// I/O or diagnostics boundary asks for them. Host<->device coherence is
/// tracked explicitly:
///
///   * `position()` / `vorticity()` (host accessors) first refresh the
///     host copy; the non-const overloads additionally mark the device
///     mirror stale, so host-side writes (tests, initial-condition
///     tweaks) are re-uploaded at the next device entry point;
///   * `ensure_device_current()` re-uploads before device work;
///   * `sync_host()` is the explicit I/O-boundary refresh used by
///     SiloWriter and the diagnostics reductions.
///
/// A steady-state step therefore performs **zero** host<->device field
/// copies (counting test in tests/core/test_device_residency.cpp). Set
/// BEATNIK_DEVICE_RESIDENCY=0 to force host residency while keeping the
/// device backend for kernels.
#pragma once

#include <cstdlib>
#include <string_view>

#include "comm/communicator.hpp"
#include "core/boundary_condition.hpp"
#include "core/initial_conditions.hpp"
#include "core/surface_mesh.hpp"
#include "grid/halo.hpp"
#include "par/par.hpp"
#include "telemetry/metrics.hpp"

namespace beatnik {

class ProblemManager {
public:
    /// Distinct halo-exchange streams so interleaved exchanges of
    /// different fields never cross-match.
    enum Stream : int { kPositionStream = 0, kVorticityStream = 1, kScratchStream = 2 };

    ProblemManager(comm::Communicator& comm, const SurfaceMesh& mesh, const Params& params)
        : comm_(&comm), mesh_(&mesh), bc_(mesh), z_(mesh.local()), w_(mesh.local()),
          // Auto-stream plans: tags come from the communicator's plan
          // sequence, so several ProblemManagers can coexist on one
          // communicator (construction is collective).
          z_halo_(comm, mesh.topology(), mesh.local()),
          w_halo_(comm, mesh.topology(), mesh.local()),
          scratch_halo_(comm, mesh.topology(), mesh.local()) {
        apply_initial_conditions(mesh, params.initial, z_, w_);
        if (par::backend() == par::Backend::device && residency_enabled()) {
            enable_device_residency();
        }
        gather_halos();
    }

    /// Kernels and halo unpacks touching the mirrors may still be in
    /// flight on the queue; drain it before the buffers die.
    ~ProblemManager() {
        if (resident_) queue_->fence(); // devcheck: fenced — teardown drain
    }
    ProblemManager(const ProblemManager&) = delete;
    ProblemManager& operator=(const ProblemManager&) = delete;

    [[nodiscard]] comm::Communicator& comm() { return *comm_; }
    [[nodiscard]] const SurfaceMesh& mesh() const { return *mesh_; }
    [[nodiscard]] const BoundaryCondition& boundary() const { return bc_; }

    /// Interface position z(i,j) — 3 components. Host view: refreshes the
    /// host copy when the device mirror is ahead; the non-const overload
    /// marks the mirror stale (the caller may write).
    [[nodiscard]] grid::NodeField<double, 3>& position() {
        refresh_host(/*for_write=*/true);
        return z_;
    }
    [[nodiscard]] const grid::NodeField<double, 3>& position() const {
        const_cast<ProblemManager*>(this)->refresh_host(/*for_write=*/false);
        return z_;
    }

    /// Vorticity components w(i,j) = surface gradient of the dipole
    /// strength — 2 components. Host view, same coherence rules.
    [[nodiscard]] grid::NodeField<double, 2>& vorticity() {
        refresh_host(/*for_write=*/true);
        return w_;
    }
    [[nodiscard]] const grid::NodeField<double, 2>& vorticity() const {
        const_cast<ProblemManager*>(this)->refresh_host(/*for_write=*/false);
        return w_;
    }

    // ------------------------------------------------- device residency

    /// True when the state fields live on the device across steps.
    [[nodiscard]] bool device_resident() const { return resident_; }

    /// The queue every device-resident operation of this state runs on
    /// (the owning rank-thread's implicit stream).
    [[nodiscard]] par::device::Queue& device_queue() {
        BEATNIK_REQUIRE(resident_, "state is not device-resident");
        return *queue_;
    }

    /// Direct field access without coherence bookkeeping — for the device
    /// derivative pipeline, which reads/writes the *mirrors* only and
    /// manages staleness through ensure_device_current()/mark_host_stale().
    [[nodiscard]] grid::NodeField<double, 3>& position_raw() { return z_; }
    [[nodiscard]] grid::NodeField<double, 2>& vorticity_raw() { return w_; }

    /// Whether device residency is requested for this process (the
    /// BEATNIK_DEVICE_RESIDENCY=0 escape hatch forces host residency).
    [[nodiscard]] static bool residency_enabled() {
        static const bool on = [] {
            const char* v = std::getenv("BEATNIK_DEVICE_RESIDENCY");
            return v == nullptr || std::string_view(v) != "0";
        }();
        return on;
    }

    /// Switch the state to device residency: enable the mirrors, upload
    /// once, and put every halo plan on the device pack/unpack path with
    /// per-direction publish overlap. Idempotent; normally called by the
    /// constructor under Backend::device.
    void enable_device_residency() {
        if (resident_) return;
        queue_ = &par::device::default_queue();
        z_.enable_device_mirror();
        w_.enable_device_mirror();
        z_halo_.enable_device(*queue_);
        w_halo_.enable_device(*queue_);
        scratch_halo_.enable_device(*queue_);
        z_.sync_to_device(*queue_);
        w_.sync_to_device(*queue_);
        queue_->fence(); // devcheck: fenced — one-time residency upload
        resident_ = true;
        host_current_ = true;
        device_current_ = true;
    }

    /// Re-upload the state before device work if host-side writes made
    /// the mirrors stale. No-op in the steady state (and on host-resident
    /// managers).
    void ensure_device_current() {
        if (!resident_ || device_current_) return;
        z_.sync_to_device(*queue_);
        w_.sync_to_device(*queue_);
        queue_->fence(); // devcheck: fenced — re-upload after host writes
        device_current_ = true;
    }

    /// Device-side code that mutated the state mirrors calls this so the
    /// next host accessor re-downloads.
    void mark_host_stale() {
        if (resident_) host_current_ = false;
    }

    /// I/O/diagnostics boundary: make the host copies current (one
    /// device->host copy per field, only when actually stale). The device
    /// mirror stays authoritative.
    void sync_host() {
        if (!resident_ || host_current_) return;
        z_.sync_to_host(*queue_);
        w_.sync_to_host(*queue_);
        queue_->fence(); // devcheck: fenced — I/O boundary reads the host copies
        host_current_ = true;
    }

    /// Refresh ghosts of both state fields and re-apply boundary fixups.
    /// Call after any update of owned values. Runs on the persistent halo
    /// plans built at construction — no per-call setup or allocation; on a
    /// device-resident state the packs, unpacks and boundary fixups are
    /// device kernels and the host copy is left stale.
    void gather_halos() {
        static const telemetry::Phase ph{"step/halo"};
        telemetry::PhaseScope scope(ph);
        if (resident_) {
            ensure_device_current();
            z_halo_.exchange(z_);
            w_halo_.exchange(w_);
            bc_.apply_position_device(*queue_, z_);
            bc_.apply_value_device(*queue_, w_);
            host_current_ = false;
            return;
        }
        z_halo_.exchange(z_);
        w_halo_.exchange(w_);
        bc_.apply_position(z_);
        bc_.apply_value(w_);
    }

    /// Halo + boundary fixup for a derived (non-position) field owned by a
    /// solver (e.g. the Bernoulli scalar or a velocity component). Plans
    /// are field-agnostic for a given shape, so every supported width
    /// rides one of the persistent plans (a 3-component scratch exchange
    /// reuses the position plan's channels, etc.); other widths fall back
    /// to a throwaway wrapper plan on a separate fixed stream. A device-
    /// mirrored field on a device-resident state exchanges and fixes up
    /// entirely on device; unmirrored fields take the host path even when
    /// the plans are device-enabled (the pinned buffers are ordinary host
    /// memory to host code).
    template <int C>
    void gather_scratch_halo(grid::NodeField<double, C>& f) {
        static const telemetry::Phase ph{"step/halo_scratch"};
        telemetry::PhaseScope scope(ph);
        const bool on_device = resident_ && f.device_mirrored();
        if constexpr (C == 1) {
            scratch_halo_.exchange(f);
        } else if constexpr (C == 2) {
            w_halo_.exchange(f);
        } else if constexpr (C == 3) {
            z_halo_.exchange(f);
        } else {
            // The throwaway wrapper plan is never device-enabled, so it
            // would exchange the *host* copy of a mirrored field — refuse
            // loudly rather than silently shipping stale data.
            BEATNIK_REQUIRE(!f.device_mirrored(),
                            "scratch halo fallback widths do not support device-mirrored "
                            "fields — use a 1/2/3-component field or exchange the host copy");
            grid::halo_exchange(*comm_, mesh_->topology(), mesh_->local(), f,
                                kScratchStream + C);
        }
        if (on_device) {
            bc_.apply_value_device(*queue_, f);
        } else {
            bc_.apply_value(f);
        }
    }

private:
    /// Host-accessor coherence: download when the mirror is ahead; a
    /// write-intent access marks the mirror stale so the next device
    /// entry re-uploads.
    void refresh_host(bool for_write) {
        if (resident_) {
            sync_host();
            if (for_write) device_current_ = false;
        }
    }

    comm::Communicator* comm_;
    const SurfaceMesh* mesh_;
    BoundaryCondition bc_;
    grid::NodeField<double, 3> z_;
    grid::NodeField<double, 2> w_;
    grid::HaloPlan<double, 3> z_halo_;
    grid::HaloPlan<double, 2> w_halo_;
    grid::HaloPlan<double, 1> scratch_halo_;
    par::device::Queue* queue_ = nullptr;
    bool resident_ = false;
    bool host_current_ = true;    ///< host arrays reflect the latest state
    bool device_current_ = true;  ///< mirrors reflect the latest state
};

} // namespace beatnik
