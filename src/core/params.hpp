/// \file params.hpp
/// \brief All user-facing solver parameters (the rocket-rig input deck).
#pragma once

#include <array>
#include <cstdint>

#include "base/error.hpp"
#include "core/types.hpp"
#include "fft/distributed_fft.hpp"

namespace beatnik {

/// Initial interface shape.
struct InitialCondition {
    enum class Kind {
        multimode,  ///< seeded random superposition of low modes (Fig. 1 case)
        singlemode, ///< one centered mode (Fig. 2 rollup case)
    };
    Kind kind = Kind::multimode;
    double magnitude = 0.05;   ///< perturbation amplitude
    int num_modes = 4;         ///< per axis, multimode only
    std::uint64_t seed = 42;   ///< mode phases/amplitudes (decomposition-independent)
};

/// Full problem specification for the Solver; defaults follow the paper's
/// rocket-rig setups (§5.1) scaled down to laptop size.
struct Params {
    // --- mesh & decomposition
    std::array<int, 2> num_nodes{128, 128};    ///< surface mesh nodes per axis
    std::array<int, 2> topo_dims{0, 0};        ///< rank grid ({0,0} = auto)
    Boundary boundary = Boundary::periodic;

    /// Initial surface extent (the FFT wavenumber box). The paper's
    /// low-order runs use (-19,19)^2; high-order runs use (-3,3)^2.
    std::array<double, 2> surface_low{-1.0, -1.0};
    std::array<double, 2> surface_high{1.0, 1.0};

    /// 3D spatial-mesh bounds for the cutoff solver (paper: (-3,3)^3).
    std::array<double, 3> box_low{-3.0, -3.0, -3.0};
    std::array<double, 3> box_high{3.0, 3.0, 3.0};

    // --- physics
    double atwood = 0.5;     ///< Atwood number A
    double gravity = 25.0;   ///< acceleration magnitude g (rocket rig drives hard)
    /// Artificial-viscosity coefficient; the effective viscosity is
    /// mu * sqrt(dx*dy) as in Beatnik's rocket-rig defaults.
    double mu = 1.0;
    /// Krasny desingularization coefficient; effective eps = epsilon *
    /// sqrt(dx*dy).
    double epsilon = 0.25;

    // --- solver selection
    Order order = Order::low;
    BRSolverKind br_solver = BRSolverKind::cutoff;
    double cutoff_distance = 0.5;  ///< cutoff solver interaction radius
    fft::FFTConfig fft;            ///< heFFTe-style knobs for low/medium order

    // --- time stepping
    double dt = 0.0;          ///< 0 = choose automatically (see Solver)
    double cfl = 0.5;         ///< safety factor for the automatic dt

    InitialCondition initial;

    void validate() const {
        BEATNIK_REQUIRE(num_nodes[0] >= 8 && num_nodes[1] >= 8,
                        "surface mesh must be at least 8x8");
        BEATNIK_REQUIRE(surface_high[0] > surface_low[0] && surface_high[1] > surface_low[1],
                        "surface bounds must be increasing");
        BEATNIK_REQUIRE(atwood > 0.0 && atwood <= 1.0, "Atwood number must be in (0, 1]");
        BEATNIK_REQUIRE(gravity > 0.0, "gravity must be positive");
        BEATNIK_REQUIRE(epsilon > 0.0, "desingularization epsilon must be positive");
        BEATNIK_REQUIRE(mu >= 0.0, "artificial viscosity must be non-negative");
        BEATNIK_REQUIRE(cutoff_distance > 0.0, "cutoff distance must be positive");
        BEATNIK_REQUIRE(order == Order::high || boundary == Boundary::periodic,
                        "low/medium order require periodic boundaries (FFT solver)");
    }
};

} // namespace beatnik
