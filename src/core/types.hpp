/// \file types.hpp
/// \brief Small vector math and solver enums shared across the core.
#pragma once

#include <array>
#include <cmath>

namespace beatnik {

/// Plain 3-vector used for positions, velocities and vortex strengths.
struct Vec3 {
    double x = 0.0, y = 0.0, z = 0.0;

    Vec3& operator+=(const Vec3& o) {
        x += o.x;
        y += o.y;
        z += o.z;
        return *this;
    }
    Vec3& operator-=(const Vec3& o) {
        x -= o.x;
        y -= o.y;
        z -= o.z;
        return *this;
    }
    Vec3& operator*=(double s) {
        x *= s;
        y *= s;
        z *= s;
        return *this;
    }

    friend Vec3 operator+(Vec3 a, const Vec3& b) { return a += b; }
    friend Vec3 operator-(Vec3 a, const Vec3& b) { return a -= b; }
    friend Vec3 operator*(Vec3 a, double s) { return a *= s; }
    friend Vec3 operator*(double s, Vec3 a) { return a *= s; }
};

inline double dot(const Vec3& a, const Vec3& b) { return a.x * b.x + a.y * b.y + a.z * b.z; }
inline Vec3 cross(const Vec3& a, const Vec3& b) {
    return {a.y * b.z - a.z * b.y, a.z * b.x - a.x * b.z, a.x * b.y - a.y * b.x};
}
inline double norm2(const Vec3& a) { return dot(a, a); }
inline double norm(const Vec3& a) { return std::sqrt(norm2(a)); }

/// Z-Model solution order (paper §2): which pieces of the derivative come
/// from the FFT approximation vs. a Birkhoff–Rott far-field solve.
enum class Order {
    low,    ///< interface velocity and vorticity both via FFT
    medium, ///< velocity via BR solver, vorticity terms via FFT
    high,   ///< everything via BR solver
};

/// Far-field (Birkhoff–Rott) solver selection (paper §3.2).
enum class BRSolverKind {
    exact,  ///< O(N^2) ring-pass all-pairs reference
    cutoff, ///< spatial-decomposition cutoff approximation
};

/// Boundary handling for the surface mesh (paper §3.1).
enum class Boundary {
    periodic, ///< wrap in both surface directions, ghost coordinates offset
    free,     ///< non-periodic: ghosts filled by extrapolation
};

} // namespace beatnik
