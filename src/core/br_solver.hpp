/// \file br_solver.hpp
/// \brief Birkhoff–Rott far-field solver interface + shared kernel
/// (paper §3.2).
///
/// A BR solver computes the interface velocity
///   W(x) = (dA / 4*pi) * sum_j gamma_j x (x - z_j) / (|x - z_j|^2 + eps^2)^{3/2}
/// at every owned surface node, where gamma is the Biot–Savart source
/// produced by the ZModel and eps is the Krasny desingularization length.
/// The self-term vanishes analytically (gamma x 0), so implementations
/// may include or skip it freely.
#pragma once

#include "core/problem_manager.hpp"
#include "core/types.hpp"

namespace beatnik {

/// One evaluation of the desingularized Biot–Savart kernel (without the
/// dA/4*pi prefactor, applied once per sum).
inline Vec3 br_kernel(const Vec3& target, const Vec3& source_pos, const Vec3& source_gamma,
                      double eps2) {
    Vec3 r = target - source_pos;
    double d2 = norm2(r) + eps2;
    double inv = 1.0 / (d2 * std::sqrt(d2));
    return cross(source_gamma, r) * inv;
}

class BRSolverBase {
public:
    virtual ~BRSolverBase() = default;

    /// Fill \p velocity at owned nodes with the BR integral of the given
    /// gamma field (owned nodes valid) over the *entire* surface.
    /// Collective: must be called by every rank.
    virtual void compute_velocity(ProblemManager& pm, const grid::NodeField<double, 3>& gamma,
                                  grid::NodeField<double, 3>& velocity) = 0;

    /// Optional overlap hook: begin the parts of the next
    /// compute_velocity that depend only on \p pm and \p gamma (e.g. the
    /// cutoff solver's particle pack/canonicalize staging on a side
    /// queue) so they run concurrently with whatever the caller does
    /// between begin and compute. Purely local (not collective), safe to
    /// skip: compute_velocity must produce identical results with or
    /// without a preceding begin. Default is a no-op.
    virtual void begin_velocity(ProblemManager& pm, const grid::NodeField<double, 3>& gamma) {
        (void)pm;
        (void)gamma;
    }

    /// Human-readable solver name for logs and benches.
    [[nodiscard]] virtual const char* name() const = 0;
};

} // namespace beatnik
