/// \file cutoff_br_solver.hpp
/// \brief Cutoff-approximated Birkhoff–Rott solver (paper §3.2,
/// CutoffBRSolver + HaloComm).
///
/// Approximates the BR integral by summing only sources within a 3D
/// cutoff distance. For *each* derivative evaluation it performs the
/// paper's five steps:
///   1. migrate surface nodes into the position-based SpatialMesh
///      decomposition,
///   2. halo (ghost-copy) points near block boundaries to neighbors
///      within the cutoff,
///   3. build fixed-radius neighbor lists (minisearch = ArborX stand-in),
///   4. accumulate the kernel over each owned point's neighbor list,
///   5. migrate the resulting velocities back to the owning 2D-mesh rank.
/// This produces the dynamic, position-dependent, irregular communication
/// the benchmark is designed to exercise; per-rank spatial ownership
/// counts are exported for the paper's Figs. 6–7.
#pragma once

#include <algorithm>
#include <atomic>
#include <numbers>
#include <optional>

#include "core/br_solver.hpp"
#include "core/spatial_mesh.hpp"
#include "grid/migrate.hpp"
#include "par/par.hpp"
#include "search/neighbor_search.hpp"

namespace beatnik {

class CutoffBRSolver final : public BRSolverBase {
public:
    CutoffBRSolver(const SurfaceMesh& mesh, const Params& params)
        : mesh_(&mesh), spatial_(params, mesh.topology()), cutoff_(params.cutoff_distance),
          eps2_(square(mesh.effective_epsilon(params.epsilon))) {}

    /// Drain in-flight kernels before the pinned staging dies.
    ~CutoffBRSolver() override {
        if (queue_ != nullptr) queue_->fence();
    }

    [[nodiscard]] const char* name() const override { return "cutoff"; }

    /// Points this rank owned in the *spatial* decomposition during the
    /// last evaluation — the load-imbalance signal of Figs. 6–7.
    [[nodiscard]] std::size_t last_spatial_owned() const { return last_spatial_owned_; }
    /// Ghost copies received during the last evaluation.
    [[nodiscard]] std::size_t last_spatial_ghosts() const { return last_spatial_ghosts_; }
    /// Kernel pair-interactions evaluated during the last evaluation.
    [[nodiscard]] std::size_t last_pair_count() const { return last_pair_count_; }

    void compute_velocity(ProblemManager& pm, const grid::NodeField<double, 3>& gamma,
                          grid::NodeField<double, 3>& velocity) override {
        auto& comm = pm.comm();
        // The three recurring migrations run on persistent plans, built
        // collectively on first use (compute_velocity is collective) and
        // reused for every subsequent derivative evaluation.
        if (!owned_plan_) {
            owned_plan_.emplace(comm);
            ghost_plan_.emplace(comm);
            return_plan_.emplace(comm);
        }
        const auto& local = mesh_->local();
        const int ni = local.owned_extent(0);
        const int nj = local.owned_extent(1);
        const auto n_own = static_cast<std::size_t>(ni) * static_cast<std::size_t>(nj);
        const bool device =
            pm.device_resident() && gamma.device_mirrored() && velocity.device_mirrored();

        // ---- step 1: migrate surface nodes into the spatial decomposition.
        // Positions are canonicalized (wrapped into the periodic tile or
        // kept as-is for free boundaries) so binning, ghosting, and image
        // offsets all work in one coordinate frame. Under device residency
        // the particle pack reads the field *mirrors* with a device kernel
        // into pinned staging; the canonicalization/owner pass and the
        // irregular spatial pipeline stay host-side over that staging.
        particles_.resize(n_own);
        dest_.resize(n_own);
        if (device) {
            ensure_device_staging(pm, n_own);
            auto& q = pm.device_queue();
            auto z = std::as_const(pm.position_raw()).device_view();
            auto g = std::as_const(gamma).device_view();
            SpatialParticle* pp = particles_.data();
            const int rank = comm.rank();
            par::device::parallel_for_2d(q, ni, nj, [=](int i, int j, std::size_t k) {
                SpatialParticle& sp = pp[k];
                sp.pos = {z(i, j, 0), z(i, j, 1), z(i, j, 2)};
                sp.gamma = {g(i, j, 0), g(i, j, 1), g(i, j, 2)};
                sp.home_rank = rank;
                sp.home_index = static_cast<int>(k);
            });
            q.fence();   // the host pipeline reads the pinned staging next
            for (std::size_t m = 0; m < n_own; ++m) {
                SpatialParticle& sp = particles_[m];
                sp.pos.x = spatial_.canonical(0, sp.pos.x);
                sp.pos.y = spatial_.canonical(1, sp.pos.y);
                dest_[m] = spatial_.owner_rank(sp.pos.x, sp.pos.y);
            }
        } else {
            std::size_t k = 0;
            for (int i = 0; i < ni; ++i) {
                for (int j = 0; j < nj; ++j, ++k) {
                    SpatialParticle& sp = particles_[k];
                    sp.pos = {spatial_.canonical(0, pm.position()(i, j, 0)),
                              spatial_.canonical(1, pm.position()(i, j, 1)),
                              pm.position()(i, j, 2)};
                    sp.gamma = {gamma(i, j, 0), gamma(i, j, 1), gamma(i, j, 2)};
                    sp.home_rank = comm.rank();
                    sp.home_index = static_cast<int>(k);
                    dest_[k] = spatial_.owner_rank(sp.pos.x, sp.pos.y);
                }
            }
        }
        auto owned = owned_plan_->execute(std::span<const SpatialParticle>(particles_),
                                          std::span<const int>(dest_));
        last_spatial_owned_ = owned.size();

        // ---- step 2: ghost-copy points near block boundaries (HaloComm).
        // Copies that cross a periodic boundary are *images*: their
        // positions carry the +-L tile offset, which is the paper's §6
        // "periodic high-order solves" extension.
        std::vector<SpatialParticle> ghost_sends;
        std::vector<int> ghost_dests;
        std::vector<SpatialMesh::GhostTarget> targets;
        for (const auto& sp : owned) {
            targets.clear();
            spatial_.ghost_targets(sp.pos.x, sp.pos.y, cutoff_, targets);
            for (const auto& t : targets) {
                SpatialParticle copy = sp;
                copy.pos.x += t.dx;
                copy.pos.y += t.dy;
                ghost_sends.push_back(copy);
                ghost_dests.push_back(t.rank);
            }
        }
        auto ghosts = ghost_plan_->execute(std::span<const SpatialParticle>(ghost_sends),
                                           std::span<const int>(ghost_dests));
        last_spatial_ghosts_ = ghosts.size();

        // ---- step 3: neighbor lists over owned + ghost sources.
        std::vector<double> coords;
        coords.reserve((owned.size() + ghosts.size()) * 3);
        auto push_pos = [&coords](const SpatialParticle& sp) {
            coords.push_back(sp.pos.x);
            coords.push_back(sp.pos.y);
            coords.push_back(sp.pos.z);
        };
        for (const auto& sp : owned) push_pos(sp);
        for (const auto& sp : ghosts) push_pos(sp);
        search::BinGrid3D bins(coords, cutoff_);
        std::span<const double> queries(coords.data(), owned.size() * 3);
        // Owned points occupy the leading slots of the source array, so
        // identical-index exclusion removes exactly the self pair.
        auto neighbor_list = bins.query(queries, /*exclude_identical=*/true);

        // ---- step 4: kernel accumulation over neighbor lists.
        auto source_of = [&](std::uint32_t s) -> const SpatialParticle& {
            return s < owned.size() ? owned[s] : ghosts[s - owned.size()];
        };
        const double prefactor = mesh_->cell_area() / (4.0 * std::numbers::pi);
        std::vector<VelocityResult> results(owned.size());
        std::atomic<std::size_t> pair_count{0};
        par::parallel_for(owned.size(), [&](std::size_t q) {
            Vec3 sum{};
            auto nbrs = neighbor_list.neighbors(q);
            for (std::uint32_t s : nbrs) {
                const auto& src = source_of(s);
                sum += br_kernel(owned[q].pos, src.pos, src.gamma, eps2_);
            }
            results[q] = {sum * prefactor, owned[q].home_rank, owned[q].home_index};
            pair_count.fetch_add(nbrs.size(), std::memory_order_relaxed);
        });
        last_pair_count_ = pair_count.load();

        // ---- step 5: migrate the velocities back to the 2D owners.
        std::vector<int> home(results.size());
        for (std::size_t q = 0; q < results.size(); ++q) home[q] = results[q].home_rank;
        auto returned = return_plan_->execute(std::span<const VelocityResult>(results),
                                              std::span<const int>(home));
        BEATNIK_REQUIRE(returned.size() == n_own,
                        "cutoff solver lost or duplicated surface nodes");
        if (device) {
            // Stage the returns into the pinned buffer and scatter into
            // the velocity *mirror* with a device kernel. Reuse of the
            // pinned buffer next evaluation is safe: the next particle
            // pack fences this queue before any host write.
            auto& q = pm.device_queue();
            std::copy(returned.begin(), returned.end(), returned_pin_.begin());
            const VelocityResult* rp = returned_pin_.data();
            auto v = velocity.device_view();
            q.parallel_for(n_own, [=](std::size_t k) {
                const VelocityResult& vr = rp[k];
                const int i = vr.home_index / nj;
                const int j = vr.home_index % nj;
                v(i, j, 0) = vr.velocity.x;
                v(i, j, 1) = vr.velocity.y;
                v(i, j, 2) = vr.velocity.z;
            });
        } else {
            for (const auto& vr : returned) {
                int i = vr.home_index / nj;
                int j = vr.home_index % nj;
                velocity(i, j, 0) = vr.velocity.x;
                velocity(i, j, 1) = vr.velocity.y;
                velocity(i, j, 2) = vr.velocity.z;
            }
        }
    }

private:
    struct SpatialParticle {
        Vec3 pos;
        Vec3 gamma;
        int home_rank = 0;
        int home_index = 0;
    };
    struct VelocityResult {
        Vec3 velocity;
        int home_rank = 0;
        int home_index = 0;
    };
    static double square(double v) { return v * v; }

    /// Pin the particle staging once: the device pack kernel writes
    /// particles_ and the return-scatter kernel reads returned_pin_, so
    /// both must be registered with the device runtime. Sizes are fixed
    /// by the owned block.
    void ensure_device_staging(ProblemManager& pm, std::size_t n_own) {
        queue_ = &pm.device_queue();
        if (!pinned_.empty()) return;
        returned_pin_.resize(n_own);
        pinned_.emplace_back(
            std::span<const SpatialParticle>(particles_.data(), particles_.size()));
        pinned_.emplace_back(
            std::span<const VelocityResult>(returned_pin_.data(), returned_pin_.size()));
    }

    const SurfaceMesh* mesh_;
    SpatialMesh spatial_;
    std::optional<grid::MigratePlan<SpatialParticle>> owned_plan_;
    std::optional<grid::MigratePlan<SpatialParticle>> ghost_plan_;
    std::optional<grid::MigratePlan<VelocityResult>> return_plan_;
    double cutoff_;
    double eps2_;
    // Persistent particle staging (particles_/dest_ serve both paths;
    // particles_ and returned_pin_ are pinned under device residency).
    std::vector<SpatialParticle> particles_;
    std::vector<int> dest_;
    std::vector<VelocityResult> returned_pin_;
    std::vector<par::device::ScopedHostRegistration> pinned_;
    par::device::Queue* queue_ = nullptr;
    std::size_t last_spatial_owned_ = 0;
    std::size_t last_spatial_ghosts_ = 0;
    std::size_t last_pair_count_ = 0;
};

} // namespace beatnik
