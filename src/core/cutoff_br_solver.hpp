/// \file cutoff_br_solver.hpp
/// \brief Cutoff-approximated Birkhoff–Rott solver (paper §3.2,
/// CutoffBRSolver + HaloComm).
///
/// Approximates the BR integral by summing only sources within a 3D
/// cutoff distance. For *each* derivative evaluation it performs the
/// paper's five steps:
///   1. migrate surface nodes into the position-based SpatialMesh
///      decomposition,
///   2. halo (ghost-copy) points near block boundaries to neighbors
///      within the cutoff,
///   3. build fixed-radius neighbor lists (cell list = ArborX stand-in),
///   4. accumulate the kernel over each owned point's neighbor list,
///   5. migrate the resulting velocities back to the owning 2D-mesh rank.
/// This produces the dynamic, position-dependent, irregular communication
/// the benchmark is designed to exercise; per-rank spatial ownership
/// counts are exported for the paper's Figs. 6–7.
///
/// Execution: both paths share one algorithm over persistent grow-only
/// staging (zero steady-state heap allocation), with every per-point
/// stage expressed as a kernel-shaped count–scan–fill or map:
///
///   * host path — the stages run as plain loops / par::parallel_for
///     over the staging;
///   * device path (`Backend::device`, mirrored fields) — pack/
///     canonicalize/ownership, ghost-target generation, the cell-list
///     build and the kernel accumulation are device kernels over pinned
///     staging; only the three migrate exchanges touch host-visible
///     memory (the comm plans pack from the pinned staging on the host).
///
/// Queue discipline under overlap (the default; BEATNIK_CUTOFF_OVERLAP=0
/// or set_overlap(false) selects the fenced single-queue schedule):
///
///   * the *pack queue* runs the particle pack/canonicalize kernel —
///     begin_velocity() chains it behind a gamma-ready Event recorded on
///     the state's main queue, so the pack overlaps whatever the ZModel
///     runs next (the medium-order FFT velocity); the velocity scatter
///     also lands here;
///   * the *spatial queue* runs the irregular pipeline (ghost
///     generation, cell-list build, accumulation), overlapping the main
///     queue's interior kernels (the medium-order Bernoulli/wdot chain);
///   * completion is published back to the main queue with an Event
///     wait, not a fence — downstream zmodel kernels order behind the
///     velocity scatter by stream semantics.
///
/// The two schedules are equivalence-tested bitwise; stage order and
/// per-point arithmetic are identical, only inter-queue synchronization
/// differs.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <numbers>
#include <optional>
#include <utility>

#include "core/br_solver.hpp"
#include "core/spatial_mesh.hpp"
#include "grid/migrate.hpp"
#include "par/device/scan.hpp"
#include "par/par.hpp"
#include "search/cell_list.hpp"
#include "telemetry/telemetry.hpp"

namespace beatnik {

class CutoffBRSolver final : public BRSolverBase {
public:
    CutoffBRSolver(const SurfaceMesh& mesh, const Params& params)
        : mesh_(&mesh), spatial_(params, mesh.topology()), cutoff_(params.cutoff_distance),
          eps2_(square(mesh.effective_epsilon(params.epsilon))) {}

    /// Drain in-flight kernels before the pinned staging dies.
    ~CutoffBRSolver() override {
        if (pack_q_) pack_q_->fence();          // devcheck: fenced — teardown drain
        if (spatial_q_) spatial_q_->fence();     // devcheck: fenced — teardown drain
        if (queue_ != nullptr) queue_->fence();  // devcheck: fenced — teardown drain
    }

    [[nodiscard]] const char* name() const override { return "cutoff"; }

    /// Points this rank owned in the *spatial* decomposition during the
    /// last evaluation — the load-imbalance signal of Figs. 6–7.
    [[nodiscard]] std::size_t last_spatial_owned() const { return last_spatial_owned_; }
    /// Ghost copies received during the last evaluation.
    [[nodiscard]] std::size_t last_spatial_ghosts() const { return last_spatial_ghosts_; }
    /// Kernel pair-interactions evaluated during the last evaluation.
    [[nodiscard]] std::size_t last_pair_count() const { return last_pair_count_; }

    /// Whether device evaluations use the multi-queue overlapped
    /// schedule (default, unless BEATNIK_CUTOFF_OVERLAP=0) or the fenced
    /// single-queue schedule. Process-wide; set before rank-threads
    /// evaluate. The schedules are bitwise equivalent by construction
    /// and equivalence-tested.
    static void set_overlap(bool on) { overlap_flag() = on; }
    [[nodiscard]] static bool overlap() { return overlap_flag(); }

    /// Start the device pack/canonicalize staging for the next
    /// compute_velocity on the pack queue, ordered behind a gamma-ready
    /// event on the state's main queue. No-op on host-resident states,
    /// unmirrored gamma, or under the fenced schedule.
    void begin_velocity(ProblemManager& pm, const grid::NodeField<double, 3>& gamma) override {
        if (!overlap() || !pm.device_resident() || !gamma.device_mirrored()) return;
        const auto& local = mesh_->local();
        const auto n_own = static_cast<std::size_t>(local.owned_extent(0)) *
                           static_cast<std::size_t>(local.owned_extent(1));
        ensure_device_staging(pm, n_own);
        auto& main_q = pm.device_queue();
        main_q.record_event_into(gamma_ev_);
        pack_q_->wait_event(gamma_ev_);
        enqueue_pack(*pack_q_, pm, gamma, local.owned_extent(0), local.owned_extent(1));
        began_device_ = true;
    }

    void compute_velocity(ProblemManager& pm, const grid::NodeField<double, 3>& gamma,
                          grid::NodeField<double, 3>& velocity) override {
        auto& comm = pm.comm();
        // The three recurring migrations run on persistent plans, built
        // collectively on first use and reused for every subsequent
        // derivative evaluation. First use must fall through to the
        // evaluation below — an early return here would silently leave
        // the first derivative of every run unwritten (regression-tested
        // by core.brsolvers FirstEvaluationWritesVelocity).
        if (!owned_plan_) {
            owned_plan_.emplace(comm);
            ghost_plan_.emplace(comm);
            return_plan_.emplace(comm);
        }
        const auto& local = mesh_->local();
        const int ni = local.owned_extent(0);
        const int nj = local.owned_extent(1);
        const auto n_own = static_cast<std::size_t>(ni) * static_cast<std::size_t>(nj);
        const bool device =
            pm.device_resident() && gamma.device_mirrored() && velocity.device_mirrored();
        const int rank = comm.rank();
        const SpatialGeometry geom = spatial_.geometry();

        // Trace-only stage spans over the five-step pipeline: each
        // emplace ends the previous stage before opening the next, so an
        // armed trace shows the pack/migrate/ghost/cells/accumulate/
        // return breakdown per evaluation. No-ops when disarmed.
        std::optional<telemetry::Scope> stage;
        stage.emplace("cutoff.pack", n_own);

        // ---- step 1: migrate surface nodes into the spatial decomposition.
        // Positions are canonicalized (wrapped into the periodic tile or
        // kept as-is for free boundaries) so binning, ghosting, and image
        // offsets all work in one coordinate frame. The pack/canonicalize/
        // ownership pass is one fused kernel over pinned staging on the
        // device path (started early by begin_velocity under overlap) and
        // a plain loop on the host path.
        if (device) {
            ensure_device_staging(pm, n_own);
            if (began_device_) {
                // Pack already in flight on the pack queue; make the
                // staging host-visible for the migrate below.
                pack_q_->fence(); // devcheck: fenced — migrate packs staging on the host
                began_device_ = false;
            } else {
                auto& q = pm.device_queue();
                enqueue_pack(q, pm, gamma, ni, nj);
                q.fence(); // devcheck: fenced — migrate packs staging on the host
            }
        } else {
            if (began_device_) {
                // A begin was issued but this evaluation fell back to the
                // host path (unmirrored velocity): drain the staged pack
                // before overwriting the staging from the host.
                pack_q_->fence(); // devcheck: fenced — host path overwrites the staging
                began_device_ = false;
            }
            particles_.ensure(n_own);
            dest_.ensure(n_own);
            const grid::NodeField<double, 3>& z = std::as_const(pm).position();
            std::size_t k = 0;
            for (int i = 0; i < ni; ++i) {
                for (int j = 0; j < nj; ++j, ++k) {
                    SpatialParticle& sp = particles_[k];
                    sp.pos = {geom.canonical(0, z(i, j, 0)), geom.canonical(1, z(i, j, 1)),
                              z(i, j, 2)};
                    sp.gamma = {gamma(i, j, 0), gamma(i, j, 1), gamma(i, j, 2)};
                    sp.home_rank = rank;
                    sp.home_index = static_cast<int>(k);
                    dest_[k] = geom.owner_rank(sp.pos.x, sp.pos.y);
                }
            }
        }
        stage.emplace("cutoff.migrate", n_own);
        const std::size_t n_owned = owned_plan_->execute_into(
            particles_.span(n_own), dest_.span(n_own), [this, device](std::size_t total) {
                if (device) {
                    owned_.ensure_pinned(total);
                } else {
                    owned_.ensure(total);
                }
                return owned_.data();
            });
        last_spatial_owned_ = n_owned;

        // ---- step 2: ghost-copy points near block boundaries (HaloComm).
        // Copies that cross a periodic boundary are *images*: their
        // positions carry the +-L tile offset, which is the paper's §6
        // "periodic high-order solves" extension. Generation is a
        // count–scan–fill over the owned points: both paths emit the
        // same fixed per-point target order, so the send stream (and
        // everything downstream of it) is identical bit for bit.
        stage.emplace("cutoff.ghost", n_owned);
        std::size_t n_ghost_sends = 0;
        if (device) {
            par::device::Queue& sq = overlap() ? *spatial_q_ : pm.device_queue();
            ghost_counts_.ensure_pinned(n_owned + 1);
            {
                const SpatialParticle* own = owned_.data();
                std::uint32_t* counts = ghost_counts_.data();
                const double cutoff = cutoff_;
                namespace dc = par::device::devcheck;
                dc::declare(sq, "cutoff ghost count",
                            {dc::read(own, n_owned * sizeof(SpatialParticle)),
                             dc::write(counts, n_owned * sizeof(std::uint32_t))});
                sq.parallel_for(n_owned, [own, counts, geom, cutoff](std::size_t k) {
                    std::uint32_t c = 0;
                    geom.ghost_targets(own[k].pos.x, own[k].pos.y, cutoff,
                                       [&c](int, double, double) { ++c; });
                    counts[k] = c;
                });
            }
            n_ghost_sends = par::device::exclusive_scan(sq, ghost_counts_.data(), n_owned,
                                                        ghost_scan_);
            ghost_counts_[n_owned] = static_cast<std::uint32_t>(n_ghost_sends);
            ghost_sends_.ensure_pinned(n_ghost_sends);
            ghost_dests_.ensure_pinned(n_ghost_sends);
            {
                const SpatialParticle* own = owned_.data();
                const std::uint32_t* counts = ghost_counts_.data();
                SpatialParticle* sends = ghost_sends_.data();
                int* dests = ghost_dests_.data();
                const double cutoff = cutoff_;
                namespace dc = par::device::devcheck;
                dc::declare(sq, "cutoff ghost fill",
                            {dc::read(own, n_owned * sizeof(SpatialParticle)),
                             dc::read(counts, n_owned * sizeof(std::uint32_t)),
                             dc::write(sends, n_ghost_sends * sizeof(SpatialParticle)),
                             dc::write(dests, n_ghost_sends * sizeof(int))});
                sq.parallel_for(n_owned, [=](std::size_t k) {
                    std::uint32_t off = counts[k];
                    geom.ghost_targets(own[k].pos.x, own[k].pos.y, cutoff,
                                       [&](int r, double dx, double dy) {
                                           SpatialParticle copy = own[k];
                                           copy.pos.x += dx;
                                           copy.pos.y += dy;
                                           sends[off] = copy;
                                           dests[off] = r;
                                           ++off;
                                       });
                });
            }
            sq.fence(); // devcheck: fenced — the migrate packs the sends from the host
        } else {
            ghost_counts_.ensure(n_owned + 1);
            std::uint32_t total = 0;
            for (std::size_t k = 0; k < n_owned; ++k) {
                ghost_counts_[k] = total;
                geom.ghost_targets(owned_[k].pos.x, owned_[k].pos.y, cutoff_,
                                   [&total](int, double, double) { ++total; });
            }
            ghost_counts_[n_owned] = total;
            n_ghost_sends = total;
            ghost_sends_.ensure(n_ghost_sends);
            ghost_dests_.ensure(n_ghost_sends);
            for (std::size_t k = 0; k < n_owned; ++k) {
                std::uint32_t off = ghost_counts_[k];
                geom.ghost_targets(owned_[k].pos.x, owned_[k].pos.y, cutoff_,
                                   [&](int r, double dx, double dy) {
                                       SpatialParticle copy = owned_[k];
                                       copy.pos.x += dx;
                                       copy.pos.y += dy;
                                       ghost_sends_[off] = copy;
                                       ghost_dests_[off] = r;
                                       ++off;
                                   });
            }
        }
        const std::size_t n_ghosts = ghost_plan_->execute_into(
            ghost_sends_.span(n_ghost_sends), ghost_dests_.span(n_ghost_sends),
            [this, device](std::size_t total) {
                if (device) {
                    ghosts_.ensure_pinned(total);
                } else {
                    ghosts_.ensure(total);
                }
                return ghosts_.data();
            });
        last_spatial_ghosts_ = n_ghosts;

        // ---- step 3: cell list over owned + ghost sources. Owned points
        // occupy the leading slots of the source array, so query q's self
        // pair is exactly source q.
        stage.emplace("cutoff.cells", n_owned, n_ghosts);
        const std::size_t n_src = n_owned + n_ghosts;
        const double r2 = cutoff_ * cutoff_;
        if (device) {
            par::device::Queue& sq = overlap() ? *spatial_q_ : pm.device_queue();
            coords_.ensure_pinned(3 * n_src);
            {
                const SpatialParticle* own = owned_.data();
                const SpatialParticle* gho = ghosts_.data();
                double* crd = coords_.data();
                namespace dc = par::device::devcheck;
                dc::declare(sq, "cutoff coords gather",
                            {dc::read(own, n_owned * sizeof(SpatialParticle)),
                             dc::read(gho, n_ghosts * sizeof(SpatialParticle)),
                             dc::write(crd, 3 * n_src * sizeof(double))});
                sq.parallel_for(n_src, [own, gho, crd, n_owned](std::size_t s) {
                    const Vec3& p = s < n_owned ? own[s].pos : gho[s - n_owned].pos;
                    crd[3 * s + 0] = p.x;
                    crd[3 * s + 1] = p.y;
                    crd[3 * s + 2] = p.z;
                });
            }
            cells_.build_device(sq, coords_.data(), 3 * n_src, cutoff_);
        } else {
            coords_.ensure(3 * n_src);
            for (std::size_t s = 0; s < n_src; ++s) {
                const Vec3& p = s < n_owned ? owned_[s].pos : ghosts_[s - n_owned].pos;
                coords_[3 * s + 0] = p.x;
                coords_[3 * s + 1] = p.y;
                coords_[3 * s + 2] = p.z;
            }
            cells_.build_host(coords_.span(3 * n_src), cutoff_);
        }

        // ---- step 4: kernel accumulation, fused with the neighbor
        // query: every owned point sweeps its 27-cell stencil in the
        // fixed cell-list order and sums br_kernel over the hits. Both
        // paths run the identical per-query loop, so host and device
        // sums see the same operand order.
        stage.emplace("cutoff.accumulate", n_owned);
        const double prefactor = mesh_->cell_area() / (4.0 * std::numbers::pi);
        if (device) {
            results_.ensure_pinned(n_owned);
            pair_counts_.ensure_pinned(n_owned);
            home_.ensure_pinned(n_owned);
        } else {
            results_.ensure(n_owned);
            pair_counts_.ensure(n_owned);
            home_.ensure(n_owned);
        }
        {
            const search::CellGrid g = cells_.grid();
            const std::uint32_t* cell_offsets = cells_.cell_offsets();
            const std::uint32_t* cell_points = cells_.cell_points();
            const double* crd = coords_.data();
            const SpatialParticle* own = owned_.data();
            const SpatialParticle* gho = ghosts_.data();
            VelocityResult* res = results_.data();
            std::uint32_t* pairs = pair_counts_.data();
            int* home = home_.data();
            const double eps2 = eps2_;
            auto accumulate = [=](std::size_t q) {
                Vec3 sum{};
                std::uint32_t cnt = 0;
                search::visit_neighbors(
                    g, cell_offsets, cell_points, crd, crd + 3 * q, r2, [&](std::uint32_t s) {
                        if (s == q) return; // self pair
                        const SpatialParticle& src = s < n_owned ? own[s] : gho[s - n_owned];
                        sum += br_kernel(own[q].pos, src.pos, src.gamma, eps2);
                        ++cnt;
                    });
                res[q] = {sum * prefactor, own[q].home_rank, own[q].home_index};
                pairs[q] = cnt;
                home[q] = own[q].home_rank;
            };
            if (device) {
                par::device::Queue& sq = overlap() ? *spatial_q_ : pm.device_queue();
                namespace dc = par::device::devcheck;
                dc::declare(sq, "cutoff BR accumulate",
                            {dc::read(crd, 3 * n_src * sizeof(double)),
                             dc::read(own, n_owned * sizeof(SpatialParticle)),
                             dc::read(gho, n_ghosts * sizeof(SpatialParticle)),
                             dc::read(cell_offsets, (g.num_cells() + 1) * sizeof(std::uint32_t)),
                             dc::read(cell_points, n_src * sizeof(std::uint32_t)),
                             dc::write(res, n_owned * sizeof(VelocityResult)),
                             dc::write(pairs, n_owned * sizeof(std::uint32_t)),
                             dc::write(home, n_owned * sizeof(int))});
                sq.parallel_for(n_owned, accumulate);
                // devcheck: fenced — the return migrate reads results_ on the host
                sq.fence();
            } else {
                par::parallel_for(n_owned, accumulate);
            }
        }
        std::uint64_t pair_total = 0;
        for (std::size_t q = 0; q < n_owned; ++q) pair_total += pair_counts_[q];
        last_pair_count_ = pair_total;

        // ---- step 5: migrate the velocities back to the 2D owners.
        stage.emplace("cutoff.return", n_owned);
        const std::size_t n_returned = return_plan_->execute_into(
            results_.span(n_owned), home_.span(n_owned), [this, device](std::size_t total) {
                if (device) {
                    returned_.ensure_pinned(total);
                } else {
                    returned_.ensure(total);
                }
                return returned_.data();
            });
        BEATNIK_REQUIRE(n_returned == n_own,
                        "cutoff solver lost or duplicated surface nodes");
        if (device) {
            // Scatter the returns into the velocity mirror with a device
            // kernel. Under overlap it runs on the pack queue and the
            // main queue *waits on its completion event* instead of a
            // host fence — downstream zmodel kernels order behind it by
            // stream semantics. Staging reuse next evaluation is safe:
            // the next pack fences/chains this queue before host writes.
            auto& main_q = pm.device_queue();
            par::device::Queue& xq = overlap() ? *pack_q_ : main_q;
            const VelocityResult* rp = returned_.data();
            auto v = velocity.device_view();
            namespace dc = par::device::devcheck;
            dc::declare(xq, "cutoff velocity scatter",
                        {dc::read(rp, n_own * sizeof(VelocityResult)), dc::write(v.raw())});
            xq.parallel_for(n_own, [=](std::size_t k) {
                const VelocityResult& vr = rp[k];
                const int i = vr.home_index / nj;
                const int j = vr.home_index % nj;
                v(i, j, 0) = vr.velocity.x;
                v(i, j, 1) = vr.velocity.y;
                v(i, j, 2) = vr.velocity.z;
            });
            if (overlap()) {
                pack_q_->record_event_into(ready_ev_);
                main_q.wait_event(ready_ev_);
            } else {
                main_q.fence(); // devcheck: fenced — non-overlap reference schedule
            }
        } else {
            for (std::size_t k = 0; k < n_own; ++k) {
                const VelocityResult& vr = returned_[k];
                const int i = vr.home_index / nj;
                const int j = vr.home_index % nj;
                velocity(i, j, 0) = vr.velocity.x;
                velocity(i, j, 1) = vr.velocity.y;
                velocity(i, j, 2) = vr.velocity.z;
            }
        }
    }

private:
    struct SpatialParticle {
        Vec3 pos;
        Vec3 gamma;
        int home_rank = 0;
        int home_index = 0;
    };
    struct VelocityResult {
        Vec3 velocity;
        int home_rank = 0;
        int home_index = 0;
    };
    static double square(double v) { return v * v; }

    static bool& overlap_flag() {
        static bool on = [] {
            const char* v = std::getenv("BEATNIK_CUTOFF_OVERLAP");
            return !(v != nullptr && v[0] == '0' && v[1] == '\0');
        }();
        return on;
    }

    /// One-time device setup: bind the state queue, create the pack and
    /// spatial side queues, and pin the fixed-size staging. Grow-only
    /// staging re-pins automatically on growth (PinnedStore), so a
    /// resized owned block re-registers instead of leaving kernels a
    /// dangling pin.
    void ensure_device_staging(ProblemManager& pm, std::size_t n_own) {
        queue_ = &pm.device_queue();
        if (!pack_q_) pack_q_.emplace("cutoff-pack");
        if (!spatial_q_) spatial_q_.emplace("cutoff-spatial");
        particles_.ensure_pinned(n_own);
        dest_.ensure_pinned(n_own);
    }

    /// The fused pack/canonicalize/ownership kernel (device step 1).
    void enqueue_pack(par::device::Queue& q, ProblemManager& pm,
                      const grid::NodeField<double, 3>& gamma, int ni, int nj) {
        auto z = std::as_const(pm.position_raw()).device_view();
        auto g = std::as_const(gamma).device_view();
        SpatialParticle* pp = particles_.data();
        int* dst = dest_.data();
        const int rank = pm.comm().rank();
        const SpatialGeometry geom = spatial_.geometry();
        const auto n = static_cast<std::size_t>(ni) * static_cast<std::size_t>(nj);
        namespace dc = par::device::devcheck;
        dc::declare(q, "cutoff pack/canonicalize",
                    {dc::read(z.raw()), dc::read(g.raw()),
                     dc::write(pp, n * sizeof(SpatialParticle)),
                     dc::write(dst, n * sizeof(int))});
        par::device::parallel_for_2d(q, ni, nj, [=](int i, int j, std::size_t k) {
            SpatialParticle& sp = pp[k];
            sp.pos = {geom.canonical(0, z(i, j, 0)), geom.canonical(1, z(i, j, 1)),
                      z(i, j, 2)};
            sp.gamma = {g(i, j, 0), g(i, j, 1), g(i, j, 2)};
            sp.home_rank = rank;
            sp.home_index = static_cast<int>(k);
            dst[k] = geom.owner_rank(sp.pos.x, sp.pos.y);
        });
    }

    const SurfaceMesh* mesh_;
    SpatialMesh spatial_;
    std::optional<grid::MigratePlan<SpatialParticle>> owned_plan_;
    std::optional<grid::MigratePlan<SpatialParticle>> ghost_plan_;
    std::optional<grid::MigratePlan<VelocityResult>> return_plan_;
    double cutoff_;
    double eps2_;
    // Persistent grow-only staging, shared by both paths; pinned for
    // kernel access on the device path. One steady-state evaluation
    // allocates nothing.
    par::device::PinnedStore<SpatialParticle> particles_;  ///< step-1 pack
    par::device::PinnedStore<int> dest_;
    par::device::PinnedStore<SpatialParticle> owned_;      ///< step-1 result
    par::device::PinnedStore<std::uint32_t> ghost_counts_; ///< step-2 CSR
    par::device::PinnedStore<SpatialParticle> ghost_sends_;
    par::device::PinnedStore<int> ghost_dests_;
    par::device::PinnedStore<SpatialParticle> ghosts_;     ///< step-2 result
    par::device::PinnedStore<double> coords_;              ///< step-3 input
    search::CellList3D cells_;
    par::device::PinnedStore<VelocityResult> results_;     ///< step-4 output
    par::device::PinnedStore<std::uint32_t> pair_counts_;
    par::device::PinnedStore<int> home_;
    par::device::PinnedStore<VelocityResult> returned_;    ///< step-5 result
    par::device::ScanScratch ghost_scan_;
    // Device mode: the state's main queue plus the two side queues of the
    // overlapped schedule, joined by reusable events.
    par::device::Queue* queue_ = nullptr;
    std::optional<par::device::Queue> pack_q_;
    std::optional<par::device::Queue> spatial_q_;
    par::device::Event gamma_ev_;
    par::device::Event ready_ev_;
    bool began_device_ = false;
    std::size_t last_spatial_owned_ = 0;
    std::size_t last_spatial_ghosts_ = 0;
    std::size_t last_pair_count_ = 0;
};

} // namespace beatnik
