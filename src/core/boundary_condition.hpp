/// \file boundary_condition.hpp
/// \brief Ghost-cell handling beyond the physical boundary (paper §3.1).
///
/// After a halo exchange, ghost nodes that map to the *other side* of a
/// periodic axis hold the owner's coordinates and must be shifted by the
/// domain extent so stencils see a continuous surface. At free (non-
/// periodic) boundaries no neighbor exists; position and vorticity are
/// linearly extrapolated into the ghost band, matching the paper's
/// description ("extrapolates position and vorticity into boundary
/// cells").
#pragma once

#include "core/surface_mesh.hpp"
#include "grid/field.hpp"

namespace beatnik {

class BoundaryCondition {
public:
    explicit BoundaryCondition(const SurfaceMesh& mesh) : mesh_(&mesh) {}

    /// Fix up the position field's ghosts (call after every halo
    /// exchange of positions).
    void apply_position(grid::NodeField<double, 3>& z) const {
        if (mesh_->periodic()) {
            correct_periodic_positions(z);
        } else {
            extrapolate(z);
        }
    }

    /// Fix up a non-position field's ghosts (vorticity, velocity,
    /// Bernoulli scalar): periodic ghosts are already correct copies; free
    /// boundaries extrapolate.
    template <int C>
    void apply_value(grid::NodeField<double, C>& f) const {
        if (!mesh_->periodic()) extrapolate(f);
    }

    // ------------------------------------------------------- device path
    //
    // The same fixups as kernels over the field's *device mirror*, for
    // device-resident stepping: enqueued on the rank-thread's queue, so
    // they order naturally after the halo unpack kernels and before the
    // next stencil kernel. Bitwise-identical expressions to the host path.

    /// Device apply_position: enqueue on \p q; complete at the next fence
    /// or same-queue operation.
    void apply_position_device(par::device::Queue& q, grid::NodeField<double, 3>& z) const {
        if (mesh_->periodic()) {
            correct_periodic_positions_device(q, z);
        } else {
            extrapolate_device(q, z);
        }
    }

    /// Device apply_value: free boundaries extrapolate on the mirror.
    template <int C>
    void apply_value_device(par::device::Queue& q, grid::NodeField<double, C>& f) const {
        if (!mesh_->periodic()) extrapolate_device(f.device_view(), q);
    }

private:
    void correct_periodic_positions_device(par::device::Queue& q,
                                           grid::NodeField<double, 3>& z) const {
        const auto& local = mesh_->local();
        const auto& global = mesh_->global();
        const int w = local.halo_width();
        const int gi0 = local.global_offset(0);
        const int gj0 = local.global_offset(1);
        const int n0 = global.num_nodes(0);
        const int n1 = global.num_nodes(1);
        const double lx = global.extent(0);
        const double ly = global.extent(1);
        const int wi = local.owned_extent(0) + 2 * w;
        const int wj = local.owned_extent(1) + 2 * w;
        auto v = z.device_view();
        namespace dc = par::device::devcheck;
        // Footprint: in-place shift over the whole ghosted rectangle.
        dc::declare(q, "BoundaryCondition::periodic_positions",
                    {dc::read(v.raw()), dc::write(v.raw())});
        q.parallel_for(static_cast<std::size_t>(wi) * static_cast<std::size_t>(wj),
                       [=](std::size_t k) {
                           const int i = -w + static_cast<int>(k) / wj;
                           const int j = -w + static_cast<int>(k) % wj;
                           const int gi = gi0 + i;
                           const int gj = gj0 + j;
                           if (gi < 0) v(i, j, 0) -= lx;
                           if (gi >= n0) v(i, j, 0) += lx;
                           if (gj < 0) v(i, j, 1) -= ly;
                           if (gj >= n1) v(i, j, 1) += ly;
                       });
    }

    /// Device extrapolation: one kernel per boundary band, enqueued in
    /// the same axis-0-then-axis-1 order as the host loops (the in-order
    /// queue provides the corner dependency).
    template <class View>
    void extrapolate_device(View f, par::device::Queue& q) const {
        constexpr int C = View::components();
        const auto& local = mesh_->local();
        const auto& global = mesh_->global();
        const int w = local.halo_width();
        const int ni = local.owned_extent(0);
        const int nj = local.owned_extent(1);
        const bool at_ilo = local.global_offset(0) == 0;
        const bool at_ihi = local.global_offset(0) + ni == global.num_nodes(0);
        const bool at_jlo = local.global_offset(1) == 0;
        const bool at_jhi = local.global_offset(1) + nj == global.num_nodes(1);

        // Each band is parallel over (k, cross, c): every ghost value
        // depends only on owned values (axis 0) or on values the previous
        // kernels already produced (axis 1 corners).
        auto band = [&](int nc, auto&& body) {
            namespace dc = par::device::devcheck;
            // Footprint: each band reads owned values and writes its
            // ghost strip; the whole ghosted rectangle bounds both (the
            // in-order queue serializes the bands, so the coarse range
            // cannot manufacture a cross-band hazard).
            dc::declare(q, "BoundaryCondition::extrapolate band",
                        {dc::read(f.raw()), dc::write(f.raw())});
            q.parallel_for(static_cast<std::size_t>(w) * static_cast<std::size_t>(nc) * C,
                           [body, nc, C](std::size_t idx) {
                               const auto nC = static_cast<std::size_t>(C);
                               const int c = static_cast<int>(idx % nC);
                               const int cross = static_cast<int>((idx / nC) %
                                                                  static_cast<std::size_t>(nc));
                               const int k = 1 + static_cast<int>(idx / (nC *
                                                                  static_cast<std::size_t>(nc)));
                               body(k, cross, c);
                           });
        };
        if (at_ilo) {
            band(nj, [f](int k, int j, int c) {
                f(-k, j, c) = f(0, j, c) + k * (f(0, j, c) - f(1, j, c));
            });
        }
        if (at_ihi) {
            band(nj, [f, ni](int k, int j, int c) {
                f(ni - 1 + k, j, c) = f(ni - 1, j, c) + k * (f(ni - 1, j, c) - f(ni - 2, j, c));
            });
        }
        const int ilo = at_ilo ? -w : 0;
        const int ihi = at_ihi ? ni + w : ni;
        const int next = ihi - ilo;
        if (at_jlo) {
            band(next, [f, ilo](int k, int off, int c) {
                const int i = ilo + off;
                f(i, -k, c) = f(i, 0, c) + k * (f(i, 0, c) - f(i, 1, c));
            });
        }
        if (at_jhi) {
            band(next, [f, ilo, nj](int k, int off, int c) {
                const int i = ilo + off;
                f(i, nj - 1 + k, c) = f(i, nj - 1, c) + k * (f(i, nj - 1, c) - f(i, nj - 2, c));
            });
        }
    }

    void extrapolate_device(par::device::Queue& q, grid::NodeField<double, 3>& z) const {
        extrapolate_device(z.device_view(), q);
    }
    /// Add +-L offsets to ghost copies that wrapped around an axis. The
    /// surface is periodic as z(i + N, j) = z(i, j) + (Lx, 0, 0) and
    /// z(i, j + M) = z(i, j) + (0, Ly, 0).
    void correct_periodic_positions(grid::NodeField<double, 3>& z) const {
        const auto& local = mesh_->local();
        const auto& global = mesh_->global();
        const int w = local.halo_width();
        const double lx = global.extent(0);
        const double ly = global.extent(1);
        auto ghosted = local.ghosted_space();
        grid::for_each(ghosted, [&](int i, int j) {
            int gi = local.global_offset(0) + i;
            int gj = local.global_offset(1) + j;
            (void)w;
            if (gi < 0) z(i, j, 0) -= lx;
            if (gi >= global.num_nodes(0)) z(i, j, 0) += lx;
            if (gj < 0) z(i, j, 1) -= ly;
            if (gj >= global.num_nodes(1)) z(i, j, 1) += ly;
        });
    }

    /// Linear extrapolation into ghost bands that have no owning rank
    /// (physical free boundary only — interior block edges were filled by
    /// the halo exchange). Axis 0 first, then axis 1 (which also fills
    /// corners using the already-extrapolated edge values).
    template <int C>
    void extrapolate(grid::NodeField<double, C>& f) const {
        const auto& local = mesh_->local();
        const auto& global = mesh_->global();
        const int w = local.halo_width();
        const int ni = local.owned_extent(0);
        const int nj = local.owned_extent(1);
        const bool at_ilo = local.global_offset(0) == 0;
        const bool at_ihi = local.global_offset(0) + ni == global.num_nodes(0);
        const bool at_jlo = local.global_offset(1) == 0;
        const bool at_jhi = local.global_offset(1) + nj == global.num_nodes(1);

        if (at_ilo) {
            for (int k = 1; k <= w; ++k) {
                for (int j = 0; j < nj; ++j) {
                    for (int c = 0; c < C; ++c) {
                        f(-k, j, c) = f(0, j, c) + k * (f(0, j, c) - f(1, j, c));
                    }
                }
            }
        }
        if (at_ihi) {
            for (int k = 1; k <= w; ++k) {
                for (int j = 0; j < nj; ++j) {
                    for (int c = 0; c < C; ++c) {
                        f(ni - 1 + k, j, c) =
                            f(ni - 1, j, c) + k * (f(ni - 1, j, c) - f(ni - 2, j, c));
                    }
                }
            }
        }
        // Axis 1 passes run over the i-extended range so corners get
        // extrapolated from the already-filled axis-0 ghosts.
        const int ilo = at_ilo ? -w : 0;
        const int ihi = at_ihi ? ni + w : ni;
        if (at_jlo) {
            for (int k = 1; k <= w; ++k) {
                for (int i = ilo; i < ihi; ++i) {
                    for (int c = 0; c < C; ++c) {
                        f(i, -k, c) = f(i, 0, c) + k * (f(i, 0, c) - f(i, 1, c));
                    }
                }
            }
        }
        if (at_jhi) {
            for (int k = 1; k <= w; ++k) {
                for (int i = ilo; i < ihi; ++i) {
                    for (int c = 0; c < C; ++c) {
                        f(i, nj - 1 + k, c) =
                            f(i, nj - 1, c) + k * (f(i, nj - 1, c) - f(i, nj - 2, c));
                    }
                }
            }
        }
    }

    const SurfaceMesh* mesh_;
};

} // namespace beatnik
