/// \file silo_writer.hpp
/// \brief Surface-mesh visualization output (paper §3.1, SiloWriter
/// module), writing VTK through the miniio Silo substitute.
///
/// The global surface is gathered to rank 0 and written as one
/// structured-grid file with the vorticity magnitude attached — the field
/// the paper's Figs. 1–2 color by. Suitable for the mesh sizes this
/// reproduction runs; a production writer would emit per-rank domains.
#pragma once

#include <string>

#include "core/problem_manager.hpp"
#include "io/writers.hpp"

namespace beatnik {

class SiloWriter {
public:
    explicit SiloWriter(std::string output_prefix) : prefix_(std::move(output_prefix)) {}

    /// Gather and write the surface at the current step. Collective.
    /// I/O boundary: on a device-resident state the host copies are
    /// refreshed first (the stale-mirror hazard of device stepping).
    void write(ProblemManager& pm, int step) const {
        pm.sync_host();
        auto& comm = pm.comm();
        const auto& mesh = pm.mesh();
        const auto& local = mesh.local();
        const int nj = local.owned_extent(1);

        // Pack owned nodes with their global index for deterministic
        // reassembly regardless of rank layout.
        struct Node {
            int gi, gj;
            double x, y, z, wmag;
        };
        std::vector<Node> mine;
        mine.reserve(local.own_space().size());
        // Const views: a non-const accessor would mark the (just-synced)
        // device mirrors stale and force a spurious re-upload next step.
        const auto& z = std::as_const(pm).position();
        const auto& w = std::as_const(pm).vorticity();
        for (int i = 0; i < local.owned_extent(0); ++i) {
            for (int j = 0; j < nj; ++j) {
                double w1 = w(i, j, 0);
                double w2 = w(i, j, 1);
                mine.push_back({local.global_offset(0) + i, local.global_offset(1) + j,
                                z(i, j, 0), z(i, j, 1), z(i, j, 2),
                                std::sqrt(w1 * w1 + w2 * w2)});
            }
        }
        auto all = comm.gatherv(std::span<const Node>(mine), 0);
        if (comm.rank() != 0) return;

        const int n0 = mesh.global().num_nodes(0);
        const int n1 = mesh.global().num_nodes(1);
        const auto n = static_cast<std::size_t>(n0) * static_cast<std::size_t>(n1);
        std::vector<double> pos(3 * n, 0.0);
        std::vector<double> wmag(n, 0.0);
        for (const auto& node : all) {
            auto k = static_cast<std::size_t>(node.gi) * static_cast<std::size_t>(n1) +
                     static_cast<std::size_t>(node.gj);
            pos[3 * k] = node.x;
            pos[3 * k + 1] = node.y;
            pos[3 * k + 2] = node.z;
            wmag[k] = node.wmag;
        }
        io::VtkStructuredWriter writer(prefix_ + "_" + std::to_string(step) + ".vtk", n0, n1);
        writer.write(pos, {{"vorticity_magnitude", wmag}});
    }

private:
    std::string prefix_;
};

} // namespace beatnik
