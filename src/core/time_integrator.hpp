/// \file time_integrator.hpp
/// \brief Third-order SSP Runge–Kutta time integration (paper §3.1,
/// TimeIntegrator module: "three derivatives, hence invokes the ZModel
/// object three times per timestep").
///
/// On a device-resident ProblemManager the stage save and the axpy state
/// updates run as device kernels over the state mirrors — the step never
/// touches the host copies, which is what keeps a steady-state step free
/// of host<->device traffic.
#pragma once

#include <utility>

#include "core/zmodel.hpp"
#include "telemetry/metrics.hpp"

namespace beatnik {

class TimeIntegrator {
public:
    TimeIntegrator(const SurfaceMesh& mesh, ZModel& model)
        : mesh_(&mesh), model_(&model), z0_(mesh.local()), w0_(mesh.local()),
          zdot_(mesh.local()), wdot_(mesh.local()) {}

    /// Drain in-flight kernels before the stage mirrors die.
    ~TimeIntegrator() {
        if (device_) queue_->fence(); // devcheck: fenced — teardown drain
    }
    TimeIntegrator(const TimeIntegrator&) = delete;
    TimeIntegrator& operator=(const TimeIntegrator&) = delete;

    /// Advance (z, w) by one SSP-RK3 step of size \p dt. Halos are
    /// refreshed before each of the three derivative evaluations.
    void step(ProblemManager& pm, double dt) {
        static const telemetry::Phase ph1{"step/rk3_stage1"};
        static const telemetry::Phase ph2{"step/rk3_stage2"};
        static const telemetry::Phase ph3{"step/rk3_stage3"};
        if (pm.device_resident()) ensure_device(pm);
        save_state(pm);

        {
            // Stage 1: u1 = u + dt f(u)
            telemetry::PhaseScope scope(ph1);
            model_->derivatives(pm, zdot_, wdot_);
            axpy_state(pm, 1.0, 0.0, dt);
            pm.gather_halos();
        }
        {
            // Stage 2: u2 = 3/4 u + 1/4 (u1 + dt f(u1))
            telemetry::PhaseScope scope(ph2);
            model_->derivatives(pm, zdot_, wdot_);
            axpy_state(pm, 0.25, 0.75, 0.25 * dt);
            pm.gather_halos();
        }
        {
            // Stage 3: u = 1/3 u + 2/3 (u2 + dt f(u2))
            telemetry::PhaseScope scope(ph3);
            model_->derivatives(pm, zdot_, wdot_);
            axpy_state(pm, 2.0 / 3.0, 1.0 / 3.0, (2.0 / 3.0) * dt);
            pm.gather_halos();
        }
    }

private:
    /// Mirror the integrator's stage fields once so the device step can
    /// keep every intermediate on the device. They are pure scratch —
    /// written before read each step — so no upload is needed.
    void ensure_device(ProblemManager& pm) {
        if (device_) return;
        queue_ = &pm.device_queue();
        z0_.enable_device_mirror();
        w0_.enable_device_mirror();
        zdot_.enable_device_mirror();
        wdot_.enable_device_mirror();
        device_ = true;
    }

    void save_state(ProblemManager& pm) {
        if (device_) {
            pm.ensure_device_current();
            const auto [ni, nj] = own_extents();
            auto z = std::as_const(pm.position_raw()).device_view();
            auto w = std::as_const(pm.vorticity_raw()).device_view();
            auto z0 = z0_.device_view();
            auto w0 = w0_.device_view();
            namespace dc = par::device::devcheck;
            dc::declare(*queue_, "rk3 stage save",
                        {dc::read(z.raw()), dc::read(w.raw()), dc::write(z0.raw()),
                         dc::write(w0.raw())});
            par::device::parallel_for_2d(*queue_, ni, nj, [=](int i, int j, std::size_t) {
                for (int c = 0; c < 3; ++c) z0(i, j, c) = z(i, j, c);
                for (int c = 0; c < 2; ++c) w0(i, j, c) = w(i, j, c);
            });
            return;
        }
        const auto& local = mesh_->local();
        grid::for_each(local.own_space(), [&](int i, int j) {
            for (int c = 0; c < 3; ++c) z0_(i, j, c) = pm.position()(i, j, c);
            for (int c = 0; c < 2; ++c) w0_(i, j, c) = pm.vorticity()(i, j, c);
        });
    }

    /// u <- a * (u + dt_eff/a... ) — concretely: u = b*u0 + a*u + a*dt*f
    /// evaluated pointwise on owned nodes, where u is the current state,
    /// u0 the step-start state, and f the freshly computed derivative.
    void axpy_state(ProblemManager& pm, double a, double b, double a_dt) {
        if (device_) {
            const auto [ni, nj] = own_extents();
            auto z = pm.position_raw().device_view();
            auto w = pm.vorticity_raw().device_view();
            auto z0 = std::as_const(z0_).device_view();
            auto w0 = std::as_const(w0_).device_view();
            auto zd = std::as_const(zdot_).device_view();
            auto wd = std::as_const(wdot_).device_view();
            namespace dc = par::device::devcheck;
            dc::declare(*queue_, "rk3 axpy",
                        {dc::read(z0.raw()), dc::read(w0.raw()), dc::read(zd.raw()),
                         dc::read(wd.raw()), dc::write(z.raw()), dc::write(w.raw())});
            par::device::parallel_for_2d(*queue_, ni, nj, [=](int i, int j, std::size_t) {
                for (int c = 0; c < 3; ++c) {
                    z(i, j, c) = b * z0(i, j, c) + a * z(i, j, c) + a_dt * zd(i, j, c);
                }
                for (int c = 0; c < 2; ++c) {
                    w(i, j, c) = b * w0(i, j, c) + a * w(i, j, c) + a_dt * wd(i, j, c);
                }
            });
            pm.mark_host_stale();
            return;
        }
        const auto& local = mesh_->local();
        grid::for_each(local.own_space(), [&](int i, int j) {
            for (int c = 0; c < 3; ++c) {
                pm.position()(i, j, c) = b * z0_(i, j, c) + a * pm.position()(i, j, c) +
                                         a_dt * zdot_(i, j, c);
            }
            for (int c = 0; c < 2; ++c) {
                pm.vorticity()(i, j, c) = b * w0_(i, j, c) + a * pm.vorticity()(i, j, c) +
                                          a_dt * wdot_(i, j, c);
            }
        });
    }

    [[nodiscard]] std::pair<int, int> own_extents() const {
        const auto& local = mesh_->local();
        return {local.owned_extent(0), local.owned_extent(1)};
    }

    const SurfaceMesh* mesh_;
    ZModel* model_;
    grid::NodeField<double, 3> z0_;
    grid::NodeField<double, 2> w0_;
    grid::NodeField<double, 3> zdot_;
    grid::NodeField<double, 2> wdot_;
    par::device::Queue* queue_ = nullptr;
    bool device_ = false;
};

} // namespace beatnik
