/// \file time_integrator.hpp
/// \brief Third-order SSP Runge–Kutta time integration (paper §3.1,
/// TimeIntegrator module: "three derivatives, hence invokes the ZModel
/// object three times per timestep").
#pragma once

#include "core/zmodel.hpp"

namespace beatnik {

class TimeIntegrator {
public:
    TimeIntegrator(const SurfaceMesh& mesh, ZModel& model)
        : mesh_(&mesh), model_(&model), z0_(mesh.local()), w0_(mesh.local()),
          zdot_(mesh.local()), wdot_(mesh.local()) {}

    /// Advance (z, w) by one SSP-RK3 step of size \p dt. Halos are
    /// refreshed before each of the three derivative evaluations.
    void step(ProblemManager& pm, double dt) {
        save_state(pm);

        // Stage 1: u1 = u + dt f(u)
        model_->derivatives(pm, zdot_, wdot_);
        axpy_state(pm, 1.0, 0.0, dt);
        pm.gather_halos();

        // Stage 2: u2 = 3/4 u + 1/4 (u1 + dt f(u1))
        model_->derivatives(pm, zdot_, wdot_);
        axpy_state(pm, 0.25, 0.75, 0.25 * dt);
        pm.gather_halos();

        // Stage 3: u = 1/3 u + 2/3 (u2 + dt f(u2))
        model_->derivatives(pm, zdot_, wdot_);
        axpy_state(pm, 2.0 / 3.0, 1.0 / 3.0, (2.0 / 3.0) * dt);
        pm.gather_halos();
    }

private:
    void save_state(const ProblemManager& pm) {
        const auto& local = mesh_->local();
        grid::for_each(local.own_space(), [&](int i, int j) {
            for (int c = 0; c < 3; ++c) z0_(i, j, c) = pm.position()(i, j, c);
            for (int c = 0; c < 2; ++c) w0_(i, j, c) = pm.vorticity()(i, j, c);
        });
    }

    /// u <- a * (u + dt_eff/a... ) — concretely: u = b*u0 + a*u + a*dt*f
    /// evaluated pointwise on owned nodes, where u is the current state,
    /// u0 the step-start state, and f the freshly computed derivative.
    void axpy_state(ProblemManager& pm, double a, double b, double a_dt) {
        const auto& local = mesh_->local();
        grid::for_each(local.own_space(), [&](int i, int j) {
            for (int c = 0; c < 3; ++c) {
                pm.position()(i, j, c) = b * z0_(i, j, c) + a * pm.position()(i, j, c) +
                                         a_dt * zdot_(i, j, c);
            }
            for (int c = 0; c < 2; ++c) {
                pm.vorticity()(i, j, c) = b * w0_(i, j, c) + a * pm.vorticity()(i, j, c) +
                                          a_dt * wdot_(i, j, c);
            }
        });
    }

    const SurfaceMesh* mesh_;
    ZModel* model_;
    grid::NodeField<double, 3> z0_;
    grid::NodeField<double, 2> w0_;
    grid::NodeField<double, 3> zdot_;
    grid::NodeField<double, 2> wdot_;
};

} // namespace beatnik
