/// \file diagnostics.hpp
/// \brief Distributed measurements over the solver state: interface
/// growth, vorticity norms, and the per-rank spatial ownership census
/// behind the paper's Figs. 6–7.
#pragma once

#include "core/solver.hpp"

namespace beatnik {

struct StateSummary {
    double max_height = 0.0;     ///< max |z3| — instability amplitude
    double vorticity_l2 = 0.0;   ///< global L2 norm of (w1, w2)
    double mean_height = 0.0;    ///< mean z3 (should stay ~0)
    std::size_t total_nodes = 0;
};

/// Global reductions over the interface state. Collective. Diagnostics
/// boundary: refreshes the host copies of a device-resident state first.
inline StateSummary summarize(ProblemManager& pm) {
    pm.sync_host();
    const auto& local = pm.mesh().local();
    // Bind const views once: the non-const accessors would mark the
    // device mirrors stale (forcing a spurious re-upload next step), and
    // per-node accessor calls would re-run the coherence checks.
    const auto& z = std::as_const(pm).position();
    const auto& w = std::as_const(pm).vorticity();
    double max_h = 0.0, sum_h = 0.0, sum_w2 = 0.0;
    grid::for_each(local.own_space(), [&](int i, int j) {
        double h = z(i, j, 2);
        max_h = std::max(max_h, std::abs(h));
        sum_h += h;
        sum_w2 += w(i, j, 0) * w(i, j, 0) + w(i, j, 1) * w(i, j, 1);
    });
    auto& comm = pm.comm();
    StateSummary s;
    s.max_height = comm.allreduce_value(max_h, comm::op::Max{});
    double total_h = comm.allreduce_value(sum_h, comm::op::Sum{});
    s.vorticity_l2 = std::sqrt(comm.allreduce_value(sum_w2, comm::op::Sum{}));
    auto n = comm.allreduce_value(static_cast<double>(local.own_space().size()),
                                  comm::op::Sum{});
    s.total_nodes = static_cast<std::size_t>(n);
    s.mean_height = total_h / n;
    return s;
}

/// Per-rank share of spatially-owned points after the last cutoff-solver
/// evaluation, as a fraction of all points (the Figs. 6–7 data series).
/// Collective; returns one entry per rank on every rank.
inline std::vector<double> ownership_census(comm::Communicator& comm, const Solver& solver) {
    const auto* cutoff = solver.cutoff_solver();
    BEATNIK_REQUIRE(cutoff != nullptr, "ownership census requires the cutoff solver");
    auto mine = static_cast<double>(cutoff->last_spatial_owned());
    auto counts = comm.allgather_value(mine);
    double total = 0.0;
    for (double c : counts) total += c;
    if (total > 0.0) {
        for (double& c : counts) c /= total;
    }
    return counts;
}

/// Imbalance summary of a share vector: (min, max, max/mean ratio).
struct ImbalanceStats {
    double min_share = 0.0;
    double max_share = 0.0;
    double imbalance = 0.0; ///< max / mean; 1.0 = perfectly balanced
};

inline ImbalanceStats imbalance_stats(const std::vector<double>& shares) {
    ImbalanceStats s;
    if (shares.empty()) return s;
    double mn = shares[0], mx = shares[0], sum = 0.0;
    for (double v : shares) {
        mn = std::min(mn, v);
        mx = std::max(mx, v);
        sum += v;
    }
    s.min_share = mn;
    s.max_share = mx;
    double mean = sum / static_cast<double>(shares.size());
    s.imbalance = mean > 0.0 ? mx / mean : 0.0;
    return s;
}

} // namespace beatnik
