/// \file zmodel.hpp
/// \brief Z-Model derivative computation (paper §2/§3.1, ZModel module).
///
/// Evolution equations as implemented (derivation in DESIGN.md §1):
///   dz/dt  = W                       (interface moves with the fluid)
///   dw_i/dt = d/dalpha_i( -2*A*g*z3 - A*|Wb|^2 ) + mu * lap(w_i)
/// where W is the Birkhoff–Rott velocity of the sheet and Wb is the
/// velocity used inside the Bernoulli term. The order tag selects how
/// each velocity is obtained:
///   * low:    W and Wb from the flat-sheet Fourier multiplier
///             What(k) = i (k x gamma_hat) / (2|k|)    — 6 distributed FFTs
///   * medium: W from a BR solver, Wb from the FFT     — both comm patterns
///   * high:   W = Wb from a BR solver                 — no FFTs
/// The ZModel performs no direct communication itself; it invokes the FFT
/// library, the BR solver, and the ProblemManager's halo exchanges —
/// exactly the role the paper assigns it.
#pragma once

#include <numbers>
#include <optional>

#include "core/br_solver.hpp"
#include "core/operators.hpp"
#include "fft/distributed_fft.hpp"
#include "par/par.hpp"

namespace beatnik {

class ZModel {
public:
    /// \p br may be null for Order::low; \p fft_config is used by
    /// low/medium order (ignored for high).
    ZModel(comm::Communicator& comm, const SurfaceMesh& mesh, const Params& params,
           BRSolverBase* br)
        : comm_(&comm), mesh_(&mesh), order_(params.order), br_(br),
          atwood_(params.atwood), gravity_(params.gravity),
          mu_eff_(mesh.effective_mu(params.mu)) {
        BEATNIK_REQUIRE(order_ == Order::low || br_ != nullptr,
                        "medium/high order require a BR solver");
        if (order_ != Order::high) {
            fft_.emplace(comm, std::array<int, 2>{mesh.global().num_nodes(0),
                                                  mesh.global().num_nodes(1)},
                         mesh.topology().dims(), params.fft);
        }
    }

    /// Compute (zdot, wdot) at owned nodes from the state in \p pm.
    /// Precondition: pm halos are current (the integrator guarantees it).
    /// Collective: every rank must call with the same state generation.
    void derivatives(ProblemManager& pm, grid::NodeField<double, 3>& zdot,
                     grid::NodeField<double, 2>& wdot) {
        const auto& local = mesh_->local();
        const int ni = local.owned_extent(0);
        const int nj = local.owned_extent(1);
        const double dx = mesh_->global().spacing(0);
        const double dy = mesh_->global().spacing(1);

        // Biot–Savart source gamma at owned nodes (width-2 stencils).
        // All point-local loops below go through par::parallel_for_2d, so
        // the kernels run unmodified on whichever backend the rank-thread
        // selected (serial, OpenMP worksharing, or the device pool).
        grid::NodeField<double, 3> gamma(local);
        par::parallel_for_2d(0, ni, 0, nj, [&](std::ptrdiff_t ip, std::ptrdiff_t jp) {
            const int i = static_cast<int>(ip);
            const int j = static_cast<int>(jp);
            Vec3 g = operators::gamma_vector(pm.position(), pm.vorticity(), i, j, dx, dy);
            gamma(i, j, 0) = g.x;
            gamma(i, j, 1) = g.y;
            gamma(i, j, 2) = g.z;
        });

        // Interface velocity W (zdot) and the Bernoulli velocity Wb.
        grid::NodeField<double, 3> w_fft(local);
        if (order_ != Order::high) fft_velocity(gamma, w_fft);
        grid::NodeField<double, 3>* w_for_z = &w_fft;
        grid::NodeField<double, 3>* w_for_bernoulli = &w_fft;
        grid::NodeField<double, 3> w_br(local);
        if (order_ != Order::low) {
            br_->compute_velocity(pm, gamma, w_br);
            w_for_z = &w_br;
            if (order_ == Order::high) w_for_bernoulli = &w_br;
        }
        par::parallel_for_2d(0, ni, 0, nj, [&](std::ptrdiff_t ip, std::ptrdiff_t jp) {
            const int i = static_cast<int>(ip);
            const int j = static_cast<int>(jp);
            for (int c = 0; c < 3; ++c) zdot(i, j, c) = (*w_for_z)(i, j, c);
        });

        // Bernoulli scalar phi = -2*A*g*z3 - A*|Wb|^2, haloed so its
        // surface gradient exists at owned nodes.
        grid::NodeField<double, 1> phi(local);
        par::parallel_for_2d(0, ni, 0, nj, [&](std::ptrdiff_t ip, std::ptrdiff_t jp) {
            const int i = static_cast<int>(ip);
            const int j = static_cast<int>(jp);
            const auto& wb = *w_for_bernoulli;
            double speed2 = wb(i, j, 0) * wb(i, j, 0) + wb(i, j, 1) * wb(i, j, 1) +
                            wb(i, j, 2) * wb(i, j, 2);
            phi(i, j, 0) =
                -2.0 * atwood_ * gravity_ * pm.position()(i, j, 2) - atwood_ * speed2;
        });
        pm.gather_scratch_halo(phi);

        par::parallel_for_2d(0, ni, 0, nj, [&](std::ptrdiff_t ip, std::ptrdiff_t jp) {
            const int i = static_cast<int>(ip);
            const int j = static_cast<int>(jp);
            wdot(i, j, 0) = operators::d1(phi, i, j, 0, dx) +
                            mu_eff_ * operators::laplacian(pm.vorticity(), i, j, 0, dx, dy);
            wdot(i, j, 1) = operators::d2(phi, i, j, 0, dy) +
                            mu_eff_ * operators::laplacian(pm.vorticity(), i, j, 1, dx, dy);
        });
    }

    [[nodiscard]] Order order() const { return order_; }
    [[nodiscard]] BRSolverBase* br_solver() const { return br_; }

private:
    /// Low-order interface velocity: transform the three gamma components,
    /// apply What = i (k x gamma_hat) / (2|k|), transform back. 3 forward
    /// + 3 inverse distributed FFTs — the all-to-all load of the low-order
    /// benchmarks (paper §4).
    void fft_velocity(const grid::NodeField<double, 3>& gamma,
                      grid::NodeField<double, 3>& velocity) {
        const auto& box = fft_->local_box();
        const int nj_box = box.j.extent();
        const auto n = box.size();
        std::array<std::vector<fft::cplx>, 3> spectral;
        for (int c = 0; c < 3; ++c) {
            spectral[static_cast<std::size_t>(c)].resize(n);
            std::size_t k = 0;
            for (int gi = box.i.begin; gi < box.i.end; ++gi) {
                for (int gj = box.j.begin; gj < box.j.end; ++gj, ++k) {
                    spectral[static_cast<std::size_t>(c)][k] = {
                        gamma(gi - box.i.begin, gj - box.j.begin, c), 0.0};
                }
            }
            fft_->forward(spectral[static_cast<std::size_t>(c)]);
        }

        const int n0 = mesh_->global().num_nodes(0);
        const int n1 = mesh_->global().num_nodes(1);
        const double lx = mesh_->global().extent(0);
        const double ly = mesh_->global().extent(1);
        constexpr double tau = 2.0 * std::numbers::pi;
        std::size_t k = 0;
        for (int gi = box.i.begin; gi < box.i.end; ++gi) {
            for (int gj = box.j.begin; gj < box.j.end; ++gj, ++k) {
                double kx = tau * fft::DistributedFFT2D::signed_mode(gi, n0) / lx;
                double ky = tau * fft::DistributedFFT2D::signed_mode(gj, n1) / ly;
                double kn = std::sqrt(kx * kx + ky * ky);
                if (kn == 0.0) {
                    for (auto& s : spectral) s[k] = {0.0, 0.0};
                    continue;
                }
                fft::cplx gx = spectral[0][k], gy = spectral[1][k], gz = spectral[2][k];
                // i * (k x gamma_hat) / (2|k|), k = (kx, ky, 0).
                const fft::cplx iunit{0.0, 1.0};
                const double inv = 1.0 / (2.0 * kn);
                spectral[0][k] = iunit * (ky * gz) * inv;
                spectral[1][k] = iunit * (-kx * gz) * inv;
                spectral[2][k] = iunit * (kx * gy - ky * gx) * inv;
            }
        }

        for (int c = 0; c < 3; ++c) {
            fft_->inverse(spectral[static_cast<std::size_t>(c)]);
            std::size_t m = 0;
            for (int gi = box.i.begin; gi < box.i.end; ++gi) {
                for (int gj = box.j.begin; gj < box.j.end; ++gj, ++m) {
                    velocity(gi - box.i.begin, gj - box.j.begin, c) =
                        spectral[static_cast<std::size_t>(c)][m].real();
                }
            }
        }
        (void)nj_box;
    }

    comm::Communicator* comm_;
    const SurfaceMesh* mesh_;
    Order order_;
    BRSolverBase* br_;
    double atwood_;
    double gravity_;
    double mu_eff_;
    std::optional<fft::DistributedFFT2D> fft_;
};

} // namespace beatnik
