/// \file zmodel.hpp
/// \brief Z-Model derivative computation (paper §2/§3.1, ZModel module).
///
/// Evolution equations as implemented (derivation in DESIGN.md §1):
///   dz/dt  = W                       (interface moves with the fluid)
///   dw_i/dt = d/dalpha_i( -2*A*g*z3 - A*|Wb|^2 ) + mu * lap(w_i)
/// where W is the Birkhoff–Rott velocity of the sheet and Wb is the
/// velocity used inside the Bernoulli term. The order tag selects how
/// each velocity is obtained:
///   * low:    W and Wb from the flat-sheet Fourier multiplier
///             What(k) = i (k x gamma_hat) / (2|k|)    — 6 distributed FFTs
///   * medium: W from a BR solver, Wb from the FFT     — both comm patterns
///   * high:   W = Wb from a BR solver                 — no FFTs
/// The ZModel performs no direct communication itself; it invokes the FFT
/// library, the BR solver, and the ProblemManager's halo exchanges —
/// exactly the role the paper assigns it.
///
/// Scratch fields (gamma, velocities, Bernoulli scalar) and the spectral
/// staging buffers are persistent members, so a steady-state derivative
/// evaluation allocates nothing. On a device-resident ProblemManager the
/// whole pipeline runs as device kernels over the field mirrors: gamma,
/// the Bernoulli scalar, the derivative outputs and the FFT field<->
/// spectral marshalling are kernels, the spectral buffers are pinned
/// (registered) host ranges, and the distributed FFT's reshape staging
/// packs/unpacks on device straight into the pinned plan buffers
/// (DistributedFFT2D::enable_device). Host code touches only the pinned
/// spectral lines (the butterfly compute), never the field mirrors.
#pragma once

#include <numbers>
#include <optional>

#include "core/br_solver.hpp"
#include "core/operators.hpp"
#include "fft/distributed_fft.hpp"
#include "par/par.hpp"
#include "telemetry/metrics.hpp"

namespace beatnik {

class ZModel {
public:
    /// \p br may be null for Order::low; \p fft_config is used by
    /// low/medium order (ignored for high).
    ZModel(comm::Communicator& comm, const SurfaceMesh& mesh, const Params& params,
           BRSolverBase* br)
        : comm_(&comm), mesh_(&mesh), order_(params.order), br_(br),
          atwood_(params.atwood), gravity_(params.gravity),
          mu_eff_(mesh.effective_mu(params.mu)), gamma_(mesh.local()), w_fft_(mesh.local()),
          w_br_(mesh.local()), phi_(mesh.local()), zdot_dev_(mesh.local()),
          wdot_dev_(mesh.local()) {
        BEATNIK_REQUIRE(order_ == Order::low || br_ != nullptr,
                        "medium/high order require a BR solver");
        if (order_ != Order::high) {
            fft_.emplace(comm, std::array<int, 2>{mesh.global().num_nodes(0),
                                                  mesh.global().num_nodes(1)},
                         mesh.topology().dims(), params.fft);
        }
    }

    /// Drain in-flight kernels before the scratch mirrors and pinned
    /// spectral buffers die.
    ~ZModel() {
        if (device_) queue_->fence(); // devcheck: fenced — teardown drain
    }
    ZModel(const ZModel&) = delete;
    ZModel& operator=(const ZModel&) = delete;

    /// Compute (zdot, wdot) at owned nodes from the state in \p pm.
    /// Precondition: pm halos are current (the integrator guarantees it).
    /// Collective: every rank must call with the same state generation.
    ///
    /// A device-resident state always runs the device pipeline — the
    /// scratch-field mirrors are the authoritative copies there, and a
    /// host sweep over them would silently read stale data. Callers with
    /// plain host derivative fields (direct API use, tests) get the
    /// results downloaded into their fields' owned nodes; mirrored
    /// caller fields (the integrator's) are written in place on device.
    /// A host-resident state takes the pure host path.
    void derivatives(ProblemManager& pm, grid::NodeField<double, 3>& zdot,
                     grid::NodeField<double, 2>& wdot) {
        static const telemetry::Phase ph{"step/derivatives"};
        telemetry::PhaseScope scope(ph);
        if (!pm.device_resident()) {
            derivatives_host(pm, zdot, wdot);
            return;
        }
        // Half-mirrored caller fields would leave the mirrored one's
        // device copy silently stale after the download path — refuse.
        BEATNIK_REQUIRE(zdot.device_mirrored() == wdot.device_mirrored(),
                        "derivative fields must be both mirrored or both host-resident");
        if (zdot.device_mirrored() && wdot.device_mirrored()) {
            derivatives_device(pm, zdot, wdot);
            return;
        }
        ensure_device(pm);
        derivatives_device(pm, zdot_dev_, wdot_dev_);
        zdot_dev_.sync_to_host(*queue_);
        wdot_dev_.sync_to_host(*queue_);
        queue_->fence(); // devcheck: fenced — host loop downloads the mirrors
        const auto& local = mesh_->local();
        grid::for_each(local.own_space(), [&](int i, int j) {
            for (int c = 0; c < 3; ++c) zdot(i, j, c) = zdot_dev_(i, j, c);
            for (int c = 0; c < 2; ++c) wdot(i, j, c) = wdot_dev_(i, j, c);
        });
    }

    [[nodiscard]] Order order() const { return order_; }
    [[nodiscard]] BRSolverBase* br_solver() const { return br_; }

private:
    // Shared by the host and device pipelines (and, for br, three call
    // sites), so the interned Phase lives here rather than per call site.
    static const telemetry::Phase& br_phase() {
        static const telemetry::Phase ph{"step/br"};
        return ph;
    }
    static const telemetry::Phase& fft_phase() {
        static const telemetry::Phase ph{"step/fft"};
        return ph;
    }

    void derivatives_host(ProblemManager& pm, grid::NodeField<double, 3>& zdot,
                          grid::NodeField<double, 2>& wdot) {
        const auto& local = mesh_->local();
        const int ni = local.owned_extent(0);
        const int nj = local.owned_extent(1);
        const double dx = mesh_->global().spacing(0);
        const double dy = mesh_->global().spacing(1);
        // Bind the state fields outside the kernels: the accessors do
        // coherence work on a device-resident state (a host refresh), and
        // that must happen on the host thread, not inside a kernel on the
        // worker pool.
        const auto& z = std::as_const(pm).position();
        const auto& w = std::as_const(pm).vorticity();

        // Biot–Savart source gamma at owned nodes (width-2 stencils).
        // All point-local loops below go through par::parallel_for_2d, so
        // the kernels run unmodified on whichever backend the rank-thread
        // selected (serial, OpenMP worksharing, or the device pool).
        grid::NodeField<double, 3>& gamma = gamma_;
        par::parallel_for_2d(0, ni, 0, nj, [&](std::ptrdiff_t ip, std::ptrdiff_t jp) {
            const int i = static_cast<int>(ip);
            const int j = static_cast<int>(jp);
            Vec3 g = operators::gamma_vector(z, w, i, j, dx, dy);
            gamma(i, j, 0) = g.x;
            gamma(i, j, 1) = g.y;
            gamma(i, j, 2) = g.z;
        });

        // Interface velocity W (zdot) and the Bernoulli velocity Wb.
        if (order_ != Order::high) fft_velocity_host(gamma, w_fft_);
        grid::NodeField<double, 3>* w_for_z = &w_fft_;
        grid::NodeField<double, 3>* w_for_bernoulli = &w_fft_;
        if (order_ != Order::low) {
            telemetry::PhaseScope br_scope(br_phase());
            br_->compute_velocity(pm, gamma, w_br_);
            w_for_z = &w_br_;
            if (order_ == Order::high) w_for_bernoulli = &w_br_;
        }
        par::parallel_for_2d(0, ni, 0, nj, [&](std::ptrdiff_t ip, std::ptrdiff_t jp) {
            const int i = static_cast<int>(ip);
            const int j = static_cast<int>(jp);
            for (int c = 0; c < 3; ++c) zdot(i, j, c) = (*w_for_z)(i, j, c);
        });

        // Bernoulli scalar phi = -2*A*g*z3 - A*|Wb|^2, haloed so its
        // surface gradient exists at owned nodes.
        grid::NodeField<double, 1>& phi = phi_;
        par::parallel_for_2d(0, ni, 0, nj, [&](std::ptrdiff_t ip, std::ptrdiff_t jp) {
            const int i = static_cast<int>(ip);
            const int j = static_cast<int>(jp);
            const auto& wb = *w_for_bernoulli;
            double speed2 = wb(i, j, 0) * wb(i, j, 0) + wb(i, j, 1) * wb(i, j, 1) +
                            wb(i, j, 2) * wb(i, j, 2);
            phi(i, j, 0) = -2.0 * atwood_ * gravity_ * z(i, j, 2) - atwood_ * speed2;
        });
        pm.gather_scratch_halo(phi);

        par::parallel_for_2d(0, ni, 0, nj, [&](std::ptrdiff_t ip, std::ptrdiff_t jp) {
            const int i = static_cast<int>(ip);
            const int j = static_cast<int>(jp);
            wdot(i, j, 0) = operators::d1(phi, i, j, 0, dx) +
                            mu_eff_ * operators::laplacian(w, i, j, 0, dx, dy);
            wdot(i, j, 1) = operators::d2(phi, i, j, 0, dy) +
                            mu_eff_ * operators::laplacian(w, i, j, 1, dx, dy);
        });
    }

    /// The same pipeline as device kernels over the mirrors. Everything is
    /// enqueued on the state's queue, so stages order by stream semantics;
    /// host synchronization happens only inside the FFT (butterflies on
    /// the pinned spectral lines) and the BR solvers' communication.
    /// Expressions are evaluated per node exactly as in the host path, so
    /// results are bitwise identical.
    void derivatives_device(ProblemManager& pm, grid::NodeField<double, 3>& zdot,
                            grid::NodeField<double, 2>& wdot) {
        ensure_device(pm);
        pm.ensure_device_current();
        par::device::Queue& q = *queue_;
        const auto& local = mesh_->local();
        const int ni = local.owned_extent(0);
        const int nj = local.owned_extent(1);
        const double dx = mesh_->global().spacing(0);
        const double dy = mesh_->global().spacing(1);

        auto z = std::as_const(pm.position_raw()).device_view();
        auto w = std::as_const(pm.vorticity_raw()).device_view();
        namespace dc = par::device::devcheck;

        {
            auto g = gamma_.device_view();
            dc::declare(q, "zmodel gamma",
                        {dc::read(z.raw()), dc::read(w.raw()), dc::write(g.raw())});
            par::device::parallel_for_2d(q, ni, nj, [=](int i, int j, std::size_t) {
                Vec3 gv = operators::gamma_vector(z, w, i, j, dx, dy);
                g(i, j, 0) = gv.x;
                g(i, j, 1) = gv.y;
                g(i, j, 2) = gv.z;
            });
        }

        // Interface velocity W and the Bernoulli velocity Wb. The BR
        // solver's begin hook starts its gamma-dependent staging (the
        // cutoff solver's pack/canonicalize kernel) on a side queue,
        // chained behind the gamma kernel by an event — it overlaps the
        // FFT below. For medium order the whole Bernoulli chain (phi,
        // its halo, wdot) depends only on the FFT velocity, so it is
        // issued *before* the BR solve: under the overlapped schedule
        // those main-queue kernels run concurrently with the cutoff
        // solver's spatial pipeline on its own queues. Stage order of
        // each individual output is unchanged, so results are bitwise
        // identical to the fenced schedule (and to the host path).
        if (order_ != Order::low) br_->begin_velocity(pm, gamma_);
        if (order_ != Order::high) fft_velocity_device(q);
        grid::NodeField<double, 3>* w_for_z = &w_fft_;
        grid::NodeField<double, 3>* w_for_bernoulli = &w_fft_;
        if (order_ == Order::high) {
            telemetry::PhaseScope br_scope(br_phase());
            br_->compute_velocity(pm, gamma_, w_br_);
            w_for_z = &w_br_;
            w_for_bernoulli = &w_br_;
        }
        auto enqueue_zdot = [&] {
            auto src = std::as_const(*w_for_z).device_view();
            auto dst = zdot.device_view();
            dc::declare(q, "zmodel zdot copy", {dc::read(src.raw()), dc::write(dst.raw())});
            par::device::parallel_for_2d(q, ni, nj, [=](int i, int j, std::size_t) {
                for (int c = 0; c < 3; ++c) dst(i, j, c) = src(i, j, c);
            });
        };
        auto enqueue_bernoulli = [&] {
            {
                auto wb = std::as_const(*w_for_bernoulli).device_view();
                auto phi = phi_.device_view();
                const double atwood = atwood_;
                const double gravity = gravity_;
                dc::declare(q, "zmodel bernoulli phi",
                            {dc::read(wb.raw()), dc::read(z.raw()), dc::write(phi.raw())});
                par::device::parallel_for_2d(q, ni, nj, [=](int i, int j, std::size_t) {
                    double speed2 = wb(i, j, 0) * wb(i, j, 0) + wb(i, j, 1) * wb(i, j, 1) +
                                    wb(i, j, 2) * wb(i, j, 2);
                    phi(i, j, 0) = -2.0 * atwood * gravity * z(i, j, 2) - atwood * speed2;
                });
            }
            pm.gather_scratch_halo(phi_);
            {
                auto phi = std::as_const(phi_).device_view();
                auto dst = wdot.device_view();
                const double mu_eff = mu_eff_;
                dc::declare(q, "zmodel wdot",
                            {dc::read(phi.raw()), dc::read(w.raw()), dc::write(dst.raw())});
                par::device::parallel_for_2d(q, ni, nj, [=](int i, int j, std::size_t) {
                    dst(i, j, 0) = operators::d1(phi, i, j, 0, dx) +
                                   mu_eff * operators::laplacian(w, i, j, 0, dx, dy);
                    dst(i, j, 1) = operators::d2(phi, i, j, 0, dy) +
                                   mu_eff * operators::laplacian(w, i, j, 1, dx, dy);
                });
            }
        };
        if (order_ == Order::medium) {
            enqueue_bernoulli();
            {
                telemetry::PhaseScope br_scope(br_phase());
                br_->compute_velocity(pm, gamma_, w_br_);
            }
            w_for_z = &w_br_;
            enqueue_zdot();
        } else {
            enqueue_zdot();
            enqueue_bernoulli();
        }
    }

    /// One-time device setup: mirror the scratch fields, pin the spectral
    /// staging buffers, and switch the FFT's reshape staging to device
    /// pack/unpack through the pinned plan buffers.
    void ensure_device(ProblemManager& pm) {
        if (device_) return;
        queue_ = &pm.device_queue();
        gamma_.enable_device_mirror();
        w_fft_.enable_device_mirror();
        w_br_.enable_device_mirror();
        phi_.enable_device_mirror();
        zdot_dev_.enable_device_mirror();
        wdot_dev_.enable_device_mirror();
        // The derivative-download scratch is read back wholesale; seed
        // the mirrors from the zero-filled host storage so the ghost
        // bytes are defined.
        zdot_dev_.sync_to_device(*queue_);
        wdot_dev_.sync_to_device(*queue_);
        queue_->fence(); // devcheck: fenced — one-time mirror seed
        if (fft_) {
            const auto n = fft_->local_box().size();
            for (auto& s : spectral_) {
                s.resize(n);
                pinned_.emplace_back(std::span<const fft::cplx>(s.data(), s.size()));
            }
            fft_->enable_device(*queue_);
        }
        device_ = true;
    }

    /// Low-order interface velocity: transform the three gamma components,
    /// apply What = i (k x gamma_hat) / (2|k|), transform back. 3 forward
    /// + 3 inverse distributed FFTs — the all-to-all load of the low-order
    /// benchmarks (paper §4).
    void fft_velocity_host(const grid::NodeField<double, 3>& gamma,
                           grid::NodeField<double, 3>& velocity) {
        telemetry::PhaseScope scope(fft_phase());
        const auto& box = fft_->local_box();
        const auto n = box.size();
        for (int c = 0; c < 3; ++c) {
            auto& s = spectral_[static_cast<std::size_t>(c)];
            s.resize(n);
            std::size_t k = 0;
            for (int gi = box.i.begin; gi < box.i.end; ++gi) {
                for (int gj = box.j.begin; gj < box.j.end; ++gj, ++k) {
                    s[k] = {gamma(gi - box.i.begin, gj - box.j.begin, c), 0.0};
                }
            }
            fft_->forward(s);
        }

        apply_multiplier();

        for (int c = 0; c < 3; ++c) {
            auto& s = spectral_[static_cast<std::size_t>(c)];
            fft_->inverse(s);
            std::size_t m = 0;
            for (int gi = box.i.begin; gi < box.i.end; ++gi) {
                for (int gj = box.j.begin; gj < box.j.end; ++gj, ++m) {
                    velocity(gi - box.i.begin, gj - box.j.begin, c) = s[m].real();
                }
            }
        }
    }

    /// Device variant: gamma -> pinned spectral lines and spectral ->
    /// velocity marshalling are kernels; the distributed transforms and
    /// the multiplier run on the pinned buffers.
    void fft_velocity_device(par::device::Queue& q) {
        telemetry::PhaseScope scope(fft_phase());
        const auto& box = fft_->local_box();
        const int nib = box.i.extent();
        const int njb = box.j.extent();
        namespace dc = par::device::devcheck;
        const std::size_t nbox = box.size();
        for (int c = 0; c < 3; ++c) {
            fft::cplx* sp = spectral_[static_cast<std::size_t>(c)].data();
            auto g = std::as_const(gamma_).device_view();
            dc::declare(q, "zmodel gamma -> spectral",
                        {dc::read(g.raw()), dc::write(sp, nbox * sizeof(fft::cplx))});
            par::device::parallel_for_2d(q, nib, njb, [=](int i, int j, std::size_t k) {
                sp[k] = {g(i, j, c), 0.0};
            });
        }
        // The transforms read the spectral lines from host code (the
        // butterflies); the reshapes inside enqueue their own kernels on
        // the same queue and fence before host compute.
        q.fence(); // devcheck: fenced — host butterflies read the spectral lines
        for (auto& s : spectral_) fft_->forward(s);
        apply_multiplier();
        for (auto& s : spectral_) fft_->inverse(s);
        for (int c = 0; c < 3; ++c) {
            const fft::cplx* sp = spectral_[static_cast<std::size_t>(c)].data();
            auto v = w_fft_.device_view();
            dc::declare(q, "zmodel spectral -> velocity",
                        {dc::read(sp, nbox * sizeof(fft::cplx)), dc::write(v.raw())});
            par::device::parallel_for_2d(q, nib, njb, [=](int i, int j, std::size_t k) {
                v(i, j, c) = sp[k].real();
            });
        }
    }

    /// The flat-sheet Fourier multiplier, applied in place to the three
    /// transformed gamma components (host compute on the spectral lines).
    void apply_multiplier() {
        const auto& box = fft_->local_box();
        const int n0 = mesh_->global().num_nodes(0);
        const int n1 = mesh_->global().num_nodes(1);
        const double lx = mesh_->global().extent(0);
        const double ly = mesh_->global().extent(1);
        constexpr double tau = 2.0 * std::numbers::pi;
        auto& spectral = spectral_;
        std::size_t k = 0;
        for (int gi = box.i.begin; gi < box.i.end; ++gi) {
            for (int gj = box.j.begin; gj < box.j.end; ++gj, ++k) {
                double kx = tau * fft::DistributedFFT2D::signed_mode(gi, n0) / lx;
                double ky = tau * fft::DistributedFFT2D::signed_mode(gj, n1) / ly;
                double kn = std::sqrt(kx * kx + ky * ky);
                if (kn == 0.0) {
                    for (auto& s : spectral) s[k] = {0.0, 0.0};
                    continue;
                }
                fft::cplx gx = spectral[0][k], gy = spectral[1][k], gz = spectral[2][k];
                // i * (k x gamma_hat) / (2|k|), k = (kx, ky, 0).
                const fft::cplx iunit{0.0, 1.0};
                const double inv = 1.0 / (2.0 * kn);
                spectral[0][k] = iunit * (ky * gz) * inv;
                spectral[1][k] = iunit * (-kx * gz) * inv;
                spectral[2][k] = iunit * (kx * gy - ky * gx) * inv;
            }
        }
    }

    comm::Communicator* comm_;
    const SurfaceMesh* mesh_;
    Order order_;
    BRSolverBase* br_;
    double atwood_;
    double gravity_;
    double mu_eff_;
    std::optional<fft::DistributedFFT2D> fft_;
    // Persistent scratch: one derivative evaluation allocates nothing in
    // the steady state. Only owned nodes are read back (phi additionally
    // through its own halo refresh), so stale ghosts are harmless.
    grid::NodeField<double, 3> gamma_;
    grid::NodeField<double, 3> w_fft_;
    grid::NodeField<double, 3> w_br_;
    grid::NodeField<double, 1> phi_;
    /// Landing pads for host-field callers on a device-resident state:
    /// the device pipeline writes these mirrors, then the owned nodes are
    /// downloaded into the caller's fields.
    grid::NodeField<double, 3> zdot_dev_;
    grid::NodeField<double, 2> wdot_dev_;
    std::array<std::vector<fft::cplx>, 3> spectral_;
    // Device mode: the rank-thread's queue, plus pins for the spectral
    // staging buffers (kernels write them directly).
    par::device::Queue* queue_ = nullptr;
    bool device_ = false;
    std::vector<par::device::ScopedHostRegistration> pinned_;
};

} // namespace beatnik
