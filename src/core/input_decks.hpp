/// \file input_decks.hpp
/// \brief The paper's four named benchmark test cases (§4) as parameter
/// presets, scaled by a mesh-size argument so the same deck serves laptop
/// tests and the netsim-extrapolated paper sizes.
#pragma once

#include "core/params.hpp"

namespace beatnik::decks {

/// Multi-mode low-order weak scaling: stresses network *bandwidth*
/// through FFT all-to-all on a growing global mesh. Paper base: 4864^2
/// nodes per GPU on a (-19,19)^2 domain.
inline Params multimode_loworder(int nodes_per_axis) {
    Params p;
    p.num_nodes = {nodes_per_axis, nodes_per_axis};
    p.boundary = Boundary::periodic;
    p.surface_low = {-19.0, -19.0};
    p.surface_high = {19.0, 19.0};
    p.order = Order::low;
    p.initial.kind = InitialCondition::Kind::multimode;
    p.initial.magnitude = 0.05;
    return p;
}

/// Multi-mode high-order weak scaling with the cutoff solver: general
/// scalability, little load imbalance. Paper base: 768^2 per GPU on
/// (-3,3)^2 with cutoff 0.2.
inline Params multimode_highorder(int nodes_per_axis, double cutoff = 0.2) {
    Params p;
    p.num_nodes = {nodes_per_axis, nodes_per_axis};
    p.boundary = Boundary::periodic;
    p.surface_low = {-3.0, -3.0};
    p.surface_high = {3.0, 3.0};
    p.box_low = {-3.0, -3.0, -3.0};
    p.box_high = {3.0, 3.0, 3.0};
    p.order = Order::high;
    p.br_solver = BRSolverKind::cutoff;
    p.cutoff_distance = cutoff;
    p.initial.kind = InitialCondition::Kind::multimode;
    p.initial.magnitude = 0.05;
    return p;
}

/// Multi-mode "rollup ladder": a small ladder of commensurate modes on a
/// free-boundary high-order deck. Unlike multimode_highorder (periodic,
/// load-balanced) this combines the multimode perturbation with the
/// singlemode case's *distinct BC setup* — free boundaries, so ghost
/// bands are filled by extrapolation instead of periodic wrap — and a
/// stronger kick, so several rollups of different sizes develop at once
/// and the spatial ownership census drifts earlier than in either paper
/// deck. Scaled to the (-3,3)^2 high-order domain with cutoff 0.4.
inline Params rollup_ladder(int nodes_per_axis, double cutoff = 0.4) {
    Params p;
    p.num_nodes = {nodes_per_axis, nodes_per_axis};
    p.boundary = Boundary::free;
    p.surface_low = {-3.0, -3.0};
    p.surface_high = {3.0, 3.0};
    p.box_low = {-3.0, -3.0, -3.0};
    p.box_high = {3.0, 3.0, 3.0};
    p.order = Order::high;
    p.br_solver = BRSolverKind::cutoff;
    p.cutoff_distance = cutoff;
    p.initial.kind = InitialCondition::Kind::multimode;
    p.initial.magnitude = 0.15;
    p.initial.num_modes = 3;
    return p;
}

/// Single-mode high-order strong scaling: surface rollup creates load
/// imbalance and dynamic, irregular communication. Paper: 512^2 mesh,
/// cutoff 0.5 ("smaller cutoffs resulted in significant numerical
/// inaccuracy"), free boundaries.
inline Params singlemode_highorder(int nodes_per_axis, double cutoff = 0.5) {
    Params p;
    p.num_nodes = {nodes_per_axis, nodes_per_axis};
    p.boundary = Boundary::free;
    p.surface_low = {-3.0, -3.0};
    p.surface_high = {3.0, 3.0};
    p.box_low = {-3.0, -3.0, -3.0};
    p.box_high = {3.0, 3.0, 3.0};
    p.order = Order::high;
    p.br_solver = BRSolverKind::cutoff;
    p.cutoff_distance = cutoff;
    p.initial.kind = InitialCondition::Kind::singlemode;
    p.initial.magnitude = 0.2;
    return p;
}

} // namespace beatnik::decks
