/// \file beatnik.hpp
/// \brief Umbrella header: the full public API of the Beatnik
/// reproduction core library.
///
/// Typical use (see examples/quickstart.cpp):
/// \code
///   beatnik::comm::Context::run(4, [](beatnik::comm::Communicator& comm) {
///       beatnik::Params params = beatnik::decks::multimode_loworder(128);
///       beatnik::Solver solver(comm, params);
///       solver.advance(20);
///       auto s = beatnik::summarize(solver.state());
///   });
/// \endcode
#pragma once

#include "core/diagnostics.hpp"
#include "core/input_decks.hpp"
#include "core/silo_writer.hpp"
#include "core/solver.hpp"
