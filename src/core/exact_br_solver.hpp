/// \file exact_br_solver.hpp
/// \brief Brute-force all-pairs Birkhoff–Rott solver with ring-pass
/// communication (paper §3.2, ExactBRSolver).
///
/// Every rank's target points interact with every surface point. Source
/// blocks circulate around a rank ring: at each of the P steps a rank
/// computes forces between its targets and the currently held source
/// block while (logically) forwarding the block to its right neighbor —
/// the classic systolic all-pairs schedule. O(N^2) compute; regular,
/// bandwidth-heavy communication; compute-bound in practice (paper §3.2).
///
/// The staging buffers (targets, circulating block, accumulators) are
/// persistent members. On a device-resident state they are pinned and the
/// target/block pack and the final velocity write run as device kernels
/// over the field mirrors; the interaction sweep itself already dispatches
/// through par::parallel_for onto the device pool.
#pragma once

#include <numbers>

#include "core/br_solver.hpp"
#include "par/par.hpp"

namespace beatnik {

class ExactBRSolver final : public BRSolverBase {
public:
    ExactBRSolver(const SurfaceMesh& mesh, const Params& params)
        : mesh_(&mesh), eps2_(square(mesh.effective_epsilon(params.epsilon))) {}

    /// Drain in-flight kernels before the pinned staging dies.
    ~ExactBRSolver() override {
        if (queue_ != nullptr) queue_->fence(); // devcheck: fenced — teardown drain
    }

    [[nodiscard]] const char* name() const override { return "exact"; }

    void compute_velocity(ProblemManager& pm, const grid::NodeField<double, 3>& gamma,
                          grid::NodeField<double, 3>& velocity) override {
        auto& comm = pm.comm();
        const auto& local = mesh_->local();
        const int ni = local.owned_extent(0);
        const int nj = local.owned_extent(1);
        const auto n_own = static_cast<std::size_t>(ni) * static_cast<std::size_t>(nj);
        const bool device =
            pm.device_resident() && gamma.device_mirrored() && velocity.device_mirrored();

        ensure_buffers(comm, n_own, device, device ? &pm.device_queue() : nullptr);
        // The ring pass leaves an arbitrary peer's block behind; restore
        // the local size (within reserved capacity — never reallocates).
        block_.resize(n_own);

        // Pack targets once; the same layout doubles as the first source
        // block.
        if (device) {
            auto& q = pm.device_queue();
            auto z = std::as_const(pm.position_raw()).device_view();
            auto g = std::as_const(gamma).device_view();
            SourcePoint* bp = block_.data();
            Vec3* tp = targets_.data();
            Vec3* ap = accum_.data();
            namespace dc = par::device::devcheck;
            dc::declare(q, "exact BR pack",
                        {dc::read(z.raw()), dc::read(g.raw()),
                         dc::write(bp, n_own * sizeof(SourcePoint)),
                         dc::write(tp, n_own * sizeof(Vec3)),
                         dc::write(ap, n_own * sizeof(Vec3))});
            par::device::parallel_for_2d(q, ni, nj, [=](int i, int j, std::size_t k) {
                Vec3 pos{z(i, j, 0), z(i, j, 1), z(i, j, 2)};
                tp[k] = pos;
                bp[k] = {pos, Vec3{g(i, j, 0), g(i, j, 1), g(i, j, 2)}};
                ap[k] = Vec3{};
            });
            // The ring sends read the pinned block from host code next.
            q.fence(); // devcheck: fenced — ring sends read the block on the host
        } else {
            std::size_t k = 0;
            for (int i = 0; i < ni; ++i) {
                for (int j = 0; j < nj; ++j, ++k) {
                    Vec3 pos{pm.position()(i, j, 0), pm.position()(i, j, 1),
                             pm.position()(i, j, 2)};
                    Vec3 g{gamma(i, j, 0), gamma(i, j, 1), gamma(i, j, 2)};
                    targets_[k] = pos;
                    block_[k] = {pos, g};
                }
            }
            std::fill(accum_.begin(), accum_.end(), Vec3{});
        }

        const int p = comm.size();
        const int right = (comm.rank() + 1) % p;
        const int left = (comm.rank() - 1 + p) % p;
        constexpr int kRingTag = 100;
        std::size_t count = n_own;
        for (int step = 0; step < p; ++step) {
            // Forward the block first (buffered send) so communication
            // overlaps the local interaction sweep, as in the paper.
            if (step + 1 < p) {
                comm.send(std::span<const SourcePoint>(block_.data(), count), right, kRingTag);
            }
            const SourcePoint* bp = block_.data();
            const std::size_t bn = count;
            const Vec3* tp = targets_.data();
            Vec3* ap = accum_.data();
            const double eps2 = eps2_;
            par::parallel_for(n_own, [=](std::size_t t) {
                Vec3 sum{};
                for (std::size_t s = 0; s < bn; ++s) {
                    sum += br_kernel(tp[t], bp[s].pos, bp[s].gamma, eps2);
                }
                ap[t] += sum;
            });
            if (step + 1 < p) {
                comm.recv<SourcePoint>(incoming_, left, kRingTag);
                count = incoming_.size();
                block_.swap(incoming_);
            }
        }

        const double prefactor = mesh_->cell_area() / (4.0 * std::numbers::pi);
        if (device) {
            auto& q = pm.device_queue();
            auto v = velocity.device_view();
            const Vec3* ap = accum_.data();
            namespace dc = par::device::devcheck;
            dc::declare(q, "exact BR velocity write",
                        {dc::read(ap, n_own * sizeof(Vec3)), dc::write(v.raw())});
            par::device::parallel_for_2d(q, ni, nj, [=](int i, int j, std::size_t k) {
                v(i, j, 0) = prefactor * ap[k].x;
                v(i, j, 1) = prefactor * ap[k].y;
                v(i, j, 2) = prefactor * ap[k].z;
            });
            // No fence: the caller keeps enqueueing on the same queue, and
            // the next evaluation's pack kernel fence covers reuse of the
            // accumulators.
        } else {
            std::size_t k = 0;
            for (int i = 0; i < ni; ++i) {
                for (int j = 0; j < nj; ++j, ++k) {
                    velocity(i, j, 0) = prefactor * accum_[k].x;
                    velocity(i, j, 1) = prefactor * accum_[k].y;
                    velocity(i, j, 2) = prefactor * accum_[k].z;
                }
            }
        }
    }

private:
    struct SourcePoint {
        Vec3 pos;
        Vec3 gamma;
    };
    static double square(double v) { return v * v; }

    /// Size the persistent staging once. Blocks arriving around the ring
    /// can be as large as the biggest rank's owned count, so the block
    /// buffers reserve the global maximum up front — receives then resize
    /// within capacity and the pinned registration stays valid.
    void ensure_buffers(comm::Communicator& comm, std::size_t n_own, bool device,
                        par::device::Queue* q) {
        if (device) queue_ = q;
        if (buffers_ready_) return;
        const auto max_n = static_cast<std::size_t>(
            comm.allreduce_value(static_cast<double>(n_own), comm::op::Max{}));
        block_.reserve(max_n);
        incoming_.reserve(max_n);
        block_.resize(n_own);
        incoming_.resize(max_n);
        targets_.resize(n_own);
        accum_.resize(n_own);
        if (device) {
            pinned_.emplace_back(std::span<const std::byte>(
                reinterpret_cast<const std::byte*>(block_.data()), max_n * sizeof(SourcePoint)));
            pinned_.emplace_back(std::span<const std::byte>(
                reinterpret_cast<const std::byte*>(incoming_.data()),
                max_n * sizeof(SourcePoint)));
            pinned_.emplace_back(std::span<const Vec3>(targets_.data(), targets_.size()));
            pinned_.emplace_back(std::span<const Vec3>(accum_.data(), accum_.size()));
        }
        buffers_ready_ = true;
    }

    const SurfaceMesh* mesh_;
    double eps2_;
    // Persistent staging (pinned under device residency).
    std::vector<SourcePoint> block_;
    std::vector<SourcePoint> incoming_;
    std::vector<Vec3> targets_;
    std::vector<Vec3> accum_;
    std::vector<par::device::ScopedHostRegistration> pinned_;
    par::device::Queue* queue_ = nullptr;
    bool buffers_ready_ = false;
};

} // namespace beatnik
