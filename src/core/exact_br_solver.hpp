/// \file exact_br_solver.hpp
/// \brief Brute-force all-pairs Birkhoff–Rott solver with ring-pass
/// communication (paper §3.2, ExactBRSolver).
///
/// Every rank's target points interact with every surface point. Source
/// blocks circulate around a rank ring: at each of the P steps a rank
/// computes forces between its targets and the currently held source
/// block while (logically) forwarding the block to its right neighbor —
/// the classic systolic all-pairs schedule. O(N^2) compute; regular,
/// bandwidth-heavy communication; compute-bound in practice (paper §3.2).
#pragma once

#include <numbers>

#include "core/br_solver.hpp"
#include "par/par.hpp"

namespace beatnik {

class ExactBRSolver final : public BRSolverBase {
public:
    ExactBRSolver(const SurfaceMesh& mesh, const Params& params)
        : mesh_(&mesh), eps2_(square(mesh.effective_epsilon(params.epsilon))) {}

    [[nodiscard]] const char* name() const override { return "exact"; }

    void compute_velocity(ProblemManager& pm, const grid::NodeField<double, 3>& gamma,
                          grid::NodeField<double, 3>& velocity) override {
        auto& comm = pm.comm();
        const auto& local = mesh_->local();
        const int ni = local.owned_extent(0);
        const int nj = local.owned_extent(1);
        const auto n_own = static_cast<std::size_t>(ni) * static_cast<std::size_t>(nj);

        // Pack targets once; the same layout doubles as the first source
        // block.
        std::vector<SourcePoint> block(n_own);
        std::vector<Vec3> targets(n_own);
        std::size_t k = 0;
        for (int i = 0; i < ni; ++i) {
            for (int j = 0; j < nj; ++j, ++k) {
                Vec3 pos{pm.position()(i, j, 0), pm.position()(i, j, 1), pm.position()(i, j, 2)};
                Vec3 g{gamma(i, j, 0), gamma(i, j, 1), gamma(i, j, 2)};
                targets[k] = pos;
                block[k] = {pos, g};
            }
        }
        std::vector<Vec3> accum(n_own, Vec3{});

        const int p = comm.size();
        const int right = (comm.rank() + 1) % p;
        const int left = (comm.rank() - 1 + p) % p;
        constexpr int kRingTag = 100;
        std::vector<SourcePoint> incoming;
        for (int step = 0; step < p; ++step) {
            // Forward the block first (buffered send) so communication
            // overlaps the local interaction sweep, as in the paper.
            if (step + 1 < p) {
                comm.send(std::span<const SourcePoint>(block.data(), block.size()), right,
                          kRingTag);
            }
            par::parallel_for(n_own, [&](std::size_t t) {
                Vec3 sum{};
                for (const auto& s : block) {
                    sum += br_kernel(targets[t], s.pos, s.gamma, eps2_);
                }
                accum[t] += sum;
            });
            if (step + 1 < p) {
                comm.recv<SourcePoint>(incoming, left, kRingTag);
                block.swap(incoming);
            }
        }

        const double prefactor = mesh_->cell_area() / (4.0 * std::numbers::pi);
        k = 0;
        for (int i = 0; i < ni; ++i) {
            for (int j = 0; j < nj; ++j, ++k) {
                velocity(i, j, 0) = prefactor * accum[k].x;
                velocity(i, j, 1) = prefactor * accum[k].y;
                velocity(i, j, 2) = prefactor * accum[k].z;
            }
        }
    }

private:
    struct SourcePoint {
        Vec3 pos;
        Vec3 gamma;
    };
    static double square(double v) { return v * v; }

    const SurfaceMesh* mesh_;
    double eps2_;
};

} // namespace beatnik
