/// \file spatial_mesh.hpp
/// \brief The 3D spatial domain and its position-based rank decomposition
/// (paper §3.2, SpatialMesh module).
///
/// The cutoff solver re-homes surface points by physical location. The 3D
/// box is decomposed in x/y only ("a 2D x/y block decomposition of the 3D
/// space to mirror the initial distribution of 2D surface points"), using
/// the same rank grid as the surface mesh.
///
/// Periodic mode (the paper's §6 "periodic boundary conditions for
/// scalable high-order solves" future-work item, implemented here): x/y
/// positions wrap on the periodic tile, ownership is computed on wrapped
/// coordinates, and ghost copies crossing a boundary carry the +-L image
/// offset so the cutoff kernel sees correct 3D distances to periodic
/// images. In non-periodic mode positions outside the box are clamped for
/// ownership purposes (the box is expected to contain the interface,
/// paper §5.1).
///
/// The geometry itself — wrap/clamp, ownership, ghost-target visiting —
/// lives in SpatialGeometry, a POD captured by value into device kernels
/// (the canonicalize/owner and ghost-generation kernels of the
/// device-resident cutoff pipeline). SpatialMesh is the host-facing
/// wrapper that validates parameters and carries the topology pointer.
#pragma once

#include <vector>

#include "core/params.hpp"
#include "grid/cart_topology.hpp"

namespace beatnik {

/// A ghost-copy destination: the receiving rank plus the periodic image
/// offset to add to the copy's position (zero when the copy does not
/// cross a periodic boundary).
struct GhostTarget {
    int rank;
    double dx, dy;
};

/// Kernel-safe spatial decomposition geometry: trivially copyable, no
/// pointers, every method usable inside device kernels. Rank layout is
/// the CartTopology2D row-major convention (rank = ci * dims[1] + cj).
struct SpatialGeometry {
    bool periodic = false;
    double low[2] = {0.0, 0.0};
    double high[2] = {1.0, 1.0};
    int dims[2] = {1, 1};

    /// Wrap (periodic) or clamp (free) a coordinate into the box; also
    /// returns the applied wrap offset via \p shift.
    [[nodiscard]] double canonical(int d, double v, double* shift = nullptr) const {
        const double lo = low[d];
        const double hi = high[d];
        const double len = hi - lo;
        if (periodic) {
            double t = std::floor((v - lo) / len);
            if (shift) *shift = -t * len;
            return v - t * len;
        }
        if (shift) *shift = 0.0;
        return v;
    }

    /// Block index without clamping (may be out of range; callers handle
    /// wrap or reject).
    [[nodiscard]] int raw_block_index(int d, double v) const {
        const double lo = low[d];
        const double hi = high[d];
        const int n = dims[d];
        return static_cast<int>(std::floor((v - lo) / (hi - lo) * n));
    }

    [[nodiscard]] int block_index(int d, double v) const {
        int c = raw_block_index(d, v);
        const int n = dims[d];
        return c < 0 ? 0 : (c >= n ? n - 1 : c);
    }

    /// Rank owning physical location (x, y).
    [[nodiscard]] int owner_rank(double x, double y) const {
        return block_index(0, canonical(0, x)) * dims[1] + block_index(1, canonical(1, y));
    }

    /// Visit every ghost-copy destination of a particle at (x, y): ranks
    /// other than the owner whose block, expanded by \p cutoff, contains
    /// the point or one of its periodic images. Calls f(rank, dx, dy)
    /// where (dx, dy) is the image offset to apply to the copy's
    /// position. Visit order is fixed (ci outer, cj inner), so streams
    /// built from it are deterministic.
    template <class F>
    void ghost_targets(double x, double y, double cutoff, F&& f) const {
        const int owner = owner_rank(x, y);
        double base_sx = 0.0, base_sy = 0.0;
        const double cx = canonical(0, x, &base_sx);
        const double cy = canonical(1, y, &base_sy);
        const int n0 = dims[0];
        const int n1 = dims[1];
        const int ci_lo = raw_block_index(0, cx - cutoff);
        const int ci_hi = raw_block_index(0, cx + cutoff);
        const int cj_lo = raw_block_index(1, cy - cutoff);
        const int cj_hi = raw_block_index(1, cy + cutoff);
        const double lenx = high[0] - low[0];
        const double leny = high[1] - low[1];
        for (int ci = ci_lo; ci <= ci_hi; ++ci) {
            for (int cj = cj_lo; cj <= cj_hi; ++cj) {
                double dx = base_sx, dy = base_sy;
                int wi = ci, wj = cj;
                if (periodic) {
                    // Wrapping the block index means the copy is an image:
                    // shift its position by the corresponding tile offset.
                    while (wi < 0) {
                        wi += n0;
                        dx += lenx;
                    }
                    while (wi >= n0) {
                        wi -= n0;
                        dx -= lenx;
                    }
                    while (wj < 0) {
                        wj += n1;
                        dy += leny;
                    }
                    while (wj >= n1) {
                        wj -= n1;
                        dy -= leny;
                    }
                } else {
                    if (wi < 0 || wi >= n0 || wj < 0 || wj >= n1) continue;
                }
                int r = wi * n1 + wj;
                if (r == owner && dx == base_sx && dy == base_sy) continue;
                f(r, dx, dy);
            }
        }
    }
};

class SpatialMesh {
public:
    using GhostTarget = beatnik::GhostTarget;

    SpatialMesh(const Params& params, const grid::CartTopology2D& topo) : topo_(&topo) {
        geom_.periodic = params.boundary == Boundary::periodic;
        geom_.low[0] = params.box_low[0];
        geom_.low[1] = params.box_low[1];
        geom_.high[0] = params.box_high[0];
        geom_.high[1] = params.box_high[1];
        geom_.dims[0] = topo.dims()[0];
        geom_.dims[1] = topo.dims()[1];
        BEATNIK_REQUIRE(geom_.high[0] > geom_.low[0] && geom_.high[1] > geom_.low[1],
                        "spatial box bounds must be increasing");
        if (geom_.periodic) {
            // The periodic tile is the surface's initial x/y extent; the
            // box must coincide with it for image offsets to be exact.
            BEATNIK_REQUIRE(params.surface_low[0] == params.box_low[0] &&
                                params.surface_high[0] == params.box_high[0] &&
                                params.surface_low[1] == params.box_low[1] &&
                                params.surface_high[1] == params.box_high[1],
                            "periodic cutoff solves require the spatial box to equal the "
                            "surface tile");
        }
    }

    [[nodiscard]] bool periodic() const { return geom_.periodic; }

    /// The kernel-safe geometry (capture by value into device kernels).
    [[nodiscard]] const SpatialGeometry& geometry() const { return geom_; }

    /// Wrap (periodic) or clamp (free) a coordinate into the box; also
    /// returns the applied wrap offset via \p shift.
    [[nodiscard]] double canonical(int d, double v, double* shift = nullptr) const {
        return geom_.canonical(d, v, shift);
    }

    /// Rank owning physical location (x, y).
    [[nodiscard]] int owner_rank(double x, double y) const { return geom_.owner_rank(x, y); }

    /// Append every ghost-copy destination of a particle at (x, y) (see
    /// SpatialGeometry::ghost_targets for the visiting form).
    void ghost_targets(double x, double y, double cutoff, std::vector<GhostTarget>& out) const {
        geom_.ghost_targets(x, y, cutoff,
                            [&out](int r, double dx, double dy) { out.push_back({r, dx, dy}); });
    }

    /// Width of one block along axis d (the cutoff-to-block-size ratio
    /// controls ghost volume; see bench/micro_kernels).
    [[nodiscard]] double block_width(int d) const {
        return (geom_.high[d] - geom_.low[d]) / geom_.dims[d];
    }

private:
    const grid::CartTopology2D* topo_;
    SpatialGeometry geom_;
};

} // namespace beatnik
