/// \file operators.hpp
/// \brief Finite-difference stencils on the surface mesh (paper §3.1:
/// "two-node-deep stencils for calculating surface normals, finite
/// differences, and Laplacians").
///
/// Operators are templated on the field *view* type: anything indexable
/// as f(i, j, c) works — a host grid::NodeField or a device-side
/// grid::DeviceFieldView — so the same kernels run unmodified on every
/// execution backend, including inside device kernels against the
/// device mirror.
///
/// All operators act at *owned* nodes and read up to two ghost layers:
///  * D1/D2 — 4th-order central first derivatives along the two surface
///    parameter directions;
///  * laplacian — 2nd-order 5-point surface Laplacian;
///  * gamma (the Biot–Savart source) and surface normals built from them.
#pragma once

#include "core/surface_mesh.hpp"
#include "core/types.hpp"
#include "grid/field.hpp"

namespace beatnik::operators {

/// 4th-order first derivative along axis 0 of component c.
template <class F>
double d1(const F& f, int i, int j, int c, double spacing) {
    return (f(i - 2, j, c) - 8.0 * f(i - 1, j, c) + 8.0 * f(i + 1, j, c) - f(i + 2, j, c)) /
           (12.0 * spacing);
}

/// 4th-order first derivative along axis 1 of component c.
template <class F>
double d2(const F& f, int i, int j, int c, double spacing) {
    return (f(i, j - 2, c) - 8.0 * f(i, j - 1, c) + 8.0 * f(i, j + 1, c) - f(i, j + 2, c)) /
           (12.0 * spacing);
}

/// 2nd-order 5-point Laplacian of component c.
template <class F>
double laplacian(const F& f, int i, int j, int c, double dx, double dy) {
    return (f(i + 1, j, c) - 2.0 * f(i, j, c) + f(i - 1, j, c)) / (dx * dx) +
           (f(i, j + 1, c) - 2.0 * f(i, j, c) + f(i, j - 1, c)) / (dy * dy);
}

/// Tangent vector along axis 0 at an owned node.
template <class F>
Vec3 tangent1(const F& z, int i, int j, double dx) {
    return {d1(z, i, j, 0, dx), d1(z, i, j, 1, dx), d1(z, i, j, 2, dx)};
}

/// Tangent vector along axis 1 at an owned node.
template <class F>
Vec3 tangent2(const F& z, int i, int j, double dy) {
    return {d2(z, i, j, 0, dy), d2(z, i, j, 1, dy), d2(z, i, j, 2, dy)};
}

/// Non-unit surface normal t1 x t2.
template <class F>
Vec3 surface_normal(const F& z, int i, int j, double dx, double dy) {
    return cross(tangent1(z, i, j, dx), tangent2(z, i, j, dy));
}

/// The Biot–Savart source ("omega" in Beatnik's ZModel):
///   gamma = w1 * dz/dalpha2 - w2 * dz/dalpha1,
/// the 90-degree-rotated surface gradient of the dipole strength. For a
/// flat sheet this reduces to (-w2, w1, 0) = n x (w1, w2, 0).
template <class FZ, class FW>
Vec3 gamma_vector(const FZ& z, const FW& w, int i, int j, double dx, double dy) {
    Vec3 t1 = tangent1(z, i, j, dx);
    Vec3 t2 = tangent2(z, i, j, dy);
    return w(i, j, 0) * t2 - w(i, j, 1) * t1;
}

} // namespace beatnik::operators
