/// \file initial_conditions.hpp
/// \brief Rocket-rig initial interface shapes (paper §4).
///
/// Both test cases perturb a flat interface at z3 = 0 with zero initial
/// vorticity; the instability then grows from the baroclinic term.
/// Multimode: a seeded superposition of low modes — periodic, stays
/// balanced (Fig. 1). Singlemode: one centered mode — free boundaries,
/// rolls up and develops load imbalance (Fig. 2).
///
/// The random mode content depends only on (seed, mode index), never on
/// the decomposition, so any rank count produces the same surface.
#pragma once

#include <cmath>
#include <numbers>

#include "base/rng.hpp"
#include "core/params.hpp"
#include "core/surface_mesh.hpp"
#include "grid/field.hpp"

namespace beatnik {

/// Perturbation height eta(x, y) for the multimode case.
inline double multimode_eta(const InitialCondition& ic, double xhat, double yhat) {
    // xhat, yhat in [0, 1): periodic unit coordinates.
    constexpr double tau = 2.0 * std::numbers::pi;
    double eta = 0.0;
    double norm = 0.0;
    for (int p = 1; p <= ic.num_modes; ++p) {
        for (int q = 1; q <= ic.num_modes; ++q) {
            auto key = static_cast<std::uint64_t>(p * 131 + q);
            double amp = 0.5 + beatnik::hash_uniform(ic.seed, key);
            double phx = tau * beatnik::hash_uniform(ic.seed, key * 7 + 1);
            double phy = tau * beatnik::hash_uniform(ic.seed, key * 7 + 2);
            eta += amp * std::cos(tau * p * xhat + phx) * std::cos(tau * q * yhat + phy);
            norm += amp;
        }
    }
    return ic.magnitude * eta / norm;
}

/// Perturbation height for the singlemode case: one full wavelength per
/// axis, peak at the domain center, zero slope at the free boundary.
inline double singlemode_eta(const InitialCondition& ic, double xhat, double yhat) {
    constexpr double pi = std::numbers::pi;
    return ic.magnitude * std::cos(2.0 * pi * xhat - pi) * std::cos(2.0 * pi * yhat - pi);
}

/// Fill owned nodes of z with the flat perturbed sheet and w with zero.
inline void apply_initial_conditions(const SurfaceMesh& mesh, const InitialCondition& ic,
                                     grid::NodeField<double, 3>& z,
                                     grid::NodeField<double, 2>& w) {
    const auto& local = mesh.local();
    const auto& global = mesh.global();
    for (int i = 0; i < local.owned_extent(0); ++i) {
        for (int j = 0; j < local.owned_extent(1); ++j) {
            double x = mesh.coordinate(0, i);
            double y = mesh.coordinate(1, j);
            double xhat = (x - global.low(0)) / global.extent(0);
            double yhat = (y - global.low(1)) / global.extent(1);
            double eta = ic.kind == InitialCondition::Kind::multimode
                             ? multimode_eta(ic, xhat, yhat)
                             : singlemode_eta(ic, xhat, yhat);
            z(i, j, 0) = x;
            z(i, j, 1) = y;
            z(i, j, 2) = eta;
            w(i, j, 0) = 0.0;
            w(i, j, 1) = 0.0;
        }
    }
}

} // namespace beatnik
