/// \file plancheck.cpp
/// \brief Static schedule matching and wait-for-graph knot detection for
/// the plan verifier (see plancheck.hpp for the model).
#include "comm/plancheck.hpp"

#include <cstdlib>
#include <limits>

#include "comm/types.hpp"
#include "telemetry/telemetry.hpp"

namespace beatnik::comm::plancheck {

namespace detail_pc {

int init_from_env() noexcept {
    const char* e = std::getenv("BEATNIK_PLANCHECK");
    const int on = (e != nullptr && e[0] == '1' && e[1] == '\0') ? 1 : 0;
    int expected = -1;
    // First caller wins; a racing arm()/disarm() already stored a value.
    g_state.compare_exchange_strong(expected, on, std::memory_order_relaxed);
    return g_state.load(std::memory_order_relaxed);
}

} // namespace detail_pc

namespace {

[[nodiscard]] const char* band_name(int tag) {
    if (tag < 0) return "wildcard";
    if (tag < tags::user_limit) return "user";
    if (tag >= tags::halo_base && tag < tags::halo_limit) return "plan-halo";
    if (tag >= tags::plan_seq_base && tag < tags::plan_limit) return "plan-seq";
    return "collective";
}

[[nodiscard]] std::string channel_str(const ChannelKey& key) {
    return "comm " + std::to_string(key.comm_id) + ", world " +
           std::to_string(key.src_world) + " -> world " + std::to_string(key.dst_world) +
           ", tag " + std::to_string(key.tag) + " (" + band_name(key.tag) + " band)";
}

[[nodiscard]] std::string slot_str(const SlotDecl& s, bool is_send, int self_world) {
    const int src = is_send ? self_world : s.peer_world;
    const int dst = is_send ? s.peer_world : self_world;
    return std::string(is_send ? "send" : "recv") + " slot world " + std::to_string(src) +
           " -> world " + std::to_string(dst) + ", tag " + std::to_string(s.tag) + " (" +
           band_name(s.tag) + " band), max " + std::to_string(s.max_bytes) + " bytes";
}

[[nodiscard]] const char* kind_str(WaitKind k) {
    switch (k) {
    case WaitKind::recv: return "plan recv";
    case WaitKind::send: return "publish rendezvous";
    case WaitKind::barrier: return "barrier round";
    }
    return "wait";
}

} // namespace

ContextState::ContextState(int world_size) : active_(enabled()) {
    blocked_.resize(static_cast<std::size_t>(world_size < 1 ? 1 : world_size));
    knot_.reserve(blocked_.size());
}

void ContextState::report_locked(const std::string& msg) {
    detail_pc::g_hazards.fetch_add(1, std::memory_order_relaxed);
    throw CommError("plancheck: " + msg);
}

void ContextState::register_plan(PlanDecl decl, std::uint64_t& out_id) {
    std::lock_guard lock(mutex_);
    if (!active_) return;

    // Immediate per-slot checks first — they need no other rank's plan.
    auto check_slot = [&](const SlotDecl& s, bool is_send) {
        if (s.max_bytes > s.capacity) {
            report_locked(
                slot_str(s, is_send, decl.self_world) + " declared by comm rank " +
                std::to_string(decl.comm_rank) + " (built at " + decl.site +
                ") exceeds the " + std::to_string(s.capacity) +
                "-byte capacity the '" + s.transport +
                "' transport bound the channel at — cross-process buffers cannot grow "
                "under a peer's feet; register every endpoint of the channel with the "
                "same (largest) max_bytes");
        }
        if (s.tag >= tags::plan_seq_base && s.tag < tags::plan_limit &&
            s.tag - tags::plan_seq_base >= decl.seq_tags_used) {
            report_locked(
                slot_str(s, is_send, decl.self_world) + " declared by comm rank " +
                std::to_string(decl.comm_rank) + " (built at " + decl.site +
                ") uses a sequence-band tag this communicator never allocated — plan "
                "tags must come from new_plan_tag() so every rank draws them in "
                "lockstep");
        }
    };
    for (const auto& s : decl.sends) check_slot(s, true);
    for (const auto& s : decl.recvs) check_slot(s, false);

    // Duplicate (comm, src, dst, tag) collisions across live plans: the
    // channels are single-slot, so two live plans driving the same key
    // corrupt each other's rendezvous.
    auto check_dup = [&](const std::map<ChannelKey, LiveRef>& live, const ChannelKey& key,
                         const SlotDecl& s, bool is_send) {
        auto it = live.find(key);
        if (it == live.end()) return;
        const PlanRec& other = plans_.at(it->second.plan);
        report_locked(
            slot_str(s, is_send, decl.self_world) + " declared by comm rank " +
            std::to_string(decl.comm_rank) + " (built at " + decl.site +
            ") collides with slot " + std::to_string(it->second.slot) +
            " of the live plan built at " + other.decl.site + " by comm rank " +
            std::to_string(other.decl.comm_rank) +
            " — single-slot channels admit one live plan per endpoint; destroy the "
            "previous plan first or draw a fresh tag");
    };
    for (std::size_t i = 0; i < decl.sends.size(); ++i) {
        const auto& s = decl.sends[i];
        check_dup(live_sends_, {decl.comm_id, decl.self_world, s.peer_world, s.tag}, s, true);
    }
    for (std::size_t i = 0; i < decl.recvs.size(); ++i) {
        const auto& s = decl.recvs[i];
        check_dup(live_recvs_, {decl.comm_id, s.peer_world, decl.self_world, s.tag}, s, false);
    }

    const std::uint64_t id = next_id_++;
    const std::uint64_t index = build_counts_[{decl.comm_id, decl.comm_rank}]++;
    const int comm_id = decl.comm_id;
    const int comm_size = decl.comm_size;
    const int self_world = decl.self_world;
    auto& rec = plans_.emplace(id, PlanRec{std::move(decl), true}).first->second;
    for (std::size_t i = 0; i < rec.decl.sends.size(); ++i) {
        const auto& s = rec.decl.sends[i];
        live_sends_[{comm_id, self_world, s.peer_world, s.tag}] = {id, static_cast<int>(i)};
    }
    for (std::size_t i = 0; i < rec.decl.recvs.size(); ++i) {
        const auto& s = rec.decl.recvs[i];
        live_recvs_[{comm_id, s.peer_world, self_world, s.tag}] = {id, static_cast<int>(i)};
    }
    out_id = id;   // set before group verification: a throw below must stay unregisterable

    Group& g = groups_[{comm_id, index}];
    g.by_rank[rec.decl.comm_rank] = id;
    // Plans are built collectively in a uniform order per communicator
    // (the same contract new_plan_tag's lockstep draw relies on), so the
    // k-th build of every rank describes one logical schedule. Ranks
    // hosted in other processes never register here — their groups stay
    // incomplete and are (correctly) never matched.
    if (static_cast<int>(g.by_rank.size()) == comm_size && !g.verified) {
        g.verified = true;
        verify_group_locked(g);
    }
}

void ContextState::verify_group_locked(const Group& g) {
    // Global slot matching over the completed build group: every send key
    // must pair with exactly one recv key and vice versa.
    struct Side {
        const PlanRec* rec = nullptr;
        const SlotDecl* slot = nullptr;
        int sends = 0;
        int recvs = 0;
    };
    std::map<ChannelKey, Side> chans;
    for (const auto& [rank, id] : g.by_rank) {
        const PlanRec& rec = plans_.at(id);
        for (const auto& s : rec.decl.sends) {
            auto& side = chans[{rec.decl.comm_id, rec.decl.self_world, s.peer_world, s.tag}];
            ++side.sends;
            side.rec = &rec;
            side.slot = &s;
        }
        for (const auto& s : rec.decl.recvs) {
            auto& side = chans[{rec.decl.comm_id, s.peer_world, rec.decl.self_world, s.tag}];
            ++side.recvs;
            if (side.rec == nullptr) {
                side.rec = &rec;
                side.slot = &s;
            }
        }
    }
    for (const auto& [key, side] : chans) {
        if (side.sends == side.recvs) continue;
        const bool orphan_send = side.sends > side.recvs;
        report_locked(
            std::string("orphan ") + (orphan_send ? "send" : "recv") + " slot: " +
            channel_str(key) + " is declared by the plan built at " + side.rec->decl.site +
            " by comm rank " + std::to_string(side.rec->decl.comm_rank) + ", but no rank's "
            "plan in this build group declares the matching " +
            (orphan_send ? "recv" : "send") + " slot (" + std::to_string(side.sends) +
            " send(s) vs " + std::to_string(side.recvs) + " recv(s)) — the " +
            (orphan_send ? "publish" : "wait") + " could only end at the recv timeout");
    }
}

void ContextState::unregister_plan(std::uint64_t id) noexcept {
    try {
        std::lock_guard lock(mutex_);
        auto it = plans_.find(id);
        if (it == plans_.end()) return;
        PlanRec& rec = it->second;
        rec.live = false;
        const auto& d = rec.decl;
        for (std::size_t i = 0; i < d.sends.size(); ++i) {
            const ChannelKey key{d.comm_id, d.self_world, d.sends[i].peer_world, d.sends[i].tag};
            auto lit = live_sends_.find(key);
            if (lit != live_sends_.end() && lit->second.plan == id) live_sends_.erase(lit);
        }
        for (std::size_t i = 0; i < d.recvs.size(); ++i) {
            const ChannelKey key{d.comm_id, d.recvs[i].peer_world, d.self_world, d.recvs[i].tag};
            auto lit = live_recvs_.find(key);
            if (lit != live_recvs_.end() && lit->second.plan == id) live_recvs_.erase(lit);
        }
    } catch (...) {
        // Unregistration runs on noexcept teardown paths; losing the
        // bookkeeping under OOM is strictly better than terminating.
    }
}

void ContextState::note_published(const ChannelKey& key) {
    std::lock_guard lock(mutex_);
    if (!active_) return;
    Flow& f = flows_[key];
    // A slot can only be legally re-published after the receiver released
    // the previous message (acquire_send blocks on EMPTY). The counters
    // are complete exactly when a live local recv slot is attached, so the
    // check is scoped to that case — remote (cross-process) receivers
    // release without a local note.
    auto lit = live_recvs_.find(key);
    if (lit != live_recvs_.end() && f.published > f.released) {
        const PlanRec& rec = plans_.at(lit->second.plan);
        report_locked(
            "double publish on " + channel_str(key) + ": the previous message has not "
            "been released by recv slot " + std::to_string(lit->second.slot) +
            " of the plan built at " + rec.decl.site + " — publish() without a fresh "
            "send_buffer() acquire would overwrite an in-flight message");
    }
    ++f.published;
}

void ContextState::note_consumed(const ChannelKey& key) noexcept {
    try {
        std::lock_guard lock(mutex_);
        if (!active_) return;
        ++flows_[key].consumed;
    } catch (...) {
    }
}

void ContextState::note_released(const ChannelKey& key) noexcept {
    try {
        std::lock_guard lock(mutex_);
        if (!active_) return;
        ++flows_[key].released;
    } catch (...) {
    }
}

bool ContextState::satisfied_locked(const Await& e) const {
    auto it = flows_.find(e.key);
    if (it == flows_.end()) {
        // No flow record: nothing published yet (or counters not tracked
        // for this key). A send edge with no traffic is EMPTY == satisfied.
        return e.kind == WaitKind::send;
    }
    const Flow& f = it->second;
    if (e.kind == WaitKind::send) return f.published == f.released;
    return f.published > f.consumed;
}

void ContextState::block(int world, std::span<const Await> edges) {
    std::lock_guard lock(mutex_);
    if (!active_) return;
    if (world < 0 || static_cast<std::size_t>(world) >= blocked_.size()) return;
    Blocked& b = blocked_[static_cast<std::size_t>(world)];
    b.edges.assign(edges.begin(), edges.end());
    b.active = true;
    try {
        detect_locked(world);
    } catch (...) {
        b.active = false;   // the throwing waiter unwinds; don't leave it registered
        throw;
    }
}

void ContextState::unblock(int world) noexcept {
    try {
        std::lock_guard lock(mutex_);
        if (world < 0 || static_cast<std::size_t>(world) >= blocked_.size()) return;
        blocked_[static_cast<std::size_t>(world)].active = false;
    } catch (...) {
    }
}

void ContextState::detect_locked(int registrant) {
    // OR-wait knot: start from every currently blocked rank and repeatedly
    // remove any rank that could still be woken — an edge whose message is
    // already in flight, or an edge awaiting a rank that is *running*
    // (outside the set) and might yet publish. What remains is a set of
    // ranks none of which can ever proceed. Counters are updated under
    // this mutex before the corresponding wait registers, so a satisfied
    // edge is never missed — no false positives; a rank blocked in an
    // uninstrumented wait simply breaks the knot (missed detection falls
    // back to the timeout, never the reverse).
    knot_.assign(blocked_.size(), 0);
    for (std::size_t r = 0; r < blocked_.size(); ++r) {
        knot_[r] = blocked_[r].active ? 1 : 0;
    }
    bool changed = true;
    while (changed) {
        changed = false;
        for (std::size_t r = 0; r < blocked_.size(); ++r) {
            if (knot_[r] == 0) continue;
            bool stuck = !blocked_[r].edges.empty();
            for (const Await& e : blocked_[r].edges) {
                const bool awaited_in =
                    e.awaited_world >= 0 &&
                    static_cast<std::size_t>(e.awaited_world) < knot_.size() &&
                    knot_[static_cast<std::size_t>(e.awaited_world)] != 0;
                if (!awaited_in || satisfied_locked(e)) {
                    stuck = false;
                    break;
                }
            }
            if (!stuck) {
                knot_[r] = 0;
                changed = true;
            }
        }
    }
    if (registrant < 0 || static_cast<std::size_t>(registrant) >= knot_.size() ||
        knot_[static_cast<std::size_t>(registrant)] == 0) {
        return;
    }

    // Real deadlock: every rank in the knot, with every edge it is
    // blocked on — the in-flight picture at the moment the cycle closed.
    std::string msg = "deadlock: the wait-for graph contains a cycle no in-flight "
                      "message can break —";
    std::size_t nranks = 0;
    for (std::size_t r = 0; r < knot_.size(); ++r) {
        if (knot_[r] == 0) continue;
        ++nranks;
        msg += "\n  world rank " + std::to_string(r) + " blocked in ";
        const Blocked& b = blocked_[r];
        for (std::size_t i = 0; i < b.edges.size(); ++i) {
            const Await& e = b.edges[i];
            if (i > 0) msg += "; also ";
            msg += std::string(kind_str(e.kind)) + " awaiting world rank " +
                   std::to_string(e.awaited_world);
            if (e.slot >= 0) msg += " (slot " + std::to_string(e.slot) + ")";
            msg += " on " + channel_str(e.key);
        }
    }
    msg += "\n  (every listed wait is registered and unsatisfiable; the schedule "
           "orders these plans differently across ranks)";
    if (telemetry::enabled()) {
        // Drop an instant on this rank's track so the exported timeline
        // pins the moment the cycle closed against the in-flight spans.
        telemetry::thread_track().instant("plancheck.deadlock",
                                          static_cast<std::uint64_t>(nranks));
    }
    report_locked(msg);
}

} // namespace beatnik::comm::plancheck
