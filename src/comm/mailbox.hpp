/// \file mailbox.hpp
/// \brief Per-rank message queue with (communicator, source, tag) matching.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <vector>

#include "base/error.hpp"
#include "comm/types.hpp"

namespace beatnik::comm {

/// A message in flight: payload plus matching metadata.
struct Envelope {
    int comm_id = 0;              ///< Communicator the message belongs to.
    int src = 0;                  ///< Sender rank *within that communicator*.
    int tag = 0;
    std::vector<std::byte> payload;
};

/// Unexpected-message queue for one rank. Senders deliver() envelopes;
/// the owning rank-thread blocks in receive() until a matching envelope
/// arrives. Matching is FIFO per (comm, src, tag) triple, which gives the
/// same non-overtaking guarantee MPI provides.
///
/// The mailbox also observes a context-wide abort flag so that when any
/// rank-thread fails, blocked receivers wake up and unwind instead of
/// deadlocking the whole process.
class Mailbox {
public:
    Mailbox(const std::atomic<bool>& abort_flag, double timeout_seconds)
        : abort_(abort_flag), timeout_seconds_(timeout_seconds) {}

    Mailbox(const Mailbox&) = delete;
    Mailbox& operator=(const Mailbox&) = delete;

    /// Deposit a message (called from the *sender's* thread).
    void deliver(Envelope&& env) {
        {
            std::lock_guard lock(mutex_);
            queue_.push_back(std::move(env));
        }
        cv_.notify_all();
    }

    /// Block until a message matching (comm_id, src, tag) is available and
    /// return it. \p src may be any_source and \p tag may be any_tag.
    /// Throws CommError on context abort or receive timeout.
    Envelope receive(int comm_id, int src, int tag) {
        std::unique_lock lock(mutex_);
        auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                            std::chrono::duration<double>(timeout_seconds_));
        for (;;) {
            if (abort_.load(std::memory_order_acquire)) {
                throw CommError("receive aborted: another rank failed");
            }
            if (auto it = find_match(comm_id, src, tag); it != queue_.end()) {
                Envelope env = std::move(*it);
                queue_.erase(it);
                return env;
            }
            if (timeout_seconds_ <= 0.0) {
                cv_.wait(lock);
            } else if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
                throw CommError(
                    "receive timed out (probable deadlock): waiting for comm=" +
                    std::to_string(comm_id) + " src=" + std::to_string(src) +
                    " tag=" + std::to_string(tag));
            }
        }
    }

    /// Non-blocking probe-and-take. Returns false if no matching message
    /// is currently queued.
    bool try_receive(int comm_id, int src, int tag, Envelope& out) {
        std::lock_guard lock(mutex_);
        if (auto it = find_match(comm_id, src, tag); it != queue_.end()) {
            out = std::move(*it);
            queue_.erase(it);
            return true;
        }
        return false;
    }

    /// Wake all waiters (used on context abort).
    void interrupt() { cv_.notify_all(); }

    /// Number of queued (unreceived) messages. For tests and leak checks.
    std::size_t pending() const {
        std::lock_guard lock(mutex_);
        return queue_.size();
    }

private:
    std::deque<Envelope>::iterator find_match(int comm_id, int src, int tag) {
        for (auto it = queue_.begin(); it != queue_.end(); ++it) {
            if (it->comm_id != comm_id) continue;
            if (src != any_source && it->src != src) continue;
            if (tag != any_tag && it->tag != tag) continue;
            return it;
        }
        return queue_.end();
    }

    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::deque<Envelope> queue_;
    const std::atomic<bool>& abort_;
    double timeout_seconds_;
};

} // namespace beatnik::comm
