/// \file mailbox.hpp
/// \brief Per-rank message queues with indexed (communicator, source, tag)
/// matching.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "base/error.hpp"
#include "base/timer.hpp"
#include "comm/types.hpp"

namespace beatnik::comm {

/// A message in flight: shared immutable payload plus matching metadata.
struct Envelope {
    int comm_id = 0;              ///< Communicator the message belongs to.
    int src = 0;                  ///< Sender rank *within that communicator*.
    int tag = 0;
    Payload payload;
    std::uint64_t seq = 0;        ///< Arrival stamp, assigned by the mailbox.
};

/// Unexpected-message store for one rank. Senders deliver() envelopes; the
/// owning rank-thread blocks in receive() until a matching envelope
/// arrives.
///
/// Matching is indexed, not scanned: each communicator gets a bucket with
/// its own lock, and inside a bucket messages sit in dedicated FIFO queues
/// keyed by (src, tag). An exact-match receive is a hash lookup + pop.
/// Wildcard receives (any_source / any_tag) compare the arrival stamps of
/// the matching queue heads and take the earliest-delivered message, which
/// preserves both the MPI non-overtaking guarantee per (src, tag) pair and
/// the arrival-order semantics wildcards had under the old linear scan —
/// at O(live (src,tag) pairs) instead of O(pending messages).
///
/// Each mailbox has exactly one receiver (the owning rank-thread), so
/// deliver() uses notify_one. The mailbox also observes a context-wide
/// abort flag so that when any rank-thread fails, blocked receivers wake
/// up and unwind instead of deadlocking the whole process.
class Mailbox {
public:
    Mailbox(const std::atomic<bool>& abort_flag, double timeout_seconds)
        : abort_(abort_flag), timeout_seconds_(timeout_seconds) {}

    Mailbox(const Mailbox&) = delete;
    Mailbox& operator=(const Mailbox&) = delete;

    /// Deposit a message (called from the *sender's* thread).
    void deliver(Envelope&& env) {
        Bucket& b = bucket(env.comm_id);
        {
            std::lock_guard lock(b.mutex);
            env.seq = b.next_seq++;
            b.queues[MatchKey{env.src, env.tag}].push_back(std::move(env));
            ++b.count;
        }
        b.cv.notify_one();
    }

    /// Block until a message matching (comm_id, src, tag) is available and
    /// return it. \p src may be any_source and \p tag may be any_tag.
    /// Throws CommError on context abort or receive timeout.
    Envelope receive(int comm_id, int src, int tag) {
        Bucket& b = bucket(comm_id);
        std::unique_lock lock(b.mutex);
        auto deadline = deadline_after(timeout_seconds_);
        for (;;) {
            if (abort_.load(std::memory_order_acquire)) {
                throw CommError("receive aborted: another rank failed");
            }
            Envelope env;
            if (take_match(b, src, tag, env)) return env;
            if (timeout_seconds_ <= 0.0) {
                b.cv.wait(lock);
            } else if (b.cv.wait_until(lock, deadline) == std::cv_status::timeout) {
                throw CommError(
                    "receive timed out (probable deadlock): waiting for comm=" +
                    std::to_string(comm_id) + " src=" + std::to_string(src) +
                    " tag=" + std::to_string(tag));
            }
        }
    }

    /// Non-blocking probe-and-take. Returns false if no matching message
    /// is currently queued. Throws CommError on context abort so that
    /// polling loops (Request::test, wait_any) unwind when a rank fails.
    bool try_receive(int comm_id, int src, int tag, Envelope& out) {
        if (abort_.load(std::memory_order_acquire)) {
            throw CommError("receive aborted: another rank failed");
        }
        Bucket& b = bucket(comm_id);
        std::lock_guard lock(b.mutex);
        return take_match(b, src, tag, out);
    }

    /// Wake all waiters (used on context abort).
    void interrupt() {
        std::lock_guard registry_lock(registry_mutex_);
        for (auto& [id, b] : buckets_) {
            // Take the bucket lock so a receiver between its abort check and
            // its wait cannot miss the wakeup.
            { std::lock_guard lock(b->mutex); }
            b->cv.notify_all();
        }
    }

    /// Number of queued (unreceived) messages. For tests and leak checks.
    std::size_t pending() const {
        std::lock_guard registry_lock(registry_mutex_);
        std::size_t total = 0;
        for (const auto& [id, b] : buckets_) {
            std::lock_guard lock(b->mutex);
            total += b->count;
        }
        return total;
    }

private:
    struct MatchKey {
        int src;
        int tag;
        bool operator==(const MatchKey&) const = default;
    };
    struct MatchKeyHash {
        std::size_t operator()(const MatchKey& k) const {
            auto v = (static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.src)) << 32) |
                     static_cast<std::uint32_t>(k.tag);
            v ^= v >> 33;
            v *= 0xff51afd7ed558ccdULL;
            v ^= v >> 33;
            return static_cast<std::size_t>(v);
        }
    };

    /// Per-communicator message store. Each bucket has its own lock and
    /// condition variable so traffic on one communicator never contends
    /// with another's.
    struct Bucket {
        mutable std::mutex mutex;
        std::condition_variable cv;
        std::unordered_map<MatchKey, std::deque<Envelope>, MatchKeyHash> queues;
        std::uint64_t next_seq = 0;   ///< Arrival stamps for wildcard ordering.
        std::size_t count = 0;        ///< Total queued envelopes.
    };

    /// Get or lazily create the bucket for \p comm_id. Buckets are held by
    /// unique_ptr so references stay valid as the registry rehashes.
    Bucket& bucket(int comm_id) {
        std::lock_guard lock(registry_mutex_);
        auto& slot = buckets_[comm_id];
        if (!slot) slot = std::make_unique<Bucket>();
        return *slot;
    }

    /// Pop the matching envelope with the lowest arrival stamp, if any.
    /// Caller holds b.mutex. Emptied queues are erased so the wildcard scan
    /// only ever visits live (src, tag) pairs.
    static bool take_match(Bucket& b, int src, int tag, Envelope& out) {
        auto pop_front = [&](auto it) {
            out = std::move(it->second.front());
            it->second.pop_front();
            if (it->second.empty()) b.queues.erase(it);
            --b.count;
            return true;
        };
        if (src != any_source && tag != any_tag) {
            auto it = b.queues.find(MatchKey{src, tag});
            return it != b.queues.end() && pop_front(it);
        }
        auto best = b.queues.end();
        for (auto it = b.queues.begin(); it != b.queues.end(); ++it) {
            if (src != any_source && it->first.src != src) continue;
            if (tag != any_tag && it->first.tag != tag) continue;
            if (best == b.queues.end() ||
                it->second.front().seq < best->second.front().seq) {
                best = it;
            }
        }
        return best != b.queues.end() && pop_front(best);
    }

    mutable std::mutex registry_mutex_;
    std::unordered_map<int, std::unique_ptr<Bucket>> buckets_;
    const std::atomic<bool>& abort_;
    double timeout_seconds_;
};

} // namespace beatnik::comm
