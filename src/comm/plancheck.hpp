/// \file plancheck.hpp
/// \brief Whole-schedule communication verifier for persistent plans.
///
/// comm::Plan makes every schedule *declarative*: each rank registers its
/// full (peer, tag, max_bytes) slot set before a byte moves. plancheck
/// exploits that by assembling a context-wide model of the declared
/// schedule as each rank's builder finalizes, then verifying the whole
/// thing the moment it becomes checkable — so a mis-built schedule fails
/// deterministically at build/enqueue time with names attached, instead
/// of hanging until `recv_timeout_seconds` fires a "probable deadlock"
/// guess.
///
/// Two halves:
///
///   static  every Plan::Builder::build() registers a PlanDecl (slots,
///           communicator coordinates, build site). Immediate per-plan
///           checks: declared max_bytes vs the transport's bound channel
///           capacity (shm segments are sized at first bind and cannot
///           grow under a peer's feet), sequence-band tags that were
///           never allocated through new_plan_tag(), and duplicate
///           (comm, src, dst, tag) slot collisions across *live* plans.
///           Once every rank of a communicator has registered its k-th
///           plan (plans are built collectively, see plan.hpp), the
///           whole build group is slot-matched globally: a send slot
///           with no matching recv — or the reverse — is a hard error
///           naming both sides, the tag band, and the build site.
///
///   runtime blocked waits (`wait_any_recv`/`wait_any_polled`,
///           `send_buffer`'s publish rendezvous, and the dissemination
///           barrier) register waiter -> awaited edges in a per-context
///           wait-for graph, cross-checked against in-flight
///           publish/consume/release counters so an edge whose message
///           is already in flight never counts as waiting. On every
///           block the graph is scanned for a knot (an OR-wait cycle no
///           in-flight message can break); a real deadlock becomes an
///           immediate CommError naming every rank, channel, slot and
///           tag in the cycle. Double-publish of a slot that was never
///           re-acquired is caught before it corrupts protocol state.
///
/// Arming mirrors the telemetry layer, not devcheck: the hooks are
/// *always compiled*; BEATNIK_PLANCHECK=1 in the environment (or arm())
/// switches them on. Disabled hooks cost one relaxed atomic load and
/// allocate nothing. Counters and the wait graph are trusted only for
/// contexts created while armed (ContextState::active()), so arming
/// mid-run can never produce a skewed false positive. Ranks living in
/// other OS processes (forked shm schedules) never register locally:
/// cross-process groups simply never complete and cross-process knots
/// never form — the checks degrade to silence, not to guesses.
///
/// Hazards throw CommError and bump hazard_count(); tests/main.cpp fails
/// any binary with unconsumed hazards (seeded true-positive tests consume
/// theirs via take_hazard_count()).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "base/error.hpp"
#include "comm/channel.hpp"

namespace beatnik::comm::plancheck {

namespace detail_pc {
/// -1 = uninitialized (read $BEATNIK_PLANCHECK on first query), 0 = off,
/// 1 = armed. Relaxed loads: arming is a process-lifetime decision, not a
/// synchronization edge.
inline std::atomic<int> g_state{-1};
inline std::atomic<std::uint64_t> g_hazards{0};
[[nodiscard]] int init_from_env() noexcept;   // plancheck.cpp
} // namespace detail_pc

/// Whether the verifier is armed. One relaxed atomic load when disabled —
/// cheap enough for every steady-state hook.
[[nodiscard]] inline bool enabled() noexcept {
    int s = detail_pc::g_state.load(std::memory_order_relaxed);
    if (s < 0) s = detail_pc::init_from_env();
    return s == 1;
}

/// Programmatic arming for tests (the environment path is
/// BEATNIK_PLANCHECK=1). Arm *before* creating the context whose traffic
/// should be verified: counters are only trusted for contexts created
/// while armed.
inline void arm() noexcept { detail_pc::g_state.store(1, std::memory_order_relaxed); }
inline void disarm() noexcept { detail_pc::g_state.store(0, std::memory_order_relaxed); }

/// Hazards reported so far (process-wide). Seeded true-positive tests
/// consume theirs with take_hazard_count(); tests/main.cpp fails the
/// binary on any residue.
[[nodiscard]] inline std::uint64_t hazard_count() noexcept {
    return detail_pc::g_hazards.load(std::memory_order_relaxed);
}
[[nodiscard]] inline std::uint64_t take_hazard_count() noexcept {
    return detail_pc::g_hazards.exchange(0, std::memory_order_relaxed);
}

/// One declared slot of a plan, as registered at build.
struct SlotDecl {
    int peer_world = 0;
    int tag = 0;
    std::size_t max_bytes = 0;
    /// Transport's bound channel capacity (SIZE_MAX for elastic buffers).
    std::size_t capacity = 0;
    const char* transport = "";   ///< static-storage transport name
};

/// A whole plan's declared schedule, snapshotted at build.
struct PlanDecl {
    int comm_id = 0;
    int comm_size = 0;
    int comm_rank = 0;
    int self_world = 0;
    int seq_tags_used = 0;   ///< Communicator::plan_tags_used() at build
    std::string site;        ///< builder call site, "file:line"
    std::vector<SlotDecl> sends;
    std::vector<SlotDecl> recvs;
};

/// What a registered wait edge is waiting *for*.
enum class WaitKind : std::uint8_t {
    recv,      ///< a message on `key` (satisfied while published > consumed)
    send,      ///< the peer's release of `key` (satisfied when published == released)
    barrier,   ///< a barrier-round post on `key` (same rule as recv)
};

/// One waiter -> awaited edge of a blocked OR-wait: the blocked rank can
/// proceed as soon as *any* of its registered edges is satisfied.
struct Await {
    WaitKind kind = WaitKind::recv;
    int awaited_world = 0;
    int slot = -1;           ///< plan slot index (-1 for barrier rounds)
    ChannelKey key;
};

/// Per-context verifier state, owned by comm::Context and shared into
/// every Plan (so unregistration stays safe past context death). All
/// methods are no-ops unless the context was created while armed.
class ContextState {
public:
    explicit ContextState(int world_size);

    /// Whether this context was created with plancheck armed — counters
    /// and the wait graph are only trusted in that case.
    [[nodiscard]] bool active() const noexcept { return active_; }

    /// Register a finalized plan. Sets \p out_id *before* running the
    /// build-group verification, so the caller's detach can always
    /// unregister — even when verification throws. Throws CommError on
    /// any static hazard.
    void register_plan(PlanDecl decl, std::uint64_t& out_id);
    void unregister_plan(std::uint64_t id) noexcept;

    /// In-flight counters. note_published also trips the double-publish
    /// check when a live local recv slot is attached to \p key (throws
    /// CommError). Barrier rounds reuse published/consumed.
    void note_published(const ChannelKey& key);
    void note_consumed(const ChannelKey& key) noexcept;
    void note_released(const ChannelKey& key) noexcept;

    /// Register rank \p world as blocked on the OR-wait \p edges and run
    /// knot detection; throws CommError (naming the whole cycle) when the
    /// wait can never be satisfied. unblock() on wake.
    void block(int world, std::span<const Await> edges);
    void unblock(int world) noexcept;

private:
    struct Flow {
        std::int64_t published = 0;
        std::int64_t consumed = 0;
        std::int64_t released = 0;
    };
    struct PlanRec {
        PlanDecl decl;
        bool live = true;
    };
    struct LiveRef {
        std::uint64_t plan = 0;
        int slot = -1;
    };
    struct Group {
        std::map<int, std::uint64_t> by_rank;   ///< comm_rank -> plan id
        bool verified = false;
    };
    struct Blocked {
        bool active = false;
        std::vector<Await> edges;   ///< capacity reused across waits
    };

    [[nodiscard]] bool satisfied_locked(const Await& e) const;
    void verify_group_locked(const Group& g);
    void detect_locked(int registrant);
    [[noreturn]] void report_locked(const std::string& msg);

    mutable std::mutex mutex_;
    bool active_ = false;
    std::uint64_t next_id_ = 1;
    std::map<std::uint64_t, PlanRec> plans_;
    std::map<std::pair<int, int>, std::uint64_t> build_counts_;       ///< (comm, rank)
    std::map<std::pair<int, std::uint64_t>, Group> groups_;           ///< (comm, build index)
    std::map<ChannelKey, LiveRef> live_sends_;
    std::map<ChannelKey, LiveRef> live_recvs_;
    std::map<ChannelKey, Flow> flows_;
    std::vector<Blocked> blocked_;      ///< world-rank indexed
    std::vector<std::uint8_t> knot_;    ///< detection scratch, reused
};

/// RAII blocked-wait registration. A null state is an armed-off no-op, so
/// call sites can construct unconditionally from a maybe-null pointer.
class BlockedScope {
public:
    BlockedScope() = default;
    BlockedScope(ContextState* cs, int world, std::span<const Await> edges)
        : cs_(cs), world_(world) {
        if (cs_ != nullptr) cs_->block(world_, edges);
    }
    ~BlockedScope() {
        if (cs_ != nullptr) cs_->unblock(world_);
    }
    BlockedScope(const BlockedScope&) = delete;
    BlockedScope& operator=(const BlockedScope&) = delete;

private:
    ContextState* cs_ = nullptr;
    int world_ = 0;
};

} // namespace beatnik::comm::plancheck
