#include "comm/communicator.hpp"

#include <algorithm>
#include <map>
#include <tuple>

namespace beatnik::comm {

Communicator Communicator::split(int color, int key) {
    const int p = size();

    // 1. Everyone learns everyone's (color, key).
    struct ColorKey {
        int color;
        int key;
    };
    ColorKey mine{color, key};
    std::vector<ColorKey> all = allgather(std::span<const ColorKey>(&mine, 1));

    // 2. Rank 0 allocates one fresh context-wide id per distinct color and
    //    broadcasts the assignment, keeping id allocation race-free even
    //    when several communicators split concurrently.
    std::vector<int> sorted_colors;
    sorted_colors.reserve(static_cast<std::size_t>(p));
    for (const auto& ck : all) sorted_colors.push_back(ck.color);
    std::sort(sorted_colors.begin(), sorted_colors.end());
    sorted_colors.erase(std::unique(sorted_colors.begin(), sorted_colors.end()),
                        sorted_colors.end());

    std::vector<int> ids(sorted_colors.size(), 0);
    if (rank_ == 0) {
        for (auto& id : ids) id = ctx_->new_comm_id();
    }
    bcast(std::span<int>(ids.data(), ids.size()), 0);

    // 3. Build my group: members with my color ordered by (key, old rank).
    std::vector<std::tuple<int, int, int>> group; // (key, old_rank, world_rank)
    for (int r = 0; r < p; ++r) {
        if (all[static_cast<std::size_t>(r)].color == color) {
            group.emplace_back(all[static_cast<std::size_t>(r)].key, r,
                               world_ranks_[static_cast<std::size_t>(r)]);
        }
    }
    std::sort(group.begin(), group.end());

    std::vector<int> new_world_ranks;
    new_world_ranks.reserve(group.size());
    int new_rank = -1;
    for (std::size_t i = 0; i < group.size(); ++i) {
        new_world_ranks.push_back(std::get<2>(group[i]));
        if (std::get<1>(group[i]) == rank_) new_rank = static_cast<int>(i);
    }
    BEATNIK_ASSERT(new_rank >= 0);

    auto color_pos = static_cast<std::size_t>(
        std::lower_bound(sorted_colors.begin(), sorted_colors.end(), color) -
        sorted_colors.begin());
    return Communicator(*ctx_, ids[color_pos], new_rank, std::move(new_world_ranks));
}

} // namespace beatnik::comm
