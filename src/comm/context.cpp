#include "comm/context.hpp"

#include <exception>
#include <string>
#include <thread>

#include "comm/communicator.hpp"
#include "comm/plancheck.hpp"
#include "telemetry/telemetry.hpp"

namespace beatnik::comm {

Context::Context(int size, ContextConfig config) : size_(size), config_(std::move(config)) {
    BEATNIK_REQUIRE(size >= 1, "context size must be >= 1");
    mailboxes_.reserve(static_cast<std::size_t>(size));
    for (int r = 0; r < size; ++r) {
        mailboxes_.push_back(
            std::make_unique<Mailbox>(abort_, config_.recv_timeout_seconds));
    }
    transports_ = std::make_shared<TransportRegistry>(TransportRegistry::Config{
        config_.transport, config_.loopback, config_.shm_session});
    // Captures the arming bit at construction: counters are only trusted
    // for contexts whose whole lifetime ran armed.
    plancheck_ = std::make_shared<plancheck::ContextState>(size);
}

Context::~Context() = default;

void Context::abort() {
    if (telemetry::enabled()) {
        telemetry::thread_track().instant("comm.abort");
    }
    abort_.store(true, std::memory_order_release);
    for (auto& box : mailboxes_) box->interrupt();
    // Transport-level fan-out: wake futex waiters, including — for the
    // shm transport — peer *processes* sharing our segments.
    transports_->abort_all();
}

void Context::run(int nranks, const std::function<void(Communicator&)>& fn,
                  ContextConfig config) {
    if (config.telemetry && !telemetry::enabled()) telemetry::arm();
    Context ctx(nranks, config);

    // World rank -> world rank identity mapping shared by every rank's
    // communicator instance.
    std::vector<int> identity(static_cast<std::size_t>(nranks));
    for (int r = 0; r < nranks; ++r) identity[static_cast<std::size_t>(r)] = r;

    std::vector<std::exception_ptr> failures(static_cast<std::size_t>(nranks));
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(nranks));
    for (int r = 0; r < nranks; ++r) {
        threads.emplace_back([&ctx, &fn, &identity, &failures, r] {
            try {
                if (telemetry::enabled()) {
                    telemetry::name_thread_track("rank " + std::to_string(r));
                }
                Communicator world(ctx, /*comm_id=*/0, r, identity);
                fn(world);
            } catch (...) {
                failures[static_cast<std::size_t>(r)] = std::current_exception();
                ctx.abort();
            }
        });
    }
    for (auto& t : threads) t.join();

    for (int r = 0; r < nranks; ++r) {
        if (failures[static_cast<std::size_t>(r)]) {
            try {
                std::rethrow_exception(failures[static_cast<std::size_t>(r)]);
            } catch (const std::exception& e) {
                throw Error(strcat_msg("rank ", r, " failed: ", e.what()));
            }
        }
    }
}

} // namespace beatnik::comm
