/// \file plan.hpp
/// \brief Persistent communication plans: build-once / execute-many
/// message patterns with zero per-iteration allocation.
///
/// A comm::Plan is the MPI persistent-request / neighborhood-collective
/// analogue for patterns whose (peer, tag, max_bytes) schedule is fixed —
/// halo exchanges, particle migration, FFT reshapes. The builder registers
/// every send and recv slot up front; matching happens exactly once, at
/// build time, when both endpoints resolve the same PlanChannel in the
/// context's ChannelRegistry (comm/channel.hpp). After that, an iteration
/// is:
///
///   plan.start();                                  // open the iteration
///   auto buf = plan.send_buffer(s, nbytes);        // acquire slot buffer
///   /* pack directly into buf */                   // zero staging copy
///   plan.publish(s);                               // hand off to receiver
///   while ((s = plan.wait_any_recv()) != -1) {     // arrival order
///       /* read plan.recv_view(s) in place */      // zero receive copy
///       plan.release_recv(s);                      // slot reusable
///   }
///
/// No queues, no matching, no Payload control blocks, no heap traffic:
/// steady-state start()/publish()/wait() touch only pre-allocated state
/// (verified by a counting-allocator test). Receives complete in arrival
/// order through a per-plan ready ring, so unpacking one message overlaps
/// the delivery of the rest — the "real nonblocking" semantics the
/// mailbox-path irecv() approximates by polling.
///
/// Plans must be built collectively (every rank builds the matching plan)
/// and iterations are collective in the usual loose sense: every
/// participant eventually starts its iteration. A plan should finish its
/// current iteration before destruction; destruction releases any
/// consumed-but-unreleased slots so the channels are immediately reusable
/// by a successor plan (this is what lets the deprecated free-function
/// halo wrappers rebuild a plan per call on the same channels).
///
/// Lifetime: a plan may be *destroyed* after its context (channels and
/// registry are shared-owned), but it must only be *executed* while the
/// context and the communicator it was built from are alive — and objects
/// that bind plans lazily (reshape planners) must not be carried from one
/// context into another: they detect communicator change by address,
/// which a fresh context can legitimately reuse.
#pragma once

#include <chrono>
#include <cstring>
#include <functional>
#include <memory>
#include <optional>
#include <source_location>
#include <span>
#include <vector>

#include "base/error.hpp"
#include "base/timer.hpp"
#include "comm/communicator.hpp"
#include "comm/plancheck.hpp"
#include "comm/transport/transport.hpp"
#include "telemetry/telemetry.hpp"

namespace beatnik::comm {

class Plan {
public:
    /// Per-recv-slot completion callback: the received bytes, valid for
    /// the duration of the call.
    using RecvCallback = std::function<void(std::span<const std::byte>)>;

    class Builder {
    public:
        explicit Builder(Communicator& comm) : comm_(&comm) {}

        /// Register a send slot toward \p peer on \p tag (a plan-band tag,
        /// see comm/types.hpp) with capacity \p max_bytes. Returns the
        /// slot index used with send_buffer()/publish().
        int add_send(int peer, int tag, std::size_t max_bytes) {
            check_tag(tag);
            sends_.push_back({peer, tag, max_bytes, {}});
            return static_cast<int>(sends_.size()) - 1;
        }

        /// Register a recv slot from \p peer on \p tag. \p on_message, if
        /// set, fires when the message is consumed during wait()/test()/
        /// wait_any_recv(). Returns the slot index.
        int add_recv(int peer, int tag, std::size_t max_bytes, RecvCallback on_message = {}) {
            check_tag(tag);
            recvs_.push_back({peer, tag, max_bytes, std::move(on_message)});
            return static_cast<int>(recvs_.size()) - 1;
        }

        /// Finalize. The (defaulted) source location is the plan's build
        /// site in plancheck diagnostics. Registration runs *after* the
        /// plan is fully constructed, so a verification error unwinds
        /// through ~Plan and the channels detach cleanly.
        [[nodiscard]] Plan build(std::source_location site = std::source_location::current()) {
            Plan p(*comm_, std::move(sends_), std::move(recvs_));
            p.plancheck_register(site);
            return p;
        }

    private:
        friend class Plan;
        struct SlotSpec {
            int peer;
            int tag;
            std::size_t max_bytes;
            RecvCallback on_message;
        };
        static void check_tag(int tag) {
            BEATNIK_REQUIRE(tags::is_plan(tag),
                            "plan slots must use tags from the reserved plan band");
        }

        Communicator* comm_;
        std::vector<SlotSpec> sends_;
        std::vector<SlotSpec> recvs_;
    };

    static Builder builder(Communicator& comm) { return Builder(comm); }

    Plan() = default;
    Plan(Plan&& other) noexcept = default;
    Plan& operator=(Plan&& other) noexcept {
        if (this != &other) {
            detach();
            st_ = std::move(other.st_);
        }
        return *this;
    }
    Plan(const Plan&) = delete;
    Plan& operator=(const Plan&) = delete;

    ~Plan() { detach(); }

    [[nodiscard]] bool valid() const { return static_cast<bool>(st_); }
    [[nodiscard]] int num_sends() const { return static_cast<int>(state().sends.size()); }
    [[nodiscard]] int num_recvs() const { return static_cast<int>(state().recvs.size()); }

    /// Open an iteration: release every recv slot still held from the
    /// previous iteration and reset per-iteration bookkeeping. The
    /// previous iteration must have completed (all recvs consumed).
    /// Arrivals observed early (a peer already one iteration ahead) are
    /// re-enqueued so this iteration consumes them in arrival order.
    void start() {
        State& st = state();
        telemetry::Scope span("plan.start");
        BEATNIK_REQUIRE(!st.started || st.consumed == st.recvs.size(),
                        "Plan::start: previous iteration still has pending receives");
        for (std::size_t s = 0; s < st.recvs.size(); ++s) {
            if (st.recv_state[s] == RecvState::arrived) release_slot(static_cast<int>(s));
            st.recv_state[s] = RecvState::idle;
        }
        for (std::size_t s = 0; s < st.sends.size(); ++s) st.send_acquired[s] = false;
        st.consumed = 0;
        st.started = true;
        if (!st.deferred.empty()) {
            std::lock_guard lock(st.ready.mutex);
            for (auto it = st.deferred.rbegin(); it != st.deferred.rend(); ++it) {
                st.ready.push_front_locked(*it);
            }
            st.deferred.clear();
        }
    }

    /// Acquire send slot \p s for this iteration: blocks until the peer
    /// has released the previous message, then returns the transport
    /// buffer to pack into (exactly \p bytes long).
    [[nodiscard]] std::span<std::byte> send_buffer(int s, std::size_t bytes) {
        State& st = state();
        auto& slot = st.sends[check_send(s)];
        // The rendezvous can block until the receiver releases the
        // previous message — a wait-for edge for the deadlock detector.
        const plancheck::Await edge{
            plancheck::WaitKind::send, slot.peer_world, s,
            {st.comm->comm_id(), st.self_world, slot.peer_world, slot.tag}};
        plancheck::BlockedScope pblock(pcheck(st), st.self_world, {&edge, 1});
        auto buf = slot.channel->transport->acquire_send(*slot.channel, bytes, st.wait);
        st.send_acquired[static_cast<std::size_t>(s)] = true;
        return buf;
    }

    /// Hand the packed bytes of slot \p s to the receiver.
    void publish(int s) {
        State& st = state();
        auto& slot = st.sends[check_send(s)];
        if (plancheck::ContextState* cs = pcheck(st)) {
            // Also the double-publish check: fires *before* the protocol
            // state below is touched.
            cs->note_published({st.comm->comm_id(), st.self_world, slot.peer_world, slot.tag});
        }
        BEATNIK_REQUIRE(st.send_acquired[static_cast<std::size_t>(s)],
                        "Plan::publish: slot was not acquired with send_buffer()");
        st.send_acquired[static_cast<std::size_t>(s)] = false;
        auto& ch = *slot.channel;
        // Unconditional so the receiver's con_seq stays in lockstep even
        // across arm/disarm (see PlanChannel).
        std::uint64_t seq = ++ch.pub_seq;
        if (Trace* t = st.comm->context().trace()) {
            t->record(st.self_world, slot.peer_world, ch.bytes, slot.tag);
        }
        if (telemetry::enabled()) {
            auto& tr = telemetry::thread_track();
            telemetry::Scope span("plan.publish", ch.bytes,
                                  static_cast<std::uint64_t>(s));
            tr.flow_begin("plan", plan_flow_id(st.comm->comm_id(), st.self_world,
                                               slot.peer_world, slot.tag, seq));
            ch.transport->publish(ch);
        } else {
            ch.transport->publish(ch);
        }
    }

    /// Convenience: acquire, copy \p data in, publish.
    void publish_copy(int s, std::span<const std::byte> data) {
        auto buf = send_buffer(s, data.size());
        if (!data.empty()) std::memcpy(buf.data(), data.data(), data.size());
        publish(s);
    }

    /// Block until some recv slot of this iteration completes and return
    /// its index (arrival order, each slot exactly once per iteration);
    /// -1 once every slot has been returned. Fires the slot's on_message
    /// callback, if registered. The slot's bytes stay readable through
    /// recv_view() until release_recv() or the next start().
    int wait_any_recv() {
        State& st = state();
        for (;;) {
            if (st.consumed == st.recvs.size()) return -1;
            int s;
            // Span covers only the obtain-a-slot part (spin or block); the
            // consume below records its own span, so per-track timestamps
            // stay monotonic. a0 distinguishes spin (0) from block (1).
            telemetry::Scope span("plan.wait");
            bool blocked = false;
            if (st.needs_poll) {
                s = wait_any_polled(st, blocked);
            } else {
                std::unique_lock lock(st.ready.mutex);
                // Spin briefly before blocking — arrivals are usually a
                // few hundred nanoseconds out, far below a futex sleep.
                for (int spin = st.wait.spin_iters; st.ready.count == 0 && spin > 0; --spin) {
                    lock.unlock();
                    detail::cpu_relax();
                    lock.lock();
                }
                // Oversubscribed (no spin budget): hand the core to the
                // producer a few times before paying a futex sleep+wake.
                for (int y = 0; st.wait.spin_iters == 0 && st.ready.count == 0 && y < 16; ++y) {
                    lock.unlock();
                    std::this_thread::yield();
                    lock.lock();
                }
                if (st.ready.count == 0) {
                    // Register the blocked OR-wait (ring lock is held;
                    // ring -> plancheck is the documented order). A knot
                    // throws out of the constructor before we sleep.
                    plancheck::ContextState* cs = pcheck(st);
                    plancheck::BlockedScope pblock(
                        cs, st.self_world,
                        cs != nullptr ? recv_awaits(st) : std::span<const plancheck::Await>{});
                    st.ready.waiting = true;
                    blocked = true;
                    detail::transport_wait_until(lock, st.ready.cv,
                                                 [&] { return st.ready.count > 0; },
                                                 [&st] { return recv_timeout_message(st); },
                                                 st.wait);
                    st.ready.waiting = false;
                }
                s = st.ready.pop_locked();
            }
            span.close(blocked ? 1 : 0, static_cast<std::uint64_t>(s));
            // An arrival for a slot already handled this iteration belongs
            // to the *next* iteration (the peer raced ahead); stash it for
            // the next start().
            if (st.recv_state[static_cast<std::size_t>(s)] != RecvState::idle) {
                st.deferred.push_back(s);
                continue;
            }
            consume(s);
            return s;
        }
    }

    /// Nonblocking progress: consume every recv that has already arrived
    /// (firing callbacks) and return true once the whole iteration's
    /// receives have completed.
    bool test() {
        State& st = state();
        if (st.needs_poll) poll_recvs(st);
        for (;;) {
            int s;
            {
                std::lock_guard lock(st.ready.mutex);
                if (st.ready.count == 0) break;
                s = st.ready.pop_locked();
            }
            if (st.recv_state[static_cast<std::size_t>(s)] != RecvState::idle) {
                st.deferred.push_back(s);
                continue;
            }
            consume(s);
        }
        return st.consumed == st.recvs.size();
    }

    /// Drain every remaining receive of the iteration.
    void wait() {
        while (wait_any_recv() != -1) {}
    }

    /// Received bytes of a completed slot; valid until release_recv(\p s)
    /// or the next start().
    [[nodiscard]] std::span<const std::byte> recv_view(int s) const {
        const State& st = state();
        BEATNIK_REQUIRE(s >= 0 && s < static_cast<int>(st.recvs.size()),
                        "Plan: recv slot index out of range");
        BEATNIK_REQUIRE(st.recv_state[static_cast<std::size_t>(s)] == RecvState::arrived,
                        "Plan::recv_view: slot has not completed (or was released)");
        const auto& ch = *st.recvs[static_cast<std::size_t>(s)].channel;
        return ch.transport->recv_view(ch);
    }

    /// Typed view of a completed recv slot.
    template <class T>
    [[nodiscard]] std::span<const T> recv_view_as(int s) const {
        static_assert(std::is_trivially_copyable_v<T>);
        static_assert(alignof(T) <= __STDCPP_DEFAULT_NEW_ALIGNMENT__,
                      "channel buffers only guarantee default new alignment");
        auto bytes = recv_view(s);
        BEATNIK_REQUIRE(bytes.size() % sizeof(T) == 0,
                        "Plan::recv_view_as: size is not a multiple of element size");
        return {reinterpret_cast<const T*>(bytes.data()), bytes.size() / sizeof(T)};
    }

    /// Release a consumed recv slot early so the sender can refill it
    /// without waiting for our next start() — call as soon as the data
    /// has been unpacked to maximize pipelining.
    void release_recv(int s) {
        State& st = state();
        BEATNIK_REQUIRE(s >= 0 && s < static_cast<int>(st.recvs.size()),
                        "Plan: recv slot index out of range");
        BEATNIK_REQUIRE(st.recv_state[static_cast<std::size_t>(s)] == RecvState::arrived,
                        "Plan::release_recv: slot has not completed");
        release_slot(s);
    }

    /// Buffer-registration hook for device backends: pre-size every
    /// slot's transport buffer to its registered max_bytes and hand each
    /// resulting stable span to \p on_buffer.
    ///
    /// After this call, send_buffer()/publish() iterations that stay
    /// within max_bytes never move the buffer, so the caller may pin the
    /// ranges with an accelerator runtime and pack into them from device
    /// kernels (the paper's pack-on-device-into-pinned-staging pattern).
    /// Must be called between iterations (the usual place is right after
    /// build); slots registered with max_bytes == 0 (size discovered at
    /// run time, e.g. migration) are skipped — those buffers can still
    /// move and need per-iteration registration instead.
    void pin_buffers(const std::function<void(std::span<std::byte>)>& on_buffer) {
        State& st = state();
        auto pin = [&](Slot& slot) {
            if (slot.max_bytes == 0) return;
            auto& ch = *slot.channel;
            on_buffer(ch.transport->pin(ch, slot.max_bytes));
        };
        for (auto& slot : st.sends) pin(slot);
        for (auto& slot : st.recvs) pin(slot);
    }

    /// The plan's send schedule in world-rank coordinates (slot capacity
    /// as bytes) — ready to feed into the netsim machine model.
    [[nodiscard]] std::vector<PlanMsg> send_schedule() const {
        const State& st = state();
        std::vector<PlanMsg> msgs;
        msgs.reserve(st.sends.size());
        for (const auto& s : st.sends) {
            msgs.push_back({st.self_world, s.peer_world, s.max_bytes});
        }
        return msgs;
    }

private:
    /// Try-lock spin iterations before falling back to a cv sleep.
    static constexpr int kSpinIters = 2048;

    enum class RecvState : std::uint8_t {
        idle,       ///< not yet arrived this iteration
        arrived,    ///< consumed from the ready ring, bytes readable
        released,   ///< handed back to the sender
    };

    struct Slot {
        std::shared_ptr<detail::PlanChannel> channel;
        int peer_world = 0;
        int tag = 0;
        std::size_t max_bytes = 0;
        RecvCallback on_message;
    };

    /// All mutable state lives behind a unique_ptr so the ready ring's
    /// address (registered in the channels) survives Plan moves.
    struct State {
        Communicator* comm = nullptr;
        int self_world = 0;
        std::vector<Slot> sends;
        std::vector<Slot> recvs;
        std::vector<bool> send_acquired;
        std::vector<RecvState> recv_state;
        std::size_t consumed = 0;   ///< recv slots consumed this iteration
        bool started = false;
        detail::ReadyRing ready;
        /// Early arrivals (peer one iteration ahead), re-enqueued at the
        /// next start(). reserve()d to nrecvs at build — at most one early
        /// arrival per slot can exist, so pushes never allocate.
        std::vector<int> deferred;
        TransportWait wait;              ///< abort/timeout/spin policy for blocking ops
        std::shared_ptr<ChannelRegistry> registry;   ///< keeps detach safe past context death
        bool has_seq_channels = false;   ///< any slot on a sequence-band tag
        /// Any recv slot rides a transport that cannot push into our
        /// ready ring (shm: the publisher may be another process;
        /// loopback: delivery happens at a modeled deadline) — the wait
        /// loops must interleave poll() calls.
        bool needs_poll = false;
        /// Plan verifier state (shared so unregistration stays safe past
        /// context death, mirroring `registry`). pcheck_id != 0 iff this
        /// plan registered a schedule declaration; the scratch vector is
        /// reserved at registration so armed waits never allocate.
        std::shared_ptr<plancheck::ContextState> pcheck;
        std::uint64_t pcheck_id = 0;
        std::vector<plancheck::Await> pcheck_scratch;

        State(std::size_t nrecvs) : ready(nrecvs == 0 ? 1 : nrecvs) {
            deferred.reserve(nrecvs);
        }
    };

    Plan(Communicator& comm, std::vector<Builder::SlotSpec> sends,
         std::vector<Builder::SlotSpec> recvs)
        : st_(std::make_unique<State>(recvs.size())) {
        State& st = *st_;
        st.comm = &comm;
        st.self_world = comm.world_rank();
        st.wait.timeout_seconds = comm.context().config().recv_timeout_seconds;
        st.wait.abort = &comm.context().abort_flag();
        // Spin-then-block only pays when every rank-thread can run at
        // once; oversubscribed, a spinner just burns the timeslice the
        // peer needs to produce the message.
        if (std::thread::hardware_concurrency() >=
            static_cast<unsigned>(comm.context().size())) {
            st.wait.spin_iters = kSpinIters;
        }
        st.registry = comm.context().plan_channels_ptr();
        st.pcheck = comm.context().plancheck_ptr();
        TransportRegistry& transports = comm.context().transports();
        ChannelRegistry& reg = *st.registry;
        st.sends.reserve(sends.size());
        auto note_band = [&st](int tag) {
            if (tag >= tags::plan_seq_base && tag < tags::plan_limit) {
                st.has_seq_channels = true;
            }
        };
        // Resolve the slot's channel, binding the pair's selected
        // transport on first creation. Both endpoints select with the
        // channel's ordered (src, dst) pair, so they agree on the
        // transport no matter which one creates the channel.
        auto resolve = [&](const ChannelKey& key, std::size_t max_bytes) {
            auto transport = transports.select(key.src_world, key.dst_world);
            return reg.get_or_create(key, [&](detail::PlanChannel& ch) {
                ch.transport = transport;
                transport->bind(ch, key, max_bytes);
            });
        };
        for (const auto& spec : sends) {
            Slot slot;
            slot.peer_world = comm.world_rank_of(spec.peer);
            slot.tag = spec.tag;
            slot.max_bytes = spec.max_bytes;
            slot.channel = resolve({comm.comm_id(), st.self_world, slot.peer_world, spec.tag},
                                   spec.max_bytes);
            note_band(spec.tag);
            st.sends.push_back(std::move(slot));
        }
        st.send_acquired.assign(st.sends.size(), false);
        st.recvs.reserve(recvs.size());
        st.recv_state.assign(recvs.size(), RecvState::idle);
        for (std::size_t s = 0; s < recvs.size(); ++s) {
            auto& spec = recvs[s];
            Slot slot;
            slot.peer_world = comm.world_rank_of(spec.peer);
            slot.tag = spec.tag;
            slot.max_bytes = spec.max_bytes;
            slot.on_message = std::move(spec.on_message);
            slot.channel = resolve({comm.comm_id(), slot.peer_world, st.self_world, spec.tag},
                                   spec.max_bytes);
            note_band(spec.tag);
            if (!slot.channel->transport->push_notifies()) st.needs_poll = true;
            // Attach the completion hook. A message published before we
            // attached (a peer racing ahead) is picked up here (inline
            // for push transports, via poll below for polled ones), so
            // nothing is ever lost to the build/attach race.
            {
                auto& ch = *slot.channel;
                std::lock_guard lock(ch.mutex);
                BEATNIK_REQUIRE(ch.ready == nullptr,
                                "plan recv tag already attached by another live plan");
                ch.ready = &st.ready;
                ch.recv_slot = static_cast<int>(s);
                if (ch.transport->push_notifies() && ch.full) {
                    std::lock_guard ring_lock(st.ready.mutex);
                    st.ready.push_locked(static_cast<int>(s));
                }
            }
            if (!slot.channel->transport->push_notifies()) {
                slot.channel->transport->poll(*slot.channel);
            }
            st.recvs.push_back(std::move(slot));
        }
    }

    /// Release every slot this plan still holds and detach the ready ring
    /// so a successor plan can attach to the same channels. The push in
    /// publish() happens under the channel mutex, so after this loop no
    /// sender can touch the ring. Early arrivals (deferred) are left FULL
    /// in their channels — a successor plan picks them up at attach.
    void detach() noexcept {
        if (!st_) return;
        // If the schedule was registered, withdraw it (and count the
        // releases below) regardless of the current arming bit, so a
        // disarm between build and teardown can't strand live records.
        plancheck::ContextState* cs =
            st_->pcheck_id != 0 ? st_->pcheck.get() : nullptr;
        for (std::size_t s = 0; s < st_->recvs.size(); ++s) {
            const auto& slot = st_->recvs[s];
            auto& ch = *slot.channel;
            {
                std::lock_guard lock(ch.mutex);
                ch.ready = nullptr;
                ch.recv_slot = -1;
            }
            if (st_->recv_state[s] == RecvState::arrived) {
                if (cs != nullptr) {
                    cs->note_released(
                        {st_->comm->comm_id(), slot.peer_world, st_->self_world, slot.tag});
                }
                ch.transport->release(ch);
            }
            // Drop receiver-local observation state so a successor plan's
            // attach/poll re-discovers a still-FULL (deferred) message.
            ch.transport->on_detach(ch);
        }
        if (cs != nullptr) cs->unregister_plan(st_->pcheck_id);
        std::shared_ptr<ChannelRegistry> registry = st_->registry;
        const bool had_seq_channels = st_->has_seq_channels;
        st_.reset();   // drop our channel references first
        // Reclaim channels nobody can ever reach again: sequence tags are
        // allocated monotonically, so once no plan references such a
        // channel it is dead. Halo-band channels persist for wrapper
        // reattachment — a plan that held only those (the per-call
        // deprecated wrappers) skips the registry scan entirely.
        if (registry != nullptr && had_seq_channels) {
            registry->prune_unreferenced([](const ChannelKey& k) {
                return k.tag >= tags::plan_seq_base && k.tag < tags::plan_limit;
            });
        }
    }

    State& state() {
        BEATNIK_REQUIRE(static_cast<bool>(st_), "operation on an empty Plan");
        return *st_;
    }
    const State& state() const {
        BEATNIK_REQUIRE(static_cast<bool>(st_), "operation on an empty Plan");
        return *st_;
    }

    std::size_t check_send(int s) const {
        BEATNIK_REQUIRE(s >= 0 && s < static_cast<int>(st_->sends.size()),
                        "Plan: send slot index out of range");
        return static_cast<std::size_t>(s);
    }

    /// The plan verifier, when (and only when) its counters are trusted:
    /// armed now *and* the context was created armed. One relaxed atomic
    /// load when disabled.
    [[nodiscard]] static plancheck::ContextState* pcheck(const State& st) {
        if (!plancheck::enabled()) return nullptr;
        plancheck::ContextState* cs = st.pcheck.get();
        return (cs != nullptr && cs->active()) ? cs : nullptr;
    }

    /// Register this plan's declared schedule with the context verifier
    /// (no-op unless armed). Runs the immediate static checks and — once
    /// the build group completes — the global slot-matching pass, either
    /// of which throws CommError. Called by Builder::build() on the fully
    /// constructed plan so a throw unwinds through ~Plan.
    void plancheck_register(const std::source_location& site) {
        State& st = *st_;
        plancheck::ContextState* cs = pcheck(st);
        if (cs == nullptr) return;
        st.pcheck_scratch.reserve(st.recvs.size() == 0 ? 1 : st.recvs.size());
        plancheck::PlanDecl decl;
        decl.comm_id = st.comm->comm_id();
        decl.comm_size = st.comm->size();
        decl.comm_rank = st.comm->rank();
        decl.self_world = st.self_world;
        decl.seq_tags_used = st.comm->plan_tags_used();
        decl.site = std::string(site.file_name()) + ":" + std::to_string(site.line());
        auto snapshot = [](const Slot& slot) {
            return plancheck::SlotDecl{slot.peer_world, slot.tag, slot.max_bytes,
                                       slot.channel->transport->bound_capacity(*slot.channel),
                                       slot.channel->transport->name()};
        };
        decl.sends.reserve(st.sends.size());
        for (const auto& slot : st.sends) decl.sends.push_back(snapshot(slot));
        decl.recvs.reserve(st.recvs.size());
        for (const auto& slot : st.recvs) decl.recvs.push_back(snapshot(slot));
        cs->register_plan(std::move(decl), st.pcheck_id);
    }

    /// The wait-for edges of a blocked recv wait: one per still-idle recv
    /// slot (an OR-wait — any arrival unblocks). Fills the preallocated
    /// scratch; only called when the verifier is armed.
    [[nodiscard]] static std::span<const plancheck::Await> recv_awaits(State& st) {
        st.pcheck_scratch.clear();
        for (std::size_t s = 0; s < st.recvs.size(); ++s) {
            if (st.recv_state[s] != RecvState::idle) continue;
            const Slot& slot = st.recvs[s];
            st.pcheck_scratch.push_back(
                {plancheck::WaitKind::recv, slot.peer_world, static_cast<int>(s),
                 {st.comm->comm_id(), slot.peer_world, st.self_world, slot.tag}});
        }
        return st.pcheck_scratch;
    }

    /// Slot-level timeout diagnostics shared by the push and polled wait
    /// paths: name the communicator, this rank, and every recv slot still
    /// outstanding (peer, tag, capacity). Composed only on the timeout
    /// path.
    [[nodiscard]] static std::string recv_timeout_message(const State& st) {
        std::string msg = "Plan::wait_any_recv on comm " +
                          std::to_string(st.comm->comm_id()) + ", world rank " +
                          std::to_string(st.self_world) + ": message never arrived;";
        for (std::size_t s = 0; s < st.recvs.size(); ++s) {
            if (st.recv_state[s] != RecvState::idle) continue;
            const Slot& slot = st.recvs[s];
            msg += "\n  still waiting: recv slot " + std::to_string(s) + " <- world rank " +
                   std::to_string(slot.peer_world) + " (tag " + std::to_string(slot.tag) +
                   ", up to " + std::to_string(slot.max_bytes) + " bytes)";
        }
        return msg;
    }

    /// Mark slot \p s consumed and fire its callback.
    void consume(int s) {
        State& st = state();
        BEATNIK_ASSERT(st.recv_state[static_cast<std::size_t>(s)] == RecvState::idle);
        st.recv_state[static_cast<std::size_t>(s)] = RecvState::arrived;
        ++st.consumed;
        const auto& slot = st.recvs[static_cast<std::size_t>(s)];
        auto& ch = *slot.channel;
        std::uint64_t seq = ++ch.con_seq;   // lockstep with the peer's pub_seq
        telemetry::Scope span("plan.recv", ch.bytes, static_cast<std::uint64_t>(s));
        if (telemetry::enabled()) {
            telemetry::thread_track().flow_end(
                "plan", plan_flow_id(st.comm->comm_id(), slot.peer_world,
                                     st.self_world, slot.tag, seq));
        }
        ch.transport->on_consume(ch);   // devcheck recv edge
        if (plancheck::ContextState* cs = pcheck(st)) {
            cs->note_consumed({st.comm->comm_id(), slot.peer_world, st.self_world, slot.tag});
        }
        if (slot.on_message) slot.on_message(recv_view(s));
    }

    /// Deterministic publish->recv flow id: both endpoints hash the same
    /// (comm, src, dst, tag, k) tuple for the k-th message on a channel.
    static std::uint64_t plan_flow_id(int comm_id, int src_world, int dst_world,
                                      int tag, std::uint64_t seq) {
        return telemetry::flow_id({static_cast<std::uint64_t>(comm_id),
                                   static_cast<std::uint64_t>(src_world),
                                   static_cast<std::uint64_t>(dst_world),
                                   static_cast<std::uint64_t>(tag), seq});
    }

    void release_slot(int s) {
        State& st = *st_;
        const auto& slot = st.recvs[static_cast<std::size_t>(s)];
        auto& ch = *slot.channel;
        if (plancheck::ContextState* cs = pcheck(st)) {
            // Before the transport release: a sender blocked in
            // acquire_send must never observe EMPTY while the verifier
            // still counts the message unreleased.
            cs->note_released({st.comm->comm_id(), slot.peer_world, st.self_world, slot.tag});
        }
        ch.transport->release(ch);
        st.recv_state[static_cast<std::size_t>(s)] = RecvState::released;
    }

    /// Drive every polled recv slot once (outside any ring lock —
    /// poll() takes channel then ring, per the channel.hpp ordering).
    void poll_recvs(State& st) {
        for (auto& slot : st.recvs) {
            auto& ch = *slot.channel;
            if (!ch.transport->push_notifies()) ch.transport->poll(ch);
        }
    }

    /// Pop one ready slot when some recv transport must be polled:
    /// interleave slot polls with spins, then short sleeps, checking
    /// abort/timeout each round (polled transports have no producer-side
    /// condvar to notify us through).
    int wait_any_polled(State& st, bool& blocked) {
        auto deadline = deadline_after(st.wait.timeout_seconds);
        int spin = st.wait.spin_iters;
        // Registered lazily, at the first real sleep: the spin phase is
        // the common case and a poll can still complete the wait.
        std::optional<plancheck::BlockedScope> pblock;
        for (;;) {
            poll_recvs(st);
            {
                std::lock_guard lock(st.ready.mutex);
                if (st.ready.count > 0) return st.ready.pop_locked();
            }
            if (st.wait.abort != nullptr && st.wait.abort->load(std::memory_order_acquire)) {
                throw CommError("plan operation aborted: another rank failed");
            }
            if (spin > 0) {
                --spin;
                detail::cpu_relax();
            } else {
                if (st.wait.timeout_seconds > 0.0 && mono_now() >= deadline) {
                    detail::throw_plan_timeout(recv_timeout_message(st));
                }
                if (!pblock.has_value()) {
                    plancheck::ContextState* cs = pcheck(st);
                    pblock.emplace(cs, st.self_world,
                                   cs != nullptr ? recv_awaits(st)
                                                 : std::span<const plancheck::Await>{});
                }
                blocked = true;
                std::this_thread::sleep_for(std::chrono::microseconds(50));
            }
        }
    }

    std::unique_ptr<State> st_;
};

} // namespace beatnik::comm
