/// \file context.hpp
/// \brief The rank runtime: runs N logical ranks as threads of one process.
///
/// This is the repo's stand-in for an MPI runtime (see DESIGN.md §1). A
/// Context owns one Mailbox per rank plus shared bookkeeping (communicator
/// id allocation, abort flag, optional message trace). Context::run() is
/// the `mpirun` equivalent: it spawns one thread per rank, hands each a
/// world Communicator, and joins, propagating the first rank failure.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <vector>

#include "base/error.hpp"
#include "comm/channel.hpp"
#include "comm/mailbox.hpp"
#include "comm/trace.hpp"
#include "comm/transport/registry.hpp"
#include "comm/types.hpp"

namespace beatnik::comm {

class Communicator;
namespace plancheck {
class ContextState;   // comm/plancheck.hpp
}

/// Runtime knobs for a rank run.
struct ContextConfig {
    /// Receives that block longer than this throw CommError, turning
    /// deadlocks into diagnosable test failures. <= 0 disables the timeout.
    double recv_timeout_seconds = 120.0;
    /// When true, every point-to-point transfer is recorded in trace().
    bool enable_trace = false;
    /// Default algorithm for alltoall/alltoallv exchanges.
    AlltoallAlgo alltoall_algo = AlltoallAlgo::pairwise;
    /// Message size (bytes) at or above which alltoall switches from eager
    /// buffered sends (payload copied once at post time) to the zero-copy
    /// rendezvous path: receivers read the sender's buffer in place and a
    /// closing barrier holds every rank until all reads have finished.
    std::size_t rendezvous_threshold_bytes = 32 * 1024;
    /// Default transport for plan channels ("inproc", "shm", "loopback").
    /// Empty falls back to $BEATNIK_TRANSPORT, then "inproc". Per-pair
    /// overrides go through Context::transports().set_pair.
    std::string transport;
    /// Cost model of the loopback transport (when selected).
    LoopbackConfig loopback;
    /// Session string scoping shm segment names. Cooperating processes
    /// must pass the same value; empty falls back to $BEATNIK_SHM_SESSION,
    /// then a per-context unique default.
    std::string shm_session;
    /// When true, Context::run arms the process-wide telemetry layer
    /// (src/telemetry/) before spawning rank-threads — equivalent to
    /// launching with BEATNIK_TRACE=1, but scoped to code: benches use it
    /// for --trace. Arming is one-way here (the recording is flushed at
    /// process exit or by telemetry::flush()).
    bool telemetry = false;
};

/// Shared state for one group of rank-threads.
class Context {
public:
    Context(int size, ContextConfig config = {});
    ~Context();

    Context(const Context&) = delete;
    Context& operator=(const Context&) = delete;

    [[nodiscard]] int size() const { return size_; }
    [[nodiscard]] const ContextConfig& config() const { return config_; }

    [[nodiscard]] Mailbox& mailbox(int world_rank) {
        BEATNIK_ASSERT(world_rank >= 0 && world_rank < size_);
        return *mailboxes_[static_cast<std::size_t>(world_rank)];
    }

    /// Allocate a fresh communicator id (used by split/dup). Thread-safe.
    [[nodiscard]] int new_comm_id() { return next_comm_id_.fetch_add(1); }

    /// Registry of persistent plan channels (see comm/plan.hpp). Both
    /// endpoints of a planned transfer resolve the same channel here. The
    /// registry is held by shared_ptr so a Plan that is destroyed after
    /// its context can still detach safely.
    [[nodiscard]] ChannelRegistry& plan_channels() { return *plan_channels_; }
    [[nodiscard]] std::shared_ptr<ChannelRegistry> plan_channels_ptr() { return plan_channels_; }

    /// Per-context transport selection for plan channels (see
    /// comm/transport/registry.hpp). Plans resolve each slot's transport
    /// here at build time; tests and benches install per-pair rules
    /// before building mixed-transport plans.
    [[nodiscard]] TransportRegistry& transports() { return *transports_; }
    [[nodiscard]] std::shared_ptr<TransportRegistry> transports_ptr() { return transports_; }

    /// The context-wide abort flag, observed by blocking plan waits so a
    /// failing rank wakes every other rank instead of deadlocking it.
    [[nodiscard]] const std::atomic<bool>& abort_flag() const { return abort_; }

    /// Plan-schedule verifier state (see comm/plancheck.hpp). Always
    /// constructed; it records whether plancheck was armed at context
    /// creation and is inert otherwise. shared_ptr for the same reason as
    /// plan_channels_ptr(): plans may outlive the context.
    [[nodiscard]] plancheck::ContextState& plancheck_state() { return *plancheck_; }
    [[nodiscard]] std::shared_ptr<plancheck::ContextState> plancheck_ptr() { return plancheck_; }

    /// Message trace, or nullptr when tracing is disabled.
    [[nodiscard]] Trace* trace() { return config_.enable_trace ? &trace_ : nullptr; }

    /// Signal all ranks to unwind (called when one rank throws).
    void abort();
    [[nodiscard]] bool aborted() const { return abort_.load(std::memory_order_acquire); }

    /// Run \p fn on \p nranks rank-threads. Each invocation gets a world
    /// communicator of the given size. Rethrows the first rank exception
    /// after all threads have been joined.
    static void run(int nranks, const std::function<void(Communicator&)>& fn,
                    ContextConfig config = {});

private:
    int size_;
    ContextConfig config_;
    std::atomic<bool> abort_{false};
    std::atomic<int> next_comm_id_{1};   // id 0 is the world communicator
    std::vector<std::unique_ptr<Mailbox>> mailboxes_;
    std::shared_ptr<ChannelRegistry> plan_channels_ = std::make_shared<ChannelRegistry>();
    std::shared_ptr<TransportRegistry> transports_;
    std::shared_ptr<plancheck::ContextState> plancheck_;
    Trace trace_;
};

} // namespace beatnik::comm
