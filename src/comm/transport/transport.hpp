/// \file transport.hpp
/// \brief The transport seam under the plan layer: how one PlanChannel's
/// single message slot physically moves from sender to receiver.
///
/// comm::Plan is the pattern registry (which peer, which tag, how many
/// bytes); a Transport is the mechanism executing one slot of it:
///
///   acquire_send -> pack in place -> publish          (sender)
///   poll/notify  -> recv_view     -> release          (receiver)
///
/// Three implementations exist (see inproc.hpp, shm.hpp, loopback.hpp):
///
///   inproc    the original single-slot rendezvous channel between
///             rank-threads of one process (mutex + condvar) — the
///             default, bitwise the pre-seam behavior;
///   shm       the same publish/release protocol over a named
///             shared-memory segment with futex-backed sequence counters,
///             so a plan schedule runs between OS processes;
///   loopback  in-process delivery with injectable per-message latency/
///             bandwidth/jitter for deterministic testing and netsim
///             cross-validation.
///
/// Transports differ in how completion reaches the receiving plan:
/// push-notifying transports (inproc) enqueue into the plan's ready ring
/// from publish(); polled transports (shm — the publisher may live in
/// another process — and loopback — delivery happens at a deadline, not
/// at publish) are driven by poll(), which the plan interleaves with its
/// waits. push_notifies() tells the plan which discipline a slot needs.
///
/// Every transport fires the devcheck channel-shadow hooks (send_acquire/
/// publish/recv_acquire/release, keyed by the PlanChannel address) so the
/// happens-before checker models the seam identically for all transports.
/// Hooks fire *before* the protocol mutation they describe: a seeded
/// double-publish must throw before it corrupts the live protocol state.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <limits>
#include <mutex>
#include <span>
#include <string>
#include <type_traits>

#include "base/error.hpp"
#include "base/timer.hpp"
#include "comm/channel.hpp"
#include "par/device/devcheck.hpp"
#include "telemetry/telemetry.hpp"

namespace beatnik::comm {

/// Abort/timeout/spin parameters every blocking transport wait must
/// observe (the plan's context-wide unwind discipline, see Plan).
struct TransportWait {
    /// Context abort flag; a blocked wait throws CommError when set.
    const std::atomic<bool>* abort = nullptr;
    /// Waits longer than this throw CommError (<= 0 disables).
    double timeout_seconds = 0.0;
    /// Busy spins before paying a sleeping wait (0 when oversubscribed).
    int spin_iters = 0;
};

/// Injected per-message cost model of the loopback transport. A published
/// message becomes visible to the receiver only after
///   latency + bytes / bandwidth + jitter
/// where jitter is uniform in [0, jitter_seconds) from a deterministic
/// per-channel LCG — identical streams for identical (key, seed).
struct LoopbackConfig {
    double latency_seconds = 20.0e-6;
    double bandwidth_bytes_per_second = 2.0e9;
    double jitter_seconds = 0.0;
    std::uint64_t seed = 0x9e3779b97f4a7c15ull;
};

namespace detail {

/// The shared "probable deadlock" framing for every plan-path timeout, so
/// the wait sites compose the slot-level detail and nothing else.
[[noreturn]] inline void throw_plan_timeout(const std::string& detail) {
    throw CommError("plan operation timed out (probable deadlock): " + detail);
}

/// Condition wait with abort observation and timeout: blocked transport
/// operations wake in short slices to check the context-wide abort flag,
/// so one failing rank unwinds everyone instead of deadlocking them.
/// \p what is either a string (cheap, fixed) or an invocable returning
/// one — composed only on the timeout path, so rich per-slot diagnostics
/// cost nothing on the happy path.
template <class Pred, class What>
void transport_wait_until(std::unique_lock<std::mutex>& lock, std::condition_variable& cv,
                          Pred pred, const What& what, const TransportWait& w) {
    if (pred()) return;
    telemetry::Scope span("transport.block");
    auto deadline = deadline_after(w.timeout_seconds);
    while (!pred()) {
        if (w.abort != nullptr && w.abort->load(std::memory_order_acquire)) {
            throw CommError("plan operation aborted: another rank failed");
        }
        if (w.timeout_seconds > 0.0 && mono_now() >= deadline) {
            if constexpr (std::is_invocable_v<const What&>) {
                throw_plan_timeout(what());
            } else {
                throw_plan_timeout(std::string(what));
            }
        }
        cv.wait_for(lock, std::chrono::milliseconds(50));
    }
}

} // namespace detail

/// One slot-movement mechanism. Stateless across channels except for
/// whatever a channel's `tslot` (bound per channel) carries; all methods
/// are called with the conventions documented per method. A transport
/// instance is shared by every channel selecting it and must outlive
/// them (PlanChannel holds a shared_ptr).
class Transport {
public:
    virtual ~Transport() = default;

    [[nodiscard]] virtual const char* name() const noexcept = 0;

    /// True when publish() itself enqueues the arrival into the receiving
    /// plan's ready ring; false when the receiver must drive poll().
    [[nodiscard]] virtual bool push_notifies() const noexcept = 0;

    /// One-time per-channel setup (storage, segment mapping, per-channel
    /// transport state). Called exactly once, under the registry lock, by
    /// whichever endpoint creates the channel.
    virtual void bind(detail::PlanChannel& ch, const ChannelKey& key, std::size_t max_bytes) = 0;

    /// Block until the slot is EMPTY, then return the buffer to pack into
    /// (exactly \p bytes long). The caller is the slot's only writer
    /// until publish().
    [[nodiscard]] virtual std::span<std::byte> acquire_send(detail::PlanChannel& ch,
                                                            std::size_t bytes,
                                                            const TransportWait& w) = 0;

    /// Hand the packed bytes to the receiver (EMPTY -> FULL).
    virtual void publish(detail::PlanChannel& ch) = 0;

    /// Polled transports: check for a newly visible message and, on first
    /// observation, enqueue it into the channel's attached ready ring.
    /// Idempotent; called from the receiving plan's wait loops and at
    /// attach. Push-notifying transports never see this call.
    virtual void poll(detail::PlanChannel& ch) = 0;

    /// Received bytes of the FULL slot (receiver side, between the ready-
    /// ring completion and release()).
    [[nodiscard]] virtual std::span<const std::byte> recv_view(
        const detail::PlanChannel& ch) const = 0;

    /// Return the slot to the sender (FULL -> EMPTY).
    virtual void release(detail::PlanChannel& ch) = 0;

    /// The receiving plan consumed the slot from its ready ring; default
    /// fires the devcheck recv edge. Transports with extra receiver-side
    /// bookkeeping may extend.
    virtual void on_consume(detail::PlanChannel& ch) {
        par::device::devcheck::channel_recv_acquire(&ch, name());
    }

    /// The receiving plan detaches from the channel: drop receiver-local
    /// observation state so a successor plan re-discovers a still-FULL
    /// message through its own attach/poll.
    virtual void on_detach(detail::PlanChannel& ch) { (void)ch; }

    /// The hard capacity the channel's storage was bound at, for the plan
    /// verifier's capacity check. Elastic transports (in-process buffers
    /// that regrow per message) report "unbounded"; fixed-segment
    /// transports (shm) report the bind-time size.
    [[nodiscard]] virtual std::size_t bound_capacity(const detail::PlanChannel& ch) const {
        (void)ch;
        return std::numeric_limits<std::size_t>::max();
    }

    /// Pre-size the slot's buffer to \p max_bytes and return the stable
    /// span (device pinning hook — see Plan::pin_buffers). Must be called
    /// between iterations.
    [[nodiscard]] virtual std::span<std::byte> pin(detail::PlanChannel& ch,
                                                   std::size_t max_bytes) = 0;

    /// Context-wide abort: wake every wait this transport may be blocking
    /// (including, for cross-process transports, peers in other
    /// processes).
    virtual void abort_all() {}
};

} // namespace beatnik::comm
