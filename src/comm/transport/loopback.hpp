/// \file loopback.hpp
/// \brief In-process transport with an injected per-message cost model.
///
/// Storage and backpressure are the in-process channel's (loopback
/// inherits InProcTransport's acquire/release), but a published message
/// becomes *visible* to the receiver only once its modeled delivery time
///
///     latency + bytes / bandwidth + jitter      (see LoopbackConfig)
///
/// has elapsed — so the receiving plan polls instead of sleeping on its
/// ready ring, and measured plan executions can be cross-validated
/// against a netsim machine model built from the very same parameters
/// (bench_model_validation --loopback-gate). Jitter is drawn from a
/// deterministic per-channel LCG: identical (key, seed) means identical
/// delivery schedules, run after run.
#pragma once

#include "comm/transport/inproc.hpp"

namespace beatnik::comm {

namespace detail {

struct LoopbackSlot final : TransportSlot {
    MonoClock::time_point deliver_at{};
    std::uint64_t rng = 0;      ///< per-channel jitter stream
    bool observed = false;      ///< current message already enqueued to the ring
};

} // namespace detail

class LoopbackTransport final : public InProcTransport {
public:
    explicit LoopbackTransport(LoopbackConfig cfg = {}) : cfg_(cfg) {}

    [[nodiscard]] const char* name() const noexcept override { return "loopback"; }
    [[nodiscard]] bool push_notifies() const noexcept override { return false; }

    [[nodiscard]] const LoopbackConfig& config() const { return cfg_; }

    void bind(detail::PlanChannel& ch, const ChannelKey& key, std::size_t max_bytes) override {
        ch.buf.resize(max_bytes);
        auto slot = std::make_unique<detail::LoopbackSlot>();
        // Seed the jitter stream from the channel identity so delivery
        // schedules are a pure function of (key, seed), not bind order.
        std::uint64_t h = cfg_.seed;
        for (std::uint64_t v :
             {std::uint64_t(key.comm_id), std::uint64_t(key.src_world),
              std::uint64_t(key.dst_world), std::uint64_t(key.tag)}) {
            h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
        }
        slot->rng = h | 1u;
        ch.tslot = std::move(slot);
    }

    void publish(detail::PlanChannel& ch) override {
        par::device::devcheck::channel_publish(&ch, name());
        auto& s = static_cast<detail::LoopbackSlot&>(*ch.tslot);
        std::lock_guard lock(ch.mutex);
        BEATNIK_ASSERT(!ch.full, "publish on a full channel");
        ch.full = true;
        s.observed = false;
        double delay = cfg_.latency_seconds +
                       static_cast<double>(ch.bytes) / cfg_.bandwidth_bytes_per_second;
        if (cfg_.jitter_seconds > 0.0) {
            // xorshift64*: cheap, allocation-free, deterministic.
            s.rng ^= s.rng >> 12;
            s.rng ^= s.rng << 25;
            s.rng ^= s.rng >> 27;
            double u01 = static_cast<double>((s.rng * 0x2545f4914f6cdd1dull) >> 11) * 0x1.0p-53;
            delay += cfg_.jitter_seconds * u01;
        }
        s.deliver_at = deadline_after(delay);
        if (telemetry::enabled()) {
            telemetry::thread_track().instant(
                "loopback.delay", static_cast<std::uint64_t>(delay * 1e9), ch.bytes);
        }
        // No ready-ring push here: the message is in flight, not visible.
    }

    void poll(detail::PlanChannel& ch) override {
        auto& s = static_cast<detail::LoopbackSlot&>(*ch.tslot);
        std::lock_guard lock(ch.mutex);
        if (!ch.full || s.observed) return;
        if (mono_now() < s.deliver_at) return;
        s.observed = true;
        notify_ready_locked(ch);
    }

    void release(detail::PlanChannel& ch) override {
        par::device::devcheck::channel_release(&ch, name());
        auto& s = static_cast<detail::LoopbackSlot&>(*ch.tslot);
        bool wake;
        {
            std::lock_guard lock(ch.mutex);
            ch.full = false;
            s.observed = false;
            wake = ch.sender_waiting;
        }
        if (wake) ch.cv.notify_one();
    }

    void on_detach(detail::PlanChannel& ch) override {
        // A delivered-but-unconsumed message must be re-discovered by the
        // successor plan's poll.
        auto& s = static_cast<detail::LoopbackSlot&>(*ch.tslot);
        std::lock_guard lock(ch.mutex);
        s.observed = false;
    }

private:
    LoopbackConfig cfg_;
};

} // namespace beatnik::comm
