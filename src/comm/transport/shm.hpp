/// \file shm.hpp
/// \brief Cross-process transport over named shared-memory segments.
///
/// The same single-slot publish/release protocol as the in-process
/// channel, carried by a POSIX shm segment per channel so a plan
/// schedule runs between OS processes (each process hosting one or more
/// rank endpoints). The segment holds a small header of futex-backed
/// atomic words plus the message bytes:
///
///   seq   even = EMPTY, odd = FULL (a seqlock-style sequence counter;
///         publish and release each bump it by one with release order,
///         observers load it with acquire order — that pair is the only
///         happens-before edge the data bytes need)
///   bytes message size while FULL
///   abort a peer process aborted; every blocked/polling endpoint throws
///
/// The sender waits for EMPTY by spinning then FUTEX_WAITing on `seq`
/// (no FUTEX_PRIVATE_FLAG — the waiter and waker are different
/// processes); the receiver is polled like every non-push transport
/// (the publisher may not share our address space, so it cannot push
/// into our ready ring). Segment names are scoped by a session string so
/// cooperating processes find each other and concurrent test runs do
/// not: /bk-<session>-c<comm>-<src>to<dst>-t<tag>.
///
/// Capacity is fixed at bind time (max_bytes, or a default for
/// runtime-sized slots): cross-process buffers cannot grow under a
/// peer's feet, so acquire_send enforces bytes <= capacity instead of
/// resizing. Linux-only (shm_open + futex); bind throws elsewhere.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "comm/transport/transport.hpp"

#if defined(__linux__)
#include <fcntl.h>
#include <linux/futex.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace beatnik::comm {

class ShmTransport;

namespace detail {

/// Segment header shared by both endpoint processes. 64-byte data
/// alignment follows from the trailing pad.
struct ShmHeader {
    std::atomic<std::uint32_t> magic;   ///< 0 fresh -> 1 initializing -> kShmReady
    std::atomic<std::uint32_t> seq;     ///< even = EMPTY, odd = FULL
    std::atomic<std::uint32_t> bytes;   ///< message size while FULL
    std::atomic<std::uint32_t> abort;   ///< a peer process aborted
    std::uint32_t capacity;             ///< data bytes following the header
    std::uint32_t pad[11];
};
static_assert(sizeof(ShmHeader) == 64);
static_assert(std::atomic<std::uint32_t>::is_always_lock_free,
              "shm protocol words must be address-free atomics");

inline constexpr std::uint32_t kShmInitializing = 1;
inline constexpr std::uint32_t kShmReady = 0xbea70001u;

/// Per-channel shm state. Guarded by the channel mutex where noted.
struct ShmSlot final : TransportSlot {
    ShmHeader* hdr = nullptr;
    std::byte* data = nullptr;
    std::size_t capacity = 0;        ///< usable data bytes in *our* mapping
    std::size_t mapped = 0;          ///< total mapping length (for munmap)
    std::string shm_name;
    ShmTransport* owner = nullptr;
    bool observed = false;           ///< ch.mutex: current message already enqueued
    bool local_publish = false;      ///< ch.mutex: publisher lives in this process
    std::uint32_t hook_seq = 0;      ///< ch.mutex: seq whose devcheck mirror already fired

    ~ShmSlot() override;
};

#if defined(__linux__)
inline void shm_futex_wait(std::atomic<std::uint32_t>& word, std::uint32_t expected) {
    // Bounded slice: the outer loop owns abort/timeout policy. Errors
    // (EAGAIN on a changed word, EINTR, ETIMEDOUT) all mean "re-check".
    timespec ts{};
    ts.tv_nsec = 50 * 1000 * 1000;
    syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(&word), FUTEX_WAIT, expected, &ts,
            nullptr, 0);
}

inline void shm_futex_wake(std::atomic<std::uint32_t>& word) {
    syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(&word), FUTEX_WAKE, INT32_MAX, nullptr,
            nullptr, 0);
}
#endif

} // namespace detail

class ShmTransport final : public Transport {
public:
    /// Runtime-sized slots (max_bytes == 0, e.g. migration) get this
    /// fixed capacity; larger messages need an explicit max_bytes.
    static constexpr std::size_t kDefaultCapacityBytes = std::size_t{1} << 20;

    /// \p session scopes segment names: cooperating processes must pass
    /// the same string, unrelated runs must not (see TransportRegistry
    /// for the default).
    explicit ShmTransport(std::string session) : session_(std::move(session)) {}

    ~ShmTransport() override {
#if defined(__linux__)
        // Both endpoints unlink; the second one racing a fresh create of
        // the same name is impossible within a session (sessions are
        // per-run). ENOENT from the peer having unlinked first is fine.
        std::lock_guard lock(mutex_);
        for (const auto& name : created_names_) ::shm_unlink(name.c_str());
#endif
    }

    [[nodiscard]] const char* name() const noexcept override { return "shm"; }
    [[nodiscard]] bool push_notifies() const noexcept override { return false; }

    [[nodiscard]] const std::string& session() const { return session_; }

    void bind(detail::PlanChannel& ch, const ChannelKey& key, std::size_t max_bytes) override {
#if !defined(__linux__)
        (void)ch;
        (void)key;
        (void)max_bytes;
        throw CommError("shm transport requires Linux (shm_open/futex)");
#else
        auto slot = std::make_unique<detail::ShmSlot>();
        slot->shm_name = segment_name(key);
        slot->owner = this;
        const std::size_t want_capacity =
            max_bytes > 0 ? max_bytes : kDefaultCapacityBytes;

        int fd = ::shm_open(slot->shm_name.c_str(), O_RDWR | O_CREAT, 0600);
        BEATNIK_REQUIRE(fd >= 0, "shm transport: shm_open failed for " + slot->shm_name);
        struct stat st{};
        std::size_t total = sizeof(detail::ShmHeader) + want_capacity;
        if (::fstat(fd, &st) == 0 && static_cast<std::size_t>(st.st_size) > total) {
            total = static_cast<std::size_t>(st.st_size);   // adopt a larger peer sizing
        }
        if (::ftruncate(fd, static_cast<off_t>(total)) != 0) {
            ::close(fd);
            throw CommError("shm transport: ftruncate failed for " + slot->shm_name);
        }
        void* p = ::mmap(nullptr, total, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
        ::close(fd);
        BEATNIK_REQUIRE(p != MAP_FAILED, "shm transport: mmap failed for " + slot->shm_name);

        slot->hdr = static_cast<detail::ShmHeader*>(p);
        slot->data = static_cast<std::byte*>(p) + sizeof(detail::ShmHeader);
        slot->capacity = total - sizeof(detail::ShmHeader);
        slot->mapped = total;

        // First endpoint to claim the fresh (zero-filled) header
        // initializes it; the loser waits for kShmReady.
        std::uint32_t expected = 0;
        if (slot->hdr->magic.compare_exchange_strong(expected, detail::kShmInitializing,
                                                     std::memory_order_acq_rel)) {
            slot->hdr->seq.store(0, std::memory_order_relaxed);
            slot->hdr->bytes.store(0, std::memory_order_relaxed);
            slot->hdr->abort.store(0, std::memory_order_relaxed);
            slot->hdr->capacity = static_cast<std::uint32_t>(slot->capacity);
            slot->hdr->magic.store(detail::kShmReady, std::memory_order_release);
        } else {
            while (slot->hdr->magic.load(std::memory_order_acquire) != detail::kShmReady) {
                detail::cpu_relax();
            }
        }

        {
            std::lock_guard lock(mutex_);
            created_names_.push_back(slot->shm_name);
            headers_.push_back(slot->hdr);
        }
        ch.tslot = std::move(slot);
#endif
    }

    [[nodiscard]] std::span<std::byte> acquire_send(detail::PlanChannel& ch, std::size_t bytes,
                                                    const TransportWait& w) override {
#if !defined(__linux__)
        (void)ch;
        (void)bytes;
        (void)w;
        throw CommError("shm transport requires Linux");
#else
        auto& s = slot(ch);
        BEATNIK_REQUIRE(bytes <= s.capacity,
                        "shm transport: message exceeds the channel's fixed segment "
                        "capacity — register the slot with a larger max_bytes");
        auto deadline = deadline_after(w.timeout_seconds);
        std::uint32_t q = s.hdr->seq.load(std::memory_order_acquire);
        for (int spin = w.spin_iters; (q & 1u) != 0 && spin > 0; --spin) {
            detail::cpu_relax();
            q = s.hdr->seq.load(std::memory_order_acquire);
        }
        if ((q & 1u) != 0) {
            // Blocking phase (spins exhausted): span the futex waits so the
            // timeline shows backpressure from a slow peer process.
            telemetry::Scope span("shm.wait_empty");
            while ((q & 1u) != 0) {
                check_abort(s, w);
                if (w.timeout_seconds > 0.0 && mono_now() >= deadline) {
                    throw CommError("plan operation timed out (probable deadlock): "
                                    "Plan::send_buffer: peer never released the previous message");
                }
                detail::shm_futex_wait(s.hdr->seq, q);
                q = s.hdr->seq.load(std::memory_order_acquire);
            }
        }
        par::device::devcheck::channel_send_acquire(&ch);
        {
            std::lock_guard lock(ch.mutex);
            ch.full = false;
            ch.bytes = bytes;
        }
        return {s.data, bytes};
#endif
    }

    void publish(detail::PlanChannel& ch) override {
        par::device::devcheck::channel_publish(&ch, name());
#if defined(__linux__)
        auto& s = slot(ch);
        std::size_t bytes;
        {
            std::lock_guard lock(ch.mutex);
            ch.full = true;
            s.local_publish = true;
            bytes = ch.bytes;
        }
        s.hdr->bytes.store(static_cast<std::uint32_t>(bytes), std::memory_order_relaxed);
        // The release bump is the publication edge: the packed data and
        // the bytes word above become visible to any acquire load of seq.
        s.hdr->seq.fetch_add(1, std::memory_order_release);
        detail::shm_futex_wake(s.hdr->seq);
#endif
    }

    void poll(detail::PlanChannel& ch) override {
#if defined(__linux__)
        auto& s = slot(ch);
        if (s.hdr->abort.load(std::memory_order_relaxed) != 0) {
            throw CommError("shm transport: a peer process aborted");
        }
        const std::uint32_t q = s.hdr->seq.load(std::memory_order_acquire);
        if ((q & 1u) == 0) return;   // EMPTY
        std::lock_guard lock(ch.mutex);
        if (s.observed) return;
        s.observed = true;
        ch.full = true;
        ch.bytes = s.hdr->bytes.load(std::memory_order_relaxed);
        if (!s.local_publish && s.hook_seq != q) {
            // Remote publisher: mirror its acquire/publish transitions
            // into this process's channel shadow so the checker sees the
            // full cycle (once per message — hook_seq makes a re-poll
            // after detach idempotent).
            s.hook_seq = q;
            par::device::devcheck::channel_send_acquire(&ch);
            par::device::devcheck::channel_publish(&ch, "shm (remote publish)");
        }
        if (ch.ready != nullptr) {
            std::lock_guard ring_lock(ch.ready->mutex);
            ch.ready->push_locked(ch.recv_slot);
            if (ch.ready->waiting) ch.ready->cv.notify_one();
        }
#else
        (void)ch;
#endif
    }

    [[nodiscard]] std::span<const std::byte> recv_view(
        const detail::PlanChannel& ch) const override {
        const auto& s = slot(ch);
        return {s.data, ch.bytes};
    }

    void release(detail::PlanChannel& ch) override {
        par::device::devcheck::channel_release(&ch, name());
#if defined(__linux__)
        auto& s = slot(ch);
        {
            std::lock_guard lock(ch.mutex);
            ch.full = false;
            s.observed = false;
            s.local_publish = false;
        }
        s.hdr->seq.fetch_add(1, std::memory_order_release);
        detail::shm_futex_wake(s.hdr->seq);
#endif
    }

    void on_detach(detail::PlanChannel& ch) override {
        auto& s = slot(ch);
        std::lock_guard lock(ch.mutex);
        s.observed = false;
    }

    [[nodiscard]] std::span<std::byte> pin(detail::PlanChannel& ch,
                                           std::size_t max_bytes) override {
        auto& s = slot(ch);
        BEATNIK_REQUIRE(max_bytes <= s.capacity,
                        "shm transport: pin request exceeds the fixed segment capacity");
        return {s.data, s.capacity};
    }

    /// Segments are sized once at first bind and mapped by every later
    /// endpoint as-is — the fixed capacity the plan verifier checks
    /// declared max_bytes against.
    [[nodiscard]] std::size_t bound_capacity(const detail::PlanChannel& ch) const override {
        return ch.tslot != nullptr ? slot(ch).capacity
                                   : std::numeric_limits<std::size_t>::max();
    }

    /// Cross-process abort propagation: raise the abort word in every
    /// bound segment and wake all futex waiters — peers observe it on
    /// their next poll or wait slice and unwind.
    void abort_all() override {
#if defined(__linux__)
        std::lock_guard lock(mutex_);
        for (auto* hdr : headers_) {
            hdr->abort.store(1, std::memory_order_release);
            detail::shm_futex_wake(hdr->seq);
        }
#endif
    }

private:
    friend struct detail::ShmSlot;

    [[nodiscard]] static detail::ShmSlot& slot(detail::PlanChannel& ch) {
        return static_cast<detail::ShmSlot&>(*ch.tslot);
    }
    [[nodiscard]] static const detail::ShmSlot& slot(const detail::PlanChannel& ch) {
        return static_cast<const detail::ShmSlot&>(*ch.tslot);
    }

    [[nodiscard]] std::string segment_name(const ChannelKey& key) const {
        return "/bk-" + session_ + "-c" + std::to_string(key.comm_id) + "-" +
               std::to_string(key.src_world) + "to" + std::to_string(key.dst_world) + "-t" +
               std::to_string(key.tag);
    }

    void check_abort(const detail::ShmSlot& s, const TransportWait& w) const {
        if (w.abort != nullptr && w.abort->load(std::memory_order_acquire)) {
            throw CommError("plan operation aborted: another rank failed");
        }
        if (s.hdr->abort.load(std::memory_order_relaxed) != 0) {
            throw CommError("shm transport: a peer process aborted");
        }
    }

    void forget(detail::ShmHeader* hdr) {
        std::lock_guard lock(mutex_);
        std::erase(headers_, hdr);
    }

    std::string session_;
    mutable std::mutex mutex_;
    std::vector<detail::ShmHeader*> headers_;   ///< live mappings, for abort_all
    std::vector<std::string> created_names_;    ///< unlinked at destruction
};

namespace detail {

inline ShmSlot::~ShmSlot() {
    // The channel's shared_ptr<Transport> is still held while tslot is
    // destroyed, so the owner is always alive here.
    if (owner != nullptr && hdr != nullptr) owner->forget(hdr);
#if defined(__linux__)
    if (hdr != nullptr) ::munmap(hdr, mapped);
#endif
}

} // namespace detail

} // namespace beatnik::comm
