/// \file registry.hpp
/// \brief Per-context transport selection: which Transport carries which
/// peer pair's channels.
///
/// A plan build asks select(src, dst) for every slot it creates; the
/// answer is resolved in precedence order:
///
///   1. an explicit per-pair rule (set_pair — mixed-transport plans are
///      legal: different peer pairs of one plan may use different
///      transports, as long as every rank installs the same rules before
///      building);
///   2. the context default (ContextConfig::transport, or the
///      BEATNIK_TRANSPORT environment variable — "inproc", "shm" or
///      "loopback");
///   3. "inproc".
///
/// Both endpoints of a channel call select with the channel's ordered
/// (src, dst) world-rank pair, so they always agree — whichever endpoint
/// creates the channel binds the agreed transport. Transport instances
/// are created lazily and shared by every channel selecting them; a
/// PlanChannel keeps its transport alive via shared_ptr, so plans may
/// safely detach after the context (and this registry) are gone.
#pragma once

#include <cstdlib>
#include <map>
#include <utility>

#include "comm/transport/inproc.hpp"
#include "comm/transport/loopback.hpp"
#include "comm/transport/shm.hpp"

#if defined(__linux__)
#include <unistd.h>
#endif

namespace beatnik::comm {

class TransportRegistry {
public:
    struct Config {
        std::string default_transport;   ///< "" -> $BEATNIK_TRANSPORT -> "inproc"
        LoopbackConfig loopback;
        std::string shm_session;         ///< "" -> $BEATNIK_SHM_SESSION -> per-registry unique
    };

    explicit TransportRegistry(Config cfg = {}) : cfg_(std::move(cfg)) {
        if (cfg_.default_transport.empty()) {
            const char* env = std::getenv("BEATNIK_TRANSPORT");
            cfg_.default_transport = (env != nullptr && *env != '\0') ? env : "inproc";
        }
        if (cfg_.shm_session.empty()) {
            const char* env = std::getenv("BEATNIK_SHM_SESSION");
            cfg_.shm_session = (env != nullptr && *env != '\0') ? env : default_session();
        }
        check_name(cfg_.default_transport);
    }

    /// The transport carrying channels from world rank \p src to \p dst.
    [[nodiscard]] std::shared_ptr<Transport> select(int src, int dst) {
        std::lock_guard lock(mutex_);
        auto it = pairs_.find({src, dst});
        return get_locked(it != pairs_.end() ? it->second : cfg_.default_transport);
    }

    /// A shared transport instance by name ("inproc", "shm", "loopback").
    [[nodiscard]] std::shared_ptr<Transport> get(const std::string& name) {
        std::lock_guard lock(mutex_);
        return get_locked(name);
    }

    /// Route the ordered pair (src, dst) over \p name. Install rules
    /// before building plans that use them, identically on every rank
    /// (calls are idempotent, so each rank installing the full rule set
    /// is the natural pattern); a channel that already exists keeps the
    /// transport it was bound with.
    void set_pair(int src, int dst, const std::string& name) {
        check_name(name);
        std::lock_guard lock(mutex_);
        pairs_[{src, dst}] = name;
    }

    /// Route both directions between \p a and \p b over \p name.
    void set_pair_symmetric(int a, int b, const std::string& name) {
        set_pair(a, b, name);
        set_pair(b, a, name);
    }

    void set_default(const std::string& name) {
        check_name(name);
        std::lock_guard lock(mutex_);
        cfg_.default_transport = name;
    }

    /// Replace the loopback cost model. Only affects channels bound
    /// afterwards (call before building plans).
    void configure_loopback(const LoopbackConfig& cfg) {
        std::lock_guard lock(mutex_);
        cfg_.loopback = cfg;
        loopback_.reset();
    }

    [[nodiscard]] const Config& config() const { return cfg_; }

    /// Context-wide abort: fan out to every instantiated transport.
    void abort_all() {
        std::lock_guard lock(mutex_);
        if (inproc_) inproc_->abort_all();
        if (shm_) shm_->abort_all();
        if (loopback_) loopback_->abort_all();
    }

private:
    [[nodiscard]] std::shared_ptr<Transport> get_locked(const std::string& name) {
        if (name == "inproc") {
            if (!inproc_) inproc_ = std::make_shared<InProcTransport>();
            return inproc_;
        }
        if (name == "shm") {
            if (!shm_) shm_ = std::make_shared<ShmTransport>(cfg_.shm_session);
            return shm_;
        }
        if (name == "loopback") {
            if (!loopback_) loopback_ = std::make_shared<LoopbackTransport>(cfg_.loopback);
            return loopback_;
        }
        throw InvalidArgument("unknown transport \"" + name +
                              "\" (expected inproc, shm or loopback)");
    }

    static void check_name(const std::string& name) {
        BEATNIK_REQUIRE(name == "inproc" || name == "shm" || name == "loopback",
                        "unknown transport \"" + name +
                            "\" (expected inproc, shm or loopback)");
    }

    /// Default shm session: unique per registry so unrelated contexts in
    /// one process (or concurrent test runs on one machine) never share
    /// segments; cross-process runs must pass an explicit session.
    [[nodiscard]] static std::string default_session() {
        static std::atomic<std::uint64_t> counter{0};
        std::uint64_t n = counter.fetch_add(1);
        // Built with append rather than operator+ chains: GCC 12's
        // -Wrestrict misfires on (const char* + std::string&&) here.
        std::string s;
#if defined(__linux__)
        s += 'p';
        s += std::to_string(::getpid());
        s += '-';
#else
        s += "local-";
#endif
        s += std::to_string(n);
        return s;
    }

    Config cfg_;
    std::mutex mutex_;
    std::map<std::pair<int, int>, std::string> pairs_;
    std::shared_ptr<InProcTransport> inproc_;
    std::shared_ptr<ShmTransport> shm_;
    std::shared_ptr<LoopbackTransport> loopback_;
};

} // namespace beatnik::comm
