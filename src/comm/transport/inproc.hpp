/// \file inproc.hpp
/// \brief The original in-process rendezvous transport (the default).
///
/// Extracted verbatim from the pre-seam Plan fast path: the channel's
/// vector buffer is the message, publish flips `full` and pushes into the
/// receiver's ready ring under the channel mutex, release flips it back
/// and wakes a waiting sender. Push-notifying: the receiving plan never
/// polls, it sleeps on its ready ring's condvar.
#pragma once

#include <thread>

#include "comm/transport/transport.hpp"

namespace beatnik::comm {

class InProcTransport : public Transport {
public:
    [[nodiscard]] const char* name() const noexcept override { return "inproc"; }
    [[nodiscard]] bool push_notifies() const noexcept override { return true; }

    void bind(detail::PlanChannel& ch, const ChannelKey&, std::size_t max_bytes) override {
        ch.buf.resize(max_bytes);
    }

    [[nodiscard]] std::span<std::byte> acquire_send(detail::PlanChannel& ch, std::size_t bytes,
                                                    const TransportWait& w) override {
        {
            std::unique_lock lock(ch.mutex);
            // Spin briefly before blocking: the receiver usually releases
            // the slot within microseconds, far below a futex round-trip.
            // (Spinning is disabled when rank-threads are oversubscribed
            // on the machine — there it only steals the peer's timeslice.)
            for (int spin = w.spin_iters; ch.full && spin > 0; --spin) {
                lock.unlock();
                detail::cpu_relax();
                lock.lock();
            }
            if (ch.full) {
                ch.sender_waiting = true;
                detail::transport_wait_until(
                    lock, ch.cv, [&] { return !ch.full; },
                    "Plan::send_buffer: peer never released the previous message", w);
                ch.sender_waiting = false;
            }
            if (ch.buf.size() < bytes) ch.buf.resize(bytes);
            ch.bytes = bytes;
        }
        par::device::devcheck::channel_send_acquire(&ch);
        // Channel is EMPTY and this thread is its only writer until
        // publish(); packing outside the lock is safe.
        return {ch.buf.data(), bytes};
    }

    void publish(detail::PlanChannel& ch) override {
        par::device::devcheck::channel_publish(&ch, name());
        std::lock_guard lock(ch.mutex);
        BEATNIK_ASSERT(!ch.full, "publish on a full channel");
        ch.full = true;
        notify_ready_locked(ch);
    }

    void poll(detail::PlanChannel&) override {}   // push-notifying: never called

    [[nodiscard]] std::span<const std::byte> recv_view(
        const detail::PlanChannel& ch) const override {
        return {ch.buf.data(), ch.bytes};
    }

    void release(detail::PlanChannel& ch) override {
        par::device::devcheck::channel_release(&ch, name());
        bool wake;
        {
            std::lock_guard lock(ch.mutex);
            ch.full = false;
            wake = ch.sender_waiting;
        }
        if (wake) ch.cv.notify_one();
    }

    [[nodiscard]] std::span<std::byte> pin(detail::PlanChannel& ch,
                                           std::size_t max_bytes) override {
        std::lock_guard lock(ch.mutex);
        // Grow-only: a published-but-unconsumed message survives the
        // resize (vector growth copies), and the registered pointer is
        // the post-growth one.
        if (ch.buf.size() < max_bytes) ch.buf.resize(max_bytes);
        return {ch.buf.data(), ch.buf.size()};
    }

protected:
    /// Completion hook: enqueue into the receiving plan's ready ring.
    /// Caller holds ch.mutex (see channel.hpp lock ordering) so detach
    /// can never race the push. Only pay the futex wake when the
    /// receiver is actually blocked.
    static void notify_ready_locked(detail::PlanChannel& ch) {
        if (ch.ready != nullptr) {
            std::lock_guard ring_lock(ch.ready->mutex);
            ch.ready->push_locked(ch.recv_slot);
            if (ch.ready->waiting) ch.ready->cv.notify_one();
        }
    }
};

} // namespace beatnik::comm
