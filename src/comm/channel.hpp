/// \file channel.hpp
/// \brief Pre-matched single-slot rendezvous channels for persistent
/// communication plans (comm::Plan).
///
/// A PlanChannel is the transport primitive behind the plan API: one fixed
/// (communicator, sender, receiver, tag) quadruple, one reusable buffer,
/// one in-flight message. Matching happens exactly once — at plan build,
/// when both endpoints resolve the same channel in the context's
/// ChannelRegistry — so the per-iteration path is a buffer handoff with no
/// queue, no matching, and no allocation:
///
///   sender:   acquire (wait EMPTY) -> pack in place -> publish (FULL)
///   receiver: pop from its ready ring (arrival order) -> read in place
///             -> release (EMPTY again)
///
/// Lock ordering: channel.mutex may be taken alone, and the receiver's
/// ReadyRing mutex is only ever taken *while holding* the channel mutex
/// (publish/attach) or alone (pop). Never channel-after-ring.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "base/error.hpp"

namespace beatnik::comm {

class Transport;   // comm/transport/transport.hpp

/// One planned transfer in world-rank coordinates. Plans export their
/// message schedule in this form so the netsim machine model can replay
/// it without executing anything.
struct PlanMsg {
    int src_world = 0;
    int dst_world = 0;
    std::size_t bytes = 0;   ///< capacity of the slot (max bytes per iteration)
};

namespace detail {

/// Fixed-capacity ring of completed recv-slot indices, owned by the
/// receiving plan. Senders push under the channel+ring locks; the receiver
/// pops under the ring lock only. Capacity equals the plan's recv count,
/// so the ring can never overflow (one in-flight message per channel).
struct ReadyRing {
    std::mutex mutex;
    std::condition_variable cv;
    std::vector<int> slots;   ///< preallocated to capacity
    std::size_t head = 0;     ///< next pop position
    std::size_t count = 0;    ///< entries currently queued
    bool waiting = false;     ///< receiver is blocked on cv (skip notify otherwise)

    explicit ReadyRing(std::size_t capacity) : slots(capacity, -1) {}

    /// Caller holds mutex.
    void push_locked(int slot) {
        BEATNIK_ASSERT(count < slots.size(), "ready ring overflow");
        slots[(head + count) % slots.size()] = slot;
        ++count;
    }
    /// Prepend (caller holds mutex). Used when re-enqueuing arrivals that
    /// were observed early — they must stay ahead of later arrivals.
    void push_front_locked(int slot) {
        BEATNIK_ASSERT(count < slots.size(), "ready ring overflow");
        head = (head + slots.size() - 1) % slots.size();
        slots[head] = slot;
        ++count;
    }
    /// Caller holds mutex and has checked count > 0.
    int pop_locked() {
        int s = slots[head];
        head = (head + 1) % slots.size();
        --count;
        return s;
    }
};

/// Per-channel state owned by the channel's transport (a shm segment
/// mapping, a loopback delivery deadline, ...). The in-process transport
/// needs none and leaves PlanChannel::tslot null.
struct TransportSlot {
    virtual ~TransportSlot() = default;
};

/// Shared state of one persistent channel. Created on first use by either
/// endpoint (sender or receiver) via ChannelRegistry::get_or_create; both
/// plans then hold a shared_ptr, and the registry keeps it alive for the
/// context lifetime so rebuilt plans reattach to the same object.
///
/// How the slot's bytes physically move is delegated to `transport`
/// (comm/transport/): `buf` backs the in-process transports, a shm
/// channel's bytes live in the segment mapping carried by `tslot`.
/// `full` is this endpoint's latest view of "a message is in flight" —
/// exact for in-process transports, a conservative local cache for
/// cross-process ones — maintained by the transport under `mutex`.
struct PlanChannel {
    std::mutex mutex;
    std::condition_variable cv;       ///< sender waits here for EMPTY
    std::vector<std::byte> buf;       ///< grown only while EMPTY, by the sender
    std::size_t bytes = 0;            ///< message size while FULL
    bool full = false;
    bool sender_waiting = false;      ///< sender blocked on cv (skip notify otherwise)
    // Receiver-side completion hook, registered at plan build. Guarded by
    // `mutex`; publish pushes into the ring *while holding* `mutex`, so a
    // detaching receiver (plan destruction) can never race the push.
    ReadyRing* ready = nullptr;
    int recv_slot = -1;
    std::shared_ptr<Transport> transport;   ///< set once at bind, immutable after
    std::unique_ptr<TransportSlot> tslot;   ///< transport-private per-channel state
    // Telemetry flow sequence numbers. Single-writer each (pub_seq: the
    // sender thread in publish; con_seq: the receiver thread in consume)
    // and incremented unconditionally, so the k-th publish and the k-th
    // consume hash to the same flow id even across processes (shm channels
    // have one PlanChannel instance per process) and across arm/disarm.
    std::uint64_t pub_seq = 0;
    std::uint64_t con_seq = 0;
};

/// One CPU-relax step for spin-then-block waits: cheap enough to sit in a
/// tight try-lock loop, strong enough to release pipeline resources to
/// the sibling hyperthread.
inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__)
    asm volatile("yield");
#endif
}

} // namespace detail

/// Key identifying a persistent channel: one direction of one tag between
/// one ordered pair of world ranks on one communicator.
struct ChannelKey {
    int comm_id = 0;
    int src_world = 0;
    int dst_world = 0;
    int tag = 0;
    auto operator<=>(const ChannelKey&) const = default;
};

/// Context-wide registry of persistent plan channels. get_or_create is the
/// one-time "matching" step of the plan API: both endpoints of a channel
/// resolve the same shared object here at build time.
class ChannelRegistry {
public:
    /// \p bind attaches a transport to a freshly created channel (it runs
    /// under the registry lock, exactly once per channel, so the losing
    /// endpoint of a concurrent build can never observe an unbound
    /// channel). It is a callback — not a Transport& — purely to keep
    /// this header free of the transport headers (which include it).
    template <class BindFn>
    [[nodiscard]] std::shared_ptr<detail::PlanChannel> get_or_create(const ChannelKey& key,
                                                                     BindFn&& bind) {
        std::lock_guard lock(mutex_);
        auto& slot = channels_[key];
        if (!slot) {
            slot = std::make_shared<detail::PlanChannel>();
            bind(*slot);
        }
        return slot;
    }

    /// Number of registered channels (tests / leak checks).
    [[nodiscard]] std::size_t size() const {
        std::lock_guard lock(mutex_);
        return channels_.size();
    }

    /// Drop channels nobody references anymore whose tag can never be
    /// reissued (a key predicate supplied by the caller — in practice the
    /// sequence-tag band, which is allocated monotonically). Fixed-tag
    /// channels (the halo band) are deliberately kept: transient wrapper
    /// plans reattach to them call after call. Any plan that could still
    /// use a channel holds its shared_ptr, so use_count()==1 (registry
    /// only) proves no *live* plan references it — but a FULL channel is
    /// still carrying a message for a receiver that has not bound yet
    /// (plans bind lazily and ranks drift), so those are always kept.
    ///
    /// Lock ordering: registry mutex, then channel mutex — nothing nests
    /// the other way (detach releases each channel lock before pruning).
    /// The channel lock for the `full` read is required even at
    /// use_count()==1: the peer's final release wrote `full` before
    /// dropping its reference, and use_count() alone establishes no
    /// happens-before edge with that write.
    template <class KeyPred>
    void prune_unreferenced(KeyPred&& dead_tag) {
        std::lock_guard lock(mutex_);
        for (auto it = channels_.begin(); it != channels_.end();) {
            bool dead = false;
            if (it->second.use_count() == 1 && dead_tag(it->first)) {
                std::lock_guard ch_lock(it->second->mutex);
                dead = !it->second->full;
            }
            if (dead) {
                it = channels_.erase(it);
            } else {
                ++it;
            }
        }
    }

private:
    mutable std::mutex mutex_;
    std::map<ChannelKey, std::shared_ptr<detail::PlanChannel>> channels_;
};

} // namespace beatnik::comm
