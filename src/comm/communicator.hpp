/// \file communicator.hpp
/// \brief Rank group with point-to-point messaging and collectives.
///
/// API mirrors the MPI communicator concept: a Communicator names a group
/// of ranks, carries its own tag space, and provides the collective
/// operations Beatnik needs (barrier, bcast, reduce, allreduce, gather,
/// allgather(v), scatter, alltoall(v)). Collectives are implemented with
/// the textbook distributed algorithms (binomial trees, recursive doubling,
/// ring, Bruck, pairwise exchange) over the same point-to-point layer user
/// code uses, so a message trace of a collective shows the real pattern an
/// MPI library would issue.
///
/// Message-path cost model: a send publishes its payload once into a
/// shared immutable buffer (comm::Payload) and delivers only a handle to
/// the destination mailbox. Receivers read the buffer in place through
/// Message::view<T>() — the zero-copy path every collective below uses —
/// or copy it out once via recv()/recv_bytes(). Tree and ring collectives
/// (bcast, allgather) forward the *same* buffer hop to hop, so a broadcast
/// to P ranks allocates one buffer total, not P.
///
/// Thread model: each rank-thread owns its own Communicator instance;
/// instances referring to the same comm_id cooperate through the shared
/// Context. All methods are safe to call concurrently from different
/// rank-threads, and collectives must be called by every rank of the
/// communicator in the same order (the usual MPI contract).
#pragma once

#include <chrono>
#include <cstring>
#include <functional>
#include <limits>
#include <numeric>
#include <optional>
#include <span>
#include <thread>
#include <type_traits>
#include <vector>

#include "base/error.hpp"
#include "comm/context.hpp"
#include "comm/plancheck.hpp"

namespace beatnik::comm {

/// Types that can cross rank boundaries byte-wise.
template <class T>
concept Transferable = std::is_trivially_copyable_v<T>;

/// A received message: matching metadata plus the shared immutable payload.
/// The payload aliases the buffer the sender published — reading it through
/// view() costs nothing beyond the pointer chase.
struct Message {
    Status status;
    Payload payload;

    template <Transferable T>
    [[nodiscard]] std::span<const T> view() const {
        return payload.view<T>();
    }
};

/// Handle for a pending nonblocking operation with *real* nonblocking
/// semantics: isend() completes immediately (sends are buffered), and
/// irecv() eagerly matches at post time — a message already queued is
/// consumed on the spot, and a later arrival can be picked up with test()
/// without blocking, so computation can overlap in-flight messages.
class Request {
public:
    Request() = default;

    [[nodiscard]] bool valid() const {
        return status_.has_value() || static_cast<bool>(wait_op_);
    }
    /// True once the operation has been observed complete.
    [[nodiscard]] bool done() const { return status_.has_value(); }

    /// Nonblocking completion attempt. Returns true (and fires the
    /// completion callback, once) when the operation has completed.
    bool test() {
        if (status_) return true;
        BEATNIK_REQUIRE(static_cast<bool>(try_op_), "test() on an empty Request");
        if (auto s = try_op_()) {
            finish(*s);
            return true;
        }
        return false;
    }

    /// Block until the operation completes and return its status.
    Status wait() {
        if (!status_) {
            BEATNIK_REQUIRE(static_cast<bool>(wait_op_), "wait() on an empty Request");
            finish(wait_op_());
        }
        return *status_;
    }

    /// Status of a completed request.
    [[nodiscard]] Status status() const {
        BEATNIK_REQUIRE(status_.has_value(), "status() on an incomplete Request");
        return *status_;
    }

    /// Register a completion callback, fired exactly once at the moment
    /// completion is observed (inside test()/wait()/wait_any()). If the
    /// request is already complete the callback fires immediately.
    void on_complete(std::function<void(const Status&)> cb) {
        if (status_) {
            if (cb) cb(*status_);
            return;
        }
        callback_ = std::move(cb);
    }

    static Request completed(Status s) {
        Request r;
        r.status_ = s;
        return r;
    }
    /// A pending operation described by a nonblocking attempt and a
    /// blocking fallback over the same state.
    static Request pending(std::function<std::optional<Status>()> try_op,
                           std::function<Status()> wait_op) {
        Request r;
        r.try_op_ = std::move(try_op);
        r.wait_op_ = std::move(wait_op);
        return r;
    }

private:
    friend std::size_t wait_any(std::span<Request>);

    void finish(Status s) {
        status_ = s;
        try_op_ = nullptr;
        wait_op_ = nullptr;
        if (callback_) {
            auto cb = std::move(callback_);
            callback_ = nullptr;
            cb(*status_);
        }
    }

    std::function<std::optional<Status>()> try_op_;
    std::function<Status()> wait_op_;
    std::function<void(const Status&)> callback_;
    std::optional<Status> status_;
    bool retired_ = false;   ///< already returned by wait_any()
};

/// Wait on every request in order. Order is irrelevant for correctness
/// because message matching is done by (source, tag).
inline void wait_all(std::span<Request> requests) {
    for (auto& r : requests) {
        if (r.valid()) r.wait();
    }
}

/// Returned by wait_any() when no un-retired valid request remains.
inline constexpr std::size_t wait_any_done = static_cast<std::size_t>(-1);

/// Wait until *some* request completes and return its index, each index
/// exactly once (a returned request is retired, like MPI_Waitany
/// deactivating its slot). Like MPI_Waitany, no ordering among requests
/// that are simultaneously ready is guaranteed — a request that completed
/// while others are still in flight is returned without waiting for them.
/// Completion is observed by polling test(); blocked polls back off to
/// short sleeps. Rank failures unwind through the CommError the mailbox
/// probe throws on context abort.
inline std::size_t wait_any(std::span<Request> requests) {
    for (int spin = 0;; ++spin) {
        bool pending = false;
        for (std::size_t i = 0; i < requests.size(); ++i) {
            Request& r = requests[i];
            if (r.retired_ || !r.valid()) continue;
            if (r.test()) {
                r.retired_ = true;
                return i;
            }
            pending = true;
        }
        if (!pending) return wait_any_done;
        if (spin < 256) {
            std::this_thread::yield();
        } else {
            std::this_thread::sleep_for(std::chrono::microseconds(50));
        }
    }
}

class Communicator {
public:
    /// Constructed by Context::run (the world communicator) or by split().
    /// \p world_ranks maps comm rank -> context (world) rank.
    Communicator(Context& ctx, int comm_id, int rank, std::vector<int> world_ranks)
        : ctx_(&ctx), comm_id_(comm_id), rank_(rank), world_ranks_(std::move(world_ranks)),
          alltoall_algo_(ctx.config().alltoall_algo) {
        BEATNIK_REQUIRE(rank_ >= 0 && rank_ < size(), "communicator rank out of range");
    }

    [[nodiscard]] int rank() const { return rank_; }
    [[nodiscard]] int size() const { return static_cast<int>(world_ranks_.size()); }
    [[nodiscard]] int world_rank() const { return world_ranks_[static_cast<std::size_t>(rank_)]; }
    [[nodiscard]] Context& context() const { return *ctx_; }

    void set_alltoall_algo(AlltoallAlgo a) { alltoall_algo_ = a; }
    [[nodiscard]] AlltoallAlgo alltoall_algo() const { return alltoall_algo_; }

    // ------------------------------------------------------------------ p2p

    /// Buffered send: publishes \p data once into a shared buffer, delivers
    /// a handle to the destination mailbox, and returns immediately. Safe
    /// to call in any order w.r.t. receives.
    void send_bytes(std::span<const std::byte> data, int dest, int tag) {
        check_peer(dest);
        check_user_tag(tag);
        post_bytes(data, dest, tag);
    }

    /// Blocking zero-copy receive: returns the matched message with its
    /// payload aliased, never copied. Prefer this over recv()/recv_bytes()
    /// when the data is only read (reductions, unpacking into a larger
    /// buffer, forwarding).
    [[nodiscard]] Message recv_msg(int src = any_source, int tag = any_tag) {
        if (src != any_source) check_peer(src);
        Envelope env = ctx_->mailbox(world_rank()).receive(comm_id_, src, tag);
        return Message{Status{env.src, env.tag, env.payload.size()}, std::move(env.payload)};
    }

    /// Blocking receive into \p out (resized to the payload). One copy,
    /// shared buffer -> caller's vector.
    Status recv_bytes(std::vector<std::byte>& out, int src = any_source, int tag = any_tag) {
        Message m = recv_msg(src, tag);
        auto bytes = m.payload.bytes();
        out.assign(bytes.begin(), bytes.end());
        return m.status;
    }

    template <Transferable T>
    void send(std::span<const T> data, int dest, int tag) {
        send_bytes(std::as_bytes(data), dest, tag);
    }

    /// Receive a typed message; \p out is resized to the element count.
    /// One copy, shared buffer -> caller's vector.
    template <Transferable T>
    Status recv(std::vector<T>& out, int src = any_source, int tag = any_tag) {
        Message m = recv_msg(src, tag);
        auto in = m.view<T>();
        out.assign(in.begin(), in.end());
        return m.status;
    }

    template <Transferable T>
    void send_value(const T& value, int dest, int tag) {
        send(std::span<const T>(&value, 1), dest, tag);
    }

    template <Transferable T>
    T recv_value(int src = any_source, int tag = any_tag) {
        Message m = recv_msg(src, tag);
        BEATNIK_REQUIRE(m.status.bytes == sizeof(T), "recv_value: message is not a single element");
        return m.view<T>().front();
    }

    template <Transferable T>
    Request isend(std::span<const T> data, int dest, int tag) {
        send(data, dest, tag);
        return Request::completed(Status{rank_, tag, data.size_bytes()});
    }

    /// Nonblocking receive with eager matching: a message already queued
    /// is consumed immediately; otherwise the returned Request picks it up
    /// on test()/wait()/wait_any(). \p out must stay alive until the
    /// request completes.
    template <Transferable T>
    Request irecv(std::vector<T>& out, int src = any_source, int tag = any_tag) {
        if (src != any_source) check_peer(src);
        auto take = [this, &out](Envelope& env) {
            auto in = env.payload.view<T>();
            out.assign(in.begin(), in.end());
            return Status{env.src, env.tag, env.payload.size()};
        };
        Envelope env;
        if (ctx_->mailbox(world_rank()).try_receive(comm_id_, src, tag, env)) {
            return Request::completed(take(env));
        }
        return Request::pending(
            [this, take, src, tag]() -> std::optional<Status> {
                Envelope e;
                if (!ctx_->mailbox(world_rank()).try_receive(comm_id_, src, tag, e)) {
                    return std::nullopt;
                }
                return take(e);
            },
            [this, take, src, tag] {
                Envelope e = ctx_->mailbox(world_rank()).receive(comm_id_, src, tag);
                return take(e);
            });
    }

    /// Exchange with a partner without deadlock (sends are buffered).
    template <Transferable T>
    Status sendrecv(std::span<const T> send_data, int dest, std::vector<T>& recv_data, int src,
                    int tag) {
        send(send_data, dest, tag);
        return recv<T>(recv_data, src, tag);
    }

    // ----------------------------------------------------------- collectives

    /// Dissemination barrier: ceil(log2 P) rounds of empty messages.
    void barrier() {
        const int tag = next_collective_tag(kTagBarrier);
        const int p = size();
        for (int dist = 1; dist < p; dist *= 2) {
            int dst = (rank_ + dist) % p;
            int src = (rank_ - dist + p) % p;
            post_bytes({}, dst, tag);
            plancheck::ContextState* cs = pcheck();
            if (cs != nullptr) {
                // Feed the round into the wait-for graph: posts are
                // counted before the matching wait can register, so a
                // round whose message is in flight never reads as blocked.
                cs->note_published({comm_id_, world_rank(), world_rank_of(dst), tag});
            }
            const plancheck::Await edge{plancheck::WaitKind::barrier, world_rank_of(src),
                                        /*slot=*/-1,
                                        {comm_id_, world_rank_of(src), world_rank(), tag}};
            plancheck::BlockedScope pblock(cs, world_rank(), {&edge, 1});
            (void)ctx_->mailbox(world_rank()).receive(comm_id_, src, tag);
            if (cs != nullptr) {
                cs->note_consumed({comm_id_, world_rank_of(src), world_rank(), tag});
            }
        }
    }

    /// Binomial-tree broadcast of a fixed-size buffer. The root publishes
    /// one shared buffer; every forwarding hop aliases it, so the whole
    /// tree moves a single allocation.
    template <Transferable T>
    void bcast(std::span<T> data, int root) {
        check_peer(root);
        const int tag = next_collective_tag(kTagBcast);
        const int p = size();
        if (p == 1) return;
        const int vrank = (rank_ - root + p) % p;
        // Receive from the binomial-tree parent (clear lowest set bit),
        // then forward to children vrank + b for powers of two b below the
        // lowest set bit of vrank (all of them, for the root).
        Payload shared;
        if (vrank == 0) {
            shared = Payload::copy_of(std::as_bytes(std::span<const T>(data.data(), data.size())));
        } else {
            int parent = ((vrank & (vrank - 1)) + root) % p;
            Message m = recv_msg(parent, tag);
            auto incoming = m.view<T>();
            BEATNIK_REQUIRE(incoming.size() == data.size(), "bcast: buffer size mismatch");
            std::copy(incoming.begin(), incoming.end(), data.begin());
            shared = std::move(m.payload);
        }
        const int lowbit = vrank == 0 ? p : (vrank & -vrank);
        for (int b = 1; b < lowbit && vrank + b < p; b <<= 1) {
            int child = (vrank + b + root) % p;
            post_payload(shared, child, tag);
        }
    }

    template <Transferable T>
    void bcast_value(T& value, int root) {
        bcast(std::span<T>(&value, 1), root);
    }

    /// Binomial-tree reduction to \p root. \p data is both input and, on
    /// the root, output. Non-roots' buffers are used as scratch.
    template <Transferable T, class Op>
    void reduce_inplace(std::span<T> data, int root, Op op) {
        check_peer(root);
        const int tag = next_collective_tag(kTagReduce);
        const int p = size();
        const int vrank = (rank_ - root + p) % p;
        for (int mask = 1; mask < p; mask <<= 1) {
            if ((vrank & mask) != 0) {
                int parent = ((vrank & ~mask) + root) % p;
                post_typed(std::span<const T>(data.data(), data.size()), parent, tag);
                return;
            }
            int child_v = vrank | mask;
            if (child_v < p) {
                int child = (child_v + root) % p;
                Message m = recv_msg(child, tag);
                auto incoming = m.view<T>();
                BEATNIK_REQUIRE(incoming.size() == data.size(), "reduce: buffer size mismatch");
                for (std::size_t i = 0; i < data.size(); ++i) data[i] = op(data[i], incoming[i]);
            }
        }
    }

    /// Allreduce (recursive doubling with a pre/post fold for non-power-of-
    /// two sizes). \p data is replaced by the reduction on every rank.
    template <Transferable T, class Op>
    void allreduce(std::span<T> data, Op op) {
        const int tag = next_collective_tag(kTagAllreduce);
        const int p = size();
        if (p == 1) return;
        int pof2 = 1;
        while (pof2 * 2 <= p) pof2 *= 2;
        const int rem = p - pof2;

        // Fold the ranks beyond the power-of-two boundary into the front.
        int my = rank_;
        bool parked = false;
        if (rank_ >= pof2) {
            post_typed(std::span<const T>(data.data(), data.size()), rank_ - pof2, tag);
            parked = true;
        } else if (rank_ < rem) {
            Message m = recv_msg(rank_ + pof2, tag);
            auto incoming = m.view<T>();
            BEATNIK_REQUIRE(incoming.size() == data.size(), "allreduce: buffer size mismatch");
            for (std::size_t i = 0; i < data.size(); ++i) data[i] = op(data[i], incoming[i]);
        }

        if (!parked) {
            for (int mask = 1; mask < pof2; mask <<= 1) {
                int partner = my ^ mask;
                post_typed(std::span<const T>(data.data(), data.size()), partner, tag);
                Message m = recv_msg(partner, tag);
                auto incoming = m.view<T>();
                BEATNIK_REQUIRE(incoming.size() == data.size(), "allreduce: buffer size mismatch");
                for (std::size_t i = 0; i < data.size(); ++i) data[i] = op(data[i], incoming[i]);
            }
        }

        // Send results back to the parked ranks.
        if (rank_ < rem) {
            post_typed(std::span<const T>(data.data(), data.size()), rank_ + pof2, tag);
        } else if (parked) {
            Message m = recv_msg(rank_ - pof2, tag);
            auto incoming = m.view<T>();
            BEATNIK_REQUIRE(incoming.size() == data.size(), "allreduce: buffer size mismatch");
            std::copy(incoming.begin(), incoming.end(), data.begin());
        }
    }

    template <Transferable T, class Op>
    [[nodiscard]] T allreduce_value(T value, Op op) {
        allreduce(std::span<T>(&value, 1), op);
        return value;
    }

    /// Linear gather of equal-size contributions; the returned vector is
    /// filled on the root (ordered by rank) and empty elsewhere.
    template <Transferable T>
    [[nodiscard]] std::vector<T> gather(std::span<const T> local, int root) {
        check_peer(root);
        const int tag = next_collective_tag(kTagGather);
        const int p = size();
        if (rank_ != root) {
            post_typed(local, root, tag);
            return {};
        }
        std::vector<T> all(local.size() * static_cast<std::size_t>(p));
        std::copy(local.begin(), local.end(),
                  all.begin() + static_cast<std::ptrdiff_t>(local.size()) * root);
        for (int r = 0; r < p; ++r) {
            if (r == root) continue;
            Message m = recv_msg(r, tag);
            BEATNIK_REQUIRE(m.status.bytes == local.size_bytes(),
                            "gather: contribution size mismatch");
            auto incoming = m.view<T>();
            std::copy(incoming.begin(), incoming.end(),
                      all.begin() + static_cast<std::ptrdiff_t>(local.size()) * r);
        }
        return all;
    }

    /// Gather with per-rank sizes. \p counts_out is a root-only output: on
    /// the root it receives each rank's element count (ordered by rank); on
    /// every other rank it is cleared, never left holding stale data.
    template <Transferable T>
    [[nodiscard]] std::vector<T> gatherv(std::span<const T> local, int root,
                                         std::vector<std::size_t>* counts_out = nullptr) {
        check_peer(root);
        const int tag = next_collective_tag(kTagGatherv);
        const int p = size();
        if (rank_ != root) {
            if (counts_out) counts_out->clear();
            post_typed(local, root, tag);
            return {};
        }
        // Take contributions in arrival order (matching routes by source),
        // then concatenate in rank order from the aliased payloads.
        std::vector<Payload> parts(static_cast<std::size_t>(p));
        for (int i = 0; i < p - 1; ++i) {
            Message m = recv_msg(any_source, tag);
            parts[static_cast<std::size_t>(m.status.source)] = std::move(m.payload);
        }
        std::vector<T> all;
        std::size_t total = local.size();
        for (int r = 0; r < p; ++r) {
            if (r != root) total += parts[static_cast<std::size_t>(r)].size() / sizeof(T);
        }
        all.reserve(total);
        if (counts_out) {
            counts_out->clear();
            counts_out->reserve(static_cast<std::size_t>(p));
        }
        for (int r = 0; r < p; ++r) {
            std::span<const T> part = r == root
                ? local
                : parts[static_cast<std::size_t>(r)].view<T>();
            if (counts_out) counts_out->push_back(part.size());
            all.insert(all.end(), part.begin(), part.end());
        }
        return all;
    }

    /// Root scatters \p all (size P * count) so each rank gets \p count
    /// elements; non-roots may pass an empty span.
    template <Transferable T>
    [[nodiscard]] std::vector<T> scatter(std::span<const T> all, int root, std::size_t count) {
        check_peer(root);
        const int tag = next_collective_tag(kTagScatter);
        const int p = size();
        if (rank_ == root) {
            BEATNIK_REQUIRE(all.size() == count * static_cast<std::size_t>(p),
                            "scatter: root buffer size != P * count");
            for (int r = 0; r < p; ++r) {
                if (r == root) continue;
                post_typed(all.subspan(count * static_cast<std::size_t>(r), count), r, tag);
            }
            return {all.begin() + static_cast<std::ptrdiff_t>(count * static_cast<std::size_t>(root)),
                    all.begin() + static_cast<std::ptrdiff_t>(count * (static_cast<std::size_t>(root) + 1))};
        }
        Message m = recv_msg(root, tag);
        auto mine = m.view<T>();
        BEATNIK_REQUIRE(mine.size() == count, "scatter: received chunk size mismatch");
        return {mine.begin(), mine.end()};
    }

    /// Ring allgather of equal-size contributions; every rank returns the
    /// concatenation ordered by rank. Each rank's block is published once
    /// and the same buffer is aliased all the way around the ring. Blocks
    /// at or above the rendezvous threshold skip even that one copy: the
    /// ring forwards an alias of the caller's own buffer, and a closing
    /// barrier holds every rank until all reads have finished (the block
    /// size is uniform, so the decision — and the barrier — is too).
    template <Transferable T>
    [[nodiscard]] std::vector<T> allgather(std::span<const T> local) {
        const int tag = next_collective_tag(kTagAllgather);
        const int p = size();
        const std::size_t n = local.size();
        std::vector<T> all(n * static_cast<std::size_t>(p));
        std::copy(local.begin(), local.end(),
                  all.begin() + static_cast<std::ptrdiff_t>(n) * rank_);
        if (p == 1) return all;
        const bool rendezvous = use_rendezvous(n * sizeof(T));
        const int right = (rank_ + 1) % p;
        const int left = (rank_ - 1 + p) % p;
        Payload block = rendezvous ? Payload::alias_of(std::as_bytes(local))
                                   : Payload::copy_of(std::as_bytes(local));
        for (int step = 0; step < p - 1; ++step) {
            post_payload(block, right, tag);
            Message m = recv_msg(left, tag);
            BEATNIK_REQUIRE(m.status.bytes == n * sizeof(T), "allgather: block size mismatch");
            auto incoming = m.view<T>();
            int origin = (rank_ - step - 1 + p) % p;
            std::copy_n(incoming.begin(), n,
                        all.begin() + static_cast<std::ptrdiff_t>(n) * origin);
            block = std::move(m.payload);
        }
        // Aliased blocks point into the senders' buffers; hold every rank
        // here until all reads have finished.
        if (rendezvous) barrier();
        return all;
    }

    template <Transferable T>
    [[nodiscard]] std::vector<T> allgather_value(const T& value) {
        return allgather(std::span<const T>(&value, 1));
    }

    /// Ring allgather with per-rank sizes. \p counts_out (if non-null)
    /// receives every rank's element count. Blocks are forwarded around the
    /// ring by aliasing, like allgather — and, like alltoallv, each block
    /// at or above the rendezvous threshold is aliased from its sender's
    /// buffer instead of copied. Every rank sees all counts from the size
    /// pre-exchange, so "did anyone alias" is uniform information and the
    /// closing barrier needs no extra agreement collective.
    template <Transferable T>
    [[nodiscard]] std::vector<T> allgatherv(std::span<const T> local,
                                            std::vector<std::size_t>* counts_out = nullptr) {
        auto counts = allgather_value(local.size());
        if (counts_out) *counts_out = counts;
        const int p = size();
        std::vector<std::size_t> offsets(static_cast<std::size_t>(p) + 1, 0);
        for (int r = 0; r < p; ++r) offsets[static_cast<std::size_t>(r) + 1] = offsets[static_cast<std::size_t>(r)] + counts[static_cast<std::size_t>(r)];
        std::vector<T> all(offsets.back());
        std::copy(local.begin(), local.end(),
                  all.begin() + static_cast<std::ptrdiff_t>(offsets[static_cast<std::size_t>(rank_)]));
        if (p == 1) return all;
        bool any_alias = false;
        for (int r = 0; r < p; ++r) {
            if (use_rendezvous(counts[static_cast<std::size_t>(r)] * sizeof(T))) {
                any_alias = true;
                break;
            }
        }
        const bool alias_mine = use_rendezvous(local.size_bytes());
        const int tag = next_collective_tag(kTagAllgatherv);
        const int right = (rank_ + 1) % p;
        const int left = (rank_ - 1 + p) % p;
        Payload block = alias_mine ? Payload::alias_of(std::as_bytes(local))
                                   : Payload::copy_of(std::as_bytes(local));
        for (int step = 0; step < p - 1; ++step) {
            post_payload(block, right, tag);
            Message m = recv_msg(left, tag);
            auto incoming = m.view<T>();
            int origin = (rank_ - step - 1 + p) % p;
            BEATNIK_REQUIRE(incoming.size() == counts[static_cast<std::size_t>(origin)],
                            "allgatherv: block size mismatch");
            std::copy(incoming.begin(), incoming.end(),
                      all.begin() + static_cast<std::ptrdiff_t>(offsets[static_cast<std::size_t>(origin)]));
            block = std::move(m.payload);
        }
        if (any_alias) barrier();
        return all;
    }

    /// All-to-all of equal-size blocks (block i of \p sendbuf goes to rank
    /// i). Algorithm chosen by set_alltoall_algo(): pairwise, linear, or
    /// Bruck. Returns P blocks ordered by source rank.
    template <Transferable T>
    [[nodiscard]] std::vector<T> alltoall(std::span<const T> sendbuf) {
        const int p = size();
        BEATNIK_REQUIRE(sendbuf.size() % static_cast<std::size_t>(p) == 0,
                        "alltoall: send buffer not divisible by communicator size");
        const std::size_t n = sendbuf.size() / static_cast<std::size_t>(p);
        switch (alltoall_algo_) {
        case AlltoallAlgo::bruck: return alltoall_bruck(sendbuf, n);
        case AlltoallAlgo::linear: return alltoall_linear(sendbuf, n);
        case AlltoallAlgo::pairwise: return alltoall_pairwise(sendbuf, n);
        }
        throw InvalidArgument("unknown alltoall algorithm");
    }

    /// All-to-all with per-destination counts. Returns the received
    /// elements grouped by source rank; \p recvcounts_out gets each
    /// source's element count.
    ///
    /// All three algorithms are supported. Pairwise and linear discover
    /// receive counts with a fixed-size count exchange first (the common
    /// MPI_Alltoall-then-MPI_Alltoallv idiom) and, like alltoall, publish
    /// blocks at or above the rendezvous threshold as zero-copy aliases of
    /// the caller's buffer with a closing barrier (taken only when some
    /// rank actually aliased — the flag rides on the count exchange, so
    /// agreement costs no extra collective). The Bruck v-variant forwards
    /// per-block counts alongside each round's payload, so it needs no
    /// count pre-exchange at all.
    template <Transferable T>
    [[nodiscard]] std::vector<T> alltoallv(std::span<const T> sendbuf,
                                           std::span<const std::size_t> sendcounts,
                                           std::vector<std::size_t>& recvcounts_out) {
        const int p = size();
        BEATNIK_REQUIRE(static_cast<int>(sendcounts.size()) == p,
                        "alltoallv: sendcounts size != communicator size");
        std::size_t total = std::accumulate(sendcounts.begin(), sendcounts.end(), std::size_t{0});
        BEATNIK_REQUIRE(sendbuf.size() == total, "alltoallv: send buffer size != sum of counts");
        if (alltoall_algo_ == AlltoallAlgo::bruck) {
            return alltoallv_bruck(sendbuf, sendcounts, recvcounts_out);
        }

        // Rendezvous is per-block (each block at or above the threshold is
        // aliased, not copied), but the closing barrier must be a uniform
        // decision. The "did anyone alias" flag piggybacks on the count
        // exchange every rank already pays for — each rank broadcasts its
        // local flag alongside the per-destination counts and ORs over
        // what it receives, so the agreement costs no extra collective.
        bool local_alias = false;
        if (p > 1) {
            for (int r = 0; r < p; ++r) {
                if (r != rank_ &&
                    sendcounts[static_cast<std::size_t>(r)] * sizeof(T) >=
                        ctx_->config().rendezvous_threshold_bytes) {
                    local_alias = true;
                    break;
                }
            }
        }
        std::vector<std::size_t> counts_and_flag(2 * static_cast<std::size_t>(p));
        for (int r = 0; r < p; ++r) {
            counts_and_flag[2 * static_cast<std::size_t>(r)] =
                sendcounts[static_cast<std::size_t>(r)];
            counts_and_flag[2 * static_cast<std::size_t>(r) + 1] = local_alias ? 1 : 0;
        }
        auto received_meta = alltoall(std::span<const std::size_t>(counts_and_flag));
        recvcounts_out.resize(static_cast<std::size_t>(p));
        bool any_alias = false;
        for (int r = 0; r < p; ++r) {
            recvcounts_out[static_cast<std::size_t>(r)] =
                received_meta[2 * static_cast<std::size_t>(r)];
            any_alias = any_alias || received_meta[2 * static_cast<std::size_t>(r) + 1] != 0;
        }

        std::vector<std::size_t> sdispl(static_cast<std::size_t>(p) + 1, 0);
        std::vector<std::size_t> rdispl(static_cast<std::size_t>(p) + 1, 0);
        for (int r = 0; r < p; ++r) {
            sdispl[static_cast<std::size_t>(r) + 1] = sdispl[static_cast<std::size_t>(r)] + sendcounts[static_cast<std::size_t>(r)];
            rdispl[static_cast<std::size_t>(r) + 1] = rdispl[static_cast<std::size_t>(r)] + recvcounts_out[static_cast<std::size_t>(r)];
        }
        std::vector<T> recvbuf(rdispl.back());

        const int tag = next_collective_tag(kTagAlltoallv);
        auto send_block = [&](int dst) {
            auto block = sendbuf.subspan(sdispl[static_cast<std::size_t>(dst)],
                                         sendcounts[static_cast<std::size_t>(dst)]);
            post_block(block, dst, tag,
                       block.size_bytes() >= ctx_->config().rendezvous_threshold_bytes);
        };
        auto recv_block = [&](int src) {
            Message m = recv_msg(src, tag);
            auto incoming = m.view<T>();
            int from = m.status.source;
            BEATNIK_REQUIRE(incoming.size() == recvcounts_out[static_cast<std::size_t>(from)],
                            "alltoallv: received block size mismatch");
            std::copy(incoming.begin(), incoming.end(),
                      recvbuf.begin() + static_cast<std::ptrdiff_t>(rdispl[static_cast<std::size_t>(from)]));
        };

        // Self block never leaves the rank.
        std::copy(sendbuf.begin() + static_cast<std::ptrdiff_t>(sdispl[static_cast<std::size_t>(rank_)]),
                  sendbuf.begin() + static_cast<std::ptrdiff_t>(sdispl[static_cast<std::size_t>(rank_)] + sendcounts[static_cast<std::size_t>(rank_)]),
                  recvbuf.begin() + static_cast<std::ptrdiff_t>(rdispl[static_cast<std::size_t>(rank_)]));

        switch (alltoall_algo_) {
        case AlltoallAlgo::linear:
            // Post everything, then drain in arrival order: the "custom
            // p2p" flavor.
            for (int r = 0; r < p; ++r)
                if (r != rank_) send_block(r);
            for (int r = 0; r < p; ++r)
                if (r != rank_) recv_block(any_source);
            break;
        case AlltoallAlgo::pairwise:
            // Pairwise exchange: structured rounds, one partner at a time.
            for (int step = 1; step < p; ++step) {
                int dst = (rank_ + step) % p;
                int src = (rank_ - step + p) % p;
                send_block(dst);
                recv_block(src);
            }
            break;
        case AlltoallAlgo::bruck:
            BEATNIK_ASSERT(false, "unreachable: dispatched above");
            break;
        }
        // Aliased blocks point into the caller's sendbuf; hold every rank
        // here until all reads have finished.
        if (any_alias) barrier();
        return recvbuf;
    }

    /// Inclusive prefix reduction: rank r returns op over ranks 0..r.
    /// Linear chain (prefix order is inherently sequential; the chain is
    /// also what netsim's analytic model assumes).
    template <Transferable T, class Op>
    [[nodiscard]] T scan_value(T value, Op op) {
        const int tag = next_collective_tag(kTagScan);
        if (rank_ > 0) {
            Message m = recv_msg(rank_ - 1, tag);
            BEATNIK_REQUIRE(m.status.bytes == sizeof(T), "scan: message is not a single element");
            value = op(m.view<T>().front(), value);
        }
        if (rank_ + 1 < size()) {
            post_typed(std::span<const T>(&value, 1), rank_ + 1, tag);
        }
        return value;
    }

    /// Exclusive prefix reduction: rank 0 returns \p identity; rank r > 0
    /// returns op over ranks 0..r-1. The workhorse for computing global
    /// offsets of variable-size per-rank data (e.g. particle ids).
    template <Transferable T, class Op>
    [[nodiscard]] T exscan_value(T value, Op op, T identity) {
        const int tag = next_collective_tag(kTagScan);
        T prefix = identity;
        if (rank_ > 0) {
            Message m = recv_msg(rank_ - 1, tag);
            BEATNIK_REQUIRE(m.status.bytes == sizeof(T), "exscan: message is not a single element");
            prefix = m.view<T>().front();
        }
        if (rank_ + 1 < size()) {
            T total = op(prefix, value);
            post_typed(std::span<const T>(&total, 1), rank_ + 1, tag);
        }
        return prefix;
    }

    // -------------------------------------------------------------- split

    /// Partition the communicator by \p color; ranks with equal color form
    /// a new communicator ordered by (key, old rank). Must be called by all
    /// ranks. Mirrors MPI_Comm_split.
    [[nodiscard]] Communicator split(int color, int key);

    /// Duplicate this communicator (fresh id / tag space).
    [[nodiscard]] Communicator dup() { return split(0, rank_); }

    /// Allocate the next persistent-plan tag on this communicator (see
    /// comm/types.hpp tag bands). Plans must be built collectively in the
    /// same order on every rank — the per-instance counter stays in
    /// lockstep exactly like the collective tag sequence, so every rank
    /// derives the same tag for the same plan.
    [[nodiscard]] int new_plan_tag() { return tags::plan_seq(plan_seq_++); }

    /// Sequence-band plan tags this communicator has handed out so far
    /// (leak/exhaustion checks: the deprecated fixed-stream halo wrappers
    /// must never advance this).
    [[nodiscard]] int plan_tags_used() const { return plan_seq_; }

    /// Context (world) rank of communicator rank \p r.
    [[nodiscard]] int world_rank_of(int r) const {
        check_peer(r);
        return world_ranks_[static_cast<std::size_t>(r)];
    }

    [[nodiscard]] int comm_id() const { return comm_id_; }

private:
    static constexpr int kUserTagLimit = tags::user_limit;
    static constexpr int kTagBarrier = 0;
    static constexpr int kTagBcast = 1;
    static constexpr int kTagReduce = 2;
    static constexpr int kTagAllreduce = 3;
    static constexpr int kTagGather = 4;
    static constexpr int kTagGatherv = 5;
    static constexpr int kTagScatter = 6;
    static constexpr int kTagAllgather = 7;
    static constexpr int kTagAllgatherv = 8;
    static constexpr int kTagAlltoall = 9;
    static constexpr int kTagAlltoallv = 10;
    static constexpr int kTagSplit = 11;
    static constexpr int kTagScan = 12;
    static constexpr int kNumCollectiveKinds = 16;
    /// Collective sequence numbers live in the reserved band above
    /// tags::collective_base; this is how many fit before an int tag
    /// overflows (about 132 million collectives per communicator instance).
    static constexpr int kMaxCollectiveSeq =
        (std::numeric_limits<int>::max() - tags::collective_base) / kNumCollectiveKinds;

    void check_peer(int r) const {
        BEATNIK_REQUIRE(r >= 0 && r < size(), "peer rank out of range");
    }

    /// The plan verifier when its counters are trusted (armed now and the
    /// context was created armed); nullptr otherwise. One relaxed atomic
    /// load when disabled.
    [[nodiscard]] plancheck::ContextState* pcheck() const {
        if (!plancheck::enabled()) return nullptr;
        plancheck::ContextState* cs = &ctx_->plancheck_state();
        return cs->active() ? cs : nullptr;
    }
    static void check_user_tag(int tag) {
        BEATNIK_REQUIRE(tag >= 0 && tag < kUserTagLimit, "user tag out of range");
    }

    /// Collectives consume a per-communicator sequence number so that
    /// back-to-back collectives never confuse each other's messages.
    /// All ranks call collectives in the same order (MPI contract), so the
    /// per-instance counter stays in lockstep across ranks. The sequence
    /// throws on exhaustion instead of silently wrapping into tag values
    /// that could still be pending (the old 16-bit counter wrapped after
    /// 65536 collectives).
    int next_collective_tag(int kind) {
        if (collective_seq_ >= kMaxCollectiveSeq) {
            throw CommError(
                "collective tag space exhausted: this communicator instance has issued " +
                std::to_string(collective_seq_) +
                " collectives; dup() it to get a fresh tag space");
        }
        return tags::collective_base + collective_seq_++ * kNumCollectiveKinds + kind;
    }

    /// Internal typed send used by collectives: same delivery path as
    /// send(), but allowed to use tags above the user-tag limit.
    template <Transferable T>
    void post_typed(std::span<const T> data, int dest, int tag) {
        check_peer(dest);
        post_bytes(std::as_bytes(data), dest, tag);
    }

    void post_bytes(std::span<const std::byte> data, int dest, int tag) {
        post_payload(Payload::copy_of(data), dest, tag);
    }

    /// The one place messages actually leave a rank: delivers a handle to
    /// an already-published buffer into the destination mailbox (a refcount
    /// bump, no byte copy) and records the transfer in the context trace.
    void post_payload(Payload payload, int dest, int tag) {
        if (Trace* t = ctx_->trace()) {
            t->record(world_rank(), world_ranks_[static_cast<std::size_t>(dest)], payload.size(),
                      tag);
        }
        Envelope env;
        env.comm_id = comm_id_;
        env.src = rank_;
        env.tag = tag;
        env.payload = std::move(payload);
        ctx_->mailbox(world_ranks_[static_cast<std::size_t>(dest)]).deliver(std::move(env));
    }

    // GCC 12's -O3 value speculation invents impossible block sizes for
    // the copies below (every received payload is runtime-checked) and
    // emits -Wstringop-overflow false positives; scoped suppression keeps
    // the build warning-clean without weakening any checks.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wstringop-overflow"
#pragma GCC diagnostic ignored "-Wrestrict"
    /// Whether an alltoall with \p block_bytes-sized messages should use
    /// the zero-copy rendezvous path: blocks are published as aliases of
    /// the caller's send buffer (no send copy) and a closing barrier holds
    /// every rank in the collective until all reads have finished. The
    /// decision is uniform across ranks (same block size, same config), so
    /// the closing barrier is collective-safe.
    [[nodiscard]] bool use_rendezvous(std::size_t block_bytes) const {
        return size() > 1 && block_bytes >= ctx_->config().rendezvous_threshold_bytes;
    }

    /// Publish one alltoall block: aliased when the rendezvous path is on,
    /// copied (eager) otherwise.
    template <Transferable T>
    void post_block(std::span<const T> block, int dest, int tag, bool rendezvous) {
        if (rendezvous) {
            check_peer(dest);
            post_payload(Payload::alias_of(std::as_bytes(block)), dest, tag);
        } else {
            post_typed(block, dest, tag);
        }
    }

    /// Concatenate the P alltoall blocks (self block from \p sendbuf, the
    /// rest from the received payloads) into the result, writing each byte
    /// exactly once into reserve()d storage — no value-init memset pass
    /// over the output.
    template <Transferable T>
    std::vector<T> assemble_blocks(std::span<const T> sendbuf, std::size_t n,
                                   std::span<const Payload> parts) {
        const int p = size();
        std::vector<T> recvbuf;
        recvbuf.reserve(n * static_cast<std::size_t>(p));
        for (int r = 0; r < p; ++r) {
            if (r == rank_) {
                auto self = sendbuf.subspan(n * static_cast<std::size_t>(r), n);
                recvbuf.insert(recvbuf.end(), self.begin(), self.end());
            } else {
                auto incoming = parts[static_cast<std::size_t>(r)].view<T>();
                BEATNIK_REQUIRE(incoming.size() == n, "alltoall: block size mismatch");
                recvbuf.insert(recvbuf.end(), incoming.begin(), incoming.end());
            }
        }
        return recvbuf;
    }

    template <Transferable T>
    std::vector<T> alltoall_pairwise(std::span<const T> sendbuf, std::size_t n) {
        const int p = size();
        const int tag = next_collective_tag(kTagAlltoall);
        const bool rendezvous = use_rendezvous(n * sizeof(T));
        std::vector<Payload> parts(static_cast<std::size_t>(p));
        for (int step = 1; step < p; ++step) {
            int dst = (rank_ + step) % p;
            int src = (rank_ - step + p) % p;
            post_block(sendbuf.subspan(n * static_cast<std::size_t>(dst), n), dst, tag,
                       rendezvous);
            Message m = recv_msg(src, tag);
            parts[static_cast<std::size_t>(src)] = std::move(m.payload);
        }
        std::vector<T> recvbuf = assemble_blocks(sendbuf, n, parts);
        // Rendezvous blocks alias the caller's sendbuf; hold every rank
        // here until all of them have finished reading.
        if (rendezvous) barrier();
        return recvbuf;
    }

    template <Transferable T>
    std::vector<T> alltoall_linear(std::span<const T> sendbuf, std::size_t n) {
        const int p = size();
        const int tag = next_collective_tag(kTagAlltoall);
        const bool rendezvous = use_rendezvous(n * sizeof(T));
        std::vector<Payload> parts(static_cast<std::size_t>(p));
        for (int r = 0; r < p; ++r) {
            if (r == rank_) continue;
            post_block(sendbuf.subspan(n * static_cast<std::size_t>(r), n), r, tag, rendezvous);
        }
        for (int r = 0; r < p; ++r) {
            if (r == rank_) continue;
            Message m = recv_msg(any_source, tag);
            parts[static_cast<std::size_t>(m.status.source)] = std::move(m.payload);
        }
        std::vector<T> recvbuf = assemble_blocks(sendbuf, n, parts);
        if (rendezvous) barrier();
        return recvbuf;
    }

    /// Bruck's algorithm: ceil(log2 P) rounds, each moving the blocks whose
    /// (rotated) index has the round's bit set. Trades extra data volume
    /// for far fewer messages — the small-message regime winner.
    template <Transferable T>
    std::vector<T> alltoall_bruck(std::span<const T> sendbuf, std::size_t n) {
        const int p = size();
        const int tag = next_collective_tag(kTagAlltoall);
        // Phase 1: local rotation so block i is the one destined to
        // rank (rank + i) % p. Built by appending into reserve()d storage
        // so the buffer is written exactly once.
        std::vector<T> work;
        work.reserve(n * static_cast<std::size_t>(p));
        for (int i = 0; i < p; ++i) {
            int src_block = (rank_ + i) % p;
            work.insert(work.end(),
                        sendbuf.begin() + static_cast<std::ptrdiff_t>(n) * src_block,
                        sendbuf.begin() + static_cast<std::ptrdiff_t>(n) * (src_block + 1));
        }
        // Phase 2: log-step exchanges.
        std::vector<T> packed;
        for (int dist = 1; dist < p; dist <<= 1) {
            int dst = (rank_ + dist) % p;
            int src = (rank_ - dist + p) % p;
            packed.clear();
            std::vector<int> moved;
            for (int i = 0; i < p; ++i) {
                if ((i & dist) != 0) {
                    moved.push_back(i);
                    packed.insert(packed.end(),
                                  work.begin() + static_cast<std::ptrdiff_t>(n) * i,
                                  work.begin() + static_cast<std::ptrdiff_t>(n) * (i + 1));
                }
            }
            post_typed(std::span<const T>(packed.data(), packed.size()), dst, tag);
            Message m = recv_msg(src, tag);
            auto incoming = m.view<T>();
            BEATNIK_REQUIRE(incoming.size() == packed.size(), "bruck: block set size mismatch");
            std::size_t off = 0;
            for (int i : moved) {
                std::copy(incoming.begin() + static_cast<std::ptrdiff_t>(off),
                          incoming.begin() + static_cast<std::ptrdiff_t>(off + n),
                          work.begin() + static_cast<std::ptrdiff_t>(n) * i);
                off += n;
            }
        }
        // Phase 3: inverse rotation — after phase 2, slot i holds the block
        // sent *to us* by rank (rank - i + p) % p. Walk origins in output
        // order so the result is appended sequentially, never memset first.
        std::vector<T> recvbuf;
        recvbuf.reserve(n * static_cast<std::size_t>(p));
        for (int origin = 0; origin < p; ++origin) {
            int i = (rank_ - origin + p) % p;
            recvbuf.insert(recvbuf.end(),
                           work.begin() + static_cast<std::ptrdiff_t>(n) * i,
                           work.begin() + static_cast<std::ptrdiff_t>(n) * (i + 1));
        }
        return recvbuf;
    }

    /// Bruck's algorithm for per-destination counts: the same ceil(log2 P)
    /// rounds as alltoall_bruck, but each round's message carries a count
    /// header for the blocks it aggregates (sent as a separate message on
    /// the same tag; per-(src, tag) FIFO keeps the pair ordered). Receive
    /// counts fall out of the final block sizes, so no count pre-exchange
    /// is needed.
    template <Transferable T>
    std::vector<T> alltoallv_bruck(std::span<const T> sendbuf,
                                   std::span<const std::size_t> sendcounts,
                                   std::vector<std::size_t>& recvcounts_out) {
        const int p = size();
        const int tag = next_collective_tag(kTagAlltoallv);
        std::vector<std::size_t> sdispl(static_cast<std::size_t>(p) + 1, 0);
        for (int r = 0; r < p; ++r) {
            sdispl[static_cast<std::size_t>(r) + 1] =
                sdispl[static_cast<std::size_t>(r)] + sendcounts[static_cast<std::size_t>(r)];
        }
        // Phase 1: local rotation — slot i holds the block destined to
        // rank (rank + i) % p.
        std::vector<std::vector<T>> slot(static_cast<std::size_t>(p));
        for (int i = 0; i < p; ++i) {
            int dst = (rank_ + i) % p;
            auto block = sendbuf.subspan(sdispl[static_cast<std::size_t>(dst)],
                                         sendcounts[static_cast<std::size_t>(dst)]);
            slot[static_cast<std::size_t>(i)].assign(block.begin(), block.end());
        }
        // Phase 2: log-step exchanges, moving the slots whose index has
        // the round's bit set.
        std::vector<std::size_t> sizes;
        std::vector<T> packed;
        for (int dist = 1; dist < p; dist <<= 1) {
            int dst = (rank_ + dist) % p;
            int src = (rank_ - dist + p) % p;
            sizes.clear();
            packed.clear();
            for (int i = 0; i < p; ++i) {
                if ((i & dist) == 0) continue;
                const auto& s = slot[static_cast<std::size_t>(i)];
                sizes.push_back(s.size());
                packed.insert(packed.end(), s.begin(), s.end());
            }
            post_typed(std::span<const std::size_t>(sizes), dst, tag);
            post_typed(std::span<const T>(packed), dst, tag);
            Message msz = recv_msg(src, tag);
            Message mdat = recv_msg(src, tag);
            auto insz = msz.view<std::size_t>();
            auto indata = mdat.view<T>();
            BEATNIK_REQUIRE(insz.size() == sizes.size(), "bruckv: count header size mismatch");
            std::size_t off = 0;
            std::size_t si = 0;
            for (int i = 0; i < p; ++i) {
                if ((i & dist) == 0) continue;
                std::size_t n = insz[si++];
                BEATNIK_REQUIRE(off + n <= indata.size(), "bruckv: block set overruns payload");
                slot[static_cast<std::size_t>(i)].assign(
                    indata.begin() + static_cast<std::ptrdiff_t>(off),
                    indata.begin() + static_cast<std::ptrdiff_t>(off + n));
                off += n;
            }
            BEATNIK_REQUIRE(off == indata.size(), "bruckv: payload not fully consumed");
        }
        // Phase 3: inverse rotation — slot i now holds the block sent to
        // us by rank (rank - i + p) % p; emit in source-rank order.
        recvcounts_out.assign(static_cast<std::size_t>(p), 0);
        std::size_t total = 0;
        for (const auto& s : slot) total += s.size();
        std::vector<T> recvbuf;
        recvbuf.reserve(total);
        for (int origin = 0; origin < p; ++origin) {
            const auto& s = slot[static_cast<std::size_t>((rank_ - origin + p) % p)];
            recvcounts_out[static_cast<std::size_t>(origin)] = s.size();
            recvbuf.insert(recvbuf.end(), s.begin(), s.end());
        }
        return recvbuf;
    }
#pragma GCC diagnostic pop

    Context* ctx_;
    int comm_id_;
    int rank_;
    std::vector<int> world_ranks_;
    AlltoallAlgo alltoall_algo_;
    int collective_seq_ = 0;
    int plan_seq_ = 0;
};

} // namespace beatnik::comm
