/// \file types.hpp
/// \brief Shared message-passing vocabulary: wildcards, status, reduction ops.
#pragma once

#include <algorithm>
#include <cstddef>

namespace beatnik::comm {

/// Wildcard source rank for receives (matches any sender).
inline constexpr int any_source = -1;
/// Wildcard tag for receives (matches any tag).
inline constexpr int any_tag = -1;

/// Outcome of a completed receive.
struct Status {
    int source = any_source;      ///< Rank (within the communicator) that sent the message.
    int tag = any_tag;            ///< Tag the message was sent with.
    std::size_t bytes = 0;        ///< Payload size in bytes.
};

/// Element-wise reduction operators for reduce/allreduce/scan.
/// Modeled as stateless functors so they inline into the reduction loops.
namespace op {

struct Sum {
    template <class T> T operator()(const T& a, const T& b) const { return a + b; }
};
struct Prod {
    template <class T> T operator()(const T& a, const T& b) const { return a * b; }
};
struct Max {
    template <class T> T operator()(const T& a, const T& b) const { return std::max(a, b); }
};
struct Min {
    template <class T> T operator()(const T& a, const T& b) const { return std::min(a, b); }
};
struct LogicalAnd {
    template <class T> T operator()(const T& a, const T& b) const { return a && b; }
};
struct LogicalOr {
    template <class T> T operator()(const T& a, const T& b) const { return a || b; }
};

} // namespace op

/// Algorithm used by all-to-all style exchanges. The choice changes the
/// number and size of point-to-point messages — exactly the effect the
/// paper's heFFTe `AllToAll` knob (Table 1 / Fig. 9) exposes.
enum class AlltoallAlgo {
    pairwise,   ///< P-1 rounds of ring-offset sendrecv (large-message friendly).
    linear,     ///< post all isends/irecvs, then wait (what heFFTe's p2p path does).
    bruck,      ///< log2(P) rounds with message aggregation (small-message friendly).
};

} // namespace beatnik::comm
