/// \file types.hpp
/// \brief Shared message-passing vocabulary: wildcards, payload buffers,
/// status, reduction ops.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <limits>
#include <memory>
#include <span>
#include <type_traits>

#include "base/error.hpp"

namespace beatnik::comm {

/// Wildcard source rank for receives (matches any sender).
inline constexpr int any_source = -1;
/// Wildcard tag for receives (matches any tag).
inline constexpr int any_tag = -1;

/// Tag-space layout. The int tag space is split into three disjoint bands
/// so the three kinds of traffic provably cannot collide:
///
///   [0, user_limit)                  caller-owned point-to-point tags
///   [plan_base, plan_limit)          persistent comm::Plan channels
///   [collective_base, INT_MAX]       per-communicator collective sequence
///
/// The plan band is further subdivided: halo plans use a fixed
/// (direction, stream) encoding so that the same field shape always maps
/// to the same channels, while every other plan (reshape, migrate, ...)
/// draws a fresh tag from the per-communicator plan sequence
/// (Communicator::new_plan_tag, allocated in collective build order).
namespace tags {

/// User p2p tags live in [0, user_limit).
inline constexpr int user_limit = 1 << 24;

/// Persistent-plan channels live in [plan_base, plan_limit).
inline constexpr int plan_base = user_limit;
inline constexpr int plan_limit = 1 << 25;

/// Halo sub-band: 16 tags per stream (8 directions, room to spare).
inline constexpr int halo_base = plan_base;
inline constexpr int halo_max_streams = 1 << 16;
inline constexpr int halo_limit = halo_base + halo_max_streams * 16;

/// Sequence-allocated plan tags (reshape, migrate, user plans).
inline constexpr int plan_seq_base = halo_limit;
inline constexpr int plan_seq_count = plan_limit - plan_seq_base;

/// Collective sequence tags live in [collective_base, INT_MAX].
inline constexpr int collective_base = 1 << 25;

// Pin the band boundaries: ordered, disjoint, non-empty.
static_assert(0 < user_limit);
static_assert(user_limit == plan_base);
static_assert(halo_base == plan_base);
static_assert(halo_limit == plan_seq_base);
static_assert(plan_seq_base < plan_limit);
static_assert(plan_limit == collective_base);
static_assert(collective_base < std::numeric_limits<int>::max());

[[nodiscard]] constexpr bool is_user(int tag) { return tag >= 0 && tag < user_limit; }
[[nodiscard]] constexpr bool is_plan(int tag) { return tag >= plan_base && tag < plan_limit; }
[[nodiscard]] constexpr bool is_collective(int tag) { return tag >= collective_base; }

/// Tag of the halo-plan channel for direction index \p dir (0..7) and
/// caller stream \p stream.
[[nodiscard]] constexpr int halo(int dir, int stream) {
    BEATNIK_REQUIRE(dir >= 0 && dir < 8, "halo tag: direction index out of range");
    BEATNIK_REQUIRE(stream >= 0 && stream < halo_max_streams, "halo tag: stream out of range");
    return halo_base + stream * 16 + dir;
}

/// Tag of the \p id-th sequence-allocated plan on a communicator.
[[nodiscard]] constexpr int plan_seq(int id) {
    BEATNIK_REQUIRE(id >= 0 && id < plan_seq_count, "plan tag sequence exhausted");
    return plan_seq_base + id;
}

} // namespace tags

/// Outcome of a completed receive.
struct Status {
    int source = any_source;      ///< Rank (within the communicator) that sent the message.
    int tag = any_tag;            ///< Tag the message was sent with.
    std::size_t bytes = 0;        ///< Payload size in bytes.
};

/// Immutable, shareable message buffer.
///
/// A buffered send allocates exactly one of these (the single unavoidable
/// copy out of the sender's buffer); everything downstream — the mailbox,
/// forwarding ranks in tree/ring collectives, and receivers reading through
/// view() — aliases the same bytes via the shared_ptr instead of copying.
/// Copying a Payload is a refcount bump, never a byte copy.
class Payload {
public:
    Payload() = default;

    /// Publish a copy of \p src as an immutable shared buffer. An empty
    /// span produces an empty payload with no allocation.
    static Payload copy_of(std::span<const std::byte> src) {
        Payload p;
        p.size_ = src.size();
        if (!src.empty()) {
            std::shared_ptr<std::byte[]> buf(new std::byte[src.size()]);
            std::memcpy(buf.get(), src.data(), src.size());
            p.data_ = std::move(buf);
        }
        return p;
    }

    /// Publish caller-owned bytes *without copying* (rendezvous protocol).
    /// The caller must keep the bytes alive and unmodified until every
    /// receiver has consumed the message; collectives that use this path
    /// guarantee it with a closing barrier.
    static Payload alias_of(std::span<const std::byte> src) {
        Payload p;
        p.size_ = src.size();
        if (!src.empty()) {
            p.data_ = std::shared_ptr<const std::byte[]>(src.data(), [](const std::byte*) {});
        }
        return p;
    }

    [[nodiscard]] std::size_t size() const { return size_; }
    [[nodiscard]] bool empty() const { return size_ == 0; }

    [[nodiscard]] std::span<const std::byte> bytes() const { return {data_.get(), size_}; }

    /// Zero-copy typed read of the buffer. The payload must hold a whole
    /// number of T elements (the sender transferred typed data byte-wise).
    template <class T>
    [[nodiscard]] std::span<const T> view() const {
        static_assert(std::is_trivially_copyable_v<T>,
                      "payloads hold trivially copyable elements only");
        static_assert(alignof(T) <= __STDCPP_DEFAULT_NEW_ALIGNMENT__,
                      "payload storage only guarantees default new alignment");
        BEATNIK_REQUIRE(size_ % sizeof(T) == 0,
                        "received payload size is not a multiple of element size");
        return {reinterpret_cast<const T*>(data_.get()), size_ / sizeof(T)};
    }

private:
    std::shared_ptr<const std::byte[]> data_;
    std::size_t size_ = 0;
};

/// Element-wise reduction operators for reduce/allreduce/scan.
/// Modeled as stateless functors so they inline into the reduction loops.
namespace op {

struct Sum {
    template <class T> T operator()(const T& a, const T& b) const { return a + b; }
};
struct Prod {
    template <class T> T operator()(const T& a, const T& b) const { return a * b; }
};
struct Max {
    template <class T> T operator()(const T& a, const T& b) const { return std::max(a, b); }
};
struct Min {
    template <class T> T operator()(const T& a, const T& b) const { return std::min(a, b); }
};
struct LogicalAnd {
    template <class T> T operator()(const T& a, const T& b) const { return a && b; }
};
struct LogicalOr {
    template <class T> T operator()(const T& a, const T& b) const { return a || b; }
};

} // namespace op

/// Algorithm used by all-to-all style exchanges. The choice changes the
/// number and size of point-to-point messages — exactly the effect the
/// paper's heFFTe `AllToAll` knob (Table 1 / Fig. 9) exposes.
enum class AlltoallAlgo {
    pairwise,   ///< P-1 rounds of ring-offset sendrecv (large-message friendly).
    linear,     ///< post all isends/irecvs, then wait (what heFFTe's p2p path does).
    bruck,      ///< log2(P) rounds with message aggregation (small-message friendly).
};

} // namespace beatnik::comm
