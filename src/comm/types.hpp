/// \file types.hpp
/// \brief Shared message-passing vocabulary: wildcards, payload buffers,
/// status, reduction ops.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <memory>
#include <span>
#include <type_traits>

#include "base/error.hpp"

namespace beatnik::comm {

/// Wildcard source rank for receives (matches any sender).
inline constexpr int any_source = -1;
/// Wildcard tag for receives (matches any tag).
inline constexpr int any_tag = -1;

/// Outcome of a completed receive.
struct Status {
    int source = any_source;      ///< Rank (within the communicator) that sent the message.
    int tag = any_tag;            ///< Tag the message was sent with.
    std::size_t bytes = 0;        ///< Payload size in bytes.
};

/// Immutable, shareable message buffer.
///
/// A buffered send allocates exactly one of these (the single unavoidable
/// copy out of the sender's buffer); everything downstream — the mailbox,
/// forwarding ranks in tree/ring collectives, and receivers reading through
/// view() — aliases the same bytes via the shared_ptr instead of copying.
/// Copying a Payload is a refcount bump, never a byte copy.
class Payload {
public:
    Payload() = default;

    /// Publish a copy of \p src as an immutable shared buffer. An empty
    /// span produces an empty payload with no allocation.
    static Payload copy_of(std::span<const std::byte> src) {
        Payload p;
        p.size_ = src.size();
        if (!src.empty()) {
            std::shared_ptr<std::byte[]> buf(new std::byte[src.size()]);
            std::memcpy(buf.get(), src.data(), src.size());
            p.data_ = std::move(buf);
        }
        return p;
    }

    /// Publish caller-owned bytes *without copying* (rendezvous protocol).
    /// The caller must keep the bytes alive and unmodified until every
    /// receiver has consumed the message; collectives that use this path
    /// guarantee it with a closing barrier.
    static Payload alias_of(std::span<const std::byte> src) {
        Payload p;
        p.size_ = src.size();
        if (!src.empty()) {
            p.data_ = std::shared_ptr<const std::byte[]>(src.data(), [](const std::byte*) {});
        }
        return p;
    }

    [[nodiscard]] std::size_t size() const { return size_; }
    [[nodiscard]] bool empty() const { return size_ == 0; }

    [[nodiscard]] std::span<const std::byte> bytes() const { return {data_.get(), size_}; }

    /// Zero-copy typed read of the buffer. The payload must hold a whole
    /// number of T elements (the sender transferred typed data byte-wise).
    template <class T>
    [[nodiscard]] std::span<const T> view() const {
        static_assert(std::is_trivially_copyable_v<T>,
                      "payloads hold trivially copyable elements only");
        static_assert(alignof(T) <= __STDCPP_DEFAULT_NEW_ALIGNMENT__,
                      "payload storage only guarantees default new alignment");
        BEATNIK_REQUIRE(size_ % sizeof(T) == 0,
                        "received payload size is not a multiple of element size");
        return {reinterpret_cast<const T*>(data_.get()), size_ / sizeof(T)};
    }

private:
    std::shared_ptr<const std::byte[]> data_;
    std::size_t size_ = 0;
};

/// Element-wise reduction operators for reduce/allreduce/scan.
/// Modeled as stateless functors so they inline into the reduction loops.
namespace op {

struct Sum {
    template <class T> T operator()(const T& a, const T& b) const { return a + b; }
};
struct Prod {
    template <class T> T operator()(const T& a, const T& b) const { return a * b; }
};
struct Max {
    template <class T> T operator()(const T& a, const T& b) const { return std::max(a, b); }
};
struct Min {
    template <class T> T operator()(const T& a, const T& b) const { return std::min(a, b); }
};
struct LogicalAnd {
    template <class T> T operator()(const T& a, const T& b) const { return a && b; }
};
struct LogicalOr {
    template <class T> T operator()(const T& a, const T& b) const { return a || b; }
};

} // namespace op

/// Algorithm used by all-to-all style exchanges. The choice changes the
/// number and size of point-to-point messages — exactly the effect the
/// paper's heFFTe `AllToAll` knob (Table 1 / Fig. 9) exposes.
enum class AlltoallAlgo {
    pairwise,   ///< P-1 rounds of ring-offset sendrecv (large-message friendly).
    linear,     ///< post all isends/irecvs, then wait (what heFFTe's p2p path does).
    bruck,      ///< log2(P) rounds with message aggregation (small-message friendly).
};

} // namespace beatnik::comm
