/// \file trace.hpp
/// \brief Message tracing: records every point-to-point transfer so that
/// communication schedules of *real* executions can be replayed through the
/// netsim performance model (see src/netsim).
///
/// Records carry a monotonic timestamp from the telemetry clock
/// (telemetry::now_ns()), so the same recording that netsim replays also
/// lines up with the Perfetto span timeline — measured vs modeled per
/// phase, off one clock.
///
/// Recording is routed through per-thread logs: the hot path (`record()`,
/// called on every plan publish) takes only the calling thread's own
/// uncontended mutex, never a global one shared by all rank threads.
/// `snapshot()` merges the logs and sorts by timestamp.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <telemetry/telemetry.hpp>
#include <utility>
#include <vector>

namespace beatnik::comm {

/// One recorded point-to-point transfer, in world-rank coordinates.
struct TraceRecord {
    int src_world = 0;
    int dst_world = 0;
    std::size_t bytes = 0;
    int tag = 0;
    std::uint32_t phase = 0;    ///< User-advanced phase counter (e.g. "reshape 2").
    std::uint64_t t_ns = 0;     ///< telemetry::now_ns() at record time.
};

/// Thread-safe append-only trace shared by all ranks of a Context.
class Trace {
public:
    /// Record one transfer. Called from sender threads; appends to the
    /// calling thread's own log (uncontended in steady state).
    void record(int src_world, int dst_world, std::size_t bytes, int tag) {
        ThreadLog& log = local();
        std::lock_guard lock(log.mu);
        log.records.push_back({src_world, dst_world, bytes, tag,
                               phase_.load(std::memory_order_relaxed),
                               telemetry::now_ns()});
    }

    /// Advance the phase label attached to subsequent records. Typically
    /// called between communication stages (collectively or by one rank —
    /// phases are only labels, not synchronization).
    void set_phase(std::uint32_t phase) {
        phase_.store(phase, std::memory_order_relaxed);
    }

    /// Merge all per-thread logs, ordered by record timestamp.
    [[nodiscard]] std::vector<TraceRecord> snapshot() const {
        std::vector<TraceRecord> out;
        {
            std::lock_guard lock(logs_mu_);
            for (const auto& log : logs_) {
                std::lock_guard llock(log->mu);
                out.insert(out.end(), log->records.begin(), log->records.end());
            }
        }
        std::stable_sort(out.begin(), out.end(),
                         [](const TraceRecord& a, const TraceRecord& b) {
                             return a.t_ns < b.t_ns;
                         });
        return out;
    }

    void clear() {
        std::lock_guard lock(logs_mu_);
        for (const auto& log : logs_) {
            std::lock_guard llock(log->mu);
            log->records.clear();
        }
        phase_.store(0, std::memory_order_relaxed);
    }

    [[nodiscard]] std::size_t size() const {
        std::lock_guard lock(logs_mu_);
        std::size_t n = 0;
        for (const auto& log : logs_) {
            std::lock_guard llock(log->mu);
            n += log->records.size();
        }
        return n;
    }

private:
    struct ThreadLog {
        std::mutex mu; // record vs snapshot/clear; uncontended on the hot path
        std::vector<TraceRecord> records;
    };

    /// The calling thread's log for *this* Trace. Cached per thread, keyed
    /// by the Trace's process-unique id (not its address, which a later
    /// Trace could reuse). Stale cache entries for destroyed Traces are
    /// never dereferenced: their ids never match again.
    ThreadLog& local() {
        thread_local std::vector<std::pair<std::uint64_t, ThreadLog*>> cache;
        for (auto& [id, log] : cache)
            if (id == id_) return *log;
        std::lock_guard lock(logs_mu_);
        logs_.push_back(std::make_unique<ThreadLog>());
        cache.emplace_back(id_, logs_.back().get());
        return *logs_.back();
    }

    static std::uint64_t next_id() {
        static std::atomic<std::uint64_t> n{1};
        return n.fetch_add(1, std::memory_order_relaxed);
    }

    const std::uint64_t id_ = next_id();
    mutable std::mutex logs_mu_;
    std::vector<std::unique_ptr<ThreadLog>> logs_;
    std::atomic<std::uint32_t> phase_{0};
};

} // namespace beatnik::comm
