/// \file trace.hpp
/// \brief Message tracing: records every point-to-point transfer so that
/// communication schedules of *real* executions can be replayed through the
/// netsim performance model (see src/netsim).
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace beatnik::comm {

/// One recorded point-to-point transfer, in world-rank coordinates.
struct TraceRecord {
    int src_world = 0;
    int dst_world = 0;
    std::size_t bytes = 0;
    int tag = 0;
    std::uint32_t phase = 0;   ///< User-advanced phase counter (e.g. "reshape 2").
};

/// Thread-safe append-only trace shared by all ranks of a Context.
class Trace {
public:
    /// Record one transfer. Called from sender threads.
    void record(int src_world, int dst_world, std::size_t bytes, int tag) {
        std::lock_guard lock(mutex_);
        records_.push_back({src_world, dst_world, bytes, tag, phase_});
    }

    /// Advance the phase label attached to subsequent records. Typically
    /// called between communication stages (collectively or by one rank —
    /// phases are only labels, not synchronization).
    void set_phase(std::uint32_t phase) {
        std::lock_guard lock(mutex_);
        phase_ = phase;
    }

    /// Copy out everything recorded so far.
    [[nodiscard]] std::vector<TraceRecord> snapshot() const {
        std::lock_guard lock(mutex_);
        return records_;
    }

    void clear() {
        std::lock_guard lock(mutex_);
        records_.clear();
        phase_ = 0;
    }

    [[nodiscard]] std::size_t size() const {
        std::lock_guard lock(mutex_);
        return records_.size();
    }

private:
    mutable std::mutex mutex_;
    std::vector<TraceRecord> records_;
    std::uint32_t phase_ = 0;
};

} // namespace beatnik::comm
