// Telemetry allocation-discipline tests, verified with a per-thread
// counting global allocator (this TU replaces operator new/delete for
// this test binary only, like test_plan.cpp):
//   - disarmed hooks are allocation-free every single time — the single
//     enabled() branch must not touch the heap;
//   - armed, steady-state recording is allocation-free after one warmup
//     crossing (track registration and arena sizing happen at arm/first
//     use, never on the hot path).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <new>

#include "telemetry/metrics.hpp"
#include "telemetry/telemetry.hpp"

namespace tel = beatnik::telemetry;

// The replacement operators pair malloc-family allocation with free();
// GCC's heuristic cannot see through the replacement and reports
// mismatched new/delete at every inlined call site in this TU.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

namespace {
/// Allocations performed by the current thread since start-up. Telemetry
/// hook crossings must not advance this counter.
thread_local std::uint64_t t_allocs = 0;
} // namespace

void* operator new(std::size_t n) {
    ++t_allocs;
    if (void* p = std::malloc(n ? n : 1)) return p;
    throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, std::align_val_t al) {
    ++t_allocs;
    const std::size_t a = static_cast<std::size_t>(al);
    const std::size_t rounded = (n + a - 1) / a * a;
    if (void* p = std::aligned_alloc(a, rounded ? rounded : a)) return p;
    throw std::bad_alloc();
}
void* operator new[](std::size_t n, std::align_val_t al) { return ::operator new(n, al); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace {

/// One representative crossing of every hook class: a trace span, a
/// metrics phase scope, and a direct metric add.
void cross_hooks(tel::MetricSet* ms) {
    static const tel::Phase ph{"alloc/phase"};
    static const int id = tel::metric_id("alloc/direct");
    {
        tel::Scope span("alloc/span", 1, 2);
        tel::PhaseScope scope(ph);
    }
    if (ms) ms->add(id, 0.5);
}

TEST(TelemetryAlloc, DisarmedHooksNeverAllocate) {
    tel::disarm();
    cross_hooks(nullptr); // intern the names outside the measured window
    const std::uint64_t before = t_allocs;
    for (int i = 0; i < 1000; ++i) cross_hooks(nullptr);
    EXPECT_EQ(t_allocs - before, 0u)
        << "disabled telemetry hooks allocated on the hot path";
}

TEST(TelemetryAlloc, ArmedSteadyStateIsAllocationFree) {
    tel::Config cfg;
    cfg.track_capacity = 1 << 12;
    tel::Registry::instance().arm(cfg);

    // Warmup: registers this thread's track, sizes the MetricSet arrays,
    // interns the names. All one-time costs by design.
    tel::MetricSet ms;
    tel::ScopedMetricSet bind(&ms);
    for (int i = 0; i < 4; ++i) cross_hooks(&ms);
    ms.commit_step();

    const std::uint64_t before = t_allocs;
    for (int i = 0; i < 500; ++i) cross_hooks(&ms);
    ms.commit_step();
    EXPECT_EQ(t_allocs - before, 0u)
        << "armed telemetry allocated in steady state";

    // Overflowing the arena must count drops, not grow it.
    const std::uint64_t before_overflow = t_allocs;
    for (int i = 0; i < 2000; ++i) cross_hooks(&ms);
    EXPECT_EQ(t_allocs - before_overflow, 0u)
        << "a full track arena allocated instead of dropping";
    EXPECT_GT(tel::thread_track().dropped(), 0u);

    tel::disarm();
}

} // namespace
