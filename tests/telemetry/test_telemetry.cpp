// Telemetry layer tests: trace well-formedness (balanced spans, per-track
// monotonic timestamps, matched flow halves), device-queue tracks and event
// flows, the cross-rank metrics rollup against a hand-computed reference,
// and — on Linux — forked shm processes writing per-process trace files
// that scripts/merge_traces.py combines into one valid Perfetto file.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "comm/plan.hpp"
#include "par/device/device.hpp"
#include "telemetry/export.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/telemetry.hpp"

#if defined(__linux__)
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace bc = beatnik::comm;
namespace tel = beatnik::telemetry;

namespace {

namespace fs = std::filesystem;

/// Re-arm with a fresh recording for a test, restoring disarmed state via
/// the destructor so suites that run after us see the default-off world.
class ScopedTrace {
public:
    explicit ScopedTrace(tel::Config cfg = {}) {
        tel::Registry::instance().arm(cfg);
        tel::Registry::instance().clear();
    }
    ~ScopedTrace() { tel::disarm(); }
};

/// Walk one track's events: EXPECT balanced, name-matched B/E nesting and
/// non-decreasing timestamps. Returns the number of completed spans.
int check_track_well_formed(const tel::TrackRecorder& t) {
    std::vector<const char*> stack;
    std::uint64_t last_ts = 0;
    int spans = 0;
    for (std::size_t i = 0; i < t.size(); ++i) {
        const tel::Event& e = t[i];
        EXPECT_GE(e.ts_ns, last_ts) << "track " << t.name() << " event " << i
                                    << " (" << e.name << ") goes backwards";
        last_ts = e.ts_ns;
        if (e.kind == tel::EventKind::begin) {
            stack.push_back(e.name);
        } else if (e.kind == tel::EventKind::end) {
            if (stack.empty()) {
                ADD_FAILURE() << "track " << t.name() << ": E " << e.name
                              << " on empty stack";
                return spans;
            }
            EXPECT_STREQ(stack.back(), e.name) << "track " << t.name();
            stack.pop_back();
            ++spans;
        }
    }
    EXPECT_TRUE(stack.empty()) << "track " << t.name() << " has "
                               << stack.size() << " unclosed span(s)";
    return spans;
}

/// All flow ids of one kind with the given flow name, across all tracks.
std::multiset<std::uint64_t> flow_ids(const char* name, tel::EventKind kind) {
    std::multiset<std::uint64_t> ids;
    for (const tel::TrackRecorder* t : tel::Registry::instance().tracks()) {
        for (std::size_t i = 0; i < t->size(); ++i) {
            const tel::Event& e = (*t)[i];
            if (e.kind == kind && std::strcmp(e.name, name) == 0) ids.insert(e.flow);
        }
    }
    return ids;
}

void run_ring(int nranks, int iters) {
    bc::ContextConfig cfg;
    cfg.recv_timeout_seconds = 20.0;
    bc::Context::run(
        nranks,
        [&](bc::Communicator& comm) {
            constexpr std::size_t kBytes = 256;
            const int next = (comm.rank() + 1) % comm.size();
            const int prev = (comm.rank() + comm.size() - 1) % comm.size();
            const int tag = comm.new_plan_tag();
            auto b = bc::Plan::builder(comm);
            int s = b.add_send(next, tag, kBytes);
            int r = b.add_recv(prev, tag, kBytes);
            auto plan = b.build();
            for (int it = 0; it < iters; ++it) {
                plan.start();
                auto buf = plan.send_buffer(s, kBytes);
                std::memset(buf.data(), it + 1, buf.size());
                plan.publish(s);
                plan.wait();
                plan.release_recv(r);
            }
        },
        cfg);
}

// ------------------------------------------------------------ well-formed

TEST(Trace, DisabledHooksRecordNothing) {
    tel::disarm();
    auto& t = tel::thread_track();
    const std::size_t before = t.size();
    { tel::Scope span("should-not-appear"); }
    {
        static const tel::Phase ph{"should-not-appear-either"};
        tel::PhaseScope scope(ph);
    }
    EXPECT_EQ(t.size(), before);
}

TEST(Trace, RingPlanTraceIsWellFormedWithMatchedPlanFlows) {
    ScopedTrace trace;
    run_ring(4, 3);
    tel::disarm(); // quiescent: threads joined

    int rank_tracks = 0;
    int total_spans = 0;
    for (const tel::TrackRecorder* t : tel::Registry::instance().tracks()) {
        if (t->size() == 0) continue;
        total_spans += check_track_well_formed(*t);
        if (t->name().rfind("rank ", 0) == 0) ++rank_tracks;
        EXPECT_EQ(t->dropped(), 0u) << t->name();
    }
    EXPECT_EQ(rank_tracks, 4) << "Context::run names one track per rank-thread";
    EXPECT_GT(total_spans, 0);

    // Every publish's flow tail has exactly one consume head and vice
    // versa: 4 ranks x 3 iters = 12 arrows.
    auto starts = flow_ids("plan", tel::EventKind::flow_begin);
    auto ends = flow_ids("plan", tel::EventKind::flow_end);
    EXPECT_EQ(starts.size(), 12u);
    EXPECT_EQ(starts, ends) << "plan flow ids must pair across publish/consume";
}

TEST(Trace, ReArmingResetsTheRecording) {
    ScopedTrace trace;
    run_ring(2, 1);
    tel::disarm();
    std::size_t first = 0;
    for (const tel::TrackRecorder* t : tel::Registry::instance().tracks())
        first += t->size();
    EXPECT_GT(first, 0u);

    tel::Registry::instance().arm({});
    tel::disarm();
    std::size_t after = 0;
    for (const tel::TrackRecorder* t : tel::Registry::instance().tracks())
        after += t->size();
    EXPECT_EQ(after, 0u);
}

TEST(Trace, FullTrackCountsDropsAndStaysWellFormed) {
    tel::Config cfg;
    cfg.track_capacity = 8; // tiny arena: force drops
    ScopedTrace trace(cfg);
    run_ring(2, 20);
    tel::disarm();

    std::uint64_t dropped = 0;
    for (const tel::TrackRecorder* t : tel::Registry::instance().tracks()) {
        dropped += t->dropped();
        EXPECT_LE(t->size(), 8u);
    }
    EXPECT_GT(dropped, 0u);

    // The exporter must still emit balanced JSON (synthetic closes).
    std::ostringstream os;
    tel::write_chrome_trace(os, tel::Registry::instance().tracks(), 42);
    const std::string json = os.str();
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("telemetry.dropped"), std::string::npos);
}

// ------------------------------------------------------- device queue side

TEST(Trace, DeviceQueuesGetTracksTaskSpansAndEventFlows) {
    ScopedTrace trace;
    {
        beatnik::par::device::Queue qa("tel-a");
        beatnik::par::device::Queue qb("tel-b");
        std::vector<int> data(1024, 0);
        int* p = data.data();
        qa.parallel_for(data.size(), [p](std::size_t i) { p[i] = static_cast<int>(i); });
        beatnik::par::device::Event ev;
        qa.record_event_into(ev);
        qb.wait_event(ev);
        qb.parallel_for(data.size(), [p](std::size_t i) { p[i] += 1; });
        qb.fence(); // devcheck-style drain before reading
        qa.fence();
        for (std::size_t i = 0; i < data.size(); ++i)
            ASSERT_EQ(data[i], static_cast<int>(i) + 1);
    }
    tel::disarm();

    int queue_tracks = 0;
    bool saw_task = false;
    for (const tel::TrackRecorder* t : tel::Registry::instance().tracks()) {
        if (t->kind() != tel::TrackKind::queue || t->size() == 0) continue;
        ++queue_tracks;
        check_track_well_formed(*t);
        for (std::size_t i = 0; i < t->size(); ++i)
            if ((*t)[i].kind == tel::EventKind::begin &&
                std::strcmp((*t)[i].name, "task") == 0)
                saw_task = true;
    }
    EXPECT_GE(queue_tracks, 2) << "each named Queue registers its own track";
    EXPECT_TRUE(saw_task) << "kernel dispatch emits a 'task' span";

    auto starts = flow_ids("event", tel::EventKind::flow_begin);
    auto ends = flow_ids("event", tel::EventKind::flow_end);
    EXPECT_GE(starts.size(), 1u) << "record_event_into emits a flow tail";
    for (std::uint64_t id : ends)
        EXPECT_TRUE(starts.count(id) > 0)
            << "event-flow head without a matching record tail";
}

// ------------------------------------------------------------------ metrics

TEST(Metrics, RollupMatchesSerialReference) {
    tel::MetricsRegistry reg;
    const int id = tel::metric_id("unit/rollup-phase");

    // Three "ranks" with per-step means 1.0, 3.0 and 10.0 seconds.
    auto mk = [&](double per_step, std::uint64_t steps) {
        auto ms = std::make_shared<tel::MetricSet>();
        for (std::uint64_t s = 0; s < steps; ++s) {
            ms->add(id, per_step);
            ms->commit_step();
        }
        return ms;
    };
    reg.register_set(0, mk(1.0, 4));
    reg.register_set(1, mk(3.0, 4));
    reg.register_set(2, mk(10.0, 4));

    bool found = false;
    for (const tel::Rollup& r : reg.rollup()) {
        if (r.name != "unit/rollup-phase") continue;
        found = true;
        EXPECT_EQ(r.ranks, 3);
        EXPECT_EQ(r.steps, 4u);
        EXPECT_DOUBLE_EQ(r.min_s, 1.0);
        EXPECT_DOUBLE_EQ(r.med_s, 3.0);
        EXPECT_DOUBLE_EQ(r.max_s, 10.0);
    }
    EXPECT_TRUE(found);

    // Even rank count: median is the mean of the two middles.
    reg.register_set(3, mk(5.0, 4));
    for (const tel::Rollup& r : reg.rollup()) {
        if (r.name != "unit/rollup-phase") continue;
        EXPECT_DOUBLE_EQ(r.med_s, 4.0);
    }

    std::ostringstream os;
    reg.write_json(os);
    const std::string json = os.str();
    EXPECT_NE(json.find("\"op\": \"unit/rollup-phase\""), std::string::npos);
    EXPECT_NE(json.find("\"algo\": \"telemetry\""), std::string::npos);
}

TEST(Metrics, PhaseScopeAccumulatesOnlyIntoBoundSet) {
    tel::disarm();
    tel::MetricSet ms;
    static const tel::Phase ph{"unit/bound-phase"};
    { tel::PhaseScope unbound(ph); } // no set bound: must be a no-op
    EXPECT_EQ(ms.count("unit/bound-phase"), 0u);
    {
        tel::ScopedMetricSet bind(&ms);
        tel::PhaseScope scope(ph);
    }
    EXPECT_EQ(ms.count("unit/bound-phase"), 1u);
    ms.commit_step();
    EXPECT_EQ(ms.steps(), 1u);
    EXPECT_GE(ms.step_max(ph.id), ms.step_min(ph.id));
}

// --------------------------------------------------------------- artifacts

TEST(Trace, FlushWritesConfiguredTraceFile) {
    const fs::path path = fs::temp_directory_path() / "beatnik_tel_flush.trace.json";
    std::error_code ec;
    fs::remove(path, ec);

    tel::Config cfg;
    cfg.trace_path = path.string();
    ScopedTrace trace(cfg);
    { tel::Scope span("flush-span", 7); }
    EXPECT_TRUE(tel::flush());
    tel::disarm();

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string json((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("flush-span"), std::string::npos);
    fs::remove(path, ec);
}

// ----------------------------------------------- forked shm process merge

#if defined(__linux__)

/// One rank of a two-process shm ring with telemetry armed, writing its
/// per-process trace before _exit (which skips atexit handlers).
int forked_traced_rank(int rank, const std::string& session, const fs::path& trace) {
    try {
        tel::Config tcfg;
        tcfg.trace_path = trace.string();
        tel::Registry::instance().arm(tcfg);
        tel::Registry::instance().clear();
        tel::name_thread_track("rank " + std::to_string(rank));

        bc::ContextConfig cfg;
        cfg.recv_timeout_seconds = 30.0;
        cfg.transport = "shm";
        cfg.shm_session = session;
        bc::Context ctx(2, cfg);
        std::vector<int> identity{0, 1};
        bc::Communicator comm(ctx, /*comm_id=*/0, rank, identity);

        constexpr std::size_t kBytes = 512;
        const int peer = 1 - rank;
        const int tag = comm.new_plan_tag();
        auto b = bc::Plan::builder(comm);
        int s = b.add_send(peer, tag, kBytes);
        int r = b.add_recv(peer, tag, kBytes);
        auto plan = b.build();
        for (int it = 0; it < 4; ++it) {
            plan.start();
            auto buf = plan.send_buffer(s, kBytes);
            std::memset(buf.data(), rank + 1, buf.size());
            plan.publish(s);
            plan.wait();
            plan.release_recv(r);
        }
        return tel::flush() ? 0 : 7;
    } catch (...) {
        return 9;
    }
}

int wait_exit_code(pid_t pid) {
    int status = 0;
    if (::waitpid(pid, &status, 0) != pid) return -1;
    if (WIFEXITED(status)) return WEXITSTATUS(status);
    return -WTERMSIG(status);
}

TEST(Trace, ForkedShmProcessesMergeIntoOneValidFile) {
    // Repo root from this source file's compiled-in path: the merge and
    // check scripts live in <root>/scripts/.
    const fs::path root = fs::path(__FILE__).parent_path().parent_path().parent_path();
    ASSERT_TRUE(fs::exists(root / "scripts" / "merge_traces.py"))
        << "cannot locate repo scripts from " << __FILE__;
    if (std::system("python3 -c 'pass' >/dev/null 2>&1") != 0)
        GTEST_SKIP() << "python3 not available";

    const fs::path dir = fs::temp_directory_path();
    const fs::path t0 = dir / ("beatnik_tel_fork0_" + std::to_string(::getpid()) + ".json");
    const fs::path t1 = dir / ("beatnik_tel_fork1_" + std::to_string(::getpid()) + ".json");
    const fs::path merged = dir / ("beatnik_tel_merged_" + std::to_string(::getpid()) + ".json");
    const std::string session = "gt" + std::to_string(::getpid()) + "-tel";

    pid_t pid0 = ::fork();
    ASSERT_GE(pid0, 0);
    if (pid0 == 0) ::_exit(forked_traced_rank(0, session, t0));
    pid_t pid1 = ::fork();
    ASSERT_GE(pid1, 0);
    if (pid1 == 0) ::_exit(forked_traced_rank(1, session, t1));
    EXPECT_EQ(wait_exit_code(pid0), 0);
    EXPECT_EQ(wait_exit_code(pid1), 0);
    ASSERT_TRUE(fs::exists(t0));
    ASSERT_TRUE(fs::exists(t1));

    // Each per-process file is valid alone, but holds only half of every
    // cross-process plan arrow.
    auto q = [](const fs::path& p) { return "'" + p.string() + "'"; };
    const std::string check = "python3 " + q(root / "scripts" / "check_trace.py");
    EXPECT_EQ(std::system((check + " " + q(t0) + " --allow-open-flows >/dev/null").c_str()), 0);
    EXPECT_EQ(std::system((check + " " + q(t1) + " --allow-open-flows >/dev/null").c_str()), 0);

    // Merged: one valid Perfetto file where both flow halves pair up.
    const std::string merge = "python3 " + q(root / "scripts" / "merge_traces.py") +
                              " -o " + q(merged) + " " + q(t0) + " " + q(t1);
    ASSERT_EQ(std::system((merge + " >/dev/null").c_str()), 0);
    EXPECT_EQ(
        std::system((check + " " + q(merged) + " --require-flow plan >/dev/null").c_str()),
        0);

    std::error_code ec;
    fs::remove(t0, ec);
    fs::remove(t1, ec);
    fs::remove(merged, ec);
}

#endif // __linux__

} // namespace
