// Network simulator tests: determinism, monotonicity, congestion effects,
// collective-vs-p2p crossover, and consistency with analytic costs.
#include <gtest/gtest.h>

#include <mutex>

#include "grid/halo.hpp"
#include "netsim/fft_bridge.hpp"
#include "netsim/machine.hpp"
#include "netsim/profile.hpp"
#include "netsim/simulator.hpp"

namespace bn = beatnik::netsim;
namespace bf = beatnik::fft;

namespace {

bn::Phase p2p_phase(std::vector<bn::Msg> msgs) {
    bn::Phase ph;
    ph.label = "test";
    ph.messages = std::move(msgs);
    return ph;
}

TEST(Simulator, EmptyScheduleHasZeroMakespan) {
    bn::NetworkSimulator sim(bn::MachineModel::lassen(), 4);
    auto res = sim.simulate({});
    EXPECT_DOUBLE_EQ(res.makespan, 0.0);
    EXPECT_EQ(res.total_messages, 0u);
}

TEST(Simulator, ComputeOnlyPhaseTakesMaxComputeTime) {
    bn::NetworkSimulator sim(bn::MachineModel::lassen(), 3);
    bn::Phase ph;
    ph.compute_seconds = {1.0, 3.0, 2.0};
    auto res = sim.simulate({ph});
    EXPECT_DOUBLE_EQ(res.makespan, 3.0);
    EXPECT_DOUBLE_EQ(res.total_compute, 6.0);
    EXPECT_DOUBLE_EQ(res.rank_finish[0], 1.0);
}

TEST(Simulator, SingleMessageCostsLatencyPlusBandwidth) {
    auto m = bn::MachineModel::lassen();
    bn::NetworkSimulator sim(m, 8); // ranks 0 and 7 on different nodes
    constexpr std::size_t bytes = 1 << 20;
    auto res = sim.simulate({p2p_phase({{0, 7, bytes}})});
    double wire = m.inter_latency + static_cast<double>(bytes) / m.inter_bandwidth;
    EXPECT_GT(res.makespan, wire);              // plus overheads
    EXPECT_LT(res.makespan, wire * 3.0);        // but same order
}

TEST(Simulator, IntraNodeIsCheaperThanInterNode) {
    auto m = bn::MachineModel::lassen();
    bn::NetworkSimulator sim(m, 8);
    constexpr std::size_t bytes = 1 << 22;
    auto intra = sim.simulate({p2p_phase({{0, 1, bytes}})}); // same node (4/node)
    auto inter = sim.simulate({p2p_phase({{0, 4, bytes}})}); // across nodes
    EXPECT_LT(intra.makespan, inter.makespan);
}

TEST(Simulator, LocalCopyBytesDelayTheSender) {
    // Algorithm-internal staging (Bruck rotations/pack staging) charges
    // at memory bandwidth before the rank's sends issue.
    auto m = bn::MachineModel::lassen();
    bn::NetworkSimulator sim(m, 2);
    auto ph = p2p_phase({{0, 1, 1 << 20}});
    auto base = sim.simulate({ph});
    ph.local_copy_bytes.assign(2, 1.0e9);
    auto charged = sim.simulate({ph});
    const double expected_extra = 1.0e9 / m.memory_bandwidth;
    EXPECT_NEAR(charged.makespan - base.makespan, expected_extra, 1e-9);
}

TEST(Simulator, BruckLocalCopyBytesCountRotationsAndRoundStaging) {
    // p = 4, block = 100 B: rotations move 2*4 blocks; round dist=1
    // stages blocks {1,3}, round dist=2 stages {2,3} — 4 more. Total 12.
    EXPECT_DOUBLE_EQ(bn::analytic::bruck_local_copy_bytes(4, 100), 1200.0);
    // Non-power-of-two p = 3: rotations 6 blocks; round dist=1 stages
    // {1}, round dist=2 stages {2}. Total 8.
    EXPECT_DOUBLE_EQ(bn::analytic::bruck_local_copy_bytes(3, 100), 800.0);
}

TEST(Simulator, DeterministicAcrossRuns) {
    bn::NetworkSimulator sim(bn::MachineModel::lassen(), 16);
    std::vector<bn::Msg> msgs;
    for (int s = 0; s < 16; ++s) {
        for (int d = 0; d < 16; ++d) {
            if (s != d) msgs.push_back({s, d, 4096});
        }
    }
    auto a = sim.simulate({p2p_phase(msgs)});
    auto b = sim.simulate({p2p_phase(msgs)});
    EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.rank_finish, b.rank_finish);
}

TEST(Simulator, MoreTrafficTakesLonger) {
    bn::NetworkSimulator sim(bn::MachineModel::lassen(), 8);
    auto small = sim.simulate({p2p_phase({{0, 5, 1 << 10}})});
    auto large = sim.simulate({p2p_phase({{0, 5, 1 << 24}})});
    EXPECT_LT(small.makespan, large.makespan);
}

TEST(Simulator, NicSerializesConcurrentSendersOnANode) {
    // Four ranks of node 0 each send 4 MiB off-node simultaneously: the
    // shared NIC must serialize, so makespan is ~4x one transfer's NIC time.
    auto m = bn::MachineModel::lassen();
    bn::NetworkSimulator sim(m, 8);
    constexpr std::size_t bytes = 4 << 20;
    std::vector<bn::Msg> msgs;
    for (int r = 0; r < 4; ++r) msgs.push_back({r, 4 + r, bytes});
    auto res = sim.simulate({p2p_phase(msgs)});
    double one_nic = static_cast<double>(bytes) / m.nic_injection_bandwidth;
    EXPECT_GT(res.makespan, 3.9 * one_nic);
}

TEST(Simulator, PhasesSequence) {
    bn::NetworkSimulator sim(bn::MachineModel::lassen(), 4);
    bn::Phase a = p2p_phase({{0, 1, 1 << 20}});
    bn::Phase b = p2p_phase({{1, 2, 1 << 20}});
    auto once = sim.simulate({a});
    auto twice = sim.simulate({a, b});
    EXPECT_GT(twice.makespan, once.makespan);
}

TEST(Simulator, LoadImbalanceStretchesMakespan) {
    bn::NetworkSimulator sim(bn::MachineModel::lassen(), 4);
    bn::Phase balanced;
    balanced.compute_seconds = {1.0, 1.0, 1.0, 1.0};
    bn::Phase imbalanced;
    imbalanced.compute_seconds = {0.25, 0.25, 0.25, 3.25}; // same total work
    EXPECT_LT(sim.simulate({balanced}).makespan, sim.simulate({imbalanced}).makespan);
}

// --------------------------------------------------- collective crossover

std::vector<bn::Msg> dense_alltoall(int p, std::size_t block_bytes) {
    std::vector<bn::Msg> msgs;
    for (int s = 0; s < p; ++s) {
        for (int d = 0; d < p; ++d) {
            if (s != d) msgs.push_back({s, d, block_bytes});
        }
    }
    return msgs;
}

TEST(Crossover, BuiltinAlltoallWinsAtLargeScaleLosesAtSmall) {
    // The paper's Fig. 9 observation: heFFTe's custom p2p path is faster
    // on few ranks; the MPI builtin (node-aware) wins at scale.
    auto m = bn::MachineModel::lassen();
    auto runtime = [&](int p, bn::PhaseKind kind) {
        // Weak-scaled all-to-all: global volume per rank fixed.
        std::size_t block = (1 << 22) / static_cast<std::size_t>(p);
        bn::Phase ph = p2p_phase(dense_alltoall(p, block));
        ph.kind = kind;
        bn::NetworkSimulator sim(m, p);
        return sim.simulate({ph}).makespan;
    };
    double p2p_small = runtime(8, bn::PhaseKind::p2p);
    double coll_small = runtime(8, bn::PhaseKind::builtin_alltoall);
    double p2p_large = runtime(512, bn::PhaseKind::p2p);
    double coll_large = runtime(512, bn::PhaseKind::builtin_alltoall);
    EXPECT_LT(p2p_small, coll_small) << "custom p2p should win on 8 ranks";
    EXPECT_LT(coll_large, p2p_large) << "builtin alltoall should win on 512 ranks";
}

TEST(Analytic, CostsArePositiveAndScale) {
    auto m = bn::MachineModel::lassen();
    EXPECT_GT(bn::analytic::barrier_cost(m, 2), 0.0);
    EXPECT_LT(bn::analytic::barrier_cost(m, 16), bn::analytic::barrier_cost(m, 1024));
    EXPECT_LT(bn::analytic::bcast_cost(m, 16, 1024), bn::analytic::bcast_cost(m, 16, 1 << 20));
    EXPECT_LT(bn::analytic::allreduce_cost(m, 4, 8), bn::analytic::allreduce_cost(m, 1024, 8));
    EXPECT_LT(bn::analytic::allgather_cost(m, 4, 64), bn::analytic::allgather_cost(m, 64, 64));
    EXPECT_LT(bn::analytic::alltoall_pairwise_cost(m, 8, 4096),
              bn::analytic::alltoall_pairwise_cost(m, 64, 4096));
}

// ------------------------------------------------------------ fft bridge

TEST(FftBridge, SchedulesCarryComputeAndMessages) {
    auto planned = bf::DistributedFFT2D::plan_schedule({64, 64}, {2, 2}, bf::FFTConfig{});
    auto m = bn::MachineModel::lassen();
    auto phases = bn::fft_phases(planned, m, 4, /*transforms=*/2);
    // 3 reshape phases per transform x2 + tail compute.
    ASSERT_EQ(phases.size(), 7u);
    double compute = 0.0;
    std::size_t msgs = 0;
    for (const auto& ph : phases) {
        for (double c : ph.compute_seconds) compute += c;
        msgs += ph.messages.size();
    }
    EXPECT_GT(compute, 0.0);
    EXPECT_GT(msgs, 0u);
    bn::NetworkSimulator sim(m, 4);
    auto res = sim.simulate(phases);
    EXPECT_GT(res.makespan, 0.0);
}

TEST(FftBridge, ExecutablePlanSchedulesReplayThroughTheModel) {
    // Build *executable* halo plans on real rank-threads, export their
    // send schedules, and replay the merged message list through the
    // machine model — the persistent-plan twin of the static
    // plan_schedule path.
    constexpr int kRanks = 4;
    std::vector<beatnik::comm::PlanMsg> all_msgs;
    std::mutex m;
    beatnik::comm::Context::run(kRanks, [&](beatnik::comm::Communicator& comm) {
        beatnik::grid::GlobalMesh2D mesh({0.0, 0.0}, {1.0, 1.0}, {32, 32}, {true, true});
        beatnik::grid::CartTopology2D topo(comm.size(), {2, 2}, {true, true});
        beatnik::grid::LocalGrid2D lg(mesh, topo, comm.rank(), 2);
        beatnik::grid::HaloPlan<double, 3> plan(comm, topo, lg);
        auto sched = plan.send_schedule();
        EXPECT_EQ(sched.size(), 8u);   // fully periodic 2x2: all 8 neighbors exist
        std::lock_guard lock(m);
        all_msgs.insert(all_msgs.end(), sched.begin(), sched.end());
    });
    ASSERT_EQ(all_msgs.size(), 8u * kRanks);
    auto phase = bn::phase_from_plans(std::span<const beatnik::comm::PlanMsg>(all_msgs),
                                      "halo-exchange");
    EXPECT_EQ(phase.kind, bn::PhaseKind::p2p);
    EXPECT_EQ(phase.messages.size(), 8u * kRanks);   // 2x2 periodic: no self messages
    bn::NetworkSimulator sim(bn::MachineModel::lassen(), kRanks);
    auto res = sim.simulate({phase});
    EXPECT_GT(res.makespan, 0.0);
    EXPECT_EQ(res.total_messages, 8u * kRanks);
}

TEST(FftBridge, WeakScalingRuntimeGrowsWithRankCount) {
    // The qualitative Fig. 3 property: fixed per-rank mesh, growing P
    // => growing runtime (all-to-all cost scales with P).
    auto m = bn::MachineModel::lassen();
    auto runtime = [&](int side_ranks) {
        int p = side_ranks * side_ranks;
        std::array<int, 2> global{128 * side_ranks, 128 * side_ranks};
        auto planned = bf::DistributedFFT2D::plan_schedule(global, {side_ranks, side_ranks},
                                                           bf::FFTConfig{});
        bn::NetworkSimulator sim(m, p);
        return sim.simulate(bn::fft_phases(planned, m, p, 6)).makespan;
    };
    double t2 = runtime(2);   // 4 ranks
    double t4 = runtime(4);   // 16 ranks
    double t8 = runtime(8);   // 64 ranks
    EXPECT_LT(t2, t4);
    EXPECT_LT(t4, t8);
}

TEST(Profile, ParsesCalibrateOutputAndProjectsOntoMachine) {
    // The exact shape bench_patterns --calibrate writes.
    const std::string json =
        "{\n"
        "  \"transport\": \"shm\",\n"
        "  \"latency_seconds\": 2.5e-06,\n"
        "  \"bandwidth_bytes_per_second\": 6.0e+09,\n"
        "  \"local_copy_bandwidth_bytes_per_second\": 1.2e+10\n"
        "}\n";
    auto p = bn::parse_profile(json);
    EXPECT_EQ(p.transport, "shm");
    EXPECT_DOUBLE_EQ(p.latency_seconds, 2.5e-6);
    EXPECT_DOUBLE_EQ(p.bandwidth_bytes_per_second, 6.0e9);
    EXPECT_DOUBLE_EQ(p.local_copy_bandwidth_bytes_per_second, 1.2e10);

    auto m = bn::machine_from_profile(p);
    EXPECT_EQ(m.ranks_per_node, 1);
    EXPECT_DOUBLE_EQ(m.inter_latency, 2.5e-6);
    EXPECT_DOUBLE_EQ(m.intra_latency, 2.5e-6);
    EXPECT_DOUBLE_EQ(m.inter_bandwidth, 6.0e9);
    EXPECT_DOUBLE_EQ(m.memory_bandwidth, 1.2e10);
    EXPECT_DOUBLE_EQ(m.incast_factor, 0.0);
    // A calibrated model prices one message as latency + bytes/bandwidth
    // exactly — the invariant the loopback absolute-time gate relies on.
    EXPECT_DOUBLE_EQ(m.wire_time(0, 1, 6'000'000), 2.5e-6 + 1.0e-3);
}

TEST(Profile, MissingRequiredFieldsThrow) {
    EXPECT_THROW((void)bn::parse_profile("{}"), beatnik::Error);
    EXPECT_THROW((void)bn::parse_profile("{\"latency_seconds\": 1e-6}"), beatnik::Error);
}

} // namespace
