// Neighbor-search tests: bin-grid results must match brute force on random
// clouds, plus structural properties (symmetry, radius scaling).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "base/rng.hpp"
#include "search/neighbor_search.hpp"
#include "test_env.hpp"

namespace bs = beatnik::search;

namespace {

std::vector<double> random_cloud(std::size_t n, std::uint64_t seed, double extent = 2.0) {
    std::vector<double> pts(3 * n);
    // `seed` is a per-test stream offset from the env-selected base seed.
    beatnik::SplitMix64 rng(beatnik::test::seed() + seed);
    for (auto& v : pts) v = rng.uniform(-extent, extent);
    return pts;
}

std::multiset<std::pair<std::uint32_t, std::uint32_t>> as_pairs(const bs::NeighborList& list) {
    std::multiset<std::pair<std::uint32_t, std::uint32_t>> pairs;
    for (std::size_t q = 0; q < list.num_queries(); ++q) {
        for (auto s : list.neighbors(q)) pairs.insert({static_cast<std::uint32_t>(q), s});
    }
    return pairs;
}

class BinGridP : public ::testing::TestWithParam<std::tuple<std::size_t, double>> {};

INSTANTIATE_TEST_SUITE_P(Sweep, BinGridP,
                         ::testing::Combine(::testing::Values<std::size_t>(0, 1, 10, 100, 500),
                                            ::testing::Values(0.1, 0.5, 1.5)));

TEST_P(BinGridP, MatchesBruteForceSelfQuery) {
    auto [n, radius] = GetParam();
    auto pts = random_cloud(n, 1000 + n);
    bs::BinGrid3D grid(pts, radius);
    auto fast = grid.query(pts, /*self_offset=*/0);
    auto slow = bs::brute_force_neighbors(pts, pts, radius, /*self_offset=*/0);
    EXPECT_EQ(as_pairs(fast), as_pairs(slow));
}

TEST_P(BinGridP, MatchesBruteForceCrossQuery) {
    auto [n, radius] = GetParam();
    auto pts = random_cloud(n, 2000 + n);
    auto queries = random_cloud(n / 2 + 1, 3000 + n);
    bs::BinGrid3D grid(pts, radius);
    auto fast = grid.query(queries, bs::BinGrid3D::kNoSelf);
    auto slow = bs::brute_force_neighbors(pts, queries, radius, bs::BinGrid3D::kNoSelf);
    EXPECT_EQ(as_pairs(fast), as_pairs(slow));
}

TEST(BinGrid, SelfQueryNeighborhoodIsSymmetric) {
    auto pts = random_cloud(200, 42);
    bs::BinGrid3D grid(pts, 0.8);
    auto list = grid.query(pts, 0);
    auto pairs = as_pairs(list);
    for (const auto& [q, s] : pairs) {
        EXPECT_TRUE(pairs.count({s, q}) == 1) << "pair (" << q << "," << s << ") not symmetric";
    }
}

TEST(BinGrid, LargerRadiusFindsSuperset) {
    auto pts = random_cloud(150, 77);
    bs::BinGrid3D small(pts, 0.4);
    bs::BinGrid3D large(pts, 0.9);
    auto small_pairs = as_pairs(small.query(pts, 0));
    auto large_pairs = as_pairs(large.query(pts, 0));
    EXPECT_TRUE(std::includes(large_pairs.begin(), large_pairs.end(), small_pairs.begin(),
                              small_pairs.end()));
    EXPECT_GT(large_pairs.size(), small_pairs.size());
}

TEST(BinGrid, ExactBoundaryIsExcluded) {
    // Distance exactly == radius must not count (strict inequality).
    std::vector<double> pts{0.0, 0.0, 0.0, 1.0, 0.0, 0.0};
    bs::BinGrid3D grid(pts, 1.0);
    auto list = grid.query(pts, 0);
    EXPECT_EQ(list.count(0), 0u);
    EXPECT_EQ(list.count(1), 0u);
    bs::BinGrid3D grid2(pts, 1.0001);
    auto list2 = grid2.query(pts, 0);
    EXPECT_EQ(list2.count(0), 1u);
}

TEST(BinGrid, DenseClusterAllPairs) {
    // All points inside one radius: every query sees all others.
    constexpr std::size_t n = 40;
    auto pts = random_cloud(n, 5, /*extent=*/0.01);
    bs::BinGrid3D grid(pts, 1.0);
    auto list = grid.query(pts, 0);
    for (std::size_t q = 0; q < n; ++q) EXPECT_EQ(list.count(q), n - 1);
}

TEST(BinGrid, NegativeCoordinatesBinnedCorrectly) {
    // Regression guard: floor (not truncation) for negative coordinates.
    std::vector<double> pts{-0.05, 0.0, 0.0, 0.05, 0.0, 0.0};
    bs::BinGrid3D grid(pts, 0.2);
    auto list = grid.query(pts, 0);
    EXPECT_EQ(list.count(0), 1u);
    EXPECT_EQ(list.count(1), 1u);
}

TEST(BinGrid, SelfOffsetMapsQueriesIntoSourceSuffix) {
    // The self-exclusion contract: query q excludes source q + self_offset,
    // nothing else — queries need not be an index-aligned prefix of the
    // sources. Sources = [extras ++ queries], so each query's own copy
    // lives at offset n_extra.
    auto extras = random_cloud(60, 91);
    auto queries = random_cloud(40, 92);
    std::vector<double> sources = extras;
    sources.insert(sources.end(), queries.begin(), queries.end());
    bs::BinGrid3D grid(sources, 0.8);
    auto list = grid.query(queries, /*self_offset=*/extras.size() / 3);
    auto all = grid.query(queries, bs::BinGrid3D::kNoSelf);
    for (std::size_t q = 0; q < 40; ++q) {
        const auto self = static_cast<std::uint32_t>(extras.size() / 3 + q);
        auto with = all.neighbors(q);
        auto without = list.neighbors(q);
        EXPECT_EQ(with.size(), without.size() + 1) << "query " << q;
        EXPECT_TRUE(std::find(with.begin(), with.end(), self) != with.end());
        EXPECT_TRUE(std::find(without.begin(), without.end(), self) == without.end());
    }
}

TEST(BinGrid, SelfOffsetOutOfRangeIsRejected) {
    // A self_offset that maps any query past the last source is a caller
    // bug (the old bool flag silently assumed an aligned prefix) — it
    // must fail loudly, not mis-exclude.
    auto pts = random_cloud(10, 93);
    bs::BinGrid3D grid(pts, 0.5);
    EXPECT_THROW((void)grid.query(pts, 1), beatnik::Error);
    EXPECT_THROW((void)bs::brute_force_neighbors(pts, pts, 0.5, 1), beatnik::Error);
    auto some = random_cloud(4, 94);
    (void)grid.query(some, 6);                                      // 4 + 6 == 10: legal
    EXPECT_THROW((void)grid.query(some, 7), beatnik::Error);        // maps past the end
}

TEST(BinGrid, RejectsBadInput) {
    std::vector<double> pts{1.0, 2.0}; // not multiple of 3
    EXPECT_THROW(bs::BinGrid3D(pts, 1.0), beatnik::Error);
    std::vector<double> ok{1.0, 2.0, 3.0};
    EXPECT_THROW(bs::BinGrid3D(ok, 0.0), beatnik::Error);
    EXPECT_THROW(bs::BinGrid3D(ok, -1.0), beatnik::Error);
}

} // namespace
