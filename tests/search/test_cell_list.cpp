// Cell-list tests: the dense count–scan–fill structure must reproduce
// BinGrid3D exactly — same neighbors in the same enumeration order (the
// cutoff solver's bitwise-determinism contract) — and the device build
// must be byte-identical to the host build.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "base/rng.hpp"
#include "par/device/device.hpp"
#include "search/cell_list.hpp"
#include "search/neighbor_search.hpp"
#include "test_env.hpp"

namespace bs = beatnik::search;
namespace bpd = beatnik::par::device;

namespace {

std::vector<double> random_cloud(std::size_t n, std::uint64_t seed, double extent = 2.0) {
    std::vector<double> pts(3 * n);
    beatnik::SplitMix64 rng(beatnik::test::seed() + seed);
    for (auto& v : pts) v = rng.uniform(-extent, extent);
    return pts;
}

/// Flattened (offsets, indices) for exact order-sensitive comparison.
struct FlatList {
    std::vector<std::uint32_t> offsets;
    std::vector<std::uint32_t> indices;
    bool operator==(const FlatList&) const = default;
};

FlatList flatten(const bs::NeighborList& l) { return {l.offsets, l.indices}; }

class CellListP : public ::testing::TestWithParam<std::tuple<std::size_t, double>> {};

INSTANTIATE_TEST_SUITE_P(Sweep, CellListP,
                         ::testing::Combine(::testing::Values<std::size_t>(0, 1, 10, 100, 500),
                                            ::testing::Values(0.1, 0.5, 1.5)));

TEST_P(CellListP, HostBuildMatchesBinGridIncludingOrder) {
    auto [n, radius] = GetParam();
    auto pts = random_cloud(n, 1500 + n);
    bs::BinGrid3D grid(pts, radius);
    bs::CellList3D cells;
    cells.build_host(pts, radius);
    // Order-sensitive equality: the cell list exists to reproduce the
    // bin grid's enumeration order, not just its pair set.
    EXPECT_EQ(flatten(cells.query(pts, pts, 0)), flatten(grid.query(pts, 0)));
    auto queries = random_cloud(n / 2 + 1, 2500 + n);
    EXPECT_EQ(flatten(cells.query(pts, queries, bs::CellList3D::kNoSelf)),
              flatten(grid.query(queries, bs::BinGrid3D::kNoSelf)));
}

TEST_P(CellListP, DeviceBuildIsByteIdenticalToHostBuild) {
    auto [n, radius] = GetParam();
    auto pts = random_cloud(n, 3500 + n);
    bs::CellList3D host_cells;
    host_cells.build_host(pts, radius);

    bpd::ScopedHostRegistration pin{std::span<const double>(pts.data(), pts.size())};
    bpd::Queue q;
    bs::CellList3D dev_cells;
    dev_cells.build_device(q, pts.data(), pts.size(), radius);

    ASSERT_EQ(dev_cells.size(), host_cells.size());
    const auto& hg = host_cells.grid();
    const auto& dg = dev_cells.grid();
    EXPECT_EQ(dg.lo, hg.lo);
    EXPECT_EQ(dg.n, hg.n);
    const std::size_t ncells = hg.num_cells();
    for (std::size_t c = 0; c <= ncells; ++c) {
        ASSERT_EQ(dev_cells.cell_offsets()[c], host_cells.cell_offsets()[c]) << "cell " << c;
    }
    for (std::size_t k = 0; k < n; ++k) {
        ASSERT_EQ(dev_cells.cell_points()[k], host_cells.cell_points()[k]) << "slot " << k;
    }
}

TEST(CellList, DeviceRebuildSteadyStateAllocatesNothingNew) {
    // Grow-only staging: a second build over a same-size cloud must reuse
    // every buffer (the cutoff solver rebuilds per derivative eval).
    auto pts = random_cloud(400, 47);
    bpd::ScopedHostRegistration pin{std::span<const double>(pts.data(), pts.size())};
    bpd::Queue q;
    bs::CellList3D cells;
    cells.build_device(q, pts.data(), pts.size(), 0.5);
    const auto* offsets = cells.cell_offsets();
    const auto* points = cells.cell_points();
    cells.build_device(q, pts.data(), pts.size(), 0.5);
    EXPECT_EQ(cells.cell_offsets(), offsets);
    EXPECT_EQ(cells.cell_points(), points);
}

TEST(CellList, VisitNeighborsEnumeratesInBinGridOrder) {
    // The fused-kernel entry point: visiting must produce the same hit
    // stream the materialized query would.
    auto pts = random_cloud(120, 48);
    bs::CellList3D cells;
    cells.build_host(pts, 0.7);
    auto list = cells.query(pts, pts, bs::CellList3D::kNoSelf);
    const double r2 = 0.7 * 0.7;
    for (std::size_t qi = 0; qi < 120; ++qi) {
        std::vector<std::uint32_t> seen;
        bs::visit_neighbors(cells.grid(), cells.cell_offsets(), cells.cell_points(), pts.data(),
                            pts.data() + 3 * qi, r2,
                            [&](std::uint32_t s) { seen.push_back(s); });
        auto expect = list.neighbors(qi);
        ASSERT_EQ(seen.size(), expect.size()) << "query " << qi;
        EXPECT_TRUE(std::equal(seen.begin(), seen.end(), expect.begin()));
    }
}

TEST(CellList, RejectsBadInput) {
    bs::CellList3D cells;
    std::vector<double> bad{1.0, 2.0};
    EXPECT_THROW(cells.build_host(bad, 1.0), beatnik::Error);
    std::vector<double> ok{1.0, 2.0, 3.0};
    EXPECT_THROW(cells.build_host(ok, 0.0), beatnik::Error);
    EXPECT_THROW(cells.build_host(ok, -1.0), beatnik::Error);
}

} // namespace
