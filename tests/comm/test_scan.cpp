// Prefix-reduction (scan/exscan) tests.
#include <gtest/gtest.h>

#include "comm/communicator.hpp"
#include "test_env.hpp"

namespace bc = beatnik::comm;

namespace {

void run(int nranks, const std::function<void(bc::Communicator&)>& fn) {
    bc::ContextConfig cfg;
    cfg.recv_timeout_seconds = 30.0;
    bc::Context::run(nranks, fn, cfg);
}

class ScanP : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(RankCounts, ScanP, ::testing::Values(1, 2, 3, 5, 8, 13),
                         ::testing::PrintToStringParamName());
// Also run at the environment-selected rank count (see tests/test_env.hpp).
INSTANTIATE_TEST_SUITE_P(EnvRankCount, ScanP,
                         ::testing::Values(beatnik::test::thread_count()),
                         ::testing::PrintToStringParamName());

TEST_P(ScanP, InclusiveSumOfRanks) {
    run(GetParam(), [](bc::Communicator& comm) {
        int got = comm.scan_value(comm.rank() + 1, bc::op::Sum{});
        int expected = (comm.rank() + 1) * (comm.rank() + 2) / 2;
        EXPECT_EQ(got, expected);
    });
}

TEST_P(ScanP, ExclusiveSumGivesOffsets) {
    run(GetParam(), [](bc::Communicator& comm) {
        // Each rank contributes (rank+1) items; exscan yields its offset.
        int offset = comm.exscan_value(comm.rank() + 1, bc::op::Sum{}, 0);
        int expected = comm.rank() * (comm.rank() + 1) / 2;
        EXPECT_EQ(offset, expected);
    });
}

TEST_P(ScanP, ScanMaxIsRunningMaximum) {
    run(GetParam(), [](bc::Communicator& comm) {
        // Values dip in the middle; the running max must be monotone.
        int v = comm.rank() == 0 ? 100 : comm.rank();
        int got = comm.scan_value(v, bc::op::Max{});
        EXPECT_EQ(got, 100);
    });
}

TEST(Scan, RepeatedScansDoNotInterfere) {
    run(6, [](bc::Communicator& comm) {
        for (int iter = 0; iter < 10; ++iter) {
            int s = comm.scan_value(1, bc::op::Sum{});
            EXPECT_EQ(s, comm.rank() + 1);
            int e = comm.exscan_value(2, bc::op::Sum{}, 0);
            EXPECT_EQ(e, 2 * comm.rank());
        }
    });
}

TEST(Scan, WorksOnSubCommunicators) {
    run(8, [](bc::Communicator& comm) {
        auto sub = comm.split(comm.rank() % 2, comm.rank());
        int s = sub.scan_value(1, bc::op::Sum{});
        EXPECT_EQ(s, sub.rank() + 1);
    });
}

} // namespace
