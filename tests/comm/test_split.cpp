// Communicator split/dup tests: sub-communicators are the mechanism behind
// the FFT row/column exchanges, so they must compose with collectives.
#include <gtest/gtest.h>

#include <vector>

#include "comm/communicator.hpp"

namespace bc = beatnik::comm;

namespace {

void run(int nranks, const std::function<void(bc::Communicator&)>& fn) {
    bc::ContextConfig cfg;
    cfg.recv_timeout_seconds = 30.0;
    bc::Context::run(nranks, fn, cfg);
}

TEST(Split, EvenOddGroups) {
    run(7, [](bc::Communicator& comm) {
        auto sub = comm.split(comm.rank() % 2, comm.rank());
        int expected_size = comm.rank() % 2 == 0 ? 4 : 3;
        EXPECT_EQ(sub.size(), expected_size);
        EXPECT_EQ(sub.rank(), comm.rank() / 2);
        // Collectives work inside the split group.
        int sum = sub.allreduce_value(comm.rank(), bc::op::Sum{});
        int expected = comm.rank() % 2 == 0 ? (0 + 2 + 4 + 6) : (1 + 3 + 5);
        EXPECT_EQ(sum, expected);
    });
}

TEST(Split, KeyReversesRankOrder) {
    run(5, [](bc::Communicator& comm) {
        auto sub = comm.split(0, -comm.rank());
        EXPECT_EQ(sub.size(), comm.size());
        EXPECT_EQ(sub.rank(), comm.size() - 1 - comm.rank());
    });
}

TEST(Split, RowColumnGridDecomposition) {
    // 2x3 process grid: split by row then by column, as the FFT pencil
    // reshapes do.
    run(6, [](bc::Communicator& comm) {
        const int row = comm.rank() / 3;
        const int col = comm.rank() % 3;
        auto row_comm = comm.split(row, col);
        auto col_comm = comm.split(col, row);
        EXPECT_EQ(row_comm.size(), 3);
        EXPECT_EQ(col_comm.size(), 2);
        EXPECT_EQ(row_comm.rank(), col);
        EXPECT_EQ(col_comm.rank(), row);
        // Sum of columns within my row.
        int row_sum = row_comm.allreduce_value(col, bc::op::Sum{});
        EXPECT_EQ(row_sum, 0 + 1 + 2);
        // Sum of rows within my column.
        int col_sum = col_comm.allreduce_value(row, bc::op::Sum{});
        EXPECT_EQ(col_sum, 0 + 1);
    });
}

TEST(Split, ParentStillUsableAfterSplit) {
    run(4, [](bc::Communicator& comm) {
        auto sub = comm.split(comm.rank() / 2, comm.rank());
        int parent_sum = comm.allreduce_value(1, bc::op::Sum{});
        EXPECT_EQ(parent_sum, 4);
        int child_sum = sub.allreduce_value(1, bc::op::Sum{});
        EXPECT_EQ(child_sum, 2);
        // Parent p2p unaffected by subcomm traffic.
        if (comm.rank() == 0) comm.send_value(123, 3, 0);
        if (comm.rank() == 3) {
            EXPECT_EQ(comm.recv_value<int>(0, 0), 123);
        }
    });
}

TEST(Split, NestedSplits) {
    run(8, [](bc::Communicator& comm) {
        auto half = comm.split(comm.rank() / 4, comm.rank());   // two groups of 4
        auto quarter = half.split(half.rank() / 2, half.rank()); // four groups of 2
        EXPECT_EQ(quarter.size(), 2);
        int sum = quarter.allreduce_value(comm.rank(), bc::op::Sum{});
        int base = (comm.rank() / 2) * 2;
        EXPECT_EQ(sum, base + base + 1);
    });
}

TEST(Split, DupCreatesIndependentTagSpace) {
    run(3, [](bc::Communicator& comm) {
        auto copy = comm.dup();
        EXPECT_EQ(copy.size(), comm.size());
        EXPECT_EQ(copy.rank(), comm.rank());
        // Message sent on the dup is not visible to the parent.
        if (comm.rank() == 0) {
            copy.send_value(5, 1, 0);
            comm.send_value(6, 1, 0);
        }
        if (comm.rank() == 1) {
            EXPECT_EQ(comm.recv_value<int>(0, 0), 6);
            EXPECT_EQ(copy.recv_value<int>(0, 0), 5);
        }
    });
}

TEST(Split, SingletonGroups) {
    run(4, [](bc::Communicator& comm) {
        auto solo = comm.split(comm.rank(), 0); // every rank its own color
        EXPECT_EQ(solo.size(), 1);
        EXPECT_EQ(solo.rank(), 0);
        EXPECT_EQ(solo.allreduce_value(comm.rank(), bc::op::Sum{}), comm.rank());
        solo.barrier();
    });
}

} // namespace
