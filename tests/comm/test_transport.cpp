// Transport-layer tests: registry selection rules, plan schedules
// running over each transport (inproc push, shm seqlock, loopback
// delayed-delivery), mixed-transport plans, the zero-allocation
// guarantee of every transport's steady-state path (this TU replaces
// operator new/delete, like test_plan.cpp), and — Linux only — the shm
// transport's reason to exist: a plan exchanged between two *forked OS
// processes*, byte-identical to the in-process run, with cross-process
// abort propagation.
#include <gtest/gtest.h>

#include <array>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <new>
#include <numeric>
#include <string>
#include <vector>

#include "comm/plan.hpp"
#include "grid/halo.hpp"
#include "par/device/devcheck.hpp"

#if defined(__linux__)
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace bc = beatnik::comm;
namespace bg = beatnik::grid;
namespace devcheck = beatnik::par::device::devcheck;

// The replacement operators pair malloc-family allocation with free();
// GCC's heuristic cannot see through the replacement and reports
// mismatched new/delete at every inlined call site in this TU.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

namespace {
/// Allocations performed by the current thread since start-up. Each
/// transport's steady-state plan path must not advance this counter.
thread_local std::uint64_t t_allocs = 0;
} // namespace

void* operator new(std::size_t n) {
    ++t_allocs;
    if (void* p = std::malloc(n ? n : 1)) return p;
    throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, std::align_val_t al) {
    ++t_allocs;
    const std::size_t a = static_cast<std::size_t>(al);
    const std::size_t rounded = (n + a - 1) / a * a;
    if (void* p = std::aligned_alloc(a, rounded ? rounded : a)) return p;
    throw std::bad_alloc();
}
void* operator new[](std::size_t n, std::align_val_t al) { return ::operator new(n, al); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace {

void run(int nranks, const std::function<void(bc::Communicator&)>& fn,
         bc::ContextConfig cfg = {}) {
    if (cfg.recv_timeout_seconds == 120.0) cfg.recv_timeout_seconds = 30.0;
    bc::Context::run(nranks, fn, cfg);
}

/// Deterministic payload byte: the same function on every side of every
/// comparison in this file, so "byte-identical" is checkable.
std::byte fill_byte(int rank, int slot, int iter, std::size_t i) {
    return static_cast<std::byte>(
        static_cast<unsigned>(rank * 131 + slot * 17 + iter * 7 + static_cast<int>(i)) & 0xffu);
}

// ---------------------------------------------------------------- registry

TEST(TransportRegistry, DefaultsToInprocAndHonorsConfig) {
    bc::TransportRegistry reg;
    EXPECT_EQ(reg.config().default_transport, "inproc");
    EXPECT_STREQ(reg.select(0, 1)->name(), "inproc");
    EXPECT_TRUE(reg.select(0, 1)->push_notifies());

    bc::TransportRegistry::Config cfg;
    cfg.default_transport = "loopback";
    bc::TransportRegistry lb(cfg);
    EXPECT_STREQ(lb.select(2, 3)->name(), "loopback");
    EXPECT_FALSE(lb.select(2, 3)->push_notifies());
}

TEST(TransportRegistry, PerPairRulesOverrideTheDefault) {
    bc::TransportRegistry reg;
    reg.set_pair_symmetric(0, 1, "loopback");
    reg.set_pair(2, 3, "shm");
    EXPECT_STREQ(reg.select(0, 1)->name(), "loopback");
    EXPECT_STREQ(reg.select(1, 0)->name(), "loopback");
    EXPECT_STREQ(reg.select(2, 3)->name(), "shm");
    EXPECT_STREQ(reg.select(3, 2)->name(), "inproc"); // asymmetric rule
    EXPECT_STREQ(reg.select(0, 2)->name(), "inproc");
    // Instances are shared per name.
    EXPECT_EQ(reg.select(0, 1), reg.get("loopback"));
}

TEST(TransportRegistry, RejectsUnknownNames) {
    bc::TransportRegistry reg;
    EXPECT_THROW(reg.set_pair(0, 1, "tcp"), beatnik::Error);
    EXPECT_THROW(reg.set_default("rdma"), beatnik::Error);
    EXPECT_THROW((void)reg.get("quic"), beatnik::Error);
    bc::TransportRegistry::Config cfg;
    cfg.default_transport = "bogus";
    EXPECT_THROW(bc::TransportRegistry bad(cfg), beatnik::Error);
}

TEST(TransportRegistry, ContextWiresConfigThrough) {
    bc::ContextConfig cfg;
    cfg.transport = "loopback";
    cfg.loopback.latency_seconds = 1.0e-6;
    bc::Context ctx(2, cfg);
    EXPECT_EQ(ctx.transports().config().default_transport, "loopback");
    EXPECT_DOUBLE_EQ(ctx.transports().config().loopback.latency_seconds, 1.0e-6);
}

// ----------------------------------------------- ring on every transport

/// A bidirectional ring exchanged for several iterations with payload
/// verification — the basic correctness pass, parameterized on the
/// transport carrying every channel.
void ring_roundtrip(const std::string& transport) {
    constexpr int kRanks = 4;
    constexpr std::size_t kBytes = 1536;
    constexpr int kIters = 6;
    bc::ContextConfig cfg;
    cfg.transport = transport;
    // Keep loopback fast and deterministic for tests.
    cfg.loopback.latency_seconds = 1.0e-6;
    cfg.loopback.jitter_seconds = 0.0;
    run(
        kRanks,
        [&](bc::Communicator& comm) {
            const int p = comm.size();
            const int right = (comm.rank() + 1) % p;
            const int left = (comm.rank() - 1 + p) % p;
            auto b = bc::Plan::builder(comm);
            const int t_r = comm.new_plan_tag();
            const int t_l = comm.new_plan_tag();
            int s_r = b.add_send(right, t_r, kBytes);
            int s_l = b.add_send(left, t_l, kBytes);
            int r_l = b.add_recv(left, t_r, kBytes);
            int r_r = b.add_recv(right, t_l, kBytes);
            auto plan = b.build();
            for (int it = 0; it < kIters; ++it) {
                plan.start();
                for (int s : {s_r, s_l}) {
                    auto buf = plan.send_buffer(s, kBytes);
                    for (std::size_t i = 0; i < kBytes; ++i) {
                        buf[i] = fill_byte(comm.rank(), s, it, i);
                    }
                    plan.publish(s);
                }
                plan.wait();
                for (auto [slot, peer, sender_slot] :
                     {std::array<int, 3>{r_l, left, s_r}, std::array<int, 3>{r_r, right, s_l}}) {
                    auto in = plan.recv_view(slot);
                    ASSERT_EQ(in.size(), kBytes);
                    for (std::size_t i = 0; i < kBytes; ++i) {
                        ASSERT_EQ(in[i], fill_byte(peer, sender_slot, it, i))
                            << transport << " rank " << comm.rank() << " iter " << it
                            << " byte " << i;
                    }
                    plan.release_recv(slot);
                }
            }
        },
        cfg);
}

TEST(TransportRing, InProc) { ring_roundtrip("inproc"); }
TEST(TransportRing, Loopback) { ring_roundtrip("loopback"); }
#if defined(__linux__)
TEST(TransportRing, Shm) { ring_roundtrip("shm"); }
#endif

// ------------------------------------------------- mixed-transport plans

/// One 8-direction halo exchange on a periodic torus; returns rank 0's
/// received bytes (slot order, iteration-concatenated) so runs can be
/// compared for byte identity.
std::vector<std::byte> halo_rank0_bytes(int ranks, std::size_t bytes, int iters,
                                        bc::ContextConfig cfg,
                                        const std::function<void(bc::Communicator&)>& rules) {
    std::vector<std::byte> captured;
    std::mutex m;
    bc::Context::run(
        ranks,
        [&](bc::Communicator& comm) {
            if (rules) rules(comm);
            // Every rank installs the full rule set; nobody builds until
            // all rules exist.
            comm.barrier();
            auto dims = bg::dims_create_2d(comm.size());
            bg::CartTopology2D topo(comm.size(), dims, {true, true});
            std::array<int, 8> tag{};
            for (auto& t : tag) t = comm.new_plan_tag();
            auto b = bc::Plan::builder(comm);
            std::vector<int> sends, recvs;
            std::vector<int> recv_peer, recv_sender_slot;
            for (int k = 0; k < 8; ++k) {
                auto [di, dj] = bg::kNeighborDirs2D[static_cast<std::size_t>(k)];
                int nbr = topo.neighbor(comm.rank(), di, dj);
                ASSERT_GE(nbr, 0);
                sends.push_back(b.add_send(nbr, tag[static_cast<std::size_t>(k)], bytes));
                recvs.push_back(b.add_recv(nbr, tag[static_cast<std::size_t>(7 - k)], bytes));
                recv_peer.push_back(nbr);
                recv_sender_slot.push_back(7 - k);
            }
            auto plan = b.build();
            std::vector<std::byte> mine;
            for (int it = 0; it < iters; ++it) {
                plan.start();
                for (std::size_t k = 0; k < sends.size(); ++k) {
                    auto buf = plan.send_buffer(sends[k], bytes);
                    for (std::size_t i = 0; i < bytes; ++i) {
                        buf[i] = fill_byte(comm.rank(), static_cast<int>(k), it, i);
                    }
                    plan.publish(sends[k]);
                }
                plan.wait();
                for (std::size_t k = 0; k < recvs.size(); ++k) {
                    auto in = plan.recv_view(recvs[k]);
                    ASSERT_EQ(in.size(), bytes);
                    for (std::size_t i = 0; i < bytes; ++i) {
                        ASSERT_EQ(in[i], fill_byte(recv_peer[k], recv_sender_slot[k], it, i));
                    }
                    if (comm.rank() == 0) mine.insert(mine.end(), in.begin(), in.end());
                    plan.release_recv(recvs[k]);
                }
            }
            if (comm.rank() == 0) {
                std::lock_guard lock(m);
                captured = std::move(mine);
            }
        },
        cfg);
    return captured;
}

TEST(MixedTransport, HaloMatchesAllInprocByteForByte) {
    constexpr int kRanks = 4;
    constexpr std::size_t kBytes = 768;
    constexpr int kIters = 4;

    auto baseline = halo_rank0_bytes(kRanks, kBytes, kIters, {}, {});
    ASSERT_FALSE(baseline.empty());

    // Same schedule, but rank pairs (0,1) and (1,2) ride loopback while
    // everything else stays inproc — a legal mixed-transport plan as long
    // as every rank installs identical rules before building.
    bc::ContextConfig cfg;
    cfg.loopback.latency_seconds = 1.0e-6;
    cfg.loopback.jitter_seconds = 0.0;
    auto mixed = halo_rank0_bytes(kRanks, kBytes, kIters, cfg, [](bc::Communicator& comm) {
        comm.context().transports().set_pair_symmetric(0, 1, "loopback");
        comm.context().transports().set_pair_symmetric(1, 2, "loopback");
    });

    EXPECT_EQ(baseline, mixed);
}

// ---------------------------------------------- steady-state allocations

void steady_state_alloc_check(const std::string& transport) {
    if (devcheck::enabled()) {
        GTEST_SKIP() << "allocation counting not meaningful with devcheck armed";
    }
    if (bc::plancheck::enabled()) {
        GTEST_SKIP() << "armed plancheck allocates flow records on first use";
    }
    constexpr int kRanks = 2;
    constexpr std::size_t kBytes = 2048;
    std::array<std::uint64_t, kRanks> deltas{};
    bc::ContextConfig cfg;
    cfg.transport = transport;
    cfg.loopback.latency_seconds = 1.0e-6;
    cfg.loopback.jitter_seconds = 0.0;
    run(
        kRanks,
        [&](bc::Communicator& comm) {
            const int peer = 1 - comm.rank();
            auto b = bc::Plan::builder(comm);
            const int tag = comm.new_plan_tag();
            int s = b.add_send(peer, tag, kBytes);
            int r = b.add_recv(peer, tag, kBytes);
            auto plan = b.build();
            std::uint64_t sink = 0;
            auto iteration = [&](int it) {
                plan.start();
                auto buf = plan.send_buffer(s, kBytes);
                std::memset(buf.data(), (comm.rank() + it) & 0xff, buf.size());
                plan.publish(s);
                plan.wait();
                auto in = plan.recv_view(r);
                sink += static_cast<std::uint64_t>(in[0]);
                plan.release_recv(r);
            };
            for (int it = 0; it < 3; ++it) iteration(it); // warm-up
            comm.barrier();
            const std::uint64_t before = t_allocs;
            for (int it = 3; it < 53; ++it) iteration(it);
            deltas[static_cast<std::size_t>(comm.rank())] = t_allocs - before;
            comm.barrier();
            if (sink == static_cast<std::uint64_t>(-1)) std::abort();
        },
        cfg);
    for (int r = 0; r < kRanks; ++r) {
        EXPECT_EQ(deltas[static_cast<std::size_t>(r)], 0u)
            << transport << " rank " << r << " allocated on the plan hot path";
    }
}

TEST(TransportAllocations, InProcSteadyStateIsAllocationFree) {
    steady_state_alloc_check("inproc");
}
TEST(TransportAllocations, LoopbackSteadyStateIsAllocationFree) {
    steady_state_alloc_check("loopback");
}
#if defined(__linux__)
TEST(TransportAllocations, ShmSteadyStateIsAllocationFree) {
    steady_state_alloc_check("shm");
}
#endif

// --------------------------------------------------- forked-process shm

#if defined(__linux__)

constexpr std::size_t kForkBytes = 1024;
constexpr int kForkIters = 5;

/// One rank of a two-process halo exchange, run on the child's main
/// thread with a hand-built Communicator (no Context::run: forked
/// children must stay single-threaded). Returns the process exit code;
/// when \p dump_fd >= 0, rank 0 writes every received payload to it in
/// slot order so the parent can compare runs byte for byte.
int forked_halo_rank(int rank, const std::string& session, int dump_fd) {
    try {
        bc::ContextConfig cfg;
        cfg.recv_timeout_seconds = 30.0;
        cfg.transport = "shm";
        cfg.shm_session = session;
        bc::Context ctx(2, cfg);
        std::vector<int> identity{0, 1};
        bc::Communicator comm(ctx, /*comm_id=*/0, rank, identity);

        auto dims = bg::dims_create_2d(comm.size());
        bg::CartTopology2D topo(comm.size(), dims, {true, true});
        std::array<int, 8> tag{};
        for (auto& t : tag) t = comm.new_plan_tag();
        auto b = bc::Plan::builder(comm);
        std::vector<int> sends, recvs, recv_peer, recv_sender_slot;
        for (int k = 0; k < 8; ++k) {
            auto [di, dj] = bg::kNeighborDirs2D[static_cast<std::size_t>(k)];
            int nbr = topo.neighbor(comm.rank(), di, dj);
            if (nbr < 0) return 3;
            sends.push_back(b.add_send(nbr, tag[static_cast<std::size_t>(k)], kForkBytes));
            recvs.push_back(b.add_recv(nbr, tag[static_cast<std::size_t>(7 - k)], kForkBytes));
            recv_peer.push_back(nbr);
            recv_sender_slot.push_back(7 - k);
        }
        auto plan = b.build();
        for (int it = 0; it < kForkIters; ++it) {
            plan.start();
            for (std::size_t k = 0; k < sends.size(); ++k) {
                auto buf = plan.send_buffer(sends[k], kForkBytes);
                for (std::size_t i = 0; i < kForkBytes; ++i) {
                    buf[i] = fill_byte(comm.rank(), static_cast<int>(k), it, i);
                }
                plan.publish(sends[k]);
            }
            plan.wait();
            for (std::size_t k = 0; k < recvs.size(); ++k) {
                auto in = plan.recv_view(recvs[k]);
                if (in.size() != kForkBytes) return 4;
                for (std::size_t i = 0; i < kForkBytes; ++i) {
                    if (in[i] != fill_byte(recv_peer[k], recv_sender_slot[k], it, i)) return 5;
                }
                if (rank == 0 && dump_fd >= 0) {
                    std::size_t off = 0;
                    while (off < in.size()) {
                        ssize_t n = ::write(dump_fd, in.data() + off, in.size() - off);
                        if (n <= 0) return 6;
                        off += static_cast<std::size_t>(n);
                    }
                }
                plan.release_recv(recvs[k]);
            }
        }
        return 0;
    } catch (...) {
        return 9;
    }
}

/// The same halo, single process, both ranks as threads over the default
/// inproc transport; returns rank 0's received bytes.
std::vector<std::byte> inproc_halo_reference() {
    bc::ContextConfig cfg;
    return halo_rank0_bytes(2, kForkBytes, kForkIters, cfg, {});
}

int wait_exit_code(pid_t pid) {
    int status = 0;
    if (::waitpid(pid, &status, 0) != pid) return -1;
    if (WIFEXITED(status)) return WEXITSTATUS(status);
    return -WTERMSIG(status);
}

TEST(ShmTransport, ForkedProcessesMatchInprocByteForByte) {
    // Unique segment namespace per test run; children inherit it.
    const std::string session = "gt" + std::to_string(::getpid()) + "-halo";

    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);

    pid_t pid0 = ::fork();
    ASSERT_GE(pid0, 0);
    if (pid0 == 0) {
        ::close(fds[0]);
        ::_exit(forked_halo_rank(0, session, fds[1]));
    }
    pid_t pid1 = ::fork();
    ASSERT_GE(pid1, 0);
    if (pid1 == 0) {
        ::close(fds[0]);
        ::close(fds[1]);
        ::_exit(forked_halo_rank(1, session, -1));
    }
    ::close(fds[1]);

    // Drain the pipe before waiting so a large dump cannot deadlock the
    // writer against our waitpid.
    std::vector<std::byte> shm_bytes;
    std::array<std::byte, 4096> chunk;
    for (;;) {
        ssize_t n = ::read(fds[0], chunk.data(), chunk.size());
        if (n < 0) {
            ADD_FAILURE() << "pipe read failed";
            break;
        }
        if (n == 0) break;
        shm_bytes.insert(shm_bytes.end(), chunk.begin(), chunk.begin() + n);
    }
    ::close(fds[0]);

    EXPECT_EQ(wait_exit_code(pid0), 0);
    EXPECT_EQ(wait_exit_code(pid1), 0);

    auto reference = inproc_halo_reference();
    ASSERT_FALSE(reference.empty());
    EXPECT_EQ(shm_bytes, reference)
        << "shm cross-process halo diverged from the in-process run";
}

/// Abort propagation: rank 0 aborts its context after the first
/// exchange; rank 1, blocked waiting for a message that will never come,
/// must observe the abort through the shared segment and unwind instead
/// of hanging until the timeout.
int forked_abort_rank(int rank, const std::string& session) {
    try {
        bc::ContextConfig cfg;
        cfg.recv_timeout_seconds = 60.0; // propagation must beat this by far
        cfg.transport = "shm";
        cfg.shm_session = session;
        bc::Context ctx(2, cfg);
        std::vector<int> identity{0, 1};
        bc::Communicator comm(ctx, 0, rank, identity);
        const int peer = 1 - rank;
        auto b = bc::Plan::builder(comm);
        const int tag = comm.new_plan_tag();
        int s = b.add_send(peer, tag, 64);
        int r = b.add_recv(peer, tag, 64);
        auto plan = b.build();

        // Iteration 1 completes on both sides (proves the channel works).
        plan.start();
        auto buf = plan.send_buffer(s, 64);
        std::memset(buf.data(), rank + 1, buf.size());
        plan.publish(s);
        plan.wait();
        plan.release_recv(r);

        if (rank == 0) {
            // Receive rank 1's iteration-2 message first — the proof that
            // rank 1 is past iteration 1 and headed into the blocking
            // wait — then abort instead of publishing our own reply.
            // (Aborting straight after iteration 1 is racy: rank 1 could
            // still be inside its iteration-1 wait and see the CommError
            // there instead of in the probe below.)
            plan.start();
            if (plan.wait_any_recv() != r) return 6;
            plan.release_recv(r);
            ctx.abort(); // futex-wakes peer processes through the segments
            return 0;
        }
        // Rank 1 publishes its iteration-2 message, then blocks on a
        // reply rank 0 never sends; the cross-process abort must turn
        // this into a CommError promptly.
        plan.start();
        auto buf2 = plan.send_buffer(s, 64);
        std::memset(buf2.data(), 0x77, buf2.size());
        plan.publish(s);
        auto t0 = std::chrono::steady_clock::now();
        try {
            plan.wait();
            return 7; // completed a message that was never published
        } catch (const beatnik::CommError&) {
            auto waited = std::chrono::duration<double>(
                std::chrono::steady_clock::now() - t0).count();
            return waited < 30.0 ? 0 : 8;
        }
    } catch (...) {
        return 9;
    }
}

TEST(ShmTransport, AbortPropagatesAcrossProcesses) {
    const std::string session = "gt" + std::to_string(::getpid()) + "-abort";
    pid_t pid1 = ::fork();
    ASSERT_GE(pid1, 0);
    if (pid1 == 0) ::_exit(forked_abort_rank(1, session));
    pid_t pid0 = ::fork();
    ASSERT_GE(pid0, 0);
    if (pid0 == 0) ::_exit(forked_abort_rank(0, session));

    EXPECT_EQ(wait_exit_code(pid0), 0);
    EXPECT_EQ(wait_exit_code(pid1), 0);
}

#endif // __linux__

} // namespace
