// Unit tests for the indexed mailbox and the shared-payload buffer that
// back the zero-copy message path.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "comm/mailbox.hpp"

namespace bc = beatnik::comm;

namespace {

std::vector<std::byte> make_bytes(std::initializer_list<int> values) {
    std::vector<std::byte> out;
    for (int v : values) out.push_back(static_cast<std::byte>(v));
    return out;
}

bc::Envelope make_env(int comm_id, int src, int tag, std::initializer_list<int> values = {}) {
    bc::Envelope env;
    env.comm_id = comm_id;
    env.src = src;
    env.tag = tag;
    auto bytes = make_bytes(values);
    env.payload = bc::Payload::copy_of(std::span<const std::byte>(bytes));
    return env;
}

// ------------------------------------------------------------------ Payload

TEST(Payload, DefaultIsEmpty) {
    bc::Payload p;
    EXPECT_TRUE(p.empty());
    EXPECT_EQ(p.size(), 0u);
    EXPECT_TRUE(p.bytes().empty());
}

TEST(Payload, CopyOfDetachesFromSource) {
    std::vector<double> src{1.0, 2.0, 3.0};
    auto p = bc::Payload::copy_of(std::as_bytes(std::span<const double>(src)));
    src.assign(src.size(), -1.0); // mutate the original after publishing
    auto v = p.view<double>();
    ASSERT_EQ(v.size(), 3u);
    EXPECT_DOUBLE_EQ(v[0], 1.0);
    EXPECT_DOUBLE_EQ(v[2], 3.0);
}

TEST(Payload, CopyIsARefcountBumpNotAByteCopy) {
    std::vector<std::uint64_t> src{7, 8, 9};
    auto a = bc::Payload::copy_of(std::as_bytes(std::span<const std::uint64_t>(src)));
    bc::Payload b = a; // share, don't copy
    EXPECT_EQ(a.bytes().data(), b.bytes().data());
    EXPECT_EQ(a.size(), b.size());
}

TEST(Payload, AliasOfPointsAtCallerMemory) {
    std::vector<int> src{4, 5, 6};
    auto p = bc::Payload::alias_of(std::as_bytes(std::span<const int>(src)));
    EXPECT_EQ(static_cast<const void*>(p.bytes().data()),
              static_cast<const void*>(src.data()));
    src[1] = 50; // aliased, so the payload observes the change
    EXPECT_EQ(p.view<int>()[1], 50);
}

TEST(Payload, ViewRejectsPartialElements) {
    auto bytes = make_bytes({1, 2, 3});
    auto p = bc::Payload::copy_of(std::span<const std::byte>(bytes));
    EXPECT_THROW((void)p.view<std::uint16_t>(), beatnik::Error);
}

// ------------------------------------------------------------------ Mailbox

class MailboxTest : public ::testing::Test {
protected:
    std::atomic<bool> abort_{false};
    bc::Mailbox box_{abort_, /*timeout_seconds=*/5.0};
};

TEST_F(MailboxTest, ExactMatchIsFifoPerSourceAndTag) {
    box_.deliver(make_env(0, 1, 7, {10}));
    box_.deliver(make_env(0, 1, 7, {20}));
    auto first = box_.receive(0, 1, 7);
    auto second = box_.receive(0, 1, 7);
    EXPECT_EQ(static_cast<int>(first.payload.bytes()[0]), 10);
    EXPECT_EQ(static_cast<int>(second.payload.bytes()[0]), 20);
}

TEST_F(MailboxTest, ExactMatchSkipsOtherKeys) {
    box_.deliver(make_env(0, 1, 1, {1}));
    box_.deliver(make_env(0, 2, 2, {2}));
    // Match the later-arrived (src=2, tag=2) first.
    auto env = box_.receive(0, 2, 2);
    EXPECT_EQ(env.src, 2);
    EXPECT_EQ(env.tag, 2);
    EXPECT_EQ(box_.pending(), 1u);
}

TEST_F(MailboxTest, AnyTagTakesEarliestArrivalAcrossTags) {
    box_.deliver(make_env(0, 3, 11, {1}));
    box_.deliver(make_env(0, 3, 12, {2}));
    EXPECT_EQ(box_.receive(0, 3, bc::any_tag).tag, 11);
    EXPECT_EQ(box_.receive(0, 3, bc::any_tag).tag, 12);
}

TEST_F(MailboxTest, AnySourceTakesEarliestArrivalAcrossSources) {
    box_.deliver(make_env(0, 5, 9, {1}));
    box_.deliver(make_env(0, 2, 9, {2}));
    box_.deliver(make_env(0, 5, 9, {3}));
    EXPECT_EQ(box_.receive(0, bc::any_source, 9).src, 5);
    EXPECT_EQ(box_.receive(0, bc::any_source, 9).src, 2);
    EXPECT_EQ(box_.receive(0, bc::any_source, 9).src, 5);
}

TEST_F(MailboxTest, FullWildcardDrainsInArrivalOrder) {
    box_.deliver(make_env(0, 4, 100, {1}));
    box_.deliver(make_env(0, 1, 200, {2}));
    box_.deliver(make_env(0, 4, 300, {3}));
    auto a = box_.receive(0, bc::any_source, bc::any_tag);
    auto b = box_.receive(0, bc::any_source, bc::any_tag);
    auto c = box_.receive(0, bc::any_source, bc::any_tag);
    EXPECT_EQ(a.tag, 100);
    EXPECT_EQ(b.tag, 200);
    EXPECT_EQ(c.tag, 300);
}

TEST_F(MailboxTest, CommunicatorsAreIsolated) {
    box_.deliver(make_env(1, 0, 5, {1}));
    bc::Envelope out;
    // A receive on comm 2 must not see comm 1's message.
    EXPECT_FALSE(box_.try_receive(2, 0, 5, out));
    EXPECT_TRUE(box_.try_receive(1, 0, 5, out));
    EXPECT_EQ(box_.pending(), 0u);
}

TEST_F(MailboxTest, TryReceiveReturnsFalseWhenEmpty) {
    bc::Envelope out;
    EXPECT_FALSE(box_.try_receive(0, bc::any_source, bc::any_tag, out));
}

TEST_F(MailboxTest, PendingCountsAcrossCommunicators) {
    box_.deliver(make_env(0, 0, 1));
    box_.deliver(make_env(1, 0, 1));
    box_.deliver(make_env(7, 3, 2));
    EXPECT_EQ(box_.pending(), 3u);
}

TEST_F(MailboxTest, BlockedReceiveWakesOnDeliver) {
    std::thread sender([this] {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        box_.deliver(make_env(0, 1, 3, {42}));
    });
    auto env = box_.receive(0, 1, 3);
    sender.join();
    EXPECT_EQ(static_cast<int>(env.payload.bytes()[0]), 42);
}

TEST_F(MailboxTest, InterruptWakesBlockedReceiverOnAbort) {
    std::thread aborter([this] {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        abort_.store(true, std::memory_order_release);
        box_.interrupt();
    });
    EXPECT_THROW((void)box_.receive(0, bc::any_source, bc::any_tag), beatnik::CommError);
    aborter.join();
}

TEST_F(MailboxTest, ReceiveTimesOutWithDiagnostic) {
    std::atomic<bool> no_abort{false};
    bc::Mailbox quick(no_abort, 0.05);
    try {
        (void)quick.receive(3, 1, 9);
        FAIL() << "should have timed out";
    } catch (const beatnik::CommError& e) {
        std::string what = e.what();
        EXPECT_NE(what.find("comm=3"), std::string::npos);
        EXPECT_NE(what.find("src=1"), std::string::npos);
        EXPECT_NE(what.find("tag=9"), std::string::npos);
    }
}

TEST_F(MailboxTest, ManyKeysStayIndexed) {
    // A burst across many (src, tag) pairs must all be retrievable exactly.
    constexpr int kSrcs = 16;
    constexpr int kTags = 16;
    for (int s = 0; s < kSrcs; ++s)
        for (int t = 0; t < kTags; ++t) box_.deliver(make_env(0, s, t, {s + t}));
    EXPECT_EQ(box_.pending(), static_cast<std::size_t>(kSrcs * kTags));
    for (int s = kSrcs - 1; s >= 0; --s) {
        for (int t = kTags - 1; t >= 0; --t) {
            auto env = box_.receive(0, s, t);
            EXPECT_EQ(static_cast<int>(env.payload.bytes()[0]), s + t);
        }
    }
    EXPECT_EQ(box_.pending(), 0u);
}

} // namespace
