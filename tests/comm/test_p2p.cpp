// Point-to-point messaging tests for the minimpi substrate.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <vector>

#include "comm/communicator.hpp"

namespace bc = beatnik::comm;

namespace {

void run(int nranks, const std::function<void(bc::Communicator&)>& fn,
         bc::ContextConfig cfg = {}) {
    // Short deadlock timeout keeps broken tests fast to diagnose.
    cfg.recv_timeout_seconds = 20.0;
    bc::Context::run(nranks, fn, cfg);
}

TEST(P2P, SingleMessageBetweenTwoRanks) {
    run(2, [](bc::Communicator& comm) {
        if (comm.rank() == 0) {
            std::vector<int> data{1, 2, 3, 4};
            comm.send(std::span<const int>(data), 1, 7);
        } else {
            std::vector<int> got;
            bc::Status st = comm.recv<int>(got, 0, 7);
            EXPECT_EQ(st.source, 0);
            EXPECT_EQ(st.tag, 7);
            EXPECT_EQ(got, (std::vector<int>{1, 2, 3, 4}));
        }
    });
}

TEST(P2P, SendValueRoundTrip) {
    run(2, [](bc::Communicator& comm) {
        if (comm.rank() == 0) {
            comm.send_value(3.25, 1, 0);
        } else {
            EXPECT_DOUBLE_EQ(comm.recv_value<double>(0, 0), 3.25);
        }
    });
}

TEST(P2P, EmptyMessageIsDelivered) {
    run(2, [](bc::Communicator& comm) {
        if (comm.rank() == 0) {
            comm.send(std::span<const int>{}, 1, 3);
        } else {
            std::vector<int> got{42};
            bc::Status st = comm.recv<int>(got, 0, 3);
            EXPECT_EQ(st.bytes, 0u);
            EXPECT_TRUE(got.empty());
        }
    });
}

TEST(P2P, SelfSendMatchesOwnReceive) {
    run(1, [](bc::Communicator& comm) {
        comm.send_value(99, 0, 5);
        EXPECT_EQ(comm.recv_value<int>(0, 5), 99);
    });
}

TEST(P2P, LargePayloadIntegrity) {
    run(2, [](bc::Communicator& comm) {
        constexpr std::size_t n = 1 << 20;
        if (comm.rank() == 0) {
            std::vector<std::uint64_t> data(n);
            std::iota(data.begin(), data.end(), 0);
            comm.send(std::span<const std::uint64_t>(data), 1, 0);
        } else {
            std::vector<std::uint64_t> got;
            comm.recv<std::uint64_t>(got, 0, 0);
            ASSERT_EQ(got.size(), n);
            EXPECT_EQ(got.front(), 0u);
            EXPECT_EQ(got[12345], 12345u);
            EXPECT_EQ(got.back(), n - 1);
        }
    });
}

TEST(P2P, FifoOrderPerSourceAndTag) {
    run(2, [](bc::Communicator& comm) {
        constexpr int kCount = 100;
        if (comm.rank() == 0) {
            for (int i = 0; i < kCount; ++i) comm.send_value(i, 1, 4);
        } else {
            for (int i = 0; i < kCount; ++i) EXPECT_EQ(comm.recv_value<int>(0, 4), i);
        }
    });
}

TEST(P2P, TagSelectionPicksMatchingMessage) {
    run(2, [](bc::Communicator& comm) {
        if (comm.rank() == 0) {
            comm.send_value(10, 1, 1);
            comm.send_value(20, 1, 2);
        } else {
            // Receive tag 2 first even though tag 1 arrived first.
            EXPECT_EQ(comm.recv_value<int>(0, 2), 20);
            EXPECT_EQ(comm.recv_value<int>(0, 1), 10);
        }
    });
}

TEST(P2P, AnySourceReceivesFromEveryone) {
    constexpr int kRanks = 6;
    run(kRanks, [](bc::Communicator& comm) {
        if (comm.rank() == 0) {
            std::vector<bool> seen(kRanks, false);
            for (int i = 1; i < kRanks; ++i) {
                std::vector<int> got;
                bc::Status st = comm.recv<int>(got, bc::any_source, 9);
                ASSERT_EQ(got.size(), 1u);
                EXPECT_EQ(got[0], st.source * 10);
                EXPECT_FALSE(seen[static_cast<std::size_t>(st.source)]);
                seen[static_cast<std::size_t>(st.source)] = true;
            }
        } else {
            comm.send_value(comm.rank() * 10, 0, 9);
        }
    });
}

TEST(P2P, AnyTagMatchesFirstArrived) {
    run(2, [](bc::Communicator& comm) {
        if (comm.rank() == 0) {
            comm.send_value(1, 1, 11);
            comm.send_value(2, 1, 12);
        } else {
            std::vector<int> got;
            bc::Status st1 = comm.recv<int>(got, 0, bc::any_tag);
            EXPECT_EQ(st1.tag, 11);
            bc::Status st2 = comm.recv<int>(got, 0, bc::any_tag);
            EXPECT_EQ(st2.tag, 12);
        }
    });
}

TEST(P2P, SendrecvRingShiftsValues) {
    constexpr int kRanks = 5;
    run(kRanks, [](bc::Communicator& comm) {
        int right = (comm.rank() + 1) % comm.size();
        int left = (comm.rank() - 1 + comm.size()) % comm.size();
        int token = comm.rank();
        std::vector<int> got;
        comm.sendrecv(std::span<const int>(&token, 1), right, got, left, 0);
        ASSERT_EQ(got.size(), 1u);
        EXPECT_EQ(got[0], left);
    });
}

TEST(P2P, IrecvWaitAllGathersAllMessages) {
    constexpr int kRanks = 8;
    run(kRanks, [](bc::Communicator& comm) {
        if (comm.rank() == 0) {
            std::vector<std::vector<int>> bufs(kRanks - 1);
            std::vector<bc::Request> reqs;
            for (int r = 1; r < kRanks; ++r) {
                reqs.push_back(comm.irecv<int>(bufs[static_cast<std::size_t>(r - 1)], r, 2));
            }
            bc::wait_all(reqs);
            for (int r = 1; r < kRanks; ++r) {
                ASSERT_EQ(bufs[static_cast<std::size_t>(r - 1)].size(), 1u);
                EXPECT_EQ(bufs[static_cast<std::size_t>(r - 1)][0], r * r);
            }
        } else {
            int v = comm.rank() * comm.rank();
            comm.isend(std::span<const int>(&v, 1), 0, 2).wait();
        }
    });
}

TEST(P2P, MixedTrafficManyRanksNoCrosstalk) {
    // Every rank sends a distinct vector to every other rank; everything
    // must arrive intact. Exercises mailbox matching under load.
    constexpr int kRanks = 9;
    run(kRanks, [](bc::Communicator& comm) {
        const int p = comm.size();
        for (int dst = 0; dst < p; ++dst) {
            if (dst == comm.rank()) continue;
            std::vector<int> payload{comm.rank(), dst, comm.rank() * 100 + dst};
            comm.send(std::span<const int>(payload), dst, 6);
        }
        for (int i = 0; i < p - 1; ++i) {
            std::vector<int> got;
            bc::Status st = comm.recv<int>(got, bc::any_source, 6);
            ASSERT_EQ(got.size(), 3u);
            EXPECT_EQ(got[0], st.source);
            EXPECT_EQ(got[1], comm.rank());
            EXPECT_EQ(got[2], st.source * 100 + comm.rank());
        }
    });
}

TEST(P2P, StructPayloadsSurviveTransfer) {
    struct Particle {
        double x, y, z;
        int id;
    };
    run(2, [](bc::Communicator& comm) {
        if (comm.rank() == 0) {
            std::vector<Particle> ps{{1.0, 2.0, 3.0, 7}, {-1.5, 0.25, 8.0, 9}};
            comm.send(std::span<const Particle>(ps), 1, 0);
        } else {
            std::vector<Particle> got;
            comm.recv<Particle>(got, 0, 0);
            ASSERT_EQ(got.size(), 2u);
            EXPECT_DOUBLE_EQ(got[0].x, 1.0);
            EXPECT_EQ(got[0].id, 7);
            EXPECT_DOUBLE_EQ(got[1].z, 8.0);
            EXPECT_EQ(got[1].id, 9);
        }
    });
}

TEST(ContextFailure, RankExceptionPropagatesWithoutDeadlock) {
    EXPECT_THROW(
        run(4,
            [](bc::Communicator& comm) {
                if (comm.rank() == 2) throw std::runtime_error("rank 2 exploded");
                // Other ranks block on a message that will never come; the
                // abort must wake them.
                std::vector<int> buf;
                comm.recv<int>(buf, bc::any_source, 0);
            }),
        beatnik::Error);
}

TEST(ContextFailure, RecvTimeoutThrowsCommError) {
    bc::ContextConfig cfg;
    cfg.recv_timeout_seconds = 0.2;
    EXPECT_THROW(bc::Context::run(2,
                                  [](bc::Communicator& comm) {
                                      std::vector<int> buf;
                                      comm.recv<int>(buf, bc::any_source, 0); // deadlock
                                  },
                                  cfg),
                 beatnik::Error);
}

TEST(ContextTrace, RecordsEveryTransferWithSizes) {
    bc::ContextConfig cfg;
    cfg.enable_trace = true;
    cfg.recv_timeout_seconds = 20.0;
    // Context::run owns the context; replicate its wiring here to inspect
    // the trace afterward.
    bc::Context ctx(2, cfg);
    std::vector<int> identity{0, 1};
    std::thread t0([&] {
        bc::Communicator c(ctx, 0, 0, identity);
        std::vector<double> xs(10, 1.5);
        c.send(std::span<const double>(xs), 1, 3);
    });
    std::thread t1([&] {
        bc::Communicator c(ctx, 0, 1, identity);
        std::vector<double> got;
        c.recv<double>(got, 0, 3);
    });
    t0.join();
    t1.join();
    auto records = ctx.trace()->snapshot();
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0].src_world, 0);
    EXPECT_EQ(records[0].dst_world, 1);
    EXPECT_EQ(records[0].bytes, 10 * sizeof(double));
}

TEST(P2P, RejectsOutOfRangePeer) {
    run(2, [](bc::Communicator& comm) {
        std::vector<int> v{1};
        EXPECT_THROW(comm.send(std::span<const int>(v), 5, 0), beatnik::Error);
        EXPECT_THROW(comm.send(std::span<const int>(v), -3, 0), beatnik::Error);
    });
}

TEST(P2P, RejectsReservedTag) {
    run(2, [](bc::Communicator& comm) {
        std::vector<int> v{1};
        EXPECT_THROW(comm.send(std::span<const int>(v), comm.rank(), 1 << 25), beatnik::Error);
        EXPECT_THROW(comm.send(std::span<const int>(v), comm.rank(), -1), beatnik::Error);
    });
}

} // namespace
